package tracy

import (
	"bytes"
	"strings"
	"testing"
)

// paperPair is the doCommand1/doCommand2 pair from the paper's Figs. 1-2.
const paperFunc1 = `
int doCommand1(int cmd, char *optionalMsg, char *logPath) {
	int counter = 1;
	int f = fopen(logPath, "w");
	if (cmd == 1) {
		printf("(%d) HELLO", counter);
	} else if (cmd == 2) {
		printf(optionalMsg);
	}
	fprintf(f, "Cmd %d DONE", counter);
	return counter;
}
`

const paperFunc2 = `
int doCommand2(int cmd, char *optionalMsg, char *logPath) {
	int counter = 1;
	int bytes = 0;
	int f = fopen(logPath, "w");
	if (cmd == 1) {
		printf("(%d) HELLO", counter);
		bytes = bytes + 4;
	} else if (cmd == 2) {
		printf(optionalMsg);
		bytes = bytes + strlen(optionalMsg);
	} else if (cmd == 3) {
		printf("(%d) BYE", counter);
		bytes = bytes + 3;
	}
	fprintf(f, "Cmd %d\\%d DONE", counter, bytes);
	return counter;
}
`

const unrelatedFunc = `
int checksum(int a, int b, char *s) {
	int acc = 0;
	int i;
	for (i = 0; i < a; i = i + 1) {
		acc = acc * 31 + i % 7;
		if (acc > 10000) { acc = acc / 2; }
	}
	while (b > 0) { acc = acc + b; b = b - 1; }
	return acc;
}
`

func loadOne(t *testing.T, src string, opt OptLevel, seed int64) *Function {
	t.Helper()
	img, err := CompileTinyCStripped(src, opt, seed)
	if err != nil {
		t.Fatal(err)
	}
	fns, err := LoadExecutable(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(fns) != 1 {
		t.Fatalf("lifted %d functions", len(fns))
	}
	return fns[0]
}

// TestPaperMotivatingExample: doCommand1 and its patched doCommand2,
// compiled in different contexts, must be similar; an unrelated function
// must not.
func TestPaperMotivatingExample(t *testing.T) {
	ref := loadOne(t, paperFunc1, OptO2, 11)
	patched := loadOne(t, paperFunc2, OptO2, 23)
	other := loadOne(t, unrelatedFunc, OptO2, 37)

	opts := DefaultOptions()
	simPatched := Compare(ref, patched, opts)
	simOther := Compare(ref, other, opts)
	if !simPatched.IsMatch {
		t.Errorf("doCommand1 vs doCommand2: score %.2f, want match",
			simPatched.SimilarityScore)
	}
	if simOther.IsMatch {
		t.Errorf("doCommand1 vs checksum: score %.2f, want no match",
			simOther.SimilarityScore)
	}
	if simPatched.SimilarityScore <= simOther.SimilarityScore {
		t.Errorf("patched (%.2f) should outscore unrelated (%.2f)",
			simPatched.SimilarityScore, simOther.SimilarityScore)
	}
}

func TestExplainAccountability(t *testing.T) {
	ref := loadOne(t, paperFunc1, OptO2, 11)
	patched := loadOne(t, paperFunc2, OptO2, 23)
	ms := Explain(ref, patched, DefaultOptions())
	if len(ms) == 0 {
		t.Fatal("no explained matches")
	}
	for _, m := range ms {
		if m.Score <= DefaultOptions().Beta {
			t.Errorf("match below threshold: %+v", m)
		}
	}
}

func TestDatabaseSearchEndToEnd(t *testing.T) {
	db := NewDatabase()
	// Index the same function under three contexts, plus noise.
	for seed := int64(1); seed <= 3; seed++ {
		img, err := CompileTinyC(paperFunc1+unrelatedFunc, OptO2, seed)
		if err != nil {
			t.Fatal(err)
		}
		truth, err := TruthOf(img)
		if err != nil {
			t.Fatal(err)
		}
		stripped, err := StripExecutable(img)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.IndexExecutableWithTruth(
			strings.Repeat("x", int(seed))+"exe", stripped, truth); err != nil {
			t.Fatal(err)
		}
	}
	if db.NumFunctions() != 6 {
		t.Fatalf("indexed %d functions, want 6", db.NumFunctions())
	}
	query := loadOne(t, paperFunc1, OptO2, 99)
	hits := db.Search(query, DefaultOptions())
	if len(hits) != 6 {
		t.Fatalf("got %d hits", len(hits))
	}
	for i := 0; i < 3; i++ {
		if hits[i].Truth != "doCommand1" {
			t.Errorf("hit %d = %q (%.2f), want doCommand1", i, hits[i].Truth,
				hits[i].Result.SimilarityScore)
		}
	}
	for _, h := range hits[3:] {
		if h.Result.IsMatch {
			t.Errorf("false positive %q scored %.2f", h.Truth, h.Result.SimilarityScore)
		}
	}
}

func TestDatabaseSaveLoad(t *testing.T) {
	db := NewDatabase()
	img, err := CompileTinyCStripped(paperFunc1, OptO2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.IndexExecutable("one", img); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := LoadDatabase(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if db2.NumFunctions() != db.NumFunctions() {
		t.Error("round trip lost functions")
	}
}

func TestDisassemble(t *testing.T) {
	fn := loadOne(t, paperFunc1, OptO2, 1)
	text := Disassemble(fn)
	if !strings.Contains(text, "block 0") || !strings.Contains(text, "call _fopen") {
		t.Errorf("Disassemble output unexpected:\n%s", text)
	}
}

func TestTruthOfStripped(t *testing.T) {
	img, err := CompileTinyCStripped(paperFunc1, OptO2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TruthOf(img); err == nil {
		t.Error("TruthOf(stripped) should fail")
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := CompileTinyC("int f( {", OptO2, 1); err == nil {
		t.Error("expected compile error")
	}
}

func TestFunctionsAccessor(t *testing.T) {
	db := NewDatabase()
	img, err := CompileTinyCStripped(paperFunc1+unrelatedFunc, OptO2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.IndexExecutable("one", img); err != nil {
		t.Fatal(err)
	}
	fns := db.Functions()
	if len(fns) != 2 {
		t.Fatalf("Functions() = %d entries", len(fns))
	}
	for _, fn := range fns {
		if fn.NumBlocks() == 0 || fn.NumInsts() == 0 {
			t.Error("empty lifted function")
		}
	}
}

func TestOptionsVariants(t *testing.T) {
	ref := loadOne(t, paperFunc1, OptO2, 11)
	tgt := loadOne(t, paperFunc1, OptO2, 12)
	base := DefaultOptions()
	if res := Compare(ref, tgt, base); !res.IsMatch {
		t.Fatalf("baseline should match: %+v", res)
	}
	// k=2 and containment also work through the public API.
	o2 := base
	o2.K = 2
	if res := Compare(ref, tgt, o2); !res.IsMatch {
		t.Errorf("k=2: %+v", res)
	}
	oc := base
	oc.Norm = Containment
	if res := Compare(ref, tgt, oc); !res.IsMatch {
		t.Errorf("containment: %+v", res)
	}
	// An absurd β of ~1 with rewriting still matches identical-source
	// cross-context builds (the rewrite reaches exact equality).
	ob := base
	ob.Beta = 0.99
	if res := Compare(ref, tgt, ob); res.SimilarityScore == 0 {
		t.Errorf("β=0.99 cross-context similarity collapsed: %+v", res)
	}
}
