package tracy_test

import (
	"fmt"
	"log"

	tracy "repro"
)

// The original and a patched version of the same function (the paper's
// motivating doCommand example, abbreviated).
const exampleSrc = `
int handler(int cmd, char *msg) {
	int counter = 1;
	int total = 0;
	int i = 0;
	if (cmd == 1) {
		printf("(%d) HELLO", counter);
	} else if (cmd == 2) {
		printf(msg);
	}
	for (i = 0; i < cmd; i = i + 1) {
		total = total + process(msg, i);
		if (total > 4096) { total = total / 2; }
	}
	while (counter < total) { counter = counter * 2; }
	fprintf(cmd, "Cmd %d DONE", counter);
	return counter;
}
`

const examplePatched = `
int handler(int cmd, char *msg) {
	int counter = 1;
	int total = 0;
	int i = 0;
	int bytes = 0;
	if (cmd == 1) {
		printf("(%d) HELLO", counter);
		bytes = bytes + 4;
	} else if (cmd == 2) {
		printf(msg);
		bytes = bytes + strlen(msg);
	}
	for (i = 0; i < cmd; i = i + 1) {
		total = total + process(msg, i);
		if (total > 4096) { total = total / 2; }
	}
	while (counter < total) { counter = counter * 2; }
	fprintf(cmd, "Cmd %d DONE", counter);
	return counter;
}
`

func mustLift(src string, seed int64) *tracy.Function {
	img, err := tracy.CompileTinyCStripped(src, tracy.OptO2, seed)
	if err != nil {
		log.Fatal(err)
	}
	fns, err := tracy.LoadExecutable(img)
	if err != nil {
		log.Fatal(err)
	}
	return fns[0]
}

// Compare two lifted binary functions directly.
func ExampleCompare() {
	orig := mustLift(exampleSrc, 11)
	patched := mustLift(examplePatched, 23)
	res := tracy.Compare(orig, patched, tracy.DefaultOptions())
	fmt.Println("match:", res.IsMatch)
	// Output:
	// match: true
}

// Index executables and search for a function.
func ExampleDatabase_Search() {
	db := tracy.NewDatabase()
	img, err := tracy.CompileTinyCStripped(examplePatched, tracy.OptO2, 7)
	if err != nil {
		log.Fatal(err)
	}
	if err := db.IndexExecutable("release-2", img); err != nil {
		log.Fatal(err)
	}
	query := mustLift(exampleSrc, 99)
	hits := db.Search(query, tracy.DefaultOptions())
	fmt.Println("hits:", len(hits), "top match:", hits[0].Result.IsMatch)
	// Output:
	// hits: 1 top match: true
}
