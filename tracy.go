// Package tracy is the public API of the TRACY reproduction: tracelet-
// based code search in executables (David & Yahav, PLDI 2014).
//
// Given a function in (stripped) binary form and a code base of binary
// functions, tracy finds similar functions by decomposing CFGs into
// k-tracelets, aligning tracelet pairs with an instruction-level edit
// distance, and bridging compiler-induced differences (register
// allocation, stack layout) with a constraint-solving rewrite engine.
//
// Typical use:
//
//	db := tracy.NewDatabase()
//	db.IndexExecutable("wget-1.12", image)       // a stripped ELF image
//	fns, _ := tracy.LoadExecutable(queryImage)
//	hits := db.Search(fns[0], tracy.DefaultOptions())
//
// The package also exposes the TinyC compiler used to build evaluation
// corpora (CompileTinyC), so examples and experiments are reproducible
// end to end without external toolchains.
package tracy

import (
	"fmt"
	"io"

	"repro/internal/align"
	"repro/internal/bin"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/prep"
	"repro/internal/tinyc"
)

// Options configures matching; see DefaultOptions for the paper's
// recommended configuration.
type Options = core.Options

// Result is the outcome of one function-to-function comparison.
type Result = core.Result

// TraceletMatch explains one matched tracelet (see Explain).
type TraceletMatch = core.TraceletMatch

// Function is a lifted, preprocessed binary function.
type Function = prep.Function

// Normalization methods for tracelet similarity scores.
const (
	Ratio       = align.Ratio
	Containment = align.Containment
)

// DefaultOptions returns the configuration the paper found best: k=3
// tracelets, β=0.8 match threshold, ratio normalization, rewrite engine
// enabled.
func DefaultOptions() Options { return core.DefaultOptions() }

// LoadExecutable parses an ELF image (stripped or not) and lifts all of
// its functions to preprocessed form.
func LoadExecutable(img []byte) ([]*Function, error) {
	return prep.LiftImage(img)
}

// Compare computes the similarity of target against reference (paper
// Algorithm 1).
func Compare(ref, tgt *Function, opts Options) Result {
	m := core.NewMatcher(opts)
	return m.Compare(core.Decompose(ref, m.Opts.K), core.Decompose(tgt, m.Opts.K))
}

// Explain returns the per-tracelet evidence behind Compare's verdict:
// which reference tracelets matched which target tracelets, at what
// score, whether the rewrite engine was required, and the unaligned
// (inserted/deleted) instructions — the paper's accountability story.
func Explain(ref, tgt *Function, opts Options) []TraceletMatch {
	m := core.NewMatcher(opts)
	return m.Explain(core.Decompose(ref, m.Opts.K), core.Decompose(tgt, m.Opts.K))
}

// Match is one search hit.
type Match struct {
	Exe    string
	Name   string // recovered function name (sub_XXX when stripped)
	Addr   uint32
	Truth  string // ground-truth name when indexed with truth data
	Result Result
	Func   *Function
}

// Database is a searchable code base of binary functions.
type Database struct {
	db *index.DB
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{db: index.New()}
}

// IndexExecutable lifts and indexes every function of an ELF image.
func (d *Database) IndexExecutable(name string, img []byte) error {
	return d.db.AddImage(name, img, nil)
}

// IndexExecutableWithTruth also records ground-truth function names
// (address -> source name) for evaluation.
func (d *Database) IndexExecutableWithTruth(name string, img []byte, truth map[uint32]string) error {
	return d.db.AddImage(name, img, truth)
}

// NumFunctions returns the number of indexed functions.
func (d *Database) NumFunctions() int { return d.db.Len() }

// Functions returns the lifted form of every indexed function, in index
// order.
func (d *Database) Functions() []*Function {
	out := make([]*Function, d.db.Len())
	for i, e := range d.db.Entries {
		out[i] = e.Function()
	}
	return out
}

// Search compares the query against every indexed function in parallel
// and returns all results ordered by similarity (best first).
func (d *Database) Search(query *Function, opts Options) []Match {
	hits := d.db.Search(query, opts)
	out := make([]Match, len(hits))
	for i, h := range hits {
		out[i] = Match{
			Exe: h.Entry.Exe, Name: h.Entry.Name, Addr: h.Entry.Addr,
			Truth: h.Entry.Truth, Result: h.Result, Func: h.Entry.Function(),
		}
	}
	return out
}

// Save serializes the database.
func (d *Database) Save(w io.Writer) error { return d.db.Save(w) }

// LoadDatabase restores a database written by Save.
func LoadDatabase(r io.Reader) (*Database, error) {
	db, err := index.Load(r)
	if err != nil {
		return nil, err
	}
	return &Database{db: db}, nil
}

// OptLevel is a TinyC optimization level.
type OptLevel = tinyc.OptLevel

// TinyC optimization levels.
const (
	OptO0 = tinyc.O0
	OptO1 = tinyc.O1
	OptO2 = tinyc.O2
	OptOs = tinyc.Os
)

// CompileTinyC compiles TinyC source to a linked ELF image. seed selects
// the compilation context (register-allocation order, stack layout,
// branch layout); the same source with different seeds models the same
// code built into different executables.
func CompileTinyC(src string, opt OptLevel, seed int64) ([]byte, error) {
	return tinyc.Build(src, tinyc.Config{Opt: opt, Seed: seed})
}

// CompileTinyCStripped compiles and strips local symbols, leaving the
// dynamic import table intact — the paper's input shape.
func CompileTinyCStripped(src string, opt OptLevel, seed int64) ([]byte, error) {
	return tinyc.BuildStripped(src, tinyc.Config{Opt: opt, Seed: seed})
}

// StripExecutable removes local symbols from an ELF image.
func StripExecutable(img []byte) ([]byte, error) { return bin.Strip(img) }

// TruthOf extracts the ground-truth function map (address -> name) from
// an *unstripped* image, for use with IndexExecutableWithTruth after
// stripping.
func TruthOf(img []byte) (map[uint32]string, error) {
	f, err := bin.Read(img)
	if err != nil {
		return nil, err
	}
	if f.Stripped() {
		return nil, fmt.Errorf("tracy: image is stripped; no ground truth available")
	}
	truth := make(map[uint32]string)
	for _, s := range f.Symbols {
		if s.IsFunc() {
			truth[s.Value] = s.Name
		}
	}
	return truth, nil
}

// Disassemble renders a lifted function's CFG as text (numbered basic
// blocks with successor edges), for inspection and debugging.
func Disassemble(fn *Function) string { return fn.Graph.String() }
