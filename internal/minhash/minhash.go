// Package minhash implements k-permutation MinHash signatures and LSH
// banding over u64 feature sets — the sublinear candidate-generation
// substrate of the search stack.
//
// A function's prefilter feature set (normalized per-block 3-grams, see
// internal/index) is summarized as k = Bands*Rows 32-bit signature
// values; signature position i holds the minimum of a per-position
// 64-bit mixing hash over the set. Two sets with Jaccard similarity s
// agree at each position with probability s, so the fraction of
// matching positions is an unbiased estimator of s with Chernoff
// concentration: P(|est − s| >= eps) <= 2·exp(−2k·eps²).
//
// Banding turns the estimator into a bucketed index: the signature is
// split into Bands bands of Rows values, each band is hashed to one
// bucket key, and two sets collide (share at least one band bucket)
// with probability 1 − (1 − s^Rows)^Bands — an S-curve with threshold
// ~(1/Bands)^(1/Rows). Candidate lookup is then a union of Bands bucket
// probes instead of a corpus scan.
//
// Everything here is deterministic: the same Params (including Seed)
// and the same feature set produce byte-identical signatures on every
// platform, which is what lets signatures be persisted in a TRACYIDX v3
// LSHB section and compared against freshly computed ones.
package minhash

import "math"

// EmptySig is the signature value written at every position for an
// empty feature set (min over nothing). Two empty sets therefore have
// identical signatures, matching the J(∅,∅)=1 convention.
const EmptySig = ^uint32(0)

// DefaultSeed is the seed baked into Default. Changing it would orphan
// every persisted LSHB section, so it is a named constant, not a knob.
const DefaultSeed = 0x74726163796c7368 // "tracylsh"

// Params fixes one MinHash/LSH configuration. Signatures computed under
// different Params are incomparable.
type Params struct {
	Bands int    // number of bands (bucket tables)
	Rows  int    // signature values per band
	Seed  uint64 // hash-family seed
}

// Default is the tuned configuration: 64 single-row bands (k=64). With
// Rows=1 a band collision IS a matching signature position, so the
// collision count doubles as the Jaccard estimate that ranks
// candidates, and the effective threshold drops to ~1/64 — low enough
// that the mid-similarity tail of the exhaustive top-10 (Jaccard
// 0.05–0.2 on campaign corpora) still surfaces. Wider rows (e.g. 32x2)
// buy smaller buckets but cull exactly that tail, costing ~15 recall@10
// points in the tuning sweep, and 32 single-row bands leave too many
// tail entries tied at one collision (recall@10 0.88 vs 0.97 at 20k
// functions) — see EXPERIMENTS.md and BENCH_lsh.json.
var Default = Params{Bands: 64, Rows: 1, Seed: DefaultSeed}

// K returns the signature length Bands*Rows.
func (p Params) K() int { return p.Bands * p.Rows }

// Valid reports whether the parameters are usable (positive bands and
// rows within the caps the LSHB loader enforces).
func (p Params) Valid() bool {
	return p.Bands > 0 && p.Rows > 0 && p.Bands <= MaxBands && p.Rows <= MaxRows
}

// Caps shared with the idxfile LSHB validator: generous for any sane
// tuning, tight enough that a corrupt header cannot demand a huge k.
const (
	MaxBands = 256
	MaxRows  = 64
)

// mix64 is the splitmix64 finalizer — a cheap bijective 64-bit mixer
// with full avalanche, the hash family behind every signature position.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// posSeed derives the independent per-position seed for signature
// position i.
func posSeed(seed uint64, i int) uint64 {
	return mix64(seed + uint64(i)*0x9e3779b97f4a7c15)
}

// Signature computes the k-value MinHash signature of feats under p
// into dst (reused when cap(dst) >= k, else reallocated) and returns
// it. feats is treated as a set; order and duplicates do not affect the
// result. An empty set yields EmptySig at every position.
func Signature(dst []uint32, feats []uint64, p Params) []uint32 {
	k := p.K()
	if cap(dst) < k {
		dst = make([]uint32, k)
	} else {
		dst = dst[:k]
	}
	if len(feats) == 0 {
		for i := range dst {
			dst[i] = EmptySig
		}
		return dst
	}
	for i := 0; i < k; i++ {
		seed := posSeed(p.Seed, i)
		min := ^uint64(0)
		for _, f := range feats {
			if h := mix64(f ^ seed); h < min {
				min = h
			}
		}
		dst[i] = uint32(min)
	}
	return dst
}

// BandHash folds band b (rows [b*Rows, (b+1)*Rows) of sig) into one
// bucket key. The band index is mixed in so identical row values in
// different bands key different buckets.
func BandHash(sig []uint32, band int, p Params) uint64 {
	h := mix64(p.Seed ^ (uint64(band)+1)*0x9e3779b97f4a7c15)
	for _, v := range sig[band*p.Rows : (band+1)*p.Rows] {
		h = mix64(h ^ uint64(v))
	}
	return h
}

// EstJaccard returns the fraction of matching positions between two
// signatures of equal length — the MinHash estimate of the underlying
// sets' Jaccard similarity. It returns 0 for mismatched lengths.
func EstJaccard(a, b []uint32) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	match := 0
	for i := range a {
		if a[i] == b[i] {
			match++
		}
	}
	return float64(match) / float64(len(a))
}

// SharedPositions returns the number of matching positions between two
// equal-length signatures (the integer form of EstJaccard, used for
// ranking without float math).
func SharedPositions(a, b []uint32) int {
	match := 0
	for i := range a {
		if a[i] == b[i] {
			match++
		}
	}
	return match
}

// CollisionProb returns the banding S-curve 1 − (1 − s^Rows)^Bands: the
// probability that two sets with Jaccard similarity s share at least
// one band bucket under p.
func CollisionProb(s float64, p Params) float64 {
	return 1 - math.Pow(1-math.Pow(s, float64(p.Rows)), float64(p.Bands))
}

// Threshold returns the similarity (1/Bands)^(1/Rows) where the
// S-curve is steepest — sets above it almost always collide, sets far
// below it almost never do.
func (p Params) Threshold() float64 {
	return math.Pow(1/float64(p.Bands), 1/float64(p.Rows))
}
