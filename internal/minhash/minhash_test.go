package minhash

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// genPair builds two feature sets with exact Jaccard similarity
// inter/(inter+aOnly+bOnly), all members distinct random u64s.
func genPair(rng *rand.Rand, inter, aOnly, bOnly int) (a, b []uint64) {
	seen := make(map[uint64]bool, inter+aOnly+bOnly)
	draw := func() uint64 {
		for {
			v := rng.Uint64()
			if !seen[v] {
				seen[v] = true
				return v
			}
		}
	}
	for i := 0; i < inter; i++ {
		v := draw()
		a = append(a, v)
		b = append(b, v)
	}
	for i := 0; i < aOnly; i++ {
		a = append(a, draw())
	}
	for i := 0; i < bOnly; i++ {
		b = append(b, draw())
	}
	return a, b
}

// TestSignatureDeterminism: the tentpole determinism contract — the
// same seed + feature set yields byte-identical signatures regardless
// of element order, duplicates, destination-buffer reuse, or how many
// times it is computed.
func TestSignatureDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	feats := make([]uint64, 100)
	for i := range feats {
		feats[i] = rng.Uint64()
	}
	base := Signature(nil, feats, Default)
	if len(base) != Default.K() {
		t.Fatalf("signature length %d, want k=%d", len(base), Default.K())
	}

	// Recompute into a reused buffer.
	buf := make([]uint32, 0, Default.K())
	again := Signature(buf, feats, Default)
	for i := range base {
		if again[i] != base[i] {
			t.Fatalf("position %d differs on recompute: %d vs %d", i, again[i], base[i])
		}
	}

	// Shuffle: a set has no order.
	shuffled := append([]uint64(nil), feats...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	if got := Signature(nil, shuffled, Default); EstJaccard(got, base) != 1 {
		t.Fatal("shuffled feature set changed the signature")
	}

	// Duplicates: a set has no multiplicity.
	doubled := append(append([]uint64(nil), feats...), feats...)
	if got := Signature(nil, doubled, Default); EstJaccard(got, base) != 1 {
		t.Fatal("duplicated features changed the signature")
	}

	// A different seed must change the signature.
	other := Default
	other.Seed++
	if got := Signature(nil, feats, other); EstJaccard(got, base) == 1 {
		t.Fatal("changing the seed left the signature identical")
	}
}

func TestEmptySignature(t *testing.T) {
	sig := Signature(nil, nil, Default)
	for i, v := range sig {
		if v != EmptySig {
			t.Fatalf("empty-set signature position %d = %d, want EmptySig", i, v)
		}
	}
	// Two empty sets: identical signatures, estimate 1, collide everywhere.
	if est := EstJaccard(sig, Signature(nil, []uint64{}, Default)); est != 1 {
		t.Fatalf("EstJaccard(empty, empty) = %v, want 1", est)
	}
}

// TestChernoffBound is the headline property test: the per-position
// collision frequency of MinHash signatures tracks the true Jaccard
// similarity within the Chernoff bound. For each target similarity we
// draw N independent pairs, pool the N*k Bernoulli(J) position trials,
// and require |freq − J| <= eps with eps chosen so the bound
// 2·exp(−2·M·eps²) is < 1e−9 — a deterministic seed then makes any
// failure a real estimator bug, not noise. Per-pair estimates are also
// checked at the per-trial bound (eps = 0.3, k = 64).
func TestChernoffBound(t *testing.T) {
	const N = 200
	p := Default // k = 64
	k := p.K()
	rng := rand.New(rand.NewSource(1))

	cases := []struct {
		inter, aOnly, bOnly int
	}{
		{10, 45, 45},  // J = 0.10
		{30, 35, 35},  // J = 0.30
		{50, 25, 25},  // J = 0.50
		{70, 15, 15},  // J = 0.70
		{90, 5, 5},    // J = 0.90
		{100, 0, 0},   // J = 1.00
		{0, 50, 50},   // J = 0.00
		{25, 75, 150}, // J = 0.10, asymmetric sizes
	}
	for _, tc := range cases {
		j := float64(tc.inter) / float64(tc.inter+tc.aOnly+tc.bOnly)
		name := fmt.Sprintf("J=%.2f/%d+%d+%d", j, tc.inter, tc.aOnly, tc.bOnly)
		t.Run(name, func(t *testing.T) {
			matches := 0
			perTrialViolations := 0
			for trial := 0; trial < N; trial++ {
				a, b := genPair(rng, tc.inter, tc.aOnly, tc.bOnly)
				sa := Signature(nil, a, p)
				sb := Signature(nil, b, p)
				m := SharedPositions(sa, sb)
				matches += m
				if math.Abs(float64(m)/float64(k)-j) > 0.3 {
					perTrialViolations++
				}
			}
			// Pooled frequency: M = N*k draws, eps for 2exp(−2Meps²) < 1e−9.
			m := float64(N * k)
			eps := math.Sqrt(math.Log(2/1e-9) / (2 * m))
			freq := float64(matches) / m
			if math.Abs(freq-j) > eps {
				t.Errorf("pooled collision frequency %.4f vs true Jaccard %.4f exceeds Chernoff eps %.4f (M=%d)",
					freq, j, eps, int(m))
			}
			// Per-trial bound: P(violation) <= 2exp(−2·64·0.09) ≈ 2e−5, so
			// over 200 trials even one violation is overwhelmingly unlikely.
			if perTrialViolations > 0 {
				t.Errorf("%d/%d per-pair estimates strayed more than 0.3 from J=%.2f", perTrialViolations, N, j)
			}
		})
	}
}

// TestBandCollisionSCurve: the empirical probability that two sets
// share at least one band bucket tracks the analytic S-curve
// 1−(1−s^r)^b. This is the property the lsh candidate path's recall
// rests on.
func TestBandCollisionSCurve(t *testing.T) {
	const N = 400
	p := Default
	rng := rand.New(rand.NewSource(2))

	cases := []struct {
		inter, each int // J = inter/(inter+2·each)
	}{
		{5, 47},  // J ≈ 0.05: far below threshold, rare collisions
		{20, 40}, // J = 0.20
		{40, 30}, // J = 0.40
		{70, 15}, // J = 0.70: far above threshold, near-certain collision
	}
	for _, tc := range cases {
		j := float64(tc.inter) / float64(tc.inter+2*tc.each)
		want := CollisionProb(j, p)
		collided := 0
		for trial := 0; trial < N; trial++ {
			a, b := genPair(rng, tc.inter, tc.each, tc.each)
			sa := Signature(nil, a, p)
			sb := Signature(nil, b, p)
			for band := 0; band < p.Bands; band++ {
				if BandHash(sa, band, p) == BandHash(sb, band, p) {
					collided++
					break
				}
			}
		}
		got := float64(collided) / N
		// Binomial(N, want) sd is at most 0.025; 0.1 is a 4-sigma margin
		// on top of the small bias from estimating J by signature.
		if math.Abs(got-want) > 0.1 {
			t.Errorf("J=%.2f: empirical band-collision rate %.3f, S-curve predicts %.3f", j, got, want)
		}
	}

	// Identical sets collide in every band (identical signatures).
	a, _ := genPair(rng, 50, 0, 0)
	sa := Signature(nil, a, p)
	sb := Signature(nil, append([]uint64(nil), a...), p)
	for band := 0; band < p.Bands; band++ {
		if BandHash(sa, band, p) != BandHash(sb, band, p) {
			t.Fatalf("identical sets missed a collision in band %d", band)
		}
	}
}

func TestCollisionProbShape(t *testing.T) {
	p := Default
	// Monotone nondecreasing in s, pinned at the ends.
	prev := 0.0
	for s := 0.0; s <= 1.0001; s += 0.05 {
		c := CollisionProb(s, p)
		if c < prev-1e-12 {
			t.Fatalf("CollisionProb not monotone at s=%.2f", s)
		}
		prev = c
	}
	if c := CollisionProb(0, p); c != 0 {
		t.Errorf("CollisionProb(0) = %v", c)
	}
	if c := CollisionProb(1, p); math.Abs(c-1) > 1e-12 {
		t.Errorf("CollisionProb(1) = %v", c)
	}
	// Threshold sits where the curve crosses ~0.5-ish: below it the
	// curve is small, well above it the curve is near 1.
	th := p.Threshold()
	if th <= 0 || th >= 1 {
		t.Fatalf("Threshold() = %v", th)
	}
	if CollisionProb(th/2, p) > 0.5 {
		t.Errorf("curve too hot below threshold: P(%.2f) = %.3f", th/2, CollisionProb(th/2, p))
	}
	if hi := math.Min(1, th*3); CollisionProb(hi, p) < 0.9 {
		t.Errorf("curve too cold above threshold: P(%.2f) = %.3f", hi, CollisionProb(hi, p))
	}
}

func TestParamsValid(t *testing.T) {
	cases := []struct {
		p    Params
		want bool
	}{
		{Default, true},
		{Params{Bands: 16, Rows: 4, Seed: 1}, true},
		{Params{Bands: 0, Rows: 2}, false},
		{Params{Bands: 2, Rows: 0}, false},
		{Params{Bands: MaxBands + 1, Rows: 1}, false},
		{Params{Bands: 1, Rows: MaxRows + 1}, false},
		{Params{Bands: MaxBands, Rows: MaxRows}, true},
	}
	for _, tc := range cases {
		if got := tc.p.Valid(); got != tc.want {
			t.Errorf("Valid(%+v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestEstJaccardEdges(t *testing.T) {
	if got := EstJaccard([]uint32{1, 2}, []uint32{1}); got != 0 {
		t.Errorf("mismatched lengths: %v", got)
	}
	if got := EstJaccard(nil, nil); got != 0 {
		t.Errorf("empty signatures: %v", got)
	}
	a := []uint32{1, 2, 3, 4}
	b := []uint32{1, 9, 3, 9}
	if got := EstJaccard(a, b); got != 0.5 {
		t.Errorf("EstJaccard = %v, want 0.5", got)
	}
	if got := SharedPositions(a, b); got != 2 {
		t.Errorf("SharedPositions = %d, want 2", got)
	}
}
