package emu

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/corpus"
	"repro/internal/tinyc"
)

// runOne compiles src at the given level/seed and calls fnName.
func runOne(t *testing.T, src string, opt tinyc.OptLevel, seed int64, fnName string, args ...uint32) *Result {
	t.Helper()
	img, err := tinyc.Build(src, tinyc.Config{Opt: opt, Seed: seed})
	if err != nil {
		t.Fatalf("%v/%d: %v", opt, seed, err)
	}
	m, err := New(img)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.CallByName(fnName, args...)
	if err != nil {
		t.Fatalf("%v/%d: emulate: %v", opt, seed, err)
	}
	return res
}

func TestArithmeticBasics(t *testing.T) {
	src := `
	int calc(int a, int b) {
		int x = a + b * 3;
		int y = x - 7;
		int z = y / 2;
		int w = y % 5;
		return x * 1000000 + y * 10000 + z * 100 + w;
	}
	`
	// a=4, b=5: x=19, y=12, z=6, w=2 -> 19126002? x*1e6=19000000, y*1e4=120000, z*100=600, w=2.
	want := uint32(19*1000000 + 12*10000 + 6*100 + 2)
	for _, opt := range []tinyc.OptLevel{tinyc.O0, tinyc.O1, tinyc.O2, tinyc.Os} {
		res := runOne(t, src, opt, 1, "calc", 4, 5)
		if res.Ret != want {
			t.Errorf("%v: calc(4,5) = %d, want %d", opt, res.Ret, want)
		}
	}
}

func TestNegativeNumbersAndComparisons(t *testing.T) {
	src := `
	int cmp(int a, int b) {
		int r = 0;
		if (a < b) { r = r + 1; }
		if (a <= b) { r = r + 10; }
		if (a > b) { r = r + 100; }
		if (a >= b) { r = r + 1000; }
		if (a == b) { r = r + 10000; }
		if (a != b) { r = r + 100000; }
		return r;
	}
	`
	cases := []struct {
		a, b uint32
		want uint32
	}{
		{1, 2, 100011},
		{2, 1, 101100},
		{5, 5, 11010},
		{uint32(0xFFFFFFFF) /* -1 */, 1, 100011}, // signed comparison
		{1, uint32(0xFFFFFFFE) /* -2 */, 101100},
	}
	for _, opt := range []tinyc.OptLevel{tinyc.O0, tinyc.O2} {
		for _, tc := range cases {
			res := runOne(t, src, opt, 2, "cmp", tc.a, tc.b)
			if res.Ret != tc.want {
				t.Errorf("%v: cmp(%d,%d) = %d, want %d", opt, int32(tc.a), int32(tc.b), res.Ret, tc.want)
			}
		}
	}
}

func TestLoopsAndLogic(t *testing.T) {
	src := `
	int loops(int n) {
		int acc = 0;
		int i = 0;
		for (i = 0; i < n; i = i + 1) {
			if (i % 2 == 0 && i > 2) { acc = acc + i; }
			if (i == 7 || acc > 50) { break; }
		}
		while (acc > 0 && acc % 3 != 0) { acc = acc - 1; }
		return acc;
	}
	`
	// Reference: simulate in Go.
	ref := func(n int32) int32 {
		acc := int32(0)
		for i := int32(0); i < n; i++ {
			if i%2 == 0 && i > 2 {
				acc += i
			}
			if i == 7 || acc > 50 {
				break
			}
		}
		for acc > 0 && acc%3 != 0 {
			acc--
		}
		return acc
	}
	for _, opt := range []tinyc.OptLevel{tinyc.O0, tinyc.O1, tinyc.O2, tinyc.Os} {
		for _, n := range []int32{0, 1, 5, 9, 40} {
			res := runOne(t, src, opt, 3, "loops", uint32(n))
			if int32(res.Ret) != ref(n) {
				t.Errorf("%v: loops(%d) = %d, want %d", opt, n, int32(res.Ret), ref(n))
			}
		}
	}
}

func TestExternalCallTrace(t *testing.T) {
	src := `
	int talk(int a, char *s) {
		int h = printf("result: %d", a);
		if (h > 500) { h = strlen(s); }
		return h;
	}
	`
	resA := runOne(t, src, tinyc.O0, 1, "talk", 7, 0)
	resB := runOne(t, src, tinyc.O2, 9, "talk", 7, 0)
	if len(resA.Calls) == 0 {
		t.Fatal("no external calls recorded")
	}
	if !reflect.DeepEqual(callSummaries(resA.Calls), callSummaries(resB.Calls)) {
		t.Errorf("call traces differ:\n%v\n%v", resA.Calls, resB.Calls)
	}
	if resA.Ret != resB.Ret {
		t.Errorf("returns differ: %d vs %d", resA.Ret, resB.Ret)
	}
	if resA.Calls[0].Name != "printf" {
		t.Errorf("first call = %q", resA.Calls[0].Name)
	}
}

// callSummaries reduces call traces to the build-independent keys plus
// the hooked return values.
func callSummaries(calls []Call) []string {
	out := make([]string, len(calls))
	for i, c := range calls {
		out[i] = fmt.Sprintf("%s->%d", c.Key, c.Ret)
	}
	return out
}

func TestInternalCallsAndInlining(t *testing.T) {
	src := `
	int outer(int a, int b) {
		int x = helper(a) + helper(b);
		return x * refine(a, b);
	}
	int helper(int v) { int r = v * 3 + 1; return r; }
	int refine(int p, int q) {
		int m = p;
		if (q > p) { m = q; }
		return m;
	}
	`
	// O2 inlines; Os calls. Results must agree regardless.
	want := runOne(t, src, tinyc.O0, 1, "outer", 3, 4)
	for _, opt := range []tinyc.OptLevel{tinyc.O1, tinyc.O2, tinyc.Os} {
		res := runOne(t, src, opt, 5, "outer", 3, 4)
		if res.Ret != want.Ret {
			t.Errorf("%v: outer(3,4) = %d, want %d", opt, res.Ret, want.Ret)
		}
	}
	// Sanity: (3*3+1)+(4*3+1)=23; max(3,4)=4; 92.
	if want.Ret != 92 {
		t.Errorf("outer(3,4) = %d, want 92", want.Ret)
	}
}

func TestRecursion(t *testing.T) {
	src := `
	int fib(int n) {
		if (n < 2) { return n; }
		return fib(n - 1) + fib(n - 2);
	}
	`
	for _, opt := range []tinyc.OptLevel{tinyc.O0, tinyc.O2} {
		res := runOne(t, src, opt, 1, "fib", 10)
		if res.Ret != 55 {
			t.Errorf("%v: fib(10) = %d, want 55", opt, res.Ret)
		}
	}
}

func TestStringArguments(t *testing.T) {
	src := `
	int greet(int n) {
		printf("(%d) HELLO", n);
		printf("done");
		return n;
	}
	`
	res := runOne(t, src, tinyc.O2, 4, "greet", 3)
	if len(res.Calls) != 2 {
		t.Fatalf("calls = %v", res.Calls)
	}
	// First printf's first argument is the string address; second arg is n.
	if res.Calls[0].Args[1] != 3 {
		t.Errorf("printf second arg = %d, want 3", res.Calls[0].Args[1])
	}
	// Keys carry the string content, not addresses.
	if want := "printf(\"(%d) HELLO\")"; res.Calls[0].Key != want {
		t.Errorf("key = %q, want %q", res.Calls[0].Key, want)
	}
	if res.Calls[0].Key == res.Calls[1].Key {
		t.Error("distinct strings share a key")
	}
}

// TestDifferentialRandomPrograms is the heavy property test: random TinyC
// programs must compute identical results and identical external-call
// sequences at every optimization level and across context seeds.
func TestDifferentialRandomPrograms(t *testing.T) {
	type build struct {
		opt  tinyc.OptLevel
		seed int64
	}
	builds := []build{
		{tinyc.O0, 1}, {tinyc.O1, 2}, {tinyc.O2, 3}, {tinyc.O2, 4},
		{tinyc.O2, 5}, {tinyc.Os, 6},
	}
	for progSeed := int64(0); progSeed < 15; progSeed++ {
		src := corpus.RandomFunc("difffn", 1000+progSeed, corpus.GenConfig{Stmts: 25, Calls: true})
		var ref []string
		var refRet uint32
		for bi, b := range builds {
			img, err := tinyc.Build(src, tinyc.Config{Opt: b.opt, Seed: b.seed})
			if err != nil {
				t.Fatalf("prog %d %v/%d: %v", progSeed, b.opt, b.seed, err)
			}
			m, err := New(img)
			if err != nil {
				t.Fatal(err)
			}
			m.MaxSteps = 5_000_000
			res, err := m.CallByName("difffn", 6, 3, 0)
			if err != nil {
				t.Fatalf("prog %d %v/%d: %v\nsource:\n%s", progSeed, b.opt, b.seed, err, src)
			}
			sum := callSummaries(res.Calls)
			if bi == 0 {
				ref = sum
				refRet = res.Ret
				continue
			}
			if res.Ret != refRet {
				t.Errorf("prog %d %v/%d: ret %d, want %d\nsource:\n%s",
					progSeed, b.opt, b.seed, res.Ret, refRet, src)
			}
			if !reflect.DeepEqual(sum, ref) {
				t.Errorf("prog %d %v/%d: call trace diverged\n got %v\nwant %v",
					progSeed, b.opt, b.seed, sum, ref)
			}
		}
	}
}

func TestEmuErrors(t *testing.T) {
	src := `int f(int a) { return a; }`
	img, err := tinyc.Build(src, tinyc.Config{Opt: tinyc.O2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(img)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.CallByName("nosuch"); err == nil {
		t.Error("unknown function should error")
	}
	if _, err := m.CallFunction(0x1234); err == nil {
		t.Error("execution outside .text should error")
	}
	// Step limit.
	loop := `int f(int a) { while (1 == 1) { a = a + 1; } return a; }`
	img2, err := tinyc.Build(loop, tinyc.Config{Opt: tinyc.O0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := New(img2)
	if err != nil {
		t.Fatal(err)
	}
	m2.MaxSteps = 10000
	if _, err := m2.CallByName("f", 1); err == nil {
		t.Error("infinite loop should hit the step limit")
	}
	if _, err := New([]byte("junk")); err == nil {
		t.Error("New(garbage) should fail")
	}
}

// TestEmuNeverPanics drives the machine over many random programs and
// argument vectors; any failure mode must be an error, not a panic.
func TestEmuNeverPanics(t *testing.T) {
	for seed := int64(50); seed < 62; seed++ {
		src := corpus.RandomFunc("p", seed, corpus.GenConfig{Stmts: 15, Calls: true})
		img, err := tinyc.Build(src, tinyc.Config{Opt: tinyc.O2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(img)
		if err != nil {
			t.Fatal(err)
		}
		m.MaxSteps = 200000
		for _, args := range [][]uint32{
			{}, {1}, {0xFFFFFFFF, 0x80000000, 0}, {7, 7, 7, 7, 7},
		} {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic on seed %d args %v: %v", seed, args, r)
					}
				}()
				_, _ = m.CallByName("p", args...)
			}()
		}
	}
}

// TestSwitchStrategiesAgree: a dense switch lowered as a compare chain and
// as a jump table must behave identically, including out-of-range and
// negative scrutinee values that exercise the table's bounds check.
func TestSwitchStrategiesAgree(t *testing.T) {
	src := `
	int dispatch(int cmd, int x) {
		int r = 0;
		switch (cmd) {
		case 1: r = x + 10;
		case 2: r = x * 2;
		case 3:
			r = x - 5;
			if (r < 0) { r = 0; }
		case 4: r = x / 2;
		case 7: r = 77;
		default: r = 0 - 1;
		}
		return r + 1000 * cmd;
	}
	`
	// Reference semantics in Go.
	ref := func(cmd, x int32) int32 {
		r := int32(0)
		switch cmd {
		case 1:
			r = x + 10
		case 2:
			r = x * 2
		case 3:
			r = x - 5
			if r < 0 {
				r = 0
			}
		case 4:
			r = x / 2
		case 7:
			r = 77
		default:
			r = -1
		}
		return r + 1000*cmd
	}
	type build struct {
		opt  tinyc.OptLevel
		seed int64
	}
	builds := []build{{tinyc.O0, 1}}
	// Include one chain and one table O2 context.
	for seed := int64(1); seed <= 16; seed++ {
		p, err := tinyc.Compile(src, tinyc.Config{Opt: tinyc.O2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		hasTable := false
		for _, d := range p.Data {
			if len(d.Name) > 5 && d.Name[:5] == "jtab_" {
				hasTable = true
			}
		}
		if hasTable {
			builds = append(builds, build{tinyc.O2, seed})
			break
		}
	}
	builds = append(builds, build{tinyc.Os, 3})
	if len(builds) < 3 {
		t.Fatal("no jump-table context found")
	}
	for _, b := range builds {
		for _, cmd := range []int32{-5, 0, 1, 2, 3, 4, 5, 6, 7, 8, 100} {
			res := runOne(t, src, b.opt, b.seed, "dispatch", uint32(cmd), 9)
			if int32(res.Ret) != ref(cmd, 9) {
				t.Errorf("%v/%d: dispatch(%d, 9) = %d, want %d",
					b.opt, b.seed, cmd, int32(res.Ret), ref(cmd, 9))
			}
		}
	}
}

// TestGlobalsSemantics: mutable globals behave identically across
// optimization levels, including through inlined callees, and each
// CallFunction starts from fresh initializers.
func TestGlobalsSemantics(t *testing.T) {
	src := `
	int counter = 7;
	int limit = 20;
	int bump(int by) {
		counter = counter + by;
		if (counter > limit) { counter = limit; }
		return counter;
	}
	int run(int n) {
		int i = 0;
		for (i = 0; i < n; i = i + 1) { bump(i); }
		return counter * 1000 + limit;
	}
	`
	ref := func(n int32) int32 {
		counter, limit := int32(7), int32(20)
		for i := int32(0); i < n; i++ {
			counter += i
			if counter > limit {
				counter = limit
			}
		}
		return counter*1000 + limit
	}
	for _, opt := range []tinyc.OptLevel{tinyc.O0, tinyc.O1, tinyc.O2, tinyc.Os} {
		img, err := tinyc.Build(src, tinyc.Config{Opt: opt, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		m, err := New(img)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int32{0, 1, 3, 10} {
			res, err := m.CallByName("run", uint32(n))
			if err != nil {
				t.Fatalf("%v: %v", opt, err)
			}
			if int32(res.Ret) != ref(n) {
				t.Errorf("%v: run(%d) = %d, want %d", opt, n, int32(res.Ret), ref(n))
			}
		}
	}
}
