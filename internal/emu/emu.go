// Package emu is a user-mode x86-32 emulator for the instruction subset
// emitted by the TinyC compiler. Its purpose is differential testing: the
// same source compiled at O0/O1/O2/Os (and under different context seeds)
// must compute the same return value and make the same external calls with
// the same arguments. This validates the compiler, assembler, linker and
// decoder stack semantically, independent of the similarity pipeline.
//
// External (imported) functions are modeled by a deterministic host hook:
// each call is recorded in the trace and returns a value derived from the
// import's name and arguments, so differing builds can be compared
// call-for-call.
package emu

import (
	"fmt"
	"hash/fnv"

	"repro/internal/asm"
	"repro/internal/bin"
)

// Call is one recorded external call.
type Call struct {
	Name string
	Args []uint32 // raw argument words (a fixed window; see ArgWords)
	Ret  uint32
	// Key is a build-independent signature: the name plus the normalized
	// first argument (data-section pointers are replaced by their content,
	// so two builds placing a string at different addresses still agree).
	Key string
}

// Result is the outcome of an emulated function call.
type Result struct {
	Ret   uint32
	Calls []Call
	Steps int
}

// Machine emulates one loaded image.
type Machine struct {
	file *bin.File
	// MaxSteps bounds execution (default 2,000,000).
	MaxSteps int
	// ArgWords is how many argument words external calls record (default 4;
	// cdecl callees cannot know their arity, so a fixed window is used).
	ArgWords int

	regs  [8]uint32
	zf    bool
	sf    bool
	of    bool
	cf    bool
	stack []byte
	ram   map[int][]byte // fresh writable copies of writable sections
	calls []Call
	steps int
}

const (
	stackBase = 0xFFF00000 // top of the emulated stack region
	stackSize = 1 << 20
	// retSentinel is the return address pushed for the top-level call; a
	// ret to it ends emulation.
	retSentinel = 0xDEADBEE0
)

// New prepares a machine for an image.
func New(img []byte) (*Machine, error) {
	f, err := bin.Read(img)
	if err != nil {
		return nil, err
	}
	return &Machine{file: f, MaxSteps: 2_000_000, ArgWords: 4}, nil
}

// CallFunction emulates a cdecl call to the function at addr with the
// given integer arguments.
func (m *Machine) CallFunction(addr uint32, args ...uint32) (*Result, error) {
	m.stack = make([]byte, stackSize)
	m.ram = make(map[int][]byte)
	for i := range m.file.Sections {
		if s := &m.file.Sections[i]; s.Writable() && len(s.Data) > 0 {
			m.ram[i] = append([]byte(nil), s.Data...)
		}
	}
	m.calls = nil
	m.steps = 0
	for i := range m.regs {
		m.regs[i] = 0
	}
	esp := uint32(stackBase - 64)
	// Push args right to left, then the sentinel return address.
	for i := len(args) - 1; i >= 0; i-- {
		esp -= 4
		if err := m.store32(esp, args[i]); err != nil {
			return nil, err
		}
	}
	esp -= 4
	if err := m.store32(esp, retSentinel); err != nil {
		return nil, err
	}
	m.regs[asm.ESP.Num32()] = esp
	m.regs[asm.EBP.Num32()] = stackBase - 8

	ip := addr
	for {
		if m.steps >= m.MaxSteps {
			return nil, fmt.Errorf("emu: step limit exceeded at %#x", ip)
		}
		m.steps++
		next, done, err := m.step(ip)
		if err != nil {
			return nil, fmt.Errorf("emu: at %#x: %w", ip, err)
		}
		if done {
			break
		}
		ip = next
	}
	return &Result{Ret: m.regs[asm.EAX.Num32()], Calls: m.calls, Steps: m.steps}, nil
}

// CallByName finds a function by (ground-truth or recovered) name.
func (m *Machine) CallByName(name string, args ...uint32) (*Result, error) {
	fns, err := m.file.Functions()
	if err != nil {
		return nil, err
	}
	for _, fn := range fns {
		if fn.Name == name {
			return m.CallFunction(fn.Addr, args...)
		}
	}
	return nil, fmt.Errorf("emu: no function %q", name)
}

// ---------------------------------------------------------------------
// Memory.

func (m *Machine) load32(addr uint32) (uint32, error) {
	if b, ok := m.stackSlice(addr); ok {
		return le32(b), nil
	}
	for i := range m.file.Sections {
		s := &m.file.Sections[i]
		if s.Addr != 0 && s.Contains(addr) && addr+4 <= s.Addr+uint32(len(s.Data)) {
			if copyData, ok := m.ram[i]; ok {
				return le32(copyData[addr-s.Addr:]), nil
			}
			return le32(s.Data[addr-s.Addr:]), nil
		}
	}
	return 0, fmt.Errorf("load from unmapped address %#x", addr)
}

func (m *Machine) store32(addr uint32, v uint32) error {
	b, ok := m.stackSlice(addr)
	if !ok {
		for i := range m.file.Sections {
			s := &m.file.Sections[i]
			if s.Addr != 0 && s.Contains(addr) && addr+4 <= s.Addr+uint32(len(s.Data)) {
				if copyData, ok := m.ram[i]; ok {
					b = copyData[addr-s.Addr:]
					goto write
				}
				return fmt.Errorf("store to read-only address %#x", addr)
			}
		}
		return fmt.Errorf("store to unmapped address %#x", addr)
	}
write:
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	return nil
}

func (m *Machine) stackSlice(addr uint32) ([]byte, bool) {
	lo := uint32(stackBase - stackSize)
	if addr < lo || addr+4 > stackBase {
		return nil, false
	}
	off := addr - lo
	return m.stack[off : off+4], true
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// ---------------------------------------------------------------------
// Register and operand access.

func (m *Machine) reg(r asm.Reg) uint32 { return m.regs[r.Num32()] }

func (m *Machine) setReg(r asm.Reg, v uint32) { m.regs[r.Num32()] = v }

// reg8 reads an 8-bit register through its 32-bit alias.
func (m *Machine) reg8(r asm.Reg) uint32 {
	n := r.Num8()
	if n < 4 {
		return m.regs[n] & 0xFF
	}
	return (m.regs[n-4] >> 8) & 0xFF
}

func (m *Machine) setReg8(r asm.Reg, v uint32) {
	n := r.Num8()
	if n < 4 {
		m.regs[n] = m.regs[n]&^uint32(0xFF) | v&0xFF
	} else {
		m.regs[n-4] = m.regs[n-4]&^uint32(0xFF00) | (v&0xFF)<<8
	}
}

// effAddr computes a memory operand's address.
func (m *Machine) effAddr(op asm.Operand) (uint32, error) {
	var addr uint32
	i := 0
	terms := op.Mem
	for i < len(terms) {
		t := terms[i]
		// Scaled pair reg*imm.
		if i+1 < len(terms) && terms[i+1].Op == asm.OpMul {
			if !t.Arg.IsReg() || !terms[i+1].Arg.IsImm() {
				return 0, fmt.Errorf("bad scaled term in %s", op)
			}
			addr += m.reg(t.Arg.Reg) * uint32(terms[i+1].Arg.Imm)
			i += 2
			continue
		}
		var v uint32
		switch {
		case t.Arg.IsReg():
			v = m.reg(t.Arg.Reg)
		case t.Arg.IsImm():
			v = uint32(t.Arg.Imm)
		default:
			return 0, fmt.Errorf("symbolic term in %s", op)
		}
		if t.Op == asm.OpSub {
			addr -= v
		} else {
			addr += v
		}
		i++
	}
	return addr, nil
}

// value reads an operand (register, immediate or memory).
func (m *Machine) value(op asm.Operand) (uint32, error) {
	if op.IsMem() {
		a, err := m.effAddr(op)
		if err != nil {
			return 0, err
		}
		return m.load32(a)
	}
	switch {
	case op.Arg.IsReg():
		if op.Arg.Reg.Is8() {
			return m.reg8(op.Arg.Reg), nil
		}
		return m.reg(op.Arg.Reg), nil
	case op.Arg.IsImm():
		return uint32(op.Arg.Imm), nil
	}
	return 0, fmt.Errorf("cannot read operand %s", op)
}

// assign writes an operand destination.
func (m *Machine) assign(op asm.Operand, v uint32) error {
	if op.IsMem() {
		a, err := m.effAddr(op)
		if err != nil {
			return err
		}
		return m.store32(a, v)
	}
	if op.Arg.IsReg() {
		if op.Arg.Reg.Is8() {
			m.setReg8(op.Arg.Reg, v)
			return nil
		}
		m.setReg(op.Arg.Reg, v)
		return nil
	}
	return fmt.Errorf("cannot write operand %s", op)
}

func (m *Machine) push(v uint32) error {
	esp := m.reg(asm.ESP) - 4
	m.setReg(asm.ESP, esp)
	return m.store32(esp, v)
}

func (m *Machine) pop() (uint32, error) {
	esp := m.reg(asm.ESP)
	v, err := m.load32(esp)
	if err != nil {
		return 0, err
	}
	m.setReg(asm.ESP, esp+4)
	return v, nil
}

// hookImport models an external call deterministically. The return value
// derives from the call's build-independent signature, so every build of
// the same source sees the same environment behaviour.
func (m *Machine) hookImport(name string) error {
	esp := m.reg(asm.ESP)
	args := make([]uint32, m.ArgWords)
	for i := range args {
		v, err := m.load32(esp + 4 + uint32(4*i))
		if err != nil {
			break // fewer argument words reachable; fine
		}
		args[i] = v
	}
	// Normalize the first argument: only it is guaranteed meaningful for
	// every import in the pool (cdecl callees cannot reveal their arity,
	// and words beyond the real arity hold build-dependent stack junk).
	key := name + "(" + m.normalizeArg(args[0]) + ")"
	h := fnv.New32a()
	h.Write([]byte(key))
	// Small positive return keeps generated arithmetic well-behaved.
	ret := h.Sum32() % 1000
	m.calls = append(m.calls, Call{Name: name, Args: args, Ret: ret, Key: key})
	m.setReg(asm.EAX, ret)
	return nil
}

// normalizeArg renders an argument word build-independently: pointers into
// initialized data become their (NUL-terminated) content, everything else
// its numeric value.
func (m *Machine) normalizeArg(v uint32) string {
	if data, ok := m.file.DataAt(v); ok {
		n := 0
		for n < len(data) && n < 64 && data[n] != 0 {
			n++
		}
		return fmt.Sprintf("%q", data[:n])
	}
	return fmt.Sprintf("%d", v)
}
