package emu

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/x86"
)

// step executes the instruction at ip and returns the next ip, or
// done=true when the top-level function returned.
func (m *Machine) step(ip uint32) (next uint32, done bool, err error) {
	text := m.file.Section(".text")
	if text == nil || !text.Contains(ip) {
		return 0, false, fmt.Errorf("execution outside .text")
	}
	in, size, err := x86.Decode(text.Data[ip-text.Addr:], ip)
	if err != nil {
		return 0, false, err
	}
	next = ip + uint32(size)

	val := func(i int) (uint32, error) { return m.value(in.Ops[i]) }

	switch in.Mnemonic {
	case "nop":
	case "mov":
		v, err := val(1)
		if err != nil {
			return 0, false, err
		}
		if err := m.assign(in.Ops[0], v); err != nil {
			return 0, false, err
		}
	case "movzx":
		v, err := val(1)
		if err != nil {
			return 0, false, err
		}
		if in.Ops[1].IsMem() {
			v &= 0xFF // byte load
		}
		if err := m.assign(in.Ops[0], v); err != nil {
			return 0, false, err
		}
	case "movsx":
		v, err := val(1)
		if err != nil {
			return 0, false, err
		}
		v = uint32(int32(int8(v)))
		if err := m.assign(in.Ops[0], v); err != nil {
			return 0, false, err
		}
	case "lea":
		a, err := m.effAddr(in.Ops[1])
		if err != nil {
			return 0, false, err
		}
		if err := m.assign(in.Ops[0], a); err != nil {
			return 0, false, err
		}
	case "add", "sub", "and", "or", "xor", "adc", "sbb":
		if err := m.alu(in); err != nil {
			return 0, false, err
		}
	case "cmp":
		a, err := val(0)
		if err != nil {
			return 0, false, err
		}
		b, err := val(1)
		if err != nil {
			return 0, false, err
		}
		m.subFlags(a, b)
	case "test":
		a, err := val(0)
		if err != nil {
			return 0, false, err
		}
		b, err := val(1)
		if err != nil {
			return 0, false, err
		}
		m.logicFlags(a & b)
	case "inc", "dec":
		v, err := val(0)
		if err != nil {
			return 0, false, err
		}
		var r uint32
		if in.Mnemonic == "inc" {
			r = v + 1
			m.of = v == 0x7FFFFFFF
		} else {
			r = v - 1
			m.of = v == 0x80000000
		}
		m.zf = r == 0
		m.sf = int32(r) < 0
		if err := m.assign(in.Ops[0], r); err != nil {
			return 0, false, err
		}
	case "neg":
		v, err := val(0)
		if err != nil {
			return 0, false, err
		}
		r := -v
		m.subFlags(0, v)
		if err := m.assign(in.Ops[0], r); err != nil {
			return 0, false, err
		}
	case "not":
		v, err := val(0)
		if err != nil {
			return 0, false, err
		}
		if err := m.assign(in.Ops[0], ^v); err != nil {
			return 0, false, err
		}
	case "imul":
		if err := m.imul(in); err != nil {
			return 0, false, err
		}
	case "idiv":
		v, err := val(0)
		if err != nil {
			return 0, false, err
		}
		if v == 0 {
			return 0, false, fmt.Errorf("division by zero")
		}
		num := int64(int32(m.reg(asm.EDX)))<<32 | int64(m.reg(asm.EAX))
		den := int64(int32(v))
		q := num / den
		r := num % den
		if q > 0x7FFFFFFF || q < -0x80000000 {
			return 0, false, fmt.Errorf("idiv overflow")
		}
		m.setReg(asm.EAX, uint32(int32(q)))
		m.setReg(asm.EDX, uint32(int32(r)))
	case "cdq":
		if int32(m.reg(asm.EAX)) < 0 {
			m.setReg(asm.EDX, 0xFFFFFFFF)
		} else {
			m.setReg(asm.EDX, 0)
		}
	case "shl", "shr", "sar":
		v, err := val(0)
		if err != nil {
			return 0, false, err
		}
		n, err := val(1)
		if err != nil {
			return 0, false, err
		}
		n &= 31
		var r uint32
		switch in.Mnemonic {
		case "shl":
			r = v << n
		case "shr":
			r = v >> n
		default:
			r = uint32(int32(v) >> n)
		}
		if n != 0 {
			m.logicFlags(r)
		}
		if err := m.assign(in.Ops[0], r); err != nil {
			return 0, false, err
		}
	case "push":
		v, err := val(0)
		if err != nil {
			return 0, false, err
		}
		if err := m.push(v); err != nil {
			return 0, false, err
		}
	case "pop":
		v, err := m.pop()
		if err != nil {
			return 0, false, err
		}
		if err := m.assign(in.Ops[0], v); err != nil {
			return 0, false, err
		}
	case "leave":
		m.setReg(asm.ESP, m.reg(asm.EBP))
		v, err := m.pop()
		if err != nil {
			return 0, false, err
		}
		m.setReg(asm.EBP, v)
	case "retn", "ret":
		v, err := m.pop()
		if err != nil {
			return 0, false, err
		}
		if v == retSentinel {
			return 0, true, nil
		}
		return v, false, nil
	case "call":
		target, err := val(0)
		if err != nil {
			return 0, false, err
		}
		if err := m.push(next); err != nil {
			return 0, false, err
		}
		if m.file.InPLT(target) {
			name, ok := m.file.ImportAt(target)
			if !ok {
				return 0, false, fmt.Errorf("call into unknown PLT slot %#x", target)
			}
			if err := m.hookImport(strings.TrimPrefix(name, "_")); err != nil {
				return 0, false, err
			}
			if _, err := m.pop(); err != nil { // discard pushed return address
				return 0, false, err
			}
			return next, false, nil
		}
		return target, false, nil
	case "jmp":
		t, err := val(0)
		if err != nil {
			return 0, false, err
		}
		return t, false, nil
	default:
		if cond, ok := m.jccCond(in.Mnemonic, "j"); ok {
			t, err := val(0)
			if err != nil {
				return 0, false, err
			}
			if cond {
				return t, false, nil
			}
			return next, false, nil
		}
		if cond, ok := m.jccCond(in.Mnemonic, "set"); ok {
			v := uint32(0)
			if cond {
				v = 1
			}
			if err := m.assign(in.Ops[0], v); err != nil {
				return 0, false, err
			}
			return next, false, nil
		}
		if cond, ok := m.jccCond(in.Mnemonic, "cmov"); ok {
			if cond {
				v, err := val(1)
				if err != nil {
					return 0, false, err
				}
				if err := m.assign(in.Ops[0], v); err != nil {
					return 0, false, err
				}
			}
			return next, false, nil
		}
		return 0, false, fmt.Errorf("unimplemented mnemonic %q", in.Mnemonic)
	}
	return next, false, nil
}

// alu executes the two-operand flag-setting arithmetic group.
func (m *Machine) alu(in asm.Inst) error {
	a, err := m.value(in.Ops[0])
	if err != nil {
		return err
	}
	b, err := m.value(in.Ops[1])
	if err != nil {
		return err
	}
	var r uint32
	switch in.Mnemonic {
	case "add":
		r = a + b
		m.addFlags(a, b, r)
	case "adc":
		c := uint32(0)
		if m.cf {
			c = 1
		}
		r = a + b + c
		m.addFlags(a, b, r)
	case "sub":
		r = a - b
		m.subFlags(a, b)
	case "sbb":
		c := uint32(0)
		if m.cf {
			c = 1
		}
		r = a - b - c
		m.subFlags(a, b)
	case "and":
		r = a & b
		m.logicFlags(r)
	case "or":
		r = a | b
		m.logicFlags(r)
	case "xor":
		r = a ^ b
		m.logicFlags(r)
	}
	return m.assign(in.Ops[0], r)
}

func (m *Machine) imul(in asm.Inst) error {
	switch len(in.Ops) {
	case 1:
		v, err := m.value(in.Ops[0])
		if err != nil {
			return err
		}
		p := int64(int32(m.reg(asm.EAX))) * int64(int32(v))
		m.setReg(asm.EAX, uint32(p))
		m.setReg(asm.EDX, uint32(p>>32))
		return nil
	case 2:
		a, err := m.value(in.Ops[0])
		if err != nil {
			return err
		}
		b, err := m.value(in.Ops[1])
		if err != nil {
			return err
		}
		return m.assign(in.Ops[0], uint32(int32(a)*int32(b)))
	case 3:
		b, err := m.value(in.Ops[1])
		if err != nil {
			return err
		}
		c, err := m.value(in.Ops[2])
		if err != nil {
			return err
		}
		return m.assign(in.Ops[0], uint32(int32(b)*int32(c)))
	}
	return fmt.Errorf("bad imul arity")
}

// Flag helpers (32-bit semantics).

func (m *Machine) addFlags(a, b, r uint32) {
	m.zf = r == 0
	m.sf = int32(r) < 0
	m.cf = r < a
	m.of = (int32(a) >= 0) == (int32(b) >= 0) && (int32(r) >= 0) != (int32(a) >= 0)
}

func (m *Machine) subFlags(a, b uint32) {
	r := a - b
	m.zf = r == 0
	m.sf = int32(r) < 0
	m.cf = a < b
	m.of = (int32(a) >= 0) != (int32(b) >= 0) && (int32(r) >= 0) != (int32(a) >= 0)
}

func (m *Machine) logicFlags(r uint32) {
	m.zf = r == 0
	m.sf = int32(r) < 0
	m.cf = false
	m.of = false
}

// jccCond evaluates a condition-suffixed mnemonic against current flags.
func (m *Machine) jccCond(mnemonic, prefix string) (bool, bool) {
	if !strings.HasPrefix(mnemonic, prefix) || len(mnemonic) <= len(prefix) {
		return false, false
	}
	switch mnemonic[len(prefix):] {
	case "z", "e":
		return m.zf, true
	case "nz", "ne":
		return !m.zf, true
	case "l":
		return m.sf != m.of, true
	case "ge":
		return m.sf == m.of, true
	case "le":
		return m.zf || m.sf != m.of, true
	case "g":
		return !m.zf && m.sf == m.of, true
	case "b":
		return m.cf, true
	case "ae":
		return !m.cf, true
	case "be":
		return m.cf || m.zf, true
	case "a":
		return !m.cf && !m.zf, true
	case "s":
		return m.sf, true
	case "ns":
		return !m.sf, true
	case "o":
		return m.of, true
	case "no":
		return !m.of, true
	}
	return false, false
}
