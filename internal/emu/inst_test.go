package emu

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/bin"
)

// buildListing links a single hand-written function for instruction-level
// emulator tests.
func buildListing(t *testing.T, src string) *Machine {
	t.Helper()
	insts, labels, err := asm.ParseListing(src)
	if err != nil {
		t.Fatal(err)
	}
	img, err := bin.Link(&bin.Program{
		Funcs:   []bin.Func{{Name: "f", Insts: insts, Labels: labels}},
		Align16: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(img)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// evalF runs f(args...) and returns eax.
func evalF(t *testing.T, src string, args ...uint32) uint32 {
	t.Helper()
	m := buildListing(t, src)
	res, err := m.CallByName("f", args...)
	if err != nil {
		t.Fatalf("emulate: %v", err)
	}
	return res.Ret
}

func TestInstArithmetic(t *testing.T) {
	tests := []struct {
		name string
		src  string
		args []uint32
		want uint32
	}{
		{"add", "mov eax, [esp+4]\nadd eax, [esp+8]\nretn", []uint32{3, 4}, 7},
		{"sub", "mov eax, [esp+4]\nsub eax, 10\nretn", []uint32{3}, 0xFFFFFFF9},
		{"and-or-xor", "mov eax, 0F0h\nor eax, 0Fh\nand eax, 3Ch\nxor eax, 1\nretn", nil, 0x3D},
		{"neg", "mov eax, 5\nneg eax\nretn", nil, 0xFFFFFFFB},
		{"not", "mov eax, 0\nnot eax\nretn", nil, 0xFFFFFFFF},
		{"inc-dec", "mov eax, 7\ninc eax\ninc eax\ndec eax\nretn", nil, 8},
		{"imul2", "mov eax, 6\nmov ecx, 7\nimul eax, ecx\nretn", nil, 42},
		{"imul3", "mov ecx, 6\nimul eax, ecx, -2\nretn", nil, 0xFFFFFFF4},
		{"imul1", "mov eax, 40000h\nmov ecx, 40000h\nimul ecx\nmov eax, edx\nretn", nil, 0x10},
		{"shl", "mov eax, 3\nshl eax, 4\nretn", nil, 48},
		{"shr", "mov eax, -1\nshr eax, 28", nil, 0xF},
		{"sar", "mov eax, -16\nsar eax, 2\nretn", nil, 0xFFFFFFFC},
		{"lea", "mov ecx, 10\nmov edx, 3\nlea eax, [ecx+edx*4+5]\nretn", nil, 27},
		{"adc", "mov eax, -1\nadd eax, 2\nmov eax, 0\nadc eax, 0\nretn", nil, 1},
		{"sbb", "mov eax, 0\nsub eax, 1\nmov eax, 10\nsbb eax, 2\nretn", nil, 7},
		{"cdq-idiv", "mov eax, -7\ncdq\nmov ecx, 2\nidiv ecx\nretn", nil, 0xFFFFFFFD},
		{"movzx", "mov eax, 1FFh\nmovzx ecx, al\nmov eax, ecx\nretn", nil, 0xFF},
		{"movsx", "mov eax, 80h\nmovsx ecx, al\nmov eax, ecx\nretn", nil, 0xFFFFFF80},
		{"setcc", "mov eax, 3\ncmp eax, 3\nsetz al\nmovzx eax, al\nretn", nil, 1},
		{"cmov-taken", "mov eax, 1\nmov ecx, 9\ncmp eax, 1\ncmovz eax, ecx\nretn", nil, 9},
		{"cmov-skipped", "mov eax, 1\nmov ecx, 9\ncmp eax, 2\ncmovz eax, ecx\nretn", nil, 1},
		{"xchg-free-mov8", "mov eax, 0\nmov ecx, 12Fh\nmov al, cl\nmovzx eax, al\nretn", nil, 0x2F},
	}
	for _, tc := range tests {
		src := tc.src
		if src[len(src)-4:] != "retn" {
			src += "\nretn"
		}
		if got := evalF(t, src, tc.args...); got != tc.want {
			t.Errorf("%s: got %#x, want %#x", tc.name, got, tc.want)
		}
	}
}

func TestInstUnsignedBranches(t *testing.T) {
	// jb/ja/jbe/jae use CF: 1 < -1 unsigned is true.
	src := `
		mov eax, 1
		cmp eax, -1
		jb below
		mov eax, 0
		retn
	below:
		mov eax, 42
		retn
	`
	if got := evalF(t, src); got != 42 {
		t.Errorf("unsigned below: %d", got)
	}
	src2 := `
		mov eax, -1
		cmp eax, 1
		ja above
		mov eax, 0
		retn
	above:
		mov eax, 7
		retn
	`
	if got := evalF(t, src2); got != 7 {
		t.Errorf("unsigned above: %d", got)
	}
}

func TestInstSignOverflowBranches(t *testing.T) {
	// jl must use SF != OF: INT_MIN < 1 despite overflow in the subtract.
	src := `
		mov eax, 80000000h
		cmp eax, 1
		jl less
		mov eax, 0
		retn
	less:
		mov eax, 1
		retn
	`
	if got := evalF(t, src); got != 1 {
		t.Errorf("INT_MIN < 1 not detected: %d", got)
	}
	// js after a negative result.
	src2 := `
		mov eax, 3
		sub eax, 10
		js neg_
		mov eax, 0
		retn
	neg_:
		mov eax, 5
		retn
	`
	if got := evalF(t, src2); got != 5 {
		t.Errorf("sign flag branch: %d", got)
	}
}

func TestInstStackOps(t *testing.T) {
	src := `
		push 11h
		push 22h
		pop eax
		pop ecx
		add eax, ecx
		retn
	`
	if got := evalF(t, src); got != 0x33 {
		t.Errorf("push/pop: %#x", got)
	}
	// push/pop through memory operands.
	src2 := `
		push ebp
		mov ebp, esp
		sub esp, 8
		mov [ebp-4], 0
		mov [ebp-8], 0
		push 5
		pop [ebp-4]
		inc [ebp-4]
		dec [ebp-8]
		mov eax, [ebp-4]
		add eax, [ebp-8]
		mov esp, ebp
		pop ebp
		retn
	`
	if got := evalF(t, src2); got != 5 {
		t.Errorf("mem push/pop/inc/dec: %#x", got)
	}
}

func TestInstHigh8Registers(t *testing.T) {
	// ah = bits 8..15 of eax.
	src := `
		mov eax, 1234h
		mov cl, ah
		movzx eax, cl
		retn
	`
	if got := evalF(t, src); got != 0x12 {
		t.Errorf("high-8 read: %#x", got)
	}
	src2 := `
		mov eax, 0
		mov ecx, 56h
		mov ah, cl
		retn
	`
	if got := evalF(t, src2); got != 0x5600 {
		t.Errorf("high-8 write: %#x", got)
	}
}

func TestInstIndirectFaults(t *testing.T) {
	// Loads and stores to unmapped addresses must error, not panic.
	m := buildListing(t, "mov eax, [12345h]\nretn")
	if _, err := m.CallByName("f"); err == nil {
		t.Error("unmapped load should error")
	}
	m2 := buildListing(t, "mov [12345h], eax\nretn")
	if _, err := m2.CallByName("f"); err == nil {
		t.Error("unmapped store should error")
	}
	m3 := buildListing(t, "mov eax, 0\nmov ecx, 5\ncdq\nidiv eax\nretn")
	if _, err := m3.CallByName("f"); err == nil {
		t.Error("division by zero should error")
	}
	m4 := buildListing(t, "mov eax, 80000000h\ncdq\nmov ecx, -1\nidiv ecx\nretn")
	if _, err := m4.CallByName("f"); err == nil {
		t.Error("idiv overflow should error")
	}
}

func TestInstTestAndLogicBranches(t *testing.T) {
	src := `
		mov eax, [esp+4]
		test eax, eax
		jnz nonzero
		mov eax, 100
		retn
	nonzero:
		mov eax, 200
		retn
	`
	if got := evalF(t, src, 0); got != 100 {
		t.Errorf("test zero: %d", got)
	}
	if got := evalF(t, src, 9); got != 200 {
		t.Errorf("test nonzero: %d", got)
	}
}
