package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Span is one node of a hierarchical query trace: a named, timed region
// with integer attributes and child spans. Spans answer "where did THIS
// query go" (decompose → scan → per-candidate compare → per-tracelet
// decision), complementing the Collector's aggregates.
//
// All methods are safe on a nil *Span and safe for concurrent use, so a
// span can be threaded through CompareMany's worker pool: children may be
// attached from multiple goroutines.
type Span struct {
	mu       sync.Mutex
	name     string
	traceID  string // root spans only: the request's 128-bit trace ID
	start    time.Time
	durNS    int64
	attrs    map[string]int64
	children []*Span
}

// StartSpan starts a root span.
func StartSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// StartTraceSpan starts a root span bound to a trace ID (minting a fresh
// one when id is empty or malformed), the form every request-scoped root
// uses: the ID is what joins this span tree to client stats, access logs
// and error bodies.
func StartTraceSpan(name, id string) *Span {
	if !isHex(id, 32) {
		id = NewTraceID()
	}
	return &Span{name: name, traceID: id, start: time.Now()}
}

// TraceID returns the span's trace ID ("" on nil or non-root spans).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.traceID
}

// Child starts and attaches a child span. On a nil receiver it returns
// nil (which itself accepts every Span method), so tracing code needs no
// guards — though callers should still avoid computing expensive names
// for a nil parent.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End records the span duration. Calling End more than once keeps the
// first measurement.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.durNS == 0 {
		s.durNS = time.Since(s.start).Nanoseconds()
		if s.durNS == 0 {
			s.durNS = 1 // a finished span is never 0ns — 0 means "unfinished"
		}
	}
	s.mu.Unlock()
}

// Set stores an integer attribute on the span.
func (s *Span) Set(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]int64)
	}
	s.attrs[key] = v
	s.mu.Unlock()
}

// Add increments an integer attribute on the span.
func (s *Span) Add(key string, delta int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]int64)
	}
	s.attrs[key] += delta
	s.mu.Unlock()
}

// Name returns the span name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Attr returns one attribute value (0 if absent or nil span).
func (s *Span) Attr(key string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attrs[key]
}

// Children returns a copy of the child slice.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Duration returns the span's recorded duration, or the elapsed time so
// far for an unfinished span (0 on nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.durNS == 0 {
		return time.Since(s.start)
	}
	return time.Duration(s.durNS)
}

// spanCtxKey keys the request span in a context.Context.
type spanCtxKey struct{}

// ContextWithSpan returns a context carrying sp. A nil span is carried
// too (SpanFromContext then returns nil), so pipeline code can thread
// the context unconditionally — nil propagates as "tracing off" exactly
// like the nil *Span itself does.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the span carried by ctx, or nil. Every Span
// method accepts a nil receiver, so the result can be used unguarded.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// spanJSON is the wire form of a span tree.
type spanJSON struct {
	Name     string           `json:"name"`
	TraceID  string           `json:"trace_id,omitempty"`
	DurNS    int64            `json:"dur_ns"`
	Attrs    map[string]int64 `json:"attrs,omitempty"`
	Children []*Span          `json:"children,omitempty"`
}

// MarshalJSON serializes the span tree. An unfinished span reports the
// elapsed time so far.
func (s *Span) MarshalJSON() ([]byte, error) {
	if s == nil {
		return []byte("null"), nil
	}
	s.mu.Lock()
	j := spanJSON{Name: s.name, TraceID: s.traceID, DurNS: s.durNS}
	if j.DurNS == 0 {
		j.DurNS = time.Since(s.start).Nanoseconds()
	}
	if len(s.attrs) > 0 {
		j.Attrs = make(map[string]int64, len(s.attrs))
		for k, v := range s.attrs {
			j.Attrs[k] = v
		}
	}
	j.Children = append(j.Children, s.children...)
	s.mu.Unlock()
	return json.Marshal(j)
}

// WriteJSON writes the span tree as indented JSON.
func (s *Span) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
