package telemetry

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"
)

// The flight recorder answers "why was THIS request slow" after the
// fact: a fixed-size, heap-bounded ring that retains the N slowest
// requests and the N most recent errored/cancelled requests, each with
// its full span tree, served as JSON at /debug/requests. Because the
// span trees are retained by reference, a recorded request costs only
// the spans the request already allocated plus one RequestRecord — the
// memory bound is MaxSlow+MaxErrors record slots, not per-traffic.

// RequestRecord is one retained request: identity, outcome, flags and
// the root span tree (per-stage children included).
type RequestRecord struct {
	TraceID string    `json:"trace_id"`
	Method  string    `json:"method"`
	Path    string    `json:"path"`
	Start   time.Time `json:"start"`
	DurMS   float64   `json:"dur_ms"`
	Status  int       `json:"status"`
	Error   string    `json:"error,omitempty"`

	Attempt int  `json:"attempt,omitempty"` // client retry attempt (0 = first)
	Hedge   bool `json:"hedge,omitempty"`   // request was a hedge duplicate

	Cached    bool `json:"cached,omitempty"`
	Degraded  bool `json:"degraded,omitempty"`
	Truncated bool `json:"truncated,omitempty"`
	Slow      bool `json:"slow,omitempty"` // over the slow-query threshold

	Span *Span `json:"span,omitempty"`
}

// FlightRecorder retains the slowest and the most recently failed
// requests. The zero value is unusable; use NewFlightRecorder. A nil
// *FlightRecorder no-ops on every method, the usual "off" value.
type FlightRecorder struct {
	mu       sync.Mutex
	maxSlow  int
	maxErr   int
	slowest  []*RequestRecord // sorted by DurMS descending, capped at maxSlow
	errored  []*RequestRecord // ring, most recent last, capped at maxErr
	errNext  int
	errFull  bool
	recorded uint64
}

// Default flight-recorder shape: enough to debug an incident, small
// enough to forget about.
const (
	DefaultFlightSlow   = 32
	DefaultFlightErrors = 32
)

// NewFlightRecorder returns a recorder keeping the maxSlow slowest and
// the maxErrors most recent errored requests (<= 0 selects the
// defaults).
func NewFlightRecorder(maxSlow, maxErrors int) *FlightRecorder {
	if maxSlow <= 0 {
		maxSlow = DefaultFlightSlow
	}
	if maxErrors <= 0 {
		maxErrors = DefaultFlightErrors
	}
	return &FlightRecorder{
		maxSlow: maxSlow,
		maxErr:  maxErrors,
		errored: make([]*RequestRecord, maxErrors),
	}
}

// Record offers one finished request to the recorder. Errored requests
// (status >= 400, which includes 499 cancellations and 5xx) enter the
// recent-error ring; every request competes for a slowest slot. The
// record is retained by reference — callers must not mutate it after.
func (f *FlightRecorder) Record(rec *RequestRecord) {
	if f == nil || rec == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.recorded++
	if rec.Status >= 400 {
		f.errored[f.errNext] = rec
		f.errNext++
		if f.errNext == f.maxErr {
			f.errNext = 0
			f.errFull = true
		}
	}
	if len(f.slowest) < f.maxSlow {
		f.slowest = append(f.slowest, rec)
		f.sortSlowestLocked()
		return
	}
	if rec.DurMS <= f.slowest[len(f.slowest)-1].DurMS {
		return
	}
	f.slowest[len(f.slowest)-1] = rec
	f.sortSlowestLocked()
}

func (f *FlightRecorder) sortSlowestLocked() {
	sort.SliceStable(f.slowest, func(i, j int) bool {
		return f.slowest[i].DurMS > f.slowest[j].DurMS
	})
}

// FlightSnapshot is the JSON shape of /debug/requests.
type FlightSnapshot struct {
	Recorded uint64           `json:"recorded"` // total requests offered
	Slowest  []*RequestRecord `json:"slowest"`
	Errored  []*RequestRecord `json:"errored"` // most recent first
}

// Snapshot copies the recorder's current retained set.
func (f *FlightRecorder) Snapshot() FlightSnapshot {
	if f == nil {
		return FlightSnapshot{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	s := FlightSnapshot{
		Recorded: f.recorded,
		Slowest:  append([]*RequestRecord(nil), f.slowest...),
	}
	n := f.errNext
	if f.errFull {
		n = f.maxErr
	}
	// Emit most recent first: walk backwards from errNext.
	for i := 0; i < n; i++ {
		idx := f.errNext - 1 - i
		if idx < 0 {
			idx += f.maxErr
		}
		s.Errored = append(s.Errored, f.errored[idx])
	}
	return s
}

// ServeHTTP renders the snapshot as indented JSON (/debug/requests).
func (f *FlightRecorder) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	b, err := json.MarshalIndent(f.Snapshot(), "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	_, _ = w.Write(append(b, '\n'))
}
