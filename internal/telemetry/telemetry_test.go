package telemetry

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCountersAndSnapshot(t *testing.T) {
	c := New()
	c.Inc(Queries)
	c.Add(PairsCompared, 41)
	c.Inc(PairsCompared)
	c.Add(BlockCacheHits, 9)
	c.Inc(BlockCacheMisses)
	if got := c.Get(PairsCompared); got != 42 {
		t.Errorf("PairsCompared = %d, want 42", got)
	}
	s := c.Snapshot()
	if s.Counters["queries"] != 1 || s.Counters["pairs_compared"] != 42 {
		t.Errorf("snapshot counters wrong: %v", s.Counters)
	}
	if got := s.Derived["block_cache_hit_rate"]; math.Abs(got-0.9) > 1e-9 {
		t.Errorf("hit rate = %v, want 0.9", got)
	}
	// Every counter name must be present (schema stability).
	for i := Counter(0); i < numCounters; i++ {
		if _, ok := s.Counters[i.String()]; !ok {
			t.Errorf("snapshot missing counter %q", i)
		}
	}
	for i := Hist(0); i < numHists; i++ {
		if _, ok := s.Histograms[i.String()]; !ok {
			t.Errorf("snapshot missing histogram %q", i)
		}
	}
}

func TestHistogramObserve(t *testing.T) {
	c := New()
	durs := []time.Duration{
		100 * time.Nanosecond, // bucket 0
		time.Microsecond,
		50 * time.Microsecond,
		time.Millisecond,
		20 * time.Millisecond,
	}
	var sum int64
	for _, d := range durs {
		c.Observe(CompareLatency, d)
		sum += d.Nanoseconds()
	}
	hs := c.Snapshot().Histograms["compare_latency"]
	if hs.Count != uint64(len(durs)) {
		t.Fatalf("count = %d, want %d", hs.Count, len(durs))
	}
	if hs.SumNS != sum {
		t.Errorf("sum = %d, want %d", hs.SumNS, sum)
	}
	if hs.MaxNS != durs[len(durs)-1].Nanoseconds() {
		t.Errorf("max = %d, want %d", hs.MaxNS, durs[len(durs)-1].Nanoseconds())
	}
	if hs.MeanNS != float64(sum)/float64(len(durs)) {
		t.Errorf("mean = %v", hs.MeanNS)
	}
	var bucketed uint64
	for _, b := range hs.Buckets {
		bucketed += b.Count
	}
	if bucketed != hs.Count {
		t.Errorf("bucket total %d != count %d", bucketed, hs.Count)
	}
	// Quantiles must be ordered and bounded by the observed extremes.
	if !(hs.P50NS <= hs.P90NS && hs.P90NS <= hs.P99NS) {
		t.Errorf("quantiles unordered: %v %v %v", hs.P50NS, hs.P90NS, hs.P99NS)
	}
	if hs.P99NS > float64(hs.MaxNS) {
		t.Errorf("p99 %v > max %d", hs.P99NS, hs.MaxNS)
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0}, {1, 0}, {127, 0}, {128, 1}, {255, 1}, {256, 2},
		{-5, 0}, {math.MaxInt64, numBuckets - 1},
	}
	for _, tc := range cases {
		if got := bucketOf(tc.ns); got != tc.want {
			t.Errorf("bucketOf(%d) = %d, want %d", tc.ns, got, tc.want)
		}
	}
	// Every bucket's samples stay below its upper bound.
	for i := 0; i < numBuckets-1; i++ {
		up := BucketUpperNS(i)
		if bucketOf(up-1) != i {
			t.Errorf("bucketOf(%d) = %d, want %d", up-1, bucketOf(up-1), i)
		}
		if bucketOf(up) != i+1 {
			t.Errorf("bucketOf(%d) = %d, want %d", up, bucketOf(up), i+1)
		}
	}
}

// TestNilCollectorAllocFree pins the tentpole's contract: the disabled
// path performs zero allocations (and, per StartTimer's doc, no clock
// reads).
func TestNilCollectorAllocFree(t *testing.T) {
	var c *Collector
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc(Compares)
		c.Add(PairsCompared, 7)
		c.Observe(PairLatency, time.Microsecond)
		tm := c.StartTimer(CompareLatency)
		tm.Stop()
		_ = c.Get(Matches)
	})
	if allocs != 0 {
		t.Errorf("nil collector allocated %v times per op, want 0", allocs)
	}
	var s *Span
	allocs = testing.AllocsPerRun(1000, func() {
		c2 := s.Child("x")
		c2.Set("k", 1)
		c2.Add("k", 1)
		c2.End()
	})
	if allocs != 0 {
		t.Errorf("nil span allocated %v times per op, want 0", allocs)
	}
}

func TestConcurrentWriters(t *testing.T) {
	c := New()
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc(PairsCompared)
				c.Observe(PairLatency, time.Duration(i)*time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if got := c.Get(PairsCompared); got != workers*perWorker {
		t.Errorf("count = %d, want %d", got, workers*perWorker)
	}
	hs := c.Snapshot().Histograms["pair_latency"]
	if hs.Count != workers*perWorker {
		t.Errorf("hist count = %d, want %d", hs.Count, workers*perWorker)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	c := New()
	c.Inc(Queries)
	c.Observe(QueryLatency, 3*time.Millisecond)
	var sb strings.Builder
	if err := c.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(sb.String()), &s); err != nil {
		t.Fatalf("WriteJSON output not valid JSON: %v", err)
	}
	if s.Counters["queries"] != 1 {
		t.Errorf("round-trip lost counters: %v", s.Counters)
	}
	if s.Histograms["query_latency"].Count != 1 {
		t.Errorf("round-trip lost histograms")
	}
}

func TestReset(t *testing.T) {
	c := New()
	c.Inc(Queries)
	c.Observe(QueryLatency, time.Millisecond)
	c.Reset()
	s := c.Snapshot()
	if s.Counters["queries"] != 0 || s.Histograms["query_latency"].Count != 0 {
		t.Errorf("reset left state behind: %v", s.Counters)
	}
}

func TestSpanTree(t *testing.T) {
	root := StartSpan("search")
	d := root.Child("decompose")
	d.End()
	scan := root.Child("scan")
	cmp := scan.Child("compare:f1")
	cmp.Set("pairs_compared", 12)
	cmp.Add("pairs_compared", 3)
	cmp.Set("verdict_match", 1)
	cmp.End()
	scan.End()
	root.End()

	if root.Name() != "search" || len(root.Children()) != 2 {
		t.Fatalf("root shape wrong: %q %d", root.Name(), len(root.Children()))
	}
	if cmp.Attr("pairs_compared") != 15 {
		t.Errorf("attr = %d, want 15", cmp.Attr("pairs_compared"))
	}
	var sb strings.Builder
	if err := root.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Name     string `json:"name"`
		DurNS    int64  `json:"dur_ns"`
		Children []struct {
			Name     string `json:"name"`
			Children []struct {
				Name  string           `json:"name"`
				Attrs map[string]int64 `json:"attrs"`
			} `json:"children"`
		} `json:"children"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("span JSON invalid: %v\n%s", err, sb.String())
	}
	if decoded.Name != "search" || decoded.DurNS <= 0 {
		t.Errorf("decoded root wrong: %+v", decoded)
	}
	if decoded.Children[1].Children[0].Attrs["pairs_compared"] != 15 {
		t.Errorf("decoded attrs wrong: %+v", decoded.Children[1])
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	root := StartSpan("parallel")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := root.Child("worker")
			c.Add("n", 1)
			c.End()
		}()
	}
	wg.Wait()
	root.End()
	if got := len(root.Children()); got != 16 {
		t.Errorf("children = %d, want 16", got)
	}
}

func TestHTTPHandler(t *testing.T) {
	c := New()
	c.Inc(Queries)
	srv := httptest.NewServer(Handler(c))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/statsz status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var s Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["queries"] != 1 {
		t.Errorf("statsz counters: %v", s.Counters)
	}

	resp2, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", resp2.StatusCode)
	}

	// POST /statsz?reset=1 zeroes the collector.
	resp3, err := http.Post(srv.URL+"/statsz?reset=1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if got := c.Get(Queries); got != 0 {
		t.Errorf("reset via statsz left queries=%d", got)
	}
}

func TestServe(t *testing.T) {
	c := New()
	addr, err := Serve("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr.String() + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d", resp.StatusCode)
	}
}

func BenchmarkNoopCollector(b *testing.B) {
	var c *Collector
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc(PairsCompared)
		tm := c.StartTimer(PairLatency)
		tm.Stop()
	}
}

func BenchmarkCollectorObserve(b *testing.B) {
	c := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc(PairsCompared)
		c.Observe(PairLatency, time.Duration(i))
	}
}
