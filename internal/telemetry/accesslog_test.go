package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestAccessLoggerSampling(t *testing.T) {
	var buf bytes.Buffer
	l := NewAccessLogger(&buf, 10, time.Hour) // 1-in-10, nothing is "slow"
	logged := 0
	for i := 0; i < 40; i++ {
		if l.Log(rec("t", 1, 200)) {
			logged++
		}
	}
	if logged != 4 {
		t.Fatalf("logged %d of 40 at sample=10, want 4", logged)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 4 {
		t.Fatalf("%d lines written, want 4", lines)
	}
	var line struct {
		Sampled bool `json:"sampled"`
	}
	first, _, _ := strings.Cut(buf.String(), "\n")
	if err := json.Unmarshal([]byte(first), &line); err != nil || !line.Sampled {
		t.Fatalf("sampled OK line must carry sampled:true (err %v, line %s)", err, first)
	}
}

func TestAccessLoggerMeritAlwaysLogs(t *testing.T) {
	var buf bytes.Buffer
	l := NewAccessLogger(&buf, 1000000, time.Hour)
	if !l.Log(rec("terr", 1, 500)) {
		t.Fatal("error request was dropped by sampling")
	}
	slow := rec("tslow", 1, 200)
	slow.Slow = true
	if !l.Log(slow) {
		t.Fatal("slow request was dropped by sampling")
	}
	if l.Log(rec("tok", 1, 200)) {
		t.Fatal("plain request logged despite 1-in-1000000 sampling")
	}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var parsed struct {
			Sampled bool `json:"sampled"`
		}
		if err := json.Unmarshal([]byte(line), &parsed); err != nil {
			t.Fatalf("unparseable access line %q: %v", line, err)
		}
		if parsed.Sampled {
			t.Fatalf("merit-logged line marked sampled: %s", line)
		}
	}
}

func TestAccessLoggerLineShape(t *testing.T) {
	var buf bytes.Buffer
	l := NewAccessLogger(&buf, 1, time.Second)
	root := StartTraceSpan("request", "")
	root.Child("decode").End()
	q := root.Child("query:0")
	q.Child("prefilter").End()
	q.End()
	root.End()
	r := rec(root.TraceID(), 12.5, 200)
	r.Span = root
	r.Cached = true
	if !l.Log(r) {
		t.Fatal("sample=1 must log everything")
	}
	var line struct {
		TraceID string             `json:"trace_id"`
		Status  int                `json:"status"`
		DurMS   float64            `json:"dur_ms"`
		Cached  bool               `json:"cached"`
		Stages  map[string]float64 `json:"stages_ms"`
		TS      string             `json:"ts"`
	}
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("bad line: %v\n%s", err, buf.String())
	}
	if line.TraceID != root.TraceID() || line.Status != 200 || line.DurMS != 12.5 || !line.Cached {
		t.Fatalf("line fields wrong: %+v", line)
	}
	if _, err := time.Parse(time.RFC3339Nano, line.TS); err != nil {
		t.Fatalf("ts %q is not RFC3339Nano: %v", line.TS, err)
	}
	for _, stage := range []string{"decode", "query:0", "query:0.prefilter"} {
		if _, ok := line.Stages[stage]; !ok {
			t.Errorf("stages_ms missing %q (have %v)", stage, line.Stages)
		}
	}
}

func TestAccessLoggerNil(t *testing.T) {
	var l *AccessLogger
	if l.Log(rec("t", 1, 500)) {
		t.Fatal("nil logger logged")
	}
	if l.SlowThreshold() != 0 {
		t.Fatal("nil logger threshold nonzero")
	}
	if NewAccessLogger(nil, 1, 0) != nil {
		t.Fatal("nil writer must yield the nil logger")
	}
}

func TestStageTimings(t *testing.T) {
	if StageTimings(nil) != nil {
		t.Fatal("nil span must map to nil")
	}
	root := StartSpan("request")
	if StageTimings(root) != nil {
		t.Fatal("childless span must map to nil")
	}
	root.Child("compare").End()
	root.Child("compare").End() // repeated stages accumulate
	st := StageTimings(root)
	if len(st) != 1 || st["compare"] <= 0 {
		t.Fatalf("stage timings %v", st)
	}
}
