package telemetry

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestWritePrometheusValidates(t *testing.T) {
	c := New()
	c.Inc(Queries)
	c.Add(ServerRequests, 41)
	for i := 0; i < 10; i++ {
		c.Observe(QueryLatency, time.Duration(1<<uint(10+i))*time.Nanosecond)
	}
	c.Observe(PrefilterLatency, 3*time.Millisecond)
	var buf bytes.Buffer
	if err := c.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("own exposition rejected: %v\n%s", err, out)
	}
	for _, want := range []string{
		"tracy_uptime_seconds",
		"tracy_queries_total 1\n",
		"tracy_server_requests_total 41\n",
		"# TYPE tracy_query_latency_seconds histogram",
		`tracy_query_latency_seconds_bucket{le="+Inf"} 10`,
		"tracy_query_latency_seconds_count 10\n",
		"tracy_prefilter_latency_seconds_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestWritePrometheusCumulativeBuckets(t *testing.T) {
	c := New()
	c.Observe(QueryLatency, 100*time.Nanosecond)
	c.Observe(QueryLatency, time.Millisecond)
	c.Observe(QueryLatency, time.Second)
	var buf bytes.Buffer
	if err := c.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	// Bucket values must be monotonically nondecreasing down the series.
	last := int64(-1)
	n := 0
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, "tracy_query_latency_seconds_bucket{") {
			continue
		}
		n++
		var v int64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &v); err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("bucket series not cumulative at %q (%d after %d)", line, v, last)
		}
		last = v
	}
	if n != numBuckets {
		t.Fatalf("got %d bucket lines, want %d (including +Inf)", n, numBuckets)
	}
	if last != 3 {
		t.Fatalf("+Inf bucket %d, want 3", last)
	}
}

func TestWritePrometheusNilCollector(t *testing.T) {
	var c *Collector
	var buf bytes.Buffer
	if err := c.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("nil-collector exposition rejected: %v", err)
	}
}

func TestPrometheusHandler(t *testing.T) {
	c := New()
	c.Inc(Queries)
	rec := httptest.NewRecorder()
	PrometheusHandler(c).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q lacks exposition version", ct)
	}
	if err := ValidateExposition(rec.Body.Bytes()); err != nil {
		t.Fatalf("handler output rejected: %v", err)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"no value", "metric_name\n"},
		{"bad name", "9metric 1\n"},
		{"bad value", "metric_name notanumber\n"},
		{"unquoted label", `m{le=+Inf} 1` + "\n"},
		{"bad label name", `m{9l="x"} 1` + "\n"},
		{"unterminated labels", `m{le="1" 5` + "\n"},
		{"type after samples", "m 1\n# TYPE m counter\n"},
		{"duplicate type", "# TYPE m counter\n# TYPE m counter\nm 1\n"},
		{"unknown type", "# TYPE m exotic\nm 1\n"},
		{"histogram missing +Inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n"},
		{"histogram missing sum", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n"},
		{"histogram missing count", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\n"},
		{"inf bucket mismatch", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n"},
		{"bucket without le", "# TYPE h histogram\nh_bucket 1\nh_sum 1\nh_count 1\n"},
		{"bad timestamp", "m 1 notatime\n"},
	}
	for _, tc := range cases {
		if err := ValidateExposition([]byte(tc.in)); err == nil {
			t.Errorf("%s: ValidateExposition accepted %q", tc.name, tc.in)
		}
	}
	good := "# TYPE h histogram\nh_bucket{le=\"0.1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 0.5\nh_count 2\nm 1 1712345678\n"
	if err := ValidateExposition([]byte(good)); err != nil {
		t.Errorf("valid exposition rejected: %v", err)
	}
}

func TestWritePrometheusInfoGauge(t *testing.T) {
	c := New()
	c.Inc(Queries) // at least one counter so the exposition has samples
	c.SetInfo("index_info", map[string]string{
		"format": "3",
		"mapped": "true",
		"path":   `dir\"x".db`,
	})
	var buf bytes.Buffer
	if err := c.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("exposition with info gauge rejected: %v\n%s", err, out)
	}
	want := `tracy_index_info{format="3",mapped="true",path="dir\\\"x\".db"} 1`
	if !strings.Contains(out, want) {
		t.Errorf("exposition missing %s:\n%s", want, out)
	}
	if !strings.Contains(out, "# TYPE tracy_index_info gauge") {
		t.Errorf("info gauge missing TYPE comment:\n%s", out)
	}
	// Replacement is wholesale: a second SetInfo drops old labels.
	c.SetInfo("index_info", map[string]string{"format": "2"})
	if got := c.InfoLabels("index_info"); len(got) != 1 || got["format"] != "2" {
		t.Errorf("InfoLabels after replace = %v", got)
	}
	// Nil collector: all no-ops.
	var nc *Collector
	nc.SetInfo("x", map[string]string{"a": "b"})
	if nc.InfoLabels("x") != nil {
		t.Error("nil collector returned info labels")
	}
}
