package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"
)

func rec(trace string, durMS float64, status int) *RequestRecord {
	return &RequestRecord{TraceID: trace, Method: "POST", Path: "/v1/search",
		Start: time.Unix(1700000000, 0), DurMS: durMS, Status: status}
}

func TestFlightRecorderSlowest(t *testing.T) {
	f := NewFlightRecorder(3, 3)
	for i, d := range []float64{5, 1, 9, 3, 7} {
		f.Record(rec(fmt.Sprintf("t%d", i), d, 200))
	}
	s := f.Snapshot()
	if s.Recorded != 5 {
		t.Fatalf("recorded %d, want 5", s.Recorded)
	}
	var got []float64
	for _, r := range s.Slowest {
		got = append(got, r.DurMS)
	}
	want := []float64{9, 7, 5}
	if len(got) != len(want) {
		t.Fatalf("slowest %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slowest %v, want %v", got, want)
		}
	}
}

func TestFlightRecorderErrorRing(t *testing.T) {
	f := NewFlightRecorder(2, 3)
	for i := 0; i < 5; i++ {
		status := 200
		if i%2 == 0 {
			status = 500 // records 0, 2, 4 error
		}
		f.Record(rec(fmt.Sprintf("t%d", i), float64(i), status))
	}
	s := f.Snapshot()
	if len(s.Errored) != 3 {
		t.Fatalf("errored %d records, want 3", len(s.Errored))
	}
	// Most recent first: t4, t2, t0 all fit in a ring of 3.
	for i, want := range []string{"t4", "t2", "t0"} {
		if s.Errored[i].TraceID != want {
			t.Fatalf("errored[%d] = %s, want %s", i, s.Errored[i].TraceID, want)
		}
	}
	// One more error evicts the oldest.
	f.Record(rec("t6", 6, 499))
	s = f.Snapshot()
	for i, want := range []string{"t6", "t4", "t2"} {
		if s.Errored[i].TraceID != want {
			t.Fatalf("after wrap, errored[%d] = %s, want %s", i, s.Errored[i].TraceID, want)
		}
	}
}

func TestFlightRecorderNil(t *testing.T) {
	var f *FlightRecorder
	f.Record(rec("t", 1, 200)) // must not panic
	s := f.Snapshot()
	if s.Recorded != 0 || s.Slowest != nil || s.Errored != nil {
		t.Fatalf("nil recorder snapshot %+v, want zero", s)
	}
}

func TestFlightRecorderServeHTTP(t *testing.T) {
	f := NewFlightRecorder(2, 2)
	root := StartTraceSpan("request", "")
	root.Child("prefilter").End()
	root.End()
	r := rec(root.TraceID(), 4, 200)
	r.Span = root
	f.Record(r)
	f.Record(rec("deadbeef", 1, 504))

	w := httptest.NewRecorder()
	f.ServeHTTP(w, httptest.NewRequest("GET", "/debug/requests", nil))
	if w.Code != 200 {
		t.Fatalf("status %d", w.Code)
	}
	var out struct {
		Recorded uint64 `json:"recorded"`
		Slowest  []struct {
			TraceID string `json:"trace_id"`
			Span    *struct {
				Name     string            `json:"name"`
				Children []json.RawMessage `json:"children"`
			} `json:"span"`
		} `json:"slowest"`
		Errored []struct {
			Status int `json:"status"`
		} `json:"errored"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, w.Body.String())
	}
	if out.Recorded != 2 || len(out.Slowest) != 2 || len(out.Errored) != 1 {
		t.Fatalf("snapshot shape %+v", out)
	}
	top := out.Slowest[0]
	if top.TraceID != root.TraceID() || top.Span == nil || len(top.Span.Children) != 1 {
		t.Fatalf("slowest[0] lost its span tree: %+v", top)
	}
	if out.Errored[0].Status != 504 {
		t.Fatalf("errored[0].Status = %d, want 504", out.Errored[0].Status)
	}
}
