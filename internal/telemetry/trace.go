package telemetry

import (
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"math/rand"
	"sync"
)

// Trace identity: every end-to-end request carries a 128-bit trace ID
// (rendered as 32 lowercase hex digits) that is minted once by the
// first participant — normally the client — and propagated unchanged
// across every HTTP hop, retry and hedge attempt. Each hop mints its
// own 64-bit span ID. The wire format is the W3C Trace Context
// `traceparent` header:
//
//	traceparent: 00-<32 hex trace-id>-<16 hex span-id>-<2 hex flags>
//
// Only version 00 is emitted; any syntactically valid version is
// accepted on ingest (per the spec, unknown versions parse as 00 when
// the 00 fields are present). A malformed header is simply ignored and
// the server mints a fresh trace — tracing must never fail a request.

// TraceparentHeader is the canonical W3C trace-context header name.
const TraceparentHeader = "traceparent"

// idRand is a locked fallback PRNG used only if crypto/rand fails
// (effectively never on supported platforms); trace IDs are identifiers,
// not secrets, so degrading to math/rand is acceptable.
var idRand = struct {
	sync.Mutex
	r *rand.Rand
}{r: rand.New(rand.NewSource(0x7261636554))}

func randHex(n int) string {
	b := make([]byte, n)
	if _, err := crand.Read(b); err != nil {
		idRand.Lock()
		for i := 0; i+8 <= len(b); i += 8 {
			binary.LittleEndian.PutUint64(b[i:], idRand.r.Uint64())
		}
		if rem := len(b) % 8; rem != 0 {
			var tail [8]byte
			binary.LittleEndian.PutUint64(tail[:], idRand.r.Uint64())
			copy(b[len(b)-rem:], tail[:rem])
		}
		idRand.Unlock()
	}
	// An all-zero ID is invalid per the W3C spec; force one nonzero bit.
	allZero := true
	for _, c := range b {
		if c != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		b[len(b)-1] = 1
	}
	return hex.EncodeToString(b)
}

// NewTraceID mints a random 128-bit trace ID (32 hex digits).
func NewTraceID() string { return randHex(16) }

// NewSpanID mints a random 64-bit span ID (16 hex digits).
func NewSpanID() string { return randHex(8) }

// IsTraceID reports whether s is a well-formed trace ID: exactly 32
// lowercase hex digits.
func IsTraceID(s string) bool { return isHex(s, 32) }

// FormatTraceparent renders a version-00 traceparent header value with
// the sampled flag set. Empty, malformed or all-zero IDs (forbidden by
// the spec) are replaced with fresh random ones.
func FormatTraceparent(traceID, spanID string) string {
	if !isHex(traceID, 32) || isZero(traceID) {
		traceID = NewTraceID()
	}
	if !isHex(spanID, 16) || isZero(spanID) {
		spanID = NewSpanID()
	}
	return "00-" + traceID + "-" + spanID + "-01"
}

// ParseTraceparent extracts the trace and parent-span IDs from a
// traceparent header value. ok is false for anything malformed: wrong
// field count or width, non-hex digits, the forbidden version "ff", or
// all-zero IDs. Callers treat !ok as "no incoming trace".
func ParseTraceparent(h string) (traceID, spanID string, ok bool) {
	// Fixed layout: 2-32-16-2 hex fields joined by dashes, 55 bytes.
	if len(h) < 55 {
		return "", "", false
	}
	if len(h) > 55 && h[55] != '-' {
		return "", "", false // future versions may append fields after a dash
	}
	h = h[:55]
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", "", false
	}
	ver, tid, sid, flags := h[0:2], h[3:35], h[36:52], h[53:55]
	if !isHex(ver, 2) || !isHex(tid, 32) || !isHex(sid, 16) || !isHex(flags, 2) {
		return "", "", false
	}
	if ver == "ff" {
		return "", "", false
	}
	if isZero(tid) || isZero(sid) {
		return "", "", false
	}
	return tid, sid, true
}

// isHex reports whether s is exactly n lowercase hex digits. Uppercase
// is rejected — the W3C grammar requires lowercase.
func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func isZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}
