package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNewTraceIDShape(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if !IsTraceID(id) {
			t.Fatalf("NewTraceID() = %q: not 32 lowercase hex digits", id)
		}
		if isZero(id) {
			t.Fatalf("NewTraceID() produced the forbidden all-zero ID")
		}
		if seen[id] {
			t.Fatalf("NewTraceID() repeated %q within 100 draws", id)
		}
		seen[id] = true
	}
	if sid := NewSpanID(); !isHex(sid, 16) || isZero(sid) {
		t.Fatalf("NewSpanID() = %q: want 16 nonzero lowercase hex digits", sid)
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	tid, sid := NewTraceID(), NewSpanID()
	h := FormatTraceparent(tid, sid)
	gotT, gotS, ok := ParseTraceparent(h)
	if !ok || gotT != tid || gotS != sid {
		t.Fatalf("round trip %q: got (%q, %q, %v), want (%q, %q, true)", h, gotT, gotS, ok, tid, sid)
	}
}

func TestFormatTraceparentFillsBadIDs(t *testing.T) {
	for _, bad := range []string{"", "xyz", strings.Repeat("0", 32), strings.Repeat("A", 32)} {
		h := FormatTraceparent(bad, "")
		if _, _, ok := ParseTraceparent(h); !ok {
			t.Errorf("FormatTraceparent(%q, ...) = %q: not parseable", bad, h)
		}
	}
}

func TestParseTraceparentMalformed(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	cases := []struct {
		name string
		in   string
		ok   bool
	}{
		{"valid", valid, true},
		{"valid future version", "cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", true},
		{"valid with extension after dash", valid + "-extrafield", true},
		{"empty", "", false},
		{"too short", valid[:54], false},
		{"junk appended without dash", valid + "ff", false},
		{"forbidden version ff", "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", false},
		{"uppercase hex", "00-0AF7651916CD43DD8448EB211C80319C-B7AD6B7169203331-01", false},
		{"non-hex trace id", "00-zzf7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01", false},
		{"all-zero trace id", "00-00000000000000000000000000000000-b7ad6b7169203331-01", false},
		{"all-zero span id", "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", false},
		{"missing dashes", "00x0af7651916cd43dd8448eb211c80319cxb7ad6b7169203331x01", false},
		{"fields swapped widths", "00-b7ad6b7169203331-0af7651916cd43dd8448eb211c80319c-01", false},
	}
	for _, tc := range cases {
		tid, sid, ok := ParseTraceparent(tc.in)
		if ok != tc.ok {
			t.Errorf("%s: ParseTraceparent(%q) ok = %v, want %v", tc.name, tc.in, ok, tc.ok)
		}
		if !ok && (tid != "" || sid != "") {
			t.Errorf("%s: malformed parse leaked IDs (%q, %q)", tc.name, tid, sid)
		}
	}
}

func TestStartTraceSpanAdoptsOrMints(t *testing.T) {
	tid := NewTraceID()
	if got := StartTraceSpan("req", tid).TraceID(); got != tid {
		t.Fatalf("StartTraceSpan kept %q, want %q", got, tid)
	}
	minted := StartTraceSpan("req", "not-a-trace-id").TraceID()
	if !IsTraceID(minted) {
		t.Fatalf("StartTraceSpan minted invalid ID %q for malformed input", minted)
	}
	if child := StartTraceSpan("req", tid).Child("stage"); child.TraceID() != "" {
		t.Fatalf("child spans must not claim the trace ID, got %q", child.TraceID())
	}
}

func TestContextSpanPropagation(t *testing.T) {
	sp := StartTraceSpan("req", "")
	ctx := ContextWithSpan(context.Background(), sp)
	if got := SpanFromContext(ctx); got != sp {
		t.Fatalf("SpanFromContext returned %v, want the stored span", got)
	}
	if got := SpanFromContext(context.Background()); got != nil {
		t.Fatalf("SpanFromContext on a bare context = %v, want nil", got)
	}
	// A nil span must propagate as "tracing off" without panics: every
	// downstream call pattern on the result must be safe.
	nctx := ContextWithSpan(context.Background(), nil)
	nsp := SpanFromContext(nctx)
	if nsp != nil {
		t.Fatalf("nil span round-tripped to %v", nsp)
	}
	c := nsp.Child("stage")
	c.Set("k", 1)
	c.Add("k", 1)
	c.End()
	if c != nil || nsp.TraceID() != "" || nsp.Duration() != 0 {
		t.Fatal("nil-span operations must all no-op")
	}
	if got := SpanFromContext(nil); got != nil { //nolint:staticcheck // nil ctx is the documented edge
		t.Fatalf("SpanFromContext(nil) = %v, want nil", got)
	}
}

func TestSpanDoubleEnd(t *testing.T) {
	sp := StartSpan("x")
	time.Sleep(2 * time.Millisecond)
	sp.End()
	d1 := sp.Duration()
	time.Sleep(2 * time.Millisecond)
	sp.End() // keeps the first measurement
	if d2 := sp.Duration(); d2 != d1 {
		t.Fatalf("second End changed duration: %v -> %v", d1, d2)
	}
	if d1 <= 0 {
		t.Fatalf("finished span duration %v, want > 0", d1)
	}
}

func TestSpanConcurrentChildEnd(t *testing.T) {
	// Child attachment racing End must be safe and lose no children:
	// exercised under -race in CI.
	sp := StartTraceSpan("req", "")
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c := sp.Child("stage")
				c.Set("i", int64(i))
				c.End()
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				sp.End()
				sp.Duration()
				_ = sp.Children()
			}
		}
	}()
	wg.Wait()
	close(done)
	if got := len(sp.Children()); got != workers*perWorker {
		t.Fatalf("lost children under concurrency: %d, want %d", got, workers*perWorker)
	}
}
