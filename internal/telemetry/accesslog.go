package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// AccessLogger emits one structured JSON line per logged request:
// trace ID, method/path, status, duration, flags and the per-stage
// timings flattened out of the request's span tree. Logging every
// request at fleet scale is unaffordable, so lines are sampled 1-in-N —
// but errors and slow queries always log, which is the retention rule
// that makes the log joinable with the flight recorder: anything worth
// debugging is guaranteed present in both.
//
// A nil *AccessLogger no-ops. Log is safe for concurrent use; the
// underlying writer sees one complete line per call.
type AccessLogger struct {
	mu     sync.Mutex
	w      io.Writer
	sample int           // log 1 in sample requests (1 = all)
	slow   time.Duration // always log requests at least this slow
	seq    uint64
}

// DefaultSlowQuery is the slow-query threshold when none is configured.
const DefaultSlowQuery = time.Second

// NewAccessLogger logs to w, sampling 1 in sample requests (values < 1
// mean 1: log everything) and always retaining requests slower than
// slow (<= 0 selects DefaultSlowQuery). A nil writer returns nil — the
// no-op logger.
func NewAccessLogger(w io.Writer, sample int, slow time.Duration) *AccessLogger {
	if w == nil {
		return nil
	}
	if sample < 1 {
		sample = 1
	}
	if slow <= 0 {
		slow = DefaultSlowQuery
	}
	return &AccessLogger{w: w, sample: sample, slow: slow}
}

// SlowThreshold returns the logger's slow-query threshold (0 on nil).
func (l *AccessLogger) SlowThreshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.slow
}

// accessLine is the wire shape of one access-log line.
type accessLine struct {
	Time    string             `json:"ts"`
	TraceID string             `json:"trace_id"`
	Method  string             `json:"method"`
	Path    string             `json:"path"`
	Status  int                `json:"status"`
	DurMS   float64            `json:"dur_ms"`
	Attempt int                `json:"attempt,omitempty"`
	Hedge   bool               `json:"hedge,omitempty"`
	Cached  bool               `json:"cached,omitempty"`
	Degrade bool               `json:"degraded,omitempty"`
	Trunc   bool               `json:"truncated,omitempty"`
	Slow    bool               `json:"slow,omitempty"`
	Sampled bool               `json:"sampled,omitempty"` // logged by sampling, not by merit
	Error   string             `json:"error,omitempty"`
	Stages  map[string]float64 `json:"stages_ms,omitempty"` // per-stage ms from the span tree
}

// Log emits rec if it is an error, slow, or selected by sampling, and
// reports whether a line was written.
func (l *AccessLogger) Log(rec *RequestRecord) bool {
	if l == nil || rec == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	sampled := l.sample == 1 || l.seq%uint64(l.sample) == 1
	merit := rec.Status >= 400 || rec.Slow
	if !sampled && !merit {
		return false
	}
	line := accessLine{
		Time:    rec.Start.UTC().Format(time.RFC3339Nano),
		TraceID: rec.TraceID,
		Method:  rec.Method,
		Path:    rec.Path,
		Status:  rec.Status,
		DurMS:   rec.DurMS,
		Attempt: rec.Attempt,
		Hedge:   rec.Hedge,
		Cached:  rec.Cached,
		Degrade: rec.Degraded,
		Trunc:   rec.Truncated,
		Slow:    rec.Slow,
		Sampled: !merit,
		Error:   rec.Error,
		Stages:  StageTimings(rec.Span),
	}
	b, err := json.Marshal(line)
	if err != nil {
		return false
	}
	_, _ = l.w.Write(append(b, '\n'))
	return true
}

// StageTimings flattens a request span tree into stage -> milliseconds:
// each direct child of the root contributes its duration under its
// name (repeated names — batch items — accumulate). Nil-safe.
func StageTimings(root *Span) map[string]float64 {
	if root == nil {
		return nil
	}
	kids := root.Children()
	if len(kids) == 0 {
		return nil
	}
	out := make(map[string]float64, len(kids))
	for _, c := range kids {
		out[c.Name()] += float64(c.Duration().Nanoseconds()) / 1e6
		for _, g := range c.Children() {
			out[c.Name()+"."+g.Name()] += float64(g.Duration().Nanoseconds()) / 1e6
		}
	}
	return out
}
