package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Prometheus text exposition (version 0.0.4) of a Collector, with no
// dependency on any client library. Counters become
// tracy_<name>_total; each log-scale latency histogram becomes a
// standard Prometheus histogram tracy_<name>_seconds with cumulative
// _bucket{le="..."} series (bucket bounds converted from the internal
// power-of-two nanosecond bounds to seconds), _sum and _count. Bucket
// boundaries are emitted in full on every scrape — stable boundaries
// are what make rate() and histogram_quantile() work across scrapes.

// promNamespace prefixes every exposed metric name.
const promNamespace = "tracy"

// promBucketBounds is the fixed bucket-boundary list in seconds,
// precomputed once: BucketUpperNS(i)/1e9 for every bucket but the last
// (which is +Inf).
var promBucketBounds = func() []string {
	out := make([]string, numBuckets-1)
	for i := 0; i < numBuckets-1; i++ {
		out[i] = formatPromFloat(float64(BucketUpperNS(i)) / 1e9)
	}
	return out
}()

// formatPromLabels renders a label set as {k="v",...} with exposition
// escaping, keys sorted; empty input renders as no label braces at all.
func formatPromLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	esc := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(k)
		sb.WriteString(`="`)
		sb.WriteString(esc.Replace(labels[k]))
		sb.WriteString(`"`)
	}
	sb.WriteByte('}')
	return sb.String()
}

// formatPromFloat renders a float the exposition format accepts,
// trimming the noise off exact values (0.000128 not 1.28e-04).
func formatPromFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes the collector's current state in Prometheus
// text exposition format. A nil collector writes only the uptime gauge
// (value 0). The output is deterministic: metrics are sorted by name.
func (c *Collector) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)

	uptime := 0.0
	if c != nil {
		uptime = time.Since(c.start).Seconds()
	}
	fmt.Fprintf(bw, "# HELP %s_uptime_seconds Time since the collector started or was reset.\n", promNamespace)
	fmt.Fprintf(bw, "# TYPE %s_uptime_seconds gauge\n", promNamespace)
	fmt.Fprintf(bw, "%s_uptime_seconds %s\n", promNamespace, formatPromFloat(uptime))

	// Info gauges: identity as labels, value constantly 1.
	for _, name := range c.infoNames() {
		full := promNamespace + "_" + name
		fmt.Fprintf(bw, "# HELP %s Identity of the %s.\n", full, strings.ReplaceAll(strings.TrimSuffix(name, "_info"), "_", " "))
		fmt.Fprintf(bw, "# TYPE %s gauge\n", full)
		fmt.Fprintf(bw, "%s%s 1\n", full, formatPromLabels(c.InfoLabels(name)))
	}

	// Counters, sorted by exposition name.
	type counterRow struct {
		name string
		val  uint64
	}
	rows := make([]counterRow, 0, int(numCounters))
	for i := Counter(0); i < numCounters; i++ {
		var v uint64
		if c != nil {
			v = c.counters[i].Load()
		}
		rows = append(rows, counterRow{name: i.String(), val: v})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	for _, r := range rows {
		full := promNamespace + "_" + r.name + "_total"
		fmt.Fprintf(bw, "# HELP %s Cumulative count of %s events.\n", full, strings.ReplaceAll(r.name, "_", " "))
		fmt.Fprintf(bw, "# TYPE %s counter\n", full)
		fmt.Fprintf(bw, "%s %d\n", full, r.val)
	}

	// Histograms, sorted by exposition name, as cumulative buckets.
	hists := make([]Hist, 0, int(numHists))
	for i := Hist(0); i < numHists; i++ {
		hists = append(hists, i)
	}
	sort.Slice(hists, func(i, j int) bool { return hists[i].String() < hists[j].String() })
	for _, hi := range hists {
		base := strings.TrimSuffix(hi.String(), "_latency")
		full := promNamespace + "_" + base + "_latency_seconds"
		fmt.Fprintf(bw, "# HELP %s Latency distribution of %s.\n", full, strings.ReplaceAll(base, "_", " "))
		fmt.Fprintf(bw, "# TYPE %s histogram\n", full)
		var cum uint64
		var count uint64
		var sumNS int64
		for b := 0; b < numBuckets; b++ {
			var n uint64
			if c != nil {
				n = c.hists[hi].buckets[b].Load()
			}
			cum += n
			if b < numBuckets-1 {
				fmt.Fprintf(bw, "%s_bucket{le=\"%s\"} %d\n", full, promBucketBounds[b], cum)
			}
		}
		if c != nil {
			count = c.hists[hi].count.Load()
			sumNS = c.hists[hi].sumNS.Load()
		}
		// The +Inf bucket equals _count by definition; use the histogram's
		// own count so the invariant holds even mid-Observe.
		if count < cum {
			count = cum
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", full, count)
		fmt.Fprintf(bw, "%s_sum %s\n", full, formatPromFloat(float64(sumNS)/1e9))
		fmt.Fprintf(bw, "%s_count %d\n", full, count)
	}
	return bw.Flush()
}

// PrometheusHandler serves WritePrometheus with the exposition content
// type.
func PrometheusHandler(c *Collector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = c.WritePrometheus(w)
	})
}

// ValidateExposition checks data against the Prometheus text exposition
// grammar: metric-name and label syntax, parseable sample values,
// HELP/TYPE comment shape, TYPE-before-samples ordering, and histogram
// completeness (_bucket series must come with _sum, _count and a +Inf
// bucket whose value equals _count). It is the gate the observability
// smoke test and CI run /metrics output through. Returns nil for valid
// input; the first violation otherwise, prefixed with its line number.
func ValidateExposition(data []byte) error {
	typeOf := make(map[string]string)    // metric family -> declared type
	sampled := make(map[string]bool)     // families that already emitted samples
	bucketInf := make(map[string]uint64) // histogram family -> +Inf bucket value
	bucketCnt := make(map[string]uint64) // histogram family -> _count value
	hasSum := make(map[string]bool)
	lines := strings.Split(string(data), "\n")
	seenSample := false
	for ln, line := range lines {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, rest, ok := cutComment(line)
			if !ok {
				continue // bare comment: legal, ignored
			}
			name, arg, _ := strings.Cut(rest, " ")
			if !validMetricName(name) {
				return fmt.Errorf("line %d: bad metric name %q in %s comment", lineNo, name, kind)
			}
			if kind == "TYPE" {
				switch arg {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown TYPE %q for %s", lineNo, arg, name)
				}
				if sampled[name] {
					return fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
				}
				if _, dup := typeOf[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				typeOf[name] = arg
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		seenSample = true
		family := histFamily(name, typeOf)
		sampled[family] = true
		if typeOf[family] == "histogram" {
			v := uint64(value)
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if le, ok := labels["le"]; ok {
					if le == "+Inf" {
						bucketInf[family] = v
					}
				} else {
					return fmt.Errorf("line %d: histogram bucket %s without le label", lineNo, name)
				}
			case strings.HasSuffix(name, "_count"):
				bucketCnt[family] = v
			case strings.HasSuffix(name, "_sum"):
				hasSum[family] = true
			}
		}
	}
	if !seenSample {
		return fmt.Errorf("no samples in exposition")
	}
	for fam, typ := range typeOf {
		if typ != "histogram" || !sampled[fam] {
			continue
		}
		inf, okInf := bucketInf[fam]
		cnt, okCnt := bucketCnt[fam]
		if !okInf {
			return fmt.Errorf("histogram %s has no +Inf bucket", fam)
		}
		if !okCnt {
			return fmt.Errorf("histogram %s has no _count", fam)
		}
		if !hasSum[fam] {
			return fmt.Errorf("histogram %s has no _sum", fam)
		}
		if inf != cnt {
			return fmt.Errorf("histogram %s: +Inf bucket %d != _count %d", fam, inf, cnt)
		}
	}
	return nil
}

// cutComment splits "# HELP name ..." / "# TYPE name ..." comments;
// ok is false for any other comment.
func cutComment(line string) (kind, rest string, ok bool) {
	rest, ok = strings.CutPrefix(line, "# HELP ")
	if ok {
		return "HELP", rest, true
	}
	rest, ok = strings.CutPrefix(line, "# TYPE ")
	if ok {
		return "TYPE", rest, true
	}
	return "", "", false
}

// histFamily maps a histogram series name (_bucket/_sum/_count suffix)
// back to its declared family name; other names map to themselves.
func histFamily(name string, typeOf map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if typeOf[base] == "histogram" || typeOf[base] == "summary" {
				return base
			}
		}
	}
	return name
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || s[0] == ':' {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// parseSample parses one sample line: name[{labels}] value [timestamp].
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("sample %q has no value", line)
	}
	name = rest[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("bad metric name %q", name)
	}
	labels = map[string]string{}
	if rest[i] == '{' {
		end := strings.Index(rest, "}")
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
		}
		body := rest[i+1 : end]
		rest = strings.TrimPrefix(rest[end+1:], " ")
		for _, pair := range splitLabels(body) {
			k, v, ok := strings.Cut(pair, "=")
			if !ok {
				return "", nil, 0, fmt.Errorf("bad label pair %q", pair)
			}
			if !validLabelName(k) {
				return "", nil, 0, fmt.Errorf("bad label name %q", k)
			}
			if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return "", nil, 0, fmt.Errorf("label value %q not quoted", v)
			}
			labels[k] = v[1 : len(v)-1]
		}
	} else {
		rest = rest[i+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("sample %q needs value [timestamp]", line)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad sample value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, terr := strconv.ParseInt(fields[1], 10, 64); terr != nil {
			return "", nil, 0, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, labels, value, nil
}

// splitLabels splits a label-set body on commas outside quotes.
func splitLabels(body string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '"':
			if i == 0 || body[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, strings.TrimSpace(body[start:i]))
				start = i + 1
			}
		}
	}
	if tail := strings.TrimSpace(body[start:]); tail != "" {
		out = append(out, tail)
	}
	return out
}
