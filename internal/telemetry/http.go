package telemetry

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler serving the collector:
//
//	/statsz         current Snapshot as JSON (POST /statsz?reset=1 resets)
//	/metrics        Prometheus text exposition of the same state
//	/debug/pprof/*  the standard net/http/pprof profile endpoints
//
// Long-running search servers mount this next to their API; the CLI's
// -pprof flag serves it for the duration of one command.
func Handler(c *Collector) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", PrometheusHandler(c))
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Query().Get("reset") == "1" {
			c.Reset()
		}
		w.Header().Set("Content-Type", "application/json")
		if err := c.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts Handler(c) on addr (e.g. "localhost:6060", or ":0" for an
// ephemeral port) in a background goroutine and returns the bound
// address. The server lives until the process exits.
func Serve(addr string, c *Collector) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() { _ = http.Serve(ln, Handler(c)) }()
	return ln.Addr(), nil
}
