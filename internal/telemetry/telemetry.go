// Package telemetry is the dependency-free instrumentation substrate of
// the search stack: atomic counters, low-overhead latency histograms with
// fixed log-scale buckets, value-type timers, and a hierarchical Span for
// tracing one query through decompose → tracelet cross-product →
// block-cache lookup → align → rewrite → verdict.
//
// Every operation is safe on a nil *Collector (and a nil *Span) and costs
// a single branch, so instrumented code needs no "is telemetry on?"
// plumbing: threading a nil collector disables measurement at effectively
// zero cost — the no-op path performs no allocation and no clock read
// (verified by TestNilCollectorAllocFree and BenchmarkNoopCollector).
//
// A Collector is safe for concurrent use; Snapshot may be taken while
// writers are active and observes each metric atomically (the snapshot as
// a whole is not a consistent cut, which is fine for monitoring).
package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter identifies one monotonically increasing event count.
type Counter int

// The counter set covers every stage of the search pipeline. Adding a
// counter means adding an enum value and its name below — the snapshot,
// JSON export and /statsz endpoint pick it up automatically.
const (
	Queries              Counter = iota // end-to-end index searches
	Compares                            // function-to-function comparisons
	Matches                             // comparisons with a positive verdict
	PairsCompared                       // tracelet cross-product pairs aligned
	BlockCacheHits                      // per-block alignments reused from cache
	BlockCacheMisses                    // per-block alignments computed
	RewritesAttempted                   // CSP rewrite attempts on candidate pairs
	RewritesSkipped                     // pairs pruned by RewriteSkipBelow
	RewritesSucceeded                   // rewrites that produced a match
	DedupeSavedTracelets                // reference-tracelet evaluations saved by DedupeQuery
	PairsPrunedBound                    // pairs skipped by the lossless score-bound pruner
	FuncsPrunedAlpha                    // compares cut short once the α verdict was decided
	PrefilterCandidates                 // corpus functions passed through the feature prefilter
	LSHQueries                          // searches answered through the lsh candidate path
	LSHCandidates                       // candidates produced by lsh band-bucket collisions
	LSHBandCollisions                   // raw band-bucket entry collisions before dedupe/rank
	LSHFallbacks                        // lsh-mode searches that fell back to the scan prefilter
	FunctionsDecomposed                 // functions decomposed into k-tracelets
	CSPSolves                           // constraint-solver invocations
	CSPBacktracks                       // backtracking steps consumed across solves
	CSPBudgetExhausted                  // solves that hit the backtrack budget
	SearchesCancelled                   // searches aborted because the caller's context was cancelled
	SearchesDeadline                    // searches aborted because the caller's deadline expired
	ServerRequests                      // query-service API requests accepted for processing
	ServerRejected                      // API requests rejected with 429 (in-flight limit)
	ServerCacheHits                     // search responses served from the result cache
	ServerCacheMisses                   // search responses computed (cacheable but absent)
	ServerReloads                       // successful hot index reloads (snapshot swaps)
	ServerPanics                        // handler panics recovered into 500 responses
	ServerDegraded                      // saturated searches answered in degraded mode
	ServerStatus2xx                     // API responses with a 2xx status
	ServerStatus4xx                     // API responses with a 4xx status (incl. 499)
	ServerStatus5xx                     // API responses with a 5xx status
	ServerSlowQueries                   // requests over the slow-query threshold
	ServerQueued                        // requests that waited in the admission queue before a slot
	FleetSearches                       // coordinator scatter-gather searches executed
	FleetShardErrors                    // per-shard RPCs that failed after the client's retries
	FleetPartials                       // fleet answers merged from fewer than all shards (degraded)
	FleetFailovers                      // scatter legs answered by a sibling replica after the preferred one failed
	FleetHedges                         // hedged second scatter legs launched against a sibling replica
	FleetHedgesWon                      // hedged legs that answered before the primary
	FleetReplicaDown                    // replica transitions into the down membership state
	FleetReadmits                       // down replicas readmitted after a healthz + generation probe
	FaultsInjected                      // fault-injection points fired (testing only)
	DiffPrograms                        // random programs generated by the differential engine
	DiffBuilds                          // program variants compiled (opt level × context knobs)
	DiffExecutions                      // emulator runs across variants and input vectors
	DiffDivergences                     // observed oracle divergences (any kind)
	InvariantChecks                     // metamorphic invariant evaluations
	InvariantViolations                 // metamorphic invariant failures
	numCounters
)

var counterNames = [numCounters]string{
	Queries:              "queries",
	Compares:             "compares",
	Matches:              "matches",
	PairsCompared:        "pairs_compared",
	BlockCacheHits:       "block_cache_hits",
	BlockCacheMisses:     "block_cache_misses",
	RewritesAttempted:    "rewrites_attempted",
	RewritesSkipped:      "rewrites_skipped",
	RewritesSucceeded:    "rewrites_succeeded",
	DedupeSavedTracelets: "dedupe_saved_tracelets",
	PairsPrunedBound:     "pairs_pruned_bound",
	FuncsPrunedAlpha:     "funcs_pruned_alpha",
	PrefilterCandidates:  "prefilter_candidates",
	LSHQueries:           "lsh_queries",
	LSHCandidates:        "lsh_candidates",
	LSHBandCollisions:    "lsh_band_collisions",
	LSHFallbacks:         "lsh_fallbacks",
	FunctionsDecomposed:  "functions_decomposed",
	CSPSolves:            "csp_solves",
	CSPBacktracks:        "csp_backtracks",
	CSPBudgetExhausted:   "csp_budget_exhausted",
	SearchesCancelled:    "searches_cancelled",
	SearchesDeadline:     "searches_deadline",
	ServerRequests:       "server_requests",
	ServerRejected:       "server_rejected",
	ServerCacheHits:      "server_cache_hits",
	ServerCacheMisses:    "server_cache_misses",
	ServerReloads:        "server_reloads",
	ServerPanics:         "server_panics",
	ServerDegraded:       "server_degraded",
	ServerStatus2xx:      "server_status_2xx",
	ServerStatus4xx:      "server_status_4xx",
	ServerStatus5xx:      "server_status_5xx",
	ServerSlowQueries:    "server_slow_queries",
	ServerQueued:         "server_queued",
	FleetSearches:        "fleet_searches",
	FleetShardErrors:     "fleet_shard_errors",
	FleetPartials:        "fleet_partials",
	FleetFailovers:       "fleet_failovers",
	FleetHedges:          "fleet_hedges",
	FleetHedgesWon:       "fleet_hedges_won",
	FleetReplicaDown:     "fleet_replica_down",
	FleetReadmits:        "fleet_readmits",
	FaultsInjected:       "faults_injected",
	DiffPrograms:         "diff_programs",
	DiffBuilds:           "diff_builds",
	DiffExecutions:       "diff_executions",
	DiffDivergences:      "diff_divergences",
	InvariantChecks:      "invariant_checks",
	InvariantViolations:  "invariant_violations",
}

// String returns the snake_case metric name used in JSON exports.
func (c Counter) String() string {
	if c < 0 || c >= numCounters {
		return "unknown"
	}
	return counterNames[c]
}

// Hist identifies one latency histogram (one per pipeline stage).
type Hist int

const (
	QueryLatency         Hist = iota // DB.Search end to end
	CompareLatency                   // one Matcher.Compare call
	PairLatency                      // one tracelet-pair align + score
	RewriteLatency                   // one rewrite attempt incl. re-scoring
	SolveLatency                     // one CSP solve
	DecomposeLatency                 // one function decomposition
	ServerLatency                    // one query-service request end to end
	DiffProgramLatency               // one differential-engine program end to end
	RequestDecodeLatency             // server: request-body decode + query resolution
	CacheLookupLatency               // server: one result-cache lookup
	PrefilterLatency                 // one feature-prefilter candidate ranking
	LSHBucketOccupancy               // VALUE histogram: entries per lsh band bucket at index build
	QueueWaitLatency                 // server: admission-queue wait before a slot was granted
	FleetShardLatency                // coordinator: one shard RPC end to end (incl. client retries)
	FleetMergeLatency                // coordinator: gather + top-K merge of per-shard hits
	numHists
)

var histNames = [numHists]string{
	QueryLatency:         "query_latency",
	CompareLatency:       "compare_latency",
	PairLatency:          "pair_latency",
	RewriteLatency:       "rewrite_latency",
	SolveLatency:         "solve_latency",
	DecomposeLatency:     "decompose_latency",
	ServerLatency:        "server_latency",
	DiffProgramLatency:   "diff_program_latency",
	RequestDecodeLatency: "request_decode_latency",
	CacheLookupLatency:   "cache_lookup_latency",
	PrefilterLatency:     "prefilter_latency",
	LSHBucketOccupancy:   "lsh_bucket_occupancy",
	QueueWaitLatency:     "queue_wait_latency",
	FleetShardLatency:    "fleet_shard_latency",
	FleetMergeLatency:    "fleet_merge_latency",
}

// String returns the snake_case histogram name used in JSON exports.
func (h Hist) String() string {
	if h < 0 || h >= numHists {
		return "unknown"
	}
	return histNames[h]
}

// numBuckets log-scale buckets: bucket i counts durations in
// [2^(i+6), 2^(i+7)) ns, with bucket 0 absorbing everything below 128ns
// and the last bucket absorbing everything above ~2^41ns (~37min). A
// power-of-two bucket boundary makes Observe one bits.Len64 — no float
// math, no search — which is what keeps the hot path cheap.
const (
	numBuckets  = 36
	bucketShift = 7 // bucket i upper bound = 1 << (i + bucketShift) ns
)

// bucketOf maps a duration in nanoseconds to its bucket index.
func bucketOf(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	b := bits.Len64(uint64(ns)) - bucketShift
	if b < 0 {
		return 0
	}
	if b >= numBuckets {
		return numBuckets - 1
	}
	return b
}

// BucketUpperNS returns the exclusive upper bound of bucket i in
// nanoseconds, or math.MaxInt64 for the last (catch-all) bucket.
func BucketUpperNS(i int) int64 {
	if i >= numBuckets-1 {
		return math.MaxInt64
	}
	return 1 << (i + bucketShift)
}

// histogram is a fixed-bucket latency histogram. All fields are atomics;
// Observe is wait-free.
type histogram struct {
	count   atomic.Uint64
	sumNS   atomic.Int64
	maxNS   atomic.Int64
	buckets [numBuckets]atomic.Uint64
}

func (h *histogram) observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sumNS.Add(ns)
	h.buckets[bucketOf(ns)].Add(1)
	for {
		old := h.maxNS.Load()
		if ns <= old || h.maxNS.CompareAndSwap(old, ns) {
			return
		}
	}
}

// Collector accumulates pipeline telemetry. The zero value is NOT ready;
// use New. A nil *Collector is the canonical "telemetry off" value: every
// method no-ops.
type Collector struct {
	start    time.Time
	counters [numCounters]atomic.Uint64
	hists    [numHists]histogram

	infoMu sync.Mutex
	infos  map[string]map[string]string // info gauges: name -> label set
}

// New returns an empty collector stamped with the current time.
func New() *Collector {
	return &Collector{start: time.Now()}
}

// SetInfo registers (or wholesale replaces) a labeled info gauge:
// exposed as tracy_<name>{labels...} 1 on every Prometheus scrape. Info
// gauges carry identity — index format version, build provenance — not
// measurements; the interesting data lives in the labels and the value
// is always 1, the prometheus "_info" convention. No-op on a nil
// collector.
func (c *Collector) SetInfo(name string, labels map[string]string) {
	if c == nil {
		return
	}
	cp := make(map[string]string, len(labels))
	for k, v := range labels {
		cp[k] = v
	}
	c.infoMu.Lock()
	if c.infos == nil {
		c.infos = make(map[string]map[string]string)
	}
	c.infos[name] = cp
	c.infoMu.Unlock()
}

// InfoLabels returns a copy of a registered info gauge's label set, or
// nil when unset (always nil on a nil collector).
func (c *Collector) InfoLabels(name string) map[string]string {
	if c == nil {
		return nil
	}
	c.infoMu.Lock()
	defer c.infoMu.Unlock()
	src, ok := c.infos[name]
	if !ok {
		return nil
	}
	cp := make(map[string]string, len(src))
	for k, v := range src {
		cp[k] = v
	}
	return cp
}

// infoNames returns the registered info-gauge names, sorted.
func (c *Collector) infoNames() []string {
	if c == nil {
		return nil
	}
	c.infoMu.Lock()
	defer c.infoMu.Unlock()
	names := make([]string, 0, len(c.infos))
	for n := range c.infos {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Inc adds 1 to the counter. No-op on a nil collector.
func (c *Collector) Inc(ct Counter) {
	if c == nil {
		return
	}
	c.counters[ct].Add(1)
}

// Add adds n to the counter. No-op on a nil collector.
func (c *Collector) Add(ct Counter, n uint64) {
	if c == nil {
		return
	}
	c.counters[ct].Add(n)
}

// Get returns the current counter value (0 on a nil collector).
func (c *Collector) Get(ct Counter) uint64 {
	if c == nil {
		return 0
	}
	return c.counters[ct].Load()
}

// Observe records one duration into the histogram. No-op on a nil
// collector.
func (c *Collector) Observe(h Hist, d time.Duration) {
	if c == nil {
		return
	}
	c.hists[h].observe(d.Nanoseconds())
}

// ObserveValue records a raw (non-duration) value into h's log-scale
// buckets — used for size/occupancy distributions such as
// LSHBucketOccupancy. Count, sum and max are exact; the shared
// power-of-two bucket bounds collapse values below 128 into the first
// bucket, which is fine for distributions whose interesting tail starts
// in the hundreds. No-op on a nil collector.
func (c *Collector) ObserveValue(h Hist, v int64) {
	if c == nil {
		return
	}
	c.hists[h].observe(v)
}

// Timer is a value-type stage timer: obtained from StartTimer, finished
// with Stop. The zero Timer (and any timer from a nil collector) no-ops,
// so call sites need no nil checks and the disabled path never reads the
// clock.
type Timer struct {
	c  *Collector
	h  Hist
	t0 time.Time
}

// StartTimer starts a timer for the given histogram. On a nil collector
// it returns the no-op zero Timer without reading the clock.
func (c *Collector) StartTimer(h Hist) Timer {
	if c == nil {
		return Timer{}
	}
	return Timer{c: c, h: h, t0: time.Now()}
}

// Stop records the elapsed time since StartTimer. No-op on a zero Timer.
func (t Timer) Stop() {
	if t.c == nil {
		return
	}
	t.c.Observe(t.h, time.Since(t.t0))
}

// Reset zeroes every counter and histogram and restarts the uptime clock.
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	c.start = time.Now()
	for i := range c.counters {
		c.counters[i].Store(0)
	}
	for i := range c.hists {
		h := &c.hists[i]
		h.count.Store(0)
		h.sumNS.Store(0)
		h.maxNS.Store(0)
		for j := range h.buckets {
			h.buckets[j].Store(0)
		}
	}
}

// Bucket is one non-empty histogram bucket in a snapshot.
type Bucket struct {
	UpperNS int64  `json:"le_ns"` // exclusive upper bound (MaxInt64 = +inf)
	Count   uint64 `json:"count"`
}

// HistSnapshot is the exported state of one latency histogram.
type HistSnapshot struct {
	Count   uint64   `json:"count"`
	SumNS   int64    `json:"sum_ns"`
	MeanNS  float64  `json:"mean_ns"`
	MaxNS   int64    `json:"max_ns"`
	P50NS   float64  `json:"p50_ns"`
	P90NS   float64  `json:"p90_ns"`
	P99NS   float64  `json:"p99_ns"`
	Buckets []Bucket `json:"buckets,omitempty"` // non-empty buckets only
}

// Quantile estimates the q-quantile (0..1) by linear interpolation inside
// the containing log-scale bucket.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	cum := 0.0
	for _, b := range s.Buckets {
		next := cum + float64(b.Count)
		if rank <= next {
			lo := float64(0)
			hi := float64(b.UpperNS)
			if b.UpperNS == math.MaxInt64 {
				// Catch-all bucket: fall back to the observed maximum.
				hi = float64(s.MaxNS)
			}
			if hi > float64(s.MaxNS) {
				hi = float64(s.MaxNS)
			}
			if b.UpperNS > 1<<bucketShift { // not the first bucket
				lo = float64(b.UpperNS) / 2
			}
			if hi < lo {
				hi = lo
			}
			frac := 0.0
			if b.Count > 0 {
				frac = (rank - cum) / float64(b.Count)
			}
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return float64(s.MaxNS)
}

// Snapshot is a point-in-time, JSON-serializable export of a collector.
type Snapshot struct {
	TakenAt    time.Time               `json:"taken_at"`
	UptimeMS   int64                   `json:"uptime_ms"`
	Counters   map[string]uint64       `json:"counters"`
	Derived    map[string]float64      `json:"derived,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot exports the current state. Safe while writers are active. On a
// nil collector it returns an empty (but well-formed) snapshot.
func (c *Collector) Snapshot() Snapshot {
	s := Snapshot{
		TakenAt:    time.Now(),
		Counters:   make(map[string]uint64, int(numCounters)),
		Histograms: make(map[string]HistSnapshot, int(numHists)),
	}
	if c == nil {
		return s
	}
	s.UptimeMS = time.Since(c.start).Milliseconds()
	for i := Counter(0); i < numCounters; i++ {
		s.Counters[i.String()] = c.counters[i].Load()
	}
	for i := Hist(0); i < numHists; i++ {
		h := &c.hists[i]
		hs := HistSnapshot{
			Count: h.count.Load(),
			SumNS: h.sumNS.Load(),
			MaxNS: h.maxNS.Load(),
		}
		if hs.Count > 0 {
			hs.MeanNS = float64(hs.SumNS) / float64(hs.Count)
		}
		for b := 0; b < numBuckets; b++ {
			if n := h.buckets[b].Load(); n > 0 {
				hs.Buckets = append(hs.Buckets, Bucket{UpperNS: BucketUpperNS(b), Count: n})
			}
		}
		hs.P50NS = hs.Quantile(0.50)
		hs.P90NS = hs.Quantile(0.90)
		hs.P99NS = hs.Quantile(0.99)
		s.Histograms[i.String()] = hs
	}
	s.Derived = derive(s.Counters)
	return s
}

// derive computes the ratios operators actually look at; a ratio is
// omitted when its denominator is zero.
func derive(ct map[string]uint64) map[string]float64 {
	d := make(map[string]float64)
	ratio := func(name string, num, den uint64) {
		if den > 0 {
			d[name] = float64(num) / float64(den)
		}
	}
	hits, misses := ct[BlockCacheHits.String()], ct[BlockCacheMisses.String()]
	ratio("block_cache_hit_rate", hits, hits+misses)
	att, skip := ct[RewritesAttempted.String()], ct[RewritesSkipped.String()]
	ratio("rewrite_success_rate", ct[RewritesSucceeded.String()], att)
	ratio("rewrite_skip_rate", skip, att+skip)
	ratio("match_rate", ct[Matches.String()], ct[Compares.String()])
	ratio("pairs_pruned_rate", ct[PairsPrunedBound.String()], ct[PairsCompared.String()])
	ratio("pairs_per_compare", ct[PairsCompared.String()], ct[Compares.String()])
	ratio("csp_backtracks_per_solve", ct[CSPBacktracks.String()], ct[CSPSolves.String()])
	sch, scm := ct[ServerCacheHits.String()], ct[ServerCacheMisses.String()]
	ratio("server_cache_hit_rate", sch, sch+scm)
	ratio("server_reject_rate", ct[ServerRejected.String()],
		ct[ServerRequests.String()]+ct[ServerRejected.String()])
	if len(d) == 0 {
		return nil
	}
	return d
}

// WriteJSON writes the snapshot as indented JSON.
func (c *Collector) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(c.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
