package cli

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/telemetry"
)

// obscheck validates a running server's observability surfaces — the
// check CI's observability-smoke job runs after issuing real queries:
//
//   - /metrics parses under the Prometheus text exposition grammar and
//     contains counter and histogram series (_bucket/_sum/_count);
//   - /debug/requests has recorded requests, each carrying a trace ID
//     and a span tree;
//   - a live request's X-Trace-Id response header matches the trace_id
//     echoed in the response body;
//   - with -fleet, /v1/healthz reports coordinator mode with one entry
//     per expected shard, each naming its address, generation, index
//     format and mmap state.
func (c *env) obscheck(args []string) error {
	fs := flag.NewFlagSet("obscheck", flag.ExitOnError)
	serverURL := fs.String("server", "http://localhost:8077", "tracy server base URL")
	timeout := fs.Duration("timeout", 30*time.Second, "overall deadline")
	fleetN := fs.Int("fleet", 0, "expect a coordinator over this many shards and validate its aggregated healthz")
	fleetLive := fs.Int("fleet-live", -1, "require exactly this many live shards (-1: all of -fleet)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := strings.TrimRight(*serverURL, "/")
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	// 1. Prometheus exposition.
	metrics, _, err := obsGet(ctx, base+"/metrics")
	if err != nil {
		return fmt.Errorf("obscheck: /metrics: %w", err)
	}
	if err := telemetry.ValidateExposition(metrics); err != nil {
		return fmt.Errorf("obscheck: /metrics violates the exposition format: %w", err)
	}
	counters := bytes.Count(metrics, []byte("# TYPE"))
	buckets := bytes.Count(metrics, []byte("_bucket{le="))
	if counters == 0 {
		return fmt.Errorf("obscheck: /metrics has no metric families")
	}
	if buckets == 0 {
		return fmt.Errorf("obscheck: /metrics has no histogram series (_bucket)")
	}
	fmt.Fprintf(c.w, "obscheck: /metrics ok (%d families, %d bucket series)\n", counters, buckets)

	// 2. Flight recorder. The span wire shape is decoded structurally
	// (telemetry.Span only marshals), so mirror the JSON here.
	type spanDump struct {
		Name     string          `json:"name"`
		TraceID  string          `json:"trace_id"`
		DurNS    int64           `json:"dur_ns"`
		Children json.RawMessage `json:"children"`
	}
	type reqDump struct {
		TraceID string    `json:"trace_id"`
		Status  int       `json:"status"`
		Span    *spanDump `json:"span"`
	}
	var flight struct {
		Recorded uint64    `json:"recorded"`
		Slowest  []reqDump `json:"slowest"`
		Errored  []reqDump `json:"errored"`
	}
	body, _, err := obsGet(ctx, base+"/debug/requests")
	if err != nil {
		return fmt.Errorf("obscheck: /debug/requests: %w", err)
	}
	if err := json.Unmarshal(body, &flight); err != nil {
		return fmt.Errorf("obscheck: /debug/requests is not valid JSON: %w", err)
	}
	if flight.Recorded == 0 || len(flight.Slowest) == 0 {
		return fmt.Errorf("obscheck: /debug/requests is empty — issue a query first")
	}
	for i, rec := range flight.Slowest {
		if rec.TraceID == "" {
			return fmt.Errorf("obscheck: /debug/requests slowest[%d] has no trace_id", i)
		}
		if rec.Span == nil || rec.Span.DurNS <= 0 {
			return fmt.Errorf("obscheck: /debug/requests slowest[%d] has no finished span", i)
		}
	}
	fmt.Fprintf(c.w, "obscheck: /debug/requests ok (%d recorded, %d slowest, %d errored)\n",
		flight.Recorded, len(flight.Slowest), len(flight.Errored))

	// 3. Header/body trace agreement on a live request. /v1/functions is
	// an observed route with a JSON body and needs no query input.
	body, hdr, err := obsGet(ctx, base+"/v1/functions?limit=1")
	if err != nil {
		return fmt.Errorf("obscheck: /v1/functions: %w", err)
	}
	_ = body
	echoed := hdr.Get("X-Trace-Id")
	if !telemetry.IsTraceID(echoed) {
		return fmt.Errorf("obscheck: /v1/functions X-Trace-Id %q is not a trace ID", echoed)
	}
	fmt.Fprintf(c.w, "obscheck: trace propagation ok (X-Trace-Id %s)\n", echoed)

	// 4. Fleet health aggregation (coordinator mode only).
	if *fleetN > 0 {
		if err := c.obscheckFleet(ctx, base, *fleetN, *fleetLive); err != nil {
			return err
		}
	}
	return nil
}

// obscheckFleet validates a coordinator's aggregated /v1/healthz: the
// server must identify as a coordinator over wantShards replica groups
// (contiguous shard numbers), each fleet entry must name its worker
// (address and replica index) and, when live, its snapshot identity
// (generation, index format, mmap state); wantLive pins how many shard
// groups must have at least one reachable replica (-1: all).
func (c *env) obscheckFleet(ctx context.Context, base string, wantShards, wantLive int) error {
	body, _, err := obsGet(ctx, base+"/v1/healthz")
	if err != nil {
		return fmt.Errorf("obscheck: /v1/healthz: %w", err)
	}
	var h struct {
		Status   string `json:"status"`
		Mode     string `json:"mode"`
		Shards   int    `json:"shards"`
		Replicas int    `json:"replicas"`
		Fleet    []struct {
			Shard       int    `json:"shard"`
			Replica     int    `json:"replica"`
			Addr        string `json:"addr"`
			Status      string `json:"status"`
			Functions   int    `json:"functions"`
			Generation  uint64 `json:"generation"`
			IndexFormat int    `json:"index_format"`
			IndexMapped bool   `json:"index_mapped"`
			Skewed      bool   `json:"skewed"`
		} `json:"fleet"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		return fmt.Errorf("obscheck: /v1/healthz is not valid JSON: %w", err)
	}
	if h.Mode != "coordinator" {
		return fmt.Errorf("obscheck: healthz mode %q, want coordinator", h.Mode)
	}
	if h.Shards != wantShards {
		return fmt.Errorf("obscheck: healthz reports %d shards, want %d", h.Shards, wantShards)
	}
	if h.Replicas != len(h.Fleet) {
		return fmt.Errorf("obscheck: healthz reports %d replicas but %d fleet entries",
			h.Replicas, len(h.Fleet))
	}
	liveByGroup := make([]int, wantShards)
	sizeByGroup := make([]int, wantShards)
	liveReplicas, skewed := 0, 0
	for i, sh := range h.Fleet {
		if sh.Shard < 0 || sh.Shard >= wantShards {
			return fmt.Errorf("obscheck: fleet[%d] has shard number %d, want 0..%d",
				i, sh.Shard, wantShards-1)
		}
		if sh.Replica != sizeByGroup[sh.Shard] {
			return fmt.Errorf("obscheck: fleet[%d] (shard %d) has replica index %d, want %d",
				i, sh.Shard, sh.Replica, sizeByGroup[sh.Shard])
		}
		sizeByGroup[sh.Shard]++
		if sh.Addr == "" {
			return fmt.Errorf("obscheck: fleet[%d] has no address", i)
		}
		if sh.Status == "unreachable" {
			continue
		}
		liveReplicas++
		liveByGroup[sh.Shard]++
		if sh.Skewed {
			skewed++
			continue // a straggler may legitimately lag generations
		}
		if sh.Functions == 0 || sh.Generation == 0 {
			return fmt.Errorf("obscheck: live shard %d replica %d reports functions=%d generation=%d",
				sh.Shard, sh.Replica, sh.Functions, sh.Generation)
		}
	}
	liveGroups := 0
	for i, n := range sizeByGroup {
		if n == 0 {
			return fmt.Errorf("obscheck: shard %d has no fleet entries", i)
		}
		if liveByGroup[i] > 0 {
			liveGroups++
		}
	}
	if wantLive < 0 {
		wantLive = wantShards
	}
	if liveGroups != wantLive {
		return fmt.Errorf("obscheck: %d live shard groups, want %d (status %q)",
			liveGroups, wantLive, h.Status)
	}
	wantStatus := "ok"
	switch {
	case liveReplicas == 0:
		wantStatus = "down"
	case liveReplicas < len(h.Fleet) || skewed > 0:
		wantStatus = "degraded"
	}
	if h.Status != wantStatus {
		return fmt.Errorf("obscheck: fleet status %q with %d/%d replicas live, want %q",
			h.Status, liveReplicas, len(h.Fleet), wantStatus)
	}
	fmt.Fprintf(c.w, "obscheck: fleet healthz ok (%d/%d shard groups live, %d/%d replicas, status %s)\n",
		liveGroups, wantShards, liveReplicas, len(h.Fleet), h.Status)
	return nil
}

// obsGet fetches url and returns the body and response headers,
// erroring on any non-200 status.
func obsGet(ctx context.Context, url string) ([]byte, http.Header, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return body, resp.Header, nil
}
