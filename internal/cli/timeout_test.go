package cli

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestSearchTimeoutFlag(t *testing.T) {
	dir := t.TempDir()
	db := filepath.Join(dir, "code.db")
	a1 := buildExe(t, dir, "a1.bin", srcA+srcB, 11)
	q := buildExe(t, dir, "q.bin", srcA, 99)
	if _, err := run(t, "index", "-db", db, a1); err != nil {
		t.Fatal(err)
	}

	// A generous budget changes nothing: the search completes normally.
	out, err := run(t, "search", "-db", db, "-exe", q, "-timeout", "1m")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "query:") {
		t.Errorf("search with -timeout should still print results:\n%s", out)
	}

	// An already-expired budget fails fast with a timeout error, not a hang
	// or a partial result.
	out, err = run(t, "search", "-db", db, "-exe", q, "-timeout", "1ns")
	if err == nil {
		t.Fatalf("search with 1ns -timeout should fail, got:\n%s", out)
	}
	if !strings.Contains(err.Error(), "timed out") {
		t.Errorf("timeout error = %v, want 'timed out'", err)
	}
}

func TestServeRejectsBadFaultSpec(t *testing.T) {
	// A malformed -faults spec must be rejected before the server binds
	// (the flag is chaos-testing only; typos should not half-arm it).
	_, err := run(t, "serve", "-faults", "search-latency-200ms")
	if err == nil {
		t.Fatal("serve with malformed -faults spec should error")
	}
	if !strings.Contains(err.Error(), "fault") {
		t.Errorf("error should mention the fault spec: %v", err)
	}

	_, err = run(t, "serve", "-faults", "search=frobnicate")
	if err == nil || !strings.Contains(err.Error(), "frobnicate") {
		t.Errorf("unknown fault mode should be named in the error: %v", err)
	}
}
