package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/telemetry"
)

// telOpts carries the shared observability flags every tracy command
// registers:
//
//	-stats            print a human-readable telemetry summary
//	-stats-json DEST  write the full telemetry snapshot as JSON
//	-trace-json DEST  write the query span trace as JSON
//	-pprof ADDR       serve /statsz and /debug/pprof while running
//
// DEST is a file path or "-" for the command's output stream.
type telOpts struct {
	stats     *bool
	statsJSON *string
	traceJSON *string
	pprofAddr *string

	tel   *telemetry.Collector
	trace *telemetry.Span
}

// telFlags registers the observability flags on a command's flag set.
func telFlags(fs *flag.FlagSet) *telOpts {
	t := &telOpts{}
	t.stats = fs.Bool("stats", false, "print a telemetry summary after the command")
	t.statsJSON = fs.String("stats-json", "", `write the telemetry snapshot as JSON to this file ("-" for stdout)`)
	t.traceJSON = fs.String("trace-json", "", `write the query span trace as JSON to this file ("-" for stdout)`)
	t.pprofAddr = fs.String("pprof", "", `serve /statsz and /debug/pprof on this address (e.g. "localhost:6060") while the command runs`)
	return t
}

// activate builds the collector/root span demanded by the parsed flags
// (leaving them nil — telemetry off — when no flag is set) and starts the
// HTTP endpoint if requested. traceName names the root span.
func (t *telOpts) activate(w io.Writer, traceName string) error {
	if *t.stats || *t.statsJSON != "" || *t.pprofAddr != "" {
		t.tel = telemetry.New()
	}
	if *t.traceJSON != "" {
		t.trace = telemetry.StartSpan(traceName)
	}
	if *t.pprofAddr != "" {
		addr, err := telemetry.Serve(*t.pprofAddr, t.tel)
		if err != nil {
			return fmt.Errorf("pprof: %w", err)
		}
		fmt.Fprintf(w, "telemetry: serving /statsz and /debug/pprof on http://%s\n", addr)
	}
	return nil
}

// finish emits the reports requested by the flags. Call it once, at the
// end of a successful command.
func (t *telOpts) finish(w io.Writer) error {
	t.trace.End()
	if t.tel != nil && *t.stats {
		writeStatsSummary(w, t.tel.Snapshot())
	}
	if t.tel != nil && *t.statsJSON != "" {
		if err := writeReport(*t.statsJSON, w, t.tel.WriteJSON); err != nil {
			return fmt.Errorf("stats-json: %w", err)
		}
	}
	if t.trace != nil && *t.traceJSON != "" {
		if err := writeReport(*t.traceJSON, w, t.trace.WriteJSON); err != nil {
			return fmt.Errorf("trace-json: %w", err)
		}
	}
	return nil
}

// writeReport writes via emit to dest: "-" means the command's own output
// stream, anything else a file path.
func writeReport(dest string, w io.Writer, emit func(io.Writer) error) error {
	if dest == "-" {
		return emit(w)
	}
	f, err := os.Create(dest)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeStatsSummary prints the handful of lines an operator scans first;
// the full detail lives in the JSON snapshot.
func writeStatsSummary(w io.Writer, s telemetry.Snapshot) {
	ct := s.Counters
	fmt.Fprintln(w, "-- telemetry --")
	fmt.Fprintf(w, "queries: %d  compares: %d  matches: %d  pairs compared: %d\n",
		ct["queries"], ct["compares"], ct["matches"], ct["pairs_compared"])
	hits, misses := ct["block_cache_hits"], ct["block_cache_misses"]
	if hits+misses > 0 {
		fmt.Fprintf(w, "block cache: %d hits / %d misses (%.1f%% hit rate)\n",
			hits, misses, 100*s.Derived["block_cache_hit_rate"])
	}
	if ct["pairs_pruned_bound"]+ct["funcs_pruned_alpha"] > 0 {
		fmt.Fprintf(w, "pruned: %d pairs by score bound (%.1f%% of compared), %d functions by alpha\n",
			ct["pairs_pruned_bound"], 100*s.Derived["pairs_pruned_rate"], ct["funcs_pruned_alpha"])
	}
	if ct["prefilter_candidates"] > 0 {
		fmt.Fprintf(w, "prefilter: %d candidates passed to exact comparison\n",
			ct["prefilter_candidates"])
	}
	if ct["rewrites_attempted"]+ct["rewrites_skipped"] > 0 {
		fmt.Fprintf(w, "rewrites: %d attempted / %d skipped / %d succeeded\n",
			ct["rewrites_attempted"], ct["rewrites_skipped"], ct["rewrites_succeeded"])
	}
	if ct["csp_solves"] > 0 {
		fmt.Fprintf(w, "csp: %d solves, %d backtracks, %d budget-exhausted\n",
			ct["csp_solves"], ct["csp_backtracks"], ct["csp_budget_exhausted"])
	}
	if ct["dedupe_saved_tracelets"] > 0 {
		fmt.Fprintf(w, "dedupe: %d reference-tracelet evaluations saved\n",
			ct["dedupe_saved_tracelets"])
	}
	if ct["functions_decomposed"] > 0 {
		fmt.Fprintf(w, "decomposed: %d functions\n", ct["functions_decomposed"])
	}
	if ct["diff_programs"] > 0 {
		fmt.Fprintf(w, "diff: %d diff_programs, %d diff_builds, %d diff_executions, %d diff_divergences\n",
			ct["diff_programs"], ct["diff_builds"], ct["diff_executions"], ct["diff_divergences"])
	}
	if ct["invariant_checks"] > 0 {
		fmt.Fprintf(w, "invariants: %d invariant_checks, %d invariant_violations\n",
			ct["invariant_checks"], ct["invariant_violations"])
	}
	for _, name := range []string{
		"query_latency", "compare_latency", "pair_latency",
		"rewrite_latency", "solve_latency", "decompose_latency",
		"diff_program_latency",
	} {
		h := s.Histograms[name]
		if h.Count == 0 {
			continue
		}
		fmt.Fprintf(w, "%-17s n=%-8d mean=%-10v p50=%-10v p90=%-10v p99=%-10v max=%v\n",
			name, h.Count, fmtNS(h.MeanNS), fmtNS(h.P50NS), fmtNS(h.P90NS),
			fmtNS(h.P99NS), fmtNS(float64(h.MaxNS)))
	}
}

// fmtNS renders a nanosecond quantity at µs-or-better resolution.
func fmtNS(ns float64) time.Duration {
	d := time.Duration(ns)
	if d >= time.Millisecond {
		return d.Round(time.Microsecond)
	}
	return d.Round(10 * time.Nanosecond)
}
