package cli

import (
	"flag"
	"fmt"

	"repro/internal/difftest"
)

// fuzz runs the differential-testing campaign: seeded random programs
// built under every optimization level × context combination, emulated
// on shared inputs, plus the metamorphic invariants of the search stack.
// It exits non-zero on any divergence, so CI can gate on it.
func (c *env) fuzz(args []string) error {
	fs := flag.NewFlagSet("fuzz", flag.ExitOnError)
	programs := fs.Int("programs", 25, "random programs to generate")
	seed := fs.Int64("seed", 1, "master seed; reruns with the same seed are identical")
	stmts := fs.Int("stmts", 25, "statement budget per generated program")
	inputs := fs.Int("inputs", 3, "input vectors emulated per program")
	contexts := fs.Int("contexts", 2, "extra O2 context variants beyond O0/O1/O2/Os")
	workers := fs.Int("workers", 0, "parallel program pipelines (0: GOMAXPROCS)")
	maxDiv := fs.Int("max-divergences", 16, "stop after this many divergences")
	noInv := fs.Bool("noinvariants", false, "skip the metamorphic invariants (oracle only)")
	showSrc := fs.Bool("show-source", false, "print the generated source of each divergent program")
	tf := telFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := tf.activate(c.w, "fuzz"); err != nil {
		return err
	}
	rep, err := difftest.Run(difftest.Config{
		Programs:       *programs,
		Seed:           *seed,
		Stmts:          *stmts,
		Inputs:         *inputs,
		ExtraO2:        *contexts,
		Workers:        *workers,
		MaxDivergences: *maxDiv,
		SkipInvariants: *noInv,
		Tel:            tf.tel,
	})
	if err != nil {
		return err
	}
	for _, d := range rep.Divergences {
		fmt.Fprintf(c.w, "DIVERGENCE %s\n", d)
		if *showSrc {
			fmt.Fprintf(c.w, "--- source (reproduce: tracy fuzz -programs 1 -seed <derived>, generator seed %d)\n%s\n", d.Seed, d.Source)
		}
	}
	fmt.Fprintf(c.w, "fuzz: seed %d: %s\n", *seed, rep.Summary())
	if err := tf.finish(c.w); err != nil {
		return err
	}
	if !rep.OK() {
		return fmt.Errorf("fuzz: %d divergences (rerun with -seed %d -show-source to inspect)",
			len(rep.Divergences), *seed)
	}
	return nil
}
