package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// buildTestIndex indexes two executables into a gob database and returns
// its path.
func buildTestIndex(t *testing.T, dir string, format string) string {
	t.Helper()
	exeA := buildExe(t, dir, "a.bin", srcA, 1)
	exeB := buildExe(t, dir, "b.bin", srcB, 2)
	dbPath := filepath.Join(dir, "test.db")
	if _, err := run(t, "index", "-db", dbPath, "-format", format, exeA, exeB); err != nil {
		t.Fatal(err)
	}
	return dbPath
}

func TestIndexV3Format(t *testing.T) {
	dir := t.TempDir()
	dbPath := buildTestIndex(t, dir, "v3")
	prelude := make([]byte, 9)
	f, err := os.Open(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	f.Read(prelude)
	f.Close()
	if string(prelude[:8]) != "TRACYIDX" || prelude[8] != 3 {
		t.Fatalf("index -format v3 wrote prelude %q", prelude)
	}
	// And it must be searchable directly.
	out, err := run(t, "search", "-db", dbPath, "-exe", filepath.Join(dir, "a.bin"), "-top", "3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "alpha") && !strings.Contains(out, "sub_") {
		t.Errorf("search over v3 index printed no hits:\n%s", out)
	}
}

func TestIndexBadFormat(t *testing.T) {
	if _, err := run(t, "index", "-db", "x.db", "-format", "xml"); err == nil {
		t.Fatal("index accepted unknown -format")
	}
}

func TestConvertGobToV3AndBack(t *testing.T) {
	dir := t.TempDir()
	dbPath := buildTestIndex(t, dir, "gob")
	v3Path := filepath.Join(dir, "test.v3")
	out, err := run(t, "convert", "-to", "v3", dbPath, v3Path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "converted") || !strings.Contains(out, "v3") {
		t.Errorf("convert output: %s", out)
	}
	// Round-trip back to gob.
	gobPath := filepath.Join(dir, "back.db")
	if _, err := run(t, "convert", "-to", "gob", v3Path, gobPath); err != nil {
		t.Fatal(err)
	}
	// Both must serve identical stats.
	statsA, err := run(t, "stats", "-db", dbPath)
	if err != nil {
		t.Fatal(err)
	}
	statsB, err := run(t, "stats", "-db", v3Path)
	if err != nil {
		t.Fatal(err)
	}
	statsC, err := run(t, "stats", "-db", gobPath)
	if err != nil {
		t.Fatal(err)
	}
	if statsA != statsB || statsA != statsC {
		t.Errorf("stats diverge across formats:\ngob: %s\nv3:  %s\nback: %s", statsA, statsB, statsC)
	}
}

func TestConvertErrors(t *testing.T) {
	if _, err := run(t, "convert", "only-one-arg"); err == nil {
		t.Error("convert accepted a single path")
	}
	if _, err := run(t, "convert", "-to", "xml", "a", "b"); err == nil {
		t.Error("convert accepted unknown format")
	}
	if _, err := run(t, "convert", "/nonexistent/in.db", "/tmp/out.db"); err == nil {
		t.Error("convert accepted missing input")
	}
}

func TestIdxinfoV3(t *testing.T) {
	dir := t.TempDir()
	dbPath := buildTestIndex(t, dir, "v3")
	out, err := run(t, "idxinfo", "-verify", dbPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"TRACYIDX v3", "functions:", "sections:", "STRB", "FUNC", "FEAT", "checksums: all sections OK"} {
		if !strings.Contains(out, want) {
			t.Errorf("idxinfo output missing %q:\n%s", want, out)
		}
	}
}

func TestIdxinfoGob(t *testing.T) {
	dir := t.TempDir()
	dbPath := buildTestIndex(t, dir, "gob")
	out, err := run(t, "idxinfo", dbPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"TRACYIDX v2", "functions:", "gob object graph"} {
		if !strings.Contains(out, want) {
			t.Errorf("idxinfo output missing %q:\n%s", want, out)
		}
	}
}

func TestIdxinfoErrors(t *testing.T) {
	if _, err := run(t, "idxinfo"); err == nil {
		t.Error("idxinfo accepted zero args")
	}
	if _, err := run(t, "idxinfo", "/nonexistent.db"); err == nil {
		t.Error("idxinfo accepted missing file")
	}
	// A corrupted v3 file must fail verification.
	dir := t.TempDir()
	dbPath := buildTestIndex(t, dir, "v3")
	data, err := os.ReadFile(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte deep in the payload (structure-preserving corruption).
	data[len(data)-5] ^= 0x01
	bad := filepath.Join(dir, "bad.v3")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := run(t, "idxinfo", "-verify", bad); err == nil {
		t.Error("idxinfo -verify passed a corrupted file")
	}
}

func TestIndexExtendV3InPlace(t *testing.T) {
	dir := t.TempDir()
	dbPath := buildTestIndex(t, dir, "v3")
	exeC := buildExe(t, dir, "c.bin", srcB, 7)
	out, err := run(t, "index", "-db", dbPath, "-format", "v3", exeC)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "indexed") {
		t.Errorf("extend output: %s", out)
	}
	info, err := run(t, "idxinfo", dbPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(info, "TRACYIDX v3") {
		t.Errorf("extended db lost v3 format:\n%s", info)
	}
}

// Without -format, extending an index preserves the file's existing
// format (a v3 file must not silently downgrade to gob), and a fresh
// file defaults to gob.
func TestIndexDefaultFormatPreserved(t *testing.T) {
	dir := t.TempDir()
	dbPath := buildTestIndex(t, dir, "v3")
	exeC := buildExe(t, dir, "c.bin", srcB, 7)
	if _, err := run(t, "index", "-db", dbPath, exeC); err != nil {
		t.Fatal(err)
	}
	info, err := run(t, "idxinfo", dbPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(info, "TRACYIDX v3") {
		t.Errorf("default-format extend downgraded v3:\n%s", info)
	}

	fresh := filepath.Join(dir, "fresh.db")
	if _, err := run(t, "index", "-db", fresh, exeC); err != nil {
		t.Fatal(err)
	}
	info, err = run(t, "idxinfo", fresh)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(info, "TRACYIDX v2") {
		t.Errorf("fresh index not gob v2:\n%s", info)
	}
}
