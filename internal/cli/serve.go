package cli

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/corpus"
	"repro/internal/faultinject"
	"repro/internal/idxfile"
	"repro/internal/index"
	"repro/internal/minhash"
	"repro/internal/prep"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/telemetry"
	"repro/internal/tinyc"
)

// serve runs the query service until SIGINT/SIGTERM (graceful drain) —
// SIGHUP hot-reloads the index from disk.
func (c *env) serve(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	dbPath := fs.String("db", "tracy.db", "index file to serve (and hot-reload)")
	addr := fs.String("addr", ":8077", "listen address")
	ksFlag := fs.String("ks", "", "comma-separated tracelet sizes to precompute (default: -k)")
	shards := fs.Int("shards", 0, "snapshot shards per query (0: GOMAXPROCS)")
	maxInFlight := fs.Int("max-inflight", 0, "concurrent searches before shedding 429s (0: 4*GOMAXPROCS)")
	queueDepth := fs.Int("queue-depth", -1, "requests queued for an in-flight slot before shedding (-1: auto — 0 standalone, 64 coordinator)")
	fleet := fs.String("fleet", "", "comma-separated worker base URLs, one entry per corpus shard; an entry may pipe-join replicas of that shard (\"a1|a2,b1|b2\"): serve as a scatter-gather coordinator with per-shard failover (ignores -db)")
	shardTimeout := fs.Duration("shard-timeout", 0, "coordinator: per-shard RPC deadline (0: 10s)")
	shardHedge := fs.Duration("shard-hedge", 0, "coordinator: race a hedged scatter leg against a sibling replica after this delay (0: off)")
	probeInterval := fs.Duration("probe-interval", 0, "coordinator: replica health-probe interval (0: 1s)")
	downAfter := fs.Int("replica-down-after", 0, "coordinator: consecutive failures before a replica is marked down (transport errors mark down immediately; 0: 3)")
	cacheN := fs.Int("cache", 256, "LRU result-cache entries (negative: disable)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request deadline")
	maxBody := fs.Int64("max-body", 8<<20, "request body size limit in bytes")
	degraded := fs.Bool("degraded", false, "answer saturated searches with cached or prefilter-only results instead of 429")
	accessLog := fs.String("access-log", "", "structured JSON access-log destination: a file path or \"-\" for stdout (default: off)")
	accessSample := fs.Int("access-sample", 1, "log 1 in N requests (errors and slow queries always log)")
	slowQuery := fs.Duration("slow-query", time.Second, "slow-query threshold: such requests always log and bump server_slow_queries")
	flightSlow := fs.Int("flight-slow", 0, "slowest requests retained at /debug/requests (0: default)")
	flightErrors := fs.Int("flight-errors", 0, "recent errored requests retained at /debug/requests (0: default)")
	faultSpec := fs.String("faults", os.Getenv(faultinject.EnvVar),
		"fault-injection spec, e.g. search=latency:200ms,decode=error:x2 (chaos testing; default $"+faultinject.EnvVar+")")
	opts := matchFlags(fs)
	tf := telFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := tf.activate(c.w, "serve"); err != nil {
		return err
	}
	var faults *faultinject.Injector
	if *faultSpec != "" {
		var err error
		if faults, err = faultinject.Parse(*faultSpec); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		fmt.Fprintf(c.w, "tracy: WARNING: fault injection armed (%s) — chaos testing only\n", *faultSpec)
	}
	cfg := server.Config{
		DBPath:             *dbPath,
		Opts:               opts(),
		Shards:             *shards,
		MaxInFlight:        *maxInFlight,
		MaxBodyBytes:       *maxBody,
		RequestTimeout:     *timeout,
		CacheEntries:       *cacheN,
		DegradedMode:       *degraded,
		Faults:             faults,
		Tel:                tf.tel,
		AccessLogSample:    *accessSample,
		SlowQueryThreshold: *slowQuery,
		FlightSlow:         *flightSlow,
		FlightErrors:       *flightErrors,
		ShardTimeout:       *shardTimeout,
		ShardHedge:         *shardHedge,
		ProbeInterval:      *probeInterval,
		ReplicaDownAfter:   *downAfter,
	}
	if *fleet != "" {
		if *degraded {
			return fmt.Errorf("serve: -degraded cannot combine with -fleet (a coordinator degrades by merging the surviving shards)")
		}
		for _, entry := range strings.Split(*fleet, ",") {
			if entry = strings.TrimSpace(entry); entry == "" {
				continue
			}
			// Validate each replica group here so a typo fails at startup,
			// not as a permanently-down replica.
			n := 0
			for _, a := range strings.Split(entry, "|") {
				if strings.TrimSpace(a) != "" {
					n++
				}
			}
			if n == 0 {
				return fmt.Errorf("serve: -fleet entry %q lists no replica URLs", entry)
			}
			cfg.Fleet = append(cfg.Fleet, entry)
		}
		if len(cfg.Fleet) == 0 {
			return fmt.Errorf("serve: -fleet lists no worker URLs")
		}
		cfg.DBPath = "" // a coordinator serves the fleet, not a local index
	} else if *shardHedge > 0 || *probeInterval > 0 || *downAfter > 0 {
		return fmt.Errorf("serve: -shard-hedge/-probe-interval/-replica-down-after only apply with -fleet")
	}
	// A coordinator defaults to queueing a burst of requests (work
	// conservation beats bouncing clients into 1s retry backoffs); a
	// standalone server keeps the legacy shed-immediately behavior.
	switch {
	case *queueDepth >= 0:
		cfg.QueueDepth = *queueDepth
	case len(cfg.Fleet) > 0:
		cfg.QueueDepth = 64
	}
	if *accessLog != "" {
		if *accessLog == "-" {
			cfg.AccessLog = c.w
		} else {
			f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("serve: access log: %w", err)
			}
			defer f.Close()
			cfg.AccessLog = f
		}
	}
	if cfg.Tel == nil {
		// The server always collects: /statsz is part of the service.
		cfg.Tel = telemetry.New()
	}
	if *ksFlag != "" {
		for _, part := range strings.Split(*ksFlag, ",") {
			k, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || k <= 0 {
				return fmt.Errorf("serve: bad -ks entry %q", part)
			}
			cfg.Ks = append(cfg.Ks, k)
		}
	}
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	bound, err := srv.Start(*addr)
	if err != nil {
		return err
	}
	what := *dbPath
	if len(cfg.Fleet) > 0 {
		what = fmt.Sprintf("coordinator over %d shards (%s)", len(cfg.Fleet), strings.Join(cfg.Fleet, ", "))
	}
	fmt.Fprintf(c.w, "tracy: serving %s on http://%s (POST /v1/search, /statsz, /metrics, /debug/requests, /debug/pprof)\n",
		what, bound)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	defer signal.Stop(sigs)
	for sig := range sigs {
		if sig == syscall.SIGHUP {
			res, err := srv.Reload()
			if err != nil {
				fmt.Fprintf(c.w, "tracy: reload failed: %v\n", err)
				continue
			}
			fmt.Fprintf(c.w, "tracy: reloaded %s: %d functions, TRACYIDX v%d (mapped=%v, generation %d, %.0fms)\n",
				*dbPath, res.Functions, res.Format, res.Mapped, res.Generation, res.TookMS)
			continue
		}
		fmt.Fprintf(c.w, "tracy: %v: draining in-flight queries\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err := srv.Shutdown(ctx)
		cancel()
		if err != nil {
			return fmt.Errorf("serve: shutdown: %w", err)
		}
		fmt.Fprintln(c.w, "tracy: shutdown complete")
		break
	}
	return tf.finish(c.w)
}

// query sends one search to a running tracy server and prints the ranked
// hits in the same shape as tracy search.
func (c *env) query(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	serverURL := fs.String("server", "http://localhost:8077", "tracy server base URL; a comma-separated list fails over between coordinators on connection errors and 5xx")
	exe := fs.String("exe", "", "executable containing the query function")
	fnName := fs.String("fn", "", "query function name (default: largest)")
	k := fs.Int("k", 0, "tracelet size (0: server default)")
	limit := fs.Int("limit", 10, "max hits to request")
	minScore := fs.Float64("min-score", 0, "drop hits scoring below this (0..1)")
	prefilter := fs.Bool("prefilter", false, "rank candidates by shared features before exact comparison (lossy)")
	candidates := fs.Int("candidates", 0, "prefilter candidate cap (implies -prefilter; default 50)")
	pfMode := fs.String("prefilter-mode", "", "candidate generator: scan (default) or lsh (implies -prefilter)")
	timeout := fs.Duration("timeout", 60*time.Second, "request timeout (also sent to the server as its compute budget)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *exe == "" {
		return fmt.Errorf("query: -exe is required")
	}
	if _, ok := index.ParsePrefilterMode(*pfMode); !ok {
		return fmt.Errorf("query: unknown -prefilter-mode %q (want scan or lsh)", *pfMode)
	}
	img, err := os.ReadFile(*exe)
	if err != nil {
		return err
	}
	// The server gets the -timeout as its compute budget (timeout_ms) and
	// the HTTP call a little grace on top, so a deadline expiry comes back
	// as the server's 504 rather than a client-side disconnect.
	ctx, cancel := context.WithTimeout(context.Background(), *timeout+2*time.Second)
	defer cancel()
	cl := client.New(*serverURL)
	resp, err := cl.SearchImage(ctx, img, *fnName, &server.SearchRequest{
		K: *k, Limit: *limit, MinScore: *minScore,
		Prefilter: *prefilter, Candidates: *candidates, PrefilterMode: *pfMode,
		TimeoutMS: int(timeout.Milliseconds()),
	})
	if err != nil {
		return fmt.Errorf("query: %w", err)
	}
	cached := ""
	if resp.Cached {
		cached = ", cached"
	}
	if resp.Prefiltered {
		cached += ", prefiltered"
	}
	if resp.Degraded {
		cached += ", DEGRADED (" + resp.DegradedReason + ")"
	}
	fmt.Fprintf(c.w, "query: %s (%d blocks, %d instructions) vs %d functions (k=%d, %.0fms%s)\n",
		resp.Query, resp.QueryBlocks, resp.QueryInsts, resp.Candidates, resp.K, resp.TookMS, cached)
	for _, h := range resp.Hits {
		mark := " "
		if h.IsMatch {
			mark = "*"
		}
		fmt.Fprintf(c.w, "%s %5.1f%%  %-20s %-16s matched %d/%d tracelets (%d via rewrite)\n",
			mark, h.Score*100, h.Exe, h.Name, h.Matched, h.RefTracelets, h.MatchedRewrite)
	}
	return nil
}

// mkcorpus generates the synthetic evaluation corpus as stripped
// executables on disk, ready for tracy index / tracy serve — the
// self-contained way to stand a demo service up (CI's server smoke test
// uses it). With -scale N it switches to campaign mode: N functions
// across cycled optimization levels, compiled in parallel and streamed
// — optionally straight into a TRACYIDX v3 index — with bounded memory.
func (c *env) mkcorpus(args []string) error {
	fs := flag.NewFlagSet("mkcorpus", flag.ExitOnError)
	dir := fs.String("dir", "corpus", "output directory")
	seed := fs.Int64("seed", 1, "corpus seed")
	contexts := fs.Int("contexts", 4, "context-group executables")
	versions := fs.Int("versions", 3, "code-change-group executables")
	noise := fs.Int("noise", 4, "noise executables")
	funcs := fs.Int("funcs", 6, "filler functions per executable")
	scale := fs.Int("scale", 0, "campaign mode: total function target (0: classic demo corpus)")
	funcsPer := fs.Int("funcs-per-exe", 32, "campaign: functions per executable")
	stmts := fs.Int("stmts", 12, "campaign: statement budget per generated function")
	optLevels := fs.String("opt-levels", "0,1,2", "campaign: comma-separated optimization levels, cycled per source group")
	workers := fs.Int("workers", 0, "campaign: parallel compile workers (0: GOMAXPROCS)")
	indexOut := fs.String("index", "", "also emit a TRACYIDX v3 index at this path, built while streaming")
	lsh := fs.Bool("lsh", false, "persist MinHash signatures in the emitted index (needs -index)")
	bins := fs.Bool("bins", false, "campaign: write per-executable .bin files even when -index is set")
	tf := telFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *lsh && *indexOut == "" {
		return fmt.Errorf("mkcorpus: -lsh needs -index")
	}
	if err := tf.activate(c.w, "mkcorpus"); err != nil {
		return err
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	if *scale > 0 {
		opts, err := parseOptLevels(*optLevels)
		if err != nil {
			return fmt.Errorf("mkcorpus: %w", err)
		}
		ccfg := corpus.CampaignConfig{
			Seed:        *seed,
			Funcs:       *scale,
			FuncsPerExe: *funcsPer,
			Stmts:       *stmts,
			OptLevels:   opts,
			Workers:     *workers,
		}
		if err := c.mkcorpusCampaign(*dir, ccfg, *indexOut, *bins, *lsh); err != nil {
			return err
		}
		return tf.finish(c.w)
	}
	cfg := corpus.DefaultBuildConfig()
	cfg.Seed = *seed
	cfg.ContextCopies = *contexts
	cfg.Versions = *versions
	cfg.NoiseExes = *noise
	cfg.FuncsPerExe = *funcs
	cp, err := corpus.Build(cfg)
	if err != nil {
		return err
	}
	funcsTotal := 0
	for _, e := range cp.Exes {
		path := filepath.Join(*dir, e.Name+".bin")
		if err := os.WriteFile(path, e.Image, 0o644); err != nil {
			return err
		}
		funcsTotal += len(e.Truth)
	}
	m := cp.Manifest()
	if *indexOut != "" {
		em := newV3Emitter(*lsh)
		for _, e := range cp.Exes {
			if err := em.add(*e); err != nil {
				return fmt.Errorf("mkcorpus: %w", err)
			}
		}
		mi, err := em.write(*indexOut)
		if err != nil {
			return fmt.Errorf("mkcorpus: %w", err)
		}
		m.Index = mi
		fmt.Fprintf(c.w, "wrote index %s (TRACYIDX v%d, %d functions, %d bytes)\n",
			mi.Path, mi.Format, mi.Functions, mi.Bytes)
	}
	// The manifest records the generating configuration — above all the
	// seed — so the corpus can be regenerated byte-for-byte.
	if err := writeManifest(*dir, m); err != nil {
		return err
	}
	fmt.Fprintf(c.w, "wrote %d executables (%d functions) to %s (seed %d, manifest.json)\n",
		len(cp.Exes), funcsTotal, *dir, *seed)
	return tf.finish(c.w)
}

// mkcorpusCampaign runs the scale campaign: executables stream from the
// parallel compile pipeline into .bin files and/or a v3 index builder and
// are then dropped, so peak memory stays far below corpus size.
func (c *env) mkcorpusCampaign(dir string, ccfg corpus.CampaignConfig, indexOut string, bins, lsh bool) error {
	if indexOut == "" && !bins {
		bins = true // with no index requested the .bin files are the output
	}
	var em *v3Emitter
	if indexOut != "" {
		em = newV3Emitter(lsh)
	}
	m := &corpus.Manifest{Campaign: &ccfg}
	nExes := ccfg.NumExes()
	start := time.Now()
	emitted := 0
	total, err := corpus.RunCampaign(ccfg, func(e corpus.Executable, opt tinyc.OptLevel) error {
		if bins {
			if err := os.WriteFile(filepath.Join(dir, e.Name+".bin"), e.Image, 0o644); err != nil {
				return err
			}
		}
		if em != nil {
			if err := em.add(e); err != nil {
				return err
			}
		}
		m.Exes = append(m.Exes, corpus.ManifestExe{
			Name: e.Name, Bytes: len(e.Image), Functions: len(e.Truth), Opt: int(opt),
		})
		emitted++
		if emitted%500 == 0 || emitted == nExes {
			idx := ""
			if em != nil {
				idx = fmt.Sprintf(", index %d MB", em.b.Bytes()>>20)
			}
			fmt.Fprintf(c.w, "  campaign: %d/%d exes, %d functions%s (%.0fs)\n",
				emitted, nExes, em.funcsOr(m), idx, time.Since(start).Seconds())
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("mkcorpus: campaign: %w", err)
	}
	if em != nil {
		mi, err := em.write(indexOut)
		if err != nil {
			return fmt.Errorf("mkcorpus: %w", err)
		}
		m.Index = mi
		fmt.Fprintf(c.w, "wrote index %s (TRACYIDX v%d, %d functions, %d bytes)\n",
			mi.Path, mi.Format, mi.Functions, mi.Bytes)
	}
	if err := writeManifest(dir, m); err != nil {
		return err
	}
	fmt.Fprintf(c.w, "campaign done: %d executables, %d functions in %.1fs (seed %d, manifest.json)\n",
		len(m.Exes), total, time.Since(start).Seconds(), ccfg.Seed)
	return nil
}

// parseOptLevels parses "0,1,2" into tinyc optimization levels.
func parseOptLevels(s string) ([]tinyc.OptLevel, error) {
	var out []tinyc.OptLevel
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(part), "O"))
		n, err := strconv.Atoi(part)
		if err != nil || n < 0 || n > 2 {
			return nil, fmt.Errorf("bad opt level %q (want 0, 1 or 2)", part)
		}
		out = append(out, tinyc.OptLevel(n))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -opt-levels")
	}
	return out, nil
}

// v3Emitter streams lifted executables into a TRACYIDX v3 builder,
// mirroring index.AddImage's entry shape (Name/Addr from the lifter,
// truth by address) so a streamed index is interchangeable with one
// built by tracy index.
type v3Emitter struct {
	b *idxfile.Builder
}

// newV3Emitter returns an emitter; with lsh set the builder also signs
// every function so the index carries an LSHB section.
func newV3Emitter(lsh bool) *v3Emitter {
	b := idxfile.NewBuilder()
	if lsh {
		b.SetLSH(minhash.Default)
	}
	return &v3Emitter{b: b}
}

func (w *v3Emitter) add(e corpus.Executable) error {
	fns, err := prep.LiftImage(e.Image)
	if err != nil {
		return fmt.Errorf("%s: %w", e.Name, err)
	}
	for _, fn := range fns {
		w.b.Add(e.Name, fn, e.Truth[fn.Addr], index.FuncFeatures(fn))
	}
	return nil
}

// funcsOr returns the running function count (builder view when
// indexing, manifest sum otherwise).
func (w *v3Emitter) funcsOr(m *corpus.Manifest) int {
	if w != nil {
		return w.b.NumFuncs()
	}
	n := 0
	for _, e := range m.Exes {
		n += e.Functions
	}
	return n
}

func (w *v3Emitter) write(path string) (*corpus.ManifestIndex, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	_, err = w.b.WriteTo(f)
	if err2 := f.Close(); err == nil {
		err = err2
	}
	if err != nil {
		os.Remove(path)
		return nil, err
	}
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	return &corpus.ManifestIndex{
		Path: path, Format: idxfile.Version, Functions: w.b.NumFuncs(), Bytes: st.Size(),
	}, nil
}

// writeManifest serializes the reproducibility record as manifest.json.
func writeManifest(dir string, m *corpus.Manifest) error {
	mf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "manifest.json"), append(mf, '\n'), 0o644)
}
