package cli

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/index"
)

// TestShardRoundTrip: tracy shard splits an index into verified disjoint
// v3 slices whose union is the input corpus, with every function placed
// on the shard index.ShardOf assigns it.
func TestShardRoundTrip(t *testing.T) {
	dir := t.TempDir()
	dbPath := buildTestIndex(t, dir, "v3")
	src, err := index.OpenFile(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	want := src.Len()
	src.Close()

	const n = 3
	out, err := run(t, "shard", "-n", fmt.Sprint(n), dbPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, fmt.Sprintf("into %d disjoint slices", n)) {
		t.Errorf("shard summary missing:\n%s", out)
	}

	seen := make(map[string]int)
	total := 0
	for i := 0; i < n; i++ {
		path := filepath.Join(dir, fmt.Sprintf("test.shard%d-of-%d.db", i, n))
		if _, err := run(t, "idxinfo", "-verify", path); err != nil {
			t.Fatalf("shard %d fails verification: %v", i, err)
		}
		sdb, err := index.OpenFile(path)
		if err != nil {
			t.Fatalf("reopening shard %d: %v", i, err)
		}
		if sdb.Info().Version != 3 {
			t.Errorf("shard %d is not TRACYIDX v3", i)
		}
		for _, e := range sdb.Entries {
			key := e.Exe + "/" + e.Name
			if prev, dup := seen[key]; dup {
				t.Errorf("function %s on both shard %d and %d", key, prev, i)
			}
			seen[key] = i
			if got := index.ShardOf(e.Exe, e.Name, n); got != i {
				t.Errorf("function %s on shard %d, ShardOf assigns %d", key, i, got)
			}
			total++
		}
		sdb.Close()
	}
	if total != want {
		t.Errorf("shards hold %d functions, input has %d", total, want)
	}
}

// TestShardErrors: bad arity and bad -n are rejected up front.
func TestShardErrors(t *testing.T) {
	if _, err := run(t, "shard"); err == nil {
		t.Error("shard accepted zero args")
	}
	if _, err := run(t, "shard", "-n", "1", "x.db"); err == nil {
		t.Error("shard accepted -n 1")
	}
	if _, err := run(t, "shard", "/nonexistent.db"); err == nil {
		t.Error("shard accepted a missing input")
	}
}
