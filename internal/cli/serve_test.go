package cli

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/server"
)

// countHits returns the number of ranked result lines (they all carry
// the "matched N/M tracelets" suffix).
func countHits(out string) int {
	n := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "tracelets (") {
			n++
		}
	}
	return n
}

func TestSearchLimitAndMinScore(t *testing.T) {
	dir := t.TempDir()
	db := filepath.Join(dir, "code.db")
	a1 := buildExe(t, dir, "a1.bin", srcA+srcB, 11)
	a2 := buildExe(t, dir, "a2.bin", srcA, 23)
	q := buildExe(t, dir, "q.bin", srcA, 99)
	if _, err := run(t, "index", "-db", db, a1, a2); err != nil {
		t.Fatal(err)
	}

	out, err := run(t, "search", "-db", db, "-exe", q, "-limit", "2")
	if err != nil {
		t.Fatal(err)
	}
	if got := countHits(out); got != 2 {
		t.Errorf("-limit 2 printed %d hits:\n%s", got, out)
	}

	// A min-score above every noise hit keeps only the real matches.
	out, err = run(t, "search", "-db", db, "-exe", q, "-limit", "100", "-min-score", "0.9")
	if err != nil {
		t.Fatal(err)
	}
	n := countHits(out)
	if n < 2 || n > 2 {
		t.Errorf("-min-score 0.9 printed %d hits, want the 2 alpha embeddings:\n%s", n, out)
	}
	if strings.Count(out, "*") < n {
		t.Errorf("surviving hits should all be matches:\n%s", out)
	}
}

func TestQueryAgainstRunningServer(t *testing.T) {
	dir := t.TempDir()
	db := filepath.Join(dir, "code.db")
	a1 := buildExe(t, dir, "a1.bin", srcA+srcB, 11)
	a2 := buildExe(t, dir, "a2.bin", srcA, 23)
	q := buildExe(t, dir, "q.bin", srcA, 99)
	if _, err := run(t, "index", "-db", db, a1, a2); err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{DBPath: db})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()

	out, err := run(t, "query", "-server", "http://"+addr.String(), "-exe", q, "-limit", "5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "query:") || strings.Count(out, "*") < 2 {
		t.Errorf("query output should rank the two alpha embeddings as matches:\n%s", out)
	}

	// Querying a stopped server must fail cleanly, not hang.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	_ = srv.Shutdown(ctx)
	cancel()
	if _, err := run(t, "query", "-server", "http://"+addr.String(), "-exe", q, "-timeout", "2s"); err == nil {
		t.Error("query against a stopped server should error")
	}
}

func TestMkcorpus(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "corpus")
	out, err := run(t, "mkcorpus", "-dir", dir, "-contexts", "1", "-versions", "1", "-noise", "1", "-funcs", "2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "wrote 3 executables") {
		t.Errorf("mkcorpus output:\n%s", out)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 { // 3 executables + manifest.json
		t.Fatalf("wrote %d files, want 4", len(entries))
	}
	// The manifest must record the generating seed for reproducibility.
	mf, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var manifest corpus.Manifest
	if err := json.Unmarshal(mf, &manifest); err != nil {
		t.Fatalf("manifest.json: %v", err)
	}
	if manifest.Config.Seed != 1 || len(manifest.Exes) != 3 {
		t.Errorf("manifest = %+v, want seed 1 and 3 exes", manifest)
	}
	// The generated executables must be indexable as-is.
	paths := []string{}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".bin") {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	dbPath := filepath.Join(t.TempDir(), "c.db")
	iout, err := run(t, append([]string{"index", "-db", dbPath}, paths...)...)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(iout, "indexed") {
		t.Errorf("index of mkcorpus output failed:\n%s", iout)
	}
}
