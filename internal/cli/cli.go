// Package cli implements the tracy command-line front end:
//
//	tracy index  -db code.db [-format v3|gob] exe1 exe2 ...  index executables
//	tracy search -db code.db -exe q.bin [-fn sub_X] [-limit N] [-min-score X]
//	tracy serve  -db code.db -addr :8077       run the HTTP query service
//	tracy query  -server URL -exe q.bin        search a running service
//	tracy convert [-to v3|gob] in.db out.db    migrate an index between formats
//	tracy idxinfo [-verify] code.db            inspect an index file's layout
//	tracy mkcorpus -dir corpus                 generate a demo corpus on disk
//	tracy obscheck -server URL                 validate a server's observability surfaces
//	tracy compare [-explain] a.bin b.bin       compare largest functions
//	tracy disasm [-dot] exe                    dump lifted CFGs
//	tracy tracelets [-k N] exe                 dump a function's tracelets
//	tracy emulate -args 1,2 exe                run a function in the emulator
//	tracy fuzz   -programs 50 -seed 1          differential-test the pipeline
//	tracy stats  -db code.db                   database statistics
//	tracy experiments [name]                   regenerate paper tables
//
// Flags -k, -beta, -alpha, -norm, -norewrite configure matching.
//
// Every command also accepts the observability flags -stats (summary),
// -stats-json DEST (machine-readable telemetry report), -trace-json DEST
// (per-query span trace, where the command runs queries) and -pprof ADDR
// (serve /statsz and /debug/pprof while the command runs); DEST is a file
// path or "-" for standard output. See README.md, "Observability".
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"strconv"
	"strings"

	"repro/internal/align"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/experiments"
	"repro/internal/index"
	"repro/internal/minhash"
	"repro/internal/prep"
	"repro/internal/telemetry"
	"repro/internal/tracelet"
)

// Run executes one tracy command with the given arguments (excluding the
// program name), writing output to w.
func Run(w io.Writer, args []string) error {
	if len(args) < 1 {
		return usageError()
	}
	cmd := &env{w: w}
	switch args[0] {
	case "index":
		return cmd.index(args[1:])
	case "search":
		return cmd.search(args[1:])
	case "serve":
		return cmd.serve(args[1:])
	case "query":
		return cmd.query(args[1:])
	case "convert":
		return cmd.convert(args[1:])
	case "shard":
		return cmd.shard(args[1:])
	case "idxinfo":
		return cmd.idxinfo(args[1:])
	case "mkcorpus":
		return cmd.mkcorpus(args[1:])
	case "obscheck":
		return cmd.obscheck(args[1:])
	case "compare":
		return cmd.compare(args[1:])
	case "disasm":
		return cmd.disasm(args[1:])
	case "tracelets":
		return cmd.tracelets(args[1:])
	case "emulate":
		return cmd.emulate(args[1:])
	case "fuzz":
		return cmd.fuzz(args[1:])
	case "stats":
		return cmd.stats(args[1:])
	case "experiments":
		return cmd.experiments(args[1:])
	default:
		return usageError()
	}
}

// env carries the output sink through subcommands.
type env struct {
	w io.Writer
}

func usageError() error {
	return fmt.Errorf(`usage: tracy <command> [flags]
commands: index, search, serve, query, convert, shard, idxinfo, mkcorpus, obscheck, compare, disasm, tracelets, emulate, fuzz, stats, experiments`)
}

// matchFlags registers the shared matching options.
func matchFlags(fs *flag.FlagSet) func() core.Options {
	k := fs.Int("k", 3, "tracelet size in basic blocks")
	beta := fs.Float64("beta", 0.8, "tracelet match threshold (0..1)")
	alpha := fs.Float64("alpha", 0.5, "function coverage threshold (0..1)")
	norm := fs.String("norm", "ratio", "normalization: ratio or containment")
	noRW := fs.Bool("norewrite", false, "disable the rewrite engine")
	noPrune := fs.Bool("noprune", false, "disable the lossless score-bound pruner (exhaustive DP)")
	return func() core.Options {
		opts := core.DefaultOptions()
		opts.K = *k
		opts.Beta = *beta
		opts.Alpha = *alpha
		if *norm == "containment" {
			opts.Norm = align.Containment
		}
		opts.UseRewrite = !*noRW
		opts.Prune = !*noPrune
		return opts
	}
}

func (c *env) index(args []string) error {
	fs := flag.NewFlagSet("index", flag.ExitOnError)
	dbPath := fs.String("db", "tracy.db", "database file to create or extend")
	format := fs.String("format", "", "output format: gob (v2) or v3 (columnar, mmap-served); default: keep the existing file's format, gob for new files")
	lsh := fs.Bool("lsh", false, "also persist MinHash signatures for -prefilter-mode lsh (v3 format only)")
	tf := telFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "" && *format != "gob" && *format != "v3" {
		return fmt.Errorf("index: unknown format %q (want gob or v3)", *format)
	}
	if err := tf.activate(c.w, "index"); err != nil {
		return err
	}
	db := index.New()
	if _, err := os.Stat(*dbPath); err == nil {
		loaded, err2 := index.OpenFile(*dbPath)
		if err2 != nil {
			return fmt.Errorf("loading %s: %w", *dbPath, err2)
		}
		db = loaded
	}
	if *format == "" {
		if db.Info().Version == 3 {
			*format = "v3"
		} else {
			*format = "gob"
		}
	}
	if *lsh && *format != "v3" {
		return fmt.Errorf("index: -lsh needs the v3 format (got %s)", *format)
	}
	db.Tel = tf.tel
	for _, path := range fs.Args() {
		img, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if err := db.AddImage(path, img, nil); err != nil {
			return err
		}
		fmt.Fprintf(c.w, "indexed %s (%d functions total)\n", path, db.Len())
	}
	// Extending a v3 file in place: the mapping being rewritten is the
	// one the lazy entries decode from, so write to a temp file and
	// rename over the original only after the store is released.
	tmp := *dbPath + ".tmp"
	out, err := os.Create(tmp)
	if err != nil {
		return err
	}
	switch {
	case *format == "v3" && *lsh:
		err = db.SaveV3LSH(out, minhash.Default)
	case *format == "v3":
		err = db.SaveV3(out)
	default:
		err = db.Save(out)
	}
	if err2 := out.Close(); err == nil {
		err = err2
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	db.Close()
	if err := os.Rename(tmp, *dbPath); err != nil {
		os.Remove(tmp)
		return err
	}
	return tf.finish(c.w)
}

// liftQuery loads an executable and selects a query function by name, or
// the largest one.
func liftQuery(path, fnName string) (*prep.Function, error) {
	img, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	fns, err := prep.LiftImage(img)
	if err != nil {
		return nil, err
	}
	if len(fns) == 0 {
		return nil, fmt.Errorf("%s: no functions", path)
	}
	if fnName != "" {
		for _, fn := range fns {
			if fn.Name == fnName {
				return fn, nil
			}
		}
		return nil, fmt.Errorf("%s: no function %q", path, fnName)
	}
	best := fns[0]
	for _, fn := range fns[1:] {
		if fn.NumInsts() > best.NumInsts() {
			best = fn
		}
	}
	return best, nil
}

func (c *env) search(args []string) error {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	dbPath := fs.String("db", "tracy.db", "database file")
	exe := fs.String("exe", "", "executable containing the query function")
	fnName := fs.String("fn", "", "query function name (default: largest)")
	top := fs.Int("top", 10, "results to print (alias of -limit)")
	limit := fs.Int("limit", 0, "keep only the top N hits (0: use -top)")
	minScore := fs.Float64("min-score", 0, "drop hits scoring below this (0..1)")
	prefilter := fs.Bool("prefilter", false, "rank candidates by shared features before exact comparison (lossy)")
	candidates := fs.Int("candidates", 0, "prefilter candidate cap (implies -prefilter; default 50)")
	pfMode := fs.String("prefilter-mode", "", "candidate generator: scan (default) or lsh (implies -prefilter)")
	timeout := fs.Duration("timeout", 0, "abort the search after this long (e.g. 500ms, 10s; 0: no limit)")
	opts := matchFlags(fs)
	tf := telFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *exe == "" {
		return fmt.Errorf("search: -exe is required")
	}
	if err := tf.activate(c.w, "search"); err != nil {
		return err
	}
	db, err := index.OpenFile(*dbPath)
	if err != nil {
		return err
	}
	defer db.Close()
	db.Tel = tf.tel
	query, err := liftQuery(*exe, *fnName)
	if err != nil {
		return err
	}
	fmt.Fprintf(c.w, "query: %s (%d blocks, %d instructions) vs %d functions\n",
		query.Name, query.NumBlocks(), query.NumInsts(), db.Len())
	sOpts := opts()
	sOpts.Tel = tf.tel
	sOpts.Trace = tf.trace
	n := *limit
	if n <= 0 {
		n = *top
	}
	mode, ok := index.ParsePrefilterMode(*pfMode)
	if !ok {
		return fmt.Errorf("search: unknown -prefilter-mode %q (want scan or lsh)", *pfMode)
	}
	pf := index.PrefilterOptions{Enabled: *prefilter, Candidates: *candidates, Mode: mode}
	if mode == index.ModeLSH {
		pf.Enabled = true
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	all, err := db.SearchCtx(ctx, query, sOpts, pf)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("search: timed out after %v", *timeout)
		}
		return fmt.Errorf("search: %w", err)
	}
	hits := index.TopK(all, n, *minScore)
	for _, h := range hits {
		mark := " "
		if h.Result.IsMatch {
			mark = "*"
		}
		fmt.Fprintf(c.w, "%s %5.1f%%  %-20s %-16s matched %d/%d tracelets (%d via rewrite)\n",
			mark, h.Result.SimilarityScore*100, h.Entry.Exe, h.Entry.Name,
			h.Result.Matched(), h.Result.RefTracelets, h.Result.MatchedRewrite)
	}
	return tf.finish(c.w)
}

func (c *env) compare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	fnA := fs.String("fna", "", "function in first executable (default largest)")
	fnB := fs.String("fnb", "", "function in second executable (default largest)")
	explain := fs.Bool("explain", false, "print per-tracelet match evidence")
	opts := matchFlags(fs)
	tf := telFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("compare: need exactly two executables")
	}
	if err := tf.activate(c.w, "compare"); err != nil {
		return err
	}
	a, err := liftQuery(fs.Arg(0), *fnA)
	if err != nil {
		return err
	}
	b, err := liftQuery(fs.Arg(1), *fnB)
	if err != nil {
		return err
	}
	cOpts := opts()
	cOpts.Tel = tf.tel
	cOpts.Trace = tf.trace
	m := core.NewMatcher(cOpts)
	ref := core.DecomposeT(a, m.Opts.K, tf.tel)
	tgt := core.DecomposeT(b, m.Opts.K, tf.tel)
	res := m.Compare(ref, tgt)
	fmt.Fprintf(c.w, "%s (%d tracelets) vs %s (%d tracelets)\n",
		a.Name, len(ref.Tracelets), b.Name, len(tgt.Tracelets))
	fmt.Fprintf(c.w, "similarity %.1f%%  match=%v  direct=%d rewrite=%d\n",
		res.SimilarityScore*100, res.IsMatch, res.MatchedDirect, res.MatchedRewrite)
	if *explain {
		// The explained pair gets its own collector so the accountability
		// line reflects exactly this Explain call, whether or not the
		// command-level flags enabled telemetry.
		em := *m
		em.Opts.Tel = telemetry.New()
		em.Opts.Trace = nil
		for _, tm := range em.Explain(ref, tgt) {
			how := "aligned"
			if tm.ViaRewrite {
				how = "rewritten"
			}
			fmt.Fprintf(c.w, "  tracelet %v ~ %v  %.1f%% (%s, +%d -%d insts)\n",
				tm.RefBlocks, tm.TgtBlocks, tm.Score*100, how,
				len(tm.Inserted), len(tm.Deleted))
		}
		es := em.Opts.Tel.Snapshot()
		hits, misses := es.Counters["block_cache_hits"], es.Counters["block_cache_misses"]
		fmt.Fprintf(c.w, "telemetry: block cache %d/%d hits (%.1f%% hit rate); rewrites %d attempted, %d skipped, %d succeeded\n",
			hits, hits+misses, 100*es.Derived["block_cache_hit_rate"],
			es.Counters["rewrites_attempted"], es.Counters["rewrites_skipped"],
			es.Counters["rewrites_succeeded"])
	}
	return tf.finish(c.w)
}

func (c *env) disasm(args []string) error {
	fs := flag.NewFlagSet("disasm", flag.ExitOnError)
	fnName := fs.String("fn", "", "only this function")
	dot := fs.Bool("dot", false, "emit Graphviz DOT instead of a listing")
	tf := telFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := tf.activate(c.w, "disasm"); err != nil {
		return err
	}
	for _, path := range fs.Args() {
		img, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		fns, err := prep.LiftImage(img)
		if err != nil {
			return err
		}
		for _, fn := range fns {
			if *fnName != "" && fn.Name != *fnName {
				continue
			}
			if *dot {
				fmt.Fprint(c.w, fn.Graph.Dot())
				continue
			}
			fmt.Fprintf(c.w, "; %s @ %#x  (%d blocks, %d instructions)\n",
				fn.Name, fn.Addr, fn.NumBlocks(), fn.NumInsts())
			fmt.Fprintln(c.w, fn.Graph)
		}
	}
	return tf.finish(c.w)
}

// tracelets dumps the k-tracelet decomposition of a function, the unit of
// evidence every reported match is built from.
func (c *env) tracelets(args []string) error {
	fs := flag.NewFlagSet("tracelets", flag.ExitOnError)
	fnName := fs.String("fn", "", "function name (default: largest)")
	k := fs.Int("k", 3, "tracelet size in basic blocks")
	tf := telFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("tracelets: need exactly one executable")
	}
	if err := tf.activate(c.w, "tracelets"); err != nil {
		return err
	}
	fn, err := liftQuery(fs.Arg(0), *fnName)
	if err != nil {
		return err
	}
	ts := tracelet.Extract(fn.Graph, *k)
	fmt.Fprintf(c.w, "%s: %d blocks, %d %d-tracelets\n", fn.Name, fn.NumBlocks(), len(ts), *k)
	for i, tr := range ts {
		fmt.Fprintf(c.w, "-- tracelet %d: blocks %v (%d instructions)\n", i, tr.BlockIdx, tr.NumInsts())
		fmt.Fprintln(c.w, tr)
	}
	return tf.finish(c.w)
}

// emulate runs a function from an executable in the x86 emulator and
// reports its return value and external-call trace.
func (c *env) emulate(args []string) error {
	fs := flag.NewFlagSet("emulate", flag.ExitOnError)
	fnName := fs.String("fn", "", "function name (default: largest)")
	argList := fs.String("args", "", "comma-separated integer arguments")
	steps := fs.Int("maxsteps", 2_000_000, "instruction budget")
	tf := telFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("emulate: need exactly one executable")
	}
	if err := tf.activate(c.w, "emulate"); err != nil {
		return err
	}
	img, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	fn, err := liftQuery(fs.Arg(0), *fnName)
	if err != nil {
		return err
	}
	m, err := emu.New(img)
	if err != nil {
		return err
	}
	m.MaxSteps = *steps
	var callArgs []uint32
	if *argList != "" {
		for _, part := range strings.Split(*argList, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(part), 0, 64)
			if err != nil {
				return fmt.Errorf("emulate: bad argument %q", part)
			}
			callArgs = append(callArgs, uint32(v))
		}
	}
	res, err := m.CallFunction(fn.Addr, callArgs...)
	if err != nil {
		return err
	}
	fmt.Fprintf(c.w, "%s(%v) = %d (%#x) in %d steps\n",
		fn.Name, callArgs, int32(res.Ret), res.Ret, res.Steps)
	for _, call := range res.Calls {
		fmt.Fprintf(c.w, "  call %s -> %d\n", call.Key, call.Ret)
	}
	return tf.finish(c.w)
}

func (c *env) stats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	dbPath := fs.String("db", "tracy.db", "database file")
	tf := telFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := tf.activate(c.w, "stats"); err != nil {
		return err
	}
	db, err := index.OpenFile(*dbPath)
	if err != nil {
		return err
	}
	defer db.Close()
	db.Tel = tf.tel
	blocks, insts := 0, 0
	for _, e := range db.Entries {
		blocks += e.Function().NumBlocks()
		insts += e.Function().NumInsts()
	}
	fmt.Fprintf(c.w, "functions: %d\nbasic blocks: %d\ninstructions: %d\n",
		db.Len(), blocks, insts)
	for k := 1; k <= 4; k++ {
		total := 0
		for _, d := range db.Decomposed(k) {
			total += len(d.Tracelets)
		}
		fmt.Fprintf(c.w, "%d-tracelets: %d\n", k, total)
	}
	return tf.finish(c.w)
}

func (c *env) experiments(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	scale := fs.String("scale", "medium", "corpus scale: small, medium, large")
	tf := telFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := tf.activate(c.w, "experiments"); err != nil {
		return err
	}
	if err := experiments.RunT(c.w, *scale, fs.Args(), tf.tel); err != nil {
		return err
	}
	return tf.finish(c.w)
}
