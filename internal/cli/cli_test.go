package cli

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/tinyc"
)

const srcA = `
int alpha(int a, int b, char *s) {
	int x = 1;
	int y = 0;
	if (a == 1) { printf("(%d) HELLO", x); }
	else if (a == 2) { printf(s); }
	while (y < b) { y = y + a; }
	fprintf(a, "Cmd %d DONE", x);
	return x + y;
}
`

const srcB = `
int beta(int a, int b, char *s) {
	int acc = 0;
	int i = 0;
	for (i = 0; i < a; i = i + 1) { acc = acc * 31 + i % 7; }
	while (b > 0) { acc = acc + b; b = b - 1; }
	return acc;
}
`

// buildExe writes a compiled, stripped executable into dir.
func buildExe(t *testing.T, dir, name, src string, seed int64) string {
	t.Helper()
	img, err := tinyc.BuildStripped(src, tinyc.Config{Opt: tinyc.O2, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func run(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := Run(&buf, args)
	return buf.String(), err
}

func TestIndexSearchRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := filepath.Join(dir, "code.db")
	a1 := buildExe(t, dir, "a1.bin", srcA+srcB, 11)
	a2 := buildExe(t, dir, "a2.bin", srcA, 23)
	q := buildExe(t, dir, "q.bin", srcA, 99)

	out, err := run(t, "index", "-db", db, a1, a2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "indexed") {
		t.Errorf("index output: %s", out)
	}
	out, err = run(t, "search", "-db", db, "-exe", q, "-top", "5")
	if err != nil {
		t.Fatal(err)
	}
	// The two alpha embeddings must appear as matches ('*').
	if got := strings.Count(out, "*"); got < 2 {
		t.Errorf("expected >=2 matches in:\n%s", out)
	}
	if !strings.Contains(out, "query:") {
		t.Errorf("missing query header:\n%s", out)
	}
}

func TestCompareExplain(t *testing.T) {
	dir := t.TempDir()
	a := buildExe(t, dir, "a.bin", srcA, 5)
	b := buildExe(t, dir, "b.bin", srcA, 8)
	out, err := run(t, "compare", "-explain", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "similarity") || !strings.Contains(out, "match=true") {
		t.Errorf("compare output:\n%s", out)
	}
	if !strings.Contains(out, "tracelet") {
		t.Errorf("explain output missing:\n%s", out)
	}
}

func TestDisasm(t *testing.T) {
	dir := t.TempDir()
	a := buildExe(t, dir, "a.bin", srcA, 5)
	out, err := run(t, "disasm", a)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"block 0", "call _printf", "retn"} {
		if !strings.Contains(out, want) {
			t.Errorf("disasm missing %q:\n%s", want, out)
		}
	}
}

func TestStats(t *testing.T) {
	dir := t.TempDir()
	db := filepath.Join(dir, "code.db")
	a := buildExe(t, dir, "a.bin", srcA+srcB, 3)
	if _, err := run(t, "index", "-db", db, a); err != nil {
		t.Fatal(err)
	}
	out, err := run(t, "stats", "-db", db)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"functions: 2", "basic blocks:", "3-tracelets:"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats missing %q:\n%s", want, out)
		}
	}
}

func TestBadUsage(t *testing.T) {
	if _, err := run(t); err == nil {
		t.Error("no args should error")
	}
	if _, err := run(t, "bogus"); err == nil {
		t.Error("unknown command should error")
	}
	if _, err := run(t, "search", "-db", "/nonexistent/x.db", "-exe", "y"); err == nil {
		t.Error("missing db should error")
	}
	if _, err := run(t, "search"); err == nil {
		t.Error("search without -exe should error")
	}
	if _, err := run(t, "compare", "one.bin"); err == nil {
		t.Error("compare with one arg should error")
	}
	if _, err := run(t, "experiments", "-scale", "bogus"); err == nil {
		t.Error("bad scale should error")
	}
	if _, err := run(t, "experiments", "nosuch"); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestSearchByFunctionName(t *testing.T) {
	dir := t.TempDir()
	db := filepath.Join(dir, "code.db")
	a := buildExe(t, dir, "a.bin", srcA+srcB, 3)
	if _, err := run(t, "index", "-db", db, a); err != nil {
		t.Fatal(err)
	}
	// Find the real recovered name via disasm, then search by it.
	out, err := run(t, "disasm", a)
	if err != nil {
		t.Fatal(err)
	}
	var name string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "; sub_") {
			name = strings.Fields(line)[1]
			break
		}
	}
	if name == "" {
		t.Fatalf("no function name found in disasm:\n%s", out)
	}
	if _, err := run(t, "search", "-db", db, "-exe", a, "-fn", name); err != nil {
		t.Fatal(err)
	}
	if _, err := run(t, "search", "-db", db, "-exe", a, "-fn", "nosuch"); err == nil {
		t.Error("unknown -fn should error")
	}
}

func TestTracelets(t *testing.T) {
	dir := t.TempDir()
	a := buildExe(t, dir, "a.bin", srcA, 5)
	out, err := run(t, "tracelets", "-k", "2", a)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "2-tracelets") || !strings.Contains(out, "-- tracelet 0") {
		t.Errorf("tracelets output:\n%s", out)
	}
	if _, err := run(t, "tracelets"); err == nil {
		t.Error("tracelets without args should error")
	}
}

func TestEmulate(t *testing.T) {
	dir := t.TempDir()
	a := buildExe(t, dir, "a.bin", srcB, 5)
	out, err := run(t, "emulate", "-args", "4, 2", a)
	if err != nil {
		t.Fatal(err)
	}
	// beta(4,2): acc = sum of (acc*31 + i%7) over i<4, then +2+1.
	if !strings.Contains(out, "steps") {
		t.Errorf("emulate output:\n%s", out)
	}
	if _, err := run(t, "emulate", "-args", "zap", a); err == nil {
		t.Error("bad args should error")
	}
	if _, err := run(t, "emulate"); err == nil {
		t.Error("missing exe should error")
	}
}

// searchStatsSetup indexes two executables and returns (db path, query path).
func searchStatsSetup(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	db := filepath.Join(dir, "code.db")
	a1 := buildExe(t, dir, "a1.bin", srcA+srcB, 11)
	a2 := buildExe(t, dir, "a2.bin", srcA, 23)
	q := buildExe(t, dir, "q.bin", srcA, 99)
	if _, err := run(t, "index", "-db", db, a1, a2); err != nil {
		t.Fatal(err)
	}
	return db, q
}

// TestSearchStatsJSON is the acceptance check of the telemetry tentpole:
// `tracy search -stats-json -` must emit a machine-readable report with
// per-stage latency histograms, alignment-cache hit/miss counts, rewrite
// attempted/skipped/succeeded counts, and end-to-end query latency.
func TestSearchStatsJSON(t *testing.T) {
	db, q := searchStatsSetup(t)
	out, err := run(t, "search", "-db", db, "-exe", q, "-stats-json", "-")
	if err != nil {
		t.Fatal(err)
	}
	// The JSON report follows the human-readable hit list; find it.
	idx := strings.Index(out, "{")
	if idx < 0 {
		t.Fatalf("no JSON in output:\n%s", out)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(out[idx:]), &snap); err != nil {
		t.Fatalf("stats-json not valid JSON: %v\n%s", err, out[idx:])
	}
	if snap.Counters["queries"] != 1 {
		t.Errorf("queries = %d, want 1", snap.Counters["queries"])
	}
	if snap.Counters["compares"] == 0 || snap.Counters["pairs_compared"] == 0 {
		t.Errorf("no compare work recorded: %v", snap.Counters)
	}
	if snap.Counters["block_cache_hits"]+snap.Counters["block_cache_misses"] == 0 {
		t.Errorf("no block-cache traffic recorded: %v", snap.Counters)
	}
	if _, ok := snap.Counters["rewrites_attempted"]; !ok {
		t.Error("rewrites_attempted missing from counters")
	}
	if _, ok := snap.Counters["rewrites_skipped"]; !ok {
		t.Error("rewrites_skipped missing from counters")
	}
	if _, ok := snap.Counters["rewrites_succeeded"]; !ok {
		t.Error("rewrites_succeeded missing from counters")
	}
	for _, h := range []string{"query_latency", "compare_latency", "pair_latency", "decompose_latency"} {
		if snap.Histograms[h].Count == 0 {
			t.Errorf("histogram %s empty", h)
		}
	}
	if snap.Histograms["query_latency"].Count != 1 {
		t.Errorf("query_latency count = %d, want 1", snap.Histograms["query_latency"].Count)
	}
}

func TestSearchStatsSummaryAndFile(t *testing.T) {
	db, q := searchStatsSetup(t)
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "stats.json")
	out, err := run(t, "search", "-db", db, "-exe", q, "-stats", "-stats-json", jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"-- telemetry --", "block cache:", "query_latency"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("stats file invalid: %v", err)
	}
	if snap.Counters["queries"] != 1 {
		t.Errorf("file snapshot queries = %d", snap.Counters["queries"])
	}
}

func TestSearchTraceJSON(t *testing.T) {
	db, q := searchStatsSetup(t)
	out, err := run(t, "search", "-db", db, "-exe", q, "-trace-json", "-")
	if err != nil {
		t.Fatal(err)
	}
	idx := strings.Index(out, "{")
	if idx < 0 {
		t.Fatalf("no JSON in output:\n%s", out)
	}
	var span struct {
		Name     string `json:"name"`
		DurNS    int64  `json:"dur_ns"`
		Children []struct {
			Name     string           `json:"name"`
			Attrs    map[string]int64 `json:"attrs"`
			Children []struct {
				Name  string           `json:"name"`
				Attrs map[string]int64 `json:"attrs"`
			} `json:"children"`
		} `json:"children"`
	}
	if err := json.Unmarshal([]byte(out[idx:]), &span); err != nil {
		t.Fatalf("trace-json invalid: %v\n%s", err, out[idx:])
	}
	if span.Name != "search" || span.DurNS <= 0 {
		t.Errorf("root span wrong: %+v", span)
	}
	names := map[string]bool{}
	var compares int
	for _, c := range span.Children {
		names[c.Name] = true
		if c.Name == "scan" {
			for _, cc := range c.Children {
				if strings.HasPrefix(cc.Name, "compare:") {
					compares++
					if _, ok := cc.Attrs["verdict_match"]; !ok {
						t.Errorf("compare span missing verdict: %+v", cc)
					}
				}
			}
		}
	}
	for _, want := range []string{"decompose", "scan", "rank"} {
		if !names[want] {
			t.Errorf("trace missing %q child (have %v)", want, names)
		}
	}
	if compares == 0 {
		t.Error("no compare spans under scan")
	}
}

// TestCompareExplainTelemetryLine checks the satellite: explain output
// ends with an accountability line reporting cache hit rate and rewrite
// skip counts for the explained pair.
func TestCompareExplainTelemetryLine(t *testing.T) {
	dir := t.TempDir()
	a := buildExe(t, dir, "a.bin", srcA, 5)
	b := buildExe(t, dir, "b.bin", srcA, 8)
	out, err := run(t, "compare", "-explain", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "telemetry: block cache") {
		t.Errorf("explain missing telemetry line:\n%s", out)
	}
	if !strings.Contains(out, "hit rate") || !strings.Contains(out, "skipped") {
		t.Errorf("telemetry line incomplete:\n%s", out)
	}
}

func TestComparePprofEndpoint(t *testing.T) {
	dir := t.TempDir()
	a := buildExe(t, dir, "a.bin", srcA, 5)
	b := buildExe(t, dir, "b.bin", srcA, 8)
	out, err := run(t, "compare", "-pprof", "127.0.0.1:0", a, b)
	if err != nil {
		t.Fatal(err)
	}
	// The bound address is announced on the first line; the server stays
	// up for the process lifetime, so we can still query it here.
	var addr string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "serving /statsz") {
			addr = line[strings.Index(line, "http://"):]
			break
		}
	}
	if addr == "" {
		t.Fatalf("no pprof announcement in:\n%s", out)
	}
	resp, err := http.Get(addr + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap telemetry.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["compares"] == 0 {
		t.Errorf("statsz shows no compares: %v", snap.Counters)
	}
}

func TestStatsWithTelemetry(t *testing.T) {
	dir := t.TempDir()
	db := filepath.Join(dir, "code.db")
	a := buildExe(t, dir, "a.bin", srcA+srcB, 3)
	if _, err := run(t, "index", "-db", db, a); err != nil {
		t.Fatal(err)
	}
	out, err := run(t, "stats", "-db", db, "-stats")
	if err != nil {
		t.Fatal(err)
	}
	// The stats command decomposes the corpus for k=1..4; that work must
	// show up in the telemetry summary.
	if !strings.Contains(out, "decomposed:") || !strings.Contains(out, "decompose_latency") {
		t.Errorf("stats telemetry missing decompose data:\n%s", out)
	}
}

func TestDisasmDot(t *testing.T) {
	dir := t.TempDir()
	a := buildExe(t, dir, "a.bin", srcA, 5)
	out, err := run(t, "disasm", "-dot", a)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "digraph") || !strings.Contains(out, "->") {
		t.Errorf("dot output:\n%s", out)
	}
}
