package cli

import (
	"strings"
	"testing"
)

// TestFuzzVerb runs a tiny differential campaign through the CLI and
// checks the summary line and exit behavior.
func TestFuzzVerb(t *testing.T) {
	if testing.Short() {
		t.Skip("differential campaign in -short mode")
	}
	out, err := run(t, "fuzz", "-programs", "2", "-seed", "3", "-stmts", "12", "-inputs", "2", "-contexts", "1")
	if err != nil {
		t.Fatalf("fuzz verb failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "fuzz: seed 3:") {
		t.Errorf("missing summary line: %s", out)
	}
	if !strings.Contains(out, "0 divergences") {
		t.Errorf("expected a clean campaign: %s", out)
	}
	if strings.Contains(out, "DIVERGENCE") {
		t.Errorf("unexpected divergence report: %s", out)
	}
}

// TestFuzzVerbTelemetry checks that -stats surfaces the campaign counters.
func TestFuzzVerbTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("differential campaign in -short mode")
	}
	out, err := run(t, "fuzz", "-programs", "1", "-seed", "5", "-stmts", "10", "-inputs", "2", "-contexts", "0", "-noinvariants", "-stats")
	if err != nil {
		t.Fatalf("fuzz verb failed: %v\n%s", err, out)
	}
	for _, want := range []string{"diff_programs", "diff_builds", "diff_executions"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}
}
