package cli

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// lshFixture builds two executables once and returns (dir, exeA, exeB);
// each test writes its own index from them.
func lshFixture(t *testing.T) (string, string, string) {
	t.Helper()
	dir := t.TempDir()
	exeA := buildExe(t, dir, "a.bin", srcA, 1)
	exeB := buildExe(t, dir, "b.bin", srcB, 2)
	return dir, exeA, exeB
}

// searchCounters runs tracy search with extra flags and returns the
// telemetry counters the run recorded.
func searchCounters(t *testing.T, dbPath, exe string, extra ...string) map[string]uint64 {
	t.Helper()
	statsPath := filepath.Join(t.TempDir(), "stats.json")
	args := append([]string{"search", "-db", dbPath, "-exe", exe, "-stats-json", statsPath}, extra...)
	if _, err := run(t, args...); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(statsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	return snap.Counters
}

// TestSearchPrefilterFlagImplications: the flag layer of the
// "Candidates > 0 implies Enabled" contract — which flag combinations
// actually run the prefilter, observed through prefilter_candidates.
// The same table exists against PrefilterOptions in internal/index and
// against the JSON request in internal/server.
func TestSearchPrefilterFlagImplications(t *testing.T) {
	dir, exeA, exeB := lshFixture(t)
	dbPath := filepath.Join(dir, "test.db")
	if _, err := run(t, "index", "-db", dbPath, "-format", "v3", "-lsh", exeA, exeB); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name       string
		flags      []string
		prefilter  bool
		lshQueries uint64
	}{
		{"no flags stays exhaustive", nil, false, 0},
		{"-prefilter enables scan", []string{"-prefilter"}, true, 0},
		{"-candidates implies -prefilter", []string{"-candidates", "5"}, true, 0},
		{"-candidates 0 alone stays exhaustive", []string{"-candidates", "0"}, false, 0},
		{"-candidates -1 alone stays exhaustive", []string{"-candidates", "-1"}, false, 0},
		{"-prefilter -candidates -1 uses the default cap", []string{"-prefilter", "-candidates", "-1"}, true, 0},
		{"-prefilter-mode scan alone stays exhaustive", []string{"-prefilter-mode", "scan"}, false, 0},
		{"-prefilter-mode lsh implies -prefilter", []string{"-prefilter-mode", "lsh"}, true, 1},
		{"lsh with an explicit cap", []string{"-prefilter-mode", "lsh", "-candidates", "5"}, true, 1},
	}
	for _, tc := range cases {
		counters := searchCounters(t, dbPath, exeA, tc.flags...)
		if got := counters["prefilter_candidates"] > 0; got != tc.prefilter {
			t.Errorf("%s: prefilter ran = %v, want %v (prefilter_candidates = %d)",
				tc.name, got, tc.prefilter, counters["prefilter_candidates"])
		}
		if got := counters["lsh_queries"]; got != tc.lshQueries {
			t.Errorf("%s: lsh_queries = %d, want %d", tc.name, got, tc.lshQueries)
		}
		if got := counters["lsh_fallbacks"]; got != 0 {
			t.Errorf("%s: lsh_fallbacks = %d on an lsh-signed index", tc.name, got)
		}
	}

	if _, err := run(t, "search", "-db", dbPath, "-exe", exeA, "-prefilter-mode", "minhash"); err == nil {
		t.Error("search accepted unknown -prefilter-mode")
	}
}

// TestSearchLSHFallbackOnPlainV3: lsh mode against a v3 file written
// without -lsh degrades to the scan prefilter — counted, never an error.
func TestSearchLSHFallbackOnPlainV3(t *testing.T) {
	dir, exeA, exeB := lshFixture(t)
	dbPath := filepath.Join(dir, "plain.db")
	if _, err := run(t, "index", "-db", dbPath, "-format", "v3", exeA, exeB); err != nil {
		t.Fatal(err)
	}
	counters := searchCounters(t, dbPath, exeA, "-prefilter-mode", "lsh")
	if counters["lsh_fallbacks"] == 0 {
		t.Error("lsh search on an unsigned v3 file did not count a fallback")
	}
	if counters["lsh_queries"] != 0 {
		t.Errorf("fallback search counted %d served lsh queries", counters["lsh_queries"])
	}
	if counters["prefilter_candidates"] == 0 {
		t.Error("fallback search did not run the scan prefilter")
	}
}

// TestIndexLSHFlagGating: -lsh is a v3-only feature across every verb
// that writes an index.
func TestIndexLSHFlagGating(t *testing.T) {
	dir, exeA, _ := lshFixture(t)

	if _, err := run(t, "index", "-db", filepath.Join(dir, "g.db"), "-format", "gob", "-lsh", exeA); err == nil {
		t.Error("index accepted -lsh with the gob format")
	}
	// A fresh file without -format defaults to gob, so -lsh must refuse.
	if _, err := run(t, "index", "-db", filepath.Join(dir, "fresh.db"), "-lsh", exeA); err == nil {
		t.Error("index accepted -lsh without -format v3")
	}
	if _, err := run(t, "convert", "-to", "gob", "-lsh", "in.db", "out.db"); err == nil {
		t.Error("convert accepted -lsh with -to gob")
	}
	if _, err := run(t, "mkcorpus", "-lsh", "-dir", dir); err == nil {
		t.Error("mkcorpus accepted -lsh without -index")
	}
}

// TestIdxinfoLSHLine: idxinfo reports the banding parameters of a
// signed index and stays quiet for unsigned ones; convert -lsh signs an
// existing file.
func TestIdxinfoLSHLine(t *testing.T) {
	dir, exeA, exeB := lshFixture(t)
	plain := filepath.Join(dir, "plain.db")
	if _, err := run(t, "index", "-db", plain, "-format", "v3", exeA, exeB); err != nil {
		t.Fatal(err)
	}
	out, err := run(t, "idxinfo", plain)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "lsh:") {
		t.Errorf("idxinfo invented an lsh line for an unsigned file:\n%s", out)
	}

	signed := filepath.Join(dir, "signed.db")
	if _, err := run(t, "convert", "-to", "v3", "-lsh", plain, signed); err != nil {
		t.Fatal(err)
	}
	out, err = run(t, "idxinfo", "-verify", signed)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"lsh:", "bands x", "LSHB", "checksums: all sections OK"} {
		if !strings.Contains(out, want) {
			t.Errorf("idxinfo output missing %q:\n%s", want, out)
		}
	}
}
