package cli

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/index"
	"repro/internal/minhash"
)

// shard splits one index into N disjoint TRACYIDX v3 slices for a
// scatter-gather fleet: every function lands on exactly one shard by
// index.ShardOf (FNV-1a over exe/name), so the shards' union is the
// input corpus and a coordinator merging per-shard top-K lists
// reproduces the single-index answer. Output files are written next to
// the input (or under -out) as <stem>.shard<i>-of-<n>.db, each ready
// for its own tracy serve worker.
func (c *env) shard(args []string) error {
	fs := flag.NewFlagSet("shard", flag.ExitOnError)
	n := fs.Int("n", 2, "number of shards to split into")
	outDir := fs.String("out", "", "output directory (default: the input's directory)")
	lsh := fs.Bool("lsh", false, "persist MinHash signatures in every shard for -prefilter-mode lsh")
	verify := fs.Bool("verify", true, "re-open each shard and verify checksums after writing")
	tf := telFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("shard: need exactly one index file (tracy shard -n 4 tracy.db)")
	}
	if *n < 2 {
		return fmt.Errorf("shard: -n %d must be at least 2", *n)
	}
	if err := tf.activate(c.w, "shard"); err != nil {
		return err
	}
	src := fs.Arg(0)
	db, err := index.OpenFile(src)
	if err != nil {
		return err
	}
	defer db.Close()
	dir := *outDir
	if dir == "" {
		dir = filepath.Dir(src)
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	stem := strings.TrimSuffix(filepath.Base(src), filepath.Ext(src))
	total := 0
	for i := 0; i < *n; i++ {
		dst := filepath.Join(dir, fmt.Sprintf("%s.shard%d-of-%d.db", stem, i, *n))
		if err := writeShard(db, dst, i, *n, *lsh); err != nil {
			return fmt.Errorf("shard: %w", err)
		}
		if *verify {
			if err := verifyIndexFile(dst); err != nil {
				os.Remove(dst)
				return fmt.Errorf("shard: %s failed verification: %w", dst, err)
			}
		}
		sdb, err := index.OpenFile(dst)
		if err != nil {
			return fmt.Errorf("shard: reopening %s: %w", dst, err)
		}
		info := sdb.Info()
		sdb.Close()
		total += info.Funcs
		fmt.Fprintf(c.w, "wrote %s (%d functions, %d bytes)\n", dst, info.Funcs, info.Bytes)
	}
	in := db.Info()
	if total != in.Funcs {
		return fmt.Errorf("shard: shards hold %d functions, input has %d", total, in.Funcs)
	}
	fmt.Fprintf(c.w, "sharded %s (%d functions) into %d disjoint slices\n", src, in.Funcs, *n)
	return tf.finish(c.w)
}

// writeShard emits one slice atomically (.tmp + rename), so a crash
// never leaves a half-written shard under the final name.
func writeShard(db *index.DB, dst string, shard, n int, lsh bool) error {
	tmp := dst + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if lsh {
		err = db.SaveV3ShardLSH(f, shard, n, minhash.Default)
	} else {
		err = db.SaveV3Shard(f, shard, n)
	}
	if err2 := f.Close(); err == nil {
		err = err2
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, dst)
}
