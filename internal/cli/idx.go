package cli

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/index"
	"repro/internal/minhash"
)

// convert migrates an index file between formats: any loadable format
// (v0–v3) in, v3 columnar or v2 gob out. Converting to v3 is the
// migration path for corpora that should be served via mmap.
func (c *env) convert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	to := fs.String("to", "v3", "output format: v3 (columnar, mmap-served) or gob (v2)")
	lsh := fs.Bool("lsh", false, "also persist MinHash signatures for -prefilter-mode lsh (v3 output only)")
	verify := fs.Bool("verify", true, "re-open the output and verify checksums after writing")
	tf := telFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("convert: need input and output paths (tracy convert [-to v3|gob] in.db out.db)")
	}
	if *to != "v3" && *to != "gob" {
		return fmt.Errorf("convert: unknown output format %q (want v3 or gob)", *to)
	}
	if *lsh && *to != "v3" {
		return fmt.Errorf("convert: -lsh needs -to v3")
	}
	if err := tf.activate(c.w, "convert"); err != nil {
		return err
	}
	src, dst := fs.Arg(0), fs.Arg(1)
	db, err := index.OpenFile(src)
	if err != nil {
		return err
	}
	defer db.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	switch {
	case *to == "v3" && *lsh:
		err = db.SaveV3LSH(out, minhash.Default)
	case *to == "v3":
		err = db.SaveV3(out)
	default:
		err = db.Save(out)
	}
	if err2 := out.Close(); err == nil {
		err = err2
	}
	if err != nil {
		os.Remove(dst)
		return fmt.Errorf("convert: %w", err)
	}
	if *verify {
		if err := verifyIndexFile(dst); err != nil {
			os.Remove(dst)
			return fmt.Errorf("convert: output failed verification: %w", err)
		}
	}
	st, _ := os.Stat(dst)
	var outBytes int64
	if st != nil {
		outBytes = st.Size()
	}
	in := db.Info()
	fmt.Fprintf(c.w, "converted %s (v%d, %d functions, %d bytes) -> %s (%s, %d bytes)\n",
		src, in.Version, in.Funcs, in.Bytes, dst, *to, outBytes)
	return tf.finish(c.w)
}

// verifyIndexFile re-opens a freshly written index and checks it loads;
// v3 files additionally get a full section-checksum pass.
func verifyIndexFile(path string) error {
	db, err := index.OpenFile(path)
	if err != nil {
		return err
	}
	defer db.Close()
	if st := db.Store(); st != nil {
		return st.Verify()
	}
	return nil
}

// idxinfo prints the header, section directory and entry counts of any
// v0–v3 index file without decoding function bodies (v3) or while
// reporting what a full decode found (gob formats, which have no cheaper
// inspection path).
func (c *env) idxinfo(args []string) error {
	fs := flag.NewFlagSet("idxinfo", flag.ExitOnError)
	verify := fs.Bool("verify", false, "recompute per-section checksums (v3; touches every page)")
	tf := telFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("idxinfo: need exactly one index file")
	}
	if err := tf.activate(c.w, "idxinfo"); err != nil {
		return err
	}
	path := fs.Arg(0)
	db, err := index.OpenFile(path)
	if err != nil {
		return err
	}
	defer db.Close()
	info := db.Info()
	fmt.Fprintf(c.w, "%s: TRACYIDX v%d\n", path, info.Version)
	fmt.Fprintf(c.w, "  size:      %d bytes\n", info.Bytes)
	fmt.Fprintf(c.w, "  functions: %d\n", info.Funcs)
	st := db.Store()
	if st == nil {
		// Gob formats carry no section directory; report the decoded shape.
		fmt.Fprintf(c.w, "  layout:    gob object graph (no sections; convert with tracy convert -to v3)\n")
		blocks, insts := 0, 0
		for _, e := range db.Entries {
			fn := e.Function()
			blocks += fn.NumBlocks()
			insts += fn.NumInsts()
		}
		fmt.Fprintf(c.w, "  blocks:    %d\n  insts:     %d\n", blocks, insts)
		return tf.finish(c.w)
	}
	fmt.Fprintf(c.w, "  mapped:    %v\n", st.Mapped())
	if st.HasLSH() {
		p := st.LSHParams()
		fmt.Fprintf(c.w, "  lsh:       %d bands x %d rows (k=%d, seed %#x, threshold %.2f)\n",
			p.Bands, p.Rows, p.K(), p.Seed, p.Threshold())
	}
	fmt.Fprintf(c.w, "  sections:\n")
	fmt.Fprintf(c.w, "    %-6s %10s %12s %8s  %s\n", "name", "offset", "bytes", "crc32c", "records")
	for _, s := range st.Sections() {
		rec := ""
		if s.Records > 0 {
			rec = fmt.Sprintf("%d", s.Records)
		}
		fmt.Fprintf(c.w, "    %-6s %10d %12d %08x  %s\n", s.Name, s.Offset, s.Len, s.CRC, rec)
	}
	if *verify {
		if err := st.Verify(); err != nil {
			return fmt.Errorf("idxinfo: %w", err)
		}
		fmt.Fprintf(c.w, "  checksums: all sections OK\n")
	}
	return tf.finish(c.w)
}
