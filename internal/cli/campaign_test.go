package cli

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/corpus"
)

func TestMkcorpusCampaignWithIndex(t *testing.T) {
	dir := t.TempDir()
	idxPath := filepath.Join(dir, "scale.db")
	out, err := run(t, "mkcorpus", "-dir", dir, "-scale", "60", "-funcs-per-exe", "4",
		"-stmts", "5", "-opt-levels", "0,2", "-seed", "9", "-index", idxPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "campaign done:") || !strings.Contains(out, "TRACYIDX v3") {
		t.Errorf("campaign output: %s", out)
	}
	// The streamed index must be a loadable v3 file with sane contents.
	info, err := run(t, "idxinfo", "-verify", idxPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(info, "TRACYIDX v3") || !strings.Contains(info, "checksums: all sections OK") {
		t.Errorf("idxinfo over campaign index: %s", info)
	}
	// Manifest records the campaign parameters and the index format.
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m corpus.Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m.Campaign == nil || m.Campaign.Funcs != 60 || m.Campaign.Seed != 9 {
		t.Errorf("manifest campaign record = %+v", m.Campaign)
	}
	if m.Index == nil || m.Index.Format != 3 || m.Index.Functions == 0 {
		t.Errorf("manifest index record = %+v", m.Index)
	}
	if len(m.Exes) == 0 || m.Exes[1].Opt != 2 {
		t.Errorf("manifest exes lack opt levels: %+v", m.Exes[:min(2, len(m.Exes))])
	}
	// Default campaign mode with -index writes no .bin files.
	ents, _ := filepath.Glob(filepath.Join(dir, "*.bin"))
	if len(ents) != 0 {
		t.Errorf("campaign with -index wrote %d .bin files, want 0", len(ents))
	}
	// The index answers queries: search it with a fresh single-exe build.
	exe := buildExe(t, dir, "q.bin", srcA, 3)
	if _, err := run(t, "search", "-db", idxPath, "-exe", exe, "-top", "2"); err != nil {
		t.Fatalf("search over campaign index: %v", err)
	}
}

func TestMkcorpusCampaignBinsOnly(t *testing.T) {
	dir := t.TempDir()
	out, err := run(t, "mkcorpus", "-dir", dir, "-scale", "16", "-funcs-per-exe", "4",
		"-stmts", "4", "-opt-levels", "1", "-seed", "2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "campaign done:") {
		t.Errorf("campaign output: %s", out)
	}
	ents, _ := filepath.Glob(filepath.Join(dir, "*.bin"))
	if len(ents) == 0 {
		t.Error("campaign without -index wrote no .bin files")
	}
}

func TestMkcorpusClassicWithIndex(t *testing.T) {
	dir := t.TempDir()
	idxPath := filepath.Join(dir, "demo.db")
	out, err := run(t, "mkcorpus", "-dir", dir, "-contexts", "1", "-versions", "1",
		"-noise", "1", "-funcs", "2", "-index", idxPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "wrote index") {
		t.Errorf("mkcorpus -index output: %s", out)
	}
	var m corpus.Manifest
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m.Index == nil || m.Index.Format != 3 {
		t.Errorf("classic manifest index record = %+v", m.Index)
	}
	if m.Campaign != nil {
		t.Errorf("classic manifest has campaign record: %+v", m.Campaign)
	}
	if _, err := run(t, "stats", "-db", idxPath); err != nil {
		t.Fatalf("stats over classic -index output: %v", err)
	}
}

func TestMkcorpusBadOptLevels(t *testing.T) {
	if _, err := run(t, "mkcorpus", "-dir", t.TempDir(), "-scale", "8", "-opt-levels", "0,9"); err == nil {
		t.Error("mkcorpus accepted opt level 9")
	}
	if _, err := run(t, "mkcorpus", "-dir", t.TempDir(), "-scale", "8", "-opt-levels", "x"); err == nil {
		t.Error("mkcorpus accepted non-numeric opt level")
	}
}
