package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPerfectClassifier(t *testing.T) {
	samples := []Sample{
		{0.9, true}, {0.8, true}, {0.3, false}, {0.1, false},
	}
	if got := ROCAUC(samples); !approx(got, 1.0, 1e-12) {
		t.Errorf("perfect ROC AUC = %v", got)
	}
	if got := CROCAUC(samples); !approx(got, 1.0, 1e-9) {
		t.Errorf("perfect CROC AUC = %v", got)
	}
}

func TestWorstClassifier(t *testing.T) {
	samples := []Sample{
		{0.9, false}, {0.8, false}, {0.3, true}, {0.1, true},
	}
	if got := ROCAUC(samples); !approx(got, 0.0, 1e-12) {
		t.Errorf("inverted ROC AUC = %v", got)
	}
}

func TestRandomClassifierNearHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var samples []Sample
	for i := 0; i < 5000; i++ {
		samples = append(samples, Sample{rng.Float64(), rng.Intn(2) == 0})
	}
	if got := ROCAUC(samples); !approx(got, 0.5, 0.03) {
		t.Errorf("random ROC AUC = %v, want ~0.5", got)
	}
	// CROC of a random classifier at α=7 is ~0.14 (Swamidass et al.): the
	// area of the diagonal under the exponential transform is
	// (1 - 8e⁻⁷)/(7(1 - e⁻⁷)) ≈ 0.1418.
	if got := CROCAUC(samples); !approx(got, 0.1418, 0.02) {
		t.Errorf("random CROC AUC = %v, want ~0.1418", got)
	}
}

// TestCROCPunishesEarlyFalsePositives: two classifiers with the same ROC
// AUC, one making its false positives early (top-ranked), one late. CROC
// must score the early-FP classifier strictly lower.
func TestCROCEmphasis(t *testing.T) {
	// classifier A: FP ranked first, then all TPs, then TNs.
	var a []Sample
	a = append(a, Sample{1.0, false})
	for i := 0; i < 10; i++ {
		a = append(a, Sample{0.9, true})
	}
	for i := 0; i < 89; i++ {
		a = append(a, Sample{0.1, false})
	}
	// classifier B: all TPs first, one FP just after, then TNs.
	var b []Sample
	for i := 0; i < 10; i++ {
		b = append(b, Sample{1.0, true})
	}
	b = append(b, Sample{0.9, false})
	for i := 0; i < 89; i++ {
		b = append(b, Sample{0.1, false})
	}
	crocA, crocB := CROCAUC(a), CROCAUC(b)
	if crocA >= crocB {
		t.Errorf("CROC should punish early FP: A=%v B=%v", crocA, crocB)
	}
	rocA, rocB := ROCAUC(a), ROCAUC(b)
	// The ROC gap is small; the CROC gap must be larger.
	if (crocB - crocA) <= (rocB - rocA) {
		t.Errorf("CROC gap %v should exceed ROC gap %v", crocB-crocA, rocB-rocA)
	}
}

func TestROCEndpoints(t *testing.T) {
	samples := []Sample{{0.5, true}, {0.4, false}}
	pts := ROC(samples)
	if pts[0] != (Point{0, 0}) {
		t.Errorf("ROC must start at origin, got %v", pts[0])
	}
	last := pts[len(pts)-1]
	if last != (Point{1, 1}) {
		t.Errorf("ROC must end at (1,1), got %v", last)
	}
}

func TestROCTies(t *testing.T) {
	// All scores equal: the curve is the diagonal, AUC 0.5.
	var samples []Sample
	for i := 0; i < 10; i++ {
		samples = append(samples, Sample{0.5, i%2 == 0})
	}
	if got := ROCAUC(samples); !approx(got, 0.5, 1e-12) {
		t.Errorf("tied-scores AUC = %v, want 0.5", got)
	}
}

func TestConfusion(t *testing.T) {
	samples := []Sample{
		{0.9, true},  // TP at 0.5
		{0.6, false}, // FP
		{0.4, true},  // FN
		{0.1, false}, // TN
	}
	c := At(samples, 0.5)
	if c.TP != 1 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if !approx(c.Precision(), 0.5, 1e-12) || !approx(c.Recall(), 0.5, 1e-12) {
		t.Errorf("P=%v R=%v", c.Precision(), c.Recall())
	}
	if !approx(c.Accuracy(), 0.5, 1e-12) {
		t.Errorf("accuracy = %v", c.Accuracy())
	}
	if !approx(c.F1(), 0.5, 1e-12) {
		t.Errorf("F1 = %v", c.F1())
	}
}

func TestConfusionDegenerate(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.Accuracy() != 0 || c.F1() != 0 {
		t.Error("degenerate confusion should be all zeros")
	}
}

// TestQuickAUCBounds: AUC and CROC AUC are always within [0,1] and the
// ROC curve is monotonically nondecreasing in both axes.
func TestQuickAUCBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		samples := make([]Sample, n)
		hasPos, hasNeg := false, false
		for i := range samples {
			samples[i] = Sample{rng.Float64(), rng.Intn(2) == 0}
			if samples[i].Positive {
				hasPos = true
			} else {
				hasNeg = true
			}
		}
		if !hasPos || !hasNeg {
			return true // degenerate labels; skip
		}
		auc := ROCAUC(samples)
		croc := CROCAUC(samples)
		if auc < -1e-9 || auc > 1+1e-9 || croc < -1e-9 || croc > 1+1e-9 {
			t.Logf("AUC out of range: roc=%v croc=%v", auc, croc)
			return false
		}
		pts := ROC(samples)
		for i := 1; i < len(pts); i++ {
			if pts[i].FPR < pts[i-1].FPR-1e-12 || pts[i].TPR < pts[i-1].TPR-1e-12 {
				t.Logf("ROC not monotone at %d", i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCROCTransformProperties(t *testing.T) {
	if got := crocTransform(0, 7); !approx(got, 0, 1e-12) {
		t.Errorf("transform(0) = %v", got)
	}
	if got := crocTransform(1, 7); !approx(got, 1, 1e-12) {
		t.Errorf("transform(1) = %v", got)
	}
	// Early region is magnified: 10% FPR maps past 50%.
	if got := crocTransform(0.1, 7); got < 0.5 {
		t.Errorf("transform(0.1) = %v, want > 0.5", got)
	}
}

func TestPRCurveAndAP(t *testing.T) {
	perfect := []Sample{{0.9, true}, {0.8, true}, {0.2, false}, {0.1, false}}
	if got := AveragePrecision(perfect); !approx(got, 1.0, 1e-12) {
		t.Errorf("perfect AP = %v", got)
	}
	inverted := []Sample{{0.9, false}, {0.8, false}, {0.2, true}, {0.1, true}}
	if got := AveragePrecision(inverted); got >= 0.6 {
		t.Errorf("inverted AP = %v, want low", got)
	}
	// Mixed: TP at ranks 1 and 3 -> AP = (1/2)(1) + (1/2)(2/3) = 0.8333.
	mixed := []Sample{{0.9, true}, {0.8, false}, {0.7, true}, {0.1, false}}
	if got := AveragePrecision(mixed); !approx(got, 5.0/6.0, 1e-9) {
		t.Errorf("mixed AP = %v, want %v", got, 5.0/6.0)
	}
	// Degenerate: no positives.
	if got := PRCurve([]Sample{{0.5, false}}); got != nil {
		t.Errorf("no-positive PR curve should be nil")
	}
	// Recall is nondecreasing along the curve.
	pts := PRCurve(mixed)
	for i := 1; i < len(pts); i++ {
		if pts[i].Recall < pts[i-1].Recall {
			t.Error("recall decreased")
		}
	}
}
