// Package metrics implements the classifier evaluation used in the
// paper's Section 5.1: ROC curves with area-under-curve, and CROC
// (Swamidass et al., "A CROC stronger than ROC", Bioinformatics 2010) —
// an exponential magnification of the early-retrieval region that
// penalizes false positives more aggressively, appropriate when real
// matches are rare and verifying a match is expensive.
package metrics

import (
	"math"
	"sort"
)

// Sample is one scored example with its ground-truth label.
type Sample struct {
	Score    float64
	Positive bool
}

// Point is one ROC-space point.
type Point struct {
	FPR, TPR float64
}

// ROC computes the ROC curve of the samples: the (FPR, TPR) staircase
// obtained by sweeping the decision threshold from +inf down. Tied scores
// are grouped (producing diagonal segments). The curve always starts at
// (0,0) and ends at (1,1).
func ROC(samples []Sample) []Point {
	pos, neg := 0, 0
	for _, s := range samples {
		if s.Positive {
			pos++
		} else {
			neg++
		}
	}
	sorted := append([]Sample(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Score > sorted[j].Score })
	points := []Point{{0, 0}}
	tp, fp := 0, 0
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j].Score == sorted[i].Score {
			if sorted[j].Positive {
				tp++
			} else {
				fp++
			}
			j++
		}
		var fpr, tpr float64
		if neg > 0 {
			fpr = float64(fp) / float64(neg)
		}
		if pos > 0 {
			tpr = float64(tp) / float64(pos)
		}
		points = append(points, Point{fpr, tpr})
		i = j
	}
	last := points[len(points)-1]
	if last.FPR != 1 || last.TPR != 1 {
		points = append(points, Point{1, 1})
	}
	return points
}

// AUC computes the area under a curve given as ordered points, by
// trapezoidal integration.
func AUC(points []Point) float64 {
	area := 0.0
	for i := 1; i < len(points); i++ {
		dx := points[i].FPR - points[i-1].FPR
		area += dx * (points[i].TPR + points[i-1].TPR) / 2
	}
	return area
}

// ROCAUC computes the area under the ROC curve of the samples.
func ROCAUC(samples []Sample) float64 {
	return AUC(ROC(samples))
}

// DefaultCROCAlpha is the magnification constant recommended by Swamidass
// et al. (α=7 concentrates roughly half the transformed axis on the first
// ~10% of false positive rates).
const DefaultCROCAlpha = 7.0

// crocTransform maps an FPR through the exponential magnifier
// x' = (1 - e^(-αx)) / (1 - e^(-α)).
func crocTransform(x, alpha float64) float64 {
	return (1 - math.Exp(-alpha*x)) / (1 - math.Exp(-alpha))
}

// CROC transforms a ROC curve into CROC space with magnification alpha.
// Segments are subdivided so the trapezoidal integral tracks the smooth
// transform closely.
func CROC(points []Point, alpha float64) []Point {
	if alpha <= 0 {
		alpha = DefaultCROCAlpha
	}
	var out []Point
	for i, p := range points {
		if i > 0 {
			prev := points[i-1]
			// Subdivide long horizontal runs for integration accuracy.
			const steps = 8
			if p.FPR-prev.FPR > 1e-9 {
				for s := 1; s < steps; s++ {
					f := prev.FPR + (p.FPR-prev.FPR)*float64(s)/steps
					y := prev.TPR + (p.TPR-prev.TPR)*float64(s)/steps
					out = append(out, Point{crocTransform(f, alpha), y})
				}
			}
		}
		out = append(out, Point{crocTransform(p.FPR, alpha), p.TPR})
	}
	return out
}

// CROCAUC computes the area under the CROC curve of the samples, with the
// default magnification.
func CROCAUC(samples []Sample) float64 {
	return AUC(CROC(ROC(samples), DefaultCROCAlpha))
}

// Confusion holds binary-classification counts at a fixed threshold.
type Confusion struct {
	TP, FP, TN, FN int
}

// At classifies samples with the given threshold (score > threshold is
// positive) and tallies the confusion matrix.
func At(samples []Sample, threshold float64) Confusion {
	var c Confusion
	for _, s := range samples {
		pred := s.Score > threshold
		switch {
		case pred && s.Positive:
			c.TP++
		case pred && !s.Positive:
			c.FP++
		case !pred && !s.Positive:
			c.TN++
		default:
			c.FN++
		}
	}
	return c
}

// Precision returns TP / (TP + FP), or 0 when nothing was predicted
// positive.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP / (TP + FN), or 0 when there are no positives.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// Accuracy returns (TP + TN) / total.
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.FP + c.TN + c.FN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// PRPoint is one precision/recall point.
type PRPoint struct {
	Recall    float64
	Precision float64
}

// PRCurve computes the precision-recall curve by sweeping the decision
// threshold from the highest score down, grouping ties.
func PRCurve(samples []Sample) []PRPoint {
	pos := 0
	for _, s := range samples {
		if s.Positive {
			pos++
		}
	}
	if pos == 0 {
		return nil
	}
	sorted := append([]Sample(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Score > sorted[j].Score })
	var points []PRPoint
	tp, fp := 0, 0
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j].Score == sorted[i].Score {
			if sorted[j].Positive {
				tp++
			} else {
				fp++
			}
			j++
		}
		points = append(points, PRPoint{
			Recall:    float64(tp) / float64(pos),
			Precision: float64(tp) / float64(tp+fp),
		})
		i = j
	}
	return points
}

// AveragePrecision computes AP: the precision at each positive-gaining
// threshold weighted by the recall gained there (area under the PR curve
// in the step sense).
func AveragePrecision(samples []Sample) float64 {
	points := PRCurve(samples)
	ap := 0.0
	prevRecall := 0.0
	for _, p := range points {
		ap += (p.Recall - prevRecall) * p.Precision
		prevRecall = p.Recall
	}
	return ap
}
