package metrics

import (
	"math"
	"testing"
)

// The fixture below is small enough to evaluate by hand. Six samples,
// three positive, three negative, with one tie:
//
//	score  0.9  0.8  0.8  0.5  0.4  0.1
//	label   +    −    +    −    +    −
//
// Sweeping the threshold from the top and grouping the 0.8 tie:
//
//	after 0.9        tp=1 fp=0  → (FPR 0,   TPR 1/3)
//	after 0.8 group  tp=2 fp=1  → (1/3, 2/3)   (diagonal: tie mixes + and −)
//	after 0.5        tp=2 fp=2  → (2/3, 2/3)
//	after 0.4        tp=3 fp=2  → (2/3, 1)
//	after 0.1        tp=3 fp=3  → (1,   1)
var fixture = []Sample{
	{0.9, true}, {0.8, false}, {0.8, true}, {0.5, false}, {0.4, true}, {0.1, false},
}

func near(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestROCFixtureByHand(t *testing.T) {
	want := []Point{
		{0, 0}, {0, 1. / 3}, {1. / 3, 2. / 3}, {2. / 3, 2. / 3}, {2. / 3, 1}, {1, 1},
	}
	got := ROC(fixture)
	if len(got) != len(want) {
		t.Fatalf("ROC has %d points, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if !near(got[i].FPR, want[i].FPR) || !near(got[i].TPR, want[i].TPR) {
			t.Errorf("point %d = %v, want %v", i, got[i], want[i])
		}
	}
	// Trapezoids: (0→1/3)·(1/3+2/3)/2 + (1/3→2/3)·2/3 + (2/3→1)·1
	//           = 1/6 + 2/9 + 1/3 = 13/18.
	if auc := ROCAUC(fixture); !near(auc, 13.0/18) {
		t.Errorf("ROCAUC = %v, want 13/18 = %v", auc, 13.0/18)
	}
}

func TestConfusionFixtureByHand(t *testing.T) {
	// threshold 0.5, strict >: predicted positive = {0.9+, 0.8−, 0.8+}.
	c := At(fixture, 0.5)
	if c != (Confusion{TP: 2, FP: 1, TN: 2, FN: 1}) {
		t.Fatalf("At(0.5) = %+v, want TP2 FP1 TN2 FN1", c)
	}
	if !near(c.Precision(), 2.0/3) {
		t.Errorf("precision = %v, want 2/3", c.Precision())
	}
	if !near(c.Recall(), 2.0/3) {
		t.Errorf("recall = %v, want 2/3", c.Recall())
	}
	if !near(c.Accuracy(), 2.0/3) {
		t.Errorf("accuracy = %v, want 4/6", c.Accuracy())
	}
	// Precision == recall, so F1 equals both.
	if !near(c.F1(), 2.0/3) {
		t.Errorf("F1 = %v, want 2/3", c.F1())
	}
	// Threshold above every score: nothing predicted positive.
	if c := At(fixture, 1.0); c != (Confusion{TN: 3, FN: 3}) {
		t.Errorf("At(1.0) = %+v, want TN3 FN3", c)
	}
	// Threshold below every score: everything predicted positive.
	if c := At(fixture, 0.0); c != (Confusion{TP: 3, FP: 3}) {
		t.Errorf("At(0.0) = %+v, want TP3 FP3", c)
	}
}

func TestPRFixtureByHand(t *testing.T) {
	want := []PRPoint{
		{1. / 3, 1},      // after 0.9: tp=1 of 1 retrieved
		{2. / 3, 2. / 3}, // after 0.8 tie: tp=2 of 3
		{2. / 3, 1. / 2}, // after 0.5: tp=2 of 4
		{1, 3. / 5},      // after 0.4: tp=3 of 5
		{1, 1. / 2},      // after 0.1: tp=3 of 6
	}
	got := PRCurve(fixture)
	if len(got) != len(want) {
		t.Fatalf("PR has %d points, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if !near(got[i].Recall, want[i].Recall) || !near(got[i].Precision, want[i].Precision) {
			t.Errorf("PR point %d = %v, want %v", i, got[i], want[i])
		}
	}
	// AP = Σ Δrecall·precision = (1/3)·1 + (1/3)·(2/3) + 0 + (1/3)·(3/5) + 0
	//    = 1/3 + 2/9 + 1/5 = 34/45.
	if ap := AveragePrecision(fixture); !near(ap, 34.0/45) {
		t.Errorf("AP = %v, want 34/45 = %v", ap, 34.0/45)
	}
}

func TestCROCFixtureByHand(t *testing.T) {
	// The transform at the fixture's two interior FPR knots, α=7:
	// x'(1/3) = (1−e^(−7/3))/(1−e^(−7)) ≈ 0.903854
	// x'(2/3) = (1−e^(−14/3))/(1−e^(−7)) ≈ 0.991505
	x13 := (1 - math.Exp(-7.0/3)) / (1 - math.Exp(-7))
	x23 := (1 - math.Exp(-14.0/3)) / (1 - math.Exp(-7))
	if math.Abs(x13-0.903854) > 1e-4 || math.Abs(x23-0.991505) > 1e-4 {
		t.Fatalf("hand-computed transform knots drifted: %v, %v", x13, x23)
	}
	croc := CROC(ROC(fixture), DefaultCROCAlpha)
	// The transformed curve must still be a monotone curve from (0,0) to
	// (1,1) passing through the transformed knots with unchanged TPRs.
	if first, last := croc[0], croc[len(croc)-1]; first != (Point{0, 0}) || !near(last.FPR, 1) || !near(last.TPR, 1) {
		t.Errorf("CROC endpoints %v .. %v", first, last)
	}
	seen13, seen23 := false, false
	for i, p := range croc {
		if i > 0 && p.FPR < croc[i-1].FPR-1e-12 {
			t.Errorf("CROC FPR not monotone at %d: %v after %v", i, p, croc[i-1])
		}
		if near(p.FPR, x13) && near(p.TPR, 2.0/3) {
			seen13 = true
		}
		if near(p.FPR, x23) && near(p.TPR, 2.0/3) || near(p.FPR, x23) && near(p.TPR, 1) {
			seen23 = true
		}
	}
	if !seen13 || !seen23 {
		t.Errorf("transformed knots missing from CROC curve (%v): %v", []float64{x13, x23}, croc)
	}
	// The fixture's early retrieval is strong (first third of positives at
	// FPR 0), and the magnifier stretches the low-FPR region where the
	// curve is already at TPR ≥ 1/3 — the CROC AUC must reward that
	// without leaving [0, 1].
	cauc := CROCAUC(fixture)
	if cauc < 0 || cauc > 1 {
		t.Fatalf("CROCAUC = %v out of range", cauc)
	}
	// Hand-bound: the curve is ≥ 2/3 for all transformed FPR ≥ x'(1/3)
	// ≈ 0.9039, and ≥ 1/3 before it, so AUC ≥ 1/3·0.9039 + 2/3·0.0961.
	if lower := 1.0/3*x13 + 2.0/3*(1-x13); cauc < lower {
		t.Errorf("CROCAUC = %v below hand-computed floor %v", cauc, lower)
	}
}
