// Package graphlet implements the graphlet baseline the paper compares
// against (Section 1 [13], Section 7 [14]): small connected subgraphs of
// the CFG, canonically labeled up to isomorphism, collected into a
// feature set per function; similarity is the Jaccard index of the
// feature sets. The paper's configuration is k=5.
//
// The weakness the paper demonstrates is inherent: the number of distinct
// real-world graphlet layouts is small, so unrelated functions share most
// features.
package graphlet

import (
	"fmt"
	"sort"

	"repro/internal/prep"
)

// Options configures extraction.
type Options struct {
	K int // graphlet size in nodes
	// MaxGraphlets caps enumeration per function (0 = 50000), bounding
	// the combinatorial blow-up on dense CFGs.
	MaxGraphlets int
}

// DefaultOptions returns the paper's configuration (k=5).
func DefaultOptions() Options { return Options{K: 5} }

// Fingerprint is a function's multiset of canonical graphlet codes,
// stored as a set with counts.
type Fingerprint struct {
	Name  string
	Codes map[uint64]int
}

// Extract enumerates connected induced k-subgraphs of the function's CFG
// (treating edges as undirected for connectivity, directed for labeling)
// and returns the canonical-code multiset.
func Extract(fn *prep.Function, opts Options) *Fingerprint {
	if opts.K <= 0 {
		opts = DefaultOptions()
	}
	if opts.MaxGraphlets <= 0 {
		opts.MaxGraphlets = 50000
	}
	n := len(fn.Graph.Blocks)
	adj := make([][]bool, n)
	und := make([]map[int]bool, n) // undirected neighbourhood
	for i := range adj {
		adj[i] = make([]bool, n)
		und[i] = make(map[int]bool)
	}
	for i, b := range fn.Graph.Blocks {
		for _, s := range b.Succs {
			adj[i][s] = true
			und[i][s] = true
			und[s][i] = true
		}
	}
	fp := &Fingerprint{Name: fn.Name, Codes: make(map[uint64]int)}
	count := 0
	// ESU-style enumeration: grow connected vertex sets only with
	// neighbours greater than the root, avoiding duplicates.
	var extend func(sub []int, ext map[int]bool, root int)
	extend = func(sub []int, ext map[int]bool, root int) {
		if count >= opts.MaxGraphlets {
			return
		}
		if len(sub) == opts.K {
			fp.Codes[canonical(sub, adj)]++
			count++
			return
		}
		// Iterate a snapshot in sorted order for determinism.
		cands := make([]int, 0, len(ext))
		for v := range ext {
			cands = append(cands, v)
		}
		sort.Ints(cands)
		for _, v := range cands {
			delete(ext, v)
			next := make(map[int]bool, len(ext)+4)
			for u := range ext {
				next[u] = true
			}
			for u := range und[v] {
				if u > root && !contains(sub, u) {
					next[u] = true
				}
			}
			extend(append(sub, v), next, root)
		}
	}
	for root := 0; root < n; root++ {
		ext := make(map[int]bool)
		for u := range und[root] {
			if u > root {
				ext[u] = true
			}
		}
		extend([]int{root}, ext, root)
	}
	return fp
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// canonical computes a canonical code for the induced directed subgraph
// over sub: the minimum adjacency bitmatrix over all vertex permutations.
// For k <= 5 this brute force (k! <= 120 permutations) is exact.
func canonical(sub []int, adj [][]bool) uint64 {
	k := len(sub)
	perm := make([]int, k)
	for i := range perm {
		perm[i] = i
	}
	best := ^uint64(0)
	var rec func(i int)
	rec = func(i int) {
		if i == k {
			var code uint64
			for a := 0; a < k; a++ {
				for b := 0; b < k; b++ {
					code <<= 1
					if adj[sub[perm[a]]][sub[perm[b]]] {
						code |= 1
					}
				}
			}
			if code < best {
				best = code
			}
			return
		}
		for j := i; j < k; j++ {
			perm[i], perm[j] = perm[j], perm[i]
			rec(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	rec(0)
	// Fold in k so different sizes never collide.
	return best<<4 | uint64(k)
}

// Similarity returns the Jaccard index over the code multisets:
// sum(min(count)) / sum(max(count)).
func Similarity(ref, tgt *Fingerprint) float64 {
	if len(ref.Codes) == 0 && len(tgt.Codes) == 0 {
		return 0
	}
	inter, union := 0, 0
	for c, rc := range ref.Codes {
		tc := tgt.Codes[c]
		if tc < rc {
			inter += tc
			union += rc
		} else {
			inter += rc
			union += tc
		}
	}
	for c, tc := range tgt.Codes {
		if _, ok := ref.Codes[c]; !ok {
			union += tc
		}
	}
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// NumDistinct returns the number of distinct canonical layouts observed —
// the quantity whose smallness the paper blames for graphlet false
// positives.
func (fp *Fingerprint) NumDistinct() int { return len(fp.Codes) }

// String summarizes the fingerprint.
func (fp *Fingerprint) String() string {
	total := 0
	for _, c := range fp.Codes {
		total += c
	}
	return fmt.Sprintf("%s: %d graphlets, %d distinct", fp.Name, total, len(fp.Codes))
}
