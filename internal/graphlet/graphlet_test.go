package graphlet

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/prep"
)

func lift(t *testing.T, name, src string) *prep.Function {
	t.Helper()
	insts, labels, err := asm.ParseListing(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.BuildListing(name, insts, labels)
	if err != nil {
		t.Fatal(err)
	}
	return &prep.Function{Name: name, Graph: g}
}

// chainK builds a CFG that is a straight chain of n blocks.
func chainK(t *testing.T, name string, n int) *prep.Function {
	var sb strings.Builder
	for i := 0; i < n-1; i++ {
		sb.WriteString("cmp eax, 1\n")
		// A conditional jump to the immediately following block keeps the
		// chain while creating explicit block boundaries.
		sb.WriteString("jz next" + string(rune('a'+i)) + "\n")
		sb.WriteString("next" + string(rune('a'+i)) + ":\n")
	}
	sb.WriteString("retn\n")
	return lift(t, name, sb.String())
}

const diamond = `
	cmp eax, 1
	jz bthen
	mov ebx, 2
	jmp merge
bthen:
	mov ecx, 5
merge:
	cmp ebx, 2
	jz out_
	inc eax
out_:
	retn
`

func TestSelfSimilarity(t *testing.T) {
	fp := Extract(lift(t, "d", diamond), Options{K: 3})
	if len(fp.Codes) == 0 {
		t.Fatal("no graphlets extracted")
	}
	if got := Similarity(fp, fp); got != 1.0 {
		t.Errorf("self similarity = %v", got)
	}
}

func TestChainGraphlets(t *testing.T) {
	// A chain of 6 blocks has exactly 6-k+1 connected k-subgraphs, all of
	// the same canonical path shape.
	fn := chainK(t, "chain", 6)
	if len(fn.Graph.Blocks) != 6 {
		t.Fatalf("chain has %d blocks", len(fn.Graph.Blocks))
	}
	fp := Extract(fn, Options{K: 3})
	total := 0
	for _, c := range fp.Codes {
		total += c
	}
	if total != 4 {
		t.Errorf("chain-6 has %d 3-graphlets, want 4", total)
	}
	if fp.NumDistinct() != 1 {
		t.Errorf("chain graphlets should all share one canonical form, got %d", fp.NumDistinct())
	}
}

func TestIsomorphicChainsIdentical(t *testing.T) {
	a := Extract(chainK(t, "a", 7), Options{K: 4})
	b := Extract(chainK(t, "b", 7), Options{K: 4})
	if got := Similarity(a, b); got != 1.0 {
		t.Errorf("isomorphic CFGs similarity = %v, want 1.0", got)
	}
}

// TestFalsePositiveTendency reproduces the paper's critique: two
// *different* programs with garden-variety control flow share most
// graphlet features.
func TestFalsePositiveTendency(t *testing.T) {
	d := Extract(lift(t, "d", diamond), Options{K: 3})
	c := Extract(chainK(t, "c", 8), Options{K: 3})
	if got := Similarity(d, c); got == 0 {
		t.Skip("no overlap on this pair")
	}
}

func TestDirectionalityMatters(t *testing.T) {
	// A -> B -> C chain vs a fork A -> B, A -> C have different canonical
	// codes.
	chain := chainK(t, "chain", 3)
	fork := lift(t, "fork", `
		cmp eax, 1
		jz right
		mov ebx, 1
		retn
	right:
		retn
	`)
	cf := Extract(chain, Options{K: 3})
	ff := Extract(fork, Options{K: 3})
	if got := Similarity(cf, ff); got == 1.0 {
		t.Errorf("chain and fork should differ")
	}
}

func TestCanonicalInvariance(t *testing.T) {
	// The canonical code must not depend on vertex numbering: permute a
	// small graph's adjacency and compare.
	adj := func(pairs [][2]int, n int) [][]bool {
		m := make([][]bool, n)
		for i := range m {
			m[i] = make([]bool, n)
		}
		for _, p := range pairs {
			m[p[0]][p[1]] = true
		}
		return m
	}
	// Path 0->1->2 under two labelings.
	a := canonical([]int{0, 1, 2}, adj([][2]int{{0, 1}, {1, 2}}, 3))
	b := canonical([]int{0, 1, 2}, adj([][2]int{{2, 0}, {0, 1}}, 3))
	if a != b {
		t.Errorf("canonical codes differ for isomorphic graphs: %x vs %x", a, b)
	}
	// Fork 0->1, 0->2 differs from the path.
	c := canonical([]int{0, 1, 2}, adj([][2]int{{0, 1}, {0, 2}}, 3))
	if a == c {
		t.Errorf("path and fork should have different codes")
	}
}

func TestSizeFoldedIntoCode(t *testing.T) {
	adj := func(n int) [][]bool {
		m := make([][]bool, n)
		for i := range m {
			m[i] = make([]bool, n)
		}
		return m
	}
	// Empty graphs of different sizes must not collide.
	if canonical([]int{0, 1}, adj(2)) == canonical([]int{0, 1, 2}, adj(3)) {
		t.Error("codes collide across sizes")
	}
}

func TestMaxGraphletsCap(t *testing.T) {
	fn := chainK(t, "chain", 12)
	fp := Extract(fn, Options{K: 3, MaxGraphlets: 2})
	total := 0
	for _, c := range fp.Codes {
		total += c
	}
	if total > 2 {
		t.Errorf("cap not applied: %d", total)
	}
}

func TestTooSmallFunction(t *testing.T) {
	fn := chainK(t, "small", 2)
	fp := Extract(fn, Options{K: 5})
	if len(fp.Codes) != 0 {
		t.Errorf("2-block function should have no 5-graphlets")
	}
	if got := Similarity(fp, fp); got != 0 {
		t.Errorf("empty similarity = %v", got)
	}
	if fp.String() == "" {
		t.Error("String() empty")
	}
}
