package bin

import (
	"fmt"
	"sort"

	"repro/internal/asm"
	"repro/internal/x86"
)

// Func is one function to be linked into an image: a body of instructions
// plus the label map produced alongside it (label name -> instruction
// index).
type Func struct {
	Name   string
	Insts  []asm.Inst
	Labels map[string]int
}

// Datum is one named blob placed in .rodata (string literals, globals).
type Datum struct {
	Name string
	Data []byte
}

// TableReloc patches one 4-byte entry of a datum with the absolute
// address of a label inside a function — the mechanism behind switch jump
// tables.
type TableReloc struct {
	Datum string // name of the datum holding the table
	Entry int    // 4-byte entry index within the datum
	Func  string // function containing the label
	Label string
}

// Program is the linker input.
type Program struct {
	Funcs       []Func
	Data        []Datum  // read-only data (.rodata): strings, jump tables
	Vars        []Datum  // writable initialized globals (.data)
	Imports     []string // external function names reachable through the PLT
	TableRelocs []TableReloc
	// Align16 pads function starts to 16 bytes (off under -Os).
	Align16 bool
}

const pltStubSize = 6 // FF 25 <abs32>: jmp [got entry]

// Link assembles every function, lays out .text/.plt/.got/.rodata, resolves
// all fixups and returns a complete ELF32 image.
func Link(p *Program) ([]byte, error) {
	type assembled struct {
		code      []byte
		fixups    []x86.Fixup
		labelOffs map[string]int
		addr      uint32
	}
	funcs := make([]assembled, len(p.Funcs))
	funcAddr := make(map[string]uint32)
	funcIdx := make(map[string]int)

	// Layout .text.
	textAddr := Base + 0x60
	cur := textAddr
	for i, f := range p.Funcs {
		code, fixups, labelOffs, err := x86.AssembleFuncEx(f.Insts, f.Labels)
		if err != nil {
			return nil, fmt.Errorf("bin: function %s: %w", f.Name, err)
		}
		if p.Align16 {
			cur = (cur + 15) &^ 15
		}
		if _, dup := funcAddr[f.Name]; dup {
			return nil, fmt.Errorf("bin: duplicate function %s", f.Name)
		}
		funcs[i] = assembled{code: code, fixups: fixups, labelOffs: labelOffs, addr: cur}
		funcAddr[f.Name] = cur
		funcIdx[f.Name] = i
		cur += uint32(len(code))
	}
	text := make([]byte, cur-textAddr)
	for i, f := range funcs {
		copy(text[f.addr-textAddr:], funcs[i].code)
	}

	// Layout .plt and .got.
	pltAddr := (cur + 15) &^ 15
	imports := append([]string(nil), p.Imports...)
	sort.Strings(imports)
	gotAddr := pltAddr + uint32(len(imports)*pltStubSize)
	gotAddr = (gotAddr + 3) &^ 3
	plt := make([]byte, len(imports)*pltStubSize)
	importAddr := make(map[string]uint32, len(imports))
	for i := range imports {
		stub := pltAddr + uint32(i*pltStubSize)
		importAddr[imports[i]] = stub
		got := gotAddr + uint32(i*4)
		plt[i*pltStubSize] = 0xFF
		plt[i*pltStubSize+1] = 0x25
		le.PutUint32(plt[i*pltStubSize+2:], got)
	}
	got := make([]byte, len(imports)*4)

	// Layout .rodata.
	roAddr := (gotAddr + uint32(len(got)) + 15) &^ 15
	dataAddr := make(map[string]uint32, len(p.Data))
	var rodata []byte
	for _, d := range p.Data {
		if _, dup := dataAddr[d.Name]; dup {
			return nil, fmt.Errorf("bin: duplicate datum %s", d.Name)
		}
		dataAddr[d.Name] = roAddr + uint32(len(rodata))
		rodata = append(rodata, d.Data...)
		for len(rodata)%4 != 0 {
			rodata = append(rodata, 0)
		}
	}

	// Layout .data (writable globals) after .rodata.
	dataSecAddr := (roAddr + uint32(len(rodata)) + 15) &^ 15
	var dataSec []byte
	for _, d := range p.Vars {
		if _, dup := dataAddr[d.Name]; dup {
			return nil, fmt.Errorf("bin: duplicate datum %s", d.Name)
		}
		dataAddr[d.Name] = dataSecAddr + uint32(len(dataSec))
		dataSec = append(dataSec, d.Data...)
		for len(dataSec)%4 != 0 {
			dataSec = append(dataSec, 0)
		}
	}

	// Apply jump-table relocations into .rodata.
	for _, tr := range p.TableRelocs {
		base, ok := dataAddr[tr.Datum]
		if !ok {
			return nil, fmt.Errorf("bin: table reloc references unknown datum %q", tr.Datum)
		}
		fi, ok := funcIdx[tr.Func]
		if !ok {
			return nil, fmt.Errorf("bin: table reloc references unknown function %q", tr.Func)
		}
		off, ok := funcs[fi].labelOffs[tr.Label]
		if !ok {
			return nil, fmt.Errorf("bin: table reloc references unknown label %q in %s", tr.Label, tr.Func)
		}
		pos := base - roAddr + uint32(4*tr.Entry)
		if pos+4 > uint32(len(rodata)) {
			return nil, fmt.Errorf("bin: table reloc entry %d out of range for %q", tr.Entry, tr.Datum)
		}
		le.PutUint32(rodata[pos:], funcs[fi].addr+uint32(off))
	}

	// Resolve fixups.
	resolve := func(fx x86.Fixup) (uint32, error) {
		switch fx.Class {
		case asm.SymFunc:
			if a, ok := funcAddr[fx.Sym]; ok {
				return a, nil
			}
			if a, ok := importAddr[fx.Sym]; ok {
				return a, nil
			}
			return 0, fmt.Errorf("bin: undefined function %q", fx.Sym)
		case asm.SymData:
			if a, ok := dataAddr[fx.Sym]; ok {
				return a, nil
			}
			return 0, fmt.Errorf("bin: undefined datum %q", fx.Sym)
		default:
			return 0, fmt.Errorf("bin: unresolvable symbol %q (class %v)", fx.Sym, fx.Class)
		}
	}
	for i := range funcs {
		f := &funcs[i]
		body := text[f.addr-textAddr : f.addr-textAddr+uint32(len(f.code))]
		for _, fx := range f.fixups {
			addr, err := resolve(fx)
			if err != nil {
				return nil, fmt.Errorf("bin: in %s: %w", p.Funcs[i].Name, err)
			}
			x86.ApplyFixup(body, fx, addr, f.addr)
		}
	}

	// Symbol tables. .dynsym holds import stubs (survives stripping);
	// .symtab holds local function and data symbols.
	dynstr := newStrtab()
	dynsym := make([]byte, stSize) // null entry
	for _, name := range imports {
		var e [stSize]byte
		le.PutUint32(e[0:], dynstr.add(name))
		le.PutUint32(e[4:], importAddr[name])
		le.PutUint32(e[8:], pltStubSize)
		e[12] = symInfo(stbGlobal, sttFunc)
		e[14] = 2 // .plt section index (see emit order below)
		dynsym = append(dynsym, e[:]...)
	}
	strs := newStrtab()
	symtab := make([]byte, stSize)
	for i, f := range p.Funcs {
		var e [stSize]byte
		le.PutUint32(e[0:], strs.add(f.Name))
		le.PutUint32(e[4:], funcs[i].addr)
		le.PutUint32(e[8:], uint32(len(funcs[i].code)))
		e[12] = symInfo(stbLocal, sttFunc)
		e[14] = 1 // .text
		symtab = append(symtab, e[:]...)
	}
	for _, d := range p.Data {
		var e [stSize]byte
		le.PutUint32(e[0:], strs.add(d.Name))
		le.PutUint32(e[4:], dataAddr[d.Name])
		le.PutUint32(e[8:], uint32(len(d.Data)))
		e[12] = symInfo(stbLocal, sttObject)
		e[14] = 4 // .rodata
		symtab = append(symtab, e[:]...)
	}
	for _, d := range p.Vars {
		var e [stSize]byte
		le.PutUint32(e[0:], strs.add(d.Name))
		le.PutUint32(e[4:], dataAddr[d.Name])
		le.PutUint32(e[8:], uint32(len(d.Data)))
		e[12] = symInfo(stbLocal, sttObject)
		e[14] = 5 // .data
		symtab = append(symtab, e[:]...)
	}

	sections := []Section{
		{Name: ".text", Type: shtProgbits, Flags: shfAlloc | shfExecinstr, Addr: textAddr, Data: text, Align: 16},
		{Name: ".plt", Type: shtProgbits, Flags: shfAlloc | shfExecinstr, Addr: pltAddr, Data: plt, Align: 16},
		{Name: ".got", Type: shtProgbits, Flags: shfAlloc | shfWrite, Addr: gotAddr, Data: got, Align: 4},
		{Name: ".rodata", Type: shtProgbits, Flags: shfAlloc, Addr: roAddr, Data: rodata, Align: 16},
		{Name: ".data", Type: shtProgbits, Flags: shfAlloc | shfWrite, Addr: dataSecAddr, Data: dataSec, Align: 16},
		{Name: ".dynsym", Type: shtDynsym, Data: dynsym, Link: 7, Align: 4},
		{Name: ".dynstr", Type: shtStrtab, Data: dynstr.buf, Align: 1},
		{Name: ".symtab", Type: shtSymtab, Data: symtab, Link: 9, Align: 4},
		{Name: ".strtab", Type: shtStrtab, Data: strs.buf, Align: 1},
	}
	return writeELF(sections, textAddr)
}

// writeELF serializes sections (which must not include the null section or
// .shstrtab; both are added here) into an ELF32 image.
func writeELF(sections []Section, entry uint32) ([]byte, error) {
	shstr := newStrtab()
	shstr.add(".shstrtab")
	for _, s := range sections {
		shstr.add(s.Name)
	}
	all := make([]Section, 0, len(sections)+2)
	all = append(all, Section{}) // null section
	all = append(all, sections...)
	all = append(all, Section{Name: ".shstrtab", Type: shtStrtab, Data: shstr.buf, Align: 1})

	// File layout: header, section contents, section header table.
	offs := make([]uint32, len(all))
	off := uint32(ehSize)
	for i := 1; i < len(all); i++ {
		align := all[i].Align
		if align == 0 {
			align = 1
		}
		off = (off + align - 1) &^ (align - 1)
		offs[i] = off
		off += uint32(len(all[i].Data))
	}
	shoff := (off + 3) &^ 3

	buf := make([]byte, shoff+uint32(len(all))*shSize)
	// ELF header.
	buf[0], buf[1], buf[2], buf[3] = elfMagic0, 'E', 'L', 'F'
	buf[4] = elfClass32
	buf[5] = elfData2LSB
	buf[6] = evCurrent
	le.PutUint16(buf[16:], etExec)
	le.PutUint16(buf[18:], emI386)
	le.PutUint32(buf[20:], evCurrent)
	le.PutUint32(buf[24:], entry)
	le.PutUint32(buf[32:], shoff)
	le.PutUint16(buf[40:], ehSize)
	le.PutUint16(buf[46:], shSize)
	le.PutUint16(buf[48:], uint16(len(all)))
	le.PutUint16(buf[50:], uint16(len(all)-1)) // shstrndx

	for i := 1; i < len(all); i++ {
		copy(buf[offs[i]:], all[i].Data)
	}
	for i, s := range all {
		sh := buf[shoff+uint32(i)*shSize:]
		le.PutUint32(sh[0:], shstr.off[s.Name])
		le.PutUint32(sh[4:], s.Type)
		le.PutUint32(sh[8:], s.Flags)
		le.PutUint32(sh[12:], s.Addr)
		if i > 0 {
			le.PutUint32(sh[16:], offs[i])
		}
		le.PutUint32(sh[20:], uint32(len(s.Data)))
		le.PutUint32(sh[24:], s.Link)
		align := s.Align
		if align == 0 {
			align = 1
		}
		le.PutUint32(sh[32:], align)
		if s.Type == shtSymtab || s.Type == shtDynsym {
			le.PutUint32(sh[36:], stSize)
		}
	}
	return buf, nil
}
