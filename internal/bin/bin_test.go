package bin

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/x86"
)

// testProgram builds a two-function program with an import and a string.
func testProgram(t *testing.T) *Program {
	t.Helper()
	mainInsts, mainLabels, err := asm.ParseListing(`
		push ebp
		mov ebp, esp
		push offset aHello
		call _puts
		call helper
		mov esp, ebp
		pop ebp
		retn
	`)
	if err != nil {
		t.Fatal(err)
	}
	helperInsts, helperLabels, err := asm.ParseListing(`
		push ebp
		mov ebp, esp
		mov eax, 2Ah
		cmp eax, 0
		jz done
		inc eax
	done:
		pop ebp
		retn
	`)
	if err != nil {
		t.Fatal(err)
	}
	return &Program{
		Funcs: []Func{
			{Name: "main", Insts: mainInsts, Labels: mainLabels},
			{Name: "helper", Insts: helperInsts, Labels: helperLabels},
		},
		Data:    []Datum{{Name: "aHello", Data: append([]byte("Hello"), 0)}},
		Imports: []string{"_puts"},
		Align16: true,
	}
}

func TestLinkAndRead(t *testing.T) {
	img, err := Link(testProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	f, err := Read(img)
	if err != nil {
		t.Fatal(err)
	}
	if f.Stripped() {
		t.Error("freshly linked image should not be stripped")
	}
	for _, name := range []string{".text", ".plt", ".got", ".rodata", ".dynsym", ".dynstr", ".symtab", ".strtab"} {
		if f.Section(name) == nil {
			t.Errorf("missing section %s", name)
		}
	}
	funcs, err := f.Functions()
	if err != nil {
		t.Fatal(err)
	}
	if len(funcs) != 2 {
		t.Fatalf("got %d functions, want 2", len(funcs))
	}
	byName := map[string]FuncImage{}
	for _, fn := range funcs {
		byName[fn.Name] = fn
	}
	if _, ok := byName["main"]; !ok {
		t.Fatal("main not found")
	}
	if _, ok := byName["helper"]; !ok {
		t.Fatal("helper not found")
	}
	if len(byName["main"].Code) == 0 || len(byName["helper"].Code) == 0 {
		t.Error("empty function bodies")
	}
	// Import resolution: exactly one import, reachable via ImportAt.
	if len(f.Imports) != 1 || f.Imports[0].Name != "_puts" {
		t.Fatalf("imports = %v", f.Imports)
	}
	if name, ok := f.ImportAt(f.Imports[0].Value); !ok || name != "_puts" {
		t.Errorf("ImportAt failed: %v %v", name, ok)
	}
	if !f.InPLT(f.Imports[0].Value) {
		t.Error("import stub should be inside .plt")
	}
}

func TestDataAt(t *testing.T) {
	img, err := Link(testProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	f, err := Read(img)
	if err != nil {
		t.Fatal(err)
	}
	// Find aHello's address via symtab.
	var addr uint32
	for _, s := range f.Symbols {
		if s.Name == "aHello" {
			addr = s.Value
		}
	}
	if addr == 0 {
		t.Fatal("aHello symbol not found")
	}
	data, ok := f.DataAt(addr)
	if !ok {
		t.Fatal("DataAt failed")
	}
	if !bytes.HasPrefix(data, []byte("Hello\x00")) {
		t.Errorf("data at aHello = %q", data[:6])
	}
	if _, ok := f.DataAt(0); ok {
		t.Error("DataAt(0) should fail")
	}
}

func TestStrip(t *testing.T) {
	img, err := Link(testProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	stripped, err := Strip(img)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Read(stripped)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Stripped() {
		t.Fatal("image should be stripped")
	}
	if len(f.Symbols) != 0 {
		t.Error("stripped image should have no local symbols")
	}
	// Imports must survive stripping (the paper's preprocessing depends
	// on it).
	if len(f.Imports) != 1 || f.Imports[0].Name != "_puts" {
		t.Errorf("imports after strip = %v", f.Imports)
	}
}

func TestStrippedFunctionDiscovery(t *testing.T) {
	img, err := Link(testProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	orig, err := Read(img)
	if err != nil {
		t.Fatal(err)
	}
	origFuncs, err := orig.Functions()
	if err != nil {
		t.Fatal(err)
	}
	stripped, err := Strip(img)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Read(stripped)
	if err != nil {
		t.Fatal(err)
	}
	funcs, err := f.Functions()
	if err != nil {
		t.Fatal(err)
	}
	if len(funcs) != len(origFuncs) {
		t.Fatalf("discovered %d functions in stripped image, want %d", len(funcs), len(origFuncs))
	}
	for i := range funcs {
		if funcs[i].Addr != origFuncs[i].Addr {
			t.Errorf("function %d at %#x, want %#x", i, funcs[i].Addr, origFuncs[i].Addr)
		}
		if !bytes.Equal(funcs[i].Code, origFuncs[i].Code) {
			t.Errorf("function %d code differs after strip", i)
		}
		if funcs[i].Name == origFuncs[i].Name {
			t.Errorf("stripped function %d kept its name %q", i, funcs[i].Name)
		}
	}
}

func TestLinkErrors(t *testing.T) {
	// Undefined call target.
	insts, labels, _ := asm.ParseListing("call missing\nretn")
	_, err := Link(&Program{Funcs: []Func{{Name: "f", Insts: insts, Labels: labels}}})
	if err == nil {
		t.Error("expected undefined-function error")
	}
	// Undefined datum.
	insts2, labels2, _ := asm.ParseListing("push offset nothing\nretn")
	_, err = Link(&Program{Funcs: []Func{{Name: "f", Insts: insts2, Labels: labels2}}})
	if err == nil {
		t.Error("expected undefined-datum error")
	}
	// Duplicate function.
	insts3, labels3, _ := asm.ParseListing("retn")
	_, err = Link(&Program{Funcs: []Func{
		{Name: "f", Insts: insts3, Labels: labels3},
		{Name: "f", Insts: insts3, Labels: labels3},
	}})
	if err == nil {
		t.Error("expected duplicate-function error")
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(nil); err == nil {
		t.Error("Read(nil) should fail")
	}
	if _, err := Read([]byte("not an elf at all, just text")); err == nil {
		t.Error("Read(garbage) should fail")
	}
	img, err := Link(testProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Read(img[:40]); err == nil {
		t.Error("Read(truncated) should fail")
	}
}

func TestCrossFunctionCallLinking(t *testing.T) {
	img, err := Link(testProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	f, err := Read(img)
	if err != nil {
		t.Fatal(err)
	}
	funcs, _ := f.Functions()
	var mainFn, helperFn FuncImage
	for _, fn := range funcs {
		switch fn.Name {
		case "main":
			mainFn = fn
		case "helper":
			helperFn = fn
		}
	}
	// Decode main; its second call must target helper's address.
	decoded := decodeAllOrFatal(t, mainFn)
	var callTargets []uint32
	for _, d := range decoded {
		if d.Inst.IsCall() {
			callTargets = append(callTargets, uint32(d.Inst.Ops[0].Arg.Imm))
		}
	}
	if len(callTargets) != 2 {
		t.Fatalf("main has %d calls, want 2", len(callTargets))
	}
	if !f.InPLT(callTargets[0]) {
		t.Errorf("first call should target PLT, got %#x", callTargets[0])
	}
	if callTargets[1] != helperFn.Addr {
		t.Errorf("second call targets %#x, want helper at %#x", callTargets[1], helperFn.Addr)
	}
}

func decodeAllOrFatal(t *testing.T, fn FuncImage) []x86.Decoded {
	t.Helper()
	dec, err := x86.DecodeAll(fn.Code, fn.Addr)
	if err != nil {
		t.Fatalf("decode %s: %v", fn.Name, err)
	}
	return dec
}

// TestReadNeverPanicsOnCorruption mutates a valid image at random
// positions; Read must either parse or fail, never panic, and Functions
// must behave likewise on whatever parses.
func TestReadNeverPanicsOnCorruption(t *testing.T) {
	img, err := Link(testProgram(t))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 2000; trial++ {
		mut := append([]byte(nil), img...)
		for i := 0; i < 1+rng.Intn(8); i++ {
			mut[rng.Intn(len(mut))] = byte(rng.Intn(256))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Read panicked (trial %d): %v", trial, r)
				}
			}()
			f, err := Read(mut)
			if err != nil {
				return
			}
			_, _ = f.Functions()
			_, _ = f.parseSyms(".symtab")
		}()
	}
	// Truncations at every length must not panic either.
	for cut := 0; cut < len(img); cut += 7 {
		if _, err := Read(img[:cut]); err == nil && cut < ehSize {
			t.Errorf("truncated header at %d parsed", cut)
		}
	}
}

func TestLinkMinimalProgram(t *testing.T) {
	// No imports, no data: still a valid, readable image.
	insts, labels, _ := asm.ParseListing("mov eax, 2Ah\nretn")
	img, err := Link(&Program{Funcs: []Func{{Name: "f", Insts: insts, Labels: labels}}})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Read(img)
	if err != nil {
		t.Fatal(err)
	}
	fns, err := f.Functions()
	if err != nil || len(fns) != 1 {
		t.Fatalf("functions: %v %d", err, len(fns))
	}
	if len(f.Imports) != 0 {
		t.Errorf("imports = %v", f.Imports)
	}
	// Table reloc referencing missing pieces must error.
	_, err = Link(&Program{
		Funcs:       []Func{{Name: "f", Insts: insts, Labels: labels}},
		TableRelocs: []TableReloc{{Datum: "nope", Func: "f", Label: "x"}},
	})
	if err == nil {
		t.Error("bad table reloc should error")
	}
}
