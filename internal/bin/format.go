// Package bin implements a minimal ELF32 (i386) executable container: a
// writer/linker that packages assembled functions, import stubs and data
// into a well-formed ELF image, a reader that parses such images, a
// symbol-stripping transform, and function discovery for both stripped and
// unstripped binaries.
//
// This is the "executable" substrate of the reproduction: the paper
// operates on stripped Linux executables whose imported functions remain
// visible through the dynamic symbol table while local function names are
// gone. The same holds here: Strip removes .symtab/.strtab but keeps
// .dynsym/.dynstr, so imported call targets stay nameable (paper Sec 4.1)
// while local functions must be matched by content.
package bin

import "encoding/binary"

// ELF constants (subset).
const (
	elfMagic0   = 0x7F
	elfClass32  = 1
	elfData2LSB = 1
	evCurrent   = 1
	etExec      = 2
	emI386      = 3

	shtNull     = 0
	shtProgbits = 1
	shtSymtab   = 2
	shtStrtab   = 3
	shtNobits   = 8
	shtDynsym   = 11

	shfWrite     = 1
	shfAlloc     = 2
	shfExecinstr = 4

	sttObject = 1
	sttFunc   = 2
	stbLocal  = 0
	stbGlobal = 1

	ehSize = 52 // ELF32 header size
	shSize = 40 // ELF32 section header size
	stSize = 16 // ELF32 symbol size

	// Base is the virtual address at which images are linked, matching
	// the classic i386 ELF load address.
	Base uint32 = 0x08048000
)

var le = binary.LittleEndian

// Section is one parsed or to-be-written section.
type Section struct {
	Name  string
	Type  uint32
	Flags uint32
	Addr  uint32
	Data  []byte
	Link  uint32 // for symtab/dynsym: index of the string table section
	Align uint32
}

// Contains reports whether addr falls inside the section's address range.
func (s *Section) Contains(addr uint32) bool {
	return addr >= s.Addr && addr < s.Addr+uint32(len(s.Data))
}

// Writable reports whether the section is mapped writable (.data, .got).
func (s *Section) Writable() bool { return s.Flags&shfWrite != 0 }

// Symbol is one symbol-table entry.
type Symbol struct {
	Name    string
	Value   uint32
	Size    uint32
	Type    int // sttFunc or sttObject
	Section string
}

// IsFunc reports whether the symbol names a function.
func (s Symbol) IsFunc() bool { return s.Type == sttFunc }

func symInfo(bind, typ int) byte { return byte(bind<<4 | typ&0xf) }

// strtab accumulates a string table.
type strtab struct {
	buf []byte
	off map[string]uint32
}

func newStrtab() *strtab {
	return &strtab{buf: []byte{0}, off: map[string]uint32{"": 0}}
}

func (st *strtab) add(s string) uint32 {
	if o, ok := st.off[s]; ok {
		return o
	}
	o := uint32(len(st.buf))
	st.buf = append(st.buf, s...)
	st.buf = append(st.buf, 0)
	st.off[s] = o
	return o
}

// lookup resolves a string-table offset to the NUL-terminated string there.
func strAt(tab []byte, off uint32) string {
	if off >= uint32(len(tab)) {
		return ""
	}
	end := off
	for end < uint32(len(tab)) && tab[end] != 0 {
		end++
	}
	return string(tab[off:end])
}
