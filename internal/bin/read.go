package bin

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/x86"
)

// File is a parsed ELF image.
type File struct {
	Entry    uint32
	Sections []Section
	Symbols  []Symbol // from .symtab; empty in stripped binaries
	Imports  []Symbol // from .dynsym; survives stripping
}

// Read parses an ELF32 image produced by Link (or Strip).
func Read(img []byte) (*File, error) {
	if len(img) < ehSize || img[0] != elfMagic0 || img[1] != 'E' || img[2] != 'L' || img[3] != 'F' {
		return nil, fmt.Errorf("bin: not an ELF image")
	}
	if img[4] != elfClass32 || img[5] != elfData2LSB {
		return nil, fmt.Errorf("bin: not a little-endian ELF32 image")
	}
	f := &File{Entry: le.Uint32(img[24:])}
	shoff := le.Uint32(img[32:])
	shnum := int(le.Uint16(img[48:]))
	shstrndx := int(le.Uint16(img[50:]))
	if shoff == 0 || shnum == 0 {
		return nil, fmt.Errorf("bin: missing section headers")
	}
	type rawSH struct {
		nameOff, typ, flags, addr, off, size, link, align uint32
	}
	raw := make([]rawSH, shnum)
	for i := 0; i < shnum; i++ {
		base := shoff + uint32(i)*shSize
		if int(base)+shSize > len(img) {
			return nil, fmt.Errorf("bin: section header %d out of range", i)
		}
		sh := img[base:]
		raw[i] = rawSH{
			nameOff: le.Uint32(sh[0:]), typ: le.Uint32(sh[4:]),
			flags: le.Uint32(sh[8:]), addr: le.Uint32(sh[12:]),
			off: le.Uint32(sh[16:]), size: le.Uint32(sh[20:]),
			link: le.Uint32(sh[24:]), align: le.Uint32(sh[32:]),
		}
	}
	if shstrndx >= shnum {
		return nil, fmt.Errorf("bin: bad shstrndx")
	}
	shstr := sectionData(img, raw[shstrndx].off, raw[shstrndx].size)
	for i := 0; i < shnum; i++ {
		r := raw[i]
		data := sectionData(img, r.off, r.size)
		if r.typ == shtNull {
			data = nil
		}
		f.Sections = append(f.Sections, Section{
			Name: strAt(shstr, r.nameOff), Type: r.typ, Flags: r.flags,
			Addr: r.addr, Data: data, Link: r.link, Align: r.align,
		})
	}
	var err error
	if f.Symbols, err = f.parseSyms(".symtab"); err != nil {
		return nil, err
	}
	if f.Imports, err = f.parseSyms(".dynsym"); err != nil {
		return nil, err
	}
	return f, nil
}

func sectionData(img []byte, off, size uint32) []byte {
	if int(off) > len(img) || int(off+size) > len(img) {
		return nil
	}
	return img[off : off+size]
}

func (f *File) parseSyms(table string) ([]Symbol, error) {
	sec := f.Section(table)
	if sec == nil {
		return nil, nil
	}
	if int(sec.Link) >= len(f.Sections) {
		return nil, fmt.Errorf("bin: %s has bad string table link", table)
	}
	strs := f.Sections[sec.Link].Data
	var out []Symbol
	for off := stSize; off+stSize <= len(sec.Data); off += stSize {
		e := sec.Data[off:]
		secIdx := int(le.Uint16(e[14:]))
		secName := ""
		if secIdx < len(f.Sections) {
			secName = f.Sections[secIdx].Name
		}
		out = append(out, Symbol{
			Name:    strAt(strs, le.Uint32(e[0:])),
			Value:   le.Uint32(e[4:]),
			Size:    le.Uint32(e[8:]),
			Type:    int(e[12] & 0xf),
			Section: secName,
		})
	}
	return out, nil
}

// Section returns the named section, or nil.
func (f *File) Section(name string) *Section {
	for i := range f.Sections {
		if f.Sections[i].Name == name {
			return &f.Sections[i]
		}
	}
	return nil
}

// Stripped reports whether the image lacks a local symbol table.
func (f *File) Stripped() bool { return f.Section(".symtab") == nil }

// ImportAt returns the name of the imported function whose PLT stub starts
// at addr.
func (f *File) ImportAt(addr uint32) (string, bool) {
	for _, s := range f.Imports {
		if s.Value == addr {
			return s.Name, true
		}
	}
	return "", false
}

// DataAt returns the bytes of the data section containing addr, from addr
// to the end of the section, together with true. It is used to derive
// content tokens for global-memory references (paper Sec 4.1).
func (f *File) DataAt(addr uint32) ([]byte, bool) {
	for _, name := range []string{".rodata", ".data"} {
		if s := f.Section(name); s != nil && s.Contains(addr) {
			return s.Data[addr-s.Addr:], true
		}
	}
	return nil, false
}

// InText reports whether addr falls inside .text.
func (f *File) InText(addr uint32) bool {
	s := f.Section(".text")
	return s != nil && s.Contains(addr)
}

// InPLT reports whether addr falls inside .plt.
func (f *File) InPLT(addr uint32) bool {
	s := f.Section(".plt")
	return s != nil && s.Contains(addr)
}

// FuncImage is one function recovered from an image: its (possibly
// synthetic) name, start address and code bytes.
type FuncImage struct {
	Name string
	Addr uint32
	Code []byte
}

// Functions recovers the functions of the image. With a symbol table the
// table is authoritative. In stripped images functions are discovered the
// way real-world disassemblers do: the entry point, every direct-call
// target inside .text, and every "push ebp; mov ebp, esp" prologue become
// function starts, and each function extends to the next start. Recovered
// functions in stripped images get IDA-style sub_XXXXXX names.
func (f *File) Functions() ([]FuncImage, error) {
	text := f.Section(".text")
	if text == nil {
		return nil, fmt.Errorf("bin: no .text section")
	}
	if !f.Stripped() {
		var out []FuncImage
		for _, s := range f.Symbols {
			if !s.IsFunc() || s.Section != ".text" {
				continue
			}
			start := s.Value - text.Addr
			end := start + s.Size
			if int(end) > len(text.Data) || start > end {
				return nil, fmt.Errorf("bin: symbol %s out of range", s.Name)
			}
			out = append(out, FuncImage{Name: s.Name, Addr: s.Value, Code: text.Data[start:end]})
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
		return out, nil
	}
	starts := f.discoverFuncStarts(text)
	var out []FuncImage
	for i, addr := range starts {
		end := text.Addr + uint32(len(text.Data))
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		code := text.Data[addr-text.Addr : end-text.Addr]
		// Trim inter-function alignment padding (zero bytes).
		for len(code) > 0 && code[len(code)-1] == 0 {
			code = code[:len(code)-1]
		}
		if len(code) == 0 {
			continue
		}
		out = append(out, FuncImage{
			Name: fmt.Sprintf("sub_%X", addr),
			Addr: addr,
			Code: code,
		})
	}
	return out, nil
}

// discoverFuncStarts scans stripped text for function entry points.
func (f *File) discoverFuncStarts(text *Section) []uint32 {
	starts := map[uint32]bool{f.Entry: true}
	if !text.Contains(f.Entry) {
		delete(starts, f.Entry)
		starts[text.Addr] = true
	}
	// Pass 1: prologue scan. The pattern 55 89 E5 (push ebp; mov ebp,esp)
	// marks a conventional function entry.
	prologue := []byte{0x55, 0x89, 0xE5}
	for i := 0; i+len(prologue) <= len(text.Data); i++ {
		if bytes.Equal(text.Data[i:i+len(prologue)], prologue) {
			starts[text.Addr+uint32(i)] = true
		}
	}
	// Pass 2: decode from every known start, collecting direct-call
	// targets inside .text; iterate until no new starts appear.
	for {
		added := false
		for _, t := range f.callTargets(text, starts) {
			if !starts[t] {
				starts[t] = true
				added = true
			}
		}
		if !added {
			break
		}
	}
	out := make([]uint32, 0, len(starts))
	for a := range starts {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (f *File) callTargets(text *Section, starts map[uint32]bool) []uint32 {
	sorted := make([]uint32, 0, len(starts))
	for a := range starts {
		sorted = append(sorted, a)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var targets []uint32
	for i, addr := range sorted {
		end := text.Addr + uint32(len(text.Data))
		if i+1 < len(sorted) {
			end = sorted[i+1]
		}
		code := text.Data[addr-text.Addr : end-text.Addr]
		p := 0
		for p < len(code) {
			in, n, err := x86.Decode(code[p:], addr+uint32(p))
			if err != nil {
				break // padding or data; stop this region
			}
			if in.IsCall() && len(in.Ops) == 1 && !in.Ops[0].IsMem() && in.Ops[0].Arg.IsImm() {
				t := uint32(in.Ops[0].Arg.Imm)
				if text.Contains(t) {
					targets = append(targets, t)
				}
			}
			p += n
		}
	}
	return targets
}

// Strip returns a copy of the image without .symtab and .strtab, leaving
// .dynsym/.dynstr intact — the shape of a stripped dynamically-linked
// executable.
func Strip(img []byte) ([]byte, error) {
	f, err := Read(img)
	if err != nil {
		return nil, err
	}
	var keep []Section
	var dynsymIdx, dynstrIdx uint32
	idx := uint32(1)
	for _, s := range f.Sections {
		if s.Type == shtNull || s.Name == ".shstrtab" || s.Name == ".symtab" || s.Name == ".strtab" {
			continue
		}
		switch s.Name {
		case ".dynsym":
			dynsymIdx = idx
		case ".dynstr":
			dynstrIdx = idx
		}
		keep = append(keep, s)
		idx++
	}
	for i := range keep {
		if keep[i].Name == ".dynsym" {
			_ = dynsymIdx
			keep[i].Link = dynstrIdx
		}
	}
	return writeELF(keep, f.Entry)
}
