package core

import (
	"context"
	"reflect"
	"testing"
)

// TestCompareCtxBackgroundIdentical: the Ctx entry points with a
// background context must be bit-identical to the legacy wrappers —
// this is the compatibility contract the whole cancellation refactor
// rests on.
func TestCompareCtxBackgroundIdentical(t *testing.T) {
	ref := Decompose(liftListing(t, "a", srcA), 3)
	tgt := Decompose(liftListing(t, "b", srcARenamed), 3)
	m := NewMatcher(DefaultOptions())

	want := m.Compare(ref, tgt)
	got, err := m.CompareCtx(context.Background(), ref, tgt)
	if err != nil {
		t.Fatalf("CompareCtx(Background) error: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("CompareCtx(Background) = %+v, want %+v", got, want)
	}

	wantMany := m.CompareMany(ref, []*Decomposed{tgt, ref})
	gotMany, err := m.CompareManyCtx(context.Background(), ref, []*Decomposed{tgt, ref})
	if err != nil {
		t.Fatalf("CompareManyCtx(Background) error: %v", err)
	}
	if !reflect.DeepEqual(gotMany, wantMany) {
		t.Errorf("CompareManyCtx(Background) = %+v, want %+v", gotMany, wantMany)
	}
}

// TestCompareCtxCancelled: a context cancelled before the call returns
// context.Canceled (and a truncated result) rather than running the
// full comparison.
func TestCompareCtxCancelled(t *testing.T) {
	ref := Decompose(liftListing(t, "a", srcA), 3)
	tgt := Decompose(liftListing(t, "b", srcARenamed), 3)
	m := NewMatcher(DefaultOptions())

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := m.CompareCtx(ctx, ref, tgt)
	if err != context.Canceled {
		t.Fatalf("CompareCtx(cancelled) err = %v, want context.Canceled", err)
	}
	if !res.Truncated {
		t.Error("cancelled Compare result not marked Truncated")
	}

	if _, err := m.CompareManyCtx(ctx, ref, []*Decomposed{tgt, ref}); err != context.Canceled {
		t.Fatalf("CompareManyCtx(cancelled) err = %v, want context.Canceled", err)
	}
}

// TestCompareCtxNilContext: a nil context is treated as Background, not
// a panic.
func TestCompareCtxNilContext(t *testing.T) {
	ref := Decompose(liftListing(t, "a", srcA), 3)
	m := NewMatcher(DefaultOptions())
	//nolint:staticcheck // deliberately exercising the nil-ctx guard
	if _, err := m.CompareCtx(nil, ref, ref); err != nil {
		t.Fatalf("CompareCtx(nil) error: %v", err)
	}
	//nolint:staticcheck
	if _, err := m.CompareManyCtx(nil, ref, []*Decomposed{ref}); err != nil {
		t.Fatalf("CompareManyCtx(nil) error: %v", err)
	}
}
