package core

import (
	"testing"

	"repro/internal/align"
)

// pruneTestPairs returns the cross product of the shared test listings,
// decomposed — enough variety to exercise direct matches, rewrites, and
// clear mismatches.
func pruneTestPairs(t *testing.T, k int) []*Decomposed {
	t.Helper()
	return []*Decomposed{
		Decompose(liftListing(t, "a", srcA), k),
		Decompose(liftListing(t, "a2", srcARenamed), k),
		Decompose(liftListing(t, "b", srcB), k),
	}
}

// TestPruneBitIdentical: the score-bound pruner must be invisible in the
// output — every field of every Result identical to exhaustive mode, over
// every pair of test functions, for both normalizations and with the
// rewrite engine on and off.
func TestPruneBitIdentical(t *testing.T) {
	ds := pruneTestPairs(t, 3)
	for _, norm := range []align.Method{align.Ratio, align.Containment} {
		for _, useRewrite := range []bool{true, false} {
			exact := DefaultOptions()
			exact.Prune = false
			exact.Norm = norm
			exact.UseRewrite = useRewrite
			pruned := exact
			pruned.Prune = true
			me, mp := NewMatcher(exact), NewMatcher(pruned)
			for _, ref := range ds {
				for _, tgt := range ds {
					want := me.Compare(ref, tgt)
					got := mp.Compare(ref, tgt)
					// PairsPruned is work accounting, not output: it is
					// nonzero only when the pruner runs, by definition.
					want.PairsPruned, got.PairsPruned = 0, 0
					if got != want {
						t.Errorf("norm=%v rewrite=%v %s vs %s: pruned %+v != exhaustive %+v",
							norm, useRewrite, ref.Name, tgt.Name, got, want)
					}
				}
			}
		}
	}
}

// TestPairBoundSound: the profile-based bound must dominate the real
// alignment score for every tracelet pair — the exactness of the pruner
// rests on this inequality.
func TestPairBoundSound(t *testing.T) {
	ds := pruneTestPairs(t, 3)
	for _, ref := range ds {
		for _, tgt := range ds {
			ctx := newCmpCtx(ref, tgt, nil)
			for ri, r := range ref.Tracelets {
				for ti, tt := range tgt.Tracelets {
					if tt.K() != r.K() {
						continue
					}
					bound := ctx.pairBound(ri, ti)
					score := ctx.pairScore(ri, ti)
					if bound < score {
						t.Errorf("%s[%d] vs %s[%d]: bound %d < score %d",
							ref.Name, ri, tgt.Name, ti, bound, score)
					}
				}
			}
			ctx.release()
		}
	}
}

// TestBlockBoundTightOnSelf: a block compared against itself must bound
// to exactly its identity score (the equal-hash fast path), and the full
// alignment of identical blocks must be the diagonal.
func TestBlockBoundTightOnSelf(t *testing.T) {
	d := Decompose(liftListing(t, "a", srcA), 3)
	ctx := newCmpCtx(d, d, nil)
	defer ctx.release()
	for i := range d.distinct {
		id := int32(i)
		if got, want := ctx.blockBound(id, id), d.distinct[i].ident; got != want {
			t.Errorf("block %d: self bound %d != ident %d", i, got, want)
		}
		if got, want := ctx.blockScore(id, id), d.distinct[i].ident; got != want {
			t.Errorf("block %d: self score %d != ident %d", i, got, want)
		}
		al := ctx.fullBlock(id, id)
		if al.Score != int(d.distinct[i].ident) || len(al.Deleted) != 0 || len(al.Inserted) != 0 {
			t.Errorf("block %d: self alignment not identity: %+v", i, al)
		}
		ref := align.Align(d.distinct[i].insts, d.distinct[i].insts)
		if al.Score != ref.Score || len(al.Pairs) != len(ref.Pairs) {
			t.Errorf("block %d: synthesized diagonal disagrees with Align", i)
		}
	}
}

// TestAlignPairMatchesAlignCached: the lazily assembled full pair
// alignment must agree with aligning the concatenated sequences blockwise
// the way the old cache did (same score, same per-block structure).
func TestAlignPairMatchesAlignCached(t *testing.T) {
	ref := Decompose(liftListing(t, "a", srcA), 3)
	tgt := Decompose(liftListing(t, "a2", srcARenamed), 3)
	ctx := newCmpCtx(ref, tgt, nil)
	defer ctx.release()
	for ri, r := range ref.Tracelets {
		for ti, tt := range tgt.Tracelets {
			if tt.K() != r.K() {
				continue
			}
			al := ctx.alignPair(ri, ti)
			if al.Score != ctx.pairScore(ri, ti) {
				t.Fatalf("pair (%d,%d): alignPair score %d != pairScore %d",
					ri, ti, al.Score, ctx.pairScore(ri, ti))
			}
			want := align.AlignBlocks(r.Blocks, tt.Blocks)
			if al.Score != want.Score {
				t.Errorf("pair (%d,%d): score %d != AlignBlocks %d", ri, ti, al.Score, want.Score)
			}
			if len(al.Pairs)+len(al.Deleted) != r.NumInsts() {
				t.Errorf("pair (%d,%d): pairs+deleted do not partition the reference", ri, ti)
			}
			if len(al.Pairs)+len(al.Inserted) != tt.NumInsts() {
				t.Errorf("pair (%d,%d): pairs+inserted do not partition the target", ri, ti)
			}
		}
	}
}

// TestPruneAlphaPreservesVerdict: the α short-circuit may truncate the
// score but never the match verdict.
func TestPruneAlphaPreservesVerdict(t *testing.T) {
	ds := pruneTestPairs(t, 3)
	exact := DefaultOptions()
	trunc := DefaultOptions()
	trunc.PruneAlpha = true
	me, mt := NewMatcher(exact), NewMatcher(trunc)
	sawTruncation := false
	for _, ref := range ds {
		for _, tgt := range ds {
			want := me.Compare(ref, tgt)
			got := mt.Compare(ref, tgt)
			if got.IsMatch != want.IsMatch {
				t.Errorf("%s vs %s: PruneAlpha changed verdict %v -> %v",
					ref.Name, tgt.Name, want.IsMatch, got.IsMatch)
			}
			if got.SimilarityScore > want.SimilarityScore {
				t.Errorf("%s vs %s: truncated score %v exceeds exact %v",
					ref.Name, tgt.Name, got.SimilarityScore, want.SimilarityScore)
			}
			if got.Truncated {
				sawTruncation = true
				if got.IsMatch {
					t.Errorf("%s vs %s: truncated comparison cannot be a match", ref.Name, tgt.Name)
				}
			} else if got != want {
				t.Errorf("%s vs %s: untruncated PruneAlpha result differs: %+v vs %+v",
					ref.Name, tgt.Name, got, want)
			}
		}
	}
	if !sawTruncation {
		t.Error("no comparison was truncated; test corpus too friendly")
	}
}

// TestHashInstsDiscriminates: the structural hash must separate the test
// listings' blocks while being stable for identical content.
func TestHashInstsDiscriminates(t *testing.T) {
	a := Decompose(liftListing(t, "a", srcA), 3)
	b := Decompose(liftListing(t, "b", srcB), 3)
	for i := range a.distinct {
		if a.distinct[i].hash != hashInsts(a.distinct[i].insts) {
			t.Fatalf("hash not deterministic for block %d", i)
		}
		for j := i + 1; j < len(a.distinct); j++ {
			if a.distinct[i].hash == a.distinct[j].hash {
				t.Errorf("distinct blocks %d and %d collide", i, j)
			}
		}
	}
	cross := 0
	for i := range a.distinct {
		for j := range b.distinct {
			if a.distinct[i].hash == b.distinct[j].hash {
				cross++
			}
		}
	}
	if cross > len(a.distinct) {
		t.Errorf("implausible cross-function hash collisions: %d", cross)
	}
}

// TestCompareWorkers: the pool must never exceed the target count.
func TestCompareWorkers(t *testing.T) {
	cases := []struct{ workers, n, want int }{
		{0, 1, 1},    // GOMAXPROCS clamped to one target
		{-3, 8, 1},   // negative means serial
		{4, 2, 2},    // more workers than targets
		{2, 100, 2},  // explicit bound respected
		{5, 0, 0},    // nothing to do
		{0, 1000, 0}, // placeholder; patched below
	}
	cases[5].want = compareWorkers(0, 1000) // GOMAXPROCS-dependent, just bounded
	if cases[5].want < 1 || cases[5].want > 1000 {
		t.Errorf("compareWorkers(0, 1000) = %d out of range", cases[5].want)
	}
	for _, c := range cases[:5] {
		if got := compareWorkers(c.workers, c.n); got != c.want {
			t.Errorf("compareWorkers(%d, %d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
}

// TestDistinctBlocks: the exported view must cover every tracelet block's
// content exactly once.
func TestDistinctBlocks(t *testing.T) {
	d := Decompose(liftListing(t, "a", srcA), 3)
	blocks := d.DistinctBlocks()
	if len(blocks) != len(d.distinct) {
		t.Fatalf("DistinctBlocks len %d != %d", len(blocks), len(d.distinct))
	}
	seen := make(map[uint64]bool, len(blocks))
	for _, b := range blocks {
		seen[hashInsts(b)] = true
	}
	for _, t2 := range d.Tracelets {
		for _, blk := range t2.Blocks {
			if !seen[hashInsts(blk)] {
				t.Fatal("tracelet block missing from DistinctBlocks")
			}
		}
	}
}
