// Package core implements function-to-function similarity by tracelet
// decomposition (paper Section 4.2, Algorithm 1): both functions are
// decomposed into k-tracelets, every reference tracelet is compared
// against every target tracelet — alignment, constraint-based rewriting,
// re-scoring — and the fraction of reference tracelets that found a match
// above the tracelet threshold β becomes the function similarity score,
// thresholded by α for a match verdict.
//
// The block-granularity optimization of Section 5.2 is applied: scores
// are computed per distinct basic-block pair and cached in a flat matrix,
// so a block shared by many tracelets is aligned once per distinct target
// block. On top of it sits a lossless score-bound pruner (Options.Prune):
// a pair whose best-possible normalized score cannot clear β — nor
// qualify for a rewrite attempt — skips the alignment DP entirely, with
// bit-identical Results. Full tracebacks are deferred until a rewrite
// attempt actually consumes the aligned pairs.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/align"
	"repro/internal/asm"
	"repro/internal/prep"
	"repro/internal/rewrite"
	"repro/internal/telemetry"
	"repro/internal/tracelet"
)

// Options configures the matcher. The zero value is not useful; use
// DefaultOptions.
type Options struct {
	K     int          // tracelet size in basic blocks
	Beta  float64      // tracelet match threshold (paper β, 0..1)
	Alpha float64      // function coverage-rate threshold (paper α, 0..1)
	Norm  align.Method // score normalization

	// UseRewrite enables the constraint-based rewrite engine for tracelet
	// pairs that do not match syntactically (paper Section 4.4).
	UseRewrite bool
	// RewriteSkipBelow skips the rewrite attempt for pairs whose
	// pre-rewrite normalized score is below this value — the postmortem
	// optimization of Section 6.3 (tracelets scoring below 50% are not
	// improved by rewriting). Zero always attempts the rewrite.
	RewriteSkipBelow float64
	// Prune enables the lossless score-bound pruner: a tracelet pair runs
	// the alignment DP only if an upper bound on its score (from
	// precomputed per-block instruction-kind profiles) could clear Beta.
	// The bound holds for rewrite attempts too — rewriting renames symbols
	// within their class and never changes instruction kinds, so it cannot
	// lift a pair over a bound it already failed. Results are bit-identical
	// with and without pruning; only the work changes.
	Prune bool
	// PruneAlpha cuts a Compare short once the α verdict is decided: when
	// even matching every remaining reference tracelet cannot lift the
	// coverage above Alpha, the remaining tracelets are skipped. The
	// IsMatch verdict is preserved exactly, but SimilarityScore becomes a
	// lower bound (Result.Truncated is set), so ranked search over exact
	// scores should leave this off.
	PruneAlpha bool
	// DedupeQuery evaluates each distinct reference tracelet once and
	// multiplies the verdict across identical copies — one of the
	// search-engine optimizations the paper's prototype deferred
	// (Section 6.3). It never changes scores, only work.
	DedupeQuery bool
	// Workers bounds parallelism in CompareMany. 0 means
	// runtime.GOMAXPROCS(0); negative values are clamped to 1 (serial).
	Workers int

	// Tel, when non-nil, receives matcher telemetry: stage counters
	// (block-cache hits/misses, pairs pruned, rewrites
	// attempted/skipped/succeeded, dedupe savings) and latency histograms
	// (per compare, per tracelet pair, per rewrite attempt). A nil
	// collector disables instrumentation at negligible cost.
	Tel *telemetry.Collector
	// Trace, when non-nil, receives one child span per Compare call
	// carrying the match-decision trail (per-tracelet attributes). It is
	// a per-query object: set it on the Options of one search, not on a
	// long-lived default. Safe under CompareMany parallelism.
	Trace *telemetry.Span
}

// DefaultOptions returns the configuration the paper found best: k=3,
// β=0.8 (anywhere in the robust 0.7-0.9 plateau of Table 2), ratio
// normalization, rewriting enabled with the 50% skip optimization, and
// the lossless score-bound pruner on (it never changes Results).
func DefaultOptions() Options {
	return Options{
		K:                3,
		Beta:             0.8,
		Alpha:            0.5,
		Norm:             align.Ratio,
		UseRewrite:       true,
		RewriteSkipBelow: 0.5,
		Prune:            true,
	}
}

// blockInfo is one distinct basic-block body of a decomposition, with
// everything the matcher precomputes per block: a content hash, the
// identity (self-alignment) score, and the instruction-kind profile the
// score-bound pruner intersects.
type blockInfo struct {
	insts []asm.Inst
	hash  uint64
	ident int32
	prof  []kindCount
}

// Decomposed is a function decomposed into k-tracelets with the distinct
// basic-block bodies deduplicated and preprocessed (hash, identity score,
// kind profile) so that per-Compare state is two flat matrices instead of
// a hash map.
type Decomposed struct {
	Name      string
	K         int
	Tracelets []*tracelet.Tracelet
	NumBlocks int
	NumInsts  int

	distinct []blockInfo // deduplicated block bodies
	blockID  [][]int32   // per tracelet, per block: index into distinct
	ident    []int       // identity score per tracelet
}

// Decompose extracts and preprocesses the k-tracelets of a lifted function.
func Decompose(fn *prep.Function, k int) *Decomposed {
	ts := tracelet.Extract(fn.Graph, k)
	d := &Decomposed{
		Name:      fn.Name,
		K:         k,
		Tracelets: ts,
		NumBlocks: len(fn.Graph.Blocks),
		NumInsts:  fn.Graph.NumInsts(),
		blockID:   make([][]int32, len(ts)),
		ident:     make([]int, len(ts)),
	}
	// Tracelets share block slices heavily: resolve each shared slice once
	// by pointer identity, and each distinct content once by hash.
	type sliceID struct {
		first *asm.Inst
		n     int
	}
	byPtr := make(map[sliceID]int32)
	byHash := make(map[uint64]int32)
	for i, t := range ts {
		ids := make([]int32, len(t.Blocks))
		total := 0
		for j, blk := range t.Blocks {
			var sid sliceID
			if len(blk) > 0 {
				sid = sliceID{&blk[0], len(blk)}
			}
			id, ok := byPtr[sid]
			if !ok {
				h := hashInsts(blk)
				id, ok = byHash[h]
				if !ok {
					id = int32(len(d.distinct))
					d.distinct = append(d.distinct, blockInfo{
						insts: blk,
						hash:  h,
						ident: int32(align.IdentityScore(blk)),
						prof:  kindProfileOf(blk),
					})
					byHash[h] = id
				}
				byPtr[sid] = id
			}
			ids[j] = id
			total += int(d.distinct[id].ident)
		}
		d.blockID[i] = ids
		d.ident[i] = total
	}
	return d
}

// DistinctBlocks returns the deduplicated basic-block bodies of the
// decomposition (jump instructions already stripped). The slices are
// shared and must be treated as read-only; callers like the index feature
// prefilter use them to derive per-block features without re-walking the
// tracelets.
func (d *Decomposed) DistinctBlocks() [][]asm.Inst {
	out := make([][]asm.Inst, len(d.distinct))
	for i := range d.distinct {
		out[i] = d.distinct[i].insts
	}
	return out
}

// Fingerprint returns a stable 64-bit content hash of the decomposition:
// two functions with identical tracelet content (for the same k) collide,
// different content essentially never does. Result caches key on it.
func (d *Decomposed) Fingerprint() uint64 {
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h = (h ^ (v & 0xff)) * prime64
			v >>= 8
		}
	}
	mix(uint64(d.K))
	mix(uint64(d.NumBlocks))
	mix(uint64(d.NumInsts))
	for _, t := range d.Tracelets {
		mix(t.Hash())
	}
	return h
}

// DecomposeT is Decompose with telemetry: the decomposition is timed into
// tel's decompose-latency histogram and counted. A nil collector makes it
// identical to Decompose.
func DecomposeT(fn *prep.Function, k int, tel *telemetry.Collector) *Decomposed {
	t := tel.StartTimer(telemetry.DecomposeLatency)
	d := Decompose(fn, k)
	t.Stop()
	tel.Inc(telemetry.FunctionsDecomposed)
	return d
}

const offset64, prime64 = 14695981039346656037, 1099511628211

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * prime64 }

func fnvU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * prime64
		v >>= 8
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * prime64
	}
	return (h ^ 0) * prime64
}

func fnvArg(h uint64, a asm.Arg) uint64 {
	h = fnvByte(h, byte(a.Kind))
	switch a.Kind {
	case asm.KindReg:
		return fnvU64(h, uint64(a.Reg))
	case asm.KindImm:
		return fnvU64(h, uint64(a.Imm))
	case asm.KindSym:
		return fnvString(fnvByte(h, byte(a.Cls)), a.Sym)
	}
	return h
}

// hashInsts content-hashes a block body by walking the instruction
// structure directly — no text rendering (the String-based hash was the
// hottest allocation site in Decompose).
func hashInsts(insts []asm.Inst) uint64 {
	h := uint64(offset64)
	for _, in := range insts {
		h = fnvString(h, in.Mnemonic)
		for _, op := range in.Ops {
			if op.IsMem() {
				h = fnvByte(h, '[')
				for _, t := range op.Mem {
					h = fnvByte(h, byte(t.Op))
					h = fnvArg(h, t.Arg)
				}
			} else {
				if op.Offset {
					h = fnvByte(h, '&')
				}
				h = fnvArg(h, op.Arg)
			}
			h = fnvByte(h, ',')
		}
		h = fnvByte(h, '\n')
	}
	return h
}

// kindHash hashes the SameKind equivalence class of an instruction: the
// mnemonic plus each operand's shape (direct/memory, the offset flag,
// memory-term operators, and argument types). asm.SameKind(a, b) implies
// kindHash(a) == kindHash(b); a hash collision can only merge two classes,
// which over-approximates — safe for an upper bound.
func kindHash(in asm.Inst) uint64 {
	h := fnvString(uint64(offset64), in.Mnemonic)
	for _, op := range in.Ops {
		if op.IsMem() {
			h = fnvByte(h, '[')
			for _, t := range op.Mem {
				h = fnvByte(h, byte(t.Op))
				h = fnvByte(h, byte(t.Arg.Kind))
				if t.Arg.Kind == asm.KindSym {
					h = fnvByte(h, byte(t.Arg.Cls))
				}
			}
		} else {
			if op.Offset {
				h = fnvByte(h, '&')
			}
			h = fnvByte(h, byte(op.Arg.Kind))
			if op.Arg.Kind == asm.KindSym {
				h = fnvByte(h, byte(op.Arg.Cls))
			}
		}
		h = fnvByte(h, ',')
	}
	return h
}

// kindCount is one entry of a block's instruction-kind profile: how many
// instructions of one SameKind class the block holds, and the identity
// weight (2 + #args, the maximum Sim of a pair within the class) each
// contributes. SameKind instructions have equal argument counts, so the
// weight is a class property.
type kindCount struct {
	hash   uint64
	weight int32
	count  int32
}

// kindProfileOf computes a block's kind profile, sorted by (hash, weight)
// so two profiles intersect with a linear merge.
func kindProfileOf(insts []asm.Inst) []kindCount {
	type key struct {
		hash   uint64
		weight int32
	}
	m := make(map[key]int32, len(insts))
	for _, in := range insts {
		m[key{kindHash(in), int32(2 + in.NumArgs())}]++
	}
	prof := make([]kindCount, 0, len(m))
	for k, c := range m {
		prof = append(prof, kindCount{hash: k.hash, weight: k.weight, count: c})
	}
	sort.Slice(prof, func(i, j int) bool {
		if prof[i].hash != prof[j].hash {
			return prof[i].hash < prof[j].hash
		}
		return prof[i].weight < prof[j].weight
	})
	return prof
}

// profileBound returns an upper bound on the alignment score of two
// blocks: an optimal alignment never takes a negative-Sim pair (skipping
// is free), a positive-Sim pair exists only between SameKind instructions,
// and such a pair scores at most the class weight. Each class therefore
// contributes at most min(count_r, count_t)·weight.
func profileBound(p, q []kindCount) int32 {
	var b int32
	i, j := 0, 0
	for i < len(p) && j < len(q) {
		pi, qj := &p[i], &q[j]
		switch {
		case pi.hash < qj.hash || (pi.hash == qj.hash && pi.weight < qj.weight):
			i++
		case qj.hash < pi.hash || (pi.hash == qj.hash && qj.weight < pi.weight):
			j++
		default:
			c := pi.count
			if qj.count < c {
				c = qj.count
			}
			b += c * pi.weight
			i++
			j++
		}
	}
	return b
}

// Result is the outcome of one function-to-function comparison.
type Result struct {
	Name            string  // target function name
	SimilarityScore float64 // coverage rate of reference tracelets
	IsMatch         bool

	RefTracelets   int // |RefTracelets|
	MatchedDirect  int // matched before any rewrite
	MatchedRewrite int // matched only after the rewrite
	PairsCompared  int
	PairsRewritten int
	PairsPruned    int // pairs skipped by the lossless score-bound pruner

	// Truncated reports that the comparison stopped early because the α
	// verdict was already decided (Options.PruneAlpha): IsMatch is exact,
	// but SimilarityScore is then only a lower bound.
	Truncated bool
}

// Matched returns the total number of matched reference tracelets.
func (r Result) Matched() int { return r.MatchedDirect + r.MatchedRewrite }

// Matcher compares decomposed functions.
type Matcher struct {
	Opts Options
}

// NewMatcher returns a matcher over the given options.
func NewMatcher(opts Options) *Matcher {
	if opts.K <= 0 {
		opts.K = 3
	}
	return &Matcher{Opts: opts}
}

// cmpStats tallies one Compare locally (no atomics in the inner loops);
// finishCompare flushes it to the collector in a handful of atomic adds.
type cmpStats struct {
	cacheHits   uint64
	cacheMisses uint64
	prunedBound uint64
	rwAttempted uint64
	rwSkipped   uint64
	rwSucceeded uint64
	dedupeSaved uint64
}

// i32Pool recycles the per-Compare score/bound matrices.
var i32Pool = sync.Pool{New: func() any { return new([]int32) }}

// getI32 returns a pooled length-n buffer filled with -1 ("unknown").
func getI32(n int) *[]int32 {
	p := i32Pool.Get().(*[]int32)
	if cap(*p) < n {
		*p = make([]int32, n)
	} else {
		*p = (*p)[:n]
	}
	for i := range *p {
		(*p)[i] = -1
	}
	return p
}

// cancelCheckInterval is how many pair-loop iterations pass between Done
// channel probes. A power of two keeps the check a mask; 32 bounds the
// overshoot after cancellation to a handful of block-cache lookups while
// keeping the per-pair cost of an active context to one increment and one
// branch.
const cancelCheckInterval = 32

// cancelCheck is the cooperative cancellation probe threaded through the
// matcher's pair loops. The zero value (and any check built from a
// context whose Done channel is nil, such as context.Background()) is
// completely free: one nil comparison per poll, no channel operations —
// so uncancellable compares stay bit-identical in behavior and cost.
type cancelCheck struct {
	done <-chan struct{}
	ctx  context.Context
	seq  uint32
}

func newCancelCheck(ctx context.Context) cancelCheck {
	if ctx == nil {
		return cancelCheck{}
	}
	if done := ctx.Done(); done != nil {
		return cancelCheck{done: done, ctx: ctx}
	}
	return cancelCheck{}
}

// poll reports the context's error, probing the Done channel once every
// cancelCheckInterval calls (cheap enough for the per-pair hot loop).
func (c *cancelCheck) poll() error {
	if c.done == nil {
		return nil
	}
	c.seq++
	if c.seq&(cancelCheckInterval-1) != 0 {
		return nil
	}
	return c.now()
}

// now probes the Done channel immediately — for coarse loop boundaries
// (per rewrite attempt, per reference tracelet) where the work between
// checks is already expensive.
func (c *cancelCheck) now() error {
	if c.done == nil {
		return nil
	}
	select {
	case <-c.done:
		return c.ctx.Err()
	default:
		return nil
	}
}

// cmpCtx carries one Compare's working state through the tracelet loops:
// flat pooled score/bound matrices over the distinct-block cross product,
// lazily built full alignments (rewrite candidates only), the telemetry
// sink and the (optional) trace span.
type cmpCtx struct {
	ref, tgt             *Decomposed
	td                   int // matrix stride: len(tgt.distinct)
	scoresBuf, boundsBuf *[]int32
	scores, bounds       []int32 // rd×td; -1 = not yet computed
	full                 map[uint64]*align.Alignment

	cancel    cancelCheck
	cancelErr error // first context error observed; aborts the compare

	tel     *telemetry.Collector
	span    *telemetry.Span
	stats   cmpStats
	pairSeq uint64 // pairs seen; drives 1-in-8 pair-latency sampling
}

func newCmpCtx(ref, tgt *Decomposed, tel *telemetry.Collector) *cmpCtx {
	ctx := &cmpCtx{ref: ref, tgt: tgt, td: len(tgt.distinct), tel: tel}
	n := len(ref.distinct) * ctx.td
	ctx.scoresBuf = getI32(n)
	ctx.boundsBuf = getI32(n)
	ctx.scores, ctx.bounds = *ctx.scoresBuf, *ctx.boundsBuf
	return ctx
}

// release returns the pooled matrices; the ctx must not be used after.
func (ctx *cmpCtx) release() {
	i32Pool.Put(ctx.scoresBuf)
	i32Pool.Put(ctx.boundsBuf)
	ctx.scoresBuf, ctx.boundsBuf, ctx.scores, ctx.bounds = nil, nil, nil, nil
}

// pairTimer returns a running PairLatency timer for one pair in eight
// (the zero Timer otherwise). Timing every pair costs two clock reads on
// a path that is often just a cache lookup, which benchmarks showed at
// ~7% Compare overhead; uniform sampling keeps the histogram
// representative at ~1/8 of that cost.
func (ctx *cmpCtx) pairTimer() telemetry.Timer {
	if ctx.tel == nil {
		return telemetry.Timer{}
	}
	seq := ctx.pairSeq
	ctx.pairSeq++
	if seq&7 != 0 {
		return telemetry.Timer{}
	}
	return ctx.tel.StartTimer(telemetry.PairLatency)
}

// blockScore returns the alignment score of distinct block pair (ri, ti),
// computing the DP at most once per Compare. Equal-hash blocks
// short-circuit to the identity score — the same hash-means-equal-content
// assumption the hash-keyed alignment cache has always made.
func (ctx *cmpCtx) blockScore(ri, ti int32) int32 {
	idx := int(ri)*ctx.td + int(ti)
	if s := ctx.scores[idx]; s >= 0 {
		ctx.stats.cacheHits++
		return s
	}
	rb, tb := &ctx.ref.distinct[ri], &ctx.tgt.distinct[ti]
	var s int32
	if rb.hash == tb.hash {
		ctx.stats.cacheHits++ // identical content: self-alignment, no DP
		s = rb.ident
	} else {
		ctx.stats.cacheMisses++
		s = int32(align.Score(rb.insts, tb.insts))
	}
	ctx.scores[idx] = s
	return s
}

// blockBound returns an upper bound on blockScore(ri, ti) without running
// the DP (linear profile merge, cached like the scores).
func (ctx *cmpCtx) blockBound(ri, ti int32) int32 {
	idx := int(ri)*ctx.td + int(ti)
	if b := ctx.bounds[idx]; b >= 0 {
		return b
	}
	rb, tb := &ctx.ref.distinct[ri], &ctx.tgt.distinct[ti]
	var b int32
	if rb.hash == tb.hash {
		b = rb.ident
	} else {
		b = profileBound(rb.prof, tb.prof)
	}
	ctx.bounds[idx] = b
	return b
}

// pairScore is the blockwise alignment score of tracelet pair (ri, ti) —
// the Score of the full alignment, without any traceback.
func (ctx *cmpCtx) pairScore(ri, ti int) int {
	rids, tids := ctx.ref.blockID[ri], ctx.tgt.blockID[ti]
	s := 0
	for b := range rids {
		s += int(ctx.blockScore(rids[b], tids[b]))
	}
	return s
}

// pairBound is a cheap upper bound on pairScore(ri, ti): no DP runs.
func (ctx *cmpCtx) pairBound(ri, ti int) int {
	rids, tids := ctx.ref.blockID[ri], ctx.tgt.blockID[ti]
	s := 0
	for b := range rids {
		s += int(ctx.blockBound(rids[b], tids[b]))
	}
	return s
}

// fullBlock returns the traceback alignment of distinct block pair
// (ri, ti), computed lazily: only rewrite attempts (and Explain evidence)
// consume Pairs/Deleted/Inserted, so the scan path never pays for a
// traceback matrix.
func (ctx *cmpCtx) fullBlock(ri, ti int32) *align.Alignment {
	key := uint64(uint32(ri))<<32 | uint64(uint32(ti))
	if ba, ok := ctx.full[key]; ok {
		return ba
	}
	if ctx.full == nil {
		ctx.full = make(map[uint64]*align.Alignment)
	}
	rb, tb := &ctx.ref.distinct[ri], &ctx.tgt.distinct[ti]
	var a align.Alignment
	if rb.hash == tb.hash {
		// Identical content: the optimal alignment is the diagonal.
		a = align.Alignment{Score: int(rb.ident)}
		if n := len(rb.insts); n > 0 {
			a.Pairs = make([]align.Pair, n)
			for i := range a.Pairs {
				a.Pairs[i] = align.Pair{Ref: i, Tgt: i}
			}
		}
	} else {
		a = align.Align(rb.insts, tb.insts)
	}
	ctx.scores[int(ri)*ctx.td+int(ti)] = int32(a.Score)
	ctx.full[key] = &a
	return &a
}

// alignPair assembles the full blockwise alignment of tracelet pair
// (ri, ti) from per-block tracebacks, with the output slices preallocated
// to their known bounds (pairs+deleted partition the reference sequence,
// pairs+inserted the target's).
func (ctx *cmpCtx) alignPair(ri, ti int) align.Alignment {
	r, t := ctx.ref.Tracelets[ri], ctx.tgt.Tracelets[ti]
	rids, tids := ctx.ref.blockID[ri], ctx.tgt.blockID[ti]
	nR, nT := r.NumInsts(), t.NumInsts()
	minN := nR
	if nT < minN {
		minN = nT
	}
	var out align.Alignment
	if minN > 0 {
		out.Pairs = make([]align.Pair, 0, minN)
	}
	if nR > 0 {
		out.Deleted = make([]int, 0, nR)
	}
	if nT > 0 {
		out.Inserted = make([]int, 0, nT)
	}
	refOff, tgtOff := 0, 0
	for bi := range rids {
		ba := ctx.fullBlock(rids[bi], tids[bi])
		out.Score += ba.Score
		for _, p := range ba.Pairs {
			out.Pairs = append(out.Pairs, align.Pair{Ref: p.Ref + refOff, Tgt: p.Tgt + tgtOff})
		}
		for _, d := range ba.Deleted {
			out.Deleted = append(out.Deleted, d+refOff)
		}
		for _, ins := range ba.Inserted {
			out.Inserted = append(out.Inserted, ins+tgtOff)
		}
		refOff += len(r.Blocks[bi])
		tgtOff += len(t.Blocks[bi])
	}
	return out
}

// Compare computes the similarity of target tgt against reference ref
// (paper Algorithm 1: FunctionsMatchScore). It cannot be interrupted; use
// CompareCtx to bound the work with a context.
func (m *Matcher) Compare(ref, tgt *Decomposed) Result {
	res, _ := m.CompareCtx(context.Background(), ref, tgt)
	return res
}

// CompareCtx is Compare with cooperative cancellation: the pair loop
// polls cc every few iterations and aborts the comparison as soon as the
// context is done, returning the partial Result alongside cc's error
// (the Result is then a lower bound and must not be ranked). A context
// that can never be cancelled (context.Background()) adds no overhead
// and the Result is bit-identical to Compare's.
func (m *Matcher) CompareCtx(cc context.Context, ref, tgt *Decomposed) (Result, error) {
	ct := m.Opts.Tel.StartTimer(telemetry.CompareLatency)
	res := Result{Name: tgt.Name, RefTracelets: len(ref.Tracelets)}
	ctx := newCmpCtx(ref, tgt, m.Opts.Tel)
	ctx.cancel = newCancelCheck(cc)
	if m.Opts.Trace != nil {
		ctx.span = m.Opts.Trace.Child("compare:" + tgt.Name)
	}
	if total := len(ref.Tracelets); total > 0 {
		// canStillMatch: with left reference tracelets not yet evaluated,
		// can the final coverage still clear α? The expression mirrors the
		// final verdict exactly, so the short-circuit is verdict-preserving.
		canStillMatch := func(left int) bool {
			return float64(res.Matched()+left)/float64(total) > m.Opts.Alpha
		}
		if m.Opts.DedupeQuery {
			// Identical reference tracelets match identically: evaluate one
			// representative per content group and multiply.
			groups := make(map[uint64][]int, total)
			order := make([]uint64, 0, total)
			for ri, r := range ref.Tracelets {
				h := r.Hash()
				if _, seen := groups[h]; !seen {
					order = append(order, h)
				}
				groups[h] = append(groups[h], ri)
			}
			left := total
			for _, h := range order {
				if ctx.cancelErr != nil {
					break
				}
				if m.Opts.PruneAlpha && !canStillMatch(left) {
					res.Truncated = true
					break
				}
				idx := groups[h]
				ri := idx[0]
				ctx.stats.dedupeSaved += uint64(len(idx) - 1)
				matched, viaRewrite := m.traceletMatch(ref, tgt, ri, ref.Tracelets[ri], ctx, &res)
				switch {
				case matched && viaRewrite:
					res.MatchedRewrite += len(idx)
				case matched:
					res.MatchedDirect += len(idx)
				}
				left -= len(idx)
			}
		} else {
			for ri, r := range ref.Tracelets {
				if ctx.cancelErr != nil {
					break
				}
				if m.Opts.PruneAlpha && !canStillMatch(total-ri) {
					res.Truncated = true
					break
				}
				matched, viaRewrite := m.traceletMatch(ref, tgt, ri, r, ctx, &res)
				switch {
				case matched && viaRewrite:
					res.MatchedRewrite++
				case matched:
					res.MatchedDirect++
				}
			}
		}
		res.SimilarityScore = float64(res.Matched()) / float64(total)
		res.IsMatch = res.SimilarityScore > m.Opts.Alpha
	}
	if ctx.cancelErr != nil {
		// Partial evaluation: the score is a lower bound over the
		// tracelets visited before the abort, never a rankable verdict.
		res.Truncated = true
	}
	m.finishCompare(&res, ctx, ct)
	return res, ctx.cancelErr
}

// finishCompare flushes the local tally into the collector, closes the
// compare span with the decision summary, and releases the pooled state.
func (m *Matcher) finishCompare(res *Result, ctx *cmpCtx, ct telemetry.Timer) {
	ct.Stop()
	tel, st := ctx.tel, &ctx.stats
	res.PairsPruned = int(st.prunedBound)
	tel.Inc(telemetry.Compares)
	tel.Add(telemetry.PairsCompared, uint64(res.PairsCompared))
	tel.Add(telemetry.PairsPrunedBound, st.prunedBound)
	tel.Add(telemetry.BlockCacheHits, st.cacheHits)
	tel.Add(telemetry.BlockCacheMisses, st.cacheMisses)
	tel.Add(telemetry.RewritesAttempted, st.rwAttempted)
	tel.Add(telemetry.RewritesSkipped, st.rwSkipped)
	tel.Add(telemetry.RewritesSucceeded, st.rwSucceeded)
	tel.Add(telemetry.DedupeSavedTracelets, st.dedupeSaved)
	if res.IsMatch {
		tel.Inc(telemetry.Matches)
	}
	if res.Truncated && ctx.cancelErr == nil {
		tel.Inc(telemetry.FuncsPrunedAlpha)
	}
	if sp := ctx.span; sp != nil {
		sp.Set("ref_tracelets", int64(res.RefTracelets))
		sp.Set("pairs_compared", int64(res.PairsCompared))
		sp.Set("pairs_pruned_bound", int64(st.prunedBound))
		sp.Set("block_cache_hits", int64(st.cacheHits))
		sp.Set("block_cache_misses", int64(st.cacheMisses))
		sp.Set("rewrites_attempted", int64(st.rwAttempted))
		sp.Set("rewrites_skipped", int64(st.rwSkipped))
		sp.Set("rewrites_succeeded", int64(st.rwSucceeded))
		sp.Set("matched_direct", int64(res.MatchedDirect))
		sp.Set("matched_rewrite", int64(res.MatchedRewrite))
		sp.Set("similarity_bp", int64(res.SimilarityScore*10000))
		if res.IsMatch {
			sp.Set("verdict_match", 1)
		} else {
			sp.Set("verdict_match", 0)
		}
		if res.Truncated {
			sp.Set("alpha_truncated", 1)
		}
		sp.End()
	}
	ctx.release()
}

// traceletMatch looks for any target tracelet matching reference tracelet
// ri. It returns (matched, matched-only-after-rewrite).
func (m *Matcher) traceletMatch(ref, tgt *Decomposed, ri int, r *tracelet.Tracelet,
	ctx *cmpCtx, res *Result) (bool, bool) {

	var tsp *telemetry.Span
	if ctx.span != nil {
		tsp = ctx.span.Child(fmt.Sprintf("tracelet:%d", ri))
		defer tsp.End()
	}
	rIdent := ref.ident[ri]
	type rewriteCand struct {
		ti   int
		norm float64
	}
	var cands []rewriteCand
	bestPre := 0.0
	for ti, t := range tgt.Tracelets {
		if err := ctx.cancel.poll(); err != nil {
			ctx.cancelErr = err
			return false, false
		}
		if t.K() != r.K() {
			continue
		}
		res.PairsCompared++
		if m.Opts.Prune {
			// Lossless skip: Norm is monotone in the score, so if even the
			// score bound cannot clear β — nor reach the rewrite-candidate
			// threshold — running the DP cannot change any outcome.
			maxNorm := align.Norm(ctx.pairBound(ri, ti), rIdent, tgt.ident[ti], m.Opts.Norm)
			if maxNorm <= m.Opts.Beta && (!m.Opts.UseRewrite || maxNorm < m.Opts.RewriteSkipBelow) {
				ctx.stats.prunedBound++
				if m.Opts.UseRewrite {
					ctx.stats.rwSkipped++
				}
				continue
			}
		}
		pt := ctx.pairTimer()
		score := ctx.pairScore(ri, ti)
		norm := align.Norm(score, rIdent, tgt.ident[ti], m.Opts.Norm)
		pt.Stop()
		if norm > bestPre {
			bestPre = norm
		}
		if norm > m.Opts.Beta {
			if tsp != nil {
				tsp.Set("matched_ti", int64(ti))
				tsp.Set("score_bp", int64(norm*10000))
				tsp.Set("via_rewrite", 0)
			}
			return true, false
		}
		if m.Opts.UseRewrite {
			if norm >= m.Opts.RewriteSkipBelow {
				cands = append(cands, rewriteCand{ti: ti, norm: norm})
			} else {
				ctx.stats.rwSkipped++
			}
		}
	}
	if tsp != nil {
		tsp.Set("best_pre_score_bp", int64(bestPre*10000))
		tsp.Set("rewrite_candidates", int64(len(cands)))
	}
	// No syntactic match: attempt rewrites on the plausible candidates,
	// best pre-score first — one stable sort, not repeated selection.
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].norm > cands[j].norm })
	for _, c := range cands {
		// A rewrite attempt (alignment traceback + CSP solve) is the most
		// expensive unit of work in the matcher: probe the context before
		// every one, not just every few pairs.
		if err := ctx.cancel.now(); err != nil {
			ctx.cancelErr = err
			return false, false
		}
		t := tgt.Tracelets[c.ti]
		res.PairsRewritten++
		ctx.stats.rwAttempted++
		if m.Opts.Prune {
			// The score bound caps the rewrite outcome too: rewriting
			// renames symbols within their class (registers to registers,
			// locals to locals) and never changes an instruction's kind, so
			// the rewritten pair keeps the same kind profile and identity
			// scores. When even the bound cannot clear β the CSP solve is
			// provably futile — account the attempt (Results stay
			// bit-identical with exhaustive mode) but skip the work.
			maxNorm := align.Norm(ctx.pairBound(ri, c.ti), rIdent, tgt.ident[c.ti], m.Opts.Norm)
			if maxNorm <= m.Opts.Beta {
				ctx.stats.prunedBound++
				continue
			}
		}
		// The traceback is deferred to here: only an actual rewrite attempt
		// consumes the aligned pairs.
		al := ctx.alignPair(ri, c.ti)
		rt := ctx.tel.StartTimer(telemetry.RewriteLatency)
		rw := rewrite.RewriteT(r.Blocks, t.Blocks, al, ctx.tel)
		score := align.ScoreBlocks(r.Blocks, rw.Blocks)
		tIdent := align.IdentityScore(flatten(rw.Blocks))
		norm := align.Norm(score, rIdent, tIdent, m.Opts.Norm)
		rt.Stop()
		if norm > m.Opts.Beta {
			ctx.stats.rwSucceeded++
			if tsp != nil {
				tsp.Set("matched_ti", int64(c.ti))
				tsp.Set("score_bp", int64(norm*10000))
				tsp.Set("via_rewrite", 1)
			}
			return true, true
		}
	}
	if tsp != nil {
		tsp.Set("via_rewrite", -1) // unmatched
	}
	return false, false
}

func flatten(blocks [][]asm.Inst) []asm.Inst {
	n := 0
	for _, b := range blocks {
		n += len(b)
	}
	out := make([]asm.Inst, 0, n)
	for _, b := range blocks {
		out = append(out, b...)
	}
	return out
}

// compareWorkers resolves the worker count for n targets: 0 means
// runtime.GOMAXPROCS(0), negatives clamp to 1 (serial), and the pool
// never exceeds the number of targets — a 1-target compare must not spin
// up a machine-wide pool.
func compareWorkers(workers, n int) int {
	switch {
	case workers == 0:
		workers = runtime.GOMAXPROCS(0)
	case workers < 0:
		workers = 1
	}
	if workers > n {
		workers = n
	}
	return workers
}

// CompareMany compares the reference against every target in parallel and
// returns results in target order. Opts.Workers bounds the parallelism:
// 0 means runtime.GOMAXPROCS(0), negative values are clamped to 1.
func (m *Matcher) CompareMany(ref *Decomposed, targets []*Decomposed) []Result {
	out, _ := m.CompareManyCtx(context.Background(), ref, targets)
	return out
}

// CompareManyCtx is CompareMany with cooperative cancellation: the
// dispatcher stops handing out targets once cc is done, in-flight
// compares abort at their next poll, and the first context error observed
// is returned. On error the result slice is partial (untouched slots are
// zero Results) and must be discarded by ranking callers.
func (m *Matcher) CompareManyCtx(cc context.Context, ref *Decomposed, targets []*Decomposed) ([]Result, error) {
	if cc == nil {
		cc = context.Background()
	}
	out := make([]Result, len(targets))
	workers := compareWorkers(m.Opts.Workers, len(targets))
	if workers <= 0 {
		return out, nil
	}
	var (
		mu       sync.Mutex
		firstErr error
	)
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				res, err := m.CompareCtx(cc, ref, targets[i])
				if err != nil {
					setErr(err)
					continue // drain remaining jobs; they abort fast
				}
				out[i] = res
			}
		}()
	}
	done := cc.Done()
dispatch:
	for i := range targets {
		select {
		case <-done:
			setErr(cc.Err())
			break dispatch
		case jobs <- i:
		}
	}
	close(jobs)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return out, firstErr
}
