// Package core implements function-to-function similarity by tracelet
// decomposition (paper Section 4.2, Algorithm 1): both functions are
// decomposed into k-tracelets, every reference tracelet is compared
// against every target tracelet — alignment, constraint-based rewriting,
// re-scoring — and the fraction of reference tracelets that found a match
// above the tracelet threshold β becomes the function similarity score,
// thresholded by α for a match verdict.
//
// The block-granularity optimization of Section 5.2 is applied: alignments
// are computed per basic-block pair and cached, so a block shared by many
// tracelets is aligned once per target block.
package core

import (
	"runtime"
	"sync"

	"repro/internal/align"
	"repro/internal/asm"
	"repro/internal/prep"
	"repro/internal/rewrite"
	"repro/internal/tracelet"
)

// Options configures the matcher. The zero value is not useful; use
// DefaultOptions.
type Options struct {
	K     int          // tracelet size in basic blocks
	Beta  float64      // tracelet match threshold (paper β, 0..1)
	Alpha float64      // function coverage-rate threshold (paper α, 0..1)
	Norm  align.Method // score normalization

	// UseRewrite enables the constraint-based rewrite engine for tracelet
	// pairs that do not match syntactically (paper Section 4.4).
	UseRewrite bool
	// RewriteSkipBelow skips the rewrite attempt for pairs whose
	// pre-rewrite normalized score is below this value — the postmortem
	// optimization of Section 6.3 (tracelets scoring below 50% are not
	// improved by rewriting). Zero always attempts the rewrite.
	RewriteSkipBelow float64
	// DedupeQuery evaluates each distinct reference tracelet once and
	// multiplies the verdict across identical copies — one of the
	// search-engine optimizations the paper's prototype deferred
	// (Section 6.3). It never changes scores, only work.
	DedupeQuery bool
	// Workers bounds parallelism in CompareMany; 0 means GOMAXPROCS.
	Workers int
}

// DefaultOptions returns the configuration the paper found best: k=3,
// β=0.8 (anywhere in the robust 0.7-0.9 plateau of Table 2), ratio
// normalization, rewriting enabled with the 50% skip optimization.
func DefaultOptions() Options {
	return Options{
		K:                3,
		Beta:             0.8,
		Alpha:            0.5,
		Norm:             align.Ratio,
		UseRewrite:       true,
		RewriteSkipBelow: 0.5,
	}
}

// Decomposed is a function decomposed into k-tracelets with precomputed
// per-block hashes and identity scores.
type Decomposed struct {
	Name      string
	K         int
	Tracelets []*tracelet.Tracelet
	NumBlocks int
	NumInsts  int

	blockHash [][]uint64 // per tracelet, per block
	ident     []int      // identity score per tracelet
}

// Decompose extracts and preprocesses the k-tracelets of a lifted function.
func Decompose(fn *prep.Function, k int) *Decomposed {
	ts := tracelet.Extract(fn.Graph, k)
	d := &Decomposed{
		Name:      fn.Name,
		K:         k,
		Tracelets: ts,
		NumBlocks: len(fn.Graph.Blocks),
		NumInsts:  fn.Graph.NumInsts(),
		blockHash: make([][]uint64, len(ts)),
		ident:     make([]int, len(ts)),
	}
	// Hash every distinct block once; tracelets share block slices.
	type blockID struct {
		first *asm.Inst
		n     int
	}
	hashCache := make(map[blockID]uint64)
	for i, t := range ts {
		d.blockHash[i] = make([]uint64, len(t.Blocks))
		for j, blk := range t.Blocks {
			var id blockID
			if len(blk) > 0 {
				id = blockID{&blk[0], len(blk)}
			}
			h, ok := hashCache[id]
			if !ok {
				h = hashInsts(blk)
				hashCache[id] = h
			}
			d.blockHash[i][j] = h
		}
		d.ident[i] = align.IdentityScore(t.Insts())
	}
	return d
}

func hashInsts(insts []asm.Inst) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, in := range insts {
		for _, b := range []byte(in.String()) {
			h = (h ^ uint64(b)) * prime64
		}
		h = (h ^ '\n') * prime64
	}
	return h
}

// Result is the outcome of one function-to-function comparison.
type Result struct {
	Name            string  // target function name
	SimilarityScore float64 // coverage rate of reference tracelets
	IsMatch         bool

	RefTracelets   int // |RefTracelets|
	MatchedDirect  int // matched before any rewrite
	MatchedRewrite int // matched only after the rewrite
	PairsCompared  int
	PairsRewritten int
}

// Matched returns the total number of matched reference tracelets.
func (r Result) Matched() int { return r.MatchedDirect + r.MatchedRewrite }

// Matcher compares decomposed functions.
type Matcher struct {
	Opts Options
}

// NewMatcher returns a matcher over the given options.
func NewMatcher(opts Options) *Matcher {
	if opts.K <= 0 {
		opts.K = 3
	}
	return &Matcher{Opts: opts}
}

type blockKey struct{ r, t uint64 }

// Compare computes the similarity of target tgt against reference ref
// (paper Algorithm 1: FunctionsMatchScore).
func (m *Matcher) Compare(ref, tgt *Decomposed) Result {
	res := Result{Name: tgt.Name, RefTracelets: len(ref.Tracelets)}
	if len(ref.Tracelets) == 0 {
		return res
	}
	cache := make(map[blockKey]*align.Alignment)
	if m.Opts.DedupeQuery {
		// Identical reference tracelets match identically: evaluate one
		// representative per content group and multiply.
		groups := make(map[uint64][]int, len(ref.Tracelets))
		order := make([]uint64, 0, len(ref.Tracelets))
		for ri, r := range ref.Tracelets {
			h := r.Hash()
			if _, seen := groups[h]; !seen {
				order = append(order, h)
			}
			groups[h] = append(groups[h], ri)
		}
		for _, h := range order {
			idx := groups[h]
			ri := idx[0]
			matched, viaRewrite := m.traceletMatch(ref, tgt, ri, ref.Tracelets[ri], cache, &res)
			switch {
			case matched && viaRewrite:
				res.MatchedRewrite += len(idx)
			case matched:
				res.MatchedDirect += len(idx)
			}
		}
	} else {
		for ri, r := range ref.Tracelets {
			matched, viaRewrite := m.traceletMatch(ref, tgt, ri, r, cache, &res)
			switch {
			case matched && viaRewrite:
				res.MatchedRewrite++
			case matched:
				res.MatchedDirect++
			}
		}
	}
	res.SimilarityScore = float64(res.Matched()) / float64(len(ref.Tracelets))
	res.IsMatch = res.SimilarityScore > m.Opts.Alpha
	return res
}

// traceletMatch looks for any target tracelet matching reference tracelet
// ri. It returns (matched, matched-only-after-rewrite).
func (m *Matcher) traceletMatch(ref, tgt *Decomposed, ri int, r *tracelet.Tracelet,
	cache map[blockKey]*align.Alignment, res *Result) (bool, bool) {

	rIdent := ref.ident[ri]
	type rewriteCand struct {
		ti   int
		al   align.Alignment
		norm float64
	}
	var cands []rewriteCand
	for ti, t := range tgt.Tracelets {
		if t.K() != r.K() {
			continue
		}
		res.PairsCompared++
		al := m.alignCached(ref, tgt, ri, ti, cache)
		norm := align.Norm(al.Score, rIdent, tgt.ident[ti], m.Opts.Norm)
		if norm > m.Opts.Beta {
			return true, false
		}
		if m.Opts.UseRewrite && norm >= m.Opts.RewriteSkipBelow {
			cands = append(cands, rewriteCand{ti: ti, al: al, norm: norm})
		}
	}
	// No syntactic match: attempt rewrites on the plausible candidates,
	// best pre-score first.
	for len(cands) > 0 {
		best := 0
		for i := range cands {
			if cands[i].norm > cands[best].norm {
				best = i
			}
		}
		c := cands[best]
		cands[best] = cands[len(cands)-1]
		cands = cands[:len(cands)-1]

		t := tgt.Tracelets[c.ti]
		res.PairsRewritten++
		rw := rewrite.Rewrite(r.Blocks, t.Blocks, c.al)
		score := align.ScoreBlocks(r.Blocks, rw.Blocks)
		tIdent := align.IdentityScore(flatten(rw.Blocks))
		norm := align.Norm(score, rIdent, tIdent, m.Opts.Norm)
		if norm > m.Opts.Beta {
			return true, true
		}
	}
	return false, false
}

// alignCached computes the blockwise alignment of tracelet pair (ri, ti),
// assembling it from cached per-block alignments.
func (m *Matcher) alignCached(ref, tgt *Decomposed, ri, ti int,
	cache map[blockKey]*align.Alignment) align.Alignment {

	r, t := ref.Tracelets[ri], tgt.Tracelets[ti]
	var out align.Alignment
	refOff, tgtOff := 0, 0
	for bi := range r.Blocks {
		key := blockKey{ref.blockHash[ri][bi], tgt.blockHash[ti][bi]}
		ba, ok := cache[key]
		if !ok {
			a := align.Align(r.Blocks[bi], t.Blocks[bi])
			ba = &a
			cache[key] = ba
		}
		out.Score += ba.Score
		for _, p := range ba.Pairs {
			out.Pairs = append(out.Pairs, align.Pair{Ref: p.Ref + refOff, Tgt: p.Tgt + tgtOff})
		}
		for _, d := range ba.Deleted {
			out.Deleted = append(out.Deleted, d+refOff)
		}
		for _, ins := range ba.Inserted {
			out.Inserted = append(out.Inserted, ins+tgtOff)
		}
		refOff += len(r.Blocks[bi])
		tgtOff += len(t.Blocks[bi])
	}
	return out
}

func flatten(blocks [][]asm.Inst) []asm.Inst {
	var out []asm.Inst
	for _, b := range blocks {
		out = append(out, b...)
	}
	return out
}

// CompareMany compares the reference against every target in parallel and
// returns results in target order.
func (m *Matcher) CompareMany(ref *Decomposed, targets []*Decomposed) []Result {
	workers := m.Opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]Result, len(targets))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = m.Compare(ref, targets[i])
			}
		}()
	}
	for i := range targets {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}
