// Package core implements function-to-function similarity by tracelet
// decomposition (paper Section 4.2, Algorithm 1): both functions are
// decomposed into k-tracelets, every reference tracelet is compared
// against every target tracelet — alignment, constraint-based rewriting,
// re-scoring — and the fraction of reference tracelets that found a match
// above the tracelet threshold β becomes the function similarity score,
// thresholded by α for a match verdict.
//
// The block-granularity optimization of Section 5.2 is applied: alignments
// are computed per basic-block pair and cached, so a block shared by many
// tracelets is aligned once per target block.
package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/align"
	"repro/internal/asm"
	"repro/internal/prep"
	"repro/internal/rewrite"
	"repro/internal/telemetry"
	"repro/internal/tracelet"
)

// Options configures the matcher. The zero value is not useful; use
// DefaultOptions.
type Options struct {
	K     int          // tracelet size in basic blocks
	Beta  float64      // tracelet match threshold (paper β, 0..1)
	Alpha float64      // function coverage-rate threshold (paper α, 0..1)
	Norm  align.Method // score normalization

	// UseRewrite enables the constraint-based rewrite engine for tracelet
	// pairs that do not match syntactically (paper Section 4.4).
	UseRewrite bool
	// RewriteSkipBelow skips the rewrite attempt for pairs whose
	// pre-rewrite normalized score is below this value — the postmortem
	// optimization of Section 6.3 (tracelets scoring below 50% are not
	// improved by rewriting). Zero always attempts the rewrite.
	RewriteSkipBelow float64
	// DedupeQuery evaluates each distinct reference tracelet once and
	// multiplies the verdict across identical copies — one of the
	// search-engine optimizations the paper's prototype deferred
	// (Section 6.3). It never changes scores, only work.
	DedupeQuery bool
	// Workers bounds parallelism in CompareMany. 0 means
	// runtime.GOMAXPROCS(0); negative values are clamped to 1 (serial).
	Workers int

	// Tel, when non-nil, receives matcher telemetry: stage counters
	// (block-cache hits/misses, rewrites attempted/skipped/succeeded,
	// dedupe savings) and latency histograms (per compare, per tracelet
	// pair, per rewrite attempt). A nil collector disables instrumentation
	// at negligible cost.
	Tel *telemetry.Collector
	// Trace, when non-nil, receives one child span per Compare call
	// carrying the match-decision trail (per-tracelet attributes). It is
	// a per-query object: set it on the Options of one search, not on a
	// long-lived default. Safe under CompareMany parallelism.
	Trace *telemetry.Span
}

// DefaultOptions returns the configuration the paper found best: k=3,
// β=0.8 (anywhere in the robust 0.7-0.9 plateau of Table 2), ratio
// normalization, rewriting enabled with the 50% skip optimization.
func DefaultOptions() Options {
	return Options{
		K:                3,
		Beta:             0.8,
		Alpha:            0.5,
		Norm:             align.Ratio,
		UseRewrite:       true,
		RewriteSkipBelow: 0.5,
	}
}

// Decomposed is a function decomposed into k-tracelets with precomputed
// per-block hashes and identity scores.
type Decomposed struct {
	Name      string
	K         int
	Tracelets []*tracelet.Tracelet
	NumBlocks int
	NumInsts  int

	blockHash [][]uint64 // per tracelet, per block
	ident     []int      // identity score per tracelet
}

// Decompose extracts and preprocesses the k-tracelets of a lifted function.
func Decompose(fn *prep.Function, k int) *Decomposed {
	ts := tracelet.Extract(fn.Graph, k)
	d := &Decomposed{
		Name:      fn.Name,
		K:         k,
		Tracelets: ts,
		NumBlocks: len(fn.Graph.Blocks),
		NumInsts:  fn.Graph.NumInsts(),
		blockHash: make([][]uint64, len(ts)),
		ident:     make([]int, len(ts)),
	}
	// Hash every distinct block once; tracelets share block slices.
	type blockID struct {
		first *asm.Inst
		n     int
	}
	hashCache := make(map[blockID]uint64)
	for i, t := range ts {
		d.blockHash[i] = make([]uint64, len(t.Blocks))
		for j, blk := range t.Blocks {
			var id blockID
			if len(blk) > 0 {
				id = blockID{&blk[0], len(blk)}
			}
			h, ok := hashCache[id]
			if !ok {
				h = hashInsts(blk)
				hashCache[id] = h
			}
			d.blockHash[i][j] = h
		}
		d.ident[i] = align.IdentityScore(t.Insts())
	}
	return d
}

// Fingerprint returns a stable 64-bit content hash of the decomposition:
// two functions with identical tracelet content (for the same k) collide,
// different content essentially never does. Result caches key on it.
func (d *Decomposed) Fingerprint() uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h = (h ^ (v & 0xff)) * prime64
			v >>= 8
		}
	}
	mix(uint64(d.K))
	mix(uint64(d.NumBlocks))
	mix(uint64(d.NumInsts))
	for _, t := range d.Tracelets {
		mix(t.Hash())
	}
	return h
}

// DecomposeT is Decompose with telemetry: the decomposition is timed into
// tel's decompose-latency histogram and counted. A nil collector makes it
// identical to Decompose.
func DecomposeT(fn *prep.Function, k int, tel *telemetry.Collector) *Decomposed {
	t := tel.StartTimer(telemetry.DecomposeLatency)
	d := Decompose(fn, k)
	t.Stop()
	tel.Inc(telemetry.FunctionsDecomposed)
	return d
}

func hashInsts(insts []asm.Inst) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, in := range insts {
		for _, b := range []byte(in.String()) {
			h = (h ^ uint64(b)) * prime64
		}
		h = (h ^ '\n') * prime64
	}
	return h
}

// Result is the outcome of one function-to-function comparison.
type Result struct {
	Name            string  // target function name
	SimilarityScore float64 // coverage rate of reference tracelets
	IsMatch         bool

	RefTracelets   int // |RefTracelets|
	MatchedDirect  int // matched before any rewrite
	MatchedRewrite int // matched only after the rewrite
	PairsCompared  int
	PairsRewritten int
}

// Matched returns the total number of matched reference tracelets.
func (r Result) Matched() int { return r.MatchedDirect + r.MatchedRewrite }

// Matcher compares decomposed functions.
type Matcher struct {
	Opts Options
}

// NewMatcher returns a matcher over the given options.
func NewMatcher(opts Options) *Matcher {
	if opts.K <= 0 {
		opts.K = 3
	}
	return &Matcher{Opts: opts}
}

type blockKey struct{ r, t uint64 }

// cmpStats tallies one Compare locally (no atomics in the inner loops);
// finishCompare flushes it to the collector in a handful of atomic adds.
type cmpStats struct {
	cacheHits   uint64
	cacheMisses uint64
	rwAttempted uint64
	rwSkipped   uint64
	rwSucceeded uint64
	dedupeSaved uint64
}

// cmpCtx carries the per-Compare block-alignment cache, telemetry sink
// and (optional) trace span through the tracelet loops.
type cmpCtx struct {
	cache   map[blockKey]*align.Alignment
	tel     *telemetry.Collector
	span    *telemetry.Span
	stats   cmpStats
	pairSeq uint64 // pairs seen; drives 1-in-8 pair-latency sampling
}

// pairTimer returns a running PairLatency timer for one pair in eight
// (the zero Timer otherwise). Timing every pair costs two clock reads on
// a path that is often just a cache lookup, which benchmarks showed at
// ~7% Compare overhead; uniform sampling keeps the histogram
// representative at ~1/8 of that cost.
func (ctx *cmpCtx) pairTimer() telemetry.Timer {
	if ctx.tel == nil {
		return telemetry.Timer{}
	}
	seq := ctx.pairSeq
	ctx.pairSeq++
	if seq&7 != 0 {
		return telemetry.Timer{}
	}
	return ctx.tel.StartTimer(telemetry.PairLatency)
}

// Compare computes the similarity of target tgt against reference ref
// (paper Algorithm 1: FunctionsMatchScore).
func (m *Matcher) Compare(ref, tgt *Decomposed) Result {
	ct := m.Opts.Tel.StartTimer(telemetry.CompareLatency)
	res := Result{Name: tgt.Name, RefTracelets: len(ref.Tracelets)}
	ctx := &cmpCtx{tel: m.Opts.Tel}
	if m.Opts.Trace != nil {
		ctx.span = m.Opts.Trace.Child("compare:" + tgt.Name)
	}
	if len(ref.Tracelets) > 0 {
		ctx.cache = make(map[blockKey]*align.Alignment)
		if m.Opts.DedupeQuery {
			// Identical reference tracelets match identically: evaluate one
			// representative per content group and multiply.
			groups := make(map[uint64][]int, len(ref.Tracelets))
			order := make([]uint64, 0, len(ref.Tracelets))
			for ri, r := range ref.Tracelets {
				h := r.Hash()
				if _, seen := groups[h]; !seen {
					order = append(order, h)
				}
				groups[h] = append(groups[h], ri)
			}
			for _, h := range order {
				idx := groups[h]
				ri := idx[0]
				ctx.stats.dedupeSaved += uint64(len(idx) - 1)
				matched, viaRewrite := m.traceletMatch(ref, tgt, ri, ref.Tracelets[ri], ctx, &res)
				switch {
				case matched && viaRewrite:
					res.MatchedRewrite += len(idx)
				case matched:
					res.MatchedDirect += len(idx)
				}
			}
		} else {
			for ri, r := range ref.Tracelets {
				matched, viaRewrite := m.traceletMatch(ref, tgt, ri, r, ctx, &res)
				switch {
				case matched && viaRewrite:
					res.MatchedRewrite++
				case matched:
					res.MatchedDirect++
				}
			}
		}
		res.SimilarityScore = float64(res.Matched()) / float64(len(ref.Tracelets))
		res.IsMatch = res.SimilarityScore > m.Opts.Alpha
	}
	m.finishCompare(&res, ctx, ct)
	return res
}

// finishCompare flushes the local tally into the collector and closes the
// compare span with the decision summary.
func (m *Matcher) finishCompare(res *Result, ctx *cmpCtx, ct telemetry.Timer) {
	ct.Stop()
	tel, st := ctx.tel, &ctx.stats
	tel.Inc(telemetry.Compares)
	tel.Add(telemetry.PairsCompared, uint64(res.PairsCompared))
	tel.Add(telemetry.BlockCacheHits, st.cacheHits)
	tel.Add(telemetry.BlockCacheMisses, st.cacheMisses)
	tel.Add(telemetry.RewritesAttempted, st.rwAttempted)
	tel.Add(telemetry.RewritesSkipped, st.rwSkipped)
	tel.Add(telemetry.RewritesSucceeded, st.rwSucceeded)
	tel.Add(telemetry.DedupeSavedTracelets, st.dedupeSaved)
	if res.IsMatch {
		tel.Inc(telemetry.Matches)
	}
	if sp := ctx.span; sp != nil {
		sp.Set("ref_tracelets", int64(res.RefTracelets))
		sp.Set("pairs_compared", int64(res.PairsCompared))
		sp.Set("block_cache_hits", int64(st.cacheHits))
		sp.Set("block_cache_misses", int64(st.cacheMisses))
		sp.Set("rewrites_attempted", int64(st.rwAttempted))
		sp.Set("rewrites_skipped", int64(st.rwSkipped))
		sp.Set("rewrites_succeeded", int64(st.rwSucceeded))
		sp.Set("matched_direct", int64(res.MatchedDirect))
		sp.Set("matched_rewrite", int64(res.MatchedRewrite))
		sp.Set("similarity_bp", int64(res.SimilarityScore*10000))
		if res.IsMatch {
			sp.Set("verdict_match", 1)
		} else {
			sp.Set("verdict_match", 0)
		}
		sp.End()
	}
}

// traceletMatch looks for any target tracelet matching reference tracelet
// ri. It returns (matched, matched-only-after-rewrite).
func (m *Matcher) traceletMatch(ref, tgt *Decomposed, ri int, r *tracelet.Tracelet,
	ctx *cmpCtx, res *Result) (bool, bool) {

	var tsp *telemetry.Span
	if ctx.span != nil {
		tsp = ctx.span.Child(fmt.Sprintf("tracelet:%d", ri))
		defer tsp.End()
	}
	rIdent := ref.ident[ri]
	type rewriteCand struct {
		ti   int
		al   align.Alignment
		norm float64
	}
	var cands []rewriteCand
	bestPre := 0.0
	for ti, t := range tgt.Tracelets {
		if t.K() != r.K() {
			continue
		}
		res.PairsCompared++
		pt := ctx.pairTimer()
		al := m.alignCached(ref, tgt, ri, ti, ctx)
		norm := align.Norm(al.Score, rIdent, tgt.ident[ti], m.Opts.Norm)
		pt.Stop()
		if norm > bestPre {
			bestPre = norm
		}
		if norm > m.Opts.Beta {
			if tsp != nil {
				tsp.Set("matched_ti", int64(ti))
				tsp.Set("score_bp", int64(norm*10000))
				tsp.Set("via_rewrite", 0)
			}
			return true, false
		}
		if m.Opts.UseRewrite {
			if norm >= m.Opts.RewriteSkipBelow {
				cands = append(cands, rewriteCand{ti: ti, al: al, norm: norm})
			} else {
				ctx.stats.rwSkipped++
			}
		}
	}
	if tsp != nil {
		tsp.Set("best_pre_score_bp", int64(bestPre*10000))
		tsp.Set("rewrite_candidates", int64(len(cands)))
	}
	// No syntactic match: attempt rewrites on the plausible candidates,
	// best pre-score first.
	for len(cands) > 0 {
		best := 0
		for i := range cands {
			if cands[i].norm > cands[best].norm {
				best = i
			}
		}
		c := cands[best]
		cands[best] = cands[len(cands)-1]
		cands = cands[:len(cands)-1]

		t := tgt.Tracelets[c.ti]
		res.PairsRewritten++
		ctx.stats.rwAttempted++
		rt := ctx.tel.StartTimer(telemetry.RewriteLatency)
		rw := rewrite.RewriteT(r.Blocks, t.Blocks, c.al, ctx.tel)
		score := align.ScoreBlocks(r.Blocks, rw.Blocks)
		tIdent := align.IdentityScore(flatten(rw.Blocks))
		norm := align.Norm(score, rIdent, tIdent, m.Opts.Norm)
		rt.Stop()
		if norm > m.Opts.Beta {
			ctx.stats.rwSucceeded++
			if tsp != nil {
				tsp.Set("matched_ti", int64(c.ti))
				tsp.Set("score_bp", int64(norm*10000))
				tsp.Set("via_rewrite", 1)
			}
			return true, true
		}
	}
	if tsp != nil {
		tsp.Set("via_rewrite", -1) // unmatched
	}
	return false, false
}

// alignCached computes the blockwise alignment of tracelet pair (ri, ti),
// assembling it from cached per-block alignments.
func (m *Matcher) alignCached(ref, tgt *Decomposed, ri, ti int, ctx *cmpCtx) align.Alignment {
	r, t := ref.Tracelets[ri], tgt.Tracelets[ti]
	var out align.Alignment
	refOff, tgtOff := 0, 0
	for bi := range r.Blocks {
		key := blockKey{ref.blockHash[ri][bi], tgt.blockHash[ti][bi]}
		ba, ok := ctx.cache[key]
		if !ok {
			ctx.stats.cacheMisses++
			a := align.Align(r.Blocks[bi], t.Blocks[bi])
			ba = &a
			ctx.cache[key] = ba
		} else {
			ctx.stats.cacheHits++
		}
		out.Score += ba.Score
		for _, p := range ba.Pairs {
			out.Pairs = append(out.Pairs, align.Pair{Ref: p.Ref + refOff, Tgt: p.Tgt + tgtOff})
		}
		for _, d := range ba.Deleted {
			out.Deleted = append(out.Deleted, d+refOff)
		}
		for _, ins := range ba.Inserted {
			out.Inserted = append(out.Inserted, ins+tgtOff)
		}
		refOff += len(r.Blocks[bi])
		tgtOff += len(t.Blocks[bi])
	}
	return out
}

func flatten(blocks [][]asm.Inst) []asm.Inst {
	var out []asm.Inst
	for _, b := range blocks {
		out = append(out, b...)
	}
	return out
}

// CompareMany compares the reference against every target in parallel and
// returns results in target order. Opts.Workers bounds the parallelism:
// 0 means runtime.GOMAXPROCS(0), negative values are clamped to 1.
func (m *Matcher) CompareMany(ref *Decomposed, targets []*Decomposed) []Result {
	workers := m.Opts.Workers
	switch {
	case workers == 0:
		workers = runtime.GOMAXPROCS(0)
	case workers < 0:
		workers = 1
	}
	out := make([]Result, len(targets))
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = m.Compare(ref, targets[i])
			}
		}()
	}
	for i := range targets {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}
