package core

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/prep"
)

// benchLift is liftListing for benchmarks (testing.TB instead of *testing.T).
func benchLift(tb testing.TB, name, src string) *prep.Function {
	tb.Helper()
	insts, labels, err := asm.ParseListing(src)
	if err != nil {
		tb.Fatal(err)
	}
	g, err := cfg.BuildListing(name, insts, labels)
	if err != nil {
		tb.Fatal(err)
	}
	return &prep.Function{Name: name, Graph: g}
}

// BenchmarkCompare measures one full function-vs-function comparison on
// the doCommand1 pair from the paper: a true match (renamed compile) and
// a true mismatch, with the score-bound pruner on and off. -benchmem
// shows the effect of the pooled DP buffers and score matrices.
func BenchmarkCompare(b *testing.B) {
	ref := Decompose(benchLift(b, "a", srcA), 3)
	match := Decompose(benchLift(b, "a2", srcARenamed), 3)
	miss := Decompose(benchLift(b, "b", srcB), 3)

	for _, bc := range []struct {
		name  string
		tgt   *Decomposed
		prune bool
	}{
		{"match/pruned", match, true},
		{"match/exhaustive", match, false},
		{"miss/pruned", miss, true},
		{"miss/exhaustive", miss, false},
	} {
		b.Run(bc.name, func(b *testing.B) {
			opts := DefaultOptions()
			opts.Prune = bc.prune
			m := NewMatcher(opts)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := m.Compare(ref, bc.tgt)
				if res.RefTracelets == 0 {
					b.Fatal("empty result")
				}
			}
		})
	}
}
