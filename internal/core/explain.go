package core

import (
	"repro/internal/align"
	"repro/internal/rewrite"
)

// TraceletMatch explains one matched reference tracelet: which target
// tracelet it matched, at what normalized score, whether the rewrite
// engine was needed, and which instructions were inserted/deleted — the
// accountability output the paper argues for (Sections 1 and 4.3).
type TraceletMatch struct {
	RefIndex   int     // index into the reference decomposition
	TgtIndex   int     // index into the target decomposition
	RefBlocks  []int   // basic-block numbers in the reference function
	TgtBlocks  []int   // basic-block numbers in the target function
	Score      float64 // normalized score of the accepted match
	ViaRewrite bool
	// Inserted and Deleted are instruction indices (into the concatenated
	// tracelet sequences) that did not align: inserted exist only in the
	// target, deleted only in the reference.
	Inserted []int
	Deleted  []int
}

// Explain runs the comparison like Compare but records, for every matched
// reference tracelet, the accepted target tracelet and alignment detail.
func (m *Matcher) Explain(ref, tgt *Decomposed) []TraceletMatch {
	var out []TraceletMatch
	cache := make(map[blockKey]*align.Alignment)
	for ri, r := range ref.Tracelets {
		rIdent := ref.ident[ri]
		found := false
		// Pass 1: syntactic matches.
		for ti, t := range tgt.Tracelets {
			if t.K() != r.K() {
				continue
			}
			al := m.alignCached(ref, tgt, ri, ti, cache)
			norm := align.Norm(al.Score, rIdent, tgt.ident[ti], m.Opts.Norm)
			if norm > m.Opts.Beta {
				out = append(out, TraceletMatch{
					RefIndex: ri, TgtIndex: ti,
					RefBlocks: r.BlockIdx, TgtBlocks: t.BlockIdx,
					Score: norm, Inserted: al.Inserted, Deleted: al.Deleted,
				})
				found = true
				break
			}
		}
		if found || !m.Opts.UseRewrite {
			continue
		}
		// Pass 2: rewrite attempts in descending pre-score order, exactly
		// as Compare does.
		type cand struct {
			ti   int
			al   align.Alignment
			norm float64
		}
		var cands []cand
		for ti, t := range tgt.Tracelets {
			if t.K() != r.K() {
				continue
			}
			al := m.alignCached(ref, tgt, ri, ti, cache)
			norm := align.Norm(al.Score, rIdent, tgt.ident[ti], m.Opts.Norm)
			if norm >= m.Opts.RewriteSkipBelow {
				cands = append(cands, cand{ti, al, norm})
			}
		}
		for len(cands) > 0 {
			best := 0
			for i := range cands {
				if cands[i].norm > cands[best].norm {
					best = i
				}
			}
			c := cands[best]
			cands[best] = cands[len(cands)-1]
			cands = cands[:len(cands)-1]
			t := tgt.Tracelets[c.ti]
			rw := rewrite.Rewrite(r.Blocks, t.Blocks, c.al)
			score := align.ScoreBlocks(r.Blocks, rw.Blocks)
			tIdent := align.IdentityScore(flatten(rw.Blocks))
			norm := align.Norm(score, rIdent, tIdent, m.Opts.Norm)
			if norm > m.Opts.Beta {
				post := align.AlignBlocks(r.Blocks, rw.Blocks)
				out = append(out, TraceletMatch{
					RefIndex: ri, TgtIndex: c.ti,
					RefBlocks: r.BlockIdx, TgtBlocks: t.BlockIdx,
					Score: norm, ViaRewrite: true,
					Inserted: post.Inserted, Deleted: post.Deleted,
				})
				break
			}
		}
	}
	return out
}

// BestScores returns, for every reference tracelet, the best normalized
// score achievable against any target tracelet: pre is without the
// rewrite engine, post is the best after rewriting every plausible
// candidate (pre-score >= RewriteSkipBelow). It lets callers evaluate any
// tracelet threshold β in one pass: a reference tracelet matches under β
// iff max(pre, post) > β.
func (m *Matcher) BestScores(ref, tgt *Decomposed) (pre, post []float64) {
	pre = make([]float64, len(ref.Tracelets))
	post = make([]float64, len(ref.Tracelets))
	cache := make(map[blockKey]*align.Alignment)
	for ri, r := range ref.Tracelets {
		rIdent := ref.ident[ri]
		for ti, t := range tgt.Tracelets {
			if t.K() != r.K() {
				continue
			}
			al := m.alignCached(ref, tgt, ri, ti, cache)
			norm := align.Norm(al.Score, rIdent, tgt.ident[ti], m.Opts.Norm)
			if norm > pre[ri] {
				pre[ri] = norm
			}
			if norm >= 0.999 {
				continue // already perfect; rewriting cannot help
			}
			if m.Opts.UseRewrite && norm >= m.Opts.RewriteSkipBelow {
				rw := rewrite.Rewrite(r.Blocks, t.Blocks, al)
				score := align.ScoreBlocks(r.Blocks, rw.Blocks)
				tIdent := align.IdentityScore(flatten(rw.Blocks))
				pnorm := align.Norm(score, rIdent, tIdent, m.Opts.Norm)
				if pnorm > post[ri] {
					post[ri] = pnorm
				}
			}
		}
		if pre[ri] > post[ri] {
			post[ri] = pre[ri]
		}
	}
	return pre, post
}
