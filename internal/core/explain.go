package core

import (
	"sort"

	"repro/internal/align"
	"repro/internal/rewrite"
	"repro/internal/telemetry"
)

// TraceletMatch explains one matched reference tracelet: which target
// tracelet it matched, at what normalized score, whether the rewrite
// engine was needed, and which instructions were inserted/deleted — the
// accountability output the paper argues for (Sections 1 and 4.3).
type TraceletMatch struct {
	RefIndex   int     // index into the reference decomposition
	TgtIndex   int     // index into the target decomposition
	RefBlocks  []int   // basic-block numbers in the reference function
	TgtBlocks  []int   // basic-block numbers in the target function
	Score      float64 // normalized score of the accepted match
	ViaRewrite bool
	// Inserted and Deleted are instruction indices (into the concatenated
	// tracelet sequences) that did not align: inserted exist only in the
	// target, deleted only in the reference.
	Inserted []int
	Deleted  []int
}

// Explain runs the comparison like Compare but records, for every matched
// reference tracelet, the accepted target tracelet and alignment detail.
// Like Compare it reports to Opts.Tel (cache hit/miss counts, rewrite
// attempted/skipped/succeeded) so callers can print a telemetry line next
// to the evidence; note the two-pass structure revisits pairs, so cache
// hit rates run higher than Compare's on the same input. Explain never
// prunes: its job is evidence, not throughput.
func (m *Matcher) Explain(ref, tgt *Decomposed) []TraceletMatch {
	var out []TraceletMatch
	ctx := newCmpCtx(ref, tgt, m.Opts.Tel)
	for ri, r := range ref.Tracelets {
		rIdent := ref.ident[ri]
		found := false
		// Pass 1: syntactic matches. Score-only scan; the traceback runs
		// just for the accepted pair's evidence.
		for ti, t := range tgt.Tracelets {
			if t.K() != r.K() {
				continue
			}
			norm := align.Norm(ctx.pairScore(ri, ti), rIdent, tgt.ident[ti], m.Opts.Norm)
			if norm > m.Opts.Beta {
				al := ctx.alignPair(ri, ti)
				out = append(out, TraceletMatch{
					RefIndex: ri, TgtIndex: ti,
					RefBlocks: r.BlockIdx, TgtBlocks: t.BlockIdx,
					Score: norm, Inserted: al.Inserted, Deleted: al.Deleted,
				})
				found = true
				break
			}
		}
		if found || !m.Opts.UseRewrite {
			continue
		}
		// Pass 2: rewrite attempts in descending pre-score order, exactly
		// as Compare does.
		type cand struct {
			ti   int
			norm float64
		}
		var cands []cand
		for ti, t := range tgt.Tracelets {
			if t.K() != r.K() {
				continue
			}
			norm := align.Norm(ctx.pairScore(ri, ti), rIdent, tgt.ident[ti], m.Opts.Norm)
			if norm >= m.Opts.RewriteSkipBelow {
				cands = append(cands, cand{ti, norm})
			} else {
				ctx.stats.rwSkipped++
			}
		}
		sort.SliceStable(cands, func(i, j int) bool { return cands[i].norm > cands[j].norm })
		for _, c := range cands {
			t := tgt.Tracelets[c.ti]
			ctx.stats.rwAttempted++
			al := ctx.alignPair(ri, c.ti)
			rt := ctx.tel.StartTimer(telemetry.RewriteLatency)
			rw := rewrite.RewriteT(r.Blocks, t.Blocks, al, ctx.tel)
			score := align.ScoreBlocks(r.Blocks, rw.Blocks)
			tIdent := align.IdentityScore(flatten(rw.Blocks))
			norm := align.Norm(score, rIdent, tIdent, m.Opts.Norm)
			rt.Stop()
			if norm > m.Opts.Beta {
				ctx.stats.rwSucceeded++
				post := align.AlignBlocks(r.Blocks, rw.Blocks)
				out = append(out, TraceletMatch{
					RefIndex: ri, TgtIndex: c.ti,
					RefBlocks: r.BlockIdx, TgtBlocks: t.BlockIdx,
					Score: norm, ViaRewrite: true,
					Inserted: post.Inserted, Deleted: post.Deleted,
				})
				break
			}
		}
	}
	tel := ctx.tel
	tel.Add(telemetry.BlockCacheHits, ctx.stats.cacheHits)
	tel.Add(telemetry.BlockCacheMisses, ctx.stats.cacheMisses)
	tel.Add(telemetry.RewritesAttempted, ctx.stats.rwAttempted)
	tel.Add(telemetry.RewritesSkipped, ctx.stats.rwSkipped)
	tel.Add(telemetry.RewritesSucceeded, ctx.stats.rwSucceeded)
	ctx.release()
	return out
}

// BestScores returns, for every reference tracelet, the best normalized
// score achievable against any target tracelet: pre is without the
// rewrite engine, post is the best after rewriting every plausible
// candidate (pre-score >= RewriteSkipBelow). It lets callers evaluate any
// tracelet threshold β in one pass: a reference tracelet matches under β
// iff max(pre, post) > β. Like Explain, it never prunes.
func (m *Matcher) BestScores(ref, tgt *Decomposed) (pre, post []float64) {
	ct := m.Opts.Tel.StartTimer(telemetry.CompareLatency)
	pre = make([]float64, len(ref.Tracelets))
	post = make([]float64, len(ref.Tracelets))
	ctx := newCmpCtx(ref, tgt, m.Opts.Tel)
	pairs := uint64(0)
	for ri, r := range ref.Tracelets {
		rIdent := ref.ident[ri]
		for ti, t := range tgt.Tracelets {
			if t.K() != r.K() {
				continue
			}
			pairs++
			norm := align.Norm(ctx.pairScore(ri, ti), rIdent, tgt.ident[ti], m.Opts.Norm)
			if norm > pre[ri] {
				pre[ri] = norm
			}
			if norm >= 0.999 {
				continue // already perfect; rewriting cannot help
			}
			if m.Opts.UseRewrite && norm >= m.Opts.RewriteSkipBelow {
				ctx.stats.rwAttempted++
				al := ctx.alignPair(ri, ti)
				rt := ctx.tel.StartTimer(telemetry.RewriteLatency)
				rw := rewrite.RewriteT(r.Blocks, t.Blocks, al, ctx.tel)
				score := align.ScoreBlocks(r.Blocks, rw.Blocks)
				tIdent := align.IdentityScore(flatten(rw.Blocks))
				pnorm := align.Norm(score, rIdent, tIdent, m.Opts.Norm)
				rt.Stop()
				if pnorm > norm {
					ctx.stats.rwSucceeded++ // rewriting improved the pair
				}
				if pnorm > post[ri] {
					post[ri] = pnorm
				}
			} else if m.Opts.UseRewrite {
				ctx.stats.rwSkipped++
			}
		}
		if pre[ri] > post[ri] {
			post[ri] = pre[ri]
		}
	}
	if tel := m.Opts.Tel; tel != nil {
		tel.Inc(telemetry.Compares)
		tel.Add(telemetry.PairsCompared, pairs)
		tel.Add(telemetry.BlockCacheHits, ctx.stats.cacheHits)
		tel.Add(telemetry.BlockCacheMisses, ctx.stats.cacheMisses)
		tel.Add(telemetry.RewritesAttempted, ctx.stats.rwAttempted)
		tel.Add(telemetry.RewritesSkipped, ctx.stats.rwSkipped)
		tel.Add(telemetry.RewritesSucceeded, ctx.stats.rwSucceeded)
	}
	ctx.release()
	ct.Stop()
	return pre, post
}
