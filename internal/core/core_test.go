package core

import (
	"testing"

	"repro/internal/align"
	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/prep"
	"repro/internal/telemetry"
)

// liftListing builds a prep.Function directly from a listing (no binary
// round trip needed for matcher unit tests).
func liftListing(t *testing.T, name, src string) *prep.Function {
	t.Helper()
	insts, labels, err := asm.ParseListing(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.BuildListing(name, insts, labels)
	if err != nil {
		t.Fatal(err)
	}
	return &prep.Function{Name: name, Graph: g}
}

// srcA is a small function in the shape of the paper's doCommand1.
const srcA = `
	push ebp
	mov ebp, esp
	sub esp, 18h
	mov esi, [ebp+arg_0]
	mov [ebp+var_4], esi
	cmp esi, 1
	jz b3
	mov ecx, [ebp+var_4]
	add ecx, esi
	cmp ecx, 2
	jnz b5
	mov edx, [ebp+var_4]
	push edx
	push offset aMsg
	call _printf
	jmp b5
b3:
	mov ecx, 1
	mov [ebp+var_8], ecx
	push ecx
	call _printf
b5:
	mov eax, 1
	mov esp, ebp
	pop ebp
	retn
`

// srcARenamed is srcA compiled "in a different context": registers and
// stack layout changed throughout, same structure and semantics.
const srcARenamed = `
	push ebp
	mov ebp, esp
	sub esp, 28h
	mov ebx, [ebp+arg_0]
	mov [ebp+var_C], ebx
	cmp ebx, 1
	jz b3
	mov edi, [ebp+var_C]
	add edi, ebx
	cmp edi, 2
	jnz b5
	mov esi, [ebp+var_C]
	push esi
	push offset aMsg
	call _printf
	jmp b5
b3:
	mov edi, 1
	mov [ebp+var_18], edi
	push edi
	call _printf
b5:
	mov eax, 1
	mov esp, ebp
	pop ebp
	retn
`

// srcB is structurally similar but entirely different code.
const srcB = `
	mov eax, [esp+4]
	test eax, eax
	jz zero
	imul eax, eax, 0Ch
	shr eax, 2
	jmp out_
zero:
	xor eax, eax
out_:
	retn
`

func TestSelfSimilarityIsPerfect(t *testing.T) {
	m := NewMatcher(DefaultOptions())
	d := Decompose(liftListing(t, "a", srcA), 3)
	if len(d.Tracelets) == 0 {
		t.Fatal("no tracelets extracted")
	}
	res := m.Compare(d, d)
	if res.SimilarityScore != 1.0 {
		t.Errorf("self similarity = %v, want 1.0", res.SimilarityScore)
	}
	if !res.IsMatch {
		t.Error("self comparison should match")
	}
	if res.MatchedRewrite != 0 {
		t.Errorf("self comparison needed %d rewrites", res.MatchedRewrite)
	}
	if res.MatchedDirect != res.RefTracelets {
		t.Errorf("direct matches %d != ref tracelets %d", res.MatchedDirect, res.RefTracelets)
	}
}

func TestRenamedVersionMatchesViaRewrite(t *testing.T) {
	m := NewMatcher(DefaultOptions())
	ref := Decompose(liftListing(t, "a", srcA), 3)
	tgt := Decompose(liftListing(t, "a2", srcARenamed), 3)
	res := m.Compare(ref, tgt)
	if !res.IsMatch {
		t.Errorf("renamed version should match: %+v", res)
	}
	if res.SimilarityScore < 0.99 {
		t.Errorf("renamed similarity = %v, want ~1.0", res.SimilarityScore)
	}
	// Some tracelets need the rewrite engine (register/offset changes).
	if res.MatchedRewrite == 0 {
		t.Errorf("expected some rewrite-only matches: %+v", res)
	}
}

func TestRewriteDisabledMissesRenames(t *testing.T) {
	opts := DefaultOptions()
	opts.UseRewrite = false
	m := NewMatcher(opts)
	ref := Decompose(liftListing(t, "a", srcA), 3)
	tgt := Decompose(liftListing(t, "a2", srcARenamed), 3)
	without := m.Compare(ref, tgt)

	opts.UseRewrite = true
	with := NewMatcher(opts).Compare(ref, tgt)
	if without.Matched() >= with.Matched() {
		t.Errorf("rewrite should increase matches: without=%d with=%d",
			without.Matched(), with.Matched())
	}
}

func TestUnrelatedFunctionScoresLow(t *testing.T) {
	m := NewMatcher(DefaultOptions())
	ref := Decompose(liftListing(t, "a", srcA), 3)
	tgt := Decompose(liftListing(t, "b", srcB), 3)
	res := m.Compare(ref, tgt)
	if res.IsMatch {
		t.Errorf("unrelated functions matched: %+v", res)
	}
	if res.SimilarityScore > 0.3 {
		t.Errorf("unrelated similarity = %v, want low", res.SimilarityScore)
	}
}

func TestK1Matching(t *testing.T) {
	opts := DefaultOptions()
	opts.K = 1
	m := NewMatcher(opts)
	ref := Decompose(liftListing(t, "a", srcA), 1)
	tgt := Decompose(liftListing(t, "a2", srcARenamed), 1)
	res := m.Compare(ref, tgt)
	if !res.IsMatch {
		t.Errorf("k=1 renamed comparison should still match: %+v", res)
	}
}

func TestEmptyReference(t *testing.T) {
	m := NewMatcher(DefaultOptions())
	// Single-block function has no 3-tracelets.
	small := Decompose(liftListing(t, "s", "mov eax, 1\nretn"), 3)
	other := Decompose(liftListing(t, "a", srcA), 3)
	res := m.Compare(small, other)
	if res.SimilarityScore != 0 || res.IsMatch {
		t.Errorf("empty reference result: %+v", res)
	}
}

func TestCompareManyMatchesCompare(t *testing.T) {
	m := NewMatcher(DefaultOptions())
	ref := Decompose(liftListing(t, "a", srcA), 3)
	targets := []*Decomposed{
		Decompose(liftListing(t, "a2", srcARenamed), 3),
		Decompose(liftListing(t, "b", srcB), 3),
		Decompose(liftListing(t, "a3", srcA), 3),
	}
	many := m.CompareMany(ref, targets)
	if len(many) != 3 {
		t.Fatalf("got %d results", len(many))
	}
	for i, tgt := range targets {
		single := m.Compare(ref, tgt)
		if many[i].SimilarityScore != single.SimilarityScore || many[i].Name != single.Name {
			t.Errorf("CompareMany[%d] = %+v, Compare = %+v", i, many[i], single)
		}
	}
	if !many[0].IsMatch || many[1].IsMatch || !many[2].IsMatch {
		t.Errorf("match pattern wrong: %v %v %v", many[0].IsMatch, many[1].IsMatch, many[2].IsMatch)
	}
}

func TestResultAccounting(t *testing.T) {
	m := NewMatcher(DefaultOptions())
	ref := Decompose(liftListing(t, "a", srcA), 3)
	tgt := Decompose(liftListing(t, "a2", srcARenamed), 3)
	res := m.Compare(ref, tgt)
	if res.Matched() > res.RefTracelets {
		t.Errorf("matched %d > ref tracelets %d", res.Matched(), res.RefTracelets)
	}
	if res.PairsCompared == 0 {
		t.Error("no pairs compared")
	}
	if got := res.MatchedDirect + res.MatchedRewrite; got != res.Matched() {
		t.Errorf("Matched() inconsistent: %d", got)
	}
}

func TestContainmentNormalization(t *testing.T) {
	opts := DefaultOptions()
	opts.Norm = align.Containment
	m := NewMatcher(opts)
	ref := Decompose(liftListing(t, "a", srcA), 3)
	tgt := Decompose(liftListing(t, "a2", srcARenamed), 3)
	res := m.Compare(ref, tgt)
	if !res.IsMatch {
		t.Errorf("containment normalization should also match: %+v", res)
	}
}

func TestDecomposeStats(t *testing.T) {
	d := Decompose(liftListing(t, "a", srcA), 3)
	if d.NumBlocks == 0 || d.NumInsts == 0 {
		t.Errorf("stats empty: %+v", d)
	}
	if d.K != 3 {
		t.Errorf("K = %d", d.K)
	}
	if len(d.distinct) == 0 {
		t.Fatal("no distinct blocks recorded")
	}
	for i := range d.Tracelets {
		if d.ident[i] != align.IdentityScore(d.Tracelets[i].Insts()) {
			t.Errorf("identity score mismatch at %d", i)
		}
		if len(d.blockID[i]) != d.Tracelets[i].K() {
			t.Errorf("block id count mismatch at %d", i)
		}
		for j, id := range d.blockID[i] {
			b := d.distinct[id]
			if b.hash != hashInsts(d.Tracelets[i].Blocks[j]) {
				t.Errorf("tracelet %d block %d mapped to wrong distinct block", i, j)
			}
			if int(b.ident) != align.IdentityScore(b.insts) {
				t.Errorf("distinct block %d identity score wrong", id)
			}
		}
	}
}

func TestExplainAgreesWithCompare(t *testing.T) {
	m := NewMatcher(DefaultOptions())
	ref := Decompose(liftListing(t, "a", srcA), 3)
	tgt := Decompose(liftListing(t, "a2", srcARenamed), 3)
	res := m.Compare(ref, tgt)
	ex := m.Explain(ref, tgt)
	if len(ex) != res.Matched() {
		t.Errorf("Explain found %d matches, Compare %d", len(ex), res.Matched())
	}
	viaRewrite := 0
	for _, tm := range ex {
		if tm.ViaRewrite {
			viaRewrite++
		}
		if tm.Score <= m.Opts.Beta {
			t.Errorf("explained match below beta: %+v", tm)
		}
		if len(tm.RefBlocks) != 3 || len(tm.TgtBlocks) != 3 {
			t.Errorf("block index shape wrong: %+v", tm)
		}
	}
	if viaRewrite != res.MatchedRewrite {
		t.Errorf("Explain rewrite count %d, Compare %d", viaRewrite, res.MatchedRewrite)
	}
}

func TestExplainNoMatches(t *testing.T) {
	m := NewMatcher(DefaultOptions())
	ref := Decompose(liftListing(t, "a", srcA), 3)
	tgt := Decompose(liftListing(t, "b", srcB), 3)
	ex := m.Explain(ref, tgt)
	res := m.Compare(ref, tgt)
	if len(ex) != res.Matched() {
		t.Errorf("Explain %d vs Compare %d", len(ex), res.Matched())
	}
}

func TestBestScoresConsistentWithCompare(t *testing.T) {
	m := NewMatcher(DefaultOptions())
	ref := Decompose(liftListing(t, "a", srcA), 3)
	tgt := Decompose(liftListing(t, "a2", srcARenamed), 3)
	pre, post := m.BestScores(ref, tgt)
	if len(pre) != len(ref.Tracelets) || len(post) != len(pre) {
		t.Fatal("shape wrong")
	}
	matched := 0
	for i := range post {
		if post[i] < pre[i] {
			t.Errorf("post < pre at %d", i)
		}
		if post[i] > m.Opts.Beta {
			matched++
		}
	}
	res := m.Compare(ref, tgt)
	if matched < res.Matched() {
		t.Errorf("BestScores matched %d < Compare %d", matched, res.Matched())
	}
}

func TestMismatchedKIsSkipped(t *testing.T) {
	// A 2-block function produces 2-tracelets only; comparing k=3 against
	// it must not panic and must yield zero matches.
	m := NewMatcher(DefaultOptions())
	ref := Decompose(liftListing(t, "a", srcA), 3)
	small := Decompose(liftListing(t, "s", "cmp eax, 1\njz x\nnop\nx:\nretn"), 3)
	res := m.Compare(ref, small)
	if res.Matched() != 0 {
		t.Errorf("matched %d against a too-small target", res.Matched())
	}
}

func TestWorkersOption(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = 1
	m1 := NewMatcher(opts)
	opts.Workers = 8
	m8 := NewMatcher(opts)
	ref := Decompose(liftListing(t, "a", srcA), 3)
	targets := []*Decomposed{
		Decompose(liftListing(t, "a2", srcARenamed), 3),
		Decompose(liftListing(t, "b", srcB), 3),
	}
	r1 := m1.CompareMany(ref, targets)
	r8 := m8.CompareMany(ref, targets)
	for i := range r1 {
		if r1[i].SimilarityScore != r8[i].SimilarityScore {
			t.Errorf("worker count changed results at %d", i)
		}
	}
}

// TestWorkersNegativeClamped: Workers < 0 must clamp to serial execution
// (regression for the old behavior where any non-positive value meant
// GOMAXPROCS) and produce the same results.
func TestWorkersNegativeClamped(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = -1
	m := NewMatcher(opts)
	ref := Decompose(liftListing(t, "a", srcA), 3)
	targets := []*Decomposed{
		Decompose(liftListing(t, "a2", srcARenamed), 3),
		Decompose(liftListing(t, "b", srcB), 3),
		Decompose(liftListing(t, "a3", srcA), 3),
	}
	got := m.CompareMany(ref, targets)
	if len(got) != len(targets) {
		t.Fatalf("got %d results, want %d", len(got), len(targets))
	}
	for i, tgt := range targets {
		want := m.Compare(ref, tgt)
		if got[i].SimilarityScore != want.SimilarityScore {
			t.Errorf("Workers=-1 changed result %d: %v vs %v",
				i, got[i].SimilarityScore, want.SimilarityScore)
		}
	}
}

// TestTelemetryCountersConsistent: the collector's aggregates must agree
// with the per-Result accounting, and telemetry must not perturb scores.
func TestTelemetryCountersConsistent(t *testing.T) {
	ref := Decompose(liftListing(t, "a", srcA), 3)
	tgt := Decompose(liftListing(t, "a2", srcARenamed), 3)

	plain := NewMatcher(DefaultOptions()).Compare(ref, tgt)

	// Exhaustive mode (Prune=false) keeps the cache-lookup arithmetic
	// exact: every pair assembles K block scores, none is skipped.
	opts := DefaultOptions()
	opts.Prune = false
	opts.Tel = telemetry.New()
	m := NewMatcher(opts)
	res := m.Compare(ref, tgt)

	if res.SimilarityScore != plain.SimilarityScore || res.Matched() != plain.Matched() {
		t.Errorf("telemetry changed the verdict: %+v vs %+v", res, plain)
	}
	tel := opts.Tel
	if got := tel.Get(telemetry.Compares); got != 1 {
		t.Errorf("compares = %d, want 1", got)
	}
	if got := tel.Get(telemetry.PairsCompared); got != uint64(res.PairsCompared) {
		t.Errorf("pairs_compared = %d, Result says %d", got, res.PairsCompared)
	}
	if got := tel.Get(telemetry.RewritesAttempted); got != uint64(res.PairsRewritten) {
		t.Errorf("rewrites_attempted = %d, Result says %d", got, res.PairsRewritten)
	}
	if got := tel.Get(telemetry.RewritesSucceeded); got != uint64(res.MatchedRewrite) {
		t.Errorf("rewrites_succeeded = %d, Result says %d", got, res.MatchedRewrite)
	}
	if res.IsMatch && tel.Get(telemetry.Matches) != 1 {
		t.Error("match not counted")
	}
	// Every pair assembles K block alignments, each a cache hit or miss.
	lookups := tel.Get(telemetry.BlockCacheHits) + tel.Get(telemetry.BlockCacheMisses)
	if lookups == 0 || lookups%uint64(res.PairsCompared) != 0 {
		t.Errorf("cache lookups %d not a multiple of pairs %d", lookups, res.PairsCompared)
	}
	// The rewrite path drives the CSP, which must have reported its solves.
	if res.PairsRewritten > 0 && tel.Get(telemetry.CSPSolves) == 0 {
		t.Error("rewrites ran but no CSP solves recorded")
	}
	snap := tel.Snapshot()
	for _, h := range []telemetry.Hist{telemetry.CompareLatency, telemetry.PairLatency} {
		if snap.Histograms[h.String()].Count == 0 {
			t.Errorf("histogram %s empty after instrumented compare", h)
		}
	}
}

// TestTraceSpanDecisionTrail: a traced compare must leave one compare
// child with per-tracelet children carrying the decision attributes.
func TestTraceSpanDecisionTrail(t *testing.T) {
	root := telemetry.StartSpan("test")
	opts := DefaultOptions()
	opts.Trace = root
	m := NewMatcher(opts)
	ref := Decompose(liftListing(t, "a", srcA), 3)
	tgt := Decompose(liftListing(t, "a2", srcARenamed), 3)
	res := m.Compare(ref, tgt)
	root.End()

	kids := root.Children()
	if len(kids) != 1 || kids[0].Name() != "compare:a2" {
		t.Fatalf("trace children wrong: %d", len(kids))
	}
	cmp := kids[0]
	if cmp.Attr("pairs_compared") != int64(res.PairsCompared) {
		t.Errorf("span pairs_compared = %d, want %d",
			cmp.Attr("pairs_compared"), res.PairsCompared)
	}
	if got := cmp.Attr("verdict_match"); (got == 1) != res.IsMatch {
		t.Errorf("span verdict %d vs result %v", got, res.IsMatch)
	}
	tracelets := cmp.Children()
	if len(tracelets) != len(ref.Tracelets) {
		t.Errorf("tracelet spans = %d, want %d", len(tracelets), len(ref.Tracelets))
	}
	viaRewrite := 0
	for _, ts := range tracelets {
		if ts.Attr("via_rewrite") == 1 {
			viaRewrite++
		}
	}
	if viaRewrite != res.MatchedRewrite {
		t.Errorf("span rewrite matches %d, result %d", viaRewrite, res.MatchedRewrite)
	}
}

// TestDecomposeT: the telemetry variant must match Decompose and record
// its work.
func TestDecomposeT(t *testing.T) {
	tel := telemetry.New()
	fn := liftListing(t, "a", srcA)
	d := DecomposeT(fn, 3, tel)
	plain := Decompose(fn, 3)
	if len(d.Tracelets) != len(plain.Tracelets) {
		t.Errorf("DecomposeT diverges: %d vs %d tracelets",
			len(d.Tracelets), len(plain.Tracelets))
	}
	if tel.Get(telemetry.FunctionsDecomposed) != 1 {
		t.Error("function not counted")
	}
	if tel.Snapshot().Histograms["decompose_latency"].Count != 1 {
		t.Error("decompose latency not recorded")
	}
	// Nil collector must be identical to Decompose.
	if d2 := DecomposeT(fn, 3, nil); len(d2.Tracelets) != len(plain.Tracelets) {
		t.Error("DecomposeT(nil) diverges")
	}
}

// TestExplainTelemetry: Explain must report cache and rewrite counters to
// the collector (the satellite behind `tracy compare -explain`).
func TestExplainTelemetry(t *testing.T) {
	opts := DefaultOptions()
	opts.Tel = telemetry.New()
	m := NewMatcher(opts)
	ref := Decompose(liftListing(t, "a", srcA), 3)
	tgt := Decompose(liftListing(t, "a2", srcARenamed), 3)
	ex := m.Explain(ref, tgt)
	tel := opts.Tel
	if tel.Get(telemetry.BlockCacheHits)+tel.Get(telemetry.BlockCacheMisses) == 0 {
		t.Error("Explain recorded no cache traffic")
	}
	viaRewrite := uint64(0)
	for _, tm := range ex {
		if tm.ViaRewrite {
			viaRewrite++
		}
	}
	if got := tel.Get(telemetry.RewritesSucceeded); got != viaRewrite {
		t.Errorf("rewrites_succeeded = %d, explain found %d", got, viaRewrite)
	}
}

// TestDedupeQueryPreservesScores: the dedupe optimization must be
// score-invariant across match, partial-match and no-match pairs.
func TestDedupeQueryPreservesScores(t *testing.T) {
	pairs := [][2]string{
		{srcA, srcARenamed},
		{srcA, srcB},
		{srcA, srcA},
	}
	for i, p := range pairs {
		ref := Decompose(liftListing(t, "r", p[0]), 3)
		tgt := Decompose(liftListing(t, "t", p[1]), 3)
		plain := NewMatcher(DefaultOptions()).Compare(ref, tgt)
		opts := DefaultOptions()
		opts.DedupeQuery = true
		dedup := NewMatcher(opts).Compare(ref, tgt)
		if plain.SimilarityScore != dedup.SimilarityScore ||
			plain.Matched() != dedup.Matched() {
			t.Errorf("pair %d: plain %.3f/%d vs dedup %.3f/%d", i,
				plain.SimilarityScore, plain.Matched(),
				dedup.SimilarityScore, dedup.Matched())
		}
	}
}
