// Package rewrite implements the rewrite engine of paper Section 4.4
// (Algorithm 4): given an aligned reference/target tracelet pair, every
// argument of the target is abstracted to a typed variable, in-tracelet
// dataflow constraints (through lastWrite) and cross-tracelet alignment
// constraints are generated, and a bounded backtracking constraint solver
// finds a minimal-conflict assignment that rewrites the target's
// registers, memory symbols, immediates and call targets toward the
// reference — undoing register allocation and memory layout decisions.
package rewrite

import (
	"fmt"
	"strconv"

	"repro/internal/align"
	"repro/internal/asm"
	"repro/internal/csp"
	"repro/internal/telemetry"
)

// MaxBacktracks is the solver bound used by the paper.
const MaxBacktracks = csp.DefaultMaxBacktracks

// Result reports what the rewrite did.
type Result struct {
	Blocks    [][]asm.Inst      // the rewritten target tracelet
	Conflicts int               // violated constraints in the chosen assignment
	NumVars   int               // abstracted variables
	VMap      map[string]string // solved variable assignment
}

// domains collects, per symbol class, the values present in the reference
// tracelet: they are the assignment domains (paper: "our domain for the
// register assignment only contains registers found in the reference
// tracelet", and likewise for memory offsets and function names).
type domains struct {
	regs  []string
	imms  []string
	byCls map[asm.SymClass][]string
}

func collectDomains(refInsts []asm.Inst) *domains {
	d := &domains{byCls: make(map[asm.SymClass][]string)}
	seenReg := map[string]bool{}
	seenImm := map[string]bool{}
	seenSym := map[string]bool{}
	for _, in := range refInsts {
		for _, a := range in.Args() {
			switch {
			case a.IsReg():
				s := a.Reg.String()
				if !seenReg[s] {
					seenReg[s] = true
					d.regs = append(d.regs, s)
				}
			case a.IsImm():
				s := strconv.FormatInt(a.Imm, 10)
				if !seenImm[s] {
					seenImm[s] = true
					d.imms = append(d.imms, s)
				}
			case a.IsSym():
				key := fmt.Sprintf("%d:%s", a.Cls, a.Sym)
				if !seenSym[key] {
					seenSym[key] = true
					d.byCls[a.Cls] = append(d.byCls[a.Cls], a.Sym)
				}
			}
		}
	}
	return d
}

// argValue encodes an argument as a solver value string.
func argValue(a asm.Arg) string {
	switch {
	case a.IsReg():
		return a.Reg.String()
	case a.IsImm():
		return strconv.FormatInt(a.Imm, 10)
	default:
		return a.Sym
	}
}

// Rewrite rewrites the target tracelet toward the reference using the
// instruction alignment al (whose pair indices refer to the concatenated
// instruction sequences). It implements paper Algorithm 4 followed by the
// assignment application, including the swap cache applied to unaligned
// (inserted) target instructions.
func Rewrite(refBlocks, tgtBlocks [][]asm.Inst, al align.Alignment) Result {
	return RewriteT(refBlocks, tgtBlocks, al, nil)
}

// RewriteT is Rewrite with telemetry: the embedded constraint solve
// reports its latency, backtracking steps and budget-exhaustion events to
// tel. A nil collector makes it identical to Rewrite.
func RewriteT(refBlocks, tgtBlocks [][]asm.Inst, al align.Alignment, tel *telemetry.Collector) Result {
	refInsts := flatten(refBlocks)
	tgtInsts := flatten(tgtBlocks)
	dom := collectDomains(refInsts)

	p := csp.NewProblem()
	p.Tel = tel
	nextVar := 0
	// occVar[tIdx][argPos] records the variable abstracting that argument
	// occurrence.
	occVar := make(map[int]map[int]string)
	// identVar maps a non-register symbol identity (class + name, or an
	// immediate value) to its single variable: memory layout and call
	// targets are swapped consistently, so a swap "is counted at most
	// once" over the whole tracelet.
	identVar := make(map[string]string)
	lastWrite := make(map[asm.Reg]string)

	domainOf := func(a asm.Arg) []string {
		switch {
		case a.IsReg():
			return dom.regs
		case a.IsImm():
			return dom.imms
		default:
			return dom.byCls[a.Cls]
		}
	}

	for _, pair := range al.Pairs {
		t := tgtInsts[pair.Tgt]
		r := refInsts[pair.Ref]
		targs, rargs := t.Args(), r.Args()
		if len(targs) != len(rargs) {
			continue // cannot happen for SameKind pairs; defensive
		}
		reads := t.Read()
		writes := t.Write()
		for i := range targs {
			st, sr := targs[i], rargs[i]
			var nv string
			if st.IsReg() {
				// Registers are flow-sensitive: a fresh variable per
				// occurrence, linked through lastWrite.
				nv = fmt.Sprintf("r%d", nextVar)
				nextVar++
				p.AddVar(nv, domainOf(st))
				if reads[st.Reg] && lastWrite[st.Reg] != "" {
					p.Eq(nv, lastWrite[st.Reg])
				} else if writes[st.Reg] {
					lastWrite[st.Reg] = nv
				}
			} else {
				// Symbols and immediates are layout properties: one
				// variable per identity.
				key := identKey(st)
				var ok bool
				if nv, ok = identVar[key]; !ok {
					nv = fmt.Sprintf("s%d", nextVar)
					nextVar++
					identVar[key] = nv
					p.AddVar(nv, domainOf(st))
				}
			}
			// Cross-tracelet constraint: the abstracted argument should
			// equal the aligned reference argument.
			p.Bind(nv, argValue(sr))
			if occVar[pair.Tgt] == nil {
				occVar[pair.Tgt] = make(map[int]string)
			}
			occVar[pair.Tgt][i] = nv
		}
	}

	vmap, conflicts := p.Solve(MaxBacktracks)

	// Swap cache for unaligned instructions: original argument value ->
	// last substituted value.
	swap := make(map[string]string)
	record := func(orig asm.Arg, v string) {
		if v != "" {
			swap[identKey(orig)] = v
		}
	}

	out := make([][]asm.Inst, len(tgtBlocks))
	idx := 0
	aligned := make(map[int]bool, len(al.Pairs))
	for _, pair := range al.Pairs {
		aligned[pair.Tgt] = true
	}
	for bi, blk := range tgtBlocks {
		out[bi] = make([]asm.Inst, len(blk))
		for ii := range blk {
			in := blk[ii].Clone()
			if vars, ok := occVar[idx]; ok {
				args := in.Args()
				for pos, a := range args {
					if v, assigned := vmap[vars[pos]]; assigned {
						na, err := decodeValue(a, v)
						if err == nil {
							in.SetArg(pos, na)
							record(args[pos], v)
						}
					}
				}
			}
			out[bi][ii] = in
			idx++
		}
	}
	// Second pass: apply the swap cache to instructions that were not
	// aligned (the "deleted instructions" of the paper, i.e. inserted
	// target instructions).
	idx = 0
	for bi := range out {
		for ii := range out[bi] {
			if !aligned[idx] {
				in := &out[bi][ii]
				for pos, a := range in.Args() {
					if v, ok := swap[identKey(a)]; ok {
						if na, err := decodeValue(a, v); err == nil {
							in.SetArg(pos, na)
						}
					}
				}
			}
			idx++
		}
	}
	return Result{Blocks: out, Conflicts: conflicts, NumVars: nextVar, VMap: vmap}
}

// identKey keys an argument identity for the identVar/swap maps.
func identKey(a asm.Arg) string {
	switch {
	case a.IsReg():
		return "r:" + a.Reg.String()
	case a.IsImm():
		return "i:" + strconv.FormatInt(a.Imm, 10)
	default:
		return fmt.Sprintf("s%d:%s", a.Cls, a.Sym)
	}
}

// decodeValue converts a solver value back into an argument of the same
// kind as the original.
func decodeValue(orig asm.Arg, v string) (asm.Arg, error) {
	switch {
	case orig.IsReg():
		r := asm.LookupReg(v)
		if r == asm.RegNone {
			return asm.Arg{}, fmt.Errorf("rewrite: bad register value %q", v)
		}
		return asm.RegArg(r), nil
	case orig.IsImm():
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return asm.Arg{}, fmt.Errorf("rewrite: bad immediate value %q", v)
		}
		return asm.ImmArg(n), nil
	default:
		return asm.SymArg(orig.Cls, v), nil
	}
}

func flatten(blocks [][]asm.Inst) []asm.Inst {
	var out []asm.Inst
	for _, b := range blocks {
		out = append(out, b...)
	}
	return out
}
