package rewrite

import (
	"testing"

	"repro/internal/align"
	"repro/internal/asm"
)

func insts(t *testing.T, lines ...string) []asm.Inst {
	t.Helper()
	out := make([]asm.Inst, len(lines))
	for i, l := range lines {
		in, err := asm.Parse(l)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = in
	}
	return out
}

func texts(blocks [][]asm.Inst) []string {
	var out []string
	for _, b := range blocks {
		for _, in := range b {
			out = append(out, in.String())
		}
	}
	return out
}

// TestPaperFig5FullProcess reproduces the paper's Fig. 5 walkthrough: the
// patched basic block 3' is aligned against the original block 3 and then
// rewritten into a perfect match, with the added instruction (mov esi, 4)
// identified and ignored.
func TestPaperFig5FullProcess(t *testing.T) {
	ref := [][]asm.Inst{insts(t,
		"mov [esp+18h+var_18], offset aDHELLO",
		"mov ecx, 1",
		"mov [esp+18h+var_14], ecx",
		"call _printf",
	)}
	tgt := [][]asm.Inst{insts(t,
		"mov [esp+28h+var_28], offset aDHELLO",
		"mov ebx, 1",
		"mov esi, 4",
		"mov [esp+28h+var_24], ebx",
		"call _printf",
	)}
	al := align.AlignBlocks(ref, tgt)
	if len(al.Pairs) != 4 || len(al.Inserted) != 1 {
		t.Fatalf("unexpected alignment: %+v", al)
	}
	res := Rewrite(ref, tgt, al)
	if res.Conflicts != 0 {
		t.Errorf("conflicts = %d, want 0", res.Conflicts)
	}
	got := texts(res.Blocks)
	want := []string{
		"mov [esp+18h+var_18], offset aDHELLO",
		"mov ecx, 1",
		"mov esi, 4",
		"mov [esp+18h+var_14], ecx",
		"call _printf",
	}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Errorf("inst %d = %q, want %q", i, got[i], want[i])
		}
	}
	// The rewritten tracelet must now score a perfect containment match.
	before := align.ScoreBlocks(ref, tgt)
	after := align.ScoreBlocks(ref, res.Blocks)
	refIdent := align.IdentityScore(ref[0])
	if after != refIdent {
		t.Errorf("post-rewrite score %d, want identity %d", after, refIdent)
	}
	if after <= before {
		t.Errorf("rewrite did not improve score: before %d, after %d", before, after)
	}
}

// TestRegisterFlowConsistency: two independent values held in the same
// target register at different times may map to different reference
// registers; reads must follow their own last write.
func TestRegisterFlowConsistency(t *testing.T) {
	ref := [][]asm.Inst{insts(t,
		"mov ecx, 1",
		"push ecx",
		"mov edx, 2",
		"push edx",
	)}
	// The target reuses eax for both values.
	tgt := [][]asm.Inst{insts(t,
		"mov eax, 1",
		"push eax",
		"mov eax, 2",
		"push eax",
	)}
	al := align.AlignBlocks(ref, tgt)
	res := Rewrite(ref, tgt, al)
	got := texts(res.Blocks)
	want := []string{"mov ecx, 1", "push ecx", "mov edx, 2", "push edx"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("inst %d = %q, want %q", i, got[i], want[i])
		}
	}
	if res.Conflicts != 0 {
		t.Errorf("conflicts = %d, want 0", res.Conflicts)
	}
	if got := align.ScoreBlocks(ref, res.Blocks); got != align.IdentityScore(ref[0]) {
		t.Errorf("post-rewrite score %d, want perfect", got)
	}
}

// TestMemorySymbolConsistency: a memory symbol swapped once must be
// swapped the same way throughout the tracelet.
func TestMemorySymbolConsistency(t *testing.T) {
	ref := [][]asm.Inst{insts(t,
		"mov eax, [ebp+var_4]",
		"add eax, 1",
		"mov [ebp+var_4], eax",
	)}
	tgt := [][]asm.Inst{insts(t,
		"mov eax, [ebp+var_C]",
		"add eax, 1",
		"mov [ebp+var_C], eax",
	)}
	al := align.AlignBlocks(ref, tgt)
	res := Rewrite(ref, tgt, al)
	got := texts(res.Blocks)
	for i, w := range []string{"mov eax, [ebp+var_4]", "add eax, 1", "mov [ebp+var_4], eax"} {
		if got[i] != w {
			t.Errorf("inst %d = %q, want %q", i, got[i], w)
		}
	}
}

// TestDissimilarTraceletsKeepConflicts: rewriting entirely different code
// should produce conflicts (or no improvement), never a fabricated match.
func TestDissimilarTraceletsNoFabrication(t *testing.T) {
	ref := [][]asm.Inst{insts(t,
		"push ebp",
		"mov ebp, esp",
		"call _fopen",
	)}
	tgt := [][]asm.Inst{insts(t,
		"xor eax, eax",
		"inc eax",
		"retn",
	)}
	al := align.AlignBlocks(ref, tgt)
	res := Rewrite(ref, tgt, al)
	after := align.ScoreBlocks(ref, res.Blocks)
	if after > 0 {
		t.Errorf("dissimilar tracelets scored %d after rewrite, want 0", after)
	}
}

// TestCrossValueImmediates: immediates are rewritable within their own
// domain (the paper's Opr-for-Opr rule for the immediate type).
func TestImmediateRewrite(t *testing.T) {
	ref := [][]asm.Inst{insts(t, "sub esp, 18h", "cmp eax, 18h")}
	tgt := [][]asm.Inst{insts(t, "sub esp, 28h", "cmp eax, 28h")}
	al := align.AlignBlocks(ref, tgt)
	res := Rewrite(ref, tgt, al)
	got := texts(res.Blocks)
	if got[0] != "sub esp, 18h" || got[1] != "cmp eax, 18h" {
		t.Errorf("immediate rewrite failed: %v", got)
	}
	// One identity variable for the immediate 0x28, bound twice.
	if res.Conflicts != 0 {
		t.Errorf("conflicts = %d", res.Conflicts)
	}
}

// TestFunctionNameRewrite: unnameable internal call targets (sub_X tokens)
// are matched through the rewrite, the paper's answer to stripped internal
// calls.
func TestFunctionNameRewrite(t *testing.T) {
	ref := [][]asm.Inst{insts(t, "push eax", "call sub_8048100", "add esp, 4")}
	tgt := [][]asm.Inst{insts(t, "push eax", "call sub_80492AB", "add esp, 4")}
	al := align.AlignBlocks(ref, tgt)
	res := Rewrite(ref, tgt, al)
	got := texts(res.Blocks)
	if got[1] != "call sub_8048100" {
		t.Errorf("call rewrite failed: %v", got)
	}
	if got := align.ScoreBlocks(ref, res.Blocks); got != align.IdentityScore(ref[0]) {
		t.Errorf("post-rewrite score %d, want perfect", got)
	}
}

// TestSwapCacheAppliesToInserted: the register swap learned from aligned
// instructions is applied to inserted instructions too.
func TestSwapCacheAppliesToInserted(t *testing.T) {
	ref := [][]asm.Inst{insts(t,
		"mov ecx, 1",
		"push ecx",
	)}
	tgt := [][]asm.Inst{insts(t,
		"mov ebx, 1",
		"add ebx, 5", // inserted; ebx should still become ecx
		"push ebx",
	)}
	al := align.AlignBlocks(ref, tgt)
	res := Rewrite(ref, tgt, al)
	got := texts(res.Blocks)
	if got[1] != "add ecx, 5" {
		t.Errorf("swap cache not applied to inserted inst: %v", got)
	}
}

func TestRewriteLeavesInputUntouched(t *testing.T) {
	ref := [][]asm.Inst{insts(t, "mov ecx, 1")}
	tgt := [][]asm.Inst{insts(t, "mov ebx, 1")}
	al := align.AlignBlocks(ref, tgt)
	_ = Rewrite(ref, tgt, al)
	if tgt[0][0].String() != "mov ebx, 1" {
		t.Error("Rewrite mutated its input")
	}
}

func TestEmptyAlignment(t *testing.T) {
	ref := [][]asm.Inst{insts(t, "push ebp")}
	tgt := [][]asm.Inst{insts(t, "retn")}
	al := align.AlignBlocks(ref, tgt)
	res := Rewrite(ref, tgt, al)
	if len(res.Blocks) != 1 || len(res.Blocks[0]) != 1 {
		t.Fatalf("shape changed: %v", res.Blocks)
	}
	if res.Blocks[0][0].String() != "retn" {
		t.Errorf("unaligned target changed: %v", texts(res.Blocks))
	}
	if res.NumVars != 0 {
		t.Errorf("NumVars = %d, want 0", res.NumVars)
	}
}

// TestLimitationCrossDomain documents the paper's Section 8 limitation:
// "a common optimization is replacing an immediate value with a register
// already containing that value. Our method was designed so that each
// symbol can only be replaced with another in the same domain" — the
// rewrite engine must NOT turn an immediate into a register.
func TestLimitationCrossDomain(t *testing.T) {
	ref := [][]asm.Inst{insts(t,
		"mov ecx, 5",
		"push ecx", // register re-used for the value
	)}
	tgt := [][]asm.Inst{insts(t,
		"mov ecx, 5",
		"push 5", // immediate repeated
	)}
	al := align.AlignBlocks(ref, tgt)
	res := Rewrite(ref, tgt, al)
	// push 5 and push ecx are different kinds; no cross-domain swap.
	if got := res.Blocks[0][1].String(); got != "push 5" {
		t.Errorf("cross-domain substitution happened: %q", got)
	}
	if after := align.ScoreBlocks(ref, res.Blocks); after == align.IdentityScore(ref[0]) {
		t.Error("pair should not reach a perfect match (documented limitation)")
	}
}

// TestLimitationMnemonicSubstitution documents the second Section 8
// limitation: "if a compiler were to select a different mnemonic the
// matching process would suffer" — imul-by-8 vs shl-by-3 cannot align.
func TestLimitationMnemonicSubstitution(t *testing.T) {
	ref := [][]asm.Inst{insts(t, "mov eax, ebx", "imul eax, eax, 8", "push eax")}
	tgt := [][]asm.Inst{insts(t, "mov eax, ebx", "shl eax, 3", "push eax")}
	al := align.AlignBlocks(ref, tgt)
	for _, p := range al.Pairs {
		r, g := ref[0][p.Ref], tgt[0][p.Tgt]
		if r.Mnemonic != g.Mnemonic {
			t.Errorf("aligned across mnemonics: %s ~ %s", r, g)
		}
	}
	res := Rewrite(ref, tgt, al)
	if after := align.ScoreBlocks(ref, res.Blocks); after >= align.IdentityScore(ref[0]) {
		t.Error("mnemonic substitution should not be bridged")
	}
}

// TestRewriteShapePreserved: rewriting never changes instruction counts,
// mnemonics, or operand shapes — only argument identities.
func TestRewriteShapePreserved(t *testing.T) {
	ref := [][]asm.Inst{insts(t,
		"mov esi, [ebp+arg_0]",
		"add esi, 8",
		"push esi",
		"call _printf",
	)}
	tgt := [][]asm.Inst{insts(t,
		"mov ebx, [ebp+arg_4]",
		"add ebx, 0Ch",
		"push ebx",
		"call _fopen",
	)}
	al := align.AlignBlocks(ref, tgt)
	res := Rewrite(ref, tgt, al)
	if len(res.Blocks) != len(tgt) {
		t.Fatal("block count changed")
	}
	for bi := range tgt {
		if len(res.Blocks[bi]) != len(tgt[bi]) {
			t.Fatal("instruction count changed")
		}
		for ii := range tgt[bi] {
			before, after := tgt[bi][ii], res.Blocks[bi][ii]
			if before.Mnemonic != after.Mnemonic {
				t.Errorf("mnemonic changed: %s -> %s", before, after)
			}
			if !asm.SameKind(before, after) {
				t.Errorf("kind changed: %s -> %s", before, after)
			}
		}
	}
}
