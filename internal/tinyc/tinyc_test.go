package tinyc

import (
	"strings"
	"testing"

	"repro/internal/bin"
	"repro/internal/prep"
	"repro/internal/x86"
)

// doCommand1 is the paper's Fig. 1(a) motivating example.
const doCommand1 = `
int doCommand1(int cmd, char *optionalMsg, char *logPath) {
	int counter = 1;
	int f = fopen(logPath, "w");
	if (cmd == 1) {
		printf("(%d) HELLO", counter);
	} else if (cmd == 2) {
		printf(optionalMsg);
	}
	fprintf(f, "Cmd %d DONE", counter);
	return counter;
}
`

// doCommand2 is the paper's Fig. 2(a): the patched version with a new
// variable, a new case and a changed format string.
const doCommand2 = `
int doCommand2(int cmd, char *optionalMsg, char *logPath) {
	int counter = 1;
	int bytes = 0;
	int f = fopen(logPath, "w");
	if (cmd == 1) {
		printf("(%d) HELLO", counter);
		bytes = bytes + 4;
	} else if (cmd == 2) {
		printf(optionalMsg);
		bytes = bytes + strlen(optionalMsg);
	} else if (cmd == 3) {
		printf("(%d) BYE", counter);
		bytes = bytes + 3;
	}
	fprintf(f, "Cmd %d\\%d DONE", counter, bytes);
	return counter;
}
`

func TestParseBasics(t *testing.T) {
	prog, err := Parse(doCommand1)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Funcs) != 1 {
		t.Fatalf("got %d functions", len(prog.Funcs))
	}
	fn := prog.Funcs[0]
	if fn.Name != "doCommand1" || len(fn.Params) != 3 {
		t.Errorf("header wrong: %s %v", fn.Name, fn.Params)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"int f( { }",
		"int f() { int; }",
		"int f() { x = ; }",
		"int f() { if (1 { } }",
		"int f() { \"unterminated }",
		"int f() { return 1 }",
		"banana f() {}",
		"int f() { for(;;) }",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestCompileAndLinkAllLevels(t *testing.T) {
	for _, opt := range []OptLevel{O0, O1, O2, Os} {
		img, err := Build(doCommand1+doCommand2, Config{Opt: opt, Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", opt, err)
		}
		f, err := bin.Read(img)
		if err != nil {
			t.Fatalf("%v: read: %v", opt, err)
		}
		funcs, err := f.Functions()
		if err != nil {
			t.Fatalf("%v: functions: %v", opt, err)
		}
		if len(funcs) != 2 {
			t.Fatalf("%v: got %d functions", opt, len(funcs))
		}
		// Every function must decode fully.
		for _, fn := range funcs {
			if _, err := x86.DecodeAll(fn.Code, fn.Addr); err != nil {
				t.Errorf("%v: %s does not decode: %v", opt, fn.Name, err)
			}
		}
		// Imports must include the external calls.
		names := map[string]bool{}
		for _, s := range f.Imports {
			names[s.Name] = true
		}
		for _, want := range []string{"_printf", "_fprintf", "_fopen", "_strlen"} {
			if !names[want] {
				t.Errorf("%v: missing import %s (have %v)", opt, want, f.Imports)
			}
		}
	}
}

func TestLiftedShapeMatchesPaper(t *testing.T) {
	// At O2, the lifted doCommand1 must exhibit the paper's features:
	// a call to _fopen and _printf by name, stack variables, and multiple
	// basic blocks (the paper's G1 has 5).
	img, err := BuildStripped(doCommand1, Config{Opt: O2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	fns, err := prep.LiftImage(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(fns) != 1 {
		t.Fatalf("lifted %d functions", len(fns))
	}
	fn := fns[0]
	if fn.NumBlocks() < 4 {
		t.Errorf("doCommand1 has %d blocks, want >= 4:\n%s", fn.NumBlocks(), fn.Graph)
	}
	text := fn.Graph.String()
	for _, want := range []string{"call _fopen", "call _printf", "call _fprintf"} {
		if !strings.Contains(text, want) {
			t.Errorf("lifted text missing %q:\n%s", want, text)
		}
	}
	// The "(%d) HELLO" string must appear as its content token.
	if !strings.Contains(text, "aDHELLO") {
		t.Errorf("string content token missing:\n%s", text)
	}
}

func TestSeedChangesContext(t *testing.T) {
	// Different seeds at the same level must produce different register
	// assignments or layouts (the Context group premise), while the same
	// seed must be deterministic.
	a1, err := Build(doCommand1, Config{Opt: O2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Build(doCommand1, Config{Opt: O2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if string(a1) != string(a2) {
		t.Error("same config must be byte-identical")
	}
	diff := false
	for seed := int64(2); seed < 8; seed++ {
		b, err := Build(doCommand1, Config{Opt: O2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if string(a1) != string(b) {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("no seed in 2..7 changed the binary; context knobs inert")
	}
}

func TestOptLevelsDiffer(t *testing.T) {
	imgs := map[OptLevel][]byte{}
	for _, opt := range []OptLevel{O0, O1, O2, Os} {
		img, err := Build(doCommand1, Config{Opt: opt, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		imgs[opt] = img
	}
	if string(imgs[O0]) == string(imgs[O2]) {
		t.Error("O0 and O2 identical")
	}
	if string(imgs[O2]) == string(imgs[Os]) {
		t.Error("O2 and Os identical")
	}
	// O0 keeps every variable in memory: no callee-saved registers; O2
	// register-allocates.
	usesCalleeSaved := func(img []byte) bool {
		fns, err := prep.LiftImage(img)
		if err != nil {
			t.Fatal(err)
		}
		text := fns[0].Graph.String()
		return strings.Contains(text, "esi") || strings.Contains(text, "edi") ||
			strings.Contains(text, "ebx")
	}
	if usesCalleeSaved(imgs[O0]) {
		t.Error("O0 should not register-allocate")
	}
	if !usesCalleeSaved(imgs[O2]) {
		t.Error("O2 should register-allocate")
	}
}

func TestControlFlowConstructs(t *testing.T) {
	src := `
	int loops(int n) {
		int acc = 0;
		int i;
		for (i = 0; i < n; i = i + 1) {
			if (i % 2 == 0) {
				acc = acc + i;
			} else {
				acc = acc - 1;
			}
			if (acc > 100) { break; }
			if (acc < 0 - 50) { continue; }
			acc = acc * 2;
		}
		while (acc > 0 && n > 1) {
			acc = acc / 2;
			n = n - 1;
		}
		return acc;
	}
	`
	for _, opt := range []OptLevel{O0, O1, O2, Os} {
		img, err := Build(src, Config{Opt: opt, Seed: 3})
		if err != nil {
			t.Fatalf("%v: %v", opt, err)
		}
		fns, err := prep.LiftImage(img)
		if err != nil {
			t.Fatalf("%v: lift: %v", opt, err)
		}
		if fns[0].NumBlocks() < 6 {
			t.Errorf("%v: loops has only %d blocks", opt, fns[0].NumBlocks())
		}
	}
}

func TestLogicalOperatorsAndBooleans(t *testing.T) {
	src := `
	int pred(int a, int b) {
		int r = 0;
		if (a > 0 && b > 0 || a == 0 - 1) { r = 1; }
		if (!(a == b)) { r = r + 2; }
		r = (a < b);
		return r;
	}
	`
	for _, opt := range []OptLevel{O0, O2} {
		img, err := Build(src, Config{Opt: opt, Seed: 5})
		if err != nil {
			t.Fatalf("%v: %v", opt, err)
		}
		if _, err := prep.LiftImage(img); err != nil {
			t.Fatalf("%v: lift: %v", opt, err)
		}
	}
}

func TestNestedCallsAndTemps(t *testing.T) {
	// Nested calls exercise the tempDepth fallback: the inner call's
	// argument stores must not clobber outer temporaries.
	src := `
	int nest(int a, int b) {
		int x = add3(a, add3(b, 1, 2), a + add3(1, 2, 3));
		return x + mul2(a * b + 4);
	}
	int add3(int p, int q, int r) { return p + q + r; }
	int mul2(int p) { return p * 2; }
	`
	for _, opt := range []OptLevel{O0, O1, O2, Os} {
		img, err := Build(src, Config{Opt: opt, Seed: 9})
		if err != nil {
			t.Fatalf("%v: %v", opt, err)
		}
		fns, err := prep.LiftImage(img)
		if err != nil {
			t.Fatalf("%v: lift: %v", opt, err)
		}
		if len(fns) != 3 {
			t.Fatalf("%v: lifted %d functions", opt, len(fns))
		}
	}
}

func TestStringDeduplication(t *testing.T) {
	src := `
	int f() { printf("same"); printf("same"); printf("other"); return 0; }
	`
	p, err := Compile(src, Config{Opt: O2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Data) != 2 {
		t.Errorf("got %d data, want 2 (dedup)", len(p.Data))
	}
}

func TestInternalCallsNotImported(t *testing.T) {
	src := `
	int caller() { return callee(7); }
	int callee(int x) { return x + 1; }
	`
	p, err := Compile(src, Config{Opt: O2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Imports) != 0 {
		t.Errorf("internal call imported: %v", p.Imports)
	}
}

func TestJumpToNextRemoved(t *testing.T) {
	src := `int f(int a) { if (a == 1) { a = 2; } return a; }`
	p, err := Compile(src, Config{Opt: O2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range p.Funcs[0].Insts {
		if in.Mnemonic == "jmp" {
			if ti, ok := p.Funcs[0].Labels[in.Ops[0].Arg.Sym]; ok && ti == i+1 {
				t.Errorf("jmp-to-next survived at %d", i)
			}
		}
	}
}

func TestUndefinedVariable(t *testing.T) {
	if _, err := Compile("int f() { return zzz; }", Config{}); err == nil {
		t.Error("expected undefined-variable error")
	}
	if _, err := Compile("int f() { zzz = 3; return 0; }", Config{}); err == nil {
		t.Error("expected undefined-variable error on assignment")
	}
}

func TestBreakOutsideLoop(t *testing.T) {
	if _, err := Compile("int f() { break; }", Config{}); err == nil {
		t.Error("expected break-outside-loop error")
	}
}

func TestSetccMaterialization(t *testing.T) {
	src := `int bools(int a, int b) { int r = (a < b); r = r + (a == b); return r; }`
	// Find an O2 context that picks the setcc idiom and one that branches.
	var sawSetcc, sawBranch bool
	for seed := int64(1); seed <= 16 && !(sawSetcc && sawBranch); seed++ {
		img, err := Build(src, Config{Opt: O2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		fns, err := prep.LiftImage(img)
		if err != nil {
			t.Fatal(err)
		}
		text := fns[0].Graph.String()
		if strings.Contains(text, "setl") {
			sawSetcc = true
			if !strings.Contains(text, "movzx") {
				t.Error("setcc idiom should pair with movzx")
			}
		} else {
			sawBranch = true
		}
	}
	if !sawSetcc || !sawBranch {
		t.Errorf("expected both materialization idioms across seeds: setcc=%v branch=%v",
			sawSetcc, sawBranch)
	}
}
