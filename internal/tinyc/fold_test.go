package tinyc

import "testing"

func foldOf(t *testing.T, exprSrc string) Expr {
	t.Helper()
	prog, err := Parse("int f(int a, int b) { return " + exprSrc + "; }")
	if err != nil {
		t.Fatal(err)
	}
	foldProgram(prog)
	ret := prog.Funcs[0].Body.Stmts[len(prog.Funcs[0].Body.Stmts)-1].(*ReturnStmt)
	return ret.X
}

func TestFoldConstants(t *testing.T) {
	for _, tc := range []struct {
		src  string
		want int64
	}{
		{"2 + 3 * 4", 14},
		{"(10 - 4) / 3", 2},
		{"17 % 5", 2},
		{"0 - 5", -5},
		{"!(3 > 2)", 0},
		{"3 == 3", 1},
		{"1 && 0", 0},
		{"0 || 7", 1},
		{"2147483647 + 1", -2147483648}, // int32 wraparound
	} {
		got := foldOf(t, tc.src)
		lit, ok := got.(*IntLit)
		if !ok {
			t.Errorf("%s: not folded: %#v", tc.src, got)
			continue
		}
		if lit.V != tc.want {
			t.Errorf("%s = %d, want %d", tc.src, lit.V, tc.want)
		}
	}
}

func TestFoldIdentities(t *testing.T) {
	// a + 0, a * 1, a / 1 reduce to the identifier.
	for _, src := range []string{"a + 0", "a * 1", "a / 1", "0 + a", "1 * a"} {
		if _, ok := foldOf(t, src).(*Ident); !ok {
			t.Errorf("%s: not reduced to identifier", src)
		}
	}
	// a % 1 is 0 when side-effect free.
	if lit, ok := foldOf(t, "a % 1").(*IntLit); !ok || lit.V != 0 {
		t.Errorf("a %% 1 should fold to 0")
	}
	// Calls must survive: f(a) % 1 keeps the call.
	if _, ok := foldOf(t, "g(a) % 1").(*BinaryExpr); !ok {
		t.Error("call operand must not be discarded")
	}
}

func TestFoldKeepsTraps(t *testing.T) {
	// Division by zero stays a runtime expression.
	if _, ok := foldOf(t, "5 / 0").(*BinaryExpr); !ok {
		t.Error("5/0 must not fold")
	}
	if _, ok := foldOf(t, "5 % 0").(*BinaryExpr); !ok {
		t.Error("5%0 must not fold")
	}
}

func TestFoldShrinksCode(t *testing.T) {
	folded, err := Compile("int f() { return 2 + 3 * 4; }", Config{Opt: O0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The whole body should be a single mov of 14 plus prologue/epilogue.
	found := false
	for _, in := range folded.Funcs[0].Insts {
		if in.String() == "mov eax, 0Eh" {
			found = true
		}
		if in.Mnemonic == "imul" || in.Mnemonic == "add" {
			t.Errorf("unfolded arithmetic survived: %s", in)
		}
	}
	if !found {
		t.Error("folded constant not materialized")
	}
}
