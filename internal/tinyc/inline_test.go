package tinyc

import (
	"strings"
	"testing"

	"repro/internal/bin"
	"repro/internal/prep"
)

const inlineSrc = `
int outer(int a, int b) {
	int x = tiny(a);
	int y = 0;
	y = x + tiny(b) * 2;
	tiny(y);
	if (a > 0) {
		y = y - tiny(a + b);
	}
	return y;
}
int tiny(int v) {
	int r = v * 3;
	if (r > 100) { r = 100; }
	return r;
}
`

// callsTo counts call instructions targeting internal functions in the
// compiled image's named function.
func internalCalls(t *testing.T, src string, opt OptLevel, fnName string) int {
	t.Helper()
	img, err := Build(src, Config{Opt: opt, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	f, err := bin.Read(img)
	if err != nil {
		t.Fatal(err)
	}
	fns, err := prep.Lift(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range fns {
		if fn.Name != fnName {
			continue
		}
		n := 0
		for _, b := range fn.Graph.Blocks {
			for _, in := range b.Insts {
				if in.IsCall() && strings.HasPrefix(in.Ops[0].Arg.Sym, "sub_") {
					n++
				}
			}
		}
		return n
	}
	t.Fatalf("function %s not found", fnName)
	return 0
}

func TestInliningRemovesLeafCalls(t *testing.T) {
	// O2 inlines tiny() everywhere in outer; Os keeps all four calls.
	if n := internalCalls(t, inlineSrc, O2, "outer"); n != 0 {
		t.Errorf("O2 left %d internal calls, want 0", n)
	}
	if n := internalCalls(t, inlineSrc, Os, "outer"); n != 4 {
		t.Errorf("Os has %d internal calls, want 4", n)
	}
	if n := internalCalls(t, inlineSrc, O0, "outer"); n != 4 {
		t.Errorf("O0 has %d internal calls, want 4", n)
	}
}

func TestInliningKeepsCalleeDefinition(t *testing.T) {
	p, err := Compile(inlineSrc, Config{Opt: O2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Funcs) != 2 {
		t.Errorf("inlined callee should still be emitted: %d funcs", len(p.Funcs))
	}
}

func TestInliningSkipsRecursionAndEarlyReturns(t *testing.T) {
	src := `
	int f(int a) { return f(a - 1) + g(a) + h(a); }
	int g(int v) { if (v > 0) { return 1; } return 2; }
	int h(int v) { return v + 1; }
	`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	inlineProgram(prog, 10)
	// g has an early return: not inlineable; h is; f recursive: the f call
	// inside f stays.
	text := renderCalls(prog.Funcs[0].Body)
	if !strings.Contains(text, "f(") {
		t.Error("recursive call should remain")
	}
	if !strings.Contains(text, "g(") {
		t.Error("early-return callee should remain a call")
	}
	if strings.Contains(text, "h(") {
		t.Error("leaf callee h should be inlined")
	}
}

// renderCalls collects call names appearing anywhere in a statement tree.
func renderCalls(s Stmt) string {
	var sb strings.Builder
	var walkExpr func(Expr)
	walkExpr = func(e Expr) {
		switch v := e.(type) {
		case *UnaryExpr:
			walkExpr(v.X)
		case *BinaryExpr:
			walkExpr(v.X)
			walkExpr(v.Y)
		case *CallExpr:
			sb.WriteString(v.Name + "(")
			for _, a := range v.Args {
				walkExpr(a)
			}
		}
	}
	var walkStmt func(Stmt)
	walkStmt = func(s Stmt) {
		switch v := s.(type) {
		case *BlockStmt:
			for _, st := range v.Stmts {
				walkStmt(st)
			}
		case *DeclStmt:
			if v.Init != nil {
				walkExpr(v.Init)
			}
		case *AssignStmt:
			walkExpr(v.X)
		case *IfStmt:
			walkExpr(v.Cond)
			walkStmt(v.Then)
			if v.Else != nil {
				walkStmt(v.Else)
			}
		case *WhileStmt:
			walkExpr(v.Cond)
			walkStmt(v.Body)
		case *ForStmt:
			if v.Init != nil {
				walkStmt(v.Init)
			}
			if v.Cond != nil {
				walkExpr(v.Cond)
			}
			if v.Post != nil {
				walkStmt(v.Post)
			}
			walkStmt(v.Body)
		case *ReturnStmt:
			if v.X != nil {
				walkExpr(v.X)
			}
		case *ExprStmt:
			walkExpr(v.X)
		}
	}
	walkStmt(s)
	return sb.String()
}

func TestInlinedProgramStillCompilesEverywhere(t *testing.T) {
	for _, opt := range []OptLevel{O0, O1, O2, Os} {
		img, err := Build(inlineSrc, Config{Opt: opt, Seed: 7})
		if err != nil {
			t.Fatalf("%v: %v", opt, err)
		}
		if _, err := prep.LiftImage(img); err != nil {
			t.Fatalf("%v: lift: %v", opt, err)
		}
	}
}

func TestSchedulerDeterministicAndLegal(t *testing.T) {
	src := inlineSrc
	a, err := Build(src, Config{Opt: O2, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(src, Config{Opt: O2, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("scheduling must be deterministic per seed")
	}
	// Every scheduled build must still decode and lift.
	for seed := int64(20); seed < 28; seed++ {
		img, err := Build(src, Config{Opt: O2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := prep.LiftImage(img); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
