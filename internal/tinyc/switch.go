package tinyc

import (
	"sort"

	"repro/internal/asm"
)

// genSwitch lowers a switch statement. Two strategies exist, exactly the
// variance the paper calls out for switch layout: a linear compare/branch
// chain, or — for dense case sets in table-preferring contexts — a bounds
// check plus an indirect jump through a .rodata lookup table.
func (g *funcGen) genSwitch(v *SwitchStmt) error {
	end := g.newLabel()
	defLbl := end
	if v.Default != nil {
		defLbl = g.newLabel()
	}
	caseLbl := make([]string, len(v.Cases))
	for i := range v.Cases {
		caseLbl[i] = g.newLabel()
	}

	if err := g.genExpr(v.X); err != nil {
		return err
	}
	acc := g.accOp()

	if min, span, ok := denseCaseRange(v.Cases); ok && g.k.switchTable {
		// Jump table: normalize to a zero-based index, bounds check, then
		// dispatch through the table. The unsigned "ja" catches values
		// below min as well (they wrap to huge unsigned indices).
		if min != 0 {
			g.emitf("sub", acc, asm.ImmOp(min))
		}
		g.emitf("cmp", acc, asm.ImmOp(span-1))
		g.jcc("ja", defLbl)
		tbl := g.pool.addTable(int(span))
		byValue := make(map[int64]string, len(v.Cases))
		for i, cs := range v.Cases {
			byValue[cs.Value] = caseLbl[i]
		}
		for j := int64(0); j < span; j++ {
			lbl, ok := byValue[min+j]
			if !ok {
				lbl = defLbl
			}
			g.pool.addTableReloc(tbl, int(j), g.fn.Name, lbl)
		}
		g.emit(asm.New("jmp", asm.MemOperand(
			asm.MemTerm{Op: asm.OpAdd, Arg: asm.SymArg(asm.SymData, tbl)},
			asm.MemTerm{Op: asm.OpAdd, Arg: g.accOp().Arg},
			asm.MemTerm{Op: asm.OpMul, Arg: asm.ImmArg(4)},
		)))
	} else {
		// Compare/branch chain.
		for i, cs := range v.Cases {
			g.emitf("cmp", acc, asm.ImmOp(cs.Value))
			g.jcc("jz", caseLbl[i])
		}
		g.jmp(defLbl)
	}

	// break inside a case body exits the switch, as in C.
	g.breakLbl = append(g.breakLbl, end)
	defer func() { g.breakLbl = g.breakLbl[:len(g.breakLbl)-1] }()
	for i, cs := range v.Cases {
		g.place(caseLbl[i])
		if err := g.genBlock(cs.Body); err != nil {
			return err
		}
		g.jmp(end)
	}
	if v.Default != nil {
		g.place(defLbl)
		if err := g.genBlock(v.Default); err != nil {
			return err
		}
	}
	g.place(end)
	return nil
}

// denseCaseRange reports whether the case values are worth a jump table:
// at least 4 cases, a span of at most 64 entries, and at least half the
// slots occupied.
func denseCaseRange(cases []SwitchCase) (min, span int64, ok bool) {
	if len(cases) < 4 {
		return 0, 0, false
	}
	vals := make([]int64, len(cases))
	for i, c := range cases {
		vals[i] = c.Value
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	min = vals[0]
	span = vals[len(vals)-1] - min + 1
	if span > 64 || int64(len(cases))*2 < span {
		return 0, 0, false
	}
	return min, span, true
}
