package tinyc

import "fmt"

// inlineProgram performs function inlining at O1/O2: calls to small leaf
// functions (ones that call nothing defined in the unit, with a single
// trailing return) are replaced by their renamed bodies. -Os and -O0 keep
// the calls, which is the dominant reason real -Os builds of the same
// source diverge structurally from -O2 builds (paper Section 8).
func inlineProgram(p *Program, maxStmts int) {
	byName := make(map[string]*FuncDecl, len(p.Funcs))
	for _, fn := range p.Funcs {
		byName[fn.Name] = fn
	}
	globals := make(map[string]bool, len(p.Globals))
	for _, g := range p.Globals {
		globals[g.Name] = true
	}
	inlineable := make(map[string]*FuncDecl)
	for _, fn := range p.Funcs {
		if isInlineable(fn, byName, maxStmts) {
			inlineable[fn.Name] = fn
		}
	}
	if len(inlineable) == 0 {
		return
	}
	for _, fn := range p.Funcs {
		ctx := &inliner{inlineable: inlineable, self: fn.Name, globals: globals}
		fn.Body = ctx.block(fn.Body)
	}
}

// isInlineable: small, non-recursive leaf (calls only externals), with
// returns appearing only as the final statement of the body.
func isInlineable(fn *FuncDecl, defined map[string]*FuncDecl, maxStmts int) bool {
	if countStmts(fn.Body) > maxStmts {
		return false
	}
	callsDefined := false
	var walkExpr func(Expr)
	walkExpr = func(e Expr) {
		switch v := e.(type) {
		case *UnaryExpr:
			walkExpr(v.X)
		case *BinaryExpr:
			walkExpr(v.X)
			walkExpr(v.Y)
		case *CallExpr:
			if _, ok := defined[v.Name]; ok {
				callsDefined = true
			}
			for _, a := range v.Args {
				walkExpr(a)
			}
		}
	}
	returns := 0
	badReturn := false
	var walkStmt func(s Stmt, isLast, topLevel bool)
	walkStmt = func(s Stmt, isLast, topLevel bool) {
		switch v := s.(type) {
		case *BlockStmt:
			for i, st := range v.Stmts {
				walkStmt(st, isLast && i == len(v.Stmts)-1, topLevel)
			}
		case *ReturnStmt:
			returns++
			if !isLast || !topLevel {
				badReturn = true
			}
			if v.X != nil {
				walkExpr(v.X)
			}
		case *DeclStmt:
			if v.Init != nil {
				walkExpr(v.Init)
			}
		case *AssignStmt:
			walkExpr(v.X)
		case *IfStmt:
			walkExpr(v.Cond)
			walkStmt(v.Then, false, false)
			if v.Else != nil {
				walkStmt(v.Else, false, false)
			}
		case *WhileStmt:
			walkExpr(v.Cond)
			walkStmt(v.Body, false, false)
		case *SwitchStmt:
			walkExpr(v.X)
			for _, cs := range v.Cases {
				walkStmt(cs.Body, false, false)
			}
			if v.Default != nil {
				walkStmt(v.Default, false, false)
			}
		case *ForStmt:
			if v.Init != nil {
				walkStmt(v.Init, false, false)
			}
			if v.Cond != nil {
				walkExpr(v.Cond)
			}
			if v.Post != nil {
				walkStmt(v.Post, false, false)
			}
			walkStmt(v.Body, false, false)
		case *ExprStmt:
			walkExpr(v.X)
		}
	}
	walkStmt(fn.Body, true, true)
	return !callsDefined && !badReturn && returns <= 1
}

func countStmts(s Stmt) int {
	n := 0
	switch v := s.(type) {
	case *BlockStmt:
		for _, st := range v.Stmts {
			n += countStmts(st)
		}
		return n
	case *IfStmt:
		n = 1 + countStmts(v.Then)
		if v.Else != nil {
			n += countStmts(v.Else)
		}
		return n
	case *WhileStmt:
		return 1 + countStmts(v.Body)
	case *SwitchStmt:
		n = 1
		for _, cs := range v.Cases {
			n += countStmts(cs.Body)
		}
		if v.Default != nil {
			n += countStmts(v.Default)
		}
		return n
	case *ForStmt:
		return 1 + countStmts(v.Body)
	default:
		return 1
	}
}

// inliner rewrites one function's statements, expanding inlineable calls
// found in statement-level expressions (initializers, assignments,
// expression statements, returns, and once-evaluated if conditions).
type inliner struct {
	inlineable map[string]*FuncDecl
	self       string
	globals    map[string]bool
	nTemp      int
	pre        []Stmt // statements to emit before the one being rewritten
}

func (c *inliner) block(b *BlockStmt) *BlockStmt {
	out := &BlockStmt{}
	for _, s := range b.Stmts {
		out.Stmts = append(out.Stmts, c.rewrite(s)...)
	}
	return out
}

// rewrite processes one statement, returning any hoisted inlined blocks
// followed by the rewritten statement itself.
func (c *inliner) rewrite(s Stmt) []Stmt {
	saved := c.pre
	c.pre = nil
	ns := c.stmt(s)
	out := append(c.pre, ns)
	c.pre = saved
	return out
}

func (c *inliner) stmt(s Stmt) Stmt {
	switch v := s.(type) {
	case *BlockStmt:
		return c.block(v)
	case *DeclStmt:
		if v.Init != nil {
			v.Init = c.expr(v.Init)
		}
		return v
	case *AssignStmt:
		v.X = c.expr(v.X)
		return v
	case *ExprStmt:
		// A bare inlineable call needs no result temp.
		if call, ok := v.X.(*CallExpr); ok {
			if fn, ok := c.inlineable[call.Name]; ok && call.Name != c.self {
				blk, _ := c.expand(fn, call, false)
				return blk
			}
		}
		v.X = c.expr(v.X)
		return v
	case *ReturnStmt:
		if v.X != nil {
			v.X = c.expr(v.X)
		}
		return v
	case *IfStmt:
		// Conditions keep their calls (they may be skipped or
		// re-evaluated); only branch bodies are expanded.
		v.Then = c.block(v.Then)
		if v.Else != nil {
			v.Else = c.stmt(v.Else)
		}
		return v
	case *WhileStmt:
		v.Body = c.block(v.Body)
		return v
	case *SwitchStmt:
		// The scrutinee is evaluated exactly once; its hoisted blocks go
		// before the switch.
		v.X = c.expr(v.X)
		for i := range v.Cases {
			v.Cases[i].Body = c.block(v.Cases[i].Body)
		}
		if v.Default != nil {
			v.Default = c.block(v.Default)
		}
		return v
	case *ForStmt:
		// Init runs once: its hoisted blocks belong before the loop, which
		// is where rewrite places them. Post re-runs per iteration and is
		// left untouched.
		if v.Init != nil {
			init := c.rewrite(v.Init)
			if len(init) > 1 {
				c.pre = append(c.pre, init[:len(init)-1]...)
			}
			v.Init = init[len(init)-1]
		}
		v.Body = c.block(v.Body)
		return v
	default:
		return s
	}
}

func (c *inliner) expr(e Expr) Expr {
	switch v := e.(type) {
	case *UnaryExpr:
		v.X = c.expr(v.X)
		return v
	case *BinaryExpr:
		v.X = c.expr(v.X)
		v.Y = c.expr(v.Y)
		return v
	case *CallExpr:
		for i := range v.Args {
			v.Args[i] = c.expr(v.Args[i])
		}
		fn, ok := c.inlineable[v.Name]
		if !ok || v.Name == c.self {
			return v
		}
		blk, result := c.expand(fn, v, true)
		c.pre = append(c.pre, blk)
		return result
	default:
		return e
	}
}

// expand produces the renamed inlined body; when wantResult is set it
// declares a temp receiving the callee's return expression and returns an
// Ident for it.
func (c *inliner) expand(fn *FuncDecl, call *CallExpr, wantResult bool) (Stmt, Expr) {
	c.nTemp++
	prefix := fmt.Sprintf("__i%d_", c.nTemp)
	blk := &BlockStmt{}
	for i, p := range fn.Params {
		var init Expr
		if i < len(call.Args) {
			init = call.Args[i]
		} else {
			init = &IntLit{V: 0}
		}
		blk.Stmts = append(blk.Stmts, &DeclStmt{Name: prefix + p, Init: init})
	}
	// Callee locals that shadow globals must still be renamed; track the
	// callee's own declared names so only global references pass through.
	declared := map[string]bool{}
	for _, p := range fn.Params {
		declared[p] = true
	}
	collectDecls(fn.Body, declared)
	rn := &renamer{prefix: prefix, globals: c.globals, declared: declared}
	body, ret := splitTrailingReturn(fn.Body)
	for _, s := range body {
		blk.Stmts = append(blk.Stmts, rn.stmt(s))
	}
	if !wantResult {
		if ret != nil && ret.X != nil {
			blk.Stmts = append(blk.Stmts, &ExprStmt{X: rn.expr(ret.X)})
		}
		return blk, nil
	}
	tmp := prefix + "ret"
	var resultExpr Expr = &IntLit{V: 0}
	if ret != nil && ret.X != nil {
		resultExpr = rn.expr(ret.X)
	}
	blk.Stmts = append(blk.Stmts, &DeclStmt{Name: tmp, Init: resultExpr})
	return blk, &Ident{Name: tmp}
}

func splitTrailingReturn(b *BlockStmt) ([]Stmt, *ReturnStmt) {
	if n := len(b.Stmts); n > 0 {
		if ret, ok := b.Stmts[n-1].(*ReturnStmt); ok {
			return b.Stmts[:n-1], ret
		}
	}
	return b.Stmts, nil
}

// collectDecls gathers every locally declared variable name in a
// statement tree.
func collectDecls(s Stmt, out map[string]bool) {
	switch v := s.(type) {
	case *BlockStmt:
		for _, st := range v.Stmts {
			collectDecls(st, out)
		}
	case *DeclStmt:
		out[v.Name] = true
	case *IfStmt:
		collectDecls(v.Then, out)
		if v.Else != nil {
			collectDecls(v.Else, out)
		}
	case *WhileStmt:
		collectDecls(v.Body, out)
	case *SwitchStmt:
		for _, cs := range v.Cases {
			collectDecls(cs.Body, out)
		}
		if v.Default != nil {
			collectDecls(v.Default, out)
		}
	case *ForStmt:
		if v.Init != nil {
			collectDecls(v.Init, out)
		}
		collectDecls(v.Body, out)
	}
}

// renamer deep-copies callee statements, prefixing the callee's own
// parameters and locals while leaving global references intact.
type renamer struct {
	prefix   string
	globals  map[string]bool
	declared map[string]bool // callee params + locals
}

func (r *renamer) name(n string) string {
	if r.globals[n] && !r.declared[n] {
		return n
	}
	return r.prefix + n
}

func (r *renamer) stmt(s Stmt) Stmt {
	switch v := s.(type) {
	case *BlockStmt:
		out := &BlockStmt{}
		for _, st := range v.Stmts {
			out.Stmts = append(out.Stmts, r.stmt(st))
		}
		return out
	case *DeclStmt:
		out := &DeclStmt{Name: r.prefix + v.Name}
		if v.Init != nil {
			out.Init = r.expr(v.Init)
		}
		return out
	case *AssignStmt:
		return &AssignStmt{Name: r.name(v.Name), X: r.expr(v.X)}
	case *IfStmt:
		out := &IfStmt{Cond: r.expr(v.Cond)}
		out.Then = r.stmt(v.Then).(*BlockStmt)
		if v.Else != nil {
			out.Else = r.stmt(v.Else)
		}
		return out
	case *WhileStmt:
		return &WhileStmt{
			Cond: r.expr(v.Cond),
			Body: r.stmt(v.Body).(*BlockStmt),
		}
	case *SwitchStmt:
		out := &SwitchStmt{X: r.expr(v.X)}
		for _, cs := range v.Cases {
			out.Cases = append(out.Cases, SwitchCase{
				Value: cs.Value,
				Body:  r.stmt(cs.Body).(*BlockStmt),
			})
		}
		if v.Default != nil {
			out.Default = r.stmt(v.Default).(*BlockStmt)
		}
		return out
	case *ForStmt:
		out := &ForStmt{Body: r.stmt(v.Body).(*BlockStmt)}
		if v.Init != nil {
			out.Init = r.stmt(v.Init)
		}
		if v.Cond != nil {
			out.Cond = r.expr(v.Cond)
		}
		if v.Post != nil {
			out.Post = r.stmt(v.Post)
		}
		return out
	case *ReturnStmt:
		// Unreachable for inlineable callees (single trailing return,
		// already split off); kept for safety.
		out := &ReturnStmt{}
		if v.X != nil {
			out.X = r.expr(v.X)
		}
		return out
	case *ExprStmt:
		return &ExprStmt{X: r.expr(v.X)}
	default:
		return s
	}
}

func (r *renamer) expr(e Expr) Expr {
	switch v := e.(type) {
	case *IntLit:
		return &IntLit{V: v.V}
	case *StrLit:
		return &StrLit{S: v.S}
	case *Ident:
		return &Ident{Name: r.name(v.Name)}
	case *UnaryExpr:
		return &UnaryExpr{Op: v.Op, X: r.expr(v.X)}
	case *BinaryExpr:
		return &BinaryExpr{Op: v.Op, X: r.expr(v.X), Y: r.expr(v.Y)}
	case *CallExpr:
		out := &CallExpr{Name: v.Name}
		for _, a := range v.Args {
			out.Args = append(out.Args, r.expr(a))
		}
		return out
	default:
		return e
	}
}
