package tinyc

import (
	"strings"
	"testing"

	"repro/internal/prep"
)

const switchSrc = `
int dispatch(int cmd, int x) {
	int r = 0;
	switch (cmd) {
	case 1:
		r = x + 10;
	case 2:
		r = x * 2;
	case 3:
		r = x - 5;
		if (r < 0) { r = 0; }
	case 4:
		r = x / 2;
	case 7:
		r = 77;
	default:
		r = 0 - 1;
	}
	return r;
}
`

func TestSwitchParses(t *testing.T) {
	prog, err := Parse(switchSrc)
	if err != nil {
		t.Fatal(err)
	}
	var sw *SwitchStmt
	for _, s := range prog.Funcs[0].Body.Stmts {
		if v, ok := s.(*SwitchStmt); ok {
			sw = v
		}
	}
	if sw == nil {
		t.Fatal("no switch parsed")
	}
	if len(sw.Cases) != 5 || sw.Default == nil {
		t.Fatalf("cases=%d default=%v", len(sw.Cases), sw.Default != nil)
	}
}

func TestSwitchParseErrors(t *testing.T) {
	for _, src := range []string{
		"int f(int a) { switch (a) { } return 0; }",                        // no cases
		"int f(int a) { switch (a) { case a: a = 1; } return 0; }",         // non-literal
		"int f(int a) { switch (a) { case 1: case 1: a = 1; } return 0; }", // duplicate
		"int f(int a) { switch (a) { default: a = 0; default: a = 1; case 1: a = 2; } return 0; }",
		"int f(int a) { switch (a) { banana } return 0; }",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

// findStrategies compiles switchSrc across seeds and returns whether both
// lowering strategies were observed at O2.
func findStrategies(t *testing.T) (chainSeed, tableSeed int64) {
	t.Helper()
	chainSeed, tableSeed = -1, -1
	for seed := int64(1); seed <= 16; seed++ {
		p, err := Compile(switchSrc, Config{Opt: O2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		hasTable := false
		for _, d := range p.Data {
			if strings.HasPrefix(d.Name, "jtab_") {
				hasTable = true
			}
		}
		if hasTable && tableSeed < 0 {
			tableSeed = seed
		}
		if !hasTable && chainSeed < 0 {
			chainSeed = seed
		}
	}
	if chainSeed < 0 || tableSeed < 0 {
		t.Fatalf("both strategies should appear across seeds: chain=%d table=%d",
			chainSeed, tableSeed)
	}
	return chainSeed, tableSeed
}

func TestSwitchBothStrategiesAppear(t *testing.T) {
	findStrategies(t)
}

func TestSwitchJumpTableCFGRecovery(t *testing.T) {
	_, tableSeed := findStrategies(t)
	img, err := BuildStripped(switchSrc, Config{Opt: O2, Seed: tableSeed})
	if err != nil {
		t.Fatal(err)
	}
	fns, err := prep.LiftImage(img)
	if err != nil {
		t.Fatal(err)
	}
	fn := fns[0]
	// The dispatch block ends in an indirect jmp; table recovery must
	// give it >= 5 successors (cases + default slots).
	maxSuccs := 0
	sawIndirect := false
	for _, b := range fn.Graph.Blocks {
		if len(b.Succs) > maxSuccs {
			maxSuccs = len(b.Succs)
		}
		for _, in := range b.Insts {
			if in.Mnemonic == "jmp" && len(in.Ops) == 1 && in.Ops[0].IsMem() {
				sawIndirect = true
			}
		}
	}
	if !sawIndirect {
		t.Fatalf("no indirect jump in table build:\n%s", fn.Graph)
	}
	if maxSuccs < 5 {
		t.Errorf("jump-table successors not recovered: max out-degree %d\n%s",
			maxSuccs, fn.Graph)
	}
}

func TestSwitchChainCFG(t *testing.T) {
	chainSeed, _ := findStrategies(t)
	img, err := BuildStripped(switchSrc, Config{Opt: O2, Seed: chainSeed})
	if err != nil {
		t.Fatal(err)
	}
	fns, err := prep.LiftImage(img)
	if err != nil {
		t.Fatal(err)
	}
	// A chain build has no indirect jumps and still many blocks.
	for _, b := range fns[0].Graph.Blocks {
		for _, in := range b.Insts {
			if in.Mnemonic == "jmp" && len(in.Ops) == 1 && in.Ops[0].IsMem() {
				t.Fatal("chain build contains an indirect jump")
			}
		}
	}
	if fns[0].NumBlocks() < 8 {
		t.Errorf("chain build has only %d blocks", fns[0].NumBlocks())
	}
}

func TestSwitchSparseFallsBackToChain(t *testing.T) {
	sparse := `
	int f(int a) {
		int r = 0;
		switch (a) {
		case 1: r = 1;
		case 100: r = 2;
		case 2000: r = 3;
		case 30000: r = 4;
		default: r = 5;
		}
		return r;
	}
	`
	for seed := int64(1); seed <= 8; seed++ {
		p, err := Compile(sparse, Config{Opt: O2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range p.Data {
			if strings.HasPrefix(d.Name, "jtab_") {
				t.Fatal("sparse switch must not use a jump table")
			}
		}
	}
}

func TestSwitchBreakInsideCase(t *testing.T) {
	src := `
	int f(int a) {
		int r = 0;
		switch (a) {
		case 1:
			r = 10;
			if (a == 1) { break; }
			r = 20;
		case 2: r = 2;
		case 3: r = 3;
		case 4: r = 4;
		default: r = 99;
		}
		return r + 1;
	}
	`
	if _, err := Compile(src, Config{Opt: O2, Seed: 1}); err != nil {
		t.Fatal(err)
	}
}
