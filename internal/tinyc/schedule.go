package tinyc

import (
	"math/rand"

	"repro/internal/asm"
)

// scheduleFunc performs a seeded local instruction scheduling pass: within
// each region between control-flow instructions and labels, independent
// adjacent instructions may be reordered. This models the scheduling
// freedom real compilers exercise differently from build to build — one of
// the main reasons the paper's n-gram baseline degrades across contexts
// while tracelet alignment absorbs the transpositions.
//
// Dependence rules (conservative):
//   - control flow (jumps, calls, returns) and any esp-affecting
//     instruction are barriers;
//   - two instructions conflict if one writes a register the other reads
//     or writes;
//   - two memory-touching instructions conflict unless both address
//     distinct constant offsets from the same base register;
//   - the final flag-setting instruction before a region end is pinned
//     (its flags feed the following jcc).
func scheduleFunc(insts []asm.Inst, labels map[string]int, rng *rand.Rand) []asm.Inst {
	// Region boundaries: labels and control flow.
	isLabelTarget := make([]bool, len(insts)+1)
	for _, idx := range labels {
		if idx >= 0 && idx <= len(insts) {
			isLabelTarget[idx] = true
		}
	}
	out := append([]asm.Inst(nil), insts...)
	start := 0
	for i := 0; i <= len(out); i++ {
		atEnd := i == len(out)
		boundary := atEnd || isLabelTarget[i] || isBarrier(out[i])
		if !boundary {
			continue
		}
		end := i
		scheduleRegion(out[start:end], rng)
		start = i + 1
	}
	return out
}

func isBarrier(in asm.Inst) bool {
	if in.IsControlFlow() {
		return true
	}
	// esp-affecting instructions keep their order (push/pop/sub esp).
	if w := in.Write(); w[asm.ESP] {
		return true
	}
	return false
}

// scheduleRegion shuffles a dependence-free region: it applies a random
// sequence of legal adjacent transpositions.
func scheduleRegion(insts []asm.Inst, rng *rand.Rand) {
	n := len(insts)
	if n < 2 {
		return
	}
	// Pin the last instruction if anything could consume its flags later
	// (conservative: always pin the final instruction of the region).
	limit := n - 1
	for pass := 0; pass < 2; pass++ {
		for j := 0; j+1 < limit; j++ {
			if rng.Intn(2) == 0 {
				continue
			}
			if independent(insts[j], insts[j+1]) {
				insts[j], insts[j+1] = insts[j+1], insts[j]
			}
		}
	}
}

// independent reports whether two instructions may be swapped.
func independent(a, b asm.Inst) bool {
	ra, wa := a.Read(), a.Write()
	rb, wb := b.Read(), b.Write()
	for r := range wa {
		if rb[r] || wb[r] {
			return false
		}
	}
	for r := range wb {
		if ra[r] {
			return false
		}
	}
	if touchesMem(a) && touchesMem(b) && !distinctSlots(a, b) {
		return false
	}
	return true
}

func touchesMem(in asm.Inst) bool {
	for _, op := range in.Ops {
		if op.IsMem() {
			return true
		}
	}
	return false
}

// distinctSlots reports whether the two instructions' memory operands are
// provably disjoint: single memory operand each, same base register, both
// with constant displacements that differ.
func distinctSlots(a, b asm.Inst) bool {
	ma, oka := soleMem(a)
	mb, okb := soleMem(b)
	if !oka || !okb {
		return false
	}
	baseA, dispA, okA := baseDisp(ma)
	baseB, dispB, okB := baseDisp(mb)
	return okA && okB && baseA == baseB && dispA != dispB
}

func soleMem(in asm.Inst) (asm.Operand, bool) {
	var found asm.Operand
	count := 0
	for _, op := range in.Ops {
		if op.IsMem() {
			found = op
			count++
		}
	}
	return found, count == 1
}

// baseDisp decomposes [reg+const] / [reg-const] / [reg].
func baseDisp(op asm.Operand) (asm.Reg, int64, bool) {
	base := asm.RegNone
	disp := int64(0)
	for i, t := range op.Mem {
		switch {
		case t.Arg.IsReg() && i == 0 && t.Op == asm.OpAdd:
			base = t.Arg.Reg
		case t.Arg.IsImm() && t.Op == asm.OpAdd:
			disp += t.Arg.Imm
		case t.Arg.IsImm() && t.Op == asm.OpSub:
			disp -= t.Arg.Imm
		default:
			return asm.RegNone, 0, false
		}
	}
	if base == asm.RegNone {
		return asm.RegNone, 0, false
	}
	return base, disp, true
}
