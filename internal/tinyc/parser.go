package tinyc

import "fmt"

type parser struct {
	toks []token
	pos  int
}

// Parse parses a TinyC translation unit.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	seenGlobal := map[string]bool{}
	for !p.at(tokEOF, "") {
		// Lookahead: "type ident (" is a function, "type ident =|;" a
		// global.
		if g, ok, err := p.tryGlobal(); err != nil {
			return nil, err
		} else if ok {
			if seenGlobal[g.Name] {
				return nil, fmt.Errorf("tinyc: duplicate global %s", g.Name)
			}
			seenGlobal[g.Name] = true
			prog.Globals = append(prog.Globals, g)
			continue
		}
		fn, err := p.funcDecl()
		if err != nil {
			return nil, err
		}
		prog.Funcs = append(prog.Funcs, fn)
	}
	if len(prog.Funcs) == 0 {
		return nil, fmt.Errorf("tinyc: empty program")
	}
	return prog, nil
}

// tryGlobal parses a file-scope "int name [= literal];" if the lookahead
// matches one; it returns ok=false (without consuming input) for function
// definitions.
func (p *parser) tryGlobal() (GlobalDecl, bool, error) {
	save := p.pos
	if !p.atType() {
		return GlobalDecl{}, false, nil
	}
	if err := p.typeName(); err != nil {
		return GlobalDecl{}, false, err
	}
	name, err := p.expectIdent()
	if err != nil {
		p.pos = save
		return GlobalDecl{}, false, nil
	}
	if p.at(tokPunct, "(") {
		p.pos = save
		return GlobalDecl{}, false, nil
	}
	g := GlobalDecl{Name: name}
	if p.accept(tokPunct, "=") {
		neg := p.accept(tokPunct, "-")
		t := p.cur()
		if t.kind != tokInt {
			return GlobalDecl{}, false, fmt.Errorf("tinyc: line %d: global initializer must be an integer literal", t.line)
		}
		p.advance()
		g.Init = t.val
		if neg {
			g.Init = -g.Init
		}
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return GlobalDecl{}, false, err
	}
	return g, true, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) advance()   { p.pos++ }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	t := p.cur()
	if !p.at(kind, text) {
		return t, fmt.Errorf("tinyc: line %d: expected %q, found %q", t.line, text, t.text)
	}
	p.advance()
	return t, nil
}

// typeName parses "int" | "char *" | "void" and discards it (TinyC is
// effectively untyped 32-bit).
func (p *parser) typeName() error {
	t := p.cur()
	if t.kind != tokKeyword || (t.text != "int" && t.text != "char" && t.text != "void") {
		return fmt.Errorf("tinyc: line %d: expected type, found %q", t.line, t.text)
	}
	p.advance()
	for p.accept(tokPunct, "*") {
	}
	return nil
}

func (p *parser) atType() bool {
	t := p.cur()
	return t.kind == tokKeyword && (t.text == "int" || t.text == "char" || t.text == "void")
}

func (p *parser) funcDecl() (*FuncDecl, error) {
	if err := p.typeName(); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	fn := &FuncDecl{Name: name}
	if !p.at(tokPunct, ")") {
		for {
			if p.atType() {
				if err := p.typeName(); err != nil {
					return nil, err
				}
			}
			pn, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			fn.Params = append(fn.Params, pn)
			if !p.accept(tokPunct, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", fmt.Errorf("tinyc: line %d: expected identifier, found %q", t.line, t.text)
	}
	p.advance()
	return t.text, nil
}

func (p *parser) block() (*BlockStmt, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	b := &BlockStmt{}
	for !p.at(tokPunct, "}") {
		if p.at(tokEOF, "") {
			return nil, fmt.Errorf("tinyc: unexpected EOF in block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.advance()
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.at(tokPunct, "{"):
		return p.block()
	case p.atType():
		return p.declStmt(true)
	case t.kind == tokKeyword && t.text == "if":
		return p.ifStmt()
	case t.kind == tokKeyword && t.text == "while":
		p.advance()
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body}, nil
	case t.kind == tokKeyword && t.text == "for":
		return p.forStmt()
	case t.kind == tokKeyword && t.text == "switch":
		return p.switchStmt()
	case t.kind == tokKeyword && t.text == "return":
		p.advance()
		var x Expr
		if !p.at(tokPunct, ";") {
			var err error
			if x, err = p.expr(); err != nil {
				return nil, err
			}
		}
		_, err := p.expect(tokPunct, ";")
		return &ReturnStmt{X: x}, err
	case t.kind == tokKeyword && t.text == "break":
		p.advance()
		_, err := p.expect(tokPunct, ";")
		return &BreakStmt{}, err
	case t.kind == tokKeyword && t.text == "continue":
		p.advance()
		_, err := p.expect(tokPunct, ";")
		return &ContinueStmt{}, err
	default:
		return p.simpleStmt(true)
	}
}

// declStmt parses "int x = e;" (semi controls whether ';' is consumed, for
// for-headers).
func (p *parser) declStmt(semi bool) (Stmt, error) {
	if err := p.typeName(); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d := &DeclStmt{Name: name}
	if p.accept(tokPunct, "=") {
		if d.Init, err = p.expr(); err != nil {
			return nil, err
		}
	}
	if semi {
		_, err = p.expect(tokPunct, ";")
	}
	return d, err
}

// simpleStmt parses "x = e;" or an expression statement.
func (p *parser) simpleStmt(semi bool) (Stmt, error) {
	if p.cur().kind == tokIdent && p.pos+1 < len(p.toks) &&
		p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == "=" {
		name := p.cur().text
		p.advance()
		p.advance()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if semi {
			if _, err := p.expect(tokPunct, ";"); err != nil {
				return nil, err
			}
		}
		return &AssignStmt{Name: name, X: x}, nil
	}
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	if semi {
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
	}
	return &ExprStmt{X: x}, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	p.advance() // if
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Cond: cond, Then: then}
	if p.accept(tokKeyword, "else") {
		if p.at(tokKeyword, "if") {
			st.Else, err = p.ifStmt()
		} else {
			st.Else, err = p.block()
		}
		if err != nil {
			return nil, err
		}
	}
	return st, nil
}

// switchStmt parses switch (x) { case N: stmts... default: stmts... }.
// Case bodies run to the next case/default/closing brace and never fall
// through.
func (p *parser) switchStmt() (Stmt, error) {
	p.advance() // switch
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	st := &SwitchStmt{X: x}
	seen := map[int64]bool{}
	parseBody := func() (*BlockStmt, error) {
		body := &BlockStmt{}
		for {
			t := p.cur()
			if p.at(tokPunct, "}") || (t.kind == tokKeyword && (t.text == "case" || t.text == "default")) {
				return body, nil
			}
			if p.at(tokEOF, "") {
				return nil, fmt.Errorf("tinyc: unexpected EOF in switch")
			}
			s, err := p.stmt()
			if err != nil {
				return nil, err
			}
			body.Stmts = append(body.Stmts, s)
		}
	}
	for !p.at(tokPunct, "}") {
		t := p.cur()
		switch {
		case t.kind == tokKeyword && t.text == "case":
			p.advance()
			neg := p.accept(tokPunct, "-")
			vt := p.cur()
			if vt.kind != tokInt {
				return nil, fmt.Errorf("tinyc: line %d: case value must be an integer literal", vt.line)
			}
			p.advance()
			v := vt.val
			if neg {
				v = -v
			}
			if seen[v] {
				return nil, fmt.Errorf("tinyc: line %d: duplicate case %d", vt.line, v)
			}
			seen[v] = true
			if _, err := p.expect(tokPunct, ":"); err != nil {
				return nil, err
			}
			body, err := parseBody()
			if err != nil {
				return nil, err
			}
			st.Cases = append(st.Cases, SwitchCase{Value: v, Body: body})
		case t.kind == tokKeyword && t.text == "default":
			p.advance()
			if _, err := p.expect(tokPunct, ":"); err != nil {
				return nil, err
			}
			if st.Default != nil {
				return nil, fmt.Errorf("tinyc: line %d: duplicate default", t.line)
			}
			body, err := parseBody()
			if err != nil {
				return nil, err
			}
			st.Default = body
		default:
			return nil, fmt.Errorf("tinyc: line %d: expected case or default, found %q", t.line, t.text)
		}
	}
	p.advance()
	if len(st.Cases) == 0 {
		return nil, fmt.Errorf("tinyc: switch with no cases")
	}
	return st, nil
}

func (p *parser) forStmt() (Stmt, error) {
	p.advance() // for
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	f := &ForStmt{}
	var err error
	if !p.at(tokPunct, ";") {
		if p.atType() {
			f.Init, err = p.declStmt(false)
		} else {
			f.Init, err = p.simpleStmt(false)
		}
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	if !p.at(tokPunct, ";") {
		if f.Cond, err = p.expr(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	if !p.at(tokPunct, ")") {
		if f.Post, err = p.simpleStmt(false); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

// Expression grammar with standard precedence:
// or > and > cmp > add > mul > unary > primary.
func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	x, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tokPunct, "||") {
		p.advance()
		y, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Op: "||", X: x, Y: y}
	}
	return x, nil
}

func (p *parser) andExpr() (Expr, error) {
	x, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tokPunct, "&&") {
		p.advance()
		y, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Op: "&&", X: x, Y: y}
	}
	return x, nil
}

func (p *parser) cmpExpr() (Expr, error) {
	x, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct {
			return x, nil
		}
		switch t.text {
		case "==", "!=", "<", "<=", ">", ">=":
			p.advance()
			y, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			x = &BinaryExpr{Op: t.text, X: x, Y: y}
		default:
			return x, nil
		}
	}
}

func (p *parser) addExpr() (Expr, error) {
	x, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tokPunct, "+") || p.at(tokPunct, "-") {
		op := p.cur().text
		p.advance()
		y, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Op: op, X: x, Y: y}
	}
	return x, nil
}

func (p *parser) mulExpr() (Expr, error) {
	x, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.at(tokPunct, "*") || p.at(tokPunct, "/") || p.at(tokPunct, "%") {
		op := p.cur().text
		p.advance()
		y, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		x = &BinaryExpr{Op: op, X: x, Y: y}
	}
	return x, nil
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.at(tokPunct, "-") || p.at(tokPunct, "!") {
		op := p.cur().text
		p.advance()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: op, X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokInt:
		p.advance()
		return &IntLit{V: t.val}, nil
	case t.kind == tokStr:
		p.advance()
		return &StrLit{S: t.str}, nil
	case t.kind == tokIdent:
		p.advance()
		if p.accept(tokPunct, "(") {
			call := &CallExpr{Name: t.text}
			if !p.at(tokPunct, ")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(tokPunct, ",") {
						break
					}
				}
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		return &Ident{Name: t.text}, nil
	case p.accept(tokPunct, "("):
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return x, nil
	default:
		return nil, fmt.Errorf("tinyc: line %d: unexpected token %q", t.line, t.text)
	}
}
