package tinyc

import (
	"strings"
	"testing"

	"repro/internal/bin"
	"repro/internal/prep"
)

const globalsSrc = `
int counter = 7;
int limit = 100;
int bump(int by) {
	counter = counter + by;
	if (counter > limit) { counter = limit; }
	return counter;
}
int run(int n) {
	int i = 0;
	for (i = 0; i < n; i = i + 1) { bump(i); }
	return counter + limit;
}
`

func TestGlobalsParse(t *testing.T) {
	prog, err := Parse(globalsSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Globals) != 2 || len(prog.Funcs) != 2 {
		t.Fatalf("globals=%d funcs=%d", len(prog.Globals), len(prog.Funcs))
	}
	if prog.Globals[0].Name != "counter" || prog.Globals[0].Init != 7 {
		t.Errorf("global 0 = %+v", prog.Globals[0])
	}
}

func TestGlobalsParseErrors(t *testing.T) {
	for _, src := range []string{
		"int g = x;\nint f() { return 0; }",             // non-literal init
		"int g = 1;\nint g = 2;\nint f() { return 0; }", // duplicate
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestGlobalsInDataSection(t *testing.T) {
	img, err := Build(globalsSrc, Config{Opt: O2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	f, err := bin.Read(img)
	if err != nil {
		t.Fatal(err)
	}
	data := f.Section(".data")
	if data == nil || len(data.Data) < 8 {
		t.Fatal("missing .data section")
	}
	if !data.Writable() {
		t.Error(".data should be writable")
	}
	if ro := f.Section(".rodata"); ro.Writable() {
		t.Error(".rodata should not be writable")
	}
	// Initializers present: 7 and 100 little-endian.
	found7, found100 := false, false
	for i := 0; i+4 <= len(data.Data); i += 4 {
		v := uint32(data.Data[i]) | uint32(data.Data[i+1])<<8 |
			uint32(data.Data[i+2])<<16 | uint32(data.Data[i+3])<<24
		if v == 7 {
			found7 = true
		}
		if v == 100 {
			found100 = true
		}
	}
	if !found7 || !found100 {
		t.Errorf("initializers missing from .data: % X", data.Data)
	}
}

func TestGlobalsCompileAllLevels(t *testing.T) {
	for _, opt := range []OptLevel{O0, O1, O2, Os} {
		img, err := BuildStripped(globalsSrc, Config{Opt: opt, Seed: 3})
		if err != nil {
			t.Fatalf("%v: %v", opt, err)
		}
		fns, err := prep.LiftImage(img)
		if err != nil {
			t.Fatalf("%v: %v", opt, err)
		}
		// Global accesses appear as content-derived data tokens.
		all := ""
		for _, fn := range fns {
			all += fn.Graph.String()
		}
		if !strings.Contains(all, "unk_") {
			t.Errorf("%v: global accesses not tokenized:\n%s", opt, all)
		}
	}
}

func TestLocalShadowsGlobal(t *testing.T) {
	src := `
	int x = 50;
	int f(int a) {
		int x = 1;
		x = x + a;
		return x;
	}
	`
	p, err := Compile(src, Config{Opt: O0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The function body must not reference the global datum g_x.
	for _, in := range p.Funcs[0].Insts {
		if strings.Contains(in.String(), "g_x") {
			t.Errorf("local should shadow global: %s", in)
		}
	}
}

func TestGlobalInInlinedCallee(t *testing.T) {
	// The inliner must NOT rename global references in inlined bodies.
	src := `
	int total = 0;
	int add(int v) { total = total + v; return total; }
	int f(int a) { int r = add(a) + add(a * 2); return r + total; }
	`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	inlineProgram(prog, 10)
	// Compile end-to-end at O2 (inlining on): must not error with
	// undefined __iN_total.
	if _, err := Compile(src, Config{Opt: O2, Seed: 2}); err != nil {
		t.Fatalf("inlined global reference broke compilation: %v", err)
	}
}
