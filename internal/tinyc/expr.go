package tinyc

import (
	"fmt"

	"repro/internal/asm"
)

// acc returns the expression accumulator register. The default is eax; at
// O2 a context may pick ecx instead (the accumulator knob), which renames
// nearly every value-carrying instruction between contexts — the variance
// the rewrite engine of the paper's Section 4.4 bridges.
func (g *funcGen) accOp() asm.Operand { return asm.RegOp(g.k.accReg) }

// tmpOp returns the scratch register paired with the accumulator.
func (g *funcGen) tmpOp() asm.Operand {
	if g.k.accReg == asm.ECX {
		return asm.RegOp(asm.EDX)
	}
	return asm.RegOp(asm.ECX)
}

// genExpr evaluates e into the accumulator. The scratch register and edx
// are clobbered; esi/edi/ebx hold register-allocated variables and
// survive.
func (g *funcGen) genExpr(e Expr) error {
	acc := g.accOp()
	switch v := e.(type) {
	case *IntLit:
		if g.k.peephole && v.V == 0 {
			g.emitf("xor", acc, acc)
		} else {
			g.emitf("mov", acc, asm.ImmOp(v.V))
		}
		return nil
	case *StrLit:
		name := g.pool.intern(v.S)
		g.emitf("mov", acc, asm.OffsetOp(asm.SymData, name))
		return nil
	case *Ident:
		home, err := g.home(v.Name)
		if err != nil {
			return err
		}
		g.emitf("mov", acc, home)
		return nil
	case *UnaryExpr:
		switch v.Op {
		case "-":
			if err := g.genExpr(v.X); err != nil {
				return err
			}
			g.emitf("neg", acc)
			return nil
		case "!":
			return g.materializeBool(v)
		}
		return fmt.Errorf("unknown unary op %q", v.Op)
	case *BinaryExpr:
		switch v.Op {
		case "+", "-", "*", "/", "%":
			return g.genArith(v)
		default:
			// Comparisons and logical operators as values.
			return g.materializeBool(v)
		}
	case *CallExpr:
		return g.genCall(v, true)
	}
	return fmt.Errorf("unknown expression %T", e)
}

// materializeBool evaluates a boolean expression into the accumulator as
// 0/1 — with a setcc/movzx pair when the context prefers it (gcc's idiom)
// or through branches otherwise (older-compiler style; also used for the
// short-circuit operators, whose evaluation is inherently branchy).
func (g *funcGen) materializeBool(e Expr) error {
	acc := g.accOp()
	if g.k.useSetcc {
		if v, ok := e.(*BinaryExpr); ok {
			if ccT, _, ok := ccFor(v.Op); ok {
				if low := g.k.accReg.Low8(); low != asm.RegNone {
					if err := g.genCompare(v); err != nil {
						return err
					}
					g.emitf("set"+ccT[1:], asm.RegOp(low))
					g.emitf("movzx", acc, asm.RegOp(low))
					return nil
				}
			}
		}
	}
	falseLbl := g.newLabel()
	end := g.newLabel()
	if err := g.genCondJump(e, falseLbl, false); err != nil {
		return err
	}
	g.emitf("mov", acc, asm.ImmOp(1))
	g.jmp(end)
	g.place(falseLbl)
	if g.k.peephole {
		g.emitf("xor", acc, acc)
	} else {
		g.emitf("mov", acc, asm.ImmOp(0))
	}
	g.place(end)
	return nil
}

// simpleOperand returns an operand usable directly as the right-hand side
// of an ALU op (an immediate, a register variable, or a memory home),
// avoiding the generic push/pop scheme.
func (g *funcGen) simpleOperand(e Expr) (asm.Operand, bool) {
	if !g.k.immShortcut {
		return asm.Operand{}, false
	}
	switch v := e.(type) {
	case *IntLit:
		return asm.ImmOp(v.V), true
	case *Ident:
		if home, err := g.home(v.Name); err == nil {
			return home, true
		}
	}
	return asm.Operand{}, false
}

// genDiv emits the division tail: dividend is in the accumulator, divisor
// in rhs (a register or memory operand, never eax or edx). The quotient or
// remainder lands back in the accumulator.
func (g *funcGen) genDiv(rhs asm.Operand, mod bool) {
	acc := g.accOp()
	eax := asm.RegOp(asm.EAX)
	if g.k.accReg != asm.EAX {
		g.emitf("mov", eax, acc)
	}
	g.emitf("cdq")
	g.emitf("idiv", rhs)
	src := eax
	if mod {
		src = asm.RegOp(asm.EDX)
	}
	if g.k.accReg != asm.EAX || mod {
		g.emitf("mov", acc, src)
	}
}

func (g *funcGen) genArith(v *BinaryExpr) error {
	acc := g.accOp()
	// x OP simple: evaluate x into the accumulator, apply directly.
	if rhs, ok := g.simpleOperand(v.Y); ok {
		if err := g.genExpr(v.X); err != nil {
			return err
		}
		switch v.Op {
		case "+":
			if g.k.peephole && isOne(v.Y) {
				g.emitf("inc", acc)
				return nil
			}
			g.emitf("add", acc, rhs)
		case "-":
			if g.k.peephole && isOne(v.Y) {
				g.emitf("dec", acc)
				return nil
			}
			g.emitf("sub", acc, rhs)
		case "*":
			if lit, isLit := v.Y.(*IntLit); isLit {
				if sh, ok := log2(lit.V); ok && g.k.shiftMul {
					g.emitf("shl", acc, asm.ImmOp(sh))
					return nil
				}
				g.emitf("imul", acc, acc, asm.ImmOp(lit.V))
			} else {
				g.emitf("imul", acc, rhs)
			}
		case "/", "%":
			// idiv needs a register or memory operand, never immediate;
			// ecx is free here (the dividend moves to eax first).
			if lit, isLit := v.Y.(*IntLit); isLit {
				if sh, ok := log2(lit.V); ok && g.k.shiftMul && v.Op == "/" {
					// Size-preferring arithmetic shift (TinyC values are
					// treated as non-negative by the generator).
					g.emitf("sar", acc, asm.ImmOp(sh))
					return nil
				}
				_ = lit
			}
			if _, isLit := v.Y.(*IntLit); isLit {
				if g.k.accReg != asm.EAX {
					g.emitf("mov", asm.RegOp(asm.EAX), acc)
				}
				g.emitf("mov", asm.RegOp(asm.ECX), rhs)
				g.emitf("cdq")
				g.emitf("idiv", asm.RegOp(asm.ECX))
				src := asm.RegOp(asm.EAX)
				if v.Op == "%" {
					src = asm.RegOp(asm.EDX)
				}
				if g.k.accReg != asm.EAX || v.Op == "%" {
					g.emitf("mov", acc, src)
				}
				return nil
			}
			g.genDiv(rhs, v.Op == "%")
		}
		return nil
	}
	// General scheme: x on the machine stack while y evaluates.
	if err := g.genExpr(v.X); err != nil {
		return err
	}
	g.emitf("push", acc)
	g.tempDepth++
	if err := g.genExpr(v.Y); err != nil {
		return err
	}
	g.tempDepth--
	switch v.Op {
	case "/", "%":
		// Divisor must reach ecx, dividend eax.
		if g.k.accReg != asm.ECX {
			g.emitf("mov", asm.RegOp(asm.ECX), acc)
		}
		g.emitf("pop", asm.RegOp(asm.EAX))
		g.emitf("cdq")
		g.emitf("idiv", asm.RegOp(asm.ECX))
		src := asm.RegOp(asm.EAX)
		if v.Op == "%" {
			src = asm.RegOp(asm.EDX)
		}
		if g.k.accReg != asm.EAX || v.Op == "%" {
			g.emitf("mov", acc, src)
		}
		return nil
	}
	tmp := g.tmpOp()
	g.emitf("mov", tmp, acc)
	g.emitf("pop", acc)
	switch v.Op {
	case "+":
		g.emitf("add", acc, tmp)
	case "-":
		g.emitf("sub", acc, tmp)
	case "*":
		g.emitf("imul", acc, tmp)
	default:
		return fmt.Errorf("unknown arith op %q", v.Op)
	}
	return nil
}

// log2 returns the exponent for positive powers of two above 1.
func log2(v int64) (int64, bool) {
	if v < 2 || v&(v-1) != 0 {
		return 0, false
	}
	n := int64(0)
	for v > 1 {
		v >>= 1
		n++
	}
	return n, true
}

func isOne(e Expr) bool {
	lit, ok := e.(*IntLit)
	return ok && lit.V == 1
}

func isZero(e Expr) bool {
	lit, ok := e.(*IntLit)
	return ok && lit.V == 0
}

// genCall emits a call. wantResult moves the cdecl return value from eax
// into the accumulator when they differ; statement-level calls skip it.
func (g *funcGen) genCall(v *CallExpr, wantResult bool) error {
	acc := g.accOp()
	target := v.Name
	if !g.defined[target] {
		target = "_" + target
		g.imports[target] = true
	}
	callOp := asm.SymOp(asm.SymFunc, target)
	argsHaveCalls := false
	for _, a := range v.Args {
		if hasCall(a) {
			argsHaveCalls = true
		}
	}
	finish := func() {
		if wantResult && g.k.accReg != asm.EAX {
			g.emitf("mov", acc, asm.RegOp(asm.EAX))
		}
	}
	// The outgoing-area store addresses [esp+4i] are only valid when no
	// expression temporary is live on the machine stack.
	if g.espArgs && !argsHaveCalls && g.tempDepth == 0 {
		// gcc-style: store arguments into the reserved outgoing area.
		for i := len(v.Args) - 1; i >= 0; i-- {
			if err := g.genExpr(v.Args[i]); err != nil {
				return err
			}
			g.emitf("mov", asm.MemDisp(asm.ESP, int64(4*i)), acc)
		}
		g.emitf("call", callOp)
		finish()
		return nil
	}
	// push-style, right to left; caller cleans up.
	for i := len(v.Args) - 1; i >= 0; i-- {
		// Literal and address arguments push directly.
		switch a := v.Args[i].(type) {
		case *IntLit:
			g.emitf("push", asm.ImmOp(a.V))
			continue
		case *StrLit:
			g.emitf("push", asm.OffsetOp(asm.SymData, g.pool.intern(a.S)))
			continue
		}
		if err := g.genExpr(v.Args[i]); err != nil {
			return err
		}
		g.emitf("push", acc)
	}
	g.emitf("call", callOp)
	if n := len(v.Args); n > 0 {
		g.emitf("add", asm.RegOp(asm.ESP), asm.ImmOp(int64(4*n)))
	}
	finish()
	return nil
}

// ccFor maps a comparison operator to (jump-if-true, jump-if-false)
// condition codes, signed.
func ccFor(op string) (string, string, bool) {
	switch op {
	case "==":
		return "jz", "jnz", true
	case "!=":
		return "jnz", "jz", true
	case "<":
		return "jl", "jge", true
	case "<=":
		return "jle", "jg", true
	case ">":
		return "jg", "jle", true
	case ">=":
		return "jge", "jl", true
	}
	return "", "", false
}

// genCondJump evaluates e as a condition and jumps to lbl when the
// condition's truth equals jumpIfTrue; otherwise control falls through.
func (g *funcGen) genCondJump(e Expr, lbl string, jumpIfTrue bool) error {
	switch v := e.(type) {
	case *UnaryExpr:
		if v.Op == "!" {
			return g.genCondJump(v.X, lbl, !jumpIfTrue)
		}
	case *BinaryExpr:
		if ccT, ccF, ok := ccFor(v.Op); ok {
			if err := g.genCompare(v); err != nil {
				return err
			}
			if jumpIfTrue {
				g.jcc(ccT, lbl)
			} else {
				g.jcc(ccF, lbl)
			}
			return nil
		}
		switch v.Op {
		case "&&":
			if jumpIfTrue {
				skip := g.newLabel()
				if err := g.genCondJump(v.X, skip, false); err != nil {
					return err
				}
				if err := g.genCondJump(v.Y, lbl, true); err != nil {
					return err
				}
				g.place(skip)
				return nil
			}
			if err := g.genCondJump(v.X, lbl, false); err != nil {
				return err
			}
			return g.genCondJump(v.Y, lbl, false)
		case "||":
			if jumpIfTrue {
				if err := g.genCondJump(v.X, lbl, true); err != nil {
					return err
				}
				return g.genCondJump(v.Y, lbl, true)
			}
			skip := g.newLabel()
			if err := g.genCondJump(v.X, skip, true); err != nil {
				return err
			}
			if err := g.genCondJump(v.Y, lbl, false); err != nil {
				return err
			}
			g.place(skip)
			return nil
		}
	}
	// Generic truthiness: nonzero is true.
	if err := g.genExpr(e); err != nil {
		return err
	}
	acc := g.accOp()
	if g.k.peephole {
		g.emitf("test", acc, acc)
	} else {
		g.emitf("cmp", acc, asm.ImmOp(0))
	}
	if jumpIfTrue {
		g.jcc("jnz", lbl)
	} else {
		g.jcc("jz", lbl)
	}
	return nil
}

// genCompare emits the cmp (or test) setting flags for a comparison
// operator.
func (g *funcGen) genCompare(v *BinaryExpr) error {
	acc := g.accOp()
	if rhs, ok := g.simpleOperand(v.Y); ok {
		if err := g.genExpr(v.X); err != nil {
			return err
		}
		if g.k.peephole && isZero(v.Y) && (v.Op == "==" || v.Op == "!=") {
			g.emitf("test", acc, acc)
			return nil
		}
		g.emitf("cmp", acc, rhs)
		return nil
	}
	if err := g.genExpr(v.X); err != nil {
		return err
	}
	g.emitf("push", acc)
	g.tempDepth++
	if err := g.genExpr(v.Y); err != nil {
		return err
	}
	g.tempDepth--
	tmp := g.tmpOp()
	g.emitf("mov", tmp, acc)
	g.emitf("pop", acc)
	g.emitf("cmp", acc, tmp)
	return nil
}
