package tinyc

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokStr
	tokPunct
	tokKeyword
)

type token struct {
	kind tokKind
	text string
	val  int64 // for tokInt
	str  string
	line int
}

var keywords = map[string]bool{
	"int": true, "char": true, "void": true,
	"if": true, "else": true, "while": true, "for": true,
	"switch": true, "case": true, "default": true,
	"return": true, "break": true, "continue": true,
}

var punct2 = []string{"==", "!=", "<=", ">=", "&&", "||"}

type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tok)
		if tok.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) next() (token, error) {
	// Skip whitespace and comments.
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return token{}, fmt.Errorf("line %d: unterminated comment", l.line)
			}
			l.line += strings.Count(l.src[l.pos:l.pos+2+end+2], "\n")
			l.pos += 2 + end + 2
		default:
			goto body
		}
	}
body:
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line}, nil
	}
	c := l.src[l.pos]
	switch {
	case unicode.IsLetter(rune(c)) || c == '_':
		start := l.pos
		for l.pos < len(l.src) && (isIdentChar(l.src[l.pos])) {
			l.pos++
		}
		text := l.src[start:l.pos]
		if keywords[text] {
			return token{kind: tokKeyword, text: text, line: l.line}, nil
		}
		return token{kind: tokIdent, text: text, line: l.line}, nil
	case c >= '0' && c <= '9':
		start := l.pos
		for l.pos < len(l.src) && (isIdentChar(l.src[l.pos])) {
			l.pos++
		}
		text := l.src[start:l.pos]
		v, err := strconv.ParseInt(text, 0, 64)
		if err != nil {
			return token{}, fmt.Errorf("line %d: bad number %q", l.line, text)
		}
		return token{kind: tokInt, text: text, val: v, line: l.line}, nil
	case c == '"':
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, fmt.Errorf("line %d: unterminated string", l.line)
			}
			ch := l.src[l.pos]
			if ch == '"' {
				l.pos++
				break
			}
			if ch == '\\' && l.pos+1 < len(l.src) {
				l.pos++
				switch l.src[l.pos] {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '0':
					sb.WriteByte(0)
				case '\\':
					sb.WriteByte('\\')
				case '"':
					sb.WriteByte('"')
				default:
					sb.WriteByte(l.src[l.pos])
				}
				l.pos++
				continue
			}
			if ch == '\n' {
				l.line++
			}
			sb.WriteByte(ch)
			l.pos++
		}
		return token{kind: tokStr, str: sb.String(), line: l.line}, nil
	default:
		for _, p := range punct2 {
			if strings.HasPrefix(l.src[l.pos:], p) {
				l.pos += 2
				return token{kind: tokPunct, text: p, line: l.line}, nil
			}
		}
		if strings.ContainsRune("+-*/%<>=!(){},;:&|", rune(c)) {
			l.pos++
			return token{kind: tokPunct, text: string(c), line: l.line}, nil
		}
		return token{}, fmt.Errorf("line %d: unexpected character %q", l.line, c)
	}
}

func isIdentChar(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == 'x' || c == 'X'
}
