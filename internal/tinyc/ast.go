// Package tinyc is a small C-like compiler targeting the x86-32 subset of
// internal/x86, standing in for gcc in the reproduction. It exists to
// manufacture realistic binary variance: the same source compiled under
// different Configs differs exactly the way the paper's corpus differs —
// register allocation, stack layout, branch and loop layout, argument
// passing style and peephole choices all change with the optimization
// level and the context seed, while semantics stay fixed.
//
// Language: int and char* expressions, locals, assignment, if/else,
// while, for, break/continue, return, function calls, string literals,
// and the usual arithmetic/comparison/logical operators with
// short-circuit && and ||.
package tinyc

// Program is a parsed translation unit.
type Program struct {
	Globals []GlobalDecl
	Funcs   []*FuncDecl
}

// GlobalDecl is a file-scope integer variable with a literal initializer.
type GlobalDecl struct {
	Name string
	Init int64
}

// FuncDecl is one function definition.
type FuncDecl struct {
	Name   string
	Params []string
	Body   *BlockStmt
}

// Stmt is a statement node.
type Stmt interface{ stmt() }

// BlockStmt is a braced statement list.
type BlockStmt struct {
	Stmts []Stmt
}

// DeclStmt declares a local variable with an optional initializer.
type DeclStmt struct {
	Name string
	Init Expr // may be nil
}

// AssignStmt assigns to a local or parameter.
type AssignStmt struct {
	Name string
	X    Expr
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then *BlockStmt
	Else Stmt // *BlockStmt or *IfStmt (else-if chain), or nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body *BlockStmt
}

// ForStmt is a for loop; any of Init/Cond/Post may be nil.
type ForStmt struct {
	Init Stmt // DeclStmt or AssignStmt
	Cond Expr
	Post Stmt // AssignStmt
	Body *BlockStmt
}

// SwitchStmt is a C-like switch over integer cases with TinyC semantics:
// no fallthrough (every case body breaks implicitly) and an optional
// default.
type SwitchStmt struct {
	X       Expr
	Cases   []SwitchCase
	Default *BlockStmt // may be nil
}

// SwitchCase is one case arm.
type SwitchCase struct {
	Value int64
	Body  *BlockStmt
}

// ReturnStmt returns an optional value.
type ReturnStmt struct {
	X Expr // may be nil
}

// ExprStmt evaluates an expression for its side effects (calls).
type ExprStmt struct {
	X Expr
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{}

// ContinueStmt restarts the innermost loop.
type ContinueStmt struct{}

func (*BlockStmt) stmt()    {}
func (*DeclStmt) stmt()     {}
func (*AssignStmt) stmt()   {}
func (*IfStmt) stmt()       {}
func (*WhileStmt) stmt()    {}
func (*SwitchStmt) stmt()   {}
func (*ForStmt) stmt()      {}
func (*ReturnStmt) stmt()   {}
func (*ExprStmt) stmt()     {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}

// Expr is an expression node.
type Expr interface{ expr() }

// IntLit is an integer literal.
type IntLit struct {
	V int64
}

// StrLit is a string literal (char*).
type StrLit struct {
	S string
}

// Ident references a local or parameter.
type Ident struct {
	Name string
}

// UnaryExpr is -x or !x.
type UnaryExpr struct {
	Op string
	X  Expr
}

// BinaryExpr is a binary operation: + - * / % == != < <= > >= && ||.
type BinaryExpr struct {
	Op   string
	X, Y Expr
}

// CallExpr calls a named function.
type CallExpr struct {
	Name string
	Args []Expr
}

func (*IntLit) expr()     {}
func (*StrLit) expr()     {}
func (*Ident) expr()      {}
func (*UnaryExpr) expr()  {}
func (*BinaryExpr) expr() {}
func (*CallExpr) expr()   {}

// hasCall reports whether the expression contains any function call.
func hasCall(e Expr) bool {
	switch v := e.(type) {
	case *CallExpr:
		return true
	case *UnaryExpr:
		return hasCall(v.X)
	case *BinaryExpr:
		return hasCall(v.X) || hasCall(v.Y)
	default:
		return false
	}
}
