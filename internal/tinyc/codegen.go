package tinyc

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"

	"repro/internal/asm"
	"repro/internal/bin"
)

// OptLevel selects the optimization level, mirroring gcc's -O0/-O1/-O2/-Os
// behaviours that matter for binary similarity (paper Section 8 studies
// exactly this axis).
type OptLevel int

const (
	O0 OptLevel = iota // everything through memory, no peepholes
	O1                 // register allocation, small shortcuts
	O2                 // + block layout choices, loop rotation, peepholes
	Os                 // size-preferring: push-style args, no alignment
)

// String names the level like a compiler flag.
func (o OptLevel) String() string {
	switch o {
	case O0:
		return "O0"
	case O1:
		return "O1"
	case O2:
		return "O2"
	case Os:
		return "Os"
	}
	return "O?"
}

// Config is the compilation context. Two Configs with the same Opt but
// different Seeds model "the same code compiled in a different context"
// (different register allocation order, stack layout, frame padding and
// branch layout), the paper's Context group.
type Config struct {
	Opt  OptLevel
	Seed int64
}

// knobs are the context decisions derived deterministically from Config.
type knobs struct {
	regOrder     []asm.Reg // callee-saved allocation order
	maxRegVars   int
	reverseStack bool    // local slot assignment order
	elseFirst    bool    // if/else layout at O2
	rotateLoops  bool    // bottom-test loop layout
	espArgs      bool    // mov [esp+N] argument style vs push
	schedule     bool    // seeded local instruction scheduling pass
	useLeave     bool    // leave vs mov esp,ebp; pop ebp epilogue
	pad          int32   // extra frame padding bytes
	immShortcut  bool    // op eax, imm instead of the generic temp scheme
	peephole     bool    // xor-zero, inc/dec, test-vs-cmp0
	accReg       asm.Reg // expression accumulator (eax, or ecx at some O2 contexts)
	directMove   bool    // Os: variable-to-variable moves skip the accumulator
	shiftMul     bool    // Os: shl/sar instead of imul/idiv for powers of two
	pushSaves    bool    // Os: push/pop callee-saved regs instead of mov-to-slot
	inline       bool    // O1/O2: inline small leaf functions
	useSetcc     bool    // O2 contexts: setcc/movzx boolean materialization
	switchTable  bool    // O2 contexts: dense switches lower to jump tables
}

func deriveKnobs(cfg Config) knobs {
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := []asm.Reg{asm.ESI, asm.EDI, asm.EBX}
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	k := knobs{regOrder: order, accReg: asm.EAX}
	switch cfg.Opt {
	case O0:
		k.maxRegVars = 0
		k.useLeave = true
	case O1:
		k.maxRegVars = 2
		k.reverseStack = rng.Intn(2) == 0
		k.rotateLoops = true
		k.elseFirst = true // -freorder-blocks layout, shared with O2
		k.espArgs = true
		k.inline = true
		k.pad = int32(rng.Intn(2)) * 8
		k.immShortcut = true
	case O2:
		k.maxRegVars = 3
		k.reverseStack = rng.Intn(2) == 0
		k.elseFirst = rng.Intn(2) == 0
		k.rotateLoops = true
		k.espArgs = true
		k.schedule = true
		k.inline = true
		k.pad = int32(rng.Intn(3)) * 8
		k.immShortcut = true
		k.peephole = true
		if rng.Intn(2) == 0 {
			k.accReg = asm.ECX
		}
		k.useSetcc = rng.Intn(2) == 0
		k.switchTable = rng.Intn(2) == 0
	case Os:
		// -Os disables block reordering (gcc: -freorder-blocks off), so
		// loops keep their top-test layout; together with push-style
		// arguments and direct moves this makes Os builds structurally
		// different from O1/O2, as the paper observes in Section 8.
		k.maxRegVars = 3
		k.useLeave = true
		k.immShortcut = true
		k.peephole = true
		k.directMove = true
		k.shiftMul = true
		k.pushSaves = true
	}
	return k
}

// strPool interns string literals as content-named data and accumulates
// switch jump tables with their relocations.
type strPool struct {
	data    []bin.Datum
	names   map[string]string
	relocs  []bin.TableReloc
	nTables int
}

func newStrPool() *strPool {
	return &strPool{names: make(map[string]string)}
}

// addTable reserves a zero-filled jump table of n 4-byte entries and
// returns its datum name.
func (sp *strPool) addTable(n int) string {
	sp.nTables++
	name := fmt.Sprintf("jtab_%d", sp.nTables)
	sp.data = append(sp.data, bin.Datum{Name: name, Data: make([]byte, 4*n)})
	return name
}

// addTableReloc records that entry i of the table must hold the address of
// a label in a function.
func (sp *strPool) addTableReloc(datum string, entry int, fn, label string) {
	sp.relocs = append(sp.relocs, bin.TableReloc{Datum: datum, Entry: entry, Func: fn, Label: label})
}

func (sp *strPool) intern(s string) string {
	if n, ok := sp.names[s]; ok {
		return n
	}
	h := fnv.New32a()
	h.Write([]byte(s))
	name := fmt.Sprintf("str_%08x", h.Sum32())
	sp.names[s] = name
	sp.data = append(sp.data, bin.Datum{Name: name, Data: append([]byte(s), 0)})
	return name
}

// Compile compiles TinyC source into a linkable program.
func Compile(src string, cfg Config) (*bin.Program, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	defined := make(map[string]bool, len(prog.Funcs))
	for _, fn := range prog.Funcs {
		if defined[fn.Name] {
			return nil, fmt.Errorf("tinyc: duplicate function %s", fn.Name)
		}
		defined[fn.Name] = true
	}
	foldProgram(prog)
	if deriveKnobs(cfg).inline {
		inlineProgram(prog, 10)
	}
	pool := newStrPool()
	imports := make(map[string]bool)
	out := &bin.Program{Align16: cfg.Opt != Os}
	globals := make(map[string]string, len(prog.Globals))
	for _, gd := range prog.Globals {
		datum := "g_" + gd.Name
		globals[gd.Name] = datum
		var buf [4]byte
		v := uint32(int32(gd.Init))
		buf[0], buf[1], buf[2], buf[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		out.Vars = append(out.Vars, bin.Datum{Name: datum, Data: buf[:]})
	}
	for _, fn := range prog.Funcs {
		g := newFuncGen(fn, cfg, pool, defined, imports, globals)
		insts, labels, err := g.generate()
		if err != nil {
			return nil, fmt.Errorf("tinyc: %s: %w", fn.Name, err)
		}
		out.Funcs = append(out.Funcs, bin.Func{Name: fn.Name, Insts: insts, Labels: labels})
	}
	out.Data = pool.data
	out.TableRelocs = pool.relocs
	for imp := range imports {
		out.Imports = append(out.Imports, imp)
	}
	sort.Strings(out.Imports)
	return out, nil
}

// Build compiles and links TinyC source into an ELF image.
func Build(src string, cfg Config) ([]byte, error) {
	p, err := Compile(src, cfg)
	if err != nil {
		return nil, err
	}
	return bin.Link(p)
}

// BuildStripped compiles, links and strips.
func BuildStripped(src string, cfg Config) ([]byte, error) {
	img, err := Build(src, cfg)
	if err != nil {
		return nil, err
	}
	return bin.Strip(img)
}

type funcGen struct {
	fn      *FuncDecl
	cfg     Config
	k       knobs
	pool    *strPool
	defined map[string]bool
	imports map[string]bool
	globals map[string]string // source name -> datum name

	out    []asm.Inst
	labels map[string]int
	nLabel int

	regOf     map[string]asm.Reg
	offOf     map[string]int32 // ebp-relative (negative locals, positive params)
	saved     []asm.Reg
	saveOff   map[asm.Reg]int32
	frame     int32
	espArgs   bool
	tempDepth int // live expression temporaries on the machine stack
	retLbl    string
	breakLbl  []string
	contLbl   []string
}

func newFuncGen(fn *FuncDecl, cfg Config, pool *strPool, defined, imports map[string]bool, globals map[string]string) *funcGen {
	return &funcGen{
		fn:      fn,
		cfg:     cfg,
		k:       deriveKnobs(cfg),
		pool:    pool,
		defined: defined,
		imports: imports,
		globals: globals,
		labels:  make(map[string]int),
		regOf:   make(map[string]asm.Reg),
		offOf:   make(map[string]int32),
		saveOff: make(map[asm.Reg]int32),
	}
}

func (g *funcGen) emit(in asm.Inst)                   { g.out = append(g.out, in) }
func (g *funcGen) emitf(m string, ops ...asm.Operand) { g.emit(asm.New(m, ops...)) }

func (g *funcGen) newLabel() string {
	g.nLabel++
	return fmt.Sprintf(".L%d", g.nLabel)
}

func (g *funcGen) place(lbl string) { g.labels[lbl] = len(g.out) }

func (g *funcGen) jmp(lbl string) { g.emitf("jmp", asm.SymOp(asm.SymLabel, lbl)) }

func (g *funcGen) jcc(cc, lbl string) { g.emitf(cc, asm.SymOp(asm.SymLabel, lbl)) }

// collect gathers declared locals (in declaration order) and reference
// counts for allocation decisions.
func collect(fn *FuncDecl) (locals []string, refs map[string]int) {
	refs = make(map[string]int)
	seen := make(map[string]bool)
	for _, p := range fn.Params {
		refs[p] = 0
		seen[p] = true
	}
	var walkExpr func(Expr)
	walkExpr = func(e Expr) {
		switch v := e.(type) {
		case *Ident:
			refs[v.Name]++
		case *UnaryExpr:
			walkExpr(v.X)
		case *BinaryExpr:
			walkExpr(v.X)
			walkExpr(v.Y)
		case *CallExpr:
			for _, a := range v.Args {
				walkExpr(a)
			}
		}
	}
	var walkStmt func(Stmt)
	walkStmt = func(s Stmt) {
		switch v := s.(type) {
		case *BlockStmt:
			for _, st := range v.Stmts {
				walkStmt(st)
			}
		case *DeclStmt:
			if !seen[v.Name] {
				seen[v.Name] = true
				locals = append(locals, v.Name)
			}
			if v.Init != nil {
				walkExpr(v.Init)
				refs[v.Name]++
			}
		case *AssignStmt:
			walkExpr(v.X)
			refs[v.Name]++
		case *IfStmt:
			walkExpr(v.Cond)
			walkStmt(v.Then)
			if v.Else != nil {
				walkStmt(v.Else)
			}
		case *WhileStmt:
			walkExpr(v.Cond)
			walkStmt(v.Body)
		case *SwitchStmt:
			walkExpr(v.X)
			for _, cs := range v.Cases {
				walkStmt(cs.Body)
			}
			if v.Default != nil {
				walkStmt(v.Default)
			}
		case *ForStmt:
			if v.Init != nil {
				walkStmt(v.Init)
			}
			if v.Cond != nil {
				walkExpr(v.Cond)
			}
			if v.Post != nil {
				walkStmt(v.Post)
			}
			walkStmt(v.Body)
		case *ReturnStmt:
			if v.X != nil {
				walkExpr(v.X)
			}
		case *ExprStmt:
			walkExpr(v.X)
		}
	}
	walkStmt(fn.Body)
	return locals, refs
}

// maxOutgoing returns the largest argument count over all calls.
func maxOutgoing(fn *FuncDecl) int {
	max := 0
	var walkExpr func(Expr)
	walkExpr = func(e Expr) {
		switch v := e.(type) {
		case *UnaryExpr:
			walkExpr(v.X)
		case *BinaryExpr:
			walkExpr(v.X)
			walkExpr(v.Y)
		case *CallExpr:
			if len(v.Args) > max {
				max = len(v.Args)
			}
			for _, a := range v.Args {
				walkExpr(a)
			}
		}
	}
	var walkStmt func(Stmt)
	walkStmt = func(s Stmt) {
		switch v := s.(type) {
		case *BlockStmt:
			for _, st := range v.Stmts {
				walkStmt(st)
			}
		case *DeclStmt:
			if v.Init != nil {
				walkExpr(v.Init)
			}
		case *AssignStmt:
			walkExpr(v.X)
		case *IfStmt:
			walkExpr(v.Cond)
			walkStmt(v.Then)
			if v.Else != nil {
				walkStmt(v.Else)
			}
		case *WhileStmt:
			walkExpr(v.Cond)
			walkStmt(v.Body)
		case *SwitchStmt:
			walkExpr(v.X)
			for _, cs := range v.Cases {
				walkStmt(cs.Body)
			}
			if v.Default != nil {
				walkStmt(v.Default)
			}
		case *ForStmt:
			if v.Init != nil {
				walkStmt(v.Init)
			}
			if v.Cond != nil {
				walkExpr(v.Cond)
			}
			if v.Post != nil {
				walkStmt(v.Post)
			}
			walkStmt(v.Body)
		case *ReturnStmt:
			if v.X != nil {
				walkExpr(v.X)
			}
		case *ExprStmt:
			walkExpr(v.X)
		}
	}
	walkStmt(fn.Body)
	return max
}

func (g *funcGen) generate() ([]asm.Inst, map[string]int, error) {
	locals, refs := collect(g.fn)

	// Register allocation: the first declared variables with enough uses
	// go to callee-saved registers, in the context's preferred order.
	// Declaration-order priority (rather than use counts) keeps the
	// allocation stable under local patches, as production compilers
	// largely do; which *register* each variable lands in still varies
	// with the context (regOrder).
	if g.k.maxRegVars > 0 {
		cands := locals
		n := g.k.maxRegVars
		if n > len(g.k.regOrder) {
			n = len(g.k.regOrder)
		}
		next := 0
		for _, name := range cands {
			if next >= n {
				break
			}
			if refs[name] < 2 {
				continue // not worth a register
			}
			g.regOf[name] = g.k.regOrder[next]
			next++
		}
	}

	// Frame layout. Slots: one per used callee-saved register, one per
	// memory-resident local, plus padding, plus the outgoing-args area in
	// esp style.
	g.espArgs = g.k.espArgs
	off := int32(0)
	alloc := func() int32 {
		off += 4
		return -off
	}
	usedRegs := map[asm.Reg]bool{}
	for _, r := range g.regOf {
		usedRegs[r] = true
	}
	for _, r := range g.k.regOrder {
		if usedRegs[r] {
			g.saveOff[r] = alloc()
			g.saved = append(g.saved, r)
		}
	}
	memLocals := make([]string, 0, len(locals))
	for _, l := range locals {
		if _, inReg := g.regOf[l]; !inReg {
			memLocals = append(memLocals, l)
		}
	}
	if g.k.reverseStack {
		for i, j := 0, len(memLocals)-1; i < j; i, j = i+1, j-1 {
			memLocals[i], memLocals[j] = memLocals[j], memLocals[i]
		}
	}
	for _, l := range memLocals {
		g.offOf[l] = alloc()
	}
	off += g.k.pad
	outArea := int32(0)
	if g.espArgs {
		outArea = int32(maxOutgoing(g.fn)) * 4
	}
	g.frame = ((off + outArea + 7) &^ 7)

	// Parameter homes.
	for i, p := range g.fn.Params {
		g.offOf[p] = int32(8 + 4*i)
	}

	// Prologue. With pushSaves the callee-saved registers land exactly in
	// their reserved slots (the first slots below ebp), so the remaining
	// frame shrinks by the pushed bytes.
	g.emitf("push", asm.RegOp(asm.EBP))
	g.emitf("mov", asm.RegOp(asm.EBP), asm.RegOp(asm.ESP))
	pushedBytes := int32(0)
	if g.k.pushSaves {
		for _, r := range g.saved {
			g.emitf("push", asm.RegOp(r))
			pushedBytes += 4
		}
	}
	if g.frame > pushedBytes {
		g.emitf("sub", asm.RegOp(asm.ESP), asm.ImmOp(int64(g.frame-pushedBytes)))
	}
	if !g.k.pushSaves {
		for _, r := range g.saved {
			g.emitf("mov", asm.MemDisp(asm.EBP, int64(g.saveOff[r])), asm.RegOp(r))
		}
	}
	for i, p := range g.fn.Params {
		if r, ok := g.regOf[p]; ok {
			g.emitf("mov", asm.RegOp(r), asm.MemDisp(asm.EBP, int64(8+4*i)))
		}
	}

	g.retLbl = g.newLabel()
	if err := g.genBlock(g.fn.Body); err != nil {
		return nil, nil, err
	}

	// Epilogue.
	g.place(g.retLbl)
	if g.k.pushSaves {
		if g.frame > pushedBytes {
			g.emitf("add", asm.RegOp(asm.ESP), asm.ImmOp(int64(g.frame-pushedBytes)))
		}
		for i := len(g.saved) - 1; i >= 0; i-- {
			g.emitf("pop", asm.RegOp(g.saved[i]))
		}
		g.emitf("pop", asm.RegOp(asm.EBP))
	} else {
		for _, r := range g.saved {
			g.emitf("mov", asm.RegOp(r), asm.MemDisp(asm.EBP, int64(g.saveOff[r])))
		}
		if g.frame > 0 {
			if g.k.useLeave {
				g.emitf("leave")
			} else {
				g.emitf("mov", asm.RegOp(asm.ESP), asm.RegOp(asm.EBP))
				g.emitf("pop", asm.RegOp(asm.EBP))
			}
		} else {
			g.emitf("pop", asm.RegOp(asm.EBP))
		}
	}
	g.emitf("retn")

	g.removeJumpsToNext()
	if g.k.schedule {
		h := fnv.New64a()
		h.Write([]byte(g.fn.Name))
		rng := rand.New(rand.NewSource(g.cfg.Seed ^ int64(h.Sum64()&0x7fffffffffff)))
		g.out = scheduleFunc(g.out, g.labels, rng)
	}
	return g.out, g.labels, nil
}

// removeJumpsToNext deletes unconditional jumps whose target is the
// immediately following instruction (artifacts of structured codegen).
func (g *funcGen) removeJumpsToNext() {
	for {
		removed := -1
		for i, in := range g.out {
			if in.Mnemonic != "jmp" || len(in.Ops) != 1 || !in.Ops[0].Arg.IsSym() {
				continue
			}
			if ti, ok := g.labels[in.Ops[0].Arg.Sym]; ok && ti == i+1 {
				removed = i
				break
			}
		}
		if removed < 0 {
			return
		}
		g.out = append(g.out[:removed], g.out[removed+1:]...)
		for l, ti := range g.labels {
			if ti > removed {
				g.labels[l] = ti - 1
			}
		}
	}
}

// home returns the operand holding a variable (register, stack slot, or
// global memory). Locals shadow globals.
func (g *funcGen) home(name string) (asm.Operand, error) {
	if r, ok := g.regOf[name]; ok {
		return asm.RegOp(r), nil
	}
	if off, ok := g.offOf[name]; ok {
		return asm.MemDisp(asm.EBP, int64(off)), nil
	}
	if datum, ok := g.globals[name]; ok {
		return asm.MemOperand(asm.MemTerm{Op: asm.OpAdd, Arg: asm.SymArg(asm.SymData, datum)}), nil
	}
	return asm.Operand{}, fmt.Errorf("undefined variable %q", name)
}

func (g *funcGen) genBlock(b *BlockStmt) error {
	for _, s := range b.Stmts {
		if err := g.genStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (g *funcGen) genStmt(s Stmt) error {
	switch v := s.(type) {
	case *BlockStmt:
		return g.genBlock(v)
	case *DeclStmt:
		if v.Init == nil {
			return nil
		}
		return g.genAssign(v.Name, v.Init)
	case *AssignStmt:
		return g.genAssign(v.Name, v.X)
	case *IfStmt:
		return g.genIf(v)
	case *WhileStmt:
		return g.genWhile(v)
	case *SwitchStmt:
		return g.genSwitch(v)
	case *ForStmt:
		return g.genFor(v)
	case *ReturnStmt:
		if v.X != nil {
			if err := g.genExpr(v.X); err != nil {
				return err
			}
			if g.k.accReg != asm.EAX {
				g.emitf("mov", asm.RegOp(asm.EAX), g.accOp())
			}
		}
		g.jmp(g.retLbl)
		return nil
	case *ExprStmt:
		if call, ok := v.X.(*CallExpr); ok {
			return g.genCall(call, false)
		}
		return g.genExpr(v.X)
	case *BreakStmt:
		if len(g.breakLbl) == 0 {
			return fmt.Errorf("break outside loop")
		}
		g.jmp(g.breakLbl[len(g.breakLbl)-1])
		return nil
	case *ContinueStmt:
		if len(g.contLbl) == 0 {
			return fmt.Errorf("continue outside loop")
		}
		g.jmp(g.contLbl[len(g.contLbl)-1])
		return nil
	}
	return fmt.Errorf("unknown statement %T", s)
}

func (g *funcGen) genAssign(name string, x Expr) error {
	dst, err := g.home(name)
	if err != nil {
		return err
	}
	// Peepholes on direct forms.
	if lit, ok := x.(*IntLit); ok {
		if g.k.peephole && lit.V == 0 && !dst.IsMem() {
			g.emitf("xor", dst, dst)
			return nil
		}
		g.emitf("mov", dst, asm.ImmOp(lit.V))
		return nil
	}
	if b, ok := x.(*BinaryExpr); ok && g.k.immShortcut {
		if id, ok := b.X.(*Ident); ok && id.Name == name {
			if lit, ok := b.Y.(*IntLit); ok && (b.Op == "+" || b.Op == "-") {
				if g.k.peephole && lit.V == 1 && !dst.IsMem() {
					if b.Op == "+" {
						g.emitf("inc", dst)
					} else {
						g.emitf("dec", dst)
					}
					return nil
				}
				op := "add"
				if b.Op == "-" {
					op = "sub"
				}
				g.emitf(op, dst, asm.ImmOp(lit.V))
				return nil
			}
		}
	}
	// Os size idiom: variable-to-variable moves skip the accumulator
	// when at least one side is a register.
	if g.k.directMove {
		if id, ok := x.(*Ident); ok {
			if src, err := g.home(id.Name); err == nil && (!dst.IsMem() || !src.IsMem()) {
				g.emitf("mov", dst, src)
				return nil
			}
		}
	}
	if err := g.genExpr(x); err != nil {
		return err
	}
	g.emitf("mov", dst, g.accOp())
	return nil
}

func (g *funcGen) genIf(v *IfStmt) error {
	end := g.newLabel()
	if v.Else == nil {
		if err := g.genCondJump(v.Cond, end, false); err != nil {
			return err
		}
		if err := g.genBlock(v.Then); err != nil {
			return err
		}
		g.place(end)
		return nil
	}
	if g.k.elseFirst {
		thenLbl := g.newLabel()
		if err := g.genCondJump(v.Cond, thenLbl, true); err != nil {
			return err
		}
		if err := g.genStmt(v.Else); err != nil {
			return err
		}
		g.jmp(end)
		g.place(thenLbl)
		if err := g.genBlock(v.Then); err != nil {
			return err
		}
		g.place(end)
		return nil
	}
	elseLbl := g.newLabel()
	if err := g.genCondJump(v.Cond, elseLbl, false); err != nil {
		return err
	}
	if err := g.genBlock(v.Then); err != nil {
		return err
	}
	g.jmp(end)
	g.place(elseLbl)
	if err := g.genStmt(v.Else); err != nil {
		return err
	}
	g.place(end)
	return nil
}

func (g *funcGen) genWhile(v *WhileStmt) error {
	end := g.newLabel()
	if g.k.rotateLoops {
		cond := g.newLabel()
		body := g.newLabel()
		g.jmp(cond)
		g.place(body)
		g.breakLbl = append(g.breakLbl, end)
		g.contLbl = append(g.contLbl, cond)
		err := g.genBlock(v.Body)
		g.breakLbl = g.breakLbl[:len(g.breakLbl)-1]
		g.contLbl = g.contLbl[:len(g.contLbl)-1]
		if err != nil {
			return err
		}
		g.place(cond)
		if err := g.genCondJump(v.Cond, body, true); err != nil {
			return err
		}
		g.place(end)
		return nil
	}
	top := g.newLabel()
	g.place(top)
	if err := g.genCondJump(v.Cond, end, false); err != nil {
		return err
	}
	g.breakLbl = append(g.breakLbl, end)
	g.contLbl = append(g.contLbl, top)
	err := g.genBlock(v.Body)
	g.breakLbl = g.breakLbl[:len(g.breakLbl)-1]
	g.contLbl = g.contLbl[:len(g.contLbl)-1]
	if err != nil {
		return err
	}
	g.jmp(top)
	g.place(end)
	return nil
}

func (g *funcGen) genFor(v *ForStmt) error {
	if v.Init != nil {
		if err := g.genStmt(v.Init); err != nil {
			return err
		}
	}
	end := g.newLabel()
	post := g.newLabel()
	if g.k.rotateLoops && v.Cond != nil {
		cond := g.newLabel()
		body := g.newLabel()
		g.jmp(cond)
		g.place(body)
		g.breakLbl = append(g.breakLbl, end)
		g.contLbl = append(g.contLbl, post)
		err := g.genBlock(v.Body)
		g.breakLbl = g.breakLbl[:len(g.breakLbl)-1]
		g.contLbl = g.contLbl[:len(g.contLbl)-1]
		if err != nil {
			return err
		}
		g.place(post)
		if v.Post != nil {
			if err := g.genStmt(v.Post); err != nil {
				return err
			}
		}
		g.place(cond)
		if err := g.genCondJump(v.Cond, body, true); err != nil {
			return err
		}
		g.place(end)
		return nil
	}
	top := g.newLabel()
	g.place(top)
	if v.Cond != nil {
		if err := g.genCondJump(v.Cond, end, false); err != nil {
			return err
		}
	}
	g.breakLbl = append(g.breakLbl, end)
	g.contLbl = append(g.contLbl, post)
	err := g.genBlock(v.Body)
	g.breakLbl = g.breakLbl[:len(g.breakLbl)-1]
	g.contLbl = g.contLbl[:len(g.contLbl)-1]
	if err != nil {
		return err
	}
	g.place(post)
	if v.Post != nil {
		if err := g.genStmt(v.Post); err != nil {
			return err
		}
	}
	g.jmp(top)
	g.place(end)
	return nil
}
