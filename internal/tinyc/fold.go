package tinyc

// Constant folding, applied at every optimization level (as real compilers
// do): literal subexpressions are evaluated at compile time with C's
// 32-bit truncating semantics, and arithmetic identities involving 0 and 1
// are simplified. Folding runs before inlining so that inlined bodies are
// folded again in context by the per-function pass.

// foldProgram folds every function in place.
func foldProgram(p *Program) {
	for _, fn := range p.Funcs {
		foldStmt(fn.Body)
	}
}

func foldStmt(s Stmt) {
	switch v := s.(type) {
	case *BlockStmt:
		for _, st := range v.Stmts {
			foldStmt(st)
		}
	case *DeclStmt:
		if v.Init != nil {
			v.Init = foldExpr(v.Init)
		}
	case *AssignStmt:
		v.X = foldExpr(v.X)
	case *IfStmt:
		v.Cond = foldExpr(v.Cond)
		foldStmt(v.Then)
		if v.Else != nil {
			foldStmt(v.Else)
		}
	case *WhileStmt:
		v.Cond = foldExpr(v.Cond)
		foldStmt(v.Body)
	case *SwitchStmt:
		v.X = foldExpr(v.X)
		for _, cs := range v.Cases {
			foldStmt(cs.Body)
		}
		if v.Default != nil {
			foldStmt(v.Default)
		}
	case *ForStmt:
		if v.Init != nil {
			foldStmt(v.Init)
		}
		if v.Cond != nil {
			v.Cond = foldExpr(v.Cond)
		}
		if v.Post != nil {
			foldStmt(v.Post)
		}
		foldStmt(v.Body)
	case *ReturnStmt:
		if v.X != nil {
			v.X = foldExpr(v.X)
		}
	case *ExprStmt:
		v.X = foldExpr(v.X)
	}
}

func foldExpr(e Expr) Expr {
	switch v := e.(type) {
	case *UnaryExpr:
		v.X = foldExpr(v.X)
		if lit, ok := v.X.(*IntLit); ok {
			switch v.Op {
			case "-":
				return &IntLit{V: int64(-int32(lit.V))}
			case "!":
				if lit.V == 0 {
					return &IntLit{V: 1}
				}
				return &IntLit{V: 0}
			}
		}
		return v
	case *BinaryExpr:
		v.X = foldExpr(v.X)
		v.Y = foldExpr(v.Y)
		lx, xlit := v.X.(*IntLit)
		ly, ylit := v.Y.(*IntLit)
		if xlit && ylit {
			if folded, ok := evalConst(v.Op, int32(lx.V), int32(ly.V)); ok {
				return &IntLit{V: int64(folded)}
			}
			return v
		}
		// Identities. Only ones that preserve evaluation order and side
		// effects (the discarded operand is a literal, so nothing is lost).
		switch {
		case ylit && ly.V == 0 && (v.Op == "+" || v.Op == "-"):
			return v.X
		case ylit && ly.V == 1 && (v.Op == "*" || v.Op == "/"):
			return v.X
		case ylit && ly.V == 1 && v.Op == "%":
			// x % 1 is 0 only if x has no side effects; TinyC expressions
			// with calls must still run, so keep unless x is side-effect
			// free.
			if !hasCall(v.X) {
				return &IntLit{V: 0}
			}
		case xlit && lx.V == 0 && v.Op == "+":
			return v.Y
		case xlit && lx.V == 1 && v.Op == "*":
			return v.Y
		}
		return v
	case *CallExpr:
		for i := range v.Args {
			v.Args[i] = foldExpr(v.Args[i])
		}
		return v
	default:
		return e
	}
}

// evalConst applies an operator with C's int32 semantics. Division by zero
// and INT_MIN/-1 are left unfolded (runtime traps stay runtime traps).
func evalConst(op string, a, b int32) (int32, bool) {
	switch op {
	case "+":
		return a + b, true
	case "-":
		return a - b, true
	case "*":
		return a * b, true
	case "/":
		if b == 0 || (a == -2147483648 && b == -1) {
			return 0, false
		}
		return a / b, true
	case "%":
		if b == 0 || (a == -2147483648 && b == -1) {
			return 0, false
		}
		return a % b, true
	case "==":
		return b2i(a == b), true
	case "!=":
		return b2i(a != b), true
	case "<":
		return b2i(a < b), true
	case "<=":
		return b2i(a <= b), true
	case ">":
		return b2i(a > b), true
	case ">=":
		return b2i(a >= b), true
	case "&&":
		return b2i(a != 0 && b != 0), true
	case "||":
		return b2i(a != 0 || b != 0), true
	}
	return 0, false
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}
