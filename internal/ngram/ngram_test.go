package ngram

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/prep"
)

func lift(t *testing.T, name, src string) *prep.Function {
	t.Helper()
	insts, labels, err := asm.ParseListing(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.BuildListing(name, insts, labels)
	if err != nil {
		t.Fatal(err)
	}
	return &prep.Function{Name: name, Graph: g}
}

const fnA = `
	push ebp
	mov ebp, esp
	mov esi, [ebp+arg_0]
	cmp esi, 1
	jz l1
	add esi, 2
	push esi
	call _printf
l1:
	mov eax, esi
	pop ebp
	retn
`

// fnARenamed renames registers and offsets only: normalization should make
// it identical gram-for-gram.
const fnARenamed = `
	push ebp
	mov ebp, esp
	mov ebx, [ebp+arg_8]
	cmp ebx, 5
	jz l1
	add ebx, 9
	push ebx
	call _printf
l1:
	mov eax, ebx
	pop ebp
	retn
`

const fnOther = `
	xor eax, eax
	mov ecx, [esp+4]
	imul eax, ecx, 3
	test eax, eax
	jnz l1
	inc eax
l1:
	retn
`

func TestSelfSimilarity(t *testing.T) {
	fp := Extract(lift(t, "a", fnA), DefaultOptions())
	if len(fp.Grams) == 0 {
		t.Fatal("no grams extracted")
	}
	if got := Similarity(fp, fp); got != 1.0 {
		t.Errorf("self similarity = %v", got)
	}
}

func TestNormalizationAbsorbsRenaming(t *testing.T) {
	a := Extract(lift(t, "a", fnA), DefaultOptions())
	b := Extract(lift(t, "a2", fnARenamed), DefaultOptions())
	if got := Similarity(a, b); got != 1.0 {
		t.Errorf("renamed similarity = %v, want 1.0 (normalization)", got)
	}
}

func TestEaxIsNotSpecial(t *testing.T) {
	// eax maps to whatever linear index it appears at; two functions
	// differing only in *which* register fills each role are identical.
	a := Extract(lift(t, "x", "mov eax, ebx\nmov ecx, eax\nretn\nnop\nnop"), Options{N: 3, Delta: 1})
	b := Extract(lift(t, "y", "mov edi, esi\nmov edx, edi\nretn\nnop\nnop"), Options{N: 3, Delta: 1})
	if got := Similarity(a, b); got != 1.0 {
		t.Errorf("similarity = %v, want 1.0", got)
	}
}

func TestDissimilarFunctions(t *testing.T) {
	a := Extract(lift(t, "a", fnA), DefaultOptions())
	o := Extract(lift(t, "o", fnOther), DefaultOptions())
	if got := Similarity(a, o); got > 0.3 {
		t.Errorf("unrelated similarity = %v, want low", got)
	}
}

// TestLayoutSensitivity demonstrates the weakness the paper exploits:
// swapping the layout of two middle blocks (semantically equivalent,
// jump-adjusted) changes grams that cross the boundary.
func TestLayoutSensitivity(t *testing.T) {
	orig := `
		cmp eax, 1
		jz bthen
		mov ebx, 2
		add ebx, 3
		sub ebx, 4
		jmp merge
	bthen:
		mov ecx, 5
		add ecx, 6
		sub ecx, 7
	merge:
		retn
	`
	swapped := `
		cmp eax, 1
		jnz belse
		mov ecx, 5
		add ecx, 6
		sub ecx, 7
		jmp merge
	belse:
		mov ebx, 2
		add ebx, 3
		sub ebx, 4
	merge:
		retn
	`
	a := Extract(lift(t, "o", orig), DefaultOptions())
	b := Extract(lift(t, "s", swapped), DefaultOptions())
	if got := Similarity(a, b); got >= 0.9 {
		t.Errorf("layout swap similarity = %v; n-grams should be layout sensitive", got)
	}
}

func TestWindowAndDelta(t *testing.T) {
	fn := lift(t, "a", fnA)
	n5 := Extract(fn, Options{N: 5, Delta: 1})
	n3 := Extract(fn, Options{N: 3, Delta: 1})
	if len(n3.Grams) <= len(n5.Grams) {
		t.Errorf("smaller windows should give at least as many grams: n3=%d n5=%d",
			len(n3.Grams), len(n5.Grams))
	}
	d2 := Extract(fn, Options{N: 3, Delta: 2})
	if len(d2.Grams) > len(n3.Grams) {
		t.Errorf("larger delta cannot produce more grams")
	}
}

func TestShortFunction(t *testing.T) {
	fp := Extract(lift(t, "tiny", "retn"), DefaultOptions())
	if len(fp.Grams) != 0 {
		t.Errorf("function shorter than window should have no grams")
	}
	if got := Similarity(fp, fp); got != 0 {
		t.Errorf("empty fingerprint similarity = %v", got)
	}
}
