// Package ngram implements the n-gram baseline the paper compares against
// (Section 1 [15][20], configuration from Section 5.3): a sliding window
// of n instructions with step delta over the *linear* layout of the
// function, with normalization — linear renaming of registers and memory
// locations — to absorb naming variance across binaries. Function
// similarity is set containment of the reference's n-gram set in the
// target's.
//
// The known weakness reproduced here is the one the paper exploits: the
// n-gram stream follows binary layout, so block reordering and local
// patches shift every window that crosses the change.
package ngram

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/prep"
)

// Options configures extraction. The paper's experiments use the best
// parameters reported by Rendezvous: windows of 5 instructions with a
// 1-instruction delta.
type Options struct {
	N     int // window size in instructions
	Delta int // window step
}

// DefaultOptions returns the paper's configuration (size 5, delta 1).
func DefaultOptions() Options { return Options{N: 5, Delta: 1} }

// Fingerprint is a function's normalized n-gram set.
type Fingerprint struct {
	Name  string
	Grams map[string]bool
}

// Extract computes the fingerprint of a lifted function: its instructions
// in linear (layout) order, normalized, cut into n-grams.
func Extract(fn *prep.Function, opts Options) *Fingerprint {
	if opts.N <= 0 {
		opts = DefaultOptions()
	}
	if opts.Delta <= 0 {
		opts.Delta = 1
	}
	var linear []asm.Inst
	for _, b := range fn.Graph.Blocks {
		linear = append(linear, b.Insts...)
	}
	norm := normalize(linear)
	fp := &Fingerprint{Name: fn.Name, Grams: make(map[string]bool)}
	for i := 0; i+opts.N <= len(norm); i += opts.Delta {
		fp.Grams[strings.Join(norm[i:i+opts.N], "|")] = true
	}
	return fp
}

// NormalizeInsts renders an instruction sequence with linearly renamed
// symbols (see normalize). The renaming restarts at every call, so
// per-block invocations yield block-local names — which is exactly what
// the index feature prefilter wants: features that survive register
// reallocation across compilations.
func NormalizeInsts(insts []asm.Inst) []string { return normalize(insts) }

// normalize renders each instruction with linearly renamed symbols:
// registers become r0, r1, ... in order of first appearance, memory and
// data symbols become m0, m1, ..., immediates become a fixed token, and
// intra-procedural jump targets are dropped to a bare mnemonic.
func normalize(insts []asm.Inst) []string {
	regNames := map[asm.Reg]string{}
	memNames := map[string]string{}
	out := make([]string, len(insts))
	for i, in := range insts {
		if in.IsJump() {
			out[i] = in.Mnemonic
			continue
		}
		var parts []string
		for _, op := range in.Ops {
			parts = append(parts, normOperand(op, regNames, memNames))
		}
		out[i] = in.Mnemonic + " " + strings.Join(parts, ",")
	}
	return out
}

func normOperand(op asm.Operand, regNames map[asm.Reg]string, memNames map[string]string) string {
	if !op.IsMem() {
		return normArg(op.Arg, regNames, memNames)
	}
	var terms []string
	for _, t := range op.Mem {
		terms = append(terms, string(t.Op)+normArg(t.Arg, regNames, memNames))
	}
	return "[" + strings.Join(terms, "") + "]"
}

func normArg(a asm.Arg, regNames map[asm.Reg]string, memNames map[string]string) string {
	switch {
	case a.IsReg():
		n, ok := regNames[a.Reg]
		if !ok {
			n = fmt.Sprintf("r%d", len(regNames))
			regNames[a.Reg] = n
		}
		return n
	case a.IsImm():
		return "v"
	default:
		key := fmt.Sprintf("%d:%s", a.Cls, a.Sym)
		n, ok := memNames[key]
		if !ok {
			n = fmt.Sprintf("m%d", len(memNames))
			memNames[key] = n
		}
		return n
	}
}

// Similarity returns the containment of the reference's n-grams in the
// target's: |ref ∩ tgt| / |ref|.
func Similarity(ref, tgt *Fingerprint) float64 {
	if len(ref.Grams) == 0 {
		return 0
	}
	common := 0
	for g := range ref.Grams {
		if tgt.Grams[g] {
			common++
		}
	}
	return float64(common) / float64(len(ref.Grams))
}
