package asm

import (
	"testing"
)

func regs(rs ...Reg) map[Reg]bool {
	m := make(map[Reg]bool, len(rs))
	for _, r := range rs {
		m[r] = true
	}
	return m
}

func sameRegSet(a, b map[Reg]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for r := range a {
		if !b[r] {
			return false
		}
	}
	return true
}

// TestPaperSection3Examples checks the exact read/write/args table from the
// paper's Section 3.
func TestPaperSection3Examples(t *testing.T) {
	tests := []struct {
		src   string
		nArgs int
		read  map[Reg]bool
		write map[Reg]bool
	}{
		{"add eax, ebx", 2, regs(EAX, EBX), regs(EAX)},
		{"mov eax, [ebp+4]", 3, regs(EBP), regs(EAX)},
		{"mov ebx, [esp+8]", 3, regs(ESP), regs(EBX)},
		{"mov eax, [ebp+ecx]", 3, regs(EBP, ECX), regs(EAX)},
	}
	for _, tc := range tests {
		in := MustParse(tc.src)
		if got := len(in.Args()); got != tc.nArgs {
			t.Errorf("%s: got %d args, want %d", tc.src, got, tc.nArgs)
		}
		if got := in.Read(); !sameRegSet(got, tc.read) {
			t.Errorf("%s: Read() = %v, want %v", tc.src, got, tc.read)
		}
		if got := in.Write(); !sameRegSet(got, tc.write) {
			t.Errorf("%s: Write() = %v, want %v", tc.src, got, tc.write)
		}
	}
}

// TestPaperSameKind checks the SameKind examples from Section 3:
// SameKind(inst2, inst3) = true, SameKind(inst3, inst4) = false.
func TestPaperSameKind(t *testing.T) {
	inst2 := MustParse("mov eax, [ebp+4]")
	inst3 := MustParse("mov ebx, [esp+8]")
	inst4 := MustParse("mov eax, [ebp+ecx]")
	if !SameKind(inst2, inst3) {
		t.Errorf("SameKind(inst2, inst3) = false, want true")
	}
	if SameKind(inst3, inst4) {
		t.Errorf("SameKind(inst3, inst4) = true, want false")
	}
	if !SameKind(inst2, inst2) {
		t.Errorf("SameKind(inst2, inst2) = false, want true")
	}
}

func TestSameKindMnemonicAndArity(t *testing.T) {
	a := MustParse("add eax, ebx")
	b := MustParse("sub eax, ebx")
	if SameKind(a, b) {
		t.Error("different mnemonics must not be SameKind")
	}
	c := MustParse("push eax")
	d := MustParse("add eax, ebx")
	if SameKind(c, d) {
		t.Error("different arity must not be SameKind")
	}
	// Register vs immediate operand.
	e := MustParse("mov eax, ebx")
	f := MustParse("mov eax, 5")
	if SameKind(e, f) {
		t.Error("reg vs imm operands must not be SameKind")
	}
	// Symbolic locals are the same type as each other.
	g := MustParse("mov eax, [ebp+var_4]")
	h := MustParse("mov ecx, [esp+var_8]")
	if !SameKind(g, h) {
		t.Error("two local-symbol memory operands should be SameKind")
	}
	// ...but not the same type as an immediate offset.
	i := MustParse("mov eax, [ebp+8]")
	if SameKind(g, i) {
		t.Error("local symbol vs immediate offset must not be SameKind")
	}
}

func TestParseRoundTrip(t *testing.T) {
	lines := []string{
		"push ebp",
		"mov ebp, esp",
		"sub esp, 18h",
		"mov [ebp+var_4], esi",
		"mov eax, [ebp+arg_8]",
		"mov ebx, offset unk_404000",
		"mov [esp+18h+var_14], ebx",
		"call _fopen",
		"cmp esi, 1",
		"mov eax, 1",
		"retn",
		"imul eax, ebx, 4",
		"lea eax, [ebx+ecx*4+10h]",
		"mov eax, [ebp-0Ch]",
		"xor esi, esi",
	}
	for _, src := range lines {
		in, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if got := in.String(); got != src {
			t.Errorf("round trip: %q -> %q", src, got)
		}
		again, err := Parse(in.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", in.String(), err)
		}
		if !in.Equal(again) {
			t.Errorf("reparse of %q not Equal", src)
		}
	}
}

func TestParseJumpAndCallClassification(t *testing.T) {
	j := MustParse("jz short loc_401358")
	if !j.IsJump() || !j.IsCondJump() {
		t.Fatal("jz should be a conditional jump")
	}
	if a := j.Ops[0].Arg; a.Cls != SymLabel {
		t.Errorf("jump target class = %v, want label", a.Cls)
	}
	c := MustParse("call _printf")
	if !c.IsCall() {
		t.Fatal("call should be a call")
	}
	if a := c.Ops[0].Arg; a.Cls != SymFunc {
		t.Errorf("call target class = %v, want func", a.Cls)
	}
	u := MustParse("jmp loc_40132F")
	if !u.IsJump() || u.IsCondJump() {
		t.Error("jmp should be an unconditional jump")
	}
}

func TestControlFlowPredicates(t *testing.T) {
	for _, tc := range []struct {
		src        string
		terminates bool
		cf         bool
	}{
		{"jmp loc_1", true, true},
		{"jne loc_1", true, true},
		{"retn", true, true},
		{"call _f", false, true},
		{"mov eax, ebx", false, false},
		{"push ebp", false, false},
	} {
		in := MustParse(tc.src)
		if got := in.Terminates(); got != tc.terminates {
			t.Errorf("%s: Terminates() = %v, want %v", tc.src, got, tc.terminates)
		}
		if got := in.IsControlFlow(); got != tc.cf {
			t.Errorf("%s: IsControlFlow() = %v, want %v", tc.src, got, tc.cf)
		}
	}
}

func TestImplicitRegisters(t *testing.T) {
	push := MustParse("push eax")
	if r := push.Read(); !r[ESP] || !r[EAX] {
		t.Errorf("push eax should read esp and eax, got %v", r)
	}
	if w := push.Write(); !w[ESP] || w[EAX] {
		t.Errorf("push eax should write only esp, got %v", w)
	}
	cdq := MustParse("cdq")
	if r := cdq.Read(); !r[EAX] {
		t.Errorf("cdq should read eax, got %v", r)
	}
	if w := cdq.Write(); !w[EDX] {
		t.Errorf("cdq should write edx, got %v", w)
	}
	idiv := MustParse("idiv ebx")
	if r := idiv.Read(); !r[EAX] || !r[EDX] || !r[EBX] {
		t.Errorf("idiv ebx read set incomplete: %v", r)
	}
	if w := idiv.Write(); !w[EAX] || !w[EDX] {
		t.Errorf("idiv ebx write set incomplete: %v", w)
	}
}

func TestLeaReadsAddressOnly(t *testing.T) {
	lea := MustParse("lea eax, [ebx+ecx*4]")
	r := lea.Read()
	if !r[EBX] || !r[ECX] {
		t.Errorf("lea should read address components, got %v", r)
	}
	w := lea.Write()
	if !w[EAX] || len(w) != 1 {
		t.Errorf("lea should write exactly eax, got %v", w)
	}
}

func TestImulForms(t *testing.T) {
	one := MustParse("imul ebx")
	if r := one.Read(); !r[EBX] || !r[EAX] {
		t.Errorf("1-op imul read set: %v", r)
	}
	two := MustParse("imul eax, ebx")
	if r := two.Read(); !r[EAX] || !r[EBX] {
		t.Errorf("2-op imul read set: %v", r)
	}
	if w := two.Write(); !w[EAX] || len(w) != 1 {
		t.Errorf("2-op imul write set: %v", w)
	}
	three := MustParse("imul eax, ebx, 4")
	if r := three.Read(); r[EAX] || !r[EBX] {
		t.Errorf("3-op imul should read ebx only: %v", r)
	}
	if w := three.Write(); !w[EAX] {
		t.Errorf("3-op imul write set: %v", w)
	}
}

func TestParseListing(t *testing.T) {
	src := `
		; prologue
		push ebp
		mov ebp, esp
	loc_10:
		cmp eax, 1
		jz loc_10
		retn
	`
	insts, labels, err := ParseListing(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 5 {
		t.Fatalf("got %d instructions, want 5", len(insts))
	}
	if labels["loc_10"] != 2 {
		t.Errorf("label loc_10 at %d, want 2", labels["loc_10"])
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"mov eax, [ebx",
		"mov eax, ebx, ecx, edx",
		"mov eax, ]",
		"mov eax, [+]",
		"mov eax, 12junk",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestImmFormatting(t *testing.T) {
	for _, tc := range []struct {
		v    int64
		want string
	}{
		{0, "0"}, {5, "5"}, {9, "9"}, {10, "0Ah"}, {16, "10h"},
		{0x18, "18h"}, {0xA0, "0A0h"}, {-4, "-4"}, {-0x18, "-18h"},
	} {
		if got := formatImm(tc.v); got != tc.want {
			t.Errorf("formatImm(%d) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	in := MustParse("mov [ebp+var_4], esi")
	c := in.Clone()
	c.Ops[0].Mem[1].Arg = SymArg(SymLocal, "var_8")
	if in.Ops[0].Mem[1].Arg.Sym != "var_4" {
		t.Error("Clone shares memory with original")
	}
}

func TestSymClassification(t *testing.T) {
	for _, tc := range []struct {
		name string
		want SymClass
	}{
		{"var_4", SymLocal},
		{"arg_0", SymLocal},
		{"loc_401358", SymLabel},
		{"_printf", SymFunc},
		{"sub_4012F0", SymFunc},
		{"aCmdDDone", SymData},
		{"unk_404000", SymData},
	} {
		if got := classifySym(tc.name); got.Cls != tc.want {
			t.Errorf("classifySym(%q) = %v, want %v", tc.name, got.Cls, tc.want)
		}
	}
}

func TestRegisterHelpers(t *testing.T) {
	if LookupReg("EAX") != EAX {
		t.Error("LookupReg should be case-insensitive")
	}
	if LookupReg("bogus") != RegNone {
		t.Error("LookupReg of unknown name should be RegNone")
	}
	for i, r := range GP32() {
		if !r.Is32() {
			t.Errorf("%v should be 32-bit", r)
		}
		if r.Num32() != i {
			t.Errorf("%v Num32 = %d, want %d", r, r.Num32(), i)
		}
		if Reg32(i) != r {
			t.Errorf("Reg32(%d) = %v, want %v", i, Reg32(i), r)
		}
	}
	if RAX.Is32() || AL.Is32() {
		t.Error("rax/al are not 32-bit GPRs")
	}
}

func TestSetArg(t *testing.T) {
	in := MustParse("mov [ebp+var_4], esi")
	in.SetArg(2, RegArg(EDI))
	if got := in.String(); got != "mov [ebp+var_4], edi" {
		t.Errorf("SetArg direct: %q", got)
	}
	in.SetArg(1, SymArg(SymLocal, "var_8"))
	if got := in.String(); got != "mov [ebp+var_8], edi" {
		t.Errorf("SetArg mem term: %q", got)
	}
	in.SetArg(0, RegArg(ESP))
	if got := in.String(); got != "mov [esp+var_8], edi" {
		t.Errorf("SetArg mem base: %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("SetArg out of range should panic")
		}
	}()
	in.SetArg(3, RegArg(EAX))
}

func TestOffsetOperandShape(t *testing.T) {
	a := MustParse("push offset aHello")
	b := MustParse("push offset aWorld")
	c := MustParse("push aHello") // direct sym without offset prefix
	if !SameKind(a, b) {
		t.Error("two offset operands should be SameKind")
	}
	if SameKind(a, c) {
		t.Error("offset vs plain symbol operands must differ in shape")
	}
	if got := a.String(); got != "push offset aHello" {
		t.Errorf("offset printing: %q", got)
	}
}

func TestSizeQualifiersIgnored(t *testing.T) {
	a := MustParse("mov dword ptr [ebp-4], eax")
	b := MustParse("mov [ebp-4], eax")
	if !a.Equal(b) {
		t.Errorf("size qualifier should be stripped: %q vs %q", a, b)
	}
}
