package asm

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a single instruction in Intel syntax, e.g.
//
//	mov [esp+18h+var_14], ebx
//	call _fopen
//	jz short loc_401358
//	mov ebx, offset unk_404000
//
// Immediates may be decimal, 0x-prefixed hex, or IDA-style trailing-h hex
// (18h, 0A0h). Symbols are classified by their conventional IDA prefixes
// (var_/arg_ stack locals, loc_ labels, sub_/leading-underscore functions,
// everything else data), with call/jump operands overridden to function and
// label classes respectively.
func Parse(line string) (Inst, error) {
	line = stripComment(line)
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return Inst{}, fmt.Errorf("asm: empty instruction")
	}
	mnemonic := strings.ToLower(fields[0])
	rest := strings.TrimSpace(line[strings.Index(line, fields[0])+len(fields[0]):])
	in := Inst{Mnemonic: mnemonic}
	if rest == "" {
		return in, nil
	}
	for _, part := range splitOperands(rest) {
		op, err := parseOperand(part)
		if err != nil {
			return Inst{}, fmt.Errorf("asm: %q: %w", line, err)
		}
		in.Ops = append(in.Ops, op)
	}
	if len(in.Ops) > 3 {
		return Inst{}, fmt.Errorf("asm: %q: more than 3 operands", line)
	}
	// Contextual symbol classification.
	if in.IsCall() || in.IsJump() {
		for i := range in.Ops {
			o := &in.Ops[i]
			if !o.IsMem() && o.Arg.IsSym() {
				if in.IsCall() {
					o.Arg.Cls = SymFunc
				} else {
					o.Arg.Cls = SymLabel
				}
			}
		}
	}
	return in, nil
}

// MustParse is Parse that panics on error, for tests and fixed listings.
func MustParse(line string) Inst {
	in, err := Parse(line)
	if err != nil {
		panic(err)
	}
	return in
}

// ParseListing parses a multi-line listing. Lines may be blank, comments
// (starting with ';' or '#'), label definitions ("loc_40:") or
// instructions. It returns the instructions and a map from label name to
// the index of the instruction the label precedes (len(insts) for a
// trailing label).
func ParseListing(src string) ([]Inst, map[string]int, error) {
	var insts []Inst
	labels := make(map[string]int)
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(stripComment(raw))
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, ":") && !strings.ContainsAny(line, " \t,[") {
			labels[strings.TrimSuffix(line, ":")] = len(insts)
			continue
		}
		in, err := Parse(line)
		if err != nil {
			return nil, nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		insts = append(insts, in)
	}
	return insts, labels, nil
}

func stripComment(line string) string {
	for _, c := range []string{";", "#"} {
		if i := strings.Index(line, c); i >= 0 {
			line = line[:i]
		}
	}
	return line
}

// splitOperands splits on commas outside brackets.
func splitOperands(s string) []string {
	var parts []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				parts = append(parts, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	parts = append(parts, strings.TrimSpace(s[start:]))
	return parts
}

func parseOperand(s string) (Operand, error) {
	s = strings.TrimSpace(s)
	// Size/distance qualifiers carry no information for matching.
	for _, q := range []string{"short ", "near ", "far ", "dword ptr ", "word ptr ", "byte ptr ", "dword ", "qword ptr "} {
		if strings.HasPrefix(strings.ToLower(s), q) {
			s = strings.TrimSpace(s[len(q):])
		}
	}
	if strings.HasPrefix(strings.ToLower(s), "offset ") {
		name := strings.TrimSpace(s[len("offset "):])
		return Operand{Arg: classifySym(name), Offset: true}, nil
	}
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return Operand{}, fmt.Errorf("unterminated memory operand %q", s)
		}
		terms, err := parseMemExpr(s[1 : len(s)-1])
		if err != nil {
			return Operand{}, err
		}
		return Operand{Mem: terms}, nil
	}
	arg, err := parseArg(s)
	if err != nil {
		return Operand{}, err
	}
	return Operand{Arg: arg}, nil
}

func parseMemExpr(s string) ([]MemTerm, error) {
	var terms []MemTerm
	op := OpAdd
	start := 0
	flush := func(end int, next MemOp) error {
		tok := strings.TrimSpace(s[start:end])
		if tok == "" {
			return fmt.Errorf("empty term in memory operand %q", s)
		}
		arg, err := parseArg(tok)
		if err != nil {
			return err
		}
		terms = append(terms, MemTerm{Op: op, Arg: arg})
		op = next
		return nil
	}
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '+', '-', '*':
			// A leading '-' on the very first term is a negative immediate.
			if i == start && s[i] == '-' {
				continue
			}
			if err := flush(i, MemOp(s[i])); err != nil {
				return nil, err
			}
			start = i + 1
		}
	}
	if err := flush(len(s), OpAdd); err != nil {
		return nil, err
	}
	terms[0].Op = OpAdd
	return terms, nil
}

func parseArg(s string) (Arg, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Arg{}, fmt.Errorf("empty argument")
	}
	if r := LookupReg(s); r != RegNone {
		return RegArg(r), nil
	}
	if v, ok := parseImm(s); ok {
		return ImmArg(v), nil
	}
	if !isSymbolToken(s) {
		return Arg{}, fmt.Errorf("cannot parse argument %q", s)
	}
	return classifySym(s), nil
}

func parseImm(s string) (int64, bool) {
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var v uint64
	var err error
	switch {
	case strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X"):
		v, err = strconv.ParseUint(s[2:], 16, 64)
	case (strings.HasSuffix(s, "h") || strings.HasSuffix(s, "H")) && isHexDigits(s[:len(s)-1]):
		v, err = strconv.ParseUint(s[:len(s)-1], 16, 64)
	default:
		if !isDecDigits(s) {
			return 0, false
		}
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0, false
	}
	out := int64(v)
	if neg {
		out = -out
	}
	return out, true
}

func isHexDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'f', c >= 'A' && c <= 'F':
		default:
			return false
		}
	}
	return true
}

func isDecDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

func isSymbolToken(s string) bool {
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.', c == '@', c == '$':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return s != ""
}

// classifySym maps a symbol name to a classed argument using IDA naming
// conventions.
func classifySym(name string) Arg {
	switch {
	case strings.HasPrefix(name, "var_"), strings.HasPrefix(name, "arg_"):
		return SymArg(SymLocal, name)
	case strings.HasPrefix(name, "loc_"), strings.HasPrefix(name, "locret_"):
		return SymArg(SymLabel, name)
	case strings.HasPrefix(name, "sub_"), strings.HasPrefix(name, "_"):
		return SymArg(SymFunc, name)
	default:
		return SymArg(SymData, name)
	}
}
