// Package asm models x86 assembly instructions at the level used by the
// paper "Tracelet-Based Code Search in Executables" (PLDI 2014, Section 3
// and Fig. 6):
//
//	instr      ::= nullary | unary op | binary op op | ternary op op op
//	op         ::= [ OffsetCalc ] | arg
//	arg        ::= reg | imm
//	OffsetCalc ::= arg | arg aop OffsetCalc
//	aop        ::= + | - | *
//
// In addition to registers and immediates, an argument may be a *symbol*: a
// named token introduced by the preprocessing step of Section 4.1 (stack
// variables such as var_8, imported call targets such as _printf, global
// data content tokens such as aCmdDDone, and code labels such as
// loc_401358). Symbols are what the rewrite engine of Section 4.4
// re-assigns.
package asm

import (
	"fmt"
	"strings"
)

// ArgKind classifies an argument. The paper's rewrite rules distinguish
// substitutions between operands of the same type from substitutions across
// types, so the kind is the unit of "type" here.
type ArgKind uint8

const (
	KindNone ArgKind = iota
	KindReg          // machine register
	KindImm          // immediate integer value
	KindSym          // symbolic token (see SymClass)
)

var argKindNames = [...]string{"none", "reg", "imm", "sym"}

// String returns a short name for the kind.
func (k ArgKind) String() string {
	if int(k) < len(argKindNames) {
		return argKindNames[k]
	}
	return "<bad kind>"
}

// SymClass classifies a symbolic token. The rewrite engine keeps separate
// assignment domains for registers, memory locations and function names
// (paper Section 4.4); symbol classes carry that distinction.
type SymClass uint8

const (
	SymNone  SymClass = iota
	SymLocal          // stack variable or argument: var_8, arg_0
	SymData           // global-memory content token: aCmdDDone, unk_404000
	SymFunc           // call target: _printf, sub_4012F0
	SymLabel          // intra-procedural code label: loc_401358
)

var symClassNames = [...]string{"none", "local", "data", "func", "label"}

// String returns a short name for the class.
func (c SymClass) String() string {
	if int(c) < len(symClassNames) {
		return symClassNames[c]
	}
	return "<bad class>"
}

// Arg is a single argument: a register, an immediate, or a symbol.
// Exactly one of the fields selected by Kind is meaningful.
type Arg struct {
	Kind ArgKind
	Reg  Reg      // valid when Kind == KindReg
	Imm  int64    // valid when Kind == KindImm
	Sym  string   // valid when Kind == KindSym
	Cls  SymClass // valid when Kind == KindSym
}

// RegArg returns a register argument.
func RegArg(r Reg) Arg { return Arg{Kind: KindReg, Reg: r} }

// ImmArg returns an immediate argument.
func ImmArg(v int64) Arg { return Arg{Kind: KindImm, Imm: v} }

// SymArg returns a symbolic argument of the given class.
func SymArg(class SymClass, name string) Arg {
	return Arg{Kind: KindSym, Sym: name, Cls: class}
}

// IsReg reports whether a is a register argument.
func (a Arg) IsReg() bool { return a.Kind == KindReg }

// IsImm reports whether a is an immediate argument.
func (a Arg) IsImm() bool { return a.Kind == KindImm }

// IsSym reports whether a is a symbolic argument.
func (a Arg) IsSym() bool { return a.Kind == KindSym }

// SameType reports whether a and b are arguments of the same type in the
// paper's sense: both registers, both immediates, or both symbols of the
// same class.
func (a Arg) SameType(b Arg) bool {
	if a.Kind != b.Kind {
		return false
	}
	return a.Kind != KindSym || a.Cls == b.Cls
}

// String formats the argument in Intel syntax.
func (a Arg) String() string {
	switch a.Kind {
	case KindReg:
		return a.Reg.String()
	case KindImm:
		return formatImm(a.Imm)
	case KindSym:
		return a.Sym
	default:
		return "<none>"
	}
}

func formatImm(v int64) string {
	neg := false
	u := v
	if v < 0 {
		neg = true
		u = -v
	}
	var s string
	if u < 10 {
		s = fmt.Sprintf("%d", u)
	} else {
		// IDA-style hexadecimal: 18h, 0A0h.
		h := strings.ToUpper(fmt.Sprintf("%x", u))
		if h[0] >= 'A' && h[0] <= 'F' {
			h = "0" + h
		}
		s = h + "h"
	}
	if neg {
		return "-" + s
	}
	return s
}

// MemOp is one aop operator inside an offset calculation.
type MemOp byte

const (
	OpAdd MemOp = '+'
	OpSub MemOp = '-'
	OpMul MemOp = '*'
)

// MemTerm is one term of an offset calculation. The operator of the first
// term in an operand is always OpAdd and is not printed.
type MemTerm struct {
	Op  MemOp
	Arg Arg
}

// Operand is either a direct argument (Mem == nil) or a memory operand whose
// address is the offset calculation given by Mem. For call-style operands
// carrying an "offset name" immediate (e.g. mov ebx, offset unk_404000) the
// Offset flag is set.
type Operand struct {
	Arg    Arg       // direct argument; meaningful when Mem is empty
	Mem    []MemTerm // memory offset calculation; non-empty for [..] operands
	Offset bool      // printed with an "offset " prefix (address-of a symbol)
}

// IsMem reports whether o is a memory operand.
func (o Operand) IsMem() bool { return len(o.Mem) > 0 }

// DirectOp returns a direct (non-memory) operand.
func DirectOp(a Arg) Operand { return Operand{Arg: a} }

// RegOp returns a direct register operand.
func RegOp(r Reg) Operand { return DirectOp(RegArg(r)) }

// ImmOp returns a direct immediate operand.
func ImmOp(v int64) Operand { return DirectOp(ImmArg(v)) }

// SymOp returns a direct symbolic operand.
func SymOp(class SymClass, name string) Operand {
	return DirectOp(SymArg(class, name))
}

// OffsetOp returns an "offset name" operand: the address of a symbol used
// as an immediate-like value.
func OffsetOp(class SymClass, name string) Operand {
	return Operand{Arg: SymArg(class, name), Offset: true}
}

// MemOperand returns a memory operand over the given terms. The first
// term's operator is normalized to OpAdd.
func MemOperand(terms ...MemTerm) Operand {
	if len(terms) == 0 {
		panic("asm: MemOperand with no terms")
	}
	terms[0].Op = OpAdd
	return Operand{Mem: terms}
}

// MemReg returns the memory operand [base].
func MemReg(base Reg) Operand {
	return MemOperand(MemTerm{Arg: RegArg(base)})
}

// MemDisp returns the memory operand [base+disp] ([base-(-disp)] when disp
// is negative).
func MemDisp(base Reg, disp int64) Operand {
	op := OpAdd
	if disp < 0 {
		op, disp = OpSub, -disp
	}
	return MemOperand(MemTerm{Arg: RegArg(base)}, MemTerm{Op: op, Arg: ImmArg(disp)})
}

// MemSym returns the memory operand [base+sym] for a preprocessed stack
// variable such as [ebp+var_8].
func MemSym(base Reg, class SymClass, name string) Operand {
	return MemOperand(MemTerm{Arg: RegArg(base)}, MemTerm{Op: OpAdd, Arg: SymArg(class, name)})
}

// Args returns the arguments appearing in the operand, in syntactic order.
func (o Operand) Args() []Arg {
	if !o.IsMem() {
		return []Arg{o.Arg}
	}
	out := make([]Arg, len(o.Mem))
	for i, t := range o.Mem {
		out[i] = t.Arg
	}
	return out
}

// SameShape reports whether two operands have the same structure: both
// direct with same-type arguments, or both memory operands with the same
// number of terms, the same operators, and pairwise same-type arguments.
// This is the operand-level component of the paper's SameKind predicate.
func (o Operand) SameShape(p Operand) bool {
	if o.IsMem() != p.IsMem() {
		return false
	}
	if !o.IsMem() {
		return o.Offset == p.Offset && o.Arg.SameType(p.Arg)
	}
	if len(o.Mem) != len(p.Mem) {
		return false
	}
	for i := range o.Mem {
		if o.Mem[i].Op != p.Mem[i].Op || !o.Mem[i].Arg.SameType(p.Mem[i].Arg) {
			return false
		}
	}
	return true
}

// String formats the operand in Intel syntax.
func (o Operand) String() string {
	if !o.IsMem() {
		if o.Offset {
			return "offset " + o.Arg.String()
		}
		return o.Arg.String()
	}
	var b strings.Builder
	b.WriteByte('[')
	for i, t := range o.Mem {
		if i > 0 {
			b.WriteByte(byte(t.Op))
		}
		b.WriteString(t.Arg.String())
	}
	b.WriteByte(']')
	return b.String()
}

// Inst is one assembly instruction: a mnemonic and up to three operands.
type Inst struct {
	Mnemonic string
	Ops      []Operand
}

// New constructs an instruction. The mnemonic is lower-cased.
func New(mnemonic string, ops ...Operand) Inst {
	return Inst{Mnemonic: strings.ToLower(mnemonic), Ops: ops}
}

// String formats the instruction in Intel syntax, e.g.
// "mov [ebp+var_4], esi".
func (in Inst) String() string {
	if len(in.Ops) == 0 {
		return in.Mnemonic
	}
	parts := make([]string, len(in.Ops))
	for i, o := range in.Ops {
		parts[i] = o.String()
	}
	return in.Mnemonic + " " + strings.Join(parts, ", ")
}

// Clone returns a deep copy of the instruction.
func (in Inst) Clone() Inst {
	out := Inst{Mnemonic: in.Mnemonic}
	if in.Ops != nil {
		out.Ops = make([]Operand, len(in.Ops))
		for i, o := range in.Ops {
			out.Ops[i] = o
			if o.Mem != nil {
				out.Ops[i].Mem = append([]MemTerm(nil), o.Mem...)
			}
		}
	}
	return out
}

// Equal reports syntactic equality of two instructions.
func (in Inst) Equal(other Inst) bool {
	if in.Mnemonic != other.Mnemonic || len(in.Ops) != len(other.Ops) {
		return false
	}
	for i := range in.Ops {
		if !operandEqual(in.Ops[i], other.Ops[i]) {
			return false
		}
	}
	return true
}

func operandEqual(a, b Operand) bool {
	if a.IsMem() != b.IsMem() {
		return false
	}
	if !a.IsMem() {
		return a.Offset == b.Offset && a.Arg == b.Arg
	}
	if len(a.Mem) != len(b.Mem) {
		return false
	}
	for i := range a.Mem {
		if a.Mem[i] != b.Mem[i] {
			return false
		}
	}
	return true
}

// SetArg replaces the i'th argument (in Args() order) of the instruction.
// It panics if i is out of range.
func (in *Inst) SetArg(i int, a Arg) {
	idx := 0
	for oi := range in.Ops {
		op := &in.Ops[oi]
		if !op.IsMem() {
			if idx == i {
				op.Arg = a
				return
			}
			idx++
			continue
		}
		for ti := range op.Mem {
			if idx == i {
				op.Mem[ti].Arg = a
				return
			}
			idx++
		}
	}
	panic("asm: SetArg index out of range")
}
