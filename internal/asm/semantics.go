package asm

// This file implements the instruction semantics of paper Section 3:
// read(inst), write(inst), args(inst) and SameKind(inst, inst).

// opAccess describes how an instruction accesses one of its operands.
type opAccess uint8

const (
	accNone opAccess = 0
	accR    opAccess = 1 << iota // operand value is read
	accW                         // operand value is written
	accRW            = accR | accW
	accAddr opAccess = 1 << 3 // address-of only (lea): offset regs read, value untouched
)

// mnemonicInfo is the per-mnemonic semantic table entry.
type mnemonicInfo struct {
	access   []opAccess // access per operand position
	impR     []Reg      // implicitly read registers
	impW     []Reg      // implicitly written registers
	jump     bool       // control-flow transfer (jmp or jcc)
	cond     bool       // conditional control-flow transfer
	call     bool
	ret      bool
	variadic bool // operand count may be shorter than len(access) (imul)
}

var mnemonics = map[string]mnemonicInfo{
	// Nullary.
	"ret":   {ret: true, impR: []Reg{ESP}, impW: []Reg{ESP}},
	"retn":  {ret: true, impR: []Reg{ESP}, impW: []Reg{ESP}},
	"leave": {impR: []Reg{EBP}, impW: []Reg{ESP, EBP}},
	"nop":   {},
	"cdq":   {impR: []Reg{EAX}, impW: []Reg{EDX}},
	"cwde":  {impR: []Reg{EAX}, impW: []Reg{EAX}},
	"cbw":   {impR: []Reg{EAX}, impW: []Reg{EAX}},
	"aad":   {impR: []Reg{EAX}, impW: []Reg{EAX}},
	"aam":   {impR: []Reg{EAX}, impW: []Reg{EAX}},
	"aas":   {impR: []Reg{EAX}, impW: []Reg{EAX}},

	// Unary.
	"push":  {access: []opAccess{accR}, impR: []Reg{ESP}, impW: []Reg{ESP}},
	"pop":   {access: []opAccess{accW}, impR: []Reg{ESP}, impW: []Reg{ESP}},
	"inc":   {access: []opAccess{accRW}},
	"dec":   {access: []opAccess{accRW}},
	"neg":   {access: []opAccess{accRW}},
	"not":   {access: []opAccess{accRW}},
	"idiv":  {access: []opAccess{accR}, impR: []Reg{EAX, EDX}, impW: []Reg{EAX, EDX}},
	"div":   {access: []opAccess{accR}, impR: []Reg{EAX, EDX}, impW: []Reg{EAX, EDX}},
	"mul":   {access: []opAccess{accR}, impR: []Reg{EAX}, impW: []Reg{EAX, EDX}},
	"call":  {access: []opAccess{accR}, call: true, impR: []Reg{ESP}, impW: []Reg{ESP, EAX, ECX, EDX}},
	"jmp":   {access: []opAccess{accR}, jump: true},
	"sete":  {access: []opAccess{accW}},
	"setne": {access: []opAccess{accW}},
	"setl":  {access: []opAccess{accW}},
	"setg":  {access: []opAccess{accW}},

	// Binary.
	"mov":   {access: []opAccess{accW, accR}},
	"movzx": {access: []opAccess{accW, accR}},
	"movsx": {access: []opAccess{accW, accR}},
	"lea":   {access: []opAccess{accW, accAddr}},
	"add":   {access: []opAccess{accRW, accR}},
	"sub":   {access: []opAccess{accRW, accR}},
	"adc":   {access: []opAccess{accRW, accR}},
	"sbb":   {access: []opAccess{accRW, accR}},
	"and":   {access: []opAccess{accRW, accR}},
	"or":    {access: []opAccess{accRW, accR}},
	"xor":   {access: []opAccess{accRW, accR}},
	"cmp":   {access: []opAccess{accR, accR}},
	"test":  {access: []opAccess{accR, accR}},
	"xchg":  {access: []opAccess{accRW, accRW}},
	"shl":   {access: []opAccess{accRW, accR}},
	"shr":   {access: []opAccess{accRW, accR}},
	"sar":   {access: []opAccess{accRW, accR}},
	"rol":   {access: []opAccess{accRW, accR}},
	"ror":   {access: []opAccess{accRW, accR}},
	"rorx":  {access: []opAccess{accW, accR, accR}, variadic: true},

	// imul has one-, two- and three-operand forms.
	"imul": {access: []opAccess{accRW, accR, accR}, variadic: true},
}

// conditional jumps share one entry shape.
var ccMnemonics = []string{
	"jz", "jnz", "je", "jne", "jl", "jle", "jg", "jge",
	"jb", "jbe", "ja", "jae", "js", "jns", "jo", "jno", "jp", "jnp",
}

// ccSuffixes are the condition-code spellings used for setcc/cmovcc.
var ccSuffixes = []string{
	"o", "no", "b", "ae", "z", "nz", "e", "ne", "be", "a",
	"s", "ns", "p", "np", "l", "ge", "le", "g",
}

func init() {
	for _, m := range ccMnemonics {
		mnemonics[m] = mnemonicInfo{access: []opAccess{accR}, jump: true, cond: true}
	}
	for _, cc := range ccSuffixes {
		mnemonics["set"+cc] = mnemonicInfo{access: []opAccess{accW}}
		// cmov keeps the old destination when the condition fails, so the
		// destination is read as well as written.
		mnemonics["cmov"+cc] = mnemonicInfo{access: []opAccess{accRW, accR}}
	}
}

func lookup(m string) (mnemonicInfo, bool) {
	info, ok := mnemonics[m]
	return info, ok
}

// KnownMnemonic reports whether the mnemonic has a semantic table entry.
func KnownMnemonic(m string) bool {
	_, ok := mnemonics[m]
	return ok
}

// access returns the access mode of operand i, defaulting to read for
// unknown mnemonics (a safe over-approximation for reads, and conservative
// for writes).
func (in Inst) access(i int) opAccess {
	info, ok := lookup(in.Mnemonic)
	if !ok || i >= len(info.access) {
		if ok && info.variadic {
			// imul with fewer operands: single-operand form is a pure
			// read with implicit eax/edx; two-operand form is RW,R —
			// both are prefixes of the table entry, handled below.
			return accNone
		}
		return accR
	}
	if info.variadic {
		switch in.Mnemonic {
		case "imul":
			switch len(in.Ops) {
			case 1:
				return accR
			case 2:
				return [2]opAccess{accRW, accR}[i]
			case 3:
				return [3]opAccess{accW, accR, accR}[i]
			}
		}
	}
	return info.access[i]
}

// IsJump reports whether the instruction is a jump (conditional or not).
func (in Inst) IsJump() bool {
	info, ok := lookup(in.Mnemonic)
	return ok && info.jump
}

// IsCondJump reports whether the instruction is a conditional jump.
func (in Inst) IsCondJump() bool {
	info, ok := lookup(in.Mnemonic)
	return ok && info.cond
}

// IsCall reports whether the instruction is a call.
func (in Inst) IsCall() bool {
	info, ok := lookup(in.Mnemonic)
	return ok && info.call
}

// IsRet reports whether the instruction is a return.
func (in Inst) IsRet() bool {
	info, ok := lookup(in.Mnemonic)
	return ok && info.ret
}

// IsControlFlow reports whether the instruction transfers control (jump,
// call or return). Tracelet extraction strips jumps; basic-block
// construction ends blocks at jumps and returns.
func (in Inst) IsControlFlow() bool {
	info, ok := lookup(in.Mnemonic)
	return ok && (info.jump || info.call || info.ret)
}

// Terminates reports whether the instruction ends a basic block (jump or
// return, but not call: calls return to the next instruction).
func (in Inst) Terminates() bool {
	info, ok := lookup(in.Mnemonic)
	return ok && (info.jump || info.ret)
}

func addReg(set map[Reg]bool, a Arg) {
	if a.IsReg() {
		set[a.Reg] = true
	}
}

// Read returns the set of registers read by the instruction (paper
// Section 3): registers appearing as read operands, and registers used as
// components of any memory-address computation.
func (in Inst) Read() map[Reg]bool {
	out := make(map[Reg]bool)
	for i, op := range in.Ops {
		if op.IsMem() {
			// Address components are always read, whatever the access.
			for _, t := range op.Mem {
				addReg(out, t.Arg)
			}
			continue
		}
		if in.access(i)&accR != 0 {
			addReg(out, op.Arg)
		}
	}
	if info, ok := lookup(in.Mnemonic); ok {
		for _, r := range info.impR {
			out[r] = true
		}
	}
	if in.Mnemonic == "imul" && len(in.Ops) == 1 {
		out[EAX] = true // single-operand form multiplies into edx:eax
	}
	return out
}

// Write returns the set of registers written by the instruction. A memory
// destination writes no register.
func (in Inst) Write() map[Reg]bool {
	out := make(map[Reg]bool)
	for i, op := range in.Ops {
		if op.IsMem() {
			continue
		}
		if in.access(i)&accW != 0 {
			addReg(out, op.Arg)
		}
	}
	if info, ok := lookup(in.Mnemonic); ok {
		for _, r := range info.impW {
			out[r] = true
		}
	}
	if in.Mnemonic == "imul" && len(in.Ops) == 1 {
		out[EAX], out[EDX] = true, true
	}
	return out
}

// Args returns the arguments appearing in the instruction, in syntactic
// order (paper Section 3: args(inst)). Arguments inside memory operands are
// included; duplicates are preserved so that positional alignment works.
func (in Inst) Args() []Arg {
	out := make([]Arg, 0, in.NumArgs())
	for _, op := range in.Ops {
		if !op.IsMem() {
			out = append(out, op.Arg)
			continue
		}
		for _, t := range op.Mem {
			out = append(out, t.Arg)
		}
	}
	return out
}

// NumArgs returns len(Args()) without materializing the slice.
func (in Inst) NumArgs() int {
	n := 0
	for i := range in.Ops {
		if in.Ops[i].IsMem() {
			n += len(in.Ops[i].Mem)
		} else {
			n++
		}
	}
	return n
}

// SameKind reports whether two instructions have the same structure (paper
// Section 3): the same mnemonic, the same number of arguments, and all
// arguments pairwise of the same type. Memory-operand structure (number of
// terms and operators) must also agree, so that mov eax,[ebp+4] and
// mov eax,[ebp+ecx] differ in kind, per the paper's inst3/inst4 example.
func SameKind(a, b Inst) bool {
	if a.Mnemonic != b.Mnemonic || len(a.Ops) != len(b.Ops) {
		return false
	}
	for i := range a.Ops {
		if !a.Ops[i].SameShape(b.Ops[i]) {
			return false
		}
	}
	return true
}
