package asm

import "strings"

// Reg identifies a machine register. The zero value RegNone means "no
// register".
type Reg uint8

// General-purpose registers. The 32-bit registers are the primary domain of
// the paper (x86); 64-bit, 16-bit and 8-bit names are accepted by the parser
// so that foreign listings (e.g. the paper's rorx edx,esi / inc rdi example)
// can be represented.
const (
	RegNone Reg = iota

	// 32-bit general purpose registers, in x86 encoding order.
	EAX
	ECX
	EDX
	EBX
	ESP
	EBP
	ESI
	EDI

	// 64-bit general purpose registers.
	RAX
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15

	// 16-bit registers.
	AX
	CX
	DX
	BX
	SP
	BP
	SI
	DI

	// 8-bit registers.
	AL
	CL
	DL
	BL
	AH
	CH
	DH
	BH

	numRegs
)

var regNames = [numRegs]string{
	RegNone: "<none>",
	EAX:     "eax", ECX: "ecx", EDX: "edx", EBX: "ebx",
	ESP: "esp", EBP: "ebp", ESI: "esi", EDI: "edi",
	RAX: "rax", RCX: "rcx", RDX: "rdx", RBX: "rbx",
	RSP: "rsp", RBP: "rbp", RSI: "rsi", RDI: "rdi",
	R8: "r8", R9: "r9", R10: "r10", R11: "r11",
	R12: "r12", R13: "r13", R14: "r14", R15: "r15",
	AX: "ax", CX: "cx", DX: "dx", BX: "bx",
	SP: "sp", BP: "bp", SI: "si", DI: "di",
	AL: "al", CL: "cl", DL: "dl", BL: "bl",
	AH: "ah", CH: "ch", DH: "dh", BH: "bh",
}

var regByName = func() map[string]Reg {
	m := make(map[string]Reg, numRegs)
	for r := Reg(1); r < numRegs; r++ {
		m[regNames[r]] = r
	}
	return m
}()

// String returns the conventional lower-case register name.
func (r Reg) String() string {
	if r >= numRegs {
		return "<bad reg>"
	}
	return regNames[r]
}

// LookupReg returns the register with the given (case-insensitive) name, or
// RegNone if the name is not a known register.
func LookupReg(name string) Reg {
	return regByName[strings.ToLower(name)]
}

// Is32 reports whether r is one of the eight 32-bit general-purpose
// registers, the register class handled by the x86-32 encoder.
func (r Reg) Is32() bool { return r >= EAX && r <= EDI }

// Num32 returns the x86 encoding number (0-7) of a 32-bit register.
// It panics if r is not a 32-bit register.
func (r Reg) Num32() int {
	if !r.Is32() {
		panic("asm: Num32 on non-32-bit register " + r.String())
	}
	return int(r - EAX)
}

// Reg32 returns the 32-bit register with x86 encoding number n (0-7).
func Reg32(n int) Reg {
	if n < 0 || n > 7 {
		panic("asm: Reg32 number out of range")
	}
	return EAX + Reg(n)
}

// GP32 lists the eight 32-bit general-purpose registers in encoding order.
// Callers must not mutate the returned slice.
func GP32() []Reg {
	return []Reg{EAX, ECX, EDX, EBX, ESP, EBP, ESI, EDI}
}

// Is8 reports whether r is one of the eight 8-bit registers.
func (r Reg) Is8() bool { return r >= AL && r <= BH }

// Num8 returns the x86 encoding number (0-7) of an 8-bit register.
// It panics if r is not an 8-bit register.
func (r Reg) Num8() int {
	if !r.Is8() {
		panic("asm: Num8 on non-8-bit register " + r.String())
	}
	return int(r - AL)
}

// Reg8 returns the 8-bit register with x86 encoding number n (0-7):
// al, cl, dl, bl, ah, ch, dh, bh.
func Reg8(n int) Reg {
	if n < 0 || n > 7 {
		panic("asm: Reg8 number out of range")
	}
	return AL + Reg(n)
}

// Low8 returns the low 8-bit alias of a 32-bit register (eax -> al), or
// RegNone when the register has no byte alias (esp, ebp, esi, edi).
func (r Reg) Low8() Reg {
	if r >= EAX && r <= EBX {
		return AL + (r - EAX)
	}
	return RegNone
}
