package csp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/telemetry"
)

func TestAllSatisfiable(t *testing.T) {
	p := NewProblem()
	p.AddVar("x", []string{"a", "b", "c"})
	p.AddVar("y", []string{"a", "b", "c"})
	p.Bind("x", "b")
	p.Eq("x", "y")
	got, conflicts := p.Solve(0)
	if conflicts != 0 {
		t.Fatalf("conflicts = %d, want 0", conflicts)
	}
	if got["x"] != "b" || got["y"] != "b" {
		t.Errorf("assignment = %v, want x=y=b", got)
	}
}

func TestConflictingBinds(t *testing.T) {
	p := NewProblem()
	p.AddVar("x", []string{"a", "b"})
	p.Bind("x", "a")
	p.Bind("x", "a")
	p.Bind("x", "b")
	got, conflicts := p.Solve(0)
	// Majority wins: x=a violates one constraint.
	if got["x"] != "a" || conflicts != 1 {
		t.Errorf("got %v with %d conflicts, want x=a with 1", got, conflicts)
	}
}

func TestChainPropagation(t *testing.T) {
	// x=y, y=z, bind z=v: everything should become v.
	p := NewProblem()
	for _, n := range []string{"x", "y", "z"} {
		p.AddVar(n, []string{"u", "v", "w"})
	}
	p.Eq("x", "y")
	p.Eq("y", "z")
	p.Bind("z", "v")
	got, conflicts := p.Solve(0)
	if conflicts != 0 {
		t.Fatalf("conflicts = %d", conflicts)
	}
	if got["x"] != "v" || got["y"] != "v" || got["z"] != "v" {
		t.Errorf("chain assignment = %v", got)
	}
}

func TestCrossPressure(t *testing.T) {
	// Two binds pull x apart; eq to y whose bind agrees with "a" breaks
	// the tie at minimum conflict.
	p := NewProblem()
	p.AddVar("x", []string{"a", "b"})
	p.AddVar("y", []string{"a", "b"})
	p.Bind("x", "a")
	p.Bind("x", "b")
	p.Bind("y", "a")
	p.Eq("x", "y")
	got, conflicts := p.Solve(0)
	if got["x"] != "a" || got["y"] != "a" {
		t.Errorf("assignment = %v, want both a", got)
	}
	if conflicts != 1 {
		t.Errorf("conflicts = %d, want 1 (the x=b bind)", conflicts)
	}
}

func TestEmptyDomain(t *testing.T) {
	p := NewProblem()
	p.AddVar("x", nil)
	p.Bind("x", "q")
	got, conflicts := p.Solve(0)
	if _, assigned := got["x"]; assigned {
		t.Errorf("empty-domain var should stay unassigned, got %v", got)
	}
	if conflicts != 1 {
		t.Errorf("conflicts = %d, want 1", conflicts)
	}
}

func TestUnknownVarIgnored(t *testing.T) {
	p := NewProblem()
	p.AddVar("x", []string{"a"})
	p.Bind("nosuch", "a") // no-op
	p.Eq("x", "nosuch")   // no-op
	if p.NumConstraints() != 0 {
		t.Errorf("constraints on unknown vars should be dropped")
	}
	if !p.HasVar("x") || p.HasVar("nosuch") {
		t.Error("HasVar broken")
	}
}

func TestIndependentComponents(t *testing.T) {
	p := NewProblem()
	p.AddVar("a1", []string{"x", "y"})
	p.AddVar("a2", []string{"x", "y"})
	p.AddVar("b1", []string{"x", "y"})
	p.Eq("a1", "a2")
	p.Bind("a1", "x")
	p.Bind("b1", "y")
	got, conflicts := p.Solve(0)
	if conflicts != 0 {
		t.Fatalf("conflicts = %d", conflicts)
	}
	if got["a1"] != "x" || got["a2"] != "x" || got["b1"] != "y" {
		t.Errorf("assignment = %v", got)
	}
}

func TestDuplicateAddVarKeepsFirst(t *testing.T) {
	p := NewProblem()
	p.AddVar("x", []string{"a"})
	p.AddVar("x", []string{"b"})
	got, _ := p.Solve(0)
	if got["x"] != "a" {
		t.Errorf("x = %q, want a", got["x"])
	}
}

func TestBudgetStillReturnsAnswer(t *testing.T) {
	// A large chain with a tiny budget must still return a full
	// assignment (the greedy bound) with reasonable conflicts.
	p := NewProblem()
	n := 40
	dom := []string{"a", "b", "c", "d"}
	names := make([]string, n)
	for i := range names {
		names[i] = string(rune('A'+i%26)) + string(rune('0'+i/26))
		p.AddVar(names[i], dom)
	}
	for i := 1; i < n; i++ {
		p.Eq(names[i-1], names[i])
	}
	p.Bind(names[0], "c")
	got, conflicts := p.Solve(1)
	if len(got) != n {
		t.Fatalf("assignment has %d vars, want %d", len(got), n)
	}
	if conflicts > 1 {
		t.Errorf("greedy chain should reach <=1 conflicts, got %d", conflicts)
	}
}

// TestSolveTelemetry: a solve with a collector attached must record the
// invocation, its latency, and the backtracks consumed — and a starved
// budget must surface as a budget-exhausted event. A nil collector must
// not change results.
func TestSolveTelemetry(t *testing.T) {
	build := func() *Problem {
		p := NewProblem()
		dom := []string{"a", "b", "c"}
		names := []string{"x", "y", "z", "w"}
		for _, n := range names {
			p.AddVar(n, dom)
		}
		for i := 1; i < len(names); i++ {
			p.Eq(names[i-1], names[i])
		}
		p.Bind("x", "a")
		p.Bind("w", "b") // unsatisfiable together with the chain: forces search
		return p
	}

	p := build()
	p.Tel = telemetry.New()
	got, conflicts := p.Solve(0)
	if p.Tel.Get(telemetry.CSPSolves) != 1 {
		t.Errorf("csp_solves = %d, want 1", p.Tel.Get(telemetry.CSPSolves))
	}
	if p.Tel.Get(telemetry.CSPBacktracks) == 0 {
		t.Error("no backtracks recorded for a conflicted problem")
	}
	if p.Tel.Get(telemetry.CSPBudgetExhausted) != 0 {
		t.Error("default budget should not exhaust on 4 variables")
	}
	if p.Tel.Snapshot().Histograms["solve_latency"].Count != 1 {
		t.Error("solve latency not recorded")
	}

	// Same problem, nil collector: identical outcome.
	p2 := build()
	got2, conflicts2 := p2.Solve(0)
	if conflicts != conflicts2 || len(got) != len(got2) {
		t.Errorf("telemetry changed the solve: %v/%d vs %v/%d",
			got, conflicts, got2, conflicts2)
	}

	// Starved budget: exhaustion must be counted.
	p3 := build()
	p3.Tel = telemetry.New()
	p3.Solve(1)
	if p3.Tel.Get(telemetry.CSPBudgetExhausted) == 0 {
		t.Error("budget of 1 should exhaust and be counted")
	}
}

// TestQuickSolverNeverWorseThanGreedy: the returned conflict count is a
// valid evaluation of the returned assignment (recomputed independently)
// and never exceeds the total constraint count.
func TestQuickSolverSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewProblem()
		nv := 2 + rng.Intn(6)
		dom := []string{"a", "b", "c"}
		names := make([]string, nv)
		for i := range names {
			names[i] = string(rune('a'+i)) + "v"
			p.AddVar(names[i], dom)
		}
		type bind struct{ v, val string }
		type eq struct{ a, b string }
		var binds []bind
		var eqs []eq
		for i := 0; i < rng.Intn(8); i++ {
			b := bind{names[rng.Intn(nv)], dom[rng.Intn(len(dom))]}
			binds = append(binds, b)
			p.Bind(b.v, b.val)
		}
		for i := 0; i < rng.Intn(8); i++ {
			e := eq{names[rng.Intn(nv)], names[rng.Intn(nv)]}
			if e.a == e.b {
				continue
			}
			eqs = append(eqs, e)
			p.Eq(e.a, e.b)
		}
		got, conflicts := p.Solve(0)
		// Recompute conflicts independently.
		actual := 0
		for _, b := range binds {
			if got[b.v] != b.val {
				actual++
			}
		}
		for _, e := range eqs {
			if got[e.a] != got[e.b] {
				actual++
			}
		}
		if actual != conflicts {
			t.Logf("reported %d conflicts, actual %d (seed %d)", conflicts, actual, seed)
			return false
		}
		if conflicts > len(binds)+len(eqs) {
			t.Logf("conflicts exceed constraint count")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
