// Package csp implements the small constraint solver used by the rewrite
// engine (paper Section 4.4): variables over finite string domains, soft
// equality constraints (variable=value and variable=variable), and a
// bounded backtracking search that returns the assignment with the fewest
// violated constraints found within the backtrack budget.
//
// Every constraint is a droppable conjunct — the paper: "when solving the
// constraint we are willing to drop conjuncts if the full constraint is
// not satisfiable". The search is exact branch-and-bound when the budget
// suffices and best-effort otherwise, mirroring the paper's bound of 1000
// backtracking attempts.
package csp

import (
	"sort"

	"repro/internal/telemetry"
)

// DefaultMaxBacktracks is the paper's backtracking bound.
const DefaultMaxBacktracks = 1000

// Problem is a set of variables and soft equality constraints.
type Problem struct {
	vars   []*variable
	varIdx map[string]int
	nBind  int // total bind constraints (for conflict accounting)

	// Tel, when non-nil, receives solver telemetry: solve latency, the
	// backtracking steps consumed, and budget-exhaustion (timeout) events.
	Tel *telemetry.Collector
}

type variable struct {
	name   string
	domain []string
	binds  map[string]int // value -> how many bind constraints want it
	eqs    []int          // indices of variables this one must equal
}

// NewProblem returns an empty problem.
func NewProblem() *Problem {
	return &Problem{varIdx: make(map[string]int)}
}

// AddVar declares a variable with its domain. Declaring the same name
// twice keeps the first domain.
func (p *Problem) AddVar(name string, domain []string) {
	if _, ok := p.varIdx[name]; ok {
		return
	}
	p.varIdx[name] = len(p.vars)
	p.vars = append(p.vars, &variable{
		name:   name,
		domain: domain,
		binds:  make(map[string]int),
	})
}

// HasVar reports whether the variable is declared.
func (p *Problem) HasVar(name string) bool {
	_, ok := p.varIdx[name]
	return ok
}

// Bind adds a soft constraint var = value.
func (p *Problem) Bind(name, value string) {
	i, ok := p.varIdx[name]
	if !ok {
		return
	}
	p.vars[i].binds[value]++
	p.nBind++
}

// Eq adds a soft constraint a = b between two variables.
func (p *Problem) Eq(a, b string) {
	ia, oka := p.varIdx[a]
	ib, okb := p.varIdx[b]
	if !oka || !okb || ia == ib {
		return
	}
	p.vars[ia].eqs = append(p.vars[ia].eqs, ib)
	p.vars[ib].eqs = append(p.vars[ib].eqs, ia)
}

// NumConstraints returns the total number of soft constraints.
func (p *Problem) NumConstraints() int {
	ne := 0
	for _, v := range p.vars {
		ne += len(v.eqs)
	}
	return p.nBind + ne/2
}

// Solve searches for an assignment minimizing violated constraints, with
// at most maxBacktracks backtracking steps (per connected component). It
// returns the best assignment found and its number of violated
// constraints.
func (p *Problem) Solve(maxBacktracks int) (map[string]string, int) {
	if maxBacktracks <= 0 {
		maxBacktracks = DefaultMaxBacktracks
	}
	st := p.Tel.StartTimer(telemetry.SolveLatency)
	p.Tel.Inc(telemetry.CSPSolves)
	out := make(map[string]string, len(p.vars))
	conflicts := 0
	for _, comp := range p.components() {
		c := p.solveComponent(comp, maxBacktracks)
		for i, vi := range c.order {
			if c.best[i] != "" {
				out[p.vars[vi].name] = c.best[i]
			}
		}
		conflicts += c.bestCost
		p.Tel.Add(telemetry.CSPBacktracks, uint64(maxBacktracks-c.budget))
		if c.budget <= 0 {
			p.Tel.Inc(telemetry.CSPBudgetExhausted)
		}
	}
	st.Stop()
	return out, conflicts
}

// components splits variables into connected components of the
// equality-constraint graph; bind constraints are unary and do not
// connect.
func (p *Problem) components() [][]int {
	seen := make([]bool, len(p.vars))
	var comps [][]int
	for i := range p.vars {
		if seen[i] {
			continue
		}
		var comp []int
		stack := []int{i}
		seen[i] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for _, u := range p.vars[v].eqs {
				if !seen[u] {
					seen[u] = true
					stack = append(stack, u)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

type compSolver struct {
	p        *Problem
	order    []int       // variable indices (into p.vars), search order
	pos      map[int]int // variable index -> position in order
	assign   []string    // current values by position
	best     []string
	bestCost int
	budget   int
}

func (p *Problem) solveComponent(comp []int, maxBacktracks int) *compSolver {
	// Order by decreasing constraint degree so that highly-constrained
	// variables are decided first.
	order := append([]int(nil), comp...)
	deg := func(vi int) int {
		v := p.vars[vi]
		return len(v.eqs) + len(v.binds)
	}
	sort.SliceStable(order, func(a, b int) bool { return deg(order[a]) > deg(order[b]) })

	c := &compSolver{
		p:      p,
		order:  order,
		pos:    make(map[int]int, len(order)),
		assign: make([]string, len(order)),
		budget: maxBacktracks,
	}
	for i, vi := range order {
		c.pos[vi] = i
	}
	// Greedy first pass establishes an upper bound (and a guaranteed
	// answer if the budget runs out immediately).
	cost := 0
	for i := range order {
		v, bestVal, bestC := c.p.vars[order[i]], "", 1<<30
		for _, val := range c.candidates(i) {
			cc := c.assignCost(i, val)
			if cc < bestC {
				bestVal, bestC = val, cc
			}
		}
		if bestVal == "" { // empty domain
			bestC = c.assignCost(i, "")
			_ = v
		}
		c.assign[i] = bestVal
		cost += bestC
	}
	c.best = append([]string(nil), c.assign...)
	c.bestCost = cost
	for i := range c.assign {
		c.assign[i] = ""
	}
	c.search(0, 0)
	return c
}

// candidates returns the values worth trying for position i: the domain
// ordered so that values demanded by bind constraints come first.
func (c *compSolver) candidates(i int) []string {
	v := c.p.vars[c.order[i]]
	vals := append([]string(nil), v.domain...)
	sort.SliceStable(vals, func(a, b int) bool {
		return v.binds[vals[a]] > v.binds[vals[b]]
	})
	return vals
}

// assignCost counts the constraints violated by giving position i the
// value val, against bind constraints and already-assigned eq-neighbours.
func (c *compSolver) assignCost(i int, val string) int {
	v := c.p.vars[c.order[i]]
	cost := 0
	for want, n := range v.binds {
		if want != val {
			cost += n
		}
	}
	for _, u := range v.eqs {
		j, ok := c.pos[u]
		if !ok || j > i || c.assign[j] == "" {
			continue
		}
		if c.assign[j] != val {
			cost++
		}
	}
	return cost
}

func (c *compSolver) search(i, cost int) bool {
	if cost >= c.bestCost {
		return c.budget > 0
	}
	if i == len(c.order) {
		c.bestCost = cost
		copy(c.best, c.assign)
		return c.budget > 0
	}
	cands := c.candidates(i)
	if len(cands) == 0 {
		cands = []string{""}
	}
	for _, val := range cands {
		c.assign[i] = val
		if !c.search(i+1, cost+c.assignCost(i, val)) {
			c.assign[i] = ""
			return false
		}
		c.assign[i] = ""
		c.budget--
		if c.budget <= 0 {
			return false
		}
	}
	return true
}
