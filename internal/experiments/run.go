package experiments

import (
	"fmt"
	"io"

	"repro/internal/telemetry"
)

// optProbeSrc has small leaf helpers: O1/O2 inline them, O0/Os keep the
// calls, which is the main structural divergence of the paper's Section 8
// optimization-level study.
const optProbeSrc = `
int process(int a, int b, char *s) {
	int total = 0;
	int i = 0;
	int limit = clampv(b, 64);
	for (i = 0; i < limit; i = i + 1) {
		total = total + weight(i, a);
		if (total > 4096) {
			total = total / 2;
			logv("overflow", total);
		}
	}
	if (checkv(total, a) == 1) {
		printf("result: %d", total);
	} else {
		total = clampv(total, 255);
		printf("error %d at %s", total, s);
	}
	while (total % 3 != 0) { total = total + weight(total, 1); }
	return total;
}
int clampv(int x, int hi) {
	if (x > hi) { x = hi; }
	if (x < 0) { x = 0; }
	return x;
}
int weight(int i, int a) {
	int w = i * 3 + a % 7;
	return w;
}
int checkv(int t, int a) {
	int ok = 0;
	if (t > a && t < 100000) { ok = 1; }
	return ok;
}
`

// Run regenerates the named experiments (all of them when names is empty)
// at the given corpus scale, writing paper-style tables to w. Valid names:
// table1, table2, ksweep, table3, fig8, table4, optlevels.
func Run(w io.Writer, scale string, names []string) error {
	return RunT(w, scale, names, nil)
}

// RunT is Run with a telemetry collector attached to every matcher the
// sweeps build (nil for none). It must not be called concurrently with
// itself or Run: the collector is handed to the sweeps via package state.
func RunT(w io.Writer, scale string, names []string, tel *telemetry.Collector) error {
	sharedTel = tel
	var s Scale
	switch scale {
	case "small":
		s = ScaleSmall
	case "", "medium":
		s = ScaleMedium
	case "large":
		s = ScaleLarge
	default:
		return fmt.Errorf("experiments: unknown scale %q", scale)
	}
	if len(names) == 0 {
		names = []string{"table1", "table2", "ksweep", "table3", "fig8", "table4", "optlevels", "ablation", "smallfuncs", "inlined"}
	}
	needEnv := false
	for _, n := range names {
		switch n {
		case "table1", "table2", "ksweep", "table3", "fig8", "ablation":
			needEnv = true
		}
	}
	var env *Env
	if needEnv {
		fmt.Fprintf(w, "building %s corpus...\n", scale)
		var err error
		env, err = BuildEnv(s)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "corpus: %d executables, %d functions, %d queries\n\n",
			len(env.Corpus.Exes), env.DB.Len(), len(env.Queries))
	}
	for _, n := range names {
		switch n {
		case "table1":
			RenderTable1(w, env.Table1())
		case "table2":
			RenderTable2(w, env.Table2())
		case "ksweep":
			RenderKSweep(w, env.KSweep())
		case "table3":
			RenderTable3(w, env.Table3())
		case "fig8":
			RenderFig8(w, env.Fig8())
		case "table4":
			rows, err := Table4(0, 0)
			if err != nil {
				return err
			}
			RenderTable4(w, rows)
		case "optlevels":
			rows, err := OptLevels(optProbeSrc, matcherOptions(3, 0.8))
			if err != nil {
				return err
			}
			RenderOptLevels(w, rows)
		case "ablation":
			RenderAblation(w, env.Ablation())
		case "smallfuncs":
			rows, err := SmallFunctions()
			if err != nil {
				return err
			}
			RenderSmallFunctions(w, rows)
		case "inlined":
			rows, err := Inlined()
			if err != nil {
				return err
			}
			RenderInlined(w, rows)
		default:
			return fmt.Errorf("experiments: unknown experiment %q", n)
		}
		fmt.Fprintln(w)
	}
	return nil
}
