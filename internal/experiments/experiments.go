// Package experiments regenerates every table and figure of the paper's
// evaluation (Sections 5-6) against a synthetic corpus built with the
// TinyC compiler substrate: Table 1 (test-bed statistics), Table 2
// (β sweep), the Section 6.1 k sweep, Table 3 (tracelets vs n-grams vs
// graphlets), Fig. 8 (rewrite-engine contribution per executable),
// Table 4 (runtimes) and the Section 8 optimization-level study.
//
// Absolute numbers differ from the paper (different corpus, different
// hardware); the *shapes* — who wins, where thresholds plateau, what the
// rewrite engine adds — are the reproduction target and are recorded in
// EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/prep"
	"repro/internal/telemetry"
	"repro/internal/tinyc"
)

// Env is the shared evaluation environment: the corpus, the index built
// from it, and the designated query functions with their ground truth.
type Env struct {
	Corpus *corpus.Corpus
	DB     *index.DB

	// Queries are functions re-compiled in a fresh context (a seed not
	// present in the corpus), mimicking "a binary in hand" that is not
	// itself part of the code base.
	Queries []Query
}

// Query is one search query with ground truth.
type Query struct {
	Name  string // descriptive
	Truth string // ground-truth name matched against index entries ("" = noise)
	Fn    *prep.Function
}

// Scale selects corpus size.
type Scale int

// Corpus scales.
const (
	ScaleSmall  Scale = iota // CI-sized: seconds
	ScaleMedium              // default CLI: tens of seconds
	ScaleLarge               // benchmark: minutes
)

func buildConfig(s Scale) corpus.BuildConfig {
	switch s {
	case ScaleMedium:
		return corpus.BuildConfig{
			Seed: 1, ContextCopies: 6, Versions: 4, NoiseExes: 8,
			FuncsPerExe: 10, TargetStmts: 90, FillerStmts: 30, Opt: tinyc.O2,
		}
	case ScaleLarge:
		return corpus.BuildConfig{
			Seed: 1, ContextCopies: 8, Versions: 5, NoiseExes: 30,
			FuncsPerExe: 20, TargetStmts: 120, FillerStmts: 40, Opt: tinyc.O2,
		}
	default:
		return corpus.BuildConfig{
			Seed: 1, ContextCopies: 3, Versions: 3, NoiseExes: 3,
			FuncsPerExe: 4, TargetStmts: 50, FillerStmts: 18, Opt: tinyc.O2,
		}
	}
}

// BuildEnv constructs the corpus, indexes it, and prepares the query set.
func BuildEnv(s Scale) (*Env, error) {
	cfg := buildConfig(s)
	c, err := corpus.Build(cfg)
	if err != nil {
		return nil, err
	}
	db := index.New()
	for _, e := range c.Exes {
		if err := db.AddImage(e.Name, e.Image, e.Truth); err != nil {
			return nil, err
		}
	}
	env := &Env{Corpus: c, DB: db}

	// Query 1: the shared library function, compiled in an unseen context
	// (paper: quotearg_buffer_restyled from wc).
	libSrc := corpus.RandomFunc(corpus.LibFuncName, cfg.Seed*7+3,
		corpus.GenConfig{Stmts: cfg.TargetStmts, Calls: true})
	if err := env.addQuery("lib-fresh-context", corpus.LibFuncName, libSrc, tinyc.O2, 777); err != nil {
		return nil, err
	}
	// Query 2: the same function "implanted": compiled together with
	// foreign functions into a different executable (paper: wc 7.6
	// implanted in wc 8.19).
	implantSrc := libSrc + "\n" + corpus.RandomFunc("host1", 901, corpus.GenConfig{Stmts: cfg.FillerStmts, Calls: true})
	if err := env.addQueryFrom("lib-implanted", corpus.LibFuncName, implantSrc, tinyc.O2, 778); err != nil {
		return nil, err
	}
	// Query 3: version 0 of the app function (paper: getftp from wget
	// 1.10 searched across versions).
	appSrc := corpus.VersionedFunc(corpus.AppFuncName, cfg.Seed*13+5, 0, 8, cfg.TargetStmts/8)
	if err := env.addQuery("app-v0", corpus.AppFuncName, appSrc, tinyc.O2, 779); err != nil {
		return nil, err
	}
	// Query 4: the newest version of the app function.
	appSrcN := corpus.VersionedFunc(corpus.AppFuncName, cfg.Seed*13+5, cfg.Versions-1, 8, cfg.TargetStmts/8)
	if err := env.addQuery("app-latest", corpus.AppFuncName, appSrcN, tinyc.O2, 780); err != nil {
		return nil, err
	}
	// Queries 5-6: noise functions with no true matches in the corpus.
	for i, seed := range []int64{555, 556} {
		src := corpus.RandomFunc(fmt.Sprintf("noiseq%d", i), seed,
			corpus.GenConfig{Stmts: cfg.TargetStmts, Calls: true})
		if err := env.addQuery(fmt.Sprintf("noise-%d", i), "", src, tinyc.O2, 781+int64(i)); err != nil {
			return nil, err
		}
	}
	return env, nil
}

func (env *Env) addQuery(name, truth, src string, opt tinyc.OptLevel, seed int64) error {
	return env.addQueryFrom(name, truth, src, opt, seed)
}

// addQueryFrom compiles src (which may contain several functions),
// strips, lifts, and registers the *largest* function as the query (the
// planted one is always the largest by construction).
func (env *Env) addQueryFrom(name, truth, src string, opt tinyc.OptLevel, seed int64) error {
	img, err := tinyc.BuildStripped(src, tinyc.Config{Opt: opt, Seed: seed})
	if err != nil {
		return fmt.Errorf("experiments: query %s: %w", name, err)
	}
	fns, err := prep.LiftImage(img)
	if err != nil {
		return err
	}
	best := fns[0]
	for _, fn := range fns[1:] {
		if fn.NumInsts() > best.NumInsts() {
			best = fn
		}
	}
	env.Queries = append(env.Queries, Query{Name: name, Truth: truth, Fn: best})
	return nil
}

// stats computes mean and (population) standard deviation.
func stats(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(std / float64(len(xs)))
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func minMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// sampleLabel reports whether an index entry is a true match for a query.
func sampleLabel(q Query, e *index.Entry) bool {
	return q.Truth != "" && e.Truth == q.Truth
}

// sharedTel, when set by RunT before any sweep starts, is attached to
// every matcher the experiments build, so -stats/-pprof on the
// experiments subcommand observe the sweeps live. Nil (the default)
// keeps every telemetry hook a no-op.
var sharedTel *telemetry.Collector

// matcherOptions returns the default matcher configuration with the
// given β (as a fraction) and k.
func matcherOptions(k int, beta float64) core.Options {
	opts := core.DefaultOptions()
	opts.K = k
	opts.Beta = beta
	opts.Tel = sharedTel
	return opts
}
