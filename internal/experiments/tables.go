package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/tracelet"
)

// ---------------------------------------------------------------------
// Table 1: test-bed statistics for k = 1..5.

// Table1Row mirrors one row of paper Table 1.
type Table1Row struct {
	K                int
	Tracelets        int     // total tracelets in the database
	Compares         float64 // query tracelets × database tracelets
	PerFuncMean      float64 // tracelets per function
	PerFuncStd       float64
	InstsPerTracelet float64
	InstsStd         float64
	AvgInDegree      float64
	AvgOutDegree     float64
}

// Table1 computes the test-bed statistics. The compare count uses the
// first query's tracelet count, as the paper's table reflects one search
// over the whole database.
func (env *Env) Table1() []Table1Row {
	var rows []Table1Row
	for k := 1; k <= 5; k++ {
		var row Table1Row
		row.K = k
		var perFunc, instsPer []float64
		var inSum, outSum float64
		for _, e := range env.DB.Entries {
			ts := tracelet.Extract(e.Function().Graph, k)
			row.Tracelets += len(ts)
			perFunc = append(perFunc, float64(len(ts)))
			for _, t := range ts {
				instsPer = append(instsPer, float64(t.NumInsts()))
			}
			if k == 1 {
				in, out := e.Function().Graph.AvgDegrees()
				inSum += in
				outSum += out
			}
		}
		row.PerFuncMean, row.PerFuncStd = stats(perFunc)
		row.InstsPerTracelet, row.InstsStd = stats(instsPer)
		if len(env.Queries) > 0 {
			q := core.Decompose(env.Queries[0].Fn, k)
			row.Compares = float64(len(q.Tracelets)) * float64(row.Tracelets)
		}
		if k == 1 && len(env.DB.Entries) > 0 {
			row.AvgInDegree = inSum / float64(len(env.DB.Entries))
			row.AvgOutDegree = outSum / float64(len(env.DB.Entries))
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderTable1 prints the rows in the paper's layout.
func RenderTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "Table 1: test-bed statistics (std in brackets)\n")
	fmt.Fprintf(w, "%-4s %12s %14s %22s %22s\n",
		"K", "#Tracelets", "#Compares", "#Tracelets/Function", "#Instructions/Tracelet")
	for _, r := range rows {
		fmt.Fprintf(w, "k=%-2d %12d %14.3e %12.3f[%.3f] %12.3f[%.3f]\n",
			r.K, r.Tracelets, r.Compares, r.PerFuncMean, r.PerFuncStd,
			r.InstsPerTracelet, r.InstsStd)
	}
	for _, r := range rows {
		if r.K == 1 {
			fmt.Fprintf(w, "CFG avg in-degree %.4f, avg out-degree %.4f\n",
				r.AvgInDegree, r.AvgOutDegree)
		}
	}
}

// ---------------------------------------------------------------------
// Table 2 (β sweep) and the Section 6.1 k sweep.

// betaSweepSamples computes, per query×entry pair, the per-reference-
// tracelet best scores (with rewriting), so any β can be evaluated
// afterwards. Returned: for each pair, the positive label and the sorted
// best-score list.
type pairScores struct {
	positive bool
	best     []float64 // per reference tracelet, descending not required
}

func (env *Env) sweepScores(k int) []pairScores {
	m := core.NewMatcher(matcherOptions(k, 0.8))
	var out []pairScores
	targets := env.DB.Decomposed(k)
	for _, q := range env.Queries {
		ref := core.Decompose(q.Fn, k)
		type res struct {
			i    int
			post []float64
		}
		ch := make(chan res, len(targets))
		sem := make(chan struct{}, 8)
		for i := range targets {
			go func(i int) {
				sem <- struct{}{}
				defer func() { <-sem }()
				_, post := m.BestScores(ref, targets[i])
				ch <- res{i, post}
			}(i)
		}
		collected := make([][]float64, len(targets))
		for range targets {
			r := <-ch
			collected[r.i] = r.post
		}
		for i := range targets {
			out = append(out, pairScores{
				positive: sampleLabel(q, env.DB.Entries[i]),
				best:     collected[i],
			})
		}
	}
	return out
}

// simAt computes the function similarity score (coverage rate) at a given
// tracelet threshold β from precomputed best scores.
func simAt(best []float64, beta float64) float64 {
	if len(best) == 0 {
		return 0
	}
	n := 0
	for _, b := range best {
		if b > beta {
			n++
		}
	}
	return float64(n) / float64(len(best))
}

// Table2Row is one β setting's accuracy.
type Table2Row struct {
	BetaPercent int
	CROC        float64
	ROC         float64
}

// Table2 sweeps the tracelet-match threshold β from 10% to 100% at k=3
// (paper Table 2).
func (env *Env) Table2() []Table2Row {
	scores := env.sweepScores(3)
	var rows []Table2Row
	for bp := 10; bp <= 100; bp += 10 {
		beta := float64(bp) / 100
		if bp == 100 {
			beta = 0.9999 // "> β" with β=1.0 would reject perfect matches
		}
		var samples []metrics.Sample
		for _, p := range scores {
			samples = append(samples, metrics.Sample{
				Score:    simAt(p.best, beta),
				Positive: p.positive,
			})
		}
		rows = append(rows, Table2Row{
			BetaPercent: bp,
			CROC:        metrics.CROCAUC(samples),
			ROC:         metrics.ROCAUC(samples),
		})
	}
	return rows
}

// RenderTable2 prints the β sweep.
func RenderTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "Table 2: CROC AUC for 3-tracelet matching at each β\n")
	fmt.Fprintf(w, "%-10s", "β value")
	for _, r := range rows {
		fmt.Fprintf(w, " %6d", r.BetaPercent)
	}
	fmt.Fprintf(w, "\n%-10s", "AUC[CROC]")
	for _, r := range rows {
		fmt.Fprintf(w, " %6.2f", r.CROC)
	}
	fmt.Fprintf(w, "\n%-10s", "AUC[ROC]")
	for _, r := range rows {
		fmt.Fprintf(w, " %6.2f", r.ROC)
	}
	fmt.Fprintln(w)
}

// KSweepRow is one tracelet size's best accuracy, plus the separation
// margin (minimum positive similarity − maximum negative similarity at
// β=0.8): the margin shrinks at small k because short tracelets have fewer
// instructions to match and fewer constraints (paper Section 6.1), even
// when a small corpus leaves the AUC at its ceiling.
type KSweepRow struct {
	K          int
	BestCROC   float64
	BestBeta   int // β percent achieving it
	Separation float64
}

// KSweep evaluates k = 1..4 over all β settings and reports each k's best
// CROC AUC (paper Section 6.1 "Testing different values of k").
func (env *Env) KSweep() []KSweepRow {
	var rows []KSweepRow
	for k := 1; k <= 4; k++ {
		scores := env.sweepScores(k)
		best := KSweepRow{K: k}
		for bp := 10; bp <= 90; bp += 10 {
			beta := float64(bp) / 100
			var samples []metrics.Sample
			for _, p := range scores {
				samples = append(samples, metrics.Sample{
					Score:    simAt(p.best, beta),
					Positive: p.positive,
				})
			}
			if auc := metrics.CROCAUC(samples); auc > best.BestCROC {
				best.BestCROC = auc
				best.BestBeta = bp
			}
		}
		minPos, maxNeg := 1.0, 0.0
		for _, p := range scores {
			s := simAt(p.best, 0.8)
			if p.positive && s < minPos {
				minPos = s
			}
			if !p.positive && s > maxNeg {
				maxNeg = s
			}
		}
		best.Separation = minPos - maxNeg
		rows = append(rows, best)
	}
	return rows
}

// RenderKSweep prints the k sweep.
func RenderKSweep(w io.Writer, rows []KSweepRow) {
	fmt.Fprintf(w, "Section 6.1 k sweep: best CROC AUC per tracelet size\n")
	sort.Slice(rows, func(i, j int) bool { return rows[i].K < rows[j].K })
	for _, r := range rows {
		fmt.Fprintf(w, "k=%d  CROC AUC %.3f (best β=%d%%), pos/neg separation %+.3f\n",
			r.K, r.BestCROC, r.BestBeta, r.Separation)
	}
}
