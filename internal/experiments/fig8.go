package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
)

// Fig8Row is one executable's tracelet match breakdown for a query known
// to be present in it: the fraction matched by alignment alone, and the
// extra fraction recovered only by the rewrite engine (paper Fig. 8).
type Fig8Row struct {
	Query       string
	Exe         string
	Direct      float64 // matched before rewrite
	ViaRewrite  float64 // matched only after rewrite
	RefCount    int
	FuncMatched bool
}

// Fig8 measures, for each true-positive (query, executable) pair, how
// many reference tracelets matched before rewriting vs only after — the
// paper reports an average of 25% of tracelets matched only thanks to the
// rewrite.
func (env *Env) Fig8() []Fig8Row {
	var rows []Fig8Row
	m := core.NewMatcher(matcherOptions(3, 0.8))
	targets := env.DB.Decomposed(3)
	for _, q := range env.Queries {
		if q.Truth == "" {
			continue
		}
		ref := core.Decompose(q.Fn, 3)
		for i, e := range env.DB.Entries {
			if e.Truth != q.Truth {
				continue
			}
			res := m.Compare(ref, targets[i])
			n := float64(res.RefTracelets)
			if n == 0 {
				continue
			}
			rows = append(rows, Fig8Row{
				Query:       q.Name,
				Exe:         e.Exe,
				Direct:      float64(res.MatchedDirect) / n,
				ViaRewrite:  float64(res.MatchedRewrite) / n,
				RefCount:    res.RefTracelets,
				FuncMatched: res.IsMatch,
			})
		}
	}
	return rows
}

// RewriteContribution returns the average fraction of matched tracelets
// that required the rewrite engine, over all true-positive pairs.
func RewriteContribution(rows []Fig8Row) float64 {
	if len(rows) == 0 {
		return 0
	}
	sum := 0.0
	n := 0
	for _, r := range rows {
		total := r.Direct + r.ViaRewrite
		if total == 0 {
			continue
		}
		sum += r.ViaRewrite / total
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// RenderFig8 prints the per-executable breakdown as a text bar chart.
func RenderFig8(w io.Writer, rows []Fig8Row) {
	fmt.Fprintf(w, "Fig 8: tracelets matched before rewrite (=) and only after rewrite (+)\n")
	for _, r := range rows {
		bar := ""
		for i := 0; i < int(r.Direct*40); i++ {
			bar += "="
		}
		for i := 0; i < int(r.ViaRewrite*40); i++ {
			bar += "+"
		}
		fmt.Fprintf(w, "%-14s %-8s |%-40s| %5.1f%% +%5.1f%% (n=%d)\n",
			r.Query, r.Exe, bar, r.Direct*100, r.ViaRewrite*100, r.RefCount)
	}
	fmt.Fprintf(w, "average rewrite contribution: %.1f%% of matched tracelets\n",
		RewriteContribution(rows)*100)
}

// ---------------------------------------------------------------------
// Section 8: optimization levels.

// OptLevelRow is the similarity of an O1-compiled query against the same
// source at each optimization level.
type OptLevelRow struct {
	Level string
	Score float64
	Match bool
}

// OptLevels reproduces the paper's Section 8 observation: an O1 binary
// finds O1/O2(/O3) builds of the same source but not O0 and Os builds.
func OptLevels(src string, opts core.Options) ([]OptLevelRow, error) {
	query, err := liftLargest(src, 1 /*O1*/, 501)
	if err != nil {
		return nil, err
	}
	ref := core.Decompose(query, opts.K)
	m := core.NewMatcher(opts)
	var rows []OptLevelRow
	for _, lv := range []int{0, 1, 2, 3} {
		// Two context seeds per level; report the mean.
		sum := 0.0
		match := false
		for _, seed := range []int64{601, 602} {
			fn, err := liftLargest(src, lv, seed)
			if err != nil {
				return nil, err
			}
			res := m.Compare(ref, core.Decompose(fn, opts.K))
			sum += res.SimilarityScore
			if res.IsMatch {
				match = true
			}
		}
		rows = append(rows, OptLevelRow{
			Level: []string{"O0", "O1", "O2", "Os"}[lv],
			Score: sum / 2,
			Match: match,
		})
	}
	return rows, nil
}

// RenderOptLevels prints the optimization-level study.
func RenderOptLevels(w io.Writer, rows []OptLevelRow) {
	fmt.Fprintf(w, "Section 8: O1 query vs same source at each level (mean of 2 contexts)\n")
	for _, r := range rows {
		verdict := "not found"
		if r.Match {
			verdict = "FOUND"
		}
		fmt.Fprintf(w, "%-3s similarity %.3f  %s\n", r.Level, r.Score, verdict)
	}
}
