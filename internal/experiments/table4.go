package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/align"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/prep"
	"repro/internal/rewrite"
	"repro/internal/tinyc"
)

// liftLargest compiles src at the given level (0=O0,1=O1,2=O2,3=Os) and
// context seed, strips, lifts, and returns the largest function.
func liftLargest(src string, level int, seed int64) (*prep.Function, error) {
	opt := []tinyc.OptLevel{tinyc.O0, tinyc.O1, tinyc.O2, tinyc.Os}[level]
	img, err := tinyc.BuildStripped(src, tinyc.Config{Opt: opt, Seed: seed})
	if err != nil {
		return nil, err
	}
	fns, err := prep.LiftImage(img)
	if err != nil {
		return nil, err
	}
	best := fns[0]
	for _, fn := range fns[1:] {
		if fn.NumInsts() > best.NumInsts() {
			best = fn
		}
	}
	return best, nil
}

// Timing summarizes one operation's measured runtimes.
type Timing struct {
	Item string
	Op   string
	Avg  time.Duration
	Std  time.Duration
	Med  time.Duration
	Min  time.Duration
	Max  time.Duration
	N    int
}

func summarize(item, op string, samples []time.Duration) Timing {
	xs := make([]float64, len(samples))
	for i, d := range samples {
		xs[i] = float64(d)
	}
	mean, std := stats(xs)
	med := median(xs)
	lo, hi := minMax(xs)
	return Timing{
		Item: item, Op: op,
		Avg: time.Duration(mean), Std: time.Duration(std),
		Med: time.Duration(med), Min: time.Duration(lo), Max: time.Duration(hi),
		N: len(samples),
	}
}

// Table4 measures tracelet-to-tracelet and function-to-function
// comparison runtimes, with and without the rewrite engine, on large
// (~200-basic-block) functions — paper Table 4. stmts sizes the test
// functions; pairs bounds the tracelet sample count.
func Table4(stmts, pairs int) ([]Timing, error) {
	if stmts <= 0 {
		stmts = 240
	}
	if pairs <= 0 {
		pairs = 400
	}
	src := corpus.RandomFunc("big", 31, corpus.GenConfig{Stmts: stmts, Calls: true})
	refFn, err := liftLargest(src, 2, 41)
	if err != nil {
		return nil, err
	}
	tgtFn, err := liftLargest(src, 2, 42) // same code, different context
	if err != nil {
		return nil, err
	}
	ref := core.Decompose(refFn, 3)
	tgt := core.Decompose(tgtFn, 3)
	if len(ref.Tracelets) == 0 || len(tgt.Tracelets) == 0 {
		return nil, fmt.Errorf("experiments: test functions too small")
	}

	rng := rand.New(rand.NewSource(7))
	var alignTimes, rwTimes []time.Duration
	for i := 0; i < pairs; i++ {
		r := ref.Tracelets[rng.Intn(len(ref.Tracelets))]
		t := tgt.Tracelets[rng.Intn(len(tgt.Tracelets))]
		start := time.Now()
		al := align.AlignBlocks(r.Blocks, t.Blocks)
		alignTimes = append(alignTimes, time.Since(start))

		start = time.Now()
		al2 := align.AlignBlocks(r.Blocks, t.Blocks)
		rw := rewrite.Rewrite(r.Blocks, t.Blocks, al2)
		_ = align.ScoreBlocks(r.Blocks, rw.Blocks)
		rwTimes = append(rwTimes, time.Since(start))
		_ = al
	}

	var fnAlign, fnRW []time.Duration
	noRW := core.NewMatcher(matcherOptions(3, 0.8))
	noRW.Opts.UseRewrite = false
	withRW := core.NewMatcher(matcherOptions(3, 0.8))
	// Warm up allocator and caches before timing.
	_ = noRW.Compare(ref, tgt)
	_ = withRW.Compare(ref, tgt)
	const fnRuns = 3
	for i := 0; i < fnRuns; i++ {
		start := time.Now()
		_ = noRW.Compare(ref, tgt)
		fnAlign = append(fnAlign, time.Since(start))
		start = time.Now()
		_ = withRW.Compare(ref, tgt)
		fnRW = append(fnRW, time.Since(start))
	}
	return []Timing{
		summarize("Tracelet", "Align", alignTimes),
		summarize("Tracelet", "Align&RW", rwTimes),
		summarize("Function", "Align", fnAlign),
		summarize("Function", "Align&RW", fnRW),
	}, nil
}

// RenderTable4 prints the runtime table in the paper's layout.
func RenderTable4(w io.Writer, rows []Timing) {
	fmt.Fprintf(w, "Table 4: comparison runtimes (rewrite engine on large functions)\n")
	fmt.Fprintf(w, "%-9s %-9s %12s %12s %12s %12s %12s %6s\n",
		"Item", "Op", "AVG", "STD", "Med", "Min", "Max", "N")
	for _, r := range rows {
		fmt.Fprintf(w, "%-9s %-9s %12v %12v %12v %12v %12v %6d\n",
			r.Item, r.Op, r.Avg, r.Std, r.Med, r.Min, r.Max, r.N)
	}
}
