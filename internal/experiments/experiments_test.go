package experiments

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/core"
)

var (
	envOnce sync.Once
	envVal  *Env
	envErr  error
)

// skipInShort gates the experiment sweeps: each one compiles a corpus and
// runs full searches, which dominates the test-suite wall clock. CI's
// race job runs with -short; the full suite still runs them.
func skipInShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment sweep; skipped in -short mode")
	}
}

// sharedEnv builds the small environment once per test binary.
func sharedEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		envVal, envErr = BuildEnv(ScaleSmall)
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envVal
}

func TestTable1Shapes(t *testing.T) {
	skipInShort(t)
	env := sharedEnv(t)
	rows := env.Table1()
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	// The paper's counter-intuitive observation: tracelet count does NOT
	// explode with k (CFG out-degree ~1); instructions per tracelet grow.
	if rows[0].Tracelets == 0 {
		t.Fatal("no tracelets at k=1")
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].InstsPerTracelet <= rows[i-1].InstsPerTracelet {
			t.Errorf("insts/tracelet not growing: k=%d %.1f vs k=%d %.1f",
				rows[i].K, rows[i].InstsPerTracelet, rows[i-1].K, rows[i-1].InstsPerTracelet)
		}
		// Generated CFGs are denser than coreutils' (branches, loops and
		// switch dispatch blocks), so counts grow with k instead of the
		// paper's mild decline — but there must be no exponential blow-up.
		if float64(rows[i].Tracelets) > 8*float64(rows[0].Tracelets) {
			t.Errorf("tracelet count exploding at k=%d: %d vs %d",
				rows[i].K, rows[i].Tracelets, rows[0].Tracelets)
		}
	}
	if rows[0].AvgOutDegree <= 0 || rows[0].AvgOutDegree > 2 {
		t.Errorf("avg out-degree %.2f implausible", rows[0].AvgOutDegree)
	}
	var buf bytes.Buffer
	RenderTable1(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestTable2BetaPlateau(t *testing.T) {
	skipInShort(t)
	env := sharedEnv(t)
	rows := env.Table2()
	if len(rows) != 10 {
		t.Fatalf("got %d rows", len(rows))
	}
	byBeta := map[int]float64{}
	for _, r := range rows {
		byBeta[r.BetaPercent] = r.CROC
	}
	// Shape: high thresholds (70-90) beat low thresholds (10-30).
	if byBeta[80] <= byBeta[20] {
		t.Errorf("β=80 (%.3f) should beat β=20 (%.3f)", byBeta[80], byBeta[20])
	}
	// The 70-90 plateau should be strong in absolute terms.
	if byBeta[80] < 0.8 {
		t.Errorf("β=80 CROC = %.3f, want >= 0.8", byBeta[80])
	}
	// The paper's dip at β=100: requiring perfect syntactic matches loses
	// the structurally-changed positives (e.g. switch lowered as a chain
	// in one binary and a jump table in another).
	if byBeta[100] >= byBeta[80] {
		t.Errorf("β=100 (%.3f) should dip below the plateau (%.3f)",
			byBeta[100], byBeta[80])
	}
	var buf bytes.Buffer
	RenderTable2(&buf, rows)
}

func TestKSweepShape(t *testing.T) {
	skipInShort(t)
	env := sharedEnv(t)
	rows := env.KSweep()
	byK := map[int]KSweepRow{}
	for _, r := range rows {
		byK[r.K] = r
	}
	// k=3 must be at least as accurate as k=1 (paper: 0.99 vs 0.83; at
	// this corpus scale both can hit the AUC ceiling)...
	if byK[3].BestCROC < byK[1].BestCROC {
		t.Errorf("k=3 (%.3f) should not trail k=1 (%.3f)",
			byK[3].BestCROC, byK[1].BestCROC)
	}
	// ...and the mechanism must show regardless of scale: longer tracelets
	// separate positives from negatives by a wider margin.
	if byK[3].Separation <= byK[1].Separation {
		t.Errorf("k=3 separation (%.3f) should exceed k=1 (%.3f)",
			byK[3].Separation, byK[1].Separation)
	}
	var buf bytes.Buffer
	RenderKSweep(&buf, rows)
}

func TestTable3TraceletsWin(t *testing.T) {
	skipInShort(t)
	env := sharedEnv(t)
	rows := env.Table3()
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	byMethod := map[string]Table3Row{}
	for _, r := range rows {
		byMethod[r.Method] = r
	}
	tr := byMethod["tracelets k=3 ratio"]
	ng := byMethod["n-grams size5 delta1"]
	gl := byMethod["graphlets k=5"]
	// The headline result: tracelets dominate on CROC.
	if tr.CROC <= ng.CROC {
		t.Errorf("tracelets CROC %.3f should beat n-grams %.3f", tr.CROC, ng.CROC)
	}
	if tr.CROC <= gl.CROC {
		t.Errorf("tracelets CROC %.3f should beat graphlets %.3f", tr.CROC, gl.CROC)
	}
	if tr.ROC < 0.95 {
		t.Errorf("tracelets ROC %.3f, want >= 0.95", tr.ROC)
	}
	var buf bytes.Buffer
	RenderTable3(&buf, rows)
}

func TestFig8RewriteContributes(t *testing.T) {
	skipInShort(t)
	env := sharedEnv(t)
	rows := env.Fig8()
	if len(rows) == 0 {
		t.Fatal("no true-positive pairs")
	}
	matched := 0
	for _, r := range rows {
		if r.FuncMatched {
			matched++
		}
		// Every true pair keeps substantial coverage (the paper's Fig. 8
		// bars for distant versions sit near 50%, below the α threshold
		// in the worst case but never near zero).
		if r.Direct+r.ViaRewrite <= 0.25 {
			t.Errorf("%s vs %s: coverage too low (%.2f + %.2f)",
				r.Query, r.Exe, r.Direct, r.ViaRewrite)
		}
	}
	if frac := float64(matched) / float64(len(rows)); frac < 0.8 {
		t.Errorf("only %.0f%% of true pairs matched", frac*100)
	}
	if c := RewriteContribution(rows); c <= 0 {
		t.Errorf("rewrite contribution = %.3f, want > 0", c)
	}
	var buf bytes.Buffer
	RenderFig8(&buf, rows)
}

func TestTable4RewriteCostsMore(t *testing.T) {
	skipInShort(t)
	rows, err := Table4(80, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	var tAlign, tRW, fAlign, fRW Timing
	for _, r := range rows {
		switch r.Item + "/" + r.Op {
		case "Tracelet/Align":
			tAlign = r
		case "Tracelet/Align&RW":
			tRW = r
		case "Function/Align":
			fAlign = r
		case "Function/Align&RW":
			fRW = r
		}
	}
	if tRW.Avg <= tAlign.Avg {
		t.Errorf("tracelet align+RW (%v) should cost more than align (%v)", tRW.Avg, tAlign.Avg)
	}
	if fRW.Avg < fAlign.Avg {
		t.Errorf("function align+RW (%v) should cost at least align (%v)", fRW.Avg, fAlign.Avg)
	}
	var buf bytes.Buffer
	RenderTable4(&buf, rows)
}

func TestOptLevelsShape(t *testing.T) {
	skipInShort(t)
	rows, err := OptLevels(optProbeSrc, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	byLevel := map[string]OptLevelRow{}
	for _, r := range rows {
		byLevel[r.Level] = r
	}
	if !byLevel["O1"].Match {
		t.Errorf("O1 query should find O1 builds (score %.3f)", byLevel["O1"].Score)
	}
	if !byLevel["O2"].Match {
		t.Errorf("O1 query should find O2 builds (score %.3f)", byLevel["O2"].Score)
	}
	if byLevel["O0"].Match {
		t.Errorf("O1 query should NOT find O0 builds (score %.3f)", byLevel["O0"].Score)
	}
	if byLevel["Os"].Match {
		t.Errorf("O1 query should NOT find Os builds (score %.3f)", byLevel["Os"].Score)
	}
	if byLevel["O0"].Score >= byLevel["O2"].Score {
		t.Errorf("O0 score %.3f should be below O2 score %.3f",
			byLevel["O0"].Score, byLevel["O2"].Score)
	}
	var buf bytes.Buffer
	RenderOptLevels(&buf, rows)
}

func TestAblationRewriteMatters(t *testing.T) {
	skipInShort(t)
	env := sharedEnv(t)
	rows := env.Ablation()
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Config] = r
	}
	full := byName["full (rewrite, skip<0.5)"]
	none := byName["no rewrite"]
	noskip := byName["rewrite, skip<0.3"]
	// The rewrite engine must widen the separation margin.
	if full.Separation <= none.Separation {
		t.Errorf("rewrite should widen separation: full %+.3f vs none %+.3f",
			full.Separation, none.Separation)
	}
	// Skipping hopeless rewrites must not change accuracy (§6.3: pairs
	// below 50%% are not improved by rewriting).
	if noskip.CROC < full.CROC-0.02 {
		t.Errorf("skip optimization changed accuracy: %.3f vs %.3f",
			noskip.CROC, full.CROC)
	}
}

func TestSmallFunctionsLimitation(t *testing.T) {
	skipInShort(t)
	rows, err := SmallFunctions()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatal("too few rows")
	}
	first, last := rows[0], rows[len(rows)-1]
	// The degenerate end of the limitation: a function with fewer blocks
	// than k yields no tracelets and cannot be matched at all, even
	// against its own source in another context.
	if first.Tracelets != 0 || first.CtxScore != 0 {
		t.Errorf("trivial function should be unmatchable: %+v", first)
	}
	// Large functions keep a wide margin over the best noise score.
	if last.CtxScore-last.NoiseScore < 0.5 {
		t.Errorf("large function margin too small: ctx %.2f noise %.2f",
			last.CtxScore, last.NoiseScore)
	}
	if last.Blocks <= rows[1].Blocks {
		t.Errorf("blocks should grow with statement budget")
	}
	var buf bytes.Buffer
	RenderSmallFunctions(&buf, rows)
	RenderAblation(&buf, sharedEnv(t).Ablation())
}

func TestInlinedContainment(t *testing.T) {
	skipInShort(t)
	rows, err := Inlined()
	if err != nil {
		t.Fatal(err)
	}
	byNorm := map[string]InlinedRow{}
	for _, r := range rows {
		byNorm[r.Norm] = r
	}
	// Containment must score at least as high as ratio, and the gap is
	// the point of the paper's Section 8 remark.
	if byNorm["containment"].Score < byNorm["ratio"].Score {
		t.Errorf("containment (%.3f) should be >= ratio (%.3f)",
			byNorm["containment"].Score, byNorm["ratio"].Score)
	}
	if byNorm["containment"].Score <= 0 {
		t.Error("containment found nothing at all")
	}
	var buf bytes.Buffer
	RenderInlined(&buf, rows)
}
