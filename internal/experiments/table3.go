package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/graphlet"
	"repro/internal/metrics"
	"repro/internal/ngram"
)

// Table3Row is one method's accuracy over the pooled query set.
type Table3Row struct {
	Method string
	ROC    float64
	CROC   float64
	AP     float64 // average precision, the precision/recall summary
}

// Table3 compares tracelet matching (ratio and containment
// normalizations, k=3, β=0.8) against n-grams (size 5, delta 1) and
// graphlets (k=5) on the same query set, reporting ROC and CROC AUC
// (paper Table 3: 6 experiments with a single shared threshold swept by
// the ROC machinery).
func (env *Env) Table3() []Table3Row {
	var rows []Table3Row

	// Tracelet matching, both normalizations.
	for _, norm := range []struct {
		name string
		opts core.Options
	}{
		{"tracelets k=3 ratio", matcherOptions(3, 0.8)},
		{"tracelets k=3 contain", func() core.Options {
			o := matcherOptions(3, 0.8)
			o.Norm = 1 // align.Containment
			return o
		}()},
	} {
		m := core.NewMatcher(norm.opts)
		var samples []metrics.Sample
		targets := env.DB.Decomposed(3)
		for _, q := range env.Queries {
			ref := core.Decompose(q.Fn, 3)
			results := m.CompareMany(ref, targets)
			for i, r := range results {
				samples = append(samples, metrics.Sample{
					Score:    r.SimilarityScore,
					Positive: sampleLabel(q, env.DB.Entries[i]),
				})
			}
		}
		rows = append(rows, Table3Row{
			Method: norm.name,
			ROC:    metrics.ROCAUC(samples),
			CROC:   metrics.CROCAUC(samples),
			AP:     metrics.AveragePrecision(samples),
		})
	}

	// n-grams, size 5 delta 1.
	{
		opts := ngram.DefaultOptions()
		fps := make([]*ngram.Fingerprint, len(env.DB.Entries))
		for i, e := range env.DB.Entries {
			fps[i] = ngram.Extract(e.Function(), opts)
		}
		var samples []metrics.Sample
		for _, q := range env.Queries {
			qf := ngram.Extract(q.Fn, opts)
			for i := range fps {
				samples = append(samples, metrics.Sample{
					Score:    ngram.Similarity(qf, fps[i]),
					Positive: sampleLabel(q, env.DB.Entries[i]),
				})
			}
		}
		rows = append(rows, Table3Row{
			Method: "n-grams size5 delta1",
			ROC:    metrics.ROCAUC(samples),
			CROC:   metrics.CROCAUC(samples),
			AP:     metrics.AveragePrecision(samples),
		})
	}

	// graphlets, k=5.
	{
		opts := graphlet.DefaultOptions()
		fps := make([]*graphlet.Fingerprint, len(env.DB.Entries))
		for i, e := range env.DB.Entries {
			fps[i] = graphlet.Extract(e.Function(), opts)
		}
		var samples []metrics.Sample
		for _, q := range env.Queries {
			qf := graphlet.Extract(q.Fn, opts)
			for i := range fps {
				samples = append(samples, metrics.Sample{
					Score:    graphlet.Similarity(qf, fps[i]),
					Positive: sampleLabel(q, env.DB.Entries[i]),
				})
			}
		}
		rows = append(rows, Table3Row{
			Method: "graphlets k=5",
			ROC:    metrics.ROCAUC(samples),
			CROC:   metrics.CROCAUC(samples),
			AP:     metrics.AveragePrecision(samples),
		})
	}
	return rows
}

// RenderTable3 prints the accuracy comparison.
func RenderTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintf(w, "Table 3: accuracy, tracelets vs n-grams vs graphlets (%d queries pooled)\n", 6)
	fmt.Fprintf(w, "%-24s %10s %10s %10s\n", "method", "AUC[ROC]", "AUC[CROC]", "AP")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %10.4f %10.4f %10.4f\n", r.Method, r.ROC, r.CROC, r.AP)
	}
}
