package experiments

import (
	"fmt"
	"io"

	"repro/internal/align"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/metrics"
	"repro/internal/prep"
	"repro/internal/tinyc"
)

// AblationRow is one configuration's accuracy in the design-choice study.
type AblationRow struct {
	Config     string
	ROC        float64
	CROC       float64
	Separation float64
}

// Ablation measures the contribution of the design choices DESIGN.md
// calls out: the rewrite engine (on/off) and the rewrite-skip
// optimization of Section 6.3.
func (env *Env) Ablation() []AblationRow {
	configs := []struct {
		name string
		opts core.Options
	}{
		{"full (rewrite, skip<0.5)", matcherOptions(3, 0.8)},
		{"no rewrite", func() core.Options {
			o := matcherOptions(3, 0.8)
			o.UseRewrite = false
			return o
		}()},
		// The paper's §6.3 optimization skips rewrites for pairs scoring
		// below 50%. Lowering the cutoff to 30% admits far more rewrite
		// attempts; if accuracy does not move, the 50% cutoff is safe.
		{"rewrite, skip<0.3", func() core.Options {
			o := matcherOptions(3, 0.8)
			o.RewriteSkipBelow = 0.3
			return o
		}()},
	}
	var rows []AblationRow
	for _, cfg := range configs {
		m := core.NewMatcher(cfg.opts)
		targets := env.DB.Decomposed(3)
		var samples []metrics.Sample
		minPos, maxNeg := 1.0, 0.0
		for _, q := range env.Queries {
			ref := core.Decompose(q.Fn, 3)
			for i, r := range m.CompareMany(ref, targets) {
				pos := sampleLabel(q, env.DB.Entries[i])
				samples = append(samples, metrics.Sample{Score: r.SimilarityScore, Positive: pos})
				if pos && r.SimilarityScore < minPos {
					minPos = r.SimilarityScore
				}
				if !pos && r.SimilarityScore > maxNeg {
					maxNeg = r.SimilarityScore
				}
			}
		}
		rows = append(rows, AblationRow{
			Config:     cfg.name,
			ROC:        metrics.ROCAUC(samples),
			CROC:       metrics.CROCAUC(samples),
			Separation: minPos - maxNeg,
		})
	}
	return rows
}

// RenderAblation prints the design-choice study.
func RenderAblation(w io.Writer, rows []AblationRow) {
	fmt.Fprintf(w, "Ablation: rewrite-engine design choices (k=3, β=0.8)\n")
	fmt.Fprintf(w, "%-26s %10s %10s %12s\n", "config", "AUC[ROC]", "AUC[CROC]", "separation")
	for _, r := range rows {
		fmt.Fprintf(w, "%-26s %10.4f %10.4f %+12.3f\n", r.Config, r.ROC, r.CROC, r.Separation)
	}
}

// SmallFuncRow is one function size's matching quality in the Section 8
// small-function limitation study.
type SmallFuncRow struct {
	Stmts     int
	Blocks    int
	Tracelets int
	// NoiseScore is the best similarity any *unrelated* function reaches
	// against this query; CtxScore is the similarity of the same source
	// in another context. Small functions close the gap.
	CtxScore   float64
	NoiseScore float64
}

// SmallFunctions reproduces the Section 8 limitation: matching small
// functions produces bad results, because some tracelets are very common
// while slight changes to others cannot be evened out.
func SmallFunctions() ([]SmallFuncRow, error) {
	m := core.NewMatcher(matcherOptions(3, 0.8))
	var rows []SmallFuncRow
	for _, stmts := range []int{0, 6, 15, 40, 90} {
		// stmts==0 is the degenerate probe: a straight-line function with
		// a single basic block, which cannot produce any 3-tracelet.
		src := "int probe(int a, int b, char *s) { int v0 = 3; v0 = a + b * v0; return v0; }"
		if stmts > 0 {
			src = corpus.RandomFunc("probe", 11, corpus.GenConfig{Stmts: stmts, Calls: true})
		}
		query, err := liftSingle(src, 301)
		if err != nil {
			return nil, err
		}
		ctx, err := liftSingle(src, 302)
		if err != nil {
			return nil, err
		}
		ref := core.Decompose(query, 3)
		row := SmallFuncRow{
			Stmts:     stmts,
			Blocks:    query.NumBlocks(),
			Tracelets: len(ref.Tracelets),
			CtxScore:  m.Compare(ref, core.Decompose(ctx, 3)).SimilarityScore,
		}
		for seed := int64(0); seed < 6; seed++ {
			noiseSrc := corpus.RandomFunc("noise", 400+seed, corpus.GenConfig{Stmts: stmts, Calls: true})
			noise, err := liftSingle(noiseSrc, 303+seed)
			if err != nil {
				return nil, err
			}
			if s := m.Compare(ref, core.Decompose(noise, 3)).SimilarityScore; s > row.NoiseScore {
				row.NoiseScore = s
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func liftSingle(src string, seed int64) (*prep.Function, error) {
	img, err := tinyc.BuildStripped(src, tinyc.Config{Opt: tinyc.O2, Seed: seed})
	if err != nil {
		return nil, err
	}
	fns, err := prep.LiftImage(img)
	if err != nil {
		return nil, err
	}
	best := fns[0]
	for _, fn := range fns[1:] {
		if fn.NumInsts() > best.NumInsts() {
			best = fn
		}
	}
	return best, nil
}

// RenderSmallFunctions prints the small-function limitation study.
func RenderSmallFunctions(w io.Writer, rows []SmallFuncRow) {
	fmt.Fprintf(w, "Section 8 limitation: small functions (same-source context score vs best noise score)\n")
	fmt.Fprintf(w, "%-7s %-7s %-10s %-10s %-10s %-8s\n",
		"stmts", "blocks", "tracelets", "ctx", "noise", "margin")
	for _, r := range rows {
		fmt.Fprintf(w, "%-7d %-7d %-10d %-10.2f %-10.2f %+-8.2f\n",
			r.Stmts, r.Blocks, r.Tracelets, r.CtxScore, r.NoiseScore,
			r.CtxScore-r.NoiseScore)
	}
}

// InlinedRow compares normalizations when searching for a function that
// the target binary has *inlined* (paper Section 8: "Dealing with inlined
// functions ... could be handled — but only to a certain extent — [with]
// the containment normalization method").
type InlinedRow struct {
	Norm  string
	Score float64
	Match bool
}

// Inlined builds a standalone copy of a leaf helper as the query and a
// host function that inlines it (O2) as the target, then compares under
// both normalizations.
func Inlined() ([]InlinedRow, error) {
	host := `
	int process(int a, int b, char *s) {
		int total = 0;
		int i = 0;
		for (i = 0; i < b; i = i + 1) {
			total = total + helper(i, a);
			if (total > 1000) { printf("result: %d", total); }
		}
		return total;
	}
	int helper(int i, int a) {
		int w = i * 3 + a % 7;
		if (w > 100) { w = w - 50; }
		while (w % 5 != 0) { w = w + 1; }
		if (w < 0) { w = 0; }
		return w;
	}
	`
	// The query: the helper alone, compiled without inlining hosts (it is
	// the only function, so nothing inlines into anything).
	helperOnly := `
	int helper(int i, int a) {
		int w = i * 3 + a % 7;
		if (w > 100) { w = w - 50; }
		while (w % 5 != 0) { w = w + 1; }
		if (w < 0) { w = 0; }
		return w;
	}
	`
	query, err := liftLargest(helperOnly, 2 /*O2*/, 801)
	if err != nil {
		return nil, err
	}
	target, err := liftLargest(host, 2 /*O2*/, 802) // helper inlined into process
	if err != nil {
		return nil, err
	}
	var rows []InlinedRow
	for _, norm := range []struct {
		name string
		m    align.Method
	}{{"ratio", align.Ratio}, {"containment", align.Containment}} {
		opts := matcherOptions(2, 0.8) // short tracelets: the query is small
		opts.Norm = norm.m
		m := core.NewMatcher(opts)
		res := m.Compare(core.Decompose(query, 2), core.Decompose(target, 2))
		rows = append(rows, InlinedRow{Norm: norm.name, Score: res.SimilarityScore, Match: res.IsMatch})
	}
	return rows, nil
}

// RenderInlined prints the inlining study.
func RenderInlined(w io.Writer, rows []InlinedRow) {
	fmt.Fprintf(w, "Section 8: finding a helper inlined into its caller (k=2)\n")
	for _, r := range rows {
		verdict := "not found"
		if r.Match {
			verdict = "FOUND"
		}
		fmt.Fprintf(w, "%-12s similarity %.3f  %s\n", r.Norm, r.Score, verdict)
	}
}
