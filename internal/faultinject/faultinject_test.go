package faultinject

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestNilAndEmptyInjectorNeverFire(t *testing.T) {
	var nilIn *Injector
	if err := nilIn.Fire(context.Background(), "search"); err != nil {
		t.Errorf("nil injector fired: %v", err)
	}
	nilIn.Arm(&Fault{Point: "x", Mode: Error}) // must not panic
	nilIn.Clear()
	if n := nilIn.Fired("x"); n != 0 {
		t.Errorf("nil injector Fired = %d", n)
	}

	in := New()
	if err := in.Fire(context.Background(), "search"); err != nil {
		t.Errorf("empty injector fired: %v", err)
	}
}

func TestErrorFault(t *testing.T) {
	in := New()
	in.Arm(&Fault{Point: "decode", Mode: Error})
	err := in.Fire(context.Background(), "decode")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if err := in.Fire(context.Background(), "search"); err != nil {
		t.Errorf("unarmed point fired: %v", err)
	}
	if got := in.Fired("decode"); got != 1 {
		t.Errorf("Fired = %d, want 1", got)
	}
}

func TestCountLimitedFault(t *testing.T) {
	in := New()
	in.Arm(&Fault{Point: "cache", Mode: Error, Count: 2})
	for i := 0; i < 2; i++ {
		if err := in.Fire(context.Background(), "cache"); !errors.Is(err, ErrInjected) {
			t.Fatalf("firing %d: err = %v, want ErrInjected", i, err)
		}
	}
	// The fault is spent: subsequent fires succeed (this is what lets a
	// chaos test assert "retries eventually succeed once faults clear").
	for i := 0; i < 3; i++ {
		if err := in.Fire(context.Background(), "cache"); err != nil {
			t.Fatalf("spent fault still firing: %v", err)
		}
	}
	if got := in.Fired("cache"); got != 2 {
		t.Errorf("Fired = %d, want 2", got)
	}
}

func TestLatencyFaultHonorsContext(t *testing.T) {
	in := New()
	in.Arm(&Fault{Point: "search", Mode: Latency, Latency: 10 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := in.Fire(ctx, "search"); err != nil {
		t.Fatalf("latency fault returned error: %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("latency fault ignored context: slept %v", elapsed)
	}
}

func TestPanicFault(t *testing.T) {
	in := New()
	in.Arm(&Fault{Point: "reload", Mode: Panic, Count: 1})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic fault did not panic")
			}
		}()
		in.Fire(context.Background(), "reload")
	}()
	// Count exhausted: no second panic.
	if err := in.Fire(context.Background(), "reload"); err != nil {
		t.Errorf("spent panic fault: %v", err)
	}
}

func TestClear(t *testing.T) {
	in := New()
	in.Arm(&Fault{Point: "decode", Mode: Error})
	in.Clear()
	if err := in.Fire(context.Background(), "decode"); err != nil {
		t.Errorf("cleared injector fired: %v", err)
	}
}

func TestTelemetryCounting(t *testing.T) {
	in := New()
	in.Tel = telemetry.New()
	in.Arm(&Fault{Point: "decode", Mode: Error})
	in.Fire(context.Background(), "decode")
	in.Fire(context.Background(), "decode")
	if n := in.Tel.Snapshot().Counters["faults_injected"]; n != 2 {
		t.Errorf("faults_injected = %d, want 2", n)
	}
}

func TestParse(t *testing.T) {
	in, err := Parse("search=latency:200ms, decode=error ,cache=error:x2,reload=panic:x1")
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Fire(context.Background(), "decode"); !errors.Is(err, ErrInjected) {
		t.Errorf("decode: %v", err)
	}
	start := time.Now()
	if err := in.Fire(context.Background(), "search"); err != nil {
		t.Errorf("search: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Errorf("latency fault slept only %v, want ~200ms", elapsed)
	}
	in.Fire(context.Background(), "cache")
	in.Fire(context.Background(), "cache")
	if err := in.Fire(context.Background(), "cache"); err != nil {
		t.Errorf("cache fault not count-limited: %v", err)
	}
}

func TestParseDefaults(t *testing.T) {
	in, err := Parse("search=latency")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	in.Fire(context.Background(), "search")
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("default latency slept only %v, want ~50ms", elapsed)
	}
	if in, err := Parse(""); err != nil || in == nil {
		t.Errorf("empty spec: in=%v err=%v", in, err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"search",               // no mode
		"=error",               // no point
		"search=fnord",         // unknown mode
		"search=latency:bogus", // bad duration
		"search=latency:-5ms",  // negative duration
		"search=error:200ms",   // argument on argless mode
		"search=error:x0",      // zero count
		"search=error:xbanana", // non-numeric count
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv(EnvVar, "")
	if in, err := FromEnv(); in != nil || err != nil {
		t.Errorf("unset env: in=%v err=%v", in, err)
	}
	t.Setenv(EnvVar, "decode=error")
	in, err := FromEnv()
	if err != nil || in == nil {
		t.Fatalf("FromEnv: in=%v err=%v", in, err)
	}
	if err := in.Fire(context.Background(), "decode"); !errors.Is(err, ErrInjected) {
		t.Errorf("env-armed fault: %v", err)
	}
	t.Setenv(EnvVar, "decode=gibberish")
	if _, err := FromEnv(); err == nil || !strings.Contains(err.Error(), EnvVar) {
		t.Errorf("bad env spec error = %v, want mention of %s", err, EnvVar)
	}
}

// TestConcurrentFire: arming, clearing, and firing race freely — run
// with -race.
func TestConcurrentFire(t *testing.T) {
	in := New()
	in.Tel = telemetry.New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				in.Fire(context.Background(), "search")
			}
		}()
	}
	for i := 0; i < 50; i++ {
		in.Arm(&Fault{Point: "search", Mode: Error, Count: 1})
		in.Clear()
	}
	wg.Wait()
}
