// Package faultinject is a minimal named-fault-point framework for chaos
// testing the serving stack. Production code marks interesting places
// with injector.Fire(ctx, "point"); with no faults armed that is one
// pointer check. Tests (or an operator, via the TRACY_FAULTS
// environment variable) arm a fault — added latency, a returned error,
// or a panic — at a named point, optionally limited to the first N
// firings so "retries eventually succeed once the fault clears" is
// directly testable.
//
// Fault specs are comma-separated "point=mode[:arg][:xN]" items:
//
//	search=latency:200ms        sleep 200ms at every search
//	decode=error                return ErrInjected at decode
//	cache=error:x2              fail the first two cache lookups only
//	search=panic:x1             panic once at search
//
// Modes: latency (arg = Go duration, default 50ms), error (no arg),
// panic (no arg). ":xN" caps the firing count; omitted means forever.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// EnvVar is the environment variable FromEnv reads fault specs from.
const EnvVar = "TRACY_FAULTS"

// ErrInjected is the error returned by an armed error-mode fault.
// Handlers treat it like any other internal failure; tests recognize it
// with errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Mode is what an armed fault does when it fires.
type Mode int

const (
	// Latency sleeps for the fault's Latency duration (cut short if the
	// caller's context ends first — injected latency must never outlive
	// a request deadline).
	Latency Mode = iota
	// Error makes Fire return ErrInjected.
	Error
	// Panic makes Fire panic — for exercising recovery middleware.
	Panic
)

func (m Mode) String() string {
	switch m {
	case Latency:
		return "latency"
	case Error:
		return "error"
	case Panic:
		return "panic"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Fault is one armed fault at a named point.
type Fault struct {
	Point   string        // fault-point name, e.g. "search"
	Mode    Mode          // what firing does
	Latency time.Duration // sleep length for Latency mode (default 50ms)
	Count   int           // fire at most this many times; <= 0 = forever

	fired atomic.Int64
}

// Injector holds the armed faults. The zero value and the nil injector
// are both valid and never fire (Fire is a single nil/empty check), so
// production servers pay nothing when chaos is off. Arm/Clear may race
// freely with Fire.
type Injector struct {
	mu     sync.RWMutex
	faults map[string][]*Fault
	armed  atomic.Bool

	// Tel, when non-nil, counts every firing as faults_injected.
	Tel *telemetry.Collector
}

// New returns an empty injector.
func New() *Injector { return &Injector{} }

// Arm registers a fault. Several faults may share a point; they fire in
// arming order each time the point is hit.
func (in *Injector) Arm(f *Fault) {
	if in == nil || f == nil || f.Point == "" {
		return
	}
	if f.Mode == Latency && f.Latency <= 0 {
		f.Latency = 50 * time.Millisecond
	}
	in.mu.Lock()
	if in.faults == nil {
		in.faults = make(map[string][]*Fault)
	}
	in.faults[f.Point] = append(in.faults[f.Point], f)
	in.armed.Store(true)
	in.mu.Unlock()
}

// Clear disarms every fault.
func (in *Injector) Clear() {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.faults = nil
	in.armed.Store(false)
	in.mu.Unlock()
}

// Fired reports how many times faults at point have fired.
func (in *Injector) Fired(point string) int {
	if in == nil {
		return 0
	}
	in.mu.RLock()
	defer in.mu.RUnlock()
	var n int
	for _, f := range in.faults[point] {
		n += int(f.fired.Load())
	}
	return n
}

// Fire triggers the faults armed at point, if any: it sleeps, returns
// ErrInjected, or panics according to each matching fault's mode. With
// nothing armed it is a nil check plus one atomic load. A nil ctx is
// treated as Background.
func (in *Injector) Fire(ctx context.Context, point string) error {
	if in == nil || !in.armed.Load() {
		return nil
	}
	in.mu.RLock()
	faults := in.faults[point]
	in.mu.RUnlock()
	var firstErr error
	for _, f := range faults {
		if f.Count > 0 && f.fired.Add(1) > int64(f.Count) {
			f.fired.Add(-1)
			continue
		}
		if f.Count <= 0 {
			f.fired.Add(1)
		}
		in.Tel.Inc(telemetry.FaultsInjected)
		switch f.Mode {
		case Latency:
			sleepCtx(ctx, f.Latency)
		case Error:
			if firstErr == nil {
				firstErr = fmt.Errorf("%w at %q", ErrInjected, point)
			}
		case Panic:
			panic(fmt.Sprintf("faultinject: injected panic at %q", point))
		}
	}
	return firstErr
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) {
	if ctx == nil {
		ctx = context.Background()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// Parse builds an injector from a comma-separated spec string (see the
// package comment for the grammar). An empty spec yields an empty (but
// non-nil) injector.
func Parse(spec string) (*Injector, error) {
	in := New()
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		f, err := parseFault(item)
		if err != nil {
			return nil, err
		}
		in.Arm(f)
	}
	return in, nil
}

// parseFault parses one "point=mode[:arg][:xN]" item.
func parseFault(item string) (*Fault, error) {
	point, rest, ok := strings.Cut(item, "=")
	point = strings.TrimSpace(point)
	if !ok || point == "" || rest == "" {
		return nil, fmt.Errorf("faultinject: bad fault %q (want point=mode[:arg][:xN])", item)
	}
	f := &Fault{Point: point}
	parts := strings.Split(rest, ":")
	switch parts[0] {
	case "latency":
		f.Mode = Latency
	case "error":
		f.Mode = Error
	case "panic":
		f.Mode = Panic
	default:
		return nil, fmt.Errorf("faultinject: unknown mode %q in %q (want latency|error|panic)", parts[0], item)
	}
	for _, p := range parts[1:] {
		if n, ok := strings.CutPrefix(p, "x"); ok {
			c, err := strconv.Atoi(n)
			if err != nil || c <= 0 {
				return nil, fmt.Errorf("faultinject: bad count %q in %q", p, item)
			}
			f.Count = c
			continue
		}
		if f.Mode != Latency {
			return nil, fmt.Errorf("faultinject: mode %s takes no argument (got %q in %q)", f.Mode, p, item)
		}
		d, err := time.ParseDuration(p)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("faultinject: bad duration %q in %q", p, item)
		}
		f.Latency = d
	}
	return f, nil
}

// FromEnv builds an injector from the TRACY_FAULTS environment
// variable. Unset or empty yields (nil, nil) — chaos fully off.
func FromEnv() (*Injector, error) {
	spec := os.Getenv(EnvVar)
	if spec == "" {
		return nil, nil
	}
	in, err := Parse(spec)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", EnvVar, err)
	}
	return in, nil
}
