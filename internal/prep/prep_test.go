package prep

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/bin"
)

// buildImage links a single-function program with an import and a string
// datum and returns the parsed file.
func buildImage(t *testing.T, src string, stripped bool) *bin.File {
	t.Helper()
	insts, labels, err := asm.ParseListing(src)
	if err != nil {
		t.Fatal(err)
	}
	p := &bin.Program{
		Funcs: []bin.Func{{Name: "f", Insts: insts, Labels: labels}},
		Data: []bin.Datum{
			{Name: "aCmdDDone", Data: append([]byte("Cmd %d DONE"), 0)},
			{Name: "blob", Data: []byte{1, 2, 3, 4, 0, 0, 0, 0}},
		},
		Imports: []string{"_printf", "_fopen"},
		Align16: true,
	}
	img, err := bin.Link(p)
	if err != nil {
		t.Fatal(err)
	}
	if stripped {
		img, err = bin.Strip(img)
		if err != nil {
			t.Fatal(err)
		}
	}
	f, err := bin.Read(img)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func liftOne(t *testing.T, f *bin.File) *Function {
	t.Helper()
	fns, err := Lift(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(fns) != 1 {
		t.Fatalf("lifted %d functions, want 1", len(fns))
	}
	return fns[0]
}

func flatten(fn *Function) string {
	var sb strings.Builder
	for _, b := range fn.Graph.Blocks {
		for _, in := range b.Insts {
			sb.WriteString(in.String())
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

func TestImportCallNaming(t *testing.T) {
	f := buildImage(t, `
		push ebp
		mov ebp, esp
		push offset aCmdDDone
		call _printf
		mov esp, ebp
		pop ebp
		retn
	`, true)
	fn := liftOne(t, f)
	text := flatten(fn)
	if !strings.Contains(text, "call _printf") {
		t.Errorf("imported call not renamed:\n%s", text)
	}
}

func TestDataContentToken(t *testing.T) {
	f := buildImage(t, `
		push offset aCmdDDone
		call _printf
		retn
	`, true)
	fn := liftOne(t, f)
	text := flatten(fn)
	// The address of the string must come back as its content-derived
	// token (which recapitalizes independently of the original name).
	if !strings.Contains(text, "push offset aCmdDDONE") {
		t.Errorf("string address not tokenized:\n%s", text)
	}
}

func TestEbpFrameNaming(t *testing.T) {
	f := buildImage(t, `
		push ebp
		mov ebp, esp
		sub esp, 18h
		mov eax, [ebp+8]
		mov [ebp-4], eax
		mov ecx, [ebp+0Ch]
		mov esp, ebp
		pop ebp
		retn
	`, true)
	fn := liftOne(t, f)
	text := flatten(fn)
	for _, want := range []string{
		"mov eax, [ebp+arg_0]",
		"mov [ebp+var_4], eax",
		"mov ecx, [ebp+arg_4]",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

func TestEspSlotNaming(t *testing.T) {
	f := buildImage(t, `
		sub esp, 18h
		mov [esp+4], eax
		mov [esp+14h], ebx
		add esp, 18h
		retn
	`, true)
	fn := liftOne(t, f)
	text := flatten(fn)
	// depth after sub is 0x18; [esp+4] is 0x14 below entry esp.
	if !strings.Contains(text, "mov [esp+var_s14], eax") {
		t.Errorf("esp slot not named:\n%s", text)
	}
	if !strings.Contains(text, "mov [esp+var_s4], ebx") {
		t.Errorf("esp slot not named:\n%s", text)
	}
}

func TestInternalCallToken(t *testing.T) {
	insts1, labels1, _ := asm.ParseListing("call g\nretn")
	insts2, labels2, _ := asm.ParseListing("mov eax, 7\nretn")
	img, err := bin.Link(&bin.Program{
		Funcs: []bin.Func{
			{Name: "f", Insts: insts1, Labels: labels1},
			{Name: "g", Insts: insts2, Labels: labels2},
		},
		Align16: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	img, err = bin.Strip(img)
	if err != nil {
		t.Fatal(err)
	}
	fns, err := LiftImage(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(fns) != 2 {
		t.Fatalf("lifted %d functions, want 2", len(fns))
	}
	text := flatten(fns[0])
	if !strings.Contains(text, "call sub_") {
		t.Errorf("internal call should become sub_ token:\n%s", text)
	}
}

func TestJumpLabelToken(t *testing.T) {
	f := buildImage(t, `
		cmp eax, 1
		jz done
		inc eax
	done:
		retn
	`, true)
	fn := liftOne(t, f)
	text := flatten(fn)
	if !strings.Contains(text, "jz loc_") {
		t.Errorf("jump target should become loc_ token:\n%s", text)
	}
}

func TestUnstrippedKeepsName(t *testing.T) {
	f := buildImage(t, "mov eax, 1\nretn", false)
	fn := liftOne(t, f)
	if fn.Name != "f" {
		t.Errorf("unstripped function name = %q, want f", fn.Name)
	}
	fs := buildImage(t, "mov eax, 1\nretn", true)
	fns := liftOne(t, fs)
	if !strings.HasPrefix(fns.Name, "sub_") {
		t.Errorf("stripped function name = %q, want sub_ prefix", fns.Name)
	}
}

func TestDataToken(t *testing.T) {
	for _, tc := range []struct {
		data []byte
		want string
	}{
		{append([]byte("Cmd %d DONE"), 0), "aCmdDDONE"},
		{append([]byte("(%d) HELLO"), 0), "aDHELLO"},
		{append([]byte("hello world"), 0), "aHelloWorld"},
		{append([]byte("w"), 0), "aW"},
		{[]byte{1, 2, 3, 4}, "unk_04030201"},
		{[]byte{0}, "unk_00000000"},
	} {
		if got := DataToken(tc.data); got != tc.want {
			t.Errorf("DataToken(%q) = %q, want %q", tc.data, got, tc.want)
		}
	}
	// Equal content must give equal tokens; different content different
	// tokens (for these cases).
	a := DataToken([]byte("same\x00"))
	b := DataToken([]byte("same\x00"))
	c := DataToken([]byte("diff\x00"))
	if a != b {
		t.Error("equal content must tokenize equally")
	}
	if a == c {
		t.Error("different content should not collide here")
	}
}

func TestFrameToken(t *testing.T) {
	for _, tc := range []struct {
		disp int64
		want string
	}{
		{-4, "var_4"}, {-0x18, "var_18"}, {8, "arg_0"}, {0xC, "arg_4"}, {4, "retaddr"},
	} {
		if got := frameToken(tc.disp); got != tc.want {
			t.Errorf("frameToken(%d) = %q, want %q", tc.disp, got, tc.want)
		}
	}
}

func TestLiftCounts(t *testing.T) {
	f := buildImage(t, `
		push ebp
		mov ebp, esp
		cmp eax, 1
		jz out
		inc eax
	out:
		pop ebp
		retn
	`, true)
	fn := liftOne(t, f)
	if fn.NumBlocks() != 3 {
		t.Errorf("NumBlocks = %d, want 3", fn.NumBlocks())
	}
	if fn.NumInsts() != 7 {
		t.Errorf("NumInsts = %d, want 7", fn.NumInsts())
	}
}

// TestEspTrackingAcrossBranches: slot naming must survive control flow —
// both branch paths reach the store with the same tracked depth.
func TestEspTrackingAcrossBranches(t *testing.T) {
	f := buildImage(t, `
		sub esp, 10h
		cmp eax, 1
		jz other
		mov [esp+4], eax
		jmp join
	other:
		mov [esp+4], ecx
	join:
		mov [esp+8], edx
		add esp, 10h
		retn
	`, true)
	fn := liftOne(t, f)
	text := flatten(fn)
	// depth 0x10 everywhere: [esp+4] -> var_sC, [esp+8] -> var_s8.
	if !strings.Contains(text, "mov [esp+var_sC], eax") ||
		!strings.Contains(text, "mov [esp+var_sC], ecx") {
		t.Errorf("branch slots not named:\n%s", text)
	}
	if !strings.Contains(text, "mov [esp+var_s8], edx") {
		t.Errorf("join slot not named:\n%s", text)
	}
}

// TestEspTrackingUnknownAfterLeave: after leave/mov esp,ebp the depth is
// unknown and esp slots stay numeric.
func TestEspTrackingUnknownAfterLeave(t *testing.T) {
	f := buildImage(t, `
		push ebp
		mov ebp, esp
		sub esp, 8
		mov esp, ebp
		mov [esp+4], eax
		pop ebp
		retn
	`, true)
	fn := liftOne(t, f)
	text := flatten(fn)
	if !strings.Contains(text, "mov [esp+4], eax") {
		t.Errorf("post-epilogue slot should stay numeric:\n%s", text)
	}
}

// TestPushPopDepth: push/pop adjust the tracked depth.
func TestPushPopDepth(t *testing.T) {
	f := buildImage(t, `
		push eax
		push ebx
		mov [esp+4], ecx
		pop ebx
		pop eax
		retn
	`, true)
	fn := liftOne(t, f)
	text := flatten(fn)
	// depth 8 at the store; [esp+4] is 4 below entry.
	if !strings.Contains(text, "mov [esp+var_s4], ecx") {
		t.Errorf("push-tracked slot not named:\n%s", text)
	}
}
