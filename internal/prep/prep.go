// Package prep lifts binary functions to preprocessed assembly CFGs,
// implementing the compilation-side-effect reversal of paper Section 4.1:
//
//   - Imported-function call targets are replaced with the function name
//     recovered from the dynamic symbol table (call 0x00401FF0 ->
//     call _printf). Internal call targets become address-derived sub_XX
//     tokens, which never match across binaries syntactically and are
//     bridged by the rewrite engine instead.
//   - Offsets pointing into initialized global memory are replaced with a
//     designated token derived from the *content* at that address
//     (0x00404002 holding "DONE" -> aCmdDDone), so the token is stable
//     across binaries that embed the same data at different addresses.
//   - Stack-frame offsets are replaced with var_X / arg_X tokens, for both
//     ebp-relative and esp-relative (tracked) addressing.
//   - Intra-procedural jump targets become loc_X label tokens; they are
//     stripped during tracelet extraction anyway.
package prep

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/bin"
	"repro/internal/cfg"
	"repro/internal/x86"
)

// Function is a lifted, preprocessed binary function.
type Function struct {
	Name  string
	Addr  uint32
	Graph *cfg.Graph
}

// NumBlocks returns the number of basic blocks.
func (f *Function) NumBlocks() int { return len(f.Graph.Blocks) }

// NumInsts returns the number of instructions.
func (f *Function) NumInsts() int { return f.Graph.NumInsts() }

// LiftImage parses an ELF image and lifts all of its functions.
func LiftImage(img []byte) ([]*Function, error) {
	f, err := bin.Read(img)
	if err != nil {
		return nil, err
	}
	return Lift(f)
}

// Lift lifts all functions of a parsed ELF file.
func Lift(f *bin.File) ([]*Function, error) {
	images, err := f.Functions()
	if err != nil {
		return nil, err
	}
	starts := make(map[uint32]bool, len(images))
	for _, im := range images {
		starts[im.Addr] = true
	}
	out := make([]*Function, 0, len(images))
	for _, im := range images {
		fn, err := LiftFunc(f, im, starts)
		if err != nil {
			return nil, fmt.Errorf("prep: %s: %w", im.Name, err)
		}
		out = append(out, fn)
	}
	return out, nil
}

// LiftFunc lifts a single function image. starts is the set of all known
// function entry addresses (used to classify call targets); it may be nil.
func LiftFunc(f *bin.File, im bin.FuncImage, starts map[uint32]bool) (*Function, error) {
	dec, err := x86.DecodeAll(im.Code, im.Addr)
	if err != nil {
		return nil, err
	}
	// Jump-table recovery: read consecutive .rodata entries while they
	// point back into this function (the heuristic real disassemblers
	// use for switch statements).
	fnEnd := im.Addr + uint32(len(im.Code))
	readTable := func(tbl uint32) []uint32 {
		data, ok := f.DataAt(tbl)
		if !ok {
			return nil
		}
		var out []uint32
		for i := 0; i+4 <= len(data) && i < 256*4; i += 4 {
			a := uint32(data[i]) | uint32(data[i+1])<<8 | uint32(data[i+2])<<16 | uint32(data[i+3])<<24
			if a < im.Addr || a >= fnEnd {
				break
			}
			out = append(out, a)
		}
		return out
	}
	g, err := cfg.BuildWithTables(im.Name, dec, readTable)
	if err != nil {
		return nil, err
	}
	depths := trackESP(g)
	for bi, b := range g.Blocks {
		for ii := range b.Insts {
			rewriteInst(&b.Insts[ii], f, starts, depths[bi][ii])
		}
	}
	return &Function{Name: im.Name, Addr: im.Addr, Graph: g}, nil
}

// unknownDepth marks instructions where the esp depth is not statically
// tracked.
const unknownDepth = int32(-1 << 30)

// trackESP computes, per instruction, the number of bytes the stack has
// grown since function entry, by forward propagation over the CFG. The
// result indexes [block][instruction-within-block].
func trackESP(g *cfg.Graph) [][]int32 {
	depths := make([][]int32, len(g.Blocks))
	for i, b := range g.Blocks {
		depths[i] = make([]int32, len(b.Insts))
		for j := range depths[i] {
			depths[i][j] = unknownDepth
		}
	}
	entry := make([]int32, len(g.Blocks))
	seen := make([]bool, len(g.Blocks))
	entry[g.Entry] = 0
	seen[g.Entry] = true
	work := []int{g.Entry}
	for len(work) > 0 {
		bi := work[0]
		work = work[1:]
		d := entry[bi]
		b := g.Blocks[bi]
		for ii, in := range b.Insts {
			depths[bi][ii] = d
			d = stepESP(d, in)
		}
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				entry[s] = d
				work = append(work, s)
			}
			// On conflicting depths, the first reaching value wins; the
			// naming is heuristic, as in real-world disassemblers.
		}
	}
	return depths
}

// stepESP advances the tracked depth across one instruction.
func stepESP(d int32, in asm.Inst) int32 {
	if d == unknownDepth {
		return d
	}
	switch in.Mnemonic {
	case "push":
		return d + 4
	case "pop":
		return d - 4
	case "sub", "add":
		if len(in.Ops) == 2 && !in.Ops[0].IsMem() && in.Ops[0].Arg.IsReg() &&
			in.Ops[0].Arg.Reg == asm.ESP && !in.Ops[1].IsMem() && in.Ops[1].Arg.IsImm() {
			if in.Mnemonic == "sub" {
				return d + int32(in.Ops[1].Arg.Imm)
			}
			return d - int32(in.Ops[1].Arg.Imm)
		}
		return d
	case "leave":
		return unknownDepth
	case "mov":
		// mov esp, ebp (epilogue) invalidates tracking.
		if len(in.Ops) == 2 && !in.Ops[0].IsMem() && in.Ops[0].Arg.IsReg() &&
			in.Ops[0].Arg.Reg == asm.ESP {
			return unknownDepth
		}
		return d
	default:
		return d
	}
}

func rewriteInst(in *asm.Inst, f *bin.File, starts map[uint32]bool, depth int32) {
	switch {
	case in.IsCall():
		if len(in.Ops) == 1 && !in.Ops[0].IsMem() && in.Ops[0].Arg.IsImm() {
			target := uint32(in.Ops[0].Arg.Imm)
			in.Ops[0] = asm.SymOp(asm.SymFunc, callToken(f, target))
		}
		return
	case in.IsJump():
		if len(in.Ops) == 1 && !in.Ops[0].IsMem() && in.Ops[0].Arg.IsImm() {
			target := uint32(in.Ops[0].Arg.Imm)
			in.Ops[0] = asm.SymOp(asm.SymLabel, fmt.Sprintf("loc_%X", target))
		}
		return
	}
	for oi := range in.Ops {
		op := &in.Ops[oi]
		if op.IsMem() {
			rewriteMem(op, f, depth)
			continue
		}
		if op.Arg.IsImm() {
			if tok, ok := dataTokenAt(f, uint32(op.Arg.Imm)); ok {
				*op = asm.OffsetOp(asm.SymData, tok)
			} else if starts != nil && starts[uint32(op.Arg.Imm)] {
				*op = asm.OffsetOp(asm.SymFunc, callToken(f, uint32(op.Arg.Imm)))
			}
		}
	}
}

func rewriteMem(op *asm.Operand, f *bin.File, depth int32) {
	base := asm.RegNone
	nRegs := 0
	for _, t := range op.Mem {
		if t.Arg.IsReg() {
			nRegs++
			if base == asm.RegNone {
				base = t.Arg.Reg
			}
		}
	}
	for ti := range op.Mem {
		t := &op.Mem[ti]
		if !t.Arg.IsImm() {
			continue
		}
		// Scale factors in [base+index*N] are structural, not offsets.
		if t.Op == asm.OpMul {
			continue
		}
		v := t.Arg.Imm
		if t.Op == asm.OpSub {
			v = -v
		}
		switch {
		case nRegs == 0:
			if tok, ok := dataTokenAt(f, uint32(v)); ok {
				t.Op = asm.OpAdd
				t.Arg = asm.SymArg(asm.SymData, tok)
			}
		case base == asm.EBP && nRegs == 1:
			t.Op = asm.OpAdd
			t.Arg = asm.SymArg(asm.SymLocal, frameToken(v))
		case base == asm.ESP && nRegs == 1 && depth != unknownDepth:
			below := int64(depth) - v
			if below > 0 {
				t.Op = asm.OpAdd
				t.Arg = asm.SymArg(asm.SymLocal, fmt.Sprintf("var_s%X", below))
			}
		}
	}
}

// frameToken names an ebp-relative slot IDA-style: negative offsets are
// locals (var_X), offsets >= 8 are arguments (arg_X counts from 0 at
// ebp+8); ebp+4 is the return address.
func frameToken(disp int64) string {
	switch {
	case disp < 0:
		return fmt.Sprintf("var_%X", -disp)
	case disp >= 8:
		return fmt.Sprintf("arg_%X", disp-8)
	default:
		return "retaddr"
	}
}

func callToken(f *bin.File, target uint32) string {
	if name, ok := f.ImportAt(target); ok {
		return name
	}
	return fmt.Sprintf("sub_%X", target)
}

// dataTokenAt derives the content token for an address inside initialized
// global memory, or returns false if the address is not in a data section.
func dataTokenAt(f *bin.File, addr uint32) (string, bool) {
	data, ok := f.DataAt(addr)
	if !ok {
		return "", false
	}
	return DataToken(data), true
}

// DataToken derives the designated token for global data content: an
// IDA-style aCamelCase name for printable strings, or a content-derived
// unk_ token for binary data. Equal content yields equal tokens, which is
// what makes the substitution stable across binaries (paper Sec 4.1).
func DataToken(data []byte) string {
	// Read up to the NUL terminator (C string) or 24 bytes.
	n := 0
	for n < len(data) && n < 24 && data[n] != 0 {
		n++
	}
	s := data[:n]
	printable := len(s) >= 1
	for _, c := range s {
		if c < 0x20 || c > 0x7e {
			printable = false
			break
		}
	}
	if printable {
		return "a" + camelCase(string(s))
	}
	var v uint32
	for i := 0; i < 4 && i < len(data); i++ {
		v |= uint32(data[i]) << (8 * i)
	}
	return fmt.Sprintf("unk_%08X", v)
}

func camelCase(s string) string {
	var b strings.Builder
	newWord := true
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z':
			if newWord && c >= 'a' && c <= 'z' {
				c -= 'a' - 'A'
			}
			b.WriteRune(c)
			newWord = false
		case c >= '0' && c <= '9':
			b.WriteRune(c)
			newWord = false
		default:
			newWord = true
		}
		if b.Len() >= 16 {
			break
		}
	}
	if b.Len() == 0 {
		return "Str"
	}
	return b.String()
}
