package corpus

import (
	"fmt"
	"runtime"
	"strings"

	"repro/internal/bin"
	"repro/internal/tinyc"
)

// CampaignConfig sizes a scale campaign: a 10⁴–10⁶ function corpus
// generated and compiled in parallel with bounded memory, the regime the
// v3 columnar index exists for. Functions come in groups: each group's
// sources are compiled once per opt level (cross-opt-level ground-truth
// duplicates, the paper's hardest same-function axis) under a distinct
// context seed per executable.
type CampaignConfig struct {
	Seed        int64
	Funcs       int              // total function target across all executables
	FuncsPerExe int              // functions per executable (default 32)
	Stmts       int              // statement budget per function (default 12)
	OptLevels   []tinyc.OptLevel // cycled per group (default O0,O1,O2)
	Workers     int              // parallel build workers (default GOMAXPROCS)
}

// withDefaults fills the zero fields.
func (cfg CampaignConfig) withDefaults() CampaignConfig {
	if cfg.FuncsPerExe <= 0 {
		cfg.FuncsPerExe = 32
	}
	if cfg.Stmts <= 0 {
		cfg.Stmts = 12
	}
	if len(cfg.OptLevels) == 0 {
		cfg.OptLevels = []tinyc.OptLevel{tinyc.O0, tinyc.O1, tinyc.O2}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Funcs <= 0 {
		cfg.Funcs = 1000
	}
	return cfg
}

// NumExes returns how many executables the campaign will emit.
func (cfg CampaignConfig) NumExes() int {
	c := cfg.withDefaults()
	perGroup := c.FuncsPerExe * len(c.OptLevels)
	groups := (c.Funcs + perGroup - 1) / perGroup
	return groups * len(c.OptLevels)
}

// RunCampaign generates the campaign corpus, invoking emit once per
// executable in deterministic order (group-major, then opt level).
// Compilation runs on cfg.Workers goroutines; at most a small window of
// finished executables is held in memory, so the campaign streams — the
// caller is expected to index or write each image and drop it. emit
// returning an error aborts the campaign.
//
// Function sources are deterministic in (Seed, group, index): rerunning
// a campaign regenerates the same corpus byte for byte.
func RunCampaign(cfg CampaignConfig, emit func(Executable, tinyc.OptLevel) error) (int, error) {
	c := cfg.withDefaults()
	nExes := c.NumExes()
	groups := nExes / len(c.OptLevels)

	type futureT struct {
		exe Executable
		opt tinyc.OptLevel
		err error
	}
	futures := make(chan chan futureT, 2*c.Workers) // emission window: bounds resident images
	sem := make(chan struct{}, c.Workers)

	go func() {
		defer close(futures)
		for g := 0; g < groups; g++ {
			// One source set per group, shared across its opt levels.
			srcs := make([]string, c.FuncsPerExe)
			for j := range srcs {
				srcs[j] = RandomFunc(fmt.Sprintf("fn_g%d_%d", g, j),
					c.Seed*1_000_003+int64(g)*997+int64(j),
					GenConfig{Stmts: c.Stmts, Calls: true})
			}
			src := strings.Join(srcs, "\n")
			for oi, opt := range c.OptLevels {
				fut := make(chan futureT, 1)
				futures <- fut // blocks while the window is full
				sem <- struct{}{}
				go func(g, oi int, opt tinyc.OptLevel) {
					defer func() { <-sem }()
					name := fmt.Sprintf("g%05d_o%d", g, opt)
					exe, err := buildCampaignExe(name, src, opt, c.Seed*7919+int64(g)*13+int64(oi))
					fut <- futureT{exe: exe, opt: opt, err: err}
				}(g, oi, opt)
			}
		}
	}()

	total := 0
	for fut := range futures {
		r := <-fut
		if r.err != nil {
			// Drain remaining futures so the producer goroutine exits.
			go func() {
				for f := range futures {
					<-f
				}
			}()
			return total, r.err
		}
		if err := emit(r.exe, r.opt); err != nil {
			go func() {
				for f := range futures {
					<-f
				}
			}()
			return total, err
		}
		total += len(r.exe.Truth)
	}
	return total, nil
}

// buildCampaignExe compiles one campaign source set into a stripped
// executable with retained ground truth.
func buildCampaignExe(name, src string, opt tinyc.OptLevel, ctxSeed int64) (Executable, error) {
	img, err := tinyc.Build(src, tinyc.Config{Opt: opt, Seed: ctxSeed})
	if err != nil {
		return Executable{}, fmt.Errorf("corpus: campaign %s: %w", name, err)
	}
	f, err := bin.Read(img)
	if err != nil {
		return Executable{}, err
	}
	truth := make(map[uint32]string)
	for _, s := range f.Symbols {
		if s.IsFunc() {
			truth[s.Value] = s.Name
		}
	}
	stripped, err := bin.Strip(img)
	if err != nil {
		return Executable{}, err
	}
	return Executable{Name: name, Image: stripped, Truth: truth}, nil
}
