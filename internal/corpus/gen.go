// Package corpus builds the evaluation test-bed of paper Section 5.1: a
// Context group (the same library function compiled into several
// executables under different compilation contexts), a Code-Change group
// (several versions of the same application, patched at source level), and
// a noise group of unrelated functions — all as stripped ELF executables
// with ground truth retained on the side.
package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// GenConfig bounds the random function generator.
type GenConfig struct {
	// Stmts is the approximate number of statements to generate; control
	// flow multiplies the resulting basic-block count.
	Stmts int
	// Calls enables generating calls to external library functions.
	Calls bool
}

var externFuncs = []struct {
	name  string
	arity int
	str   bool // first argument is a format/string literal
}{
	{"printf", 2, true},
	{"fprintf", 3, true},
	{"strlen", 1, false},
	{"malloc", 1, false},
	{"memcpy", 3, false},
	{"fopen", 2, true},
	{"atoi", 1, false},
	{"abs", 1, false},
}

var strPoolWords = []string{
	"result: %d", "error %d at %s", "(%d) HELLO", "Cmd %d DONE", "w", "r",
	"overflow", "usage: %s", "%d/%d bytes", "done", "retry %d", "fatal: %s",
}

// generator produces random TinyC statements over a fixed symbol pool.
type generator struct {
	rng      *rand.Rand
	cfg      GenConfig
	vars     []string
	budget   int
	sb       *strings.Builder
	loopVars []string // loop counters; inner statements avoid assigning them
}

// RandomFunc generates the source of one random function with the given
// name and seed. Functions with larger cfg.Stmts develop proportionally
// more basic blocks.
func RandomFunc(name string, seed int64, cfg GenConfig) string {
	if cfg.Stmts <= 0 {
		cfg.Stmts = 30
	}
	g := &generator{
		rng:    rand.New(rand.NewSource(seed)),
		cfg:    cfg,
		budget: cfg.Stmts,
		sb:     &strings.Builder{},
	}
	params := []string{"a", "b", "s"}
	fmt.Fprintf(g.sb, "int %s(int a, int b, char *s) {\n", name)
	g.vars = append(g.vars, params...)
	nLocals := 2 + g.rng.Intn(4)
	for i := 0; i < nLocals; i++ {
		v := fmt.Sprintf("v%d", i)
		fmt.Fprintf(g.sb, "\tint %s = %d;\n", v, g.rng.Intn(100))
		g.vars = append(g.vars, v)
	}
	for g.budget > 0 {
		g.stmt(1)
	}
	fmt.Fprintf(g.sb, "\treturn %s;\n}\n", g.pick())
	return g.sb.String()
}

func (g *generator) pick() string {
	return g.vars[g.rng.Intn(len(g.vars))]
}

// pickAssignable picks a variable that is not an active loop counter, so
// generated loops terminate (the emulator-based differential tests execute
// these programs).
func (g *generator) pickAssignable() string {
	for tries := 0; tries < 8; tries++ {
		v := g.pick()
		bad := false
		for _, lv := range g.loopVars {
			if v == lv {
				bad = true
				break
			}
		}
		if !bad {
			return v
		}
	}
	return g.vars[0]
}

func (g *generator) indent(level int) {
	for i := 0; i <= level; i++ {
		g.sb.WriteByte('\t')
	}
}

// expr produces a random arithmetic expression of bounded depth.
func (g *generator) expr(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		if g.rng.Intn(3) == 0 {
			return fmt.Sprintf("%d", g.rng.Intn(64))
		}
		return g.pick()
	}
	ops := []string{"+", "-", "*", "/", "%"}
	op := ops[g.rng.Intn(len(ops))]
	right := g.expr(depth - 1)
	if op == "/" || op == "%" {
		// Avoid dividing by an arbitrary subexpression; keep a nonzero
		// literal divisor.
		right = fmt.Sprintf("%d", 1+g.rng.Intn(16))
	}
	return fmt.Sprintf("%s %s %s", g.expr(depth-1), op, right)
}

func (g *generator) cond() string {
	cmps := []string{"==", "!=", "<", "<=", ">", ">="}
	c := fmt.Sprintf("%s %s %s", g.pick(), cmps[g.rng.Intn(len(cmps))], g.expr(1))
	switch g.rng.Intn(4) {
	case 0:
		c = fmt.Sprintf("%s && %s %s %d", c, g.pick(), cmps[g.rng.Intn(len(cmps))], g.rng.Intn(32))
	case 1:
		c = fmt.Sprintf("%s || %s == %d", c, g.pick(), g.rng.Intn(8))
	}
	return c
}

func (g *generator) call(level int) {
	ex := externFuncs[g.rng.Intn(len(externFuncs))]
	var args []string
	for i := 0; i < ex.arity; i++ {
		if i == 0 && ex.str {
			args = append(args, fmt.Sprintf("%q", strPoolWords[g.rng.Intn(len(strPoolWords))]))
			continue
		}
		args = append(args, g.pick())
	}
	g.indent(level)
	if g.rng.Intn(2) == 0 {
		fmt.Fprintf(g.sb, "%s = %s(%s);\n", g.pickAssignable(), ex.name, strings.Join(args, ", "))
	} else {
		fmt.Fprintf(g.sb, "%s(%s);\n", ex.name, strings.Join(args, ", "))
	}
}

func (g *generator) stmt(level int) {
	g.budget--
	if level > 4 {
		g.assign(level)
		return
	}
	n := g.rng.Intn(10)
	switch {
	case n < 4:
		g.assign(level)
	case n < 6:
		// if / if-else chain
		g.indent(level)
		fmt.Fprintf(g.sb, "if (%s) {\n", g.cond())
		g.stmts(level+1, 1+g.rng.Intn(3))
		if g.rng.Intn(2) == 0 {
			g.indent(level)
			g.sb.WriteString("} else {\n")
			g.stmts(level+1, 1+g.rng.Intn(3))
		}
		g.indent(level)
		g.sb.WriteString("}\n")
	case n < 7:
		// bounded loop: a for-loop counts up, a while-loop counts a fresh
		// bounded counter down; neither loop variable is reassigned inside.
		v := g.pickAssignable()
		isFor := g.rng.Intn(2) == 0
		g.indent(level)
		if isFor {
			fmt.Fprintf(g.sb, "for (%s = 0; %s < %d; %s = %s + 1) {\n",
				v, v, 2+g.rng.Intn(30), v, v)
		} else {
			fmt.Fprintf(g.sb, "%s = %d;\n", v, 2+g.rng.Intn(30))
			g.indent(level)
			fmt.Fprintf(g.sb, "while (%s > 0) {\n", v)
		}
		g.loopVars = append(g.loopVars, v)
		g.stmts(level+1, 1+g.rng.Intn(3))
		if g.rng.Intn(3) == 0 {
			g.indent(level + 1)
			// A conditional continue in a while loop would skip the
			// decrement; only break is safe in both forms.
			fmt.Fprintf(g.sb, "if (%s == %d) { break; }\n", g.pickAssignable(), g.rng.Intn(16))
		}
		if !isFor {
			g.indent(level + 1)
			fmt.Fprintf(g.sb, "%s = %s - 1;\n", v, v)
		}
		g.loopVars = g.loopVars[:len(g.loopVars)-1]
		g.indent(level)
		g.sb.WriteString("}\n")
	case n < 8:
		// switch over a variable: dense consecutive cases so that
		// table-preferring contexts lower it to a jump table, the
		// layout-variance source the paper highlights.
		v := g.pick()
		g.indent(level)
		fmt.Fprintf(g.sb, "switch (%s %% %d) {\n", v, 5+g.rng.Intn(4))
		nCases := 4 + g.rng.Intn(3)
		for ci := 0; ci < nCases; ci++ {
			g.indent(level)
			fmt.Fprintf(g.sb, "case %d:\n", ci)
			g.stmts(level+1, 1+g.rng.Intn(2))
		}
		if g.rng.Intn(2) == 0 {
			g.indent(level)
			g.sb.WriteString("default:\n")
			g.stmts(level+1, 1)
		}
		g.indent(level)
		g.sb.WriteString("}\n")
	case n < 9 && g.cfg.Calls:
		g.call(level)
	default:
		g.assign(level)
	}
}

func (g *generator) stmts(level, n int) {
	for i := 0; i < n; i++ {
		g.budget--
		g.assign(level)
	}
}

func (g *generator) assign(level int) {
	g.indent(level)
	fmt.Fprintf(g.sb, "%s = %s;\n", g.pickAssignable(), g.expr(1+g.rng.Intn(2)))
}
