package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/bin"
	"repro/internal/tinyc"
)

// Executable is one stripped binary of the test-bed plus its retained
// ground truth (which the classifier never sees).
type Executable struct {
	Name  string
	Image []byte            // stripped ELF
	Truth map[uint32]string // function address -> source-level name
}

// Corpus is the whole test-bed.
type Corpus struct {
	Exes []*Executable
}

// NumFunctions returns the total ground-truth function count.
func (c *Corpus) NumFunctions() int {
	n := 0
	for _, e := range c.Exes {
		n += len(e.Truth)
	}
	return n
}

// BuildConfig sizes the test-bed.
type BuildConfig struct {
	Seed int64

	// Context group: executables embedding the same library function
	// compiled under different contexts (paper: Coreutils + a shared
	// parsing helper).
	ContextCopies int

	// Code-Change group: versions of the same application function with
	// local source patches (paper: wget 1.10/1.12/1.14).
	Versions int

	// NoiseExes are executables of only unrelated functions.
	NoiseExes int

	// FuncsPerExe is the number of random filler functions per executable.
	FuncsPerExe int

	// TargetStmts is the statement budget of the query functions (the
	// library and app functions); FillerStmts of the noise functions.
	TargetStmts int
	FillerStmts int

	// Opt is the optimization level of the whole corpus (the paper's
	// controlled stage compiles everything with the same default; O2).
	Opt tinyc.OptLevel
}

// DefaultBuildConfig returns a laptop-scale test-bed shape.
func DefaultBuildConfig() BuildConfig {
	return BuildConfig{
		Seed:          1,
		ContextCopies: 4,
		Versions:      3,
		NoiseExes:     4,
		FuncsPerExe:   6,
		TargetStmts:   60,
		FillerStmts:   25,
		Opt:           tinyc.O2,
	}
}

// LibFuncName and AppFuncName are the ground-truth names of the two query
// functions planted across the corpus.
const (
	LibFuncName = "quotearg_buffer"
	AppFuncName = "getftp"
)

// Build constructs the test-bed.
func Build(cfg BuildConfig) (*Corpus, error) {
	if cfg.ContextCopies == 0 && cfg.Versions == 0 && cfg.NoiseExes == 0 {
		cfg = DefaultBuildConfig()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &Corpus{}
	libSrc := RandomFunc(LibFuncName, cfg.Seed*7+3, GenConfig{Stmts: cfg.TargetStmts, Calls: true})

	mkExe := func(name string, sources []string, ctxSeed int64) error {
		src := strings.Join(sources, "\n")
		img, err := tinyc.Build(src, tinyc.Config{Opt: cfg.Opt, Seed: ctxSeed})
		if err != nil {
			return fmt.Errorf("corpus: %s: %w", name, err)
		}
		f, err := bin.Read(img)
		if err != nil {
			return err
		}
		truth := make(map[uint32]string)
		for _, s := range f.Symbols {
			if s.IsFunc() {
				truth[s.Value] = s.Name
			}
		}
		stripped, err := bin.Strip(img)
		if err != nil {
			return err
		}
		c.Exes = append(c.Exes, &Executable{Name: name, Image: stripped, Truth: truth})
		return nil
	}

	fillers := func(exe string, n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = RandomFunc(fmt.Sprintf("f_%s_%d", exe, i), rng.Int63(),
				GenConfig{Stmts: cfg.FillerStmts, Calls: true})
		}
		return out
	}

	// Context group.
	for i := 0; i < cfg.ContextCopies; i++ {
		name := fmt.Sprintf("ctx%d", i)
		srcs := append([]string{libSrc}, fillers(name, cfg.FuncsPerExe)...)
		if err := mkExe(name, srcs, 1000+int64(i)*17); err != nil {
			return nil, err
		}
	}

	// Code-change group: version v of the app function, each also in its
	// own context.
	for v := 0; v < cfg.Versions; v++ {
		name := fmt.Sprintf("appv%d", v)
		appSrc := VersionedFunc(AppFuncName, cfg.Seed*13+5, v, 8, cfg.TargetStmts/8)
		srcs := append([]string{appSrc}, fillers(name, cfg.FuncsPerExe)...)
		if err := mkExe(name, srcs, 2000+int64(v)*29); err != nil {
			return nil, err
		}
	}

	// Noise group. Each noise executable carries ordinary fillers plus
	// two hard negatives: a query-sized random function, and a "sibling"
	// that shares a minority of its source chunks with the app function
	// (code reuse without being the same function) — the near-misses that
	// separate precise classifiers from lenient ones.
	for i := 0; i < cfg.NoiseExes; i++ {
		name := fmt.Sprintf("noise%d", i)
		srcs := fillers(name, cfg.FuncsPerExe)
		srcs = append(srcs, RandomFunc(fmt.Sprintf("big_%s", name), rng.Int63(),
			GenConfig{Stmts: cfg.TargetStmts, Calls: true}))
		srcs = append(srcs, SiblingFunc(fmt.Sprintf("sib_%s", name),
			cfg.Seed*13+5, rng.Int63(), 8, cfg.TargetStmts/8))
		if err := mkExe(name, srcs, 3000+int64(i)*31); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// SiblingFunc builds a function that shares two chunks with the
// VersionedFunc family of sharedSeed but is otherwise unrelated — a hard
// negative modeling code reuse across different functions.
func SiblingFunc(name string, sharedSeed, ownSeed int64, chunks, stmtsPerChunk int) string {
	if chunks <= 0 {
		chunks = 6
	}
	if stmtsPerChunk <= 0 {
		stmtsPerChunk = 6
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "int %s(int a, int b, char *s) {\n", name)
	for i := 0; i < 6; i++ {
		fmt.Fprintf(&sb, "\tint v%d = %d;\n", i, i*3+1)
	}
	for i := 0; i < chunks; i++ {
		seed := ownSeed*100 + int64(i)
		if i == 2 || i == 5 {
			seed = sharedSeed*100 + int64(i) // chunks shared with the app family
		}
		sb.WriteString(Chunk(seed, stmtsPerChunk))
	}
	sb.WriteString("\treturn v1;\n}\n")
	return sb.String()
}

// VersionedFunc renders version `version` of a function assembled from
// independent chunks: version v inserts one new chunk and regenerates
// (patches) one existing chunk, leaving the rest untouched — the shape of
// a real local patch (most tracelets survive, a few change; paper
// Section 2.1).
func VersionedFunc(name string, seed int64, version, chunks, stmtsPerChunk int) string {
	if chunks <= 0 {
		chunks = 6
	}
	if stmtsPerChunk <= 0 {
		stmtsPerChunk = 6
	}
	type chunk struct {
		seed int64
	}
	plan := make([]chunk, chunks)
	for i := range plan {
		plan[i] = chunk{seed: seed*100 + int64(i)}
	}
	// Apply cumulative patches for each version step.
	for v := 1; v <= version; v++ {
		modIdx := (v * 3) % len(plan)
		plan[modIdx].seed = seed*100 + int64(modIdx) + int64(v)*10000
		insIdx := (v * 7) % (len(plan) + 1)
		newChunk := chunk{seed: seed*1000 + int64(v)}
		plan = append(plan[:insIdx], append([]chunk{newChunk}, plan[insIdx:]...)...)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "int %s(int a, int b, char *s) {\n", name)
	for i := 0; i < 6; i++ {
		fmt.Fprintf(&sb, "\tint v%d = %d;\n", i, i*3+1)
	}
	for _, ch := range plan {
		sb.WriteString(Chunk(ch.seed, stmtsPerChunk))
	}
	sb.WriteString("\treturn v0;\n}\n")
	return sb.String()
}

// Chunk renders a deterministic statement chunk over the fixed variable
// pool (a, b, s, v0..v5), suitable for insertion into VersionedFunc
// bodies.
func Chunk(seed int64, stmts int) string {
	g := &generator{
		rng:    rand.New(rand.NewSource(seed)),
		cfg:    GenConfig{Stmts: stmts, Calls: true},
		budget: stmts,
		sb:     &strings.Builder{},
		vars:   []string{"a", "b", "s", "v0", "v1", "v2", "v3", "v4", "v5"},
	}
	for g.budget > 0 {
		g.stmt(1)
	}
	return g.sb.String()
}
