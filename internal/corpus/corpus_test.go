package corpus

import (
	"strings"
	"testing"

	"repro/internal/prep"
	"repro/internal/tinyc"
)

func TestRandomFuncCompilesEverywhere(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		src := RandomFunc("rf", seed, GenConfig{Stmts: 40, Calls: true})
		for _, opt := range []tinyc.OptLevel{tinyc.O0, tinyc.O1, tinyc.O2, tinyc.Os} {
			img, err := tinyc.Build(src, tinyc.Config{Opt: opt, Seed: seed})
			if err != nil {
				t.Fatalf("seed %d %v: %v\n%s", seed, opt, err, src)
			}
			if _, err := prep.LiftImage(img); err != nil {
				t.Fatalf("seed %d %v: lift: %v", seed, opt, err)
			}
		}
	}
}

func TestRandomFuncDeterministic(t *testing.T) {
	a := RandomFunc("x", 5, GenConfig{Stmts: 30, Calls: true})
	b := RandomFunc("x", 5, GenConfig{Stmts: 30, Calls: true})
	if a != b {
		t.Error("RandomFunc not deterministic")
	}
	c := RandomFunc("x", 6, GenConfig{Stmts: 30, Calls: true})
	if a == c {
		t.Error("different seeds should differ")
	}
}

func TestRandomFuncGrowsBlocks(t *testing.T) {
	small := RandomFunc("s", 3, GenConfig{Stmts: 10})
	big := RandomFunc("b", 3, GenConfig{Stmts: 120})
	blocksOf := func(src string) int {
		img, err := tinyc.Build(src, tinyc.Config{Opt: tinyc.O2, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		fns, err := prep.LiftImage(img)
		if err != nil {
			t.Fatal(err)
		}
		return fns[0].NumBlocks()
	}
	sb, bb := blocksOf(small), blocksOf(big)
	if bb <= sb {
		t.Errorf("bigger budget should give more blocks: %d vs %d", sb, bb)
	}
	if bb < 20 {
		t.Errorf("120-stmt function has only %d blocks", bb)
	}
}

func TestVersionedFuncPatchesLocally(t *testing.T) {
	v0 := VersionedFunc("app", 9, 0, 8, 6)
	v1 := VersionedFunc("app", 9, 1, 8, 6)
	v2 := VersionedFunc("app", 9, 2, 8, 6)
	if v0 == v1 || v1 == v2 {
		t.Fatal("versions should differ")
	}
	// Most lines of v0 must survive into v1 (a local patch, not a
	// rewrite).
	lines0 := strings.Split(v0, "\n")
	in1 := map[string]int{}
	for _, l := range strings.Split(v1, "\n") {
		in1[l]++
	}
	kept := 0
	for _, l := range lines0 {
		if in1[l] > 0 {
			in1[l]--
			kept++
		}
	}
	ratio := float64(kept) / float64(len(lines0))
	if ratio < 0.7 {
		t.Errorf("only %.0f%% of v0 lines survive into v1", ratio*100)
	}
	// All versions must compile.
	for i, src := range []string{v0, v1, v2} {
		if _, err := tinyc.Build(src, tinyc.Config{Opt: tinyc.O2, Seed: 4}); err != nil {
			t.Fatalf("v%d: %v\n%s", i, err, src)
		}
	}
}

func TestBuildCorpus(t *testing.T) {
	cfg := BuildConfig{
		Seed:          2,
		ContextCopies: 2,
		Versions:      2,
		NoiseExes:     1,
		FuncsPerExe:   2,
		TargetStmts:   30,
		FillerStmts:   12,
		Opt:           tinyc.O2,
	}
	c, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Exes) != 5 {
		t.Fatalf("got %d executables, want 5", len(c.Exes))
	}
	libCount, appCount := 0, 0
	for _, e := range c.Exes {
		if len(e.Truth) == 0 {
			t.Errorf("%s has no ground truth", e.Name)
		}
		fns, err := prep.LiftImage(e.Image)
		if err != nil {
			t.Fatalf("%s: lift: %v", e.Name, err)
		}
		// Stripped: every lifted name is synthetic but must correspond to
		// a ground-truth address.
		for _, fn := range fns {
			if _, ok := e.Truth[fn.Addr]; !ok {
				t.Errorf("%s: lifted function at %#x missing from truth", e.Name, fn.Addr)
			}
		}
		for _, name := range e.Truth {
			switch name {
			case LibFuncName:
				libCount++
			case AppFuncName:
				appCount++
			}
		}
	}
	if libCount != 2 {
		t.Errorf("library function planted %d times, want 2", libCount)
	}
	if appCount != 2 {
		t.Errorf("app function planted %d times, want 2", appCount)
	}
	if c.NumFunctions() < 5*3 {
		t.Errorf("corpus has only %d functions", c.NumFunctions())
	}
}

func TestChunkDeterministic(t *testing.T) {
	if Chunk(3, 5) != Chunk(3, 5) {
		t.Error("Chunk not deterministic")
	}
	if Chunk(3, 5) == Chunk(4, 5) {
		t.Error("different chunk seeds should differ")
	}
}
