package corpus

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/tinyc"
)

func TestCampaignStreamsDeterministically(t *testing.T) {
	cfg := CampaignConfig{
		Seed:        3,
		Funcs:       24,
		FuncsPerExe: 4,
		Stmts:       6,
		OptLevels:   []tinyc.OptLevel{tinyc.O0, tinyc.O2},
		Workers:     2,
	}
	if got := cfg.NumExes(); got != 6 {
		t.Fatalf("NumExes = %d, want 6 (3 groups x 2 opt levels)", got)
	}
	collect := func() ([]Executable, []tinyc.OptLevel, int) {
		var exes []Executable
		var opts []tinyc.OptLevel
		n, err := RunCampaign(cfg, func(e Executable, opt tinyc.OptLevel) error {
			exes = append(exes, e)
			opts = append(opts, opt)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return exes, opts, n
	}
	exes, opts, n := collect()
	if len(exes) != 6 {
		t.Fatalf("emitted %d executables, want 6", len(exes))
	}
	if n < cfg.Funcs {
		t.Errorf("campaign reported %d functions, want >= %d", n, cfg.Funcs)
	}
	// Emission order is deterministic: group-major, opt levels in order.
	wantOpts := []tinyc.OptLevel{tinyc.O0, tinyc.O2, tinyc.O0, tinyc.O2, tinyc.O0, tinyc.O2}
	if !reflect.DeepEqual(opts, wantOpts) {
		t.Errorf("opt order = %v, want %v", opts, wantOpts)
	}
	// Same group at two opt levels shares ground-truth names but not code.
	names := func(e Executable) map[string]bool {
		m := make(map[string]bool)
		for _, n := range e.Truth {
			m[n] = true
		}
		return m
	}
	if !reflect.DeepEqual(names(exes[0]), names(exes[1])) {
		t.Errorf("group 0 truth diverges across opt levels: %v vs %v",
			names(exes[0]), names(exes[1]))
	}
	if string(exes[0].Image) == string(exes[1].Image) {
		t.Error("O0 and O2 builds of the same group are byte-identical")
	}
	// Reruns reproduce the corpus byte for byte.
	exes2, _, _ := collect()
	for i := range exes {
		if exes[i].Name != exes2[i].Name || string(exes[i].Image) != string(exes2[i].Image) {
			t.Fatalf("rerun diverged at exe %d (%s vs %s)", i, exes[i].Name, exes2[i].Name)
		}
	}
}

func TestCampaignEmitErrorAborts(t *testing.T) {
	cfg := CampaignConfig{Seed: 1, Funcs: 40, FuncsPerExe: 4, Stmts: 5,
		OptLevels: []tinyc.OptLevel{tinyc.O0}, Workers: 2}
	boom := errors.New("stop")
	calls := 0
	_, err := RunCampaign(cfg, func(Executable, tinyc.OptLevel) error {
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if calls != 2 {
		t.Errorf("emit called %d times after abort, want 2", calls)
	}
}
