package rpc

import (
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDelayBackoffShape(t *testing.T) {
	p := &RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond,
		Jitter: -1} // deterministic
	for i, want := range []time.Duration{10, 20, 40, 80, 80, 80} {
		if got := p.delay(i, 0); got != want*time.Millisecond {
			t.Errorf("delay(%d) = %v, want %v", i, got, want*time.Millisecond)
		}
	}
	// Retry-After floors the backoff.
	if got := p.delay(0, 500*time.Millisecond); got != 500*time.Millisecond {
		t.Errorf("delay with Retry-After = %v, want 500ms", got)
	}
	// Jitter stays within [1-jitter, 1] of nominal.
	pj := &RetryPolicy{BaseDelay: 100 * time.Millisecond, Jitter: 0.5,
		randFloat: func() float64 { return 1.0 }}
	if got := pj.delay(0, 0); got != 50*time.Millisecond {
		t.Errorf("full-jitter delay = %v, want 50ms", got)
	}
	pj.randFloat = func() float64 { return 0.0 }
	if got := pj.delay(0, 0); got != 100*time.Millisecond {
		t.Errorf("zero-jitter delay = %v, want 100ms", got)
	}
}

func TestParseRetryAfter(t *testing.T) {
	if d := parseRetryAfter("3"); d != 3*time.Second {
		t.Errorf("seconds form = %v", d)
	}
	if d := parseRetryAfter(""); d != 0 {
		t.Errorf("empty = %v", d)
	}
	if d := parseRetryAfter("garbage"); d != 0 {
		t.Errorf("garbage = %v", d)
	}
	future := time.Now().Add(10 * time.Second).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(future); d < 5*time.Second || d > 10*time.Second {
		t.Errorf("http-date form = %v", d)
	}
}

// TestNilCountersSafe pins the nil-Stats contract: a Conn with no
// Counters sink must account nothing and crash nowhere.
func TestNilCountersSafe(t *testing.T) {
	var s *Counters
	s.addAttempt()
	s.addRetry()
	s.addHedge()
	s.record(AttemptRecord{})
	if got := s.Snapshot(); got.Attempts != 0 || got.Recent != nil {
		t.Errorf("nil Counters snapshot = %+v, want zero", got)
	}
}

// TestBreakerHalfOpenConcurrentProbe pins the half-open contract under
// concurrency: when the cooldown lapses, exactly ONE caller wins the
// probe slot per round — the losers fast-fail with ErrCircuitOpen
// ("probe in flight") instead of stampeding the recovering server.
func TestBreakerHalfOpenConcurrentProbe(t *testing.T) {
	b := &Breaker{Threshold: 1, Cooldown: 10 * time.Millisecond}
	b.Record(errors.New("boom")) // trip it open
	if b.State() != "open" {
		t.Fatal("breaker not open after threshold failures")
	}
	time.Sleep(15 * time.Millisecond) // cooldown lapsed: half-open

	const callers = 32
	var admitted, fastFailed atomic.Int32
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			err := b.Allow()
			switch {
			case err == nil:
				admitted.Add(1)
			case errors.Is(err, ErrCircuitOpen):
				fastFailed.Add(1)
			default:
				t.Errorf("unexpected Allow error: %v", err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := admitted.Load(); got != 1 {
		t.Fatalf("%d concurrent callers admitted through the half-open breaker, want exactly 1", got)
	}
	if got := fastFailed.Load(); got != callers-1 {
		t.Fatalf("%d callers fast-failed, want %d", got, callers-1)
	}

	// A failed probe re-opens: the next wave (post-cooldown) again admits
	// exactly one.
	b.Record(errors.New("still down"))
	if b.State() != "open" {
		t.Fatal("breaker closed after a failed probe")
	}
	time.Sleep(15 * time.Millisecond)
	admitted.Store(0)
	var wg2 sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			if b.Allow() == nil {
				admitted.Add(1)
			}
		}()
	}
	wg2.Wait()
	if got := admitted.Load(); got != 1 {
		t.Fatalf("after failed probe: %d admitted, want exactly 1", got)
	}

	// A successful probe closes the breaker for everyone.
	b.Record(nil)
	if b.State() != "closed" {
		t.Fatal("breaker not closed after a successful probe")
	}
	var denied atomic.Int32
	var wg3 sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg3.Add(1)
		go func() {
			defer wg3.Done()
			if b.Allow() != nil {
				denied.Add(1)
			}
		}()
	}
	wg3.Wait()
	if got := denied.Load(); got != 0 {
		t.Fatalf("closed breaker denied %d callers", got)
	}
}
