package rpc

import (
	"net/http"
	"testing"
	"time"
)

func TestDelayBackoffShape(t *testing.T) {
	p := &RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond,
		Jitter: -1} // deterministic
	for i, want := range []time.Duration{10, 20, 40, 80, 80, 80} {
		if got := p.delay(i, 0); got != want*time.Millisecond {
			t.Errorf("delay(%d) = %v, want %v", i, got, want*time.Millisecond)
		}
	}
	// Retry-After floors the backoff.
	if got := p.delay(0, 500*time.Millisecond); got != 500*time.Millisecond {
		t.Errorf("delay with Retry-After = %v, want 500ms", got)
	}
	// Jitter stays within [1-jitter, 1] of nominal.
	pj := &RetryPolicy{BaseDelay: 100 * time.Millisecond, Jitter: 0.5,
		randFloat: func() float64 { return 1.0 }}
	if got := pj.delay(0, 0); got != 50*time.Millisecond {
		t.Errorf("full-jitter delay = %v, want 50ms", got)
	}
	pj.randFloat = func() float64 { return 0.0 }
	if got := pj.delay(0, 0); got != 100*time.Millisecond {
		t.Errorf("zero-jitter delay = %v, want 100ms", got)
	}
}

func TestParseRetryAfter(t *testing.T) {
	if d := parseRetryAfter("3"); d != 3*time.Second {
		t.Errorf("seconds form = %v", d)
	}
	if d := parseRetryAfter(""); d != 0 {
		t.Errorf("empty = %v", d)
	}
	if d := parseRetryAfter("garbage"); d != 0 {
		t.Errorf("garbage = %v", d)
	}
	future := time.Now().Add(10 * time.Second).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(future); d < 5*time.Second || d > 10*time.Second {
		t.Errorf("http-date form = %v", d)
	}
}

// TestNilCountersSafe pins the nil-Stats contract: a Conn with no
// Counters sink must account nothing and crash nowhere.
func TestNilCountersSafe(t *testing.T) {
	var s *Counters
	s.addAttempt()
	s.addRetry()
	s.addHedge()
	s.record(AttemptRecord{})
	if got := s.Snapshot(); got.Attempts != 0 || got.Recent != nil {
		t.Errorf("nil Counters snapshot = %+v, want zero", got)
	}
}
