package rpc

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// RetryPolicy shapes the retry loop. Zero-valued fields take the
// documented defaults, so &RetryPolicy{} is the default policy.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (default 4; values < 1 mean the default).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// retry (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 2s).
	MaxDelay time.Duration
	// Jitter is the fraction of each delay that is randomized, 0..1
	// (default 0.5: delay is 50–100% of nominal). Negative disables
	// jitter entirely.
	Jitter float64
	// Budget, when positive, bounds the total time spent across all
	// attempts and backoffs; once exceeded, the last error is returned
	// rather than sleeping again.
	Budget time.Duration

	// randFloat is the jitter source (test seam; default math/rand).
	randFloat func() float64
}

// DefaultRetryPolicy returns the policy client.New arms: 4 attempts,
// 50ms base delay doubling to a 2s cap, half-width jitter, no overall
// budget (the caller's context is the budget).
func DefaultRetryPolicy() *RetryPolicy {
	return &RetryPolicy{}
}

func (p *RetryPolicy) maxAttempts() int {
	if p.MaxAttempts < 1 {
		return 4
	}
	return p.MaxAttempts
}

// delay computes the backoff before retry number retry (0-based).
// A server-provided Retry-After floors the result: the server knows its
// own saturation horizon better than our exponential guess.
func (p *RetryPolicy) delay(retry int, retryAfter time.Duration) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxD := p.MaxDelay
	if maxD <= 0 {
		maxD = 2 * time.Second
	}
	d := base << uint(retry)
	if d > maxD || d <= 0 { // <= 0: shift overflow
		d = maxD
	}
	jitter := p.Jitter
	if jitter == 0 {
		jitter = 0.5
	}
	if jitter > 0 {
		if jitter > 1 {
			jitter = 1
		}
		rf := p.randFloat
		if rf == nil {
			rf = rand.Float64
		}
		// Uniform in [1-jitter, 1] of nominal: never longer than the cap,
		// decorrelated across clients.
		d = time.Duration(float64(d) * (1 - jitter*rf()))
	}
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// retryable reports whether err is worth another attempt: saturation
// (429), server failure (5xx), or a transport error. Client mistakes
// (4xx) and context ends are final.
func retryable(err error) bool {
	var te *TransportError
	if errors.As(err, &te) {
		return true
	}
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Status == http.StatusTooManyRequests || ae.Status >= 500
	}
	return false
}

// retryAfterOf extracts the server's Retry-After hint from err, if any.
func retryAfterOf(err error) time.Duration {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.RetryAfter
	}
	return 0
}

// withRetry drives attempts of f under the policy: breaker check,
// attempt, classify, back off (honoring Retry-After), repeat. A done
// context is never retried past — the in-flight attempt's error (or the
// context's) returns immediately.
func (c *Conn) withRetry(ctx context.Context, f func(context.Context) ([]byte, error)) ([]byte, error) {
	p := c.Retry
	if p == nil {
		if err := c.Breaker.Allow(); err != nil {
			return nil, err
		}
		data, err := f(ctx)
		c.Breaker.Record(err)
		return data, err
	}
	var deadline time.Time
	if p.Budget > 0 {
		deadline = time.Now().Add(p.Budget)
	}
	var lastErr error
	for try := 0; try < p.maxAttempts(); try++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return nil, lastErr
			}
			return nil, err
		}
		if err := c.Breaker.Allow(); err != nil {
			return nil, err
		}
		data, err := f(ctx)
		c.Breaker.Record(err)
		if err == nil {
			return data, nil
		}
		lastErr = err
		if !retryable(err) || ctx.Err() != nil {
			return nil, err
		}
		if try == p.maxAttempts()-1 {
			break
		}
		d := p.delay(try, retryAfterOf(err))
		if !deadline.IsZero() && time.Now().Add(d).After(deadline) {
			break // budget spent: sleeping again cannot pay off
		}
		c.Stats.addRetry()
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, lastErr
		}
	}
	return nil, lastErr
}

// hedged wraps f so that a slow first attempt is raced by a duplicate
// after HedgeDelay; the first success wins and cancels the other. If
// both fail, the first failure is reported. Hedging a failed-fast
// primary is pointless, so an error before the hedge timer just returns.
// f's bool argument marks the hedge duplicate, so its round trip is
// labeled as such on the wire and in the attempt records.
func (c *Conn) hedged(f func(context.Context, bool) ([]byte, error)) func(context.Context) ([]byte, error) {
	if c.HedgeDelay <= 0 {
		return func(ctx context.Context) ([]byte, error) { return f(ctx, false) }
	}
	return func(ctx context.Context) ([]byte, error) {
		hctx, cancel := context.WithCancel(ctx)
		defer cancel()
		type outcome struct {
			data []byte
			err  error
		}
		ch := make(chan outcome, 2) // buffered: the losing goroutine never blocks
		launch := func(isHedge bool) {
			go func() {
				data, err := f(hctx, isHedge)
				ch <- outcome{data, err}
			}()
		}
		launch(false)
		inFlight, hedgedNow := 1, false
		timer := time.NewTimer(c.HedgeDelay)
		defer timer.Stop()
		var firstErr error
		for {
			select {
			case o := <-ch:
				inFlight--
				if o.err == nil {
					return o.data, nil
				}
				if firstErr == nil {
					firstErr = o.err
				}
				if inFlight == 0 {
					return nil, firstErr
				}
			case <-timer.C:
				if !hedgedNow {
					hedgedNow = true
					c.Stats.addHedge()
					launch(true)
					inFlight++
				}
			case <-ctx.Done():
				if firstErr != nil {
					return nil, firstErr
				}
				return nil, ctx.Err()
			}
		}
	}
}

// ErrCircuitOpen is returned (wrapped) while the breaker is open.
var ErrCircuitOpen = errors.New("circuit breaker open")

// Breaker is a consecutive-failure circuit breaker: after Threshold
// failures in a row it opens and fails requests instantly for Cooldown,
// then lets a single probe through (half-open); the probe's outcome
// closes or re-opens it. A nil *Breaker is a no-op. Saturation (429)
// does not trip the breaker — a shedding server is alive, and backoff
// is the right response, not lockout. Context cancellation does not
// trip it either: the caller gave up, the server did not fail.
type Breaker struct {
	// Threshold is the consecutive-failure count that opens the breaker
	// (default 5; values < 1 mean the default).
	Threshold int
	// Cooldown is how long the breaker stays open before allowing a probe
	// (default 1s).
	Cooldown time.Duration

	mu       sync.Mutex
	fails    int
	state    breakerState
	openedAt time.Time
	probing  bool
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
)

func (b *Breaker) threshold() int {
	if b.Threshold < 1 {
		return 5
	}
	return b.Threshold
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown <= 0 {
		return time.Second
	}
	return b.Cooldown
}

// Allow reports whether a request may proceed: nil when closed or when
// it wins the half-open probe slot, an ErrCircuitOpen-wrapped error
// otherwise.
func (b *Breaker) Allow() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerClosed {
		return nil
	}
	if since := time.Since(b.openedAt); since >= b.cooldown() {
		if !b.probing {
			b.probing = true // half-open: exactly one probe at a time
			return nil
		}
		return fmt.Errorf("%w: probe in flight", ErrCircuitOpen)
	}
	return fmt.Errorf("%w: retry in %v", ErrCircuitOpen, b.cooldown()-time.Since(b.openedAt))
}

// Record feeds a request outcome into the breaker.
func (b *Breaker) Record(err error) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	failure := err != nil && !errors.Is(err, ErrSaturated) &&
		!errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
	if failure {
		var ae *APIError
		if errors.As(err, &ae) && ae.Status < 500 && ae.Status != http.StatusTooManyRequests {
			failure = false // the caller's mistake, not the server's health
		}
	}
	if !failure {
		if err == nil {
			b.fails = 0
			b.state = breakerClosed
		}
		b.probing = false
		return
	}
	b.probing = false
	b.fails++
	if b.state == breakerOpen || b.fails >= b.threshold() {
		b.state = breakerOpen
		b.openedAt = time.Now()
	}
}

// State returns "closed" or "open" (for logs and tests).
func (b *Breaker) State() string {
	if b == nil {
		return "closed"
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerClosed {
		return "closed"
	}
	return "open"
}

// maxAttemptRecords bounds the attempt-record ring: enough to cover
// every round trip of a recent burst without growing with traffic.
const maxAttemptRecords = 64

// AttemptRecord describes one HTTP round trip: which logical request
// it belonged to (TraceID), which try it was (Attempt, Hedge) and how
// it ended. Retries and hedge duplicates each get their own record
// under the same trace ID — the client-side half of the end-to-end
// trace join.
type AttemptRecord struct {
	TraceID string  // trace ID shared by all attempts of one request
	Path    string  // request path, e.g. "/v1/search"
	Attempt int     // 0-based attempt number within the request
	Hedge   bool    // this round trip was the hedge duplicate
	Status  int     // HTTP status (0 when the transport failed)
	Err     string  // "" on success
	DurMS   float64 // round-trip wall time
}

// Counters accumulates resilience activity across the calls of one or
// more Conns. Every method no-ops on nil, so an untracked Conn pays one
// branch.
type Counters struct {
	attempts atomic.Uint64
	retries  atomic.Uint64
	hedges   atomic.Uint64

	mu      sync.Mutex
	recent  []AttemptRecord // ring of the last maxAttemptRecords attempts
	recNext int
	recFull bool
}

func (s *Counters) addAttempt() {
	if s == nil {
		return
	}
	s.attempts.Add(1)
}

func (s *Counters) addRetry() {
	if s == nil {
		return
	}
	s.retries.Add(1)
}

func (s *Counters) addHedge() {
	if s == nil {
		return
	}
	s.hedges.Add(1)
}

// record appends one finished round trip to the attempt ring.
func (s *Counters) record(rec AttemptRecord) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.recent == nil {
		s.recent = make([]AttemptRecord, maxAttemptRecords)
	}
	s.recent[s.recNext] = rec
	s.recNext++
	if s.recNext == len(s.recent) {
		s.recNext = 0
		s.recFull = true
	}
}

// recentCopy returns the ring's contents oldest-first.
func (s *Counters) recentCopy() []AttemptRecord {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.recFull {
		return append([]AttemptRecord(nil), s.recent[:s.recNext]...)
	}
	out := make([]AttemptRecord, 0, len(s.recent))
	out = append(out, s.recent[s.recNext:]...)
	out = append(out, s.recent[:s.recNext]...)
	return out
}

// Stats is a point-in-time copy of the resilience counters.
type Stats struct {
	Attempts uint64 // HTTP round trips started
	Retries  uint64 // backoff retries taken
	Hedges   uint64 // hedge requests launched

	// Recent holds the last attempts (oldest first, bounded ring): one
	// record per HTTP round trip with its trace ID and outcome.
	Recent []AttemptRecord
}

// Snapshot returns the cumulative resilience counters and the recent
// attempt records.
func (s *Counters) Snapshot() Stats {
	if s == nil {
		return Stats{}
	}
	return Stats{
		Attempts: s.attempts.Load(),
		Retries:  s.retries.Load(),
		Hedges:   s.hedges.Load(),
		Recent:   s.recentCopy(),
	}
}
