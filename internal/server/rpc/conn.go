// Package rpc is the resilient JSON-over-HTTP transport shared by every
// caller of a tracy server: the public Go client (internal/server/client)
// and the coordinator's intra-fleet shard RPC (internal/server). It owns
// the un-typed half of the client stack — structured errors,
// exponential-backoff retries honoring Retry-After, a consecutive-failure
// circuit breaker, opt-in hedging, and the per-attempt trace/record
// plumbing — with no dependency on the server's wire schema, so the
// server package itself can dial peers through it without an import
// cycle.
package rpc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// ErrSaturated is wrapped by errors returned when the server sheds load
// with 429; callers back off and retry (the default RetryPolicy already
// does): errors.Is(err, ErrSaturated).
var ErrSaturated = errors.New("server saturated")

// MaxErrBody bounds how much of an error response body is read: a
// misbehaving server cannot make the caller buffer an unbounded error.
const MaxErrBody = 1 << 16

// Attempt-identity headers stamped on every round trip, consumed by the
// server's observe middleware (internal/server re-exports them).
const (
	AttemptHeader = "X-Tracy-Attempt" // 0-based attempt number within one logical request
	HedgeHeader   = "X-Tracy-Hedge"   // "1" on the hedge duplicate
)

// APIError is a non-2xx reply decoded from the server's error body.
type APIError struct {
	Status     int           // HTTP status code
	Msg        string        // server-provided message
	RetryAfter time.Duration // parsed Retry-After header; 0 when absent
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server: %s (HTTP %d)", e.Msg, e.Status)
}

// Unwrap lets errors.Is(err, ErrSaturated) match 429 replies.
func (e *APIError) Unwrap() error {
	if e.Status == http.StatusTooManyRequests {
		return ErrSaturated
	}
	return nil
}

// TransportError wraps a failure to reach the server at all (connection
// refused/reset, DNS failure, broken response stream). Transport errors
// are always retryable.
type TransportError struct {
	Err error
}

func (e *TransportError) Error() string { return "transport: " + e.Err.Error() }
func (e *TransportError) Unwrap() error { return e.Err }

// parseRetryAfter reads a Retry-After header value: delta-seconds or an
// HTTP date. 0 means absent or unparseable.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// Conn dials one tracy server. The zero value of every policy field is
// safe: nil Retry means no retries, nil Breaker means no circuit
// breaking, zero HedgeDelay means no hedging, nil Stats means no attempt
// accounting. Fields are read per call, so a Conn may be rebuilt around
// a shared *Counters without losing history.
type Conn struct {
	// BaseURL is the server root, e.g. "http://localhost:8077".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client

	// Retry, when non-nil, retries saturated (429), server-failure (5xx),
	// and transport errors with exponential backoff and jitter. A context
	// that ends stops retrying immediately.
	Retry *RetryPolicy

	// Breaker, when non-nil, fails requests fast with ErrCircuitOpen
	// after a run of consecutive failures, probing again after a cooldown.
	Breaker *Breaker

	// HedgeDelay, when positive, arms hedging for DoHedged calls: if the
	// first attempt has not answered within this delay, a second identical
	// request races it and the first success wins.
	HedgeDelay time.Duration

	// Stats, when non-nil, accumulates attempt/retry/hedge counts and the
	// recent attempt-record ring across calls.
	Stats *Counters
}

// Do sends one JSON request (with the retry policy) and decodes the
// reply into out.
func (c *Conn) Do(ctx context.Context, method, path string, in, out any) error {
	return c.exec(ctx, method, path, in, out, false)
}

// DoHedged is Do with hedging armed: when HedgeDelay is positive, a slow
// first attempt is raced by a duplicate request.
func (c *Conn) DoHedged(ctx context.Context, method, path string, in, out any) error {
	return c.exec(ctx, method, path, in, out, true)
}

// exec is the shared request pipeline: marshal once, mint the logical
// request's trace ID, then run attempts through the optional hedging
// and retry layers. Every HTTP round trip — first try, backoff retry,
// hedge duplicate — carries the same trace ID in its traceparent header
// (with a fresh span ID per attempt) plus its attempt number and hedge
// flag, so the server's access log and flight recorder can tell the
// attempts of one logical request apart while still joining them.
func (c *Conn) exec(ctx context.Context, method, path string, in, out any, hedge bool) error {
	var payload []byte
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		payload = b
	}
	traceID := telemetry.NewTraceID()
	var seq atomic.Int64
	attempt := func(ctx context.Context, hedged bool) ([]byte, error) {
		n := int(seq.Add(1)) - 1 // 0-based attempt number within this request
		return c.attempt(ctx, method, path, payload, in != nil, attemptMeta{
			trace:   traceID,
			attempt: n,
			hedge:   hedged,
		})
	}
	run := func(ctx context.Context) ([]byte, error) { return attempt(ctx, false) }
	if hedge {
		run = c.hedged(attempt)
	}
	data, err := c.withRetry(ctx, run)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// attemptMeta is one round trip's trace identity.
type attemptMeta struct {
	trace   string
	attempt int
	hedge   bool
}

// attempt performs exactly one HTTP round trip and classifies the
// outcome: raw 200 body, *APIError (with parsed Retry-After), or
// *TransportError. Context errors come back unwrapped so the retry
// layer can tell "the caller gave up" from "the network failed".
// Every outcome lands in the attempt-record ring (Stats).
func (c *Conn) attempt(ctx context.Context, method, path string, payload []byte, hasBody bool, meta attemptMeta) ([]byte, error) {
	c.Stats.addAttempt()
	t0 := time.Now()
	rec := AttemptRecord{TraceID: meta.trace, Path: path, Attempt: meta.attempt, Hedge: meta.hedge}
	var body io.Reader
	if hasBody {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return nil, err
	}
	if hasBody {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set(telemetry.TraceparentHeader, telemetry.FormatTraceparent(meta.trace, telemetry.NewSpanID()))
	req.Header.Set(AttemptHeader, strconv.Itoa(meta.attempt))
	if meta.hedge {
		req.Header.Set(HedgeHeader, "1")
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			err = cerr
		} else {
			err = &TransportError{Err: err}
		}
		rec.Err = err.Error()
		rec.DurMS = msSince(t0)
		c.Stats.record(rec)
		return nil, err
	}
	defer resp.Body.Close()
	rec.Status = resp.StatusCode
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, MaxErrBody))
		// The server's error bodies are ErrorResponse JSON; fall back to
		// the raw body for proxies and panics that answer something else.
		var apiErr struct {
			Error string `json:"error"`
		}
		msg := strings.TrimSpace(string(data))
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		aerr := &APIError{
			Status:     resp.StatusCode,
			Msg:        msg,
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
		rec.Err = aerr.Error()
		rec.DurMS = msSince(t0)
		c.Stats.record(rec)
		return nil, aerr
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			err = cerr
		} else {
			err = &TransportError{Err: err}
		}
		rec.Err = err.Error()
		rec.DurMS = msSince(t0)
		c.Stats.record(rec)
		return nil, err
	}
	rec.DurMS = msSince(t0)
	c.Stats.record(rec)
	return data, nil
}

func msSince(t0 time.Time) float64 {
	return float64(time.Since(t0).Nanoseconds()) / 1e6
}
