package rpc

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestFailoverRaceFirstLegWins(t *testing.T) {
	var launched [2]atomic.Bool
	v, out := FailoverRace(context.Background(), 0, nil,
		func(context.Context) (int, error) { launched[0].Store(true); return 7, nil },
		func(context.Context) (int, error) { launched[1].Store(true); return 8, nil },
	)
	if v != 7 || out.Winner != 0 || out.Failovers != 0 || out.HedgeWon {
		t.Fatalf("clean first-leg win: v=%d outcome=%+v", v, out)
	}
	if launched[1].Load() {
		t.Error("reserve leg launched despite a healthy first leg")
	}
}

func TestFailoverRaceFailsOver(t *testing.T) {
	boom := errors.New("boom")
	v, out := FailoverRace(context.Background(), 0, nil,
		func(context.Context) (string, error) { return "", boom },
		func(context.Context) (string, error) { return "ok", nil },
	)
	if v != "ok" || out.Winner != 1 || out.Failovers != 1 || out.HedgeWon {
		t.Fatalf("failover win: v=%q outcome=%+v", v, out)
	}
	if !errors.Is(out.Errs[0], boom) {
		t.Errorf("leg 0 error not reported: %v", out.Errs)
	}
}

func TestFailoverRaceHedgeWins(t *testing.T) {
	hedges := 0
	slow := func(ctx context.Context) (string, error) {
		select {
		case <-time.After(5 * time.Second):
			return "slow", nil
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}
	t0 := time.Now()
	v, out := FailoverRace(context.Background(), 10*time.Millisecond, func() { hedges++ },
		slow,
		func(context.Context) (string, error) { return "hedged", nil },
	)
	if v != "hedged" || out.Winner != 1 || !out.HedgeWon {
		t.Fatalf("hedged win: v=%q outcome=%+v", v, out)
	}
	if out.Failovers != 0 {
		t.Errorf("hedge win counted %d failovers, want 0 (the slow leg never failed)", out.Failovers)
	}
	if hedges != 1 {
		t.Errorf("onHedge called %d times, want 1", hedges)
	}
	if took := time.Since(t0); took > time.Second {
		t.Errorf("hedged race took %v: it waited out the slow leg", took)
	}
}

func TestFailoverRaceHedgesAtMostOnce(t *testing.T) {
	// Three reserve legs, all slow: the hedge timer may launch only ONE
	// extra leg, so exactly two legs run.
	var launches atomic.Int32
	slow := func(ctx context.Context) (int, error) {
		launches.Add(1)
		<-ctx.Done()
		return 0, ctx.Err()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, out := FailoverRace(ctx, 5*time.Millisecond, nil, slow, slow, slow, slow)
	if out.Winner != -1 {
		t.Fatalf("all-slow race found a winner: %+v", out)
	}
	if n := launches.Load(); n != 2 {
		t.Fatalf("%d legs launched, want 2 (primary + one hedge)", n)
	}
}

func TestFailoverRaceAllFail(t *testing.T) {
	e1, e2 := errors.New("one"), errors.New("two")
	_, out := FailoverRace(context.Background(), 0, nil,
		func(context.Context) (int, error) { return 0, e1 },
		func(context.Context) (int, error) { return 0, e2 },
	)
	if out.Winner != -1 {
		t.Fatalf("all-failed race claims winner %d", out.Winner)
	}
	if !errors.Is(out.Errs[0], e1) || !errors.Is(out.Errs[1], e2) {
		t.Errorf("per-leg errors wrong: %v", out.Errs)
	}
}

func TestFailoverRaceContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	t0 := time.Now()
	_, out := FailoverRace(ctx, 0, nil,
		func(ctx context.Context) (int, error) { <-ctx.Done(); return 0, ctx.Err() },
	)
	if out.Winner != -1 {
		t.Fatalf("cancelled race claims winner %d", out.Winner)
	}
	if took := time.Since(t0); took > time.Second {
		t.Errorf("cancelled race returned after %v", took)
	}
}

func TestFailoverRaceNoLegs(t *testing.T) {
	v, out := FailoverRace[int](context.Background(), 0, nil)
	if v != 0 || out.Winner != -1 {
		t.Fatalf("empty race: v=%d outcome=%+v", v, out)
	}
}
