package rpc

import (
	"context"
	"time"
)

// FailoverRace drives an ordered list of interchangeable legs — the
// replicas of one shard, the coordinators of one service — to a single
// answer. Leg 0 launches immediately; every further leg is held in
// reserve and launched either when the newest in-flight leg fails
// (failover) or, when hedge is positive, when the race has gone
// unanswered for hedge (a hedged second leg racing a slow-but-alive
// primary). The first success wins and cancels the rest; at most one
// leg is ever launched by the timer, so a healthy fleet pays for at
// most one duplicate request per race.
//
// This is the group-level sibling of Conn.hedged, which races two
// attempts of the SAME connection: here every launch goes to the next
// distinct leg, so a dead replica costs the failover latency and a slow
// one costs the hedge delay — never the caller's whole deadline.

// RaceOutcome reports how a FailoverRace ended.
type RaceOutcome struct {
	// Winner is the index of the winning leg, -1 when every launched
	// leg failed (or the context ended first).
	Winner int
	// HedgeWon marks a winner that was launched by the hedge timer
	// rather than by a preceding failure.
	HedgeWon bool
	// Failovers counts legs that had already failed when the winner
	// answered (0 on a clean first-leg win).
	Failovers int
	// Errs holds each leg's failure, indexed like legs. nil entries are
	// legs that won, were cancelled by the win, or never launched.
	Errs []error
}

// FailoverRace races legs as described above. onHedge, when non-nil,
// is called once if the hedge timer launches a leg (counter hook).
// When ctx ends before any leg succeeds, the zero value is returned
// with Winner -1 and whatever failures had landed by then.
func FailoverRace[T any](ctx context.Context, hedge time.Duration, onHedge func(), legs ...func(context.Context) (T, error)) (T, RaceOutcome) {
	var zero T
	out := RaceOutcome{Winner: -1, Errs: make([]error, len(legs))}
	if len(legs) == 0 {
		return zero, out
	}
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type result struct {
		i   int
		v   T
		err error
	}
	ch := make(chan result, len(legs)) // buffered: losers never block
	launched := 0
	byHedge := make([]bool, len(legs))
	launch := func(hedged bool) {
		i := launched
		launched++
		byHedge[i] = hedged
		go func() {
			v, err := legs[i](rctx)
			ch <- result{i, v, err}
		}()
	}
	launch(false)
	inFlight := 1

	// The timer is armed only while a reserve leg exists and no hedge
	// has been launched yet.
	var timer *time.Timer
	var timerC <-chan time.Time
	hedgedOnce := false
	arm := func() {
		if timer != nil {
			timer.Stop()
			timer = nil
			timerC = nil
		}
		if hedge > 0 && !hedgedOnce && launched < len(legs) {
			timer = time.NewTimer(hedge)
			timerC = timer.C
		}
	}
	arm()
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()

	for {
		select {
		case r := <-ch:
			inFlight--
			if r.err == nil {
				out.Winner = r.i
				out.HedgeWon = byHedge[r.i]
				for _, e := range out.Errs {
					if e != nil {
						out.Failovers++
					}
				}
				return r.v, out
			}
			out.Errs[r.i] = r.err
			if ctx.Err() == nil && launched < len(legs) {
				launch(false)
				inFlight++
				arm() // a fresh leg gets a fresh hedge window
			} else if inFlight == 0 {
				return zero, out
			}
		case <-timerC:
			timerC = nil
			if launched < len(legs) {
				hedgedOnce = true
				if onHedge != nil {
					onHedge()
				}
				launch(true)
				inFlight++
			}
		case <-ctx.Done():
			return zero, out
		}
	}
}
