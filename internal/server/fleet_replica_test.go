package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/faultinject"
	"repro/internal/index"
	"repro/internal/telemetry"
)

// startReplicatedFleet boots a fleet of n shard groups with r replicas
// each — every replica of a group serves the SAME shard slice — plus a
// coordinator over them. Returned workers are indexed [shard][replica];
// dead workers may be Shutdown by the test, the rest tear down with it.
func startReplicatedFleet(t *testing.T, db *index.DB, n, r int, coordCfg Config) (*Server, [][]*Server) {
	t.Helper()
	sdbs := shardDBs(t, db, n)
	workers := make([][]*Server, n)
	entries := make([]string, n)
	for i, sdb := range sdbs {
		workers[i] = make([]*Server, r)
		urls := make([]string, r)
		for j := 0; j < r; j++ {
			w := NewFromDB(sdb, Config{})
			addr, err := w.Start("127.0.0.1:0")
			if err != nil {
				t.Fatalf("starting worker %d/%d: %v", i, j, err)
			}
			workers[i][j] = w
			urls[j] = "http://" + addr.String()
		}
		entries[i] = strings.Join(urls, "|")
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		for _, g := range workers {
			for _, w := range g {
				_ = w.Shutdown(ctx)
			}
		}
	})
	coordCfg.Fleet = entries
	coord, err := New(coordCfg)
	if err != nil {
		t.Fatalf("starting coordinator: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = coord.Shutdown(ctx)
	})
	return coord, workers
}

// entryOnShard finds an indexed entry with the given ground-truth name
// that FNV placement puts on the wanted shard.
func entryOnShard(t *testing.T, db *index.DB, truth string, shard, nShards int) *index.Entry {
	t.Helper()
	for _, e := range db.Entries {
		if e.Truth == truth && index.ShardOf(e.Exe, e.Name, nShards) == shard {
			return e
		}
	}
	t.Fatalf("no entry with truth %q on shard %d/%d", truth, shard, nShards)
	return nil
}

func killWorker(t *testing.T, w *Server) {
	t.Helper()
	// A scatter leg cancelled by the race can leave a freshly-dialed,
	// never-used connection in the shared client pool; the worker's
	// http.Server sees it as StateNew and waits ~5s before reaping it.
	// Flush the pool so Shutdown is prompt.
	http.DefaultClient.CloseIdleConnections()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := w.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestFleetReplicaFailoverFullAnswers is the tentpole chaos/parity
// invariant: with 2 replicas per shard, killing one replica of EVERY
// shard mid-fleet still yields degraded:false answers bit-identical to
// the single-snapshot search, with the failovers counted. The prober is
// parked (1h interval) so the test exercises the scatter path's own
// failover, not a lucky pre-query probe.
func TestFleetReplicaFailoverFullAnswers(t *testing.T) {
	db, _ := smallDB(t)
	coord, workers := startReplicatedFleet(t, db, 2, 2, Config{
		CacheEntries:  -1, // every query re-scatters
		ProbeInterval: time.Hour,
	})
	h := coord.Handler()
	e := entryWithTruth(t, db, corpus.LibFuncName)
	req := SearchRequest{Exe: e.Exe, Name: e.Name, Limit: 1000}

	single := NewFromDB(db, Config{})
	_, want := postSearch(t, single.Handler(), req)
	if want == nil {
		t.Fatal("single-server baseline failed")
	}

	// Healthy warm-up: full parity before any chaos.
	rec, got := postSearch(t, h, req)
	if got == nil || got.Degraded {
		t.Fatalf("healthy replicated fleet: %d %s", rec.Code, rec.Body.String())
	}

	// Kill replica 0 of every shard group.
	for i := range workers {
		killWorker(t, workers[i][0])
	}

	// Every post-kill query must be full quality and bit-identical; the
	// replica rotation guarantees some leg lands on a dead worker first,
	// so fleet_failovers must move.
	for q := 0; q < 4; q++ {
		rec, got := postSearch(t, h, req)
		if got == nil {
			t.Fatalf("query %d after killing one replica per shard: %d %s", q, rec.Code, rec.Body.String())
		}
		if got.Degraded {
			t.Fatalf("query %d degraded despite a live replica per shard: %s", q, got.DegradedReason)
		}
		if len(got.Hits) != len(want.Hits) {
			t.Fatalf("query %d: %d hits, single server %d", q, len(got.Hits), len(want.Hits))
		}
		for i := range got.Hits {
			if got.Hits[i] != want.Hits[i] {
				t.Errorf("query %d hit %d diverged:\n  fleet:  %+v\n  single: %+v", q, i, got.Hits[i], want.Hits[i])
			}
		}
	}
	if coord.Tel().Get(telemetry.FleetFailovers) == 0 {
		t.Error("fleet_failovers did not move after killing one replica per shard")
	}
	if coord.Tel().Get(telemetry.FleetReplicaDown) == 0 {
		t.Error("fleet_replica_down did not move")
	}
	if coord.Tel().Get(telemetry.FleetPartials) != 0 {
		t.Error("fleet_partials moved: some answer went partial despite live replicas")
	}
}

// TestFleetReplicaGroupDownPartial: only when an ENTIRE replica group is
// down does the answer become partial — degraded:true naming the shard,
// the survivors' hits in canonical order, nothing cached.
func TestFleetReplicaGroupDownPartial(t *testing.T) {
	const nShards = 2
	db, _ := smallDB(t)
	coord, workers := startReplicatedFleet(t, db, nShards, 2, Config{CacheEntries: 64})
	h := coord.Handler()
	// The query must resolve from a LIVE group: pick an entry placed on
	// shard 0 (shard 1's whole group dies below).
	e := entryOnShard(t, db, corpus.LibFuncName, 0, nShards)
	req := SearchRequest{Exe: e.Exe, Name: e.Name, Limit: 1000}

	killWorker(t, workers[1][0])
	killWorker(t, workers[1][1])

	rec, got := postSearch(t, h, req)
	if got == nil {
		t.Fatalf("partial fleet search must answer, got %d %s", rec.Code, rec.Body.String())
	}
	if !got.Degraded || !strings.Contains(got.DegradedReason, "shard 1") {
		t.Fatalf("degraded = %v (reason %q), want a partial answer naming shard 1",
			got.Degraded, got.DegradedReason)
	}

	single := NewFromDB(db, Config{})
	_, want := postSearch(t, single.Handler(), req)
	if want == nil {
		t.Fatal("single-server baseline failed")
	}
	var surviving []Hit
	for _, hh := range want.Hits {
		if index.ShardOf(hh.Exe, hh.Name, nShards) != 1 {
			surviving = append(surviving, hh)
		}
	}
	if len(got.Hits) != len(surviving) {
		t.Fatalf("partial answer has %d hits, survivors of the union answer %d", len(got.Hits), len(surviving))
	}
	for i := range got.Hits {
		if got.Hits[i] != surviving[i] {
			t.Errorf("partial hit %d diverged:\n  fleet:    %+v\n  expected: %+v", i, got.Hits[i], surviving[i])
		}
	}

	// Partial answers are never cached.
	_, again := postSearch(t, h, req)
	if again == nil || again.Cached {
		t.Fatalf("repeated partial query served from cache: %+v", again)
	}
}

// TestFleetHedgedScatter: with -shard-hedge armed, a slow (not dead)
// replica is raced by its sibling and the hedged leg's win is counted —
// latency costs the hedge delay, not the slow replica's stall.
func TestFleetHedgedScatter(t *testing.T) {
	db, _ := smallDB(t)
	faults := faultinject.New()
	// Replica 0 of shard 0 stalls 2s on every search leg; the hedge
	// fires after 20ms and its sibling answers immediately.
	faults.Arm(&faultinject.Fault{Point: FaultShard + "0r0", Mode: faultinject.Latency, Latency: 2 * time.Second})
	coord, _ := startReplicatedFleet(t, db, 2, 2, Config{
		Faults:        faults,
		CacheEntries:  -1,
		ShardHedge:    20 * time.Millisecond,
		ProbeInterval: time.Hour,
	})
	h := coord.Handler()
	e := entryWithTruth(t, db, corpus.LibFuncName)
	req := SearchRequest{Exe: e.Exe, Name: e.Name, Limit: 1000}

	t0 := time.Now()
	rec, got := postSearch(t, h, req)
	took := time.Since(t0)
	if got == nil || got.Degraded {
		t.Fatalf("hedged fleet search: %d %s", rec.Code, rec.Body.String())
	}
	if took >= 2*time.Second {
		t.Errorf("hedged query took %v: it waited out the slow replica instead of hedging", took)
	}
	if coord.Tel().Get(telemetry.FleetHedges) == 0 {
		t.Error("fleet_hedges did not move")
	}
	if coord.Tel().Get(telemetry.FleetHedgesWon) == 0 {
		t.Error("fleet_hedges_won did not move")
	}
}

// TestFleetMembershipDownAndReadmit drives the membership state machine
// end to end: a killed worker is marked down (unreachable in healthz,
// fleet_replica_down moves), and a replacement on the same address is
// readmitted by the prober's healthz + generation gate
// (fleet_readmits moves, status recovers to ok).
func TestFleetMembershipDownAndReadmit(t *testing.T) {
	db, _ := smallDB(t)
	coord, workers := startReplicatedFleet(t, db, 2, 2, Config{ProbeInterval: 25 * time.Millisecond})
	sdbs := shardDBs(t, db, 2)

	// Remember the victim's address, then kill it.
	h := coord.backend.Health(context.Background())
	if h.Status != "ok" || h.Replicas != 4 {
		t.Fatalf("healthy fleet: status %q replicas %d, want ok/4", h.Status, h.Replicas)
	}
	victimAddr := ""
	for _, sh := range h.Fleet {
		if sh.Shard == 0 && sh.Replica == 0 {
			victimAddr = strings.TrimPrefix(sh.Addr, "http://")
		}
	}
	killWorker(t, workers[0][0])

	h = coord.backend.Health(context.Background())
	var down ShardHealth
	for _, sh := range h.Fleet {
		if sh.Shard == 0 && sh.Replica == 0 {
			down = sh
		}
	}
	if h.Status != "degraded" || down.Status != "unreachable" || down.Error == "" {
		t.Fatalf("after kill: fleet status %q, victim %+v; want degraded/unreachable", h.Status, down)
	}
	if coord.Tel().Get(telemetry.FleetReplicaDown) == 0 {
		t.Error("fleet_replica_down did not move")
	}

	// Resurrect a worker on the same address and poll for readmission.
	replacement := NewFromDB(sdbs[0], Config{})
	var err error
	for i := 0; i < 50; i++ {
		if _, err = replacement.Start(victimAddr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond) // the old listener may still be draining
	}
	if err != nil {
		t.Fatalf("restarting worker on %s: %v", victimAddr, err)
	}
	workers[0][0] = replacement // cleanup shuts the replacement down

	deadline := time.Now().Add(5 * time.Second)
	for {
		h = coord.backend.Health(context.Background())
		if h.Status == "ok" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica not readmitted within 5s: fleet status %q (%+v)", h.Status, h.Fleet)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if coord.Tel().Get(telemetry.FleetReadmits) == 0 {
		t.Error("fleet_readmits did not move")
	}
}

// TestFleetGenerationSkew: when one replica of a group serves a
// different index generation, the group serves the majority (ties to
// the newest) and the straggler is flagged Skewed in fleet healthz —
// while queries stay full quality off the serving replica.
func TestFleetGenerationSkew(t *testing.T) {
	db, _ := smallDB(t)
	coord, workers := startReplicatedFleet(t, db, 2, 2, Config{
		CacheEntries:  -1,
		ProbeInterval: time.Hour,
	})
	sdbs := shardDBs(t, db, 2)

	// Reload replica (1,1) onto the same slice: generation 2 vs its
	// sibling's 1. The 1-vs-1 tie breaks to the newest, so the sibling
	// (1,0) is the straggler.
	workers[1][1].install(sdbs[1], time.Now())

	h := coord.backend.Health(context.Background())
	if h.Status != "degraded" {
		t.Fatalf("fleet with a generation straggler: status %q, want degraded", h.Status)
	}
	var straggler, current ShardHealth
	for _, sh := range h.Fleet {
		if sh.Shard == 1 && sh.Replica == 0 {
			straggler = sh
		}
		if sh.Shard == 1 && sh.Replica == 1 {
			current = sh
		}
	}
	if !straggler.Skewed || current.Skewed {
		t.Fatalf("skew flags wrong: replica 0 %+v, replica 1 %+v", straggler, current)
	}

	// Queries keep full quality: the serving-generation replica answers.
	e := entryWithTruth(t, db, corpus.LibFuncName)
	rec, got := postSearch(t, coord.Handler(), SearchRequest{Exe: e.Exe, Name: e.Name, Limit: 1000})
	if got == nil || got.Degraded {
		t.Fatalf("skewed-group query: %d %s", rec.Code, rec.Body.String())
	}
}

// TestFleetScatterFailureMarksDownImmediately pins the satellite bug
// fix: a scatter leg's transport error must down-mark the replica in
// the membership view at once — no TTL window where a dead worker keeps
// eating a shard timeout per query.
func TestFleetScatterFailureMarksDownImmediately(t *testing.T) {
	db, _ := smallDB(t)
	coord, workers := startReplicatedFleet(t, db, 2, 2, Config{
		CacheEntries:  -1,
		ProbeInterval: time.Hour, // membership may only move via the scatter path
	})
	fb := coord.backend.(*fleetBackend)
	e := entryWithTruth(t, db, corpus.LibFuncName)
	req := SearchRequest{Exe: e.Exe, Name: e.Name, Limit: 10}

	killWorker(t, workers[0][0])

	// Drive queries until one lands on the dead replica (rotation
	// alternates the preferred replica, so two suffice).
	for q := 0; q < 2; q++ {
		rec, got := postSearch(t, coord.Handler(), req)
		if got == nil || got.Degraded {
			t.Fatalf("query %d: %d %s", q, rec.Code, rec.Body.String())
		}
	}
	// The membership view itself (no forced sweep) must show the victim
	// down, purely from the scatter failure.
	st := fb.groups[0].replicas[0].state()
	if st.up {
		t.Fatal("dead replica still up in the membership view after a scatter transport error")
	}
	if coord.Tel().Get(telemetry.FleetReplicaDown) == 0 {
		t.Error("fleet_replica_down did not move")
	}
}

// TestFleet502StructuredBody pins the error-quality satellite: when no
// shard answers, the 502 carries per-replica failure detail and a
// Retry-After header derived from the prober's schedule.
func TestFleet502StructuredBody(t *testing.T) {
	db, c := smallDB(t)
	coord, workers := startReplicatedFleet(t, db, 1, 2, Config{ProbeInterval: time.Hour})
	h := coord.Handler()
	// An image query resolves on the coordinator itself, so the failure
	// under test is the scatter, not the by-reference lookup.
	req := SearchRequest{Limit: 10}
	req.SetImage(exeImage(t, c, "ctx0"))

	killWorker(t, workers[0][0])
	killWorker(t, workers[0][1])

	for q := 0; q < 2; q++ { // second query reports down-gated siblings too
		rec, _ := postSearch(t, h, req)
		if rec.Code != http.StatusBadGateway {
			t.Fatalf("all-replicas-down search: status %d, want 502 (%s)", rec.Code, rec.Body.String())
		}
		if ra := rec.Header().Get("Retry-After"); ra == "" {
			t.Error("502 has no Retry-After header")
		}
		var body ErrorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("502 body is not JSON: %v\n%s", err, rec.Body.String())
		}
		if len(body.Fleet) == 0 {
			t.Fatalf("502 body has no per-replica detail: %s", rec.Body.String())
		}
		for _, re := range body.Fleet {
			if re.Addr == "" || re.Error == "" {
				t.Errorf("replica error entry missing addr/error: %+v", re)
			}
		}
	}
}

// TestParseFleetGroups covers the replica-group fleet syntax.
func TestParseFleetGroups(t *testing.T) {
	got := parseFleetGroups([]string{"http://a1|http://a2", " http://b1/ ", "", "|"})
	want := [][]string{{"http://a1", "http://a2"}, {"http://b1"}}
	if len(got) != len(want) {
		t.Fatalf("parseFleetGroups returned %d groups, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("group %d = %v, want %v", i, got[i], want[i])
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Errorf("group %d replica %d = %q, want %q", i, j, got[i][j], want[i][j])
			}
		}
	}
}
