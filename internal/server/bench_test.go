package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/corpus"
)

// The serving-layer benchmarks measure the full HTTP round trip
// (httptest transport, JSON codec, semaphore, cache, sharded scan).
// `go test -bench Server -benchtime 5x ./internal/server/` gives quick
// numbers; TestServerBenchReport regenerates BENCH_server.json when run
// with BENCH_SERVER_REPORT=path.

func benchHarness(b *testing.B, cacheEntries int) (http.Handler, SearchRequest) {
	db := bigDB(b)
	s := NewFromDB(db, Config{CacheEntries: cacheEntries, MaxInFlight: 64})
	e := entryWithTruth(b, db, corpus.LibFuncName)
	return s.Handler(), SearchRequest{Exe: e.Exe, Name: e.Name, Limit: 10}
}

func BenchmarkServerSearchUncached(b *testing.B) {
	h, req := benchHarness(b, -1) // cache disabled: every request scans
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rec, _ := postSearch(b, h, req); rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

func BenchmarkServerSearchCached(b *testing.B) {
	h, req := benchHarness(b, 256)
	postSearch(b, h, req) // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rec, _ := postSearch(b, h, req); rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

var benchReport = os.Getenv("BENCH_SERVER_REPORT")

// TestServerBenchReport measures serving throughput/latency and the
// cache-hit speedup and writes BENCH_server.json at the path in
// BENCH_SERVER_REPORT (skipped otherwise, and in -short mode).
func TestServerBenchReport(t *testing.T) {
	if benchReport == "" {
		t.Skip("set BENCH_SERVER_REPORT=path to write the report")
	}
	if testing.Short() {
		t.Skip("timing report; skipped in -short mode")
	}
	restore := ensureParallelism(2)
	defer restore()
	db := bigDB(t)
	s := NewFromDB(db, Config{MaxInFlight: 64})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	e := entryWithTruth(t, db, corpus.LibFuncName)

	body, _ := json.Marshal(SearchRequest{Exe: e.Exe, Name: e.Name, Limit: 10})
	do := func() time.Duration {
		t0 := time.Now()
		resp, err := http.Post(ts.URL+"/v1/search", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var sr SearchResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		return time.Since(t0)
	}

	// One uncached scan (the first request after the snapshot loads),
	// then cached round trips.
	uncached := do()
	const cachedRounds = 25
	var cachedTotal time.Duration
	for i := 0; i < cachedRounds; i++ {
		cachedTotal += do()
	}
	cachedMean := cachedTotal / cachedRounds

	// Concurrent sustained throughput over the cached path plus a second
	// distinct query to keep the scan path warm too.
	body2, _ := json.Marshal(SearchRequest{Exe: e.Exe, Name: e.Name, Limit: 5})
	const workers, perWorker = 8, 8
	var reqs atomic.Int64
	t0 := time.Now()
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < perWorker; i++ {
				b := body
				if (w+i)%2 == 1 {
					b = body2
				}
				resp, err := http.Post(ts.URL+"/v1/search", "application/json", bytes.NewReader(b))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				reqs.Add(1)
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	elapsed := time.Since(t0)
	qps := float64(reqs.Load()) / elapsed.Seconds()

	report := map[string]any{
		"benchmark":             fmt.Sprintf("tracy serve, %d-function corpus, k=3, limit 10, %d workers", db.Len(), workers),
		"corpus_functions":      db.Len(),
		"uncached_search_ms":    float64(uncached.Microseconds()) / 1000,
		"cached_search_ms":      float64(cachedMean.Microseconds()) / 1000,
		"cache_speedup_x":       float64(uncached) / float64(cachedMean),
		"concurrent_workers":    workers,
		"concurrent_requests":   reqs.Load(),
		"concurrent_elapsed_ms": float64(elapsed.Microseconds()) / 1000,
		"throughput_qps":        qps,
		"gomaxprocs":            runtime.GOMAXPROCS(0),
	}
	snap := s.Tel().Snapshot()
	report["server_cache_hit_rate"] = snap.Derived["server_cache_hit_rate"]
	if h, ok := snap.Histograms["server_latency"]; ok {
		report["server_latency_p50_ms"] = h.P50NS / 1e6
		report["server_latency_p99_ms"] = h.P99NS / 1e6
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(benchReport, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: uncached %.1fms, cached %.2fms (%.0fx), %.1f qps",
		benchReport, float64(uncached.Microseconds())/1000,
		float64(cachedMean.Microseconds())/1000,
		float64(uncached)/float64(cachedMean), qps)
}
