package server

import (
	"container/list"
	"sync"

	"repro/internal/index"
)

// cacheKey identifies one cacheable search: the query content
// fingerprint, the snapshot generation it ran against, and every option
// that changes the answer. A reload bumps the generation, so stale
// results can never be served (purge on swap just frees the memory
// sooner).
type cacheKey struct {
	fp         uint64
	gen        uint64
	k          int
	limit      int
	minScore   float64
	candidates int                 // effective prefilter cap; 0 = exhaustive
	mode       index.PrefilterMode // candidate generator: scan and lsh answers never mix
	degraded   bool                // prefilter-only degraded answer: separate keyspace
}

// resultCache is a mutex-guarded LRU of search responses. The cached
// *SearchResponse and its Hits slice are shared between callers and must
// be treated as read-only; handlers copy the struct header before
// stamping per-request fields (Cached, TookMS).
type resultCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used; values are *cacheSlot
	items map[cacheKey]*list.Element
}

type cacheSlot struct {
	key  cacheKey
	resp *SearchResponse
}

// newResultCache returns a cache holding at most max entries; max <= 0
// disables caching (every get misses, puts are dropped).
func newResultCache(max int) *resultCache {
	return &resultCache{
		max:   max,
		order: list.New(),
		items: make(map[cacheKey]*list.Element),
	}
}

// get returns the cached response for key, refreshing its recency.
func (c *resultCache) get(key cacheKey) (*SearchResponse, bool) {
	if c.max <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheSlot).resp, true
}

// put stores resp under key, evicting the least recently used entry when
// full.
func (c *resultCache) put(key cacheKey, resp *SearchResponse) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheSlot).resp = resp
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&cacheSlot{key: key, resp: resp})
	for len(c.items) > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheSlot).key)
	}
}

// purge drops every entry (used on snapshot swap).
func (c *resultCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.items = make(map[cacheKey]*list.Element)
}

// len returns the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}
