package server

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/faultinject"
	"repro/internal/index"
	"repro/internal/telemetry"
)

// shardDBs splits db into n disjoint shard databases through the real
// on-disk v3 shard format (write + load round trip, exactly what tracy
// shard produces).
func shardDBs(t *testing.T, db *index.DB, n int) []*index.DB {
	t.Helper()
	out := make([]*index.DB, n)
	total := 0
	for i := range out {
		var buf bytes.Buffer
		if err := db.SaveV3Shard(&buf, i, n); err != nil {
			t.Fatalf("SaveV3Shard(%d/%d): %v", i, n, err)
		}
		sdb, err := index.Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("loading shard %d: %v", i, err)
		}
		out[i] = sdb
		total += sdb.Len()
	}
	if total != db.Len() {
		t.Fatalf("shards hold %d functions, input has %d", total, db.Len())
	}
	return out
}

// startFleet boots n worker servers over disjoint shards of db plus a
// coordinator scattering to them, all torn down with the test.
func startFleet(t *testing.T, db *index.DB, n int, coordCfg Config) (*Server, []*Server) {
	t.Helper()
	workers := make([]*Server, n)
	urls := make([]string, n)
	for i, sdb := range shardDBs(t, db, n) {
		w := NewFromDB(sdb, Config{})
		addr, err := w.Start("127.0.0.1:0")
		if err != nil {
			t.Fatalf("starting worker %d: %v", i, err)
		}
		workers[i] = w
		urls[i] = "http://" + addr.String()
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		for _, w := range workers {
			_ = w.Shutdown(ctx)
		}
	})
	coordCfg.Fleet = urls
	coord, err := New(coordCfg)
	if err != nil {
		t.Fatalf("starting coordinator: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = coord.Shutdown(ctx) // stops the membership prober
	})
	return coord, workers
}

// TestFleetSearchParity is the merge-contract property test: for both
// query forms, an exhaustive coordinator search over disjoint shards is
// bit-identical to the same search on a single server holding the union
// corpus — same hits, same order, same scores, same candidate count.
func TestFleetSearchParity(t *testing.T) {
	db, c := smallDB(t)
	single := NewFromDB(db, Config{})
	sh := single.Handler()
	coord, _ := startFleet(t, db, 3, Config{})
	ch := coord.Handler()

	e := entryWithTruth(t, db, corpus.LibFuncName)
	byRef := SearchRequest{Exe: e.Exe, Name: e.Name, Limit: 1000}
	byImage := SearchRequest{Limit: 1000}
	byImage.SetImage(exeImage(t, c, "ctx0"))

	for name, req := range map[string]SearchRequest{"by-ref": byRef, "by-image": byImage} {
		rec, want := postSearch(t, sh, req)
		if want == nil {
			t.Fatalf("%s: single-server search failed: %d %s", name, rec.Code, rec.Body.String())
		}
		rec, got := postSearch(t, ch, req)
		if got == nil {
			t.Fatalf("%s: fleet search failed: %d %s", name, rec.Code, rec.Body.String())
		}
		if got.Degraded {
			t.Fatalf("%s: full fleet answered degraded: %s", name, got.DegradedReason)
		}
		if got.Query != want.Query || got.K != want.K {
			t.Errorf("%s: resolved (query %q, k %d), single server (query %q, k %d)",
				name, got.Query, got.K, want.Query, want.K)
		}
		if got.Candidates != want.Candidates {
			t.Errorf("%s: fleet scanned %d candidates, single server %d", name, got.Candidates, want.Candidates)
		}
		if len(got.Hits) != len(want.Hits) {
			t.Fatalf("%s: fleet returned %d hits, single server %d", name, len(got.Hits), len(want.Hits))
		}
		for i := range got.Hits {
			if got.Hits[i] != want.Hits[i] {
				t.Errorf("%s: hit %d diverged:\n  fleet:  %+v\n  single: %+v", name, i, got.Hits[i], want.Hits[i])
			}
		}
	}
}

// TestFleetCachesFullAnswers: the coordinator's result cache serves a
// repeated query without re-scattering.
func TestFleetCachesFullAnswers(t *testing.T) {
	db, _ := smallDB(t)
	coord, _ := startFleet(t, db, 2, Config{CacheEntries: 64})
	h := coord.Handler()
	e := entryWithTruth(t, db, corpus.LibFuncName)
	req := SearchRequest{Exe: e.Exe, Name: e.Name, Limit: 5}

	rec, first := postSearch(t, h, req)
	if first == nil {
		t.Fatalf("first search failed: %d %s", rec.Code, rec.Body.String())
	}
	if first.Cached {
		t.Error("first fleet search claims cached")
	}
	_, second := postSearch(t, h, req)
	if second == nil || !second.Cached {
		t.Fatalf("second identical search not served from cache: %+v", second)
	}
	if len(second.Hits) != len(first.Hits) {
		t.Errorf("cached answer has %d hits, original %d", len(second.Hits), len(first.Hits))
	}
}

// TestFleetChaosShardFaultDegrades: with one scatter leg fault-armed,
// the coordinator answers from the surviving shards — degraded:true
// with the failure named, the survivors' hits in canonical order,
// nothing cached — and recovers to full-quality answers when the fault
// clears.
func TestFleetChaosShardFaultDegrades(t *testing.T) {
	const nShards = 3
	db, _ := smallDB(t)
	faults := faultinject.New()
	faults.Arm(&faultinject.Fault{Point: FaultShard + "1", Mode: faultinject.Error, Count: 1})
	coord, _ := startFleet(t, db, nShards, Config{Faults: faults, CacheEntries: 64})
	h := coord.Handler()

	e := entryWithTruth(t, db, corpus.LibFuncName)
	req := SearchRequest{Exe: e.Exe, Name: e.Name, Limit: 1000}

	rec, got := postSearch(t, h, req)
	if got == nil {
		t.Fatalf("partial fleet search must answer, got %d %s", rec.Code, rec.Body.String())
	}
	if !got.Degraded || !strings.Contains(got.DegradedReason, "shard 1") {
		t.Fatalf("degraded = %v (reason %q), want a partial answer naming shard 1",
			got.Degraded, got.DegradedReason)
	}
	if len(got.Hits) == 0 {
		t.Fatal("partial answer has no hits at all")
	}
	if coord.Tel().Get(telemetry.FleetShardErrors) == 0 {
		t.Error("fleet_shard_errors did not move")
	}
	if coord.Tel().Get(telemetry.FleetPartials) == 0 {
		t.Error("fleet_partials did not move")
	}

	// The survivors' merge must equal the union answer minus shard 1's
	// functions, in the same canonical order.
	single := NewFromDB(db, Config{})
	_, want := postSearch(t, single.Handler(), req)
	if want == nil {
		t.Fatal("single-server baseline failed")
	}
	var surviving []Hit
	for _, hh := range want.Hits {
		if index.ShardOf(hh.Exe, hh.Name, nShards) != 1 {
			surviving = append(surviving, hh)
		}
	}
	if len(got.Hits) != len(surviving) {
		t.Fatalf("partial answer has %d hits, survivors of the union answer %d", len(got.Hits), len(surviving))
	}
	for i := range got.Hits {
		if got.Hits[i] != surviving[i] {
			t.Errorf("partial hit %d diverged:\n  fleet:    %+v\n  expected: %+v", i, got.Hits[i], surviving[i])
		}
	}

	// Fault spent: the next identical query is full-quality and was not
	// shadowed by a cached partial.
	_, healed := postSearch(t, h, req)
	if healed == nil || healed.Degraded {
		t.Fatalf("post-fault search should be full quality: %+v", healed)
	}
	if healed.Cached {
		t.Error("post-fault search served from cache: the partial answer was cached")
	}
	if len(healed.Hits) != len(want.Hits) {
		t.Errorf("post-fault search has %d hits, union answer %d", len(healed.Hits), len(want.Hits))
	}
}

// TestFleetAllShardsDownErrors: when no shard answers, the coordinator
// reports a gateway failure instead of an empty result set.
func TestFleetAllShardsDownErrors(t *testing.T) {
	db, _ := smallDB(t)
	faults := faultinject.New()
	faults.Arm(&faultinject.Fault{Point: FaultShard, Mode: faultinject.Error}) // every leg
	coord, _ := startFleet(t, db, 2, Config{Faults: faults})
	h := coord.Handler()
	e := entryWithTruth(t, db, corpus.LibFuncName)

	rec, _ := postSearch(t, h, SearchRequest{Exe: e.Exe, Name: e.Name})
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("all-shards-down search: status %d, want 502 (%s)", rec.Code, rec.Body.String())
	}
}

// TestFleetHealthzAggregates: the coordinator's healthz names every
// shard, sums the live corpus, and degrades when a worker dies.
func TestFleetHealthzAggregates(t *testing.T) {
	db, _ := smallDB(t)
	coord, workers := startFleet(t, db, 3, Config{})

	h := coord.backend.Health(context.Background())
	if h.Mode != "coordinator" || h.Status != "ok" {
		t.Fatalf("healthy fleet: mode %q status %q, want coordinator/ok", h.Mode, h.Status)
	}
	if h.Shards != 3 || len(h.Fleet) != 3 {
		t.Fatalf("fleet health has %d shards (%d entries), want 3", h.Shards, len(h.Fleet))
	}
	if h.Functions != db.Len() {
		t.Errorf("fleet functions = %d, want the union corpus %d", h.Functions, db.Len())
	}
	for i, sh := range h.Fleet {
		if sh.Shard != i || sh.Addr == "" || sh.Status != "ok" || sh.Generation == 0 {
			t.Errorf("shard health %d malformed: %+v", i, sh)
		}
	}

	// Kill one worker: status degrades, the dead shard is named, the
	// live sum shrinks.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := workers[2].Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	h = coord.backend.Health(context.Background())
	if h.Status != "degraded" {
		t.Fatalf("fleet with a dead worker: status %q, want degraded", h.Status)
	}
	if h.Fleet[2].Status != "unreachable" || h.Fleet[2].Error == "" {
		t.Errorf("dead shard entry: %+v, want unreachable with an error", h.Fleet[2])
	}
	if h.Functions >= db.Len() {
		t.Errorf("degraded fleet functions = %d, want < %d", h.Functions, db.Len())
	}
}

// TestFleetRejectsAmbiguousQuery: the three query forms are mutually
// exclusive on both coordinator and worker.
func TestFleetRejectsAmbiguousQuery(t *testing.T) {
	db, _ := smallDB(t)
	coord, _ := startFleet(t, db, 2, Config{})
	h := coord.Handler()
	e := entryWithTruth(t, db, corpus.LibFuncName)

	req := SearchRequest{Exe: e.Exe, Name: e.Name, QueryGob: "AAAA"}
	rec, _ := postSearch(t, h, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("query_gob + exe/name: status %d, want 400", rec.Code)
	}
	rec, _ = postSearch(t, h, SearchRequest{})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("empty query: status %d, want 400", rec.Code)
	}
	rec, _ = postSearch(t, h, SearchRequest{QueryGob: "not base64!"})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("garbage query_gob: status %d, want 400", rec.Code)
	}
}
