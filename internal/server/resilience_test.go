package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

// saturate fills the server's only in-flight slot with a held request
// and returns a func that releases it and waits for its completion code.
func saturate(t *testing.T, s *Server, h http.Handler, req SearchRequest) func() int {
	t.Helper()
	hold := make(chan struct{})
	s.holdForTest = hold
	done := make(chan int, 1)
	go func() {
		rec, _ := postSearch(t, h, req)
		done <- rec.Code
	}()
	for i := 0; s.adm.inFlight() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if s.adm.inFlight() != 1 {
		t.Fatal("holder request never acquired its in-flight slot")
	}
	return func() int {
		close(hold)
		return <-done
	}
}

// TestShedCarriesRetryAfter: both 429 shed sites (single and batch)
// attach a Retry-After header the client can back off on.
func TestShedCarriesRetryAfter(t *testing.T) {
	db, _ := smallDB(t)
	s := NewFromDB(db, Config{MaxInFlight: 1, RequestTimeout: time.Minute})
	h := s.Handler()
	e := entryWithTruth(t, db, corpus.LibFuncName)
	req := SearchRequest{Exe: e.Exe, Name: e.Name}
	release := saturate(t, s, h, req)

	rec, _ := postSearch(t, h, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated search: status %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != shedRetryAfter {
		t.Errorf("search 429 Retry-After = %q, want %q", got, shedRetryAfter)
	}

	body, _ := json.Marshal(BatchRequest{Queries: []SearchRequest{req}})
	brec := httptest.NewRecorder()
	h.ServeHTTP(brec, httptest.NewRequest(http.MethodPost, "/v1/search/batch", bytes.NewReader(body)))
	if brec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated batch: status %d, want 429", brec.Code)
	}
	if got := brec.Header().Get("Retry-After"); got != shedRetryAfter {
		t.Errorf("batch 429 Retry-After = %q, want %q", got, shedRetryAfter)
	}

	if code := release(); code != http.StatusOK {
		t.Errorf("held request finished with %d, want 200", code)
	}
}

// TestDegradedModeAnswersUnderSaturation: with DegradedMode on, a
// saturated search gets a prefilter-only ranking marked degraded
// instead of a 429, and the degraded answer lives in its own cache
// keyspace (a later exact search is not shadowed by it).
func TestDegradedModeAnswersUnderSaturation(t *testing.T) {
	db, _ := smallDB(t)
	s := NewFromDB(db, Config{MaxInFlight: 1, RequestTimeout: time.Minute, DegradedMode: true})
	h := s.Handler()
	e := entryWithTruth(t, db, corpus.LibFuncName)
	req := SearchRequest{Exe: e.Exe, Name: e.Name}
	release := saturate(t, s, h, req)

	rec, resp := postSearch(t, h, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded search: status %d, want 200 (body %s)", rec.Code, rec.Body.String())
	}
	if !resp.Degraded || resp.DegradedReason == "" {
		t.Fatalf("saturated answer not marked degraded: %+v", resp)
	}
	if len(resp.Hits) == 0 {
		t.Fatal("degraded search returned no hits for an in-corpus query")
	}
	// The query is in the corpus: it shares all features with itself, so
	// the top degraded hit must be the query entry at score 1.
	if top := resp.Hits[0]; top.Exe != e.Exe || top.Name != e.Name || top.Score != 1.0 {
		t.Errorf("top degraded hit = %s/%s score %v, want %s/%s score 1", top.Exe, top.Name, top.Score, e.Exe, e.Name)
	}
	for _, hit := range resp.Hits {
		if hit.IsMatch {
			t.Errorf("degraded hit %s/%s claims IsMatch — degraded answers must not", hit.Exe, hit.Name)
		}
	}
	if got := s.Tel().Get(telemetry.ServerDegraded); got == 0 {
		t.Error("server_degraded not counted")
	}
	if got := s.Tel().Get(telemetry.ServerRejected); got != 0 {
		t.Errorf("server_rejected = %d, want 0 in degraded mode", got)
	}

	// Same query again while still saturated: served from the degraded
	// cache keyspace.
	rec2, resp2 := postSearch(t, h, req)
	if rec2.Code != http.StatusOK || !resp2.Degraded || !resp2.Cached {
		t.Errorf("repeat degraded search: code %d degraded %v cached %v, want 200/true/true",
			rec2.Code, resp2.Degraded, resp2.Cached)
	}

	if code := release(); code != http.StatusOK {
		t.Fatalf("held request finished with %d, want 200", code)
	}

	// Capacity is back: the same query now runs exactly, un-shadowed by
	// the cached degraded answer.
	rec3, resp3 := postSearch(t, h, req)
	if rec3.Code != http.StatusOK {
		t.Fatalf("post-release search: status %d", rec3.Code)
	}
	if resp3.Degraded {
		t.Error("exact search shadowed by cached degraded answer")
	}
	if len(resp3.Hits) == 0 || !resp3.Hits[0].IsMatch {
		t.Errorf("exact search lost match quality: %+v", resp3.Hits)
	}
}

// TestDegradedModeServesCachedExact: a saturated search whose exact
// answer is already cached serves it at full quality (not degraded).
func TestDegradedModeServesCachedExact(t *testing.T) {
	db, _ := smallDB(t)
	s := NewFromDB(db, Config{MaxInFlight: 1, RequestTimeout: time.Minute, DegradedMode: true})
	h := s.Handler()
	e := entryWithTruth(t, db, corpus.LibFuncName)
	req := SearchRequest{Exe: e.Exe, Name: e.Name}

	// Warm the exact cache while unsaturated.
	if rec, resp := postSearch(t, h, req); rec.Code != http.StatusOK || resp.Degraded {
		t.Fatalf("warmup: code %d degraded %v", rec.Code, resp != nil && resp.Degraded)
	}
	release := saturate(t, s, h, req)
	defer release()

	rec, resp := postSearch(t, h, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("saturated cached search: status %d", rec.Code)
	}
	if resp.Degraded || !resp.Cached {
		t.Errorf("saturated cached search: degraded %v cached %v, want full-quality cache hit", resp.Degraded, resp.Cached)
	}
}

// TestPanicRecoveryMiddleware: a handler panic (injected at the decode
// fault point) answers 500 with a JSON error and bumps server_panics;
// the server keeps serving afterwards.
func TestPanicRecoveryMiddleware(t *testing.T) {
	db, _ := smallDB(t)
	faults := faultinject.New()
	faults.Arm(&faultinject.Fault{Point: FaultDecode, Mode: faultinject.Panic, Count: 1})
	s := NewFromDB(db, Config{Faults: faults})
	h := s.Handler()
	e := entryWithTruth(t, db, corpus.LibFuncName)
	req := SearchRequest{Exe: e.Exe, Name: e.Name}

	rec, _ := postSearch(t, h, req)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking request: status %d, want 500 (body %s)", rec.Code, rec.Body.String())
	}
	var er ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
		t.Errorf("panic response is not a JSON error: %s", rec.Body.String())
	}
	if got := s.Tel().Get(telemetry.ServerPanics); got != 1 {
		t.Errorf("server_panics = %d, want 1", got)
	}
	// The fault was one-shot: the next request succeeds.
	if rec, _ := postSearch(t, h, req); rec.Code != http.StatusOK {
		t.Errorf("request after recovered panic: status %d, want 200", rec.Code)
	}
}

// TestRequestTimeoutMS: a per-request timeout_ms tighter than the
// server budget turns a slow search (latency fault at the search point)
// into a 504 within the deadline's order of magnitude, and counts
// searches_deadline.
func TestRequestTimeoutMS(t *testing.T) {
	db, _ := smallDB(t)
	faults := faultinject.New()
	faults.Arm(&faultinject.Fault{Point: FaultSearch, Mode: faultinject.Latency, Latency: 10 * time.Second})
	s := NewFromDB(db, Config{Faults: faults, RequestTimeout: time.Minute})
	h := s.Handler()
	e := entryWithTruth(t, db, corpus.LibFuncName)
	req := SearchRequest{Exe: e.Exe, Name: e.Name, TimeoutMS: 50}

	start := time.Now()
	rec, _ := postSearch(t, h, req)
	elapsed := time.Since(start)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("timed-out search: status %d, want 504 (body %s)", rec.Code, rec.Body.String())
	}
	if elapsed > 5*time.Second {
		t.Errorf("50ms-deadline search took %v", elapsed)
	}
	if got := s.Tel().Get(telemetry.SearchesDeadline); got == 0 {
		t.Error("searches_deadline not counted")
	}
}

// TestCacheFaultDegradesToMiss: an error fault at the cache point makes
// lookups miss (the search still answers correctly) instead of failing
// the request.
func TestCacheFaultDegradesToMiss(t *testing.T) {
	db, _ := smallDB(t)
	faults := faultinject.New()
	faults.Arm(&faultinject.Fault{Point: FaultCache, Mode: faultinject.Error})
	s := NewFromDB(db, Config{Faults: faults})
	h := s.Handler()
	e := entryWithTruth(t, db, corpus.LibFuncName)
	req := SearchRequest{Exe: e.Exe, Name: e.Name}

	for i := 0; i < 2; i++ {
		rec, resp := postSearch(t, h, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d with cache fault: status %d", i, rec.Code)
		}
		if resp.Cached {
			t.Errorf("request %d: cache served despite cache fault", i)
		}
	}
	if s.cache.len() != 0 {
		t.Errorf("cache stored %d entries despite cache fault", s.cache.len())
	}
}

// TestSearchFaultReturns500: an error fault at the search point surfaces
// as a JSON 500, not a crash or a hang.
func TestSearchFaultReturns500(t *testing.T) {
	db, _ := smallDB(t)
	faults := faultinject.New()
	faults.Arm(&faultinject.Fault{Point: FaultSearch, Mode: faultinject.Error, Count: 1})
	s := NewFromDB(db, Config{Faults: faults})
	h := s.Handler()
	e := entryWithTruth(t, db, corpus.LibFuncName)
	req := SearchRequest{Exe: e.Exe, Name: e.Name}

	rec, _ := postSearch(t, h, req)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("faulted search: status %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "injected") {
		t.Errorf("faulted search body: %s", rec.Body.String())
	}
	if rec, _ := postSearch(t, h, req); rec.Code != http.StatusOK {
		t.Errorf("search after fault cleared: status %d, want 200", rec.Code)
	}
}

// TestTimeoutMSValidation: a negative timeout_ms is a 400.
func TestTimeoutMSValidation(t *testing.T) {
	db, _ := smallDB(t)
	s := NewFromDB(db, Config{})
	h := s.Handler()
	e := entryWithTruth(t, db, corpus.LibFuncName)
	rec, _ := postSearch(t, h, SearchRequest{Exe: e.Exe, Name: e.Name, TimeoutMS: -5})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("timeout_ms=-5: status %d, want 400", rec.Code)
	}
}
