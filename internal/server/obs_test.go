package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/faultinject"
	"repro/internal/telemetry"
)

// spanDump mirrors the span wire shape for test-side decoding
// (telemetry.Span only marshals).
type spanDump struct {
	Name     string           `json:"name"`
	TraceID  string           `json:"trace_id"`
	DurNS    int64            `json:"dur_ns"`
	Attrs    map[string]int64 `json:"attrs"`
	Children []spanDump       `json:"children"`
}

func (s *spanDump) child(name string) *spanDump {
	for i := range s.Children {
		if s.Children[i].Name == name {
			return &s.Children[i]
		}
	}
	return nil
}

type flightDump struct {
	Recorded uint64 `json:"recorded"`
	Slowest  []struct {
		TraceID string   `json:"trace_id"`
		Path    string   `json:"path"`
		Status  int      `json:"status"`
		Error   string   `json:"error"`
		Attempt int      `json:"attempt"`
		Hedge   bool     `json:"hedge"`
		Span    spanDump `json:"span"`
	} `json:"slowest"`
	Errored []struct {
		TraceID string `json:"trace_id"`
		Status  int    `json:"status"`
		Error   string `json:"error"`
	} `json:"errored"`
}

func getFlight(t *testing.T, h http.Handler) flightDump {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/requests", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/requests: HTTP %d", rec.Code)
	}
	var out flightDump
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("/debug/requests: %v\n%s", err, rec.Body.String())
	}
	return out
}

func TestTracePropagatesEndToEnd(t *testing.T) {
	db, _ := smallDB(t)
	s := NewFromDB(db, Config{})
	h := s.Handler()
	e := entryWithTruth(t, db, corpus.LibFuncName)

	body, _ := json.Marshal(SearchRequest{Exe: e.Exe, Name: e.Name})
	req := httptest.NewRequest(http.MethodPost, "/v1/search", bytes.NewReader(body))
	tid := telemetry.NewTraceID()
	req.Header.Set(telemetry.TraceparentHeader, telemetry.FormatTraceparent(tid, telemetry.NewSpanID()))
	req.Header.Set(AttemptHeader, "2")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("search: HTTP %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(TraceIDHeader); got != tid {
		t.Fatalf("X-Trace-Id %q, want adopted %q", got, tid)
	}
	var resp SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.TraceID != tid {
		t.Fatalf("response trace_id %q, want %q", resp.TraceID, tid)
	}

	// The same trace must be in the flight recorder with per-stage spans.
	flight := getFlight(t, h)
	if flight.Recorded == 0 || len(flight.Slowest) == 0 {
		t.Fatalf("flight recorder empty: %+v", flight)
	}
	var found bool
	for _, fr := range flight.Slowest {
		if fr.TraceID != tid {
			continue
		}
		found = true
		if fr.Attempt != 2 {
			t.Errorf("recorded attempt %d, want 2", fr.Attempt)
		}
		if fr.Span.TraceID != tid {
			t.Errorf("root span trace_id %q, want %q", fr.Span.TraceID, tid)
		}
		for _, stage := range []string{"decode", "resolve", "cache", "compare", "prune"} {
			c := fr.Span.child(stage)
			if c == nil {
				t.Errorf("span tree missing %q stage (have %v)", stage, stageNames(fr.Span))
				continue
			}
			if c.DurNS <= 0 {
				t.Errorf("stage %q unfinished (dur_ns %d)", stage, c.DurNS)
			}
		}
		if c := fr.Span.child("compare"); c != nil && c.Attrs["pairs"] == 0 {
			t.Errorf("compare stage lost its pairs attr: %v", c.Attrs)
		}
	}
	if !found {
		t.Fatalf("trace %s not in flight recorder", tid)
	}
}

func stageNames(sp spanDump) []string {
	var out []string
	for _, c := range sp.Children {
		out = append(out, c.Name)
	}
	return out
}

func TestMalformedTraceparentMintsFresh(t *testing.T) {
	db, _ := smallDB(t)
	s := NewFromDB(db, Config{})
	h := s.Handler()
	e := entryWithTruth(t, db, corpus.LibFuncName)
	body, _ := json.Marshal(SearchRequest{Exe: e.Exe, Name: e.Name})
	req := httptest.NewRequest(http.MethodPost, "/v1/search", bytes.NewReader(body))
	req.Header.Set(telemetry.TraceparentHeader, "total-garbage")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("HTTP %d", rec.Code)
	}
	if got := rec.Header().Get(TraceIDHeader); !telemetry.IsTraceID(got) {
		t.Fatalf("minted trace ID %q invalid", got)
	}
}

func TestErrorBodiesCarryTraceID(t *testing.T) {
	db, _ := smallDB(t)
	faults, err := faultinject.Parse("search=error:x1")
	if err != nil {
		t.Fatal(err)
	}
	s := NewFromDB(db, Config{Faults: faults})
	h := s.Handler()
	e := entryWithTruth(t, db, corpus.LibFuncName)

	check := func(code int, body []byte) string {
		t.Helper()
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatalf("HTTP %d body not ErrorResponse: %v\n%s", code, err, body)
		}
		if !telemetry.IsTraceID(er.TraceID) {
			t.Fatalf("HTTP %d error body trace_id %q invalid\n%s", code, er.TraceID, body)
		}
		return er.TraceID
	}

	// 500: injected search fault on the first search.
	rec, _ := postSearch(t, h, SearchRequest{Exe: e.Exe, Name: e.Name})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("faulted search: HTTP %d, want 500", rec.Code)
	}
	tid500 := check(rec.Code, rec.Body.Bytes())
	if hdr := rec.Header().Get(TraceIDHeader); hdr != tid500 {
		t.Fatalf("500 header trace %q != body trace %q", hdr, tid500)
	}

	// 400: validation error.
	rec, _ = postSearch(t, h, SearchRequest{})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("empty query: HTTP %d, want 400", rec.Code)
	}
	check(rec.Code, rec.Body.Bytes())

	// Status-class counters saw one 5xx, one 4xx, and no 2xx yet.
	snap := s.Tel().Snapshot()
	if snap.Counters["server_status_5xx"] != 1 || snap.Counters["server_status_4xx"] != 1 {
		t.Fatalf("status counters: %v", snap.Counters)
	}

	// The errored ring retains both, with messages.
	flight := getFlight(t, h)
	if len(flight.Errored) != 2 {
		t.Fatalf("errored ring has %d records, want 2", len(flight.Errored))
	}
	for _, fr := range flight.Errored {
		if fr.Error == "" || !telemetry.IsTraceID(fr.TraceID) {
			t.Fatalf("errored record incomplete: %+v", fr)
		}
	}
}

func TestMetricsEndpointValidExposition(t *testing.T) {
	db, _ := smallDB(t)
	s := NewFromDB(db, Config{})
	h := s.Handler()
	e := entryWithTruth(t, db, corpus.LibFuncName)
	if rec, _ := postSearch(t, h, SearchRequest{Exe: e.Exe, Name: e.Name}); rec.Code != 200 {
		t.Fatalf("search: HTTP %d", rec.Code)
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", rec.Code)
	}
	if err := telemetry.ValidateExposition(rec.Body.Bytes()); err != nil {
		t.Fatalf("/metrics invalid: %v", err)
	}
	out := rec.Body.String()
	for _, want := range []string{
		"tracy_server_requests_total 1",
		"tracy_server_status_2xx_total 1",
		"tracy_server_latency_seconds_count 1",
		"tracy_request_decode_latency_seconds_count 1",
		"tracy_cache_lookup_latency_seconds_count 1",
		`tracy_query_latency_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestAccessLogWiring(t *testing.T) {
	db, _ := smallDB(t)
	var logBuf bytes.Buffer
	s := NewFromDB(db, Config{
		AccessLog:          &logBuf,
		AccessLogSample:    1,
		SlowQueryThreshold: time.Nanosecond, // everything is slow
	})
	h := s.Handler()
	e := entryWithTruth(t, db, corpus.LibFuncName)
	rec, resp := postSearch(t, h, SearchRequest{Exe: e.Exe, Name: e.Name})
	if rec.Code != 200 {
		t.Fatalf("HTTP %d", rec.Code)
	}

	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("%d access lines, want 1:\n%s", len(lines), logBuf.String())
	}
	var line struct {
		TraceID string             `json:"trace_id"`
		Method  string             `json:"method"`
		Path    string             `json:"path"`
		Status  int                `json:"status"`
		DurMS   float64            `json:"dur_ms"`
		Slow    bool               `json:"slow"`
		Stages  map[string]float64 `json:"stages_ms"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &line); err != nil {
		t.Fatalf("bad access line: %v\n%s", err, lines[0])
	}
	if line.TraceID != resp.TraceID {
		t.Fatalf("access log trace %q != response trace %q", line.TraceID, resp.TraceID)
	}
	if line.Method != "POST" || line.Path != "/v1/search" || line.Status != 200 || line.DurMS <= 0 {
		t.Fatalf("access line fields: %+v", line)
	}
	if !line.Slow {
		t.Fatal("1ns slow threshold must mark the request slow")
	}
	if _, ok := line.Stages["compare"]; !ok {
		t.Fatalf("stages_ms missing compare: %v", line.Stages)
	}
	if s.Tel().Snapshot().Counters["server_slow_queries"] != 1 {
		t.Fatalf("server_slow_queries: %v", s.Tel().Snapshot().Counters)
	}
}

func TestBatchPerQuerySpans(t *testing.T) {
	db, _ := smallDB(t)
	s := NewFromDB(db, Config{})
	h := s.Handler()
	e := entryWithTruth(t, db, corpus.LibFuncName)
	body, _ := json.Marshal(BatchRequest{Queries: []SearchRequest{
		{Exe: e.Exe, Name: e.Name},
		{Exe: "nope", Name: "nope"},
	}})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/search/batch", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("batch: HTTP %d", rec.Code)
	}
	var out BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if !telemetry.IsTraceID(out.TraceID) {
		t.Fatalf("batch trace_id %q", out.TraceID)
	}
	if out.Results[0].Result == nil || out.Results[0].Result.TraceID != out.TraceID {
		t.Fatalf("batch item must share the batch trace ID: %+v", out.Results[0])
	}

	flight := getFlight(t, h)
	for _, fr := range flight.Slowest {
		if fr.TraceID != out.TraceID {
			continue
		}
		q0 := fr.Span.child("query:0")
		if q0 == nil {
			t.Fatalf("batch span tree lacks query:0: %v", stageNames(fr.Span))
		}
		if q0.child("compare") == nil {
			t.Fatalf("query:0 lacks compare stage: %v", stageNames(*q0))
		}
		if fr.Span.child("query:1") == nil {
			t.Fatalf("batch span tree lacks query:1 (failed queries trace too)")
		}
		return
	}
	t.Fatalf("batch trace %s not recorded", out.TraceID)
}

func TestTimeoutAnswersWithRecordedTrace(t *testing.T) {
	db, _ := smallDB(t)
	s := NewFromDB(db, Config{})
	h := s.Handler()
	e := entryWithTruth(t, db, corpus.LibFuncName)
	// timeout_ms: 1 expires mid-search: the ctxHTTPErr path answers 504
	// with the trace ID in the body.
	rec, _ := postSearch(t, h, SearchRequest{Exe: e.Exe, Name: e.Name, TimeoutMS: 1})
	if rec.Code != http.StatusGatewayTimeout {
		t.Skipf("search finished inside 1ms (HTTP %d); timing-dependent", rec.Code)
	}
	var er ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if !telemetry.IsTraceID(er.TraceID) {
		t.Fatalf("504 body trace_id %q", er.TraceID)
	}
	flight := getFlight(t, h)
	if len(flight.Errored) == 0 || flight.Errored[0].Status != http.StatusGatewayTimeout {
		t.Fatalf("504 not in errored ring: %+v", flight.Errored)
	}
}
