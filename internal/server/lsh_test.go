package server

import (
	"net/http"
	"testing"

	"repro/internal/corpus"
	"repro/internal/telemetry"
)

// TestSearchLSHJSONOptions: the wire spelling of the lsh prefilter — the
// "candidates implies prefilter" and "lsh implies prefilter" rules as the
// JSON layer sees them, plus rejection of unknown modes. The index layer
// tests the same contract on PrefilterOptions directly; the CLI tests it
// on flags.
func TestSearchLSHJSONOptions(t *testing.T) {
	db, _ := smallDB(t)
	s := NewFromDB(db, Config{})
	h := s.Handler()
	e := entryWithTruth(t, db, corpus.LibFuncName)

	cases := []struct {
		name        string
		req         SearchRequest
		wantStatus  int
		prefiltered bool
		wantMode    string
	}{
		{"zero request is exhaustive",
			SearchRequest{Exe: e.Exe, Name: e.Name}, http.StatusOK, false, ""},
		{"candidates imply prefilter",
			SearchRequest{Exe: e.Exe, Name: e.Name, Candidates: 5}, http.StatusOK, true, "scan"},
		{"prefilter alone defaults scan",
			SearchRequest{Exe: e.Exe, Name: e.Name, Prefilter: true}, http.StatusOK, true, "scan"},
		{"explicit scan mode",
			SearchRequest{Exe: e.Exe, Name: e.Name, Prefilter: true, PrefilterMode: "scan"}, http.StatusOK, true, "scan"},
		{"lsh implies prefilter",
			SearchRequest{Exe: e.Exe, Name: e.Name, PrefilterMode: "lsh"}, http.StatusOK, true, "lsh"},
		{"lsh with candidates",
			SearchRequest{Exe: e.Exe, Name: e.Name, PrefilterMode: "lsh", Candidates: 5}, http.StatusOK, true, "lsh"},
		{"negative candidates rejected",
			SearchRequest{Exe: e.Exe, Name: e.Name, Candidates: -1, PrefilterMode: "lsh"}, http.StatusBadRequest, false, ""},
		{"unknown mode rejected",
			SearchRequest{Exe: e.Exe, Name: e.Name, PrefilterMode: "minhash"}, http.StatusBadRequest, false, ""},
		{"mode is case-sensitive",
			SearchRequest{Exe: e.Exe, Name: e.Name, PrefilterMode: "LSH"}, http.StatusBadRequest, false, ""},
	}
	for _, tc := range cases {
		rec, resp := postSearch(t, h, tc.req)
		if rec.Code != tc.wantStatus {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, rec.Code, tc.wantStatus, rec.Body.String())
			continue
		}
		if tc.wantStatus != http.StatusOK {
			continue
		}
		if resp.Prefiltered != tc.prefiltered {
			t.Errorf("%s: prefiltered = %v, want %v", tc.name, resp.Prefiltered, tc.prefiltered)
		}
		if resp.PrefilterMode != tc.wantMode {
			t.Errorf("%s: prefilter_mode = %q, want %q", tc.name, resp.PrefilterMode, tc.wantMode)
		}
	}
}

// TestSearchLSHCacheKeySeparation: the same query prefiltered by scan
// and by lsh occupies distinct cache entries — a mode switch can never
// serve the other generator's candidates from cache.
func TestSearchLSHCacheKeySeparation(t *testing.T) {
	db, _ := smallDB(t)
	s := NewFromDB(db, Config{CacheEntries: 64})
	h := s.Handler()
	e := entryWithTruth(t, db, corpus.LibFuncName)

	scanReq := SearchRequest{Exe: e.Exe, Name: e.Name, Candidates: 5, Limit: 100}
	lshReq := SearchRequest{Exe: e.Exe, Name: e.Name, Candidates: 5, Limit: 100, PrefilterMode: "lsh"}

	if _, resp := postSearch(t, h, scanReq); resp == nil || resp.Cached {
		t.Fatal("first scan search should be a cache miss")
	}
	if _, resp := postSearch(t, h, lshReq); resp == nil || resp.Cached {
		t.Fatal("lsh search was served from the scan cache entry")
	}
	_, again := postSearch(t, h, lshReq)
	if again == nil || !again.Cached {
		t.Error("repeated lsh search missed its own cache entry")
	}
	if again.PrefilterMode != "lsh" {
		t.Errorf("cached lsh response echoes mode %q", again.PrefilterMode)
	}
	if got := s.Tel().Get(telemetry.LSHQueries); got == 0 {
		t.Error("lsh_queries stayed zero across lsh searches")
	}
}
