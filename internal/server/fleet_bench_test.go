package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/index"
	"repro/internal/telemetry"
)

// ensureParallelism raises GOMAXPROCS to at least n for the duration of
// a bench report (the container often pins it to 1, which understates a
// single process) and returns a restore func.
func ensureParallelism(n int) func() {
	old := runtime.GOMAXPROCS(0)
	if old >= n {
		return func() {}
	}
	runtime.GOMAXPROCS(n)
	return func() { runtime.GOMAXPROCS(old) }
}

var fleetBenchReport = os.Getenv("BENCH_FLEET_REPORT")

// fleetBenchScenario is one serving topology measured under the same
// closed-loop client load: 64 concurrent clients, one uncached search
// each, retrying on 429 per the server's Retry-After header — exactly
// what a well-behaved tracy client does.
type fleetBenchScenario struct {
	Name    string  `json:"name"`
	Shards  int     `json:"shards"`
	P50MS   float64 `json:"p50_ms"`
	P99MS   float64 `json:"p99_ms"`
	QPS     float64 `json:"qps"`
	Sheds   int64   `json:"sheds_429"`
	Queued  uint64  `json:"queued"`
	Retries int64   `json:"client_retries"`
}

// TestFleetBenchReport measures client-observed latency at 64 concurrent
// requests for a single-process server versus a coordinator over 2 and 4
// shard workers, and writes BENCH_fleet.json at the path in
// BENCH_FLEET_REPORT (skipped otherwise, and in -short mode).
//
// The contrast it captures is admission policy under burst, not raw scan
// speed: the single process bounds in-flight work at 4×GOMAXPROCS and
// sheds the rest with Retry-After: 1, so a 64-client burst pays
// whole-second backoff rounds; the coordinator's bounded queue admits
// the same burst and drains it work-conservingly, so the worst client
// waits only the queue's length times the service time.
func TestFleetBenchReport(t *testing.T) {
	if fleetBenchReport == "" {
		t.Skip("set BENCH_FLEET_REPORT=path to write the report")
	}
	if testing.Short() {
		t.Skip("timing report; skipped in -short mode")
	}
	restore := ensureParallelism(2)
	defer restore()

	db, _ := smallDB(t)
	entries := db.Entries
	const clients = 64

	scenarios := []fleetBenchScenario{
		{Name: "single-process", Shards: 1},
		{Name: "fleet-2", Shards: 2},
		{Name: "fleet-4", Shards: 4},
	}
	for i := range scenarios {
		sc := &scenarios[i]
		var s *Server
		if sc.Shards == 1 {
			// The defaults a plain `tracy serve` gets at GOMAXPROCS 2:
			// in-flight bound 4×2, no queue — excess requests shed.
			s = NewFromDB(db, Config{MaxInFlight: 8, CacheEntries: -1})
		} else {
			var workers []*Server
			s, workers = startFleet(t, db, sc.Shards, Config{
				MaxInFlight: 8, QueueDepth: clients, CacheEntries: -1,
			})
			for _, w := range workers {
				_ = w // torn down by startFleet's cleanup
			}
		}
		ts := httptest.NewServer(s.Handler())
		runFleetBenchScenario(t, ts.URL, entries, clients, sc)
		sc.Queued = s.Tel().Get(telemetry.ServerQueued)
		ts.Close()
		t.Logf("%s: p50 %.1fms p99 %.1fms %.1f qps (%d sheds, %d queued)",
			sc.Name, sc.P50MS, sc.P99MS, sc.QPS, sc.Sheds, sc.Queued)
	}

	base, fleet4 := scenarios[0], scenarios[2]
	report := map[string]any{
		"benchmark": fmt.Sprintf(
			"single process vs scatter-gather fleet, %d-function corpus, %d concurrent closed-loop clients",
			db.Len(), clients),
		"corpus_functions":       db.Len(),
		"concurrent_clients":     clients,
		"gomaxprocs":             runtime.GOMAXPROCS(0),
		"scenarios":              scenarios,
		"p99_speedup_4_shards_x": base.P99MS / fleet4.P99MS,
		"notes": "clients retry 429s after the server's Retry-After (1s); the single process sheds " +
			"the burst beyond max-inflight 8 so tail latency is paid in backoff rounds, while the " +
			"coordinator's priority queue (depth 64) absorbs it and drains work-conservingly",
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(fleetBenchReport, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: p99 %.0fms single vs %.0fms over 4 shards (%.1fx)",
		fleetBenchReport, base.P99MS, fleet4.P99MS, base.P99MS/fleet4.P99MS)
}

// fleetBenchRequests is how many sequential searches each closed-loop
// client issues: enough samples (64×5) for the p99 to reflect the
// steady-state tail, not the first burst.
const fleetBenchRequests = 5

// runFleetBenchScenario drives the closed-loop client fleet against one
// topology and fills in the scenario's latency and throughput fields.
// Latency is client-observed per request, retry backoff included.
func runFleetBenchScenario(t *testing.T, url string, entries []*index.Entry, clients int, sc *fleetBenchScenario) {
	t.Helper()
	lat := make([]time.Duration, clients*fleetBenchRequests)
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		sheds   int64
		retries int64
	)
	hc := &http.Client{Timeout: time.Minute}
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < fleetBenchRequests; r++ {
				e := entries[(c*fleetBenchRequests+r)%len(entries)]
				body, _ := json.Marshal(SearchRequest{Exe: e.Exe, Name: e.Name, Limit: 10})
				start := time.Now()
				for attempt := 0; ; attempt++ {
					resp, err := hc.Post(url+"/v1/search", "application/json", bytes.NewReader(body))
					if err != nil {
						t.Error(err)
						return
					}
					resp.Body.Close()
					if resp.StatusCode == http.StatusOK {
						break
					}
					if resp.StatusCode != http.StatusTooManyRequests || attempt > 30 {
						t.Errorf("client %d: status %d after %d attempts", c, resp.StatusCode, attempt+1)
						return
					}
					backoff := time.Second
					if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
						backoff = time.Duration(ra) * time.Second
					}
					mu.Lock()
					sheds++
					retries++
					mu.Unlock()
					time.Sleep(backoff)
				}
				lat[c*fleetBenchRequests+r] = time.Since(start)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(t0)

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	quantile := func(q float64) float64 {
		i := int(q * float64(len(lat)-1))
		return float64(lat[i].Microseconds()) / 1000
	}
	sc.P50MS = quantile(0.50)
	sc.P99MS = quantile(0.99)
	sc.QPS = float64(len(lat)) / elapsed.Seconds()
	sc.Sheds = sheds
	sc.Retries = retries
}
