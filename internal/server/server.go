// Package server turns the tracelet search engine into a long-running
// HTTP/JSON query service (paper Section 5.2 frames TRACY as a search
// engine over a large code base; this is its serving layer).
//
// The server loads the gob index once and prepares an immutable
// index.Snapshot: entries pre-decomposed per tracelet size and split
// into shards, so one query fans out across shards while any number of
// queries run concurrently with no locks on the read path. A hot reload
// (POST /v1/reload, or SIGHUP via tracy serve) builds a fresh snapshot
// and swaps it in atomically; in-flight queries finish on the old one.
//
// Robustness is part of the design: a bounded in-flight semaphore sheds
// load with 429 instead of queueing unboundedly, every request runs
// under a deadline and a body-size limit, shutdown drains in-flight
// queries, and an LRU cache keyed on (query fingerprint, options,
// snapshot generation) short-circuits repeated searches. Everything
// reports into a telemetry.Collector served at /statsz alongside the
// pprof endpoints.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/index"
	"repro/internal/prep"
	"repro/internal/telemetry"
)

// Config shapes a Server. The zero value of every field selects a
// sensible production default.
type Config struct {
	// DBPath is the gob index to load and hot-reload. Optional when the
	// server is seeded with NewFromDB (reload then requires a path).
	DBPath string

	// Opts are the default matching options (zero value:
	// core.DefaultOptions). A request's k overrides Opts.K if the
	// snapshot precomputed it.
	Opts core.Options

	// Ks lists the tracelet sizes to pre-decompose (default: [Opts.K]).
	Ks []int

	// Shards is the per-query fan-out width (default GOMAXPROCS).
	Shards int

	// MaxInFlight bounds concurrently processed search requests; excess
	// requests are rejected with 429 (default 4*GOMAXPROCS).
	MaxInFlight int

	// QueueDepth bounds requests waiting for an in-flight slot when all
	// MaxInFlight slots are taken. 0 (the default) keeps the legacy
	// behavior: shed immediately with 429. With a positive depth the
	// server queues up to that many requests — interactive searches
	// ahead of batch scans — and sheds only when the queue is also full,
	// keeping the fleet work-conserving under bursts instead of bouncing
	// clients into second-long retry backoffs.
	QueueDepth int

	// Fleet lists worker base URLs, one entry per corpus shard as
	// written by tracy shard. An entry may name several replicas of the
	// same shard separated by "|" (e.g. "http://a1|http://a2"); the
	// coordinator scatters each query to one healthy replica per shard
	// and fails over to siblings. Non-empty turns this server into a
	// scatter-gather coordinator: it loads no index itself and answers
	// every query by fanning out to the fleet and merging the partial
	// top-K lists. See fleet.go.
	Fleet []string

	// ShardTimeout bounds each per-shard RPC in coordinator mode
	// (default 10s).
	ShardTimeout time.Duration

	// ShardHedge, when positive, arms hedged scatter legs: if a shard's
	// chosen replica has not answered within this delay and a sibling
	// replica is available, the coordinator races a second request
	// against it and takes the first answer. 0 disables hedging.
	ShardHedge time.Duration

	// ProbeInterval is how often the coordinator's background prober
	// refreshes each live replica's health (default 1s). Down replicas
	// are re-probed on an exponential backoff starting at 250ms.
	ProbeInterval time.Duration

	// ReplicaDownAfter is how many consecutive non-transport failures
	// mark a replica down (default 3). Transport errors (connection
	// refused/reset) mark it down immediately.
	ReplicaDownAfter int

	// MaxBodyBytes bounds a request body (default 8 MiB).
	MaxBodyBytes int64

	// RequestTimeout is the per-request deadline (default 30s).
	RequestTimeout time.Duration

	// CacheEntries sizes the LRU result cache (default 256; negative
	// disables caching).
	CacheEntries int

	// DegradedMode opts into graceful degradation: when every in-flight
	// slot is taken, instead of shedding with 429 the server answers from
	// the result cache when it can, and otherwise falls back to a
	// prefilter-only ranking marked degraded:true — a reduced-quality
	// answer that is orders of magnitude cheaper than an exact search.
	DegradedMode bool

	// Faults, when non-nil, arms fault injection at the server's named
	// fault points (decode, cache, search, reload) — chaos testing only.
	// tracy serve arms it from the TRACY_FAULTS environment variable.
	Faults *faultinject.Injector

	// Tel receives server telemetry and is served at /statsz (default: a
	// fresh collector).
	Tel *telemetry.Collector

	// FlightSlow and FlightErrors size the flight recorder served at
	// /debug/requests: the N slowest and the N most recent errored
	// requests, each with its full span tree (defaults
	// telemetry.DefaultFlightSlow / DefaultFlightErrors).
	FlightSlow   int
	FlightErrors int

	// AccessLog, when non-nil, receives one structured JSON line per
	// logged request. Lines are sampled 1-in-AccessLogSample (default 1:
	// every request), but errors and slow queries always log.
	AccessLog       io.Writer
	AccessLogSample int

	// SlowQueryThreshold marks requests at least this slow: they bump
	// server_slow_queries, always reach the access log, and compete for
	// flight-recorder retention (default telemetry.DefaultSlowQuery).
	SlowQueryThreshold time.Duration
}

// Named fault points the server fires (see internal/faultinject).
const (
	FaultDecode = "decode" // request-body decode
	FaultCache  = "cache"  // result-cache lookup/store (fault = cache miss)
	FaultSearch = "search" // snapshot search, after the cache miss
	FaultReload = "reload" // index reload
	FaultLSH    = "lsh"    // lsh candidate generation (fault = scan fallback)
	FaultShard  = "shard"  // coordinator scatter leg; "shard<i>" targets one shard
)

// snapState is what one atomic snapshot swap publishes.
type snapState struct {
	snap     *index.Snapshot
	gen      uint64
	loadedAt time.Time
	info     index.Info // provenance of the loaded index (format, mmap)
	loadMS   float64    // load + snapshot-build time
}

// Server is the query service. Create with New or NewFromDB.
type Server struct {
	cfg     Config
	opts    core.Options
	ks      []int
	tel     *telemetry.Collector
	snap    atomic.Pointer[snapState]
	gen     atomic.Uint64
	adm     *admission
	backend SearchBackend
	cache   *resultCache
	faults  *faultinject.Injector // nil when chaos is off

	flight     *telemetry.FlightRecorder
	accessLog  *telemetry.AccessLogger // nil when no AccessLog writer
	slowThresh time.Duration

	httpSrv *http.Server

	// holdForTest, when non-nil, blocks every search request after it
	// acquires its in-flight slot — the hook saturation and drain tests
	// use to hold requests in flight deterministically.
	holdForTest chan struct{}
}

// New builds a server and, when cfg.DBPath is set, loads the index.
func New(cfg Config) (*Server, error) {
	s := newServer(cfg)
	if cfg.DBPath != "" {
		if _, err := s.reload(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// NewFromDB builds a server over an in-memory database (no DBPath
// needed); the snapshot is built immediately.
func NewFromDB(db *index.DB, cfg Config) *Server {
	s := newServer(cfg)
	s.install(db, time.Now())
	return s
}

func newServer(cfg Config) *Server {
	opts := cfg.Opts
	if opts == (core.Options{}) {
		opts = core.DefaultOptions()
	}
	if opts.K <= 0 {
		opts.K = 3
	}
	ks := cfg.Ks
	if len(ks) == 0 {
		ks = []int{opts.K}
	}
	tel := cfg.Tel
	if tel == nil {
		tel = telemetry.New()
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	cacheN := cfg.CacheEntries
	switch {
	case cacheN == 0:
		cacheN = 256
	case cacheN < 0:
		cacheN = 0 // disabled
	}
	if cfg.Faults != nil && cfg.Faults.Tel == nil {
		cfg.Faults.Tel = tel
	}
	slowT := cfg.SlowQueryThreshold
	if slowT <= 0 {
		slowT = telemetry.DefaultSlowQuery
	}
	s := &Server{
		cfg:        cfg,
		opts:       opts,
		ks:         ks,
		tel:        tel,
		adm:        newAdmission(maxInFlight, cfg.QueueDepth, tel),
		cache:      newResultCache(cacheN),
		faults:     cfg.Faults,
		flight:     telemetry.NewFlightRecorder(cfg.FlightSlow, cfg.FlightErrors),
		accessLog:  telemetry.NewAccessLogger(cfg.AccessLog, cfg.AccessLogSample, slowT),
		slowThresh: slowT,
	}
	if len(cfg.Fleet) > 0 {
		s.backend = newFleetBackend(s)
	} else {
		s.backend = localBackend{s}
	}
	return s
}

// Tel returns the server's telemetry collector.
func (s *Server) Tel() *telemetry.Collector { return s.tel }

// Flight returns the server's flight recorder (served at
// /debug/requests).
func (s *Server) Flight() *telemetry.FlightRecorder { return s.flight }

// install builds a snapshot of db and swaps it in; t0 is when the load
// began (file open counts toward loadMS). The swapped-in index's
// provenance is published as the tracy_index_info metric so dashboards
// can tell which on-disk format (and whether an mmap) is live.
func (s *Server) install(db *index.DB, t0 time.Time) *snapState {
	db.Tel = s.tel
	st := &snapState{
		snap:     index.BuildSnapshot(db, s.ks, s.cfg.Shards),
		gen:      s.gen.Add(1),
		loadedAt: time.Now(),
		info:     db.Info(),
		loadMS:   msSince(t0),
	}
	s.snap.Store(st)
	s.cache.purge()
	s.tel.SetInfo("index_info", map[string]string{
		"format":     strconv.Itoa(st.info.Version),
		"mapped":     strconv.FormatBool(st.info.Mapped),
		"path":       st.info.Path,
		"functions":  strconv.Itoa(st.info.Funcs),
		"generation": strconv.FormatUint(st.gen, 10),
	})
	return st
}

// Reload re-reads cfg.DBPath and atomically swaps in the new snapshot.
// In-flight queries keep using the old snapshot until they return.
func (s *Server) Reload() (*ReloadResponse, error) {
	st, err := s.reload()
	if err != nil {
		return nil, err
	}
	s.tel.Inc(telemetry.ServerReloads)
	return st, nil
}

func (s *Server) reload() (*ReloadResponse, error) {
	if s.cfg.DBPath == "" {
		return nil, errors.New("server: no index path configured for reload")
	}
	if err := s.faults.Fire(context.Background(), FaultReload); err != nil {
		return nil, err
	}
	t0 := time.Now()
	// OpenFile picks the loader by sniffing the prelude: v3 columnar
	// files are mmapped (lazy, page-granular), gob formats are decoded to
	// the heap. The previous snapshot's mapping is NOT closed here —
	// in-flight queries may still be decoding from it; once they drain
	// and the old state is collected, its finalizer unmaps.
	db, err := index.OpenFile(s.cfg.DBPath)
	if err != nil {
		return nil, err
	}
	st := s.install(db, t0)
	return &ReloadResponse{
		Functions:  st.snap.Len(),
		Generation: st.gen,
		TookMS:     msSince(t0),
		Format:     st.info.Version,
		Mapped:     st.info.Mapped,
	}, nil
}

// recoverPanics is the outermost per-request middleware: a panicking
// handler answers 500 with a JSON error and bumps server_panics instead
// of tearing down the connection (net/http would survive the panic but
// the client would see an aborted response and the failure would go
// uncounted). http.ErrAbortHandler keeps its meaning and is re-raised.
func (s *Server) recoverPanics(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				panic(p)
			}
			s.tel.Inc(telemetry.ServerPanics)
			msg := fmt.Sprintf("internal error: %v", p)
			obsFromContext(r.Context()).setErr(msg)
			writeJSON(w, http.StatusInternalServerError, ErrorResponse{
				Error:   msg,
				TraceID: telemetry.SpanFromContext(r.Context()).TraceID(),
			})
		}()
		h.ServeHTTP(w, r)
	})
}

// Handler returns the service mux: the /v1 API plus /statsz, /metrics
// and /debug/pprof from the telemetry collector and the flight
// recorder's /debug/requests.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	timeoutBody, _ := json.Marshal(ErrorResponse{Error: "request deadline exceeded"})
	api := func(h http.HandlerFunc) http.Handler {
		// TimeoutHandler both bounds the wall-clock response time and — by
		// wrapping the request context in a deadline — turns RequestTimeout
		// into a real compute budget now that the search path is
		// cancellable. Panics inside it propagate out, so the recovery
		// middleware wraps it; the observe middleware goes outermost so the
		// trace spans the request's full life including a timeout's 503.
		return s.observe(s.recoverPanics(http.TimeoutHandler(h, s.cfg.RequestTimeout, string(timeoutBody))))
	}
	mux.Handle("POST /v1/search", api(s.handleSearch))
	mux.Handle("POST /v1/search/batch", api(s.handleBatch))
	mux.Handle("GET /v1/functions", api(s.handleFunctions))
	mux.Handle("GET /v1/fleet/function", api(s.handleFleetFunction))
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz) // no deadline: must answer under load
	mux.Handle("POST /v1/reload", api(s.handleReload))
	th := telemetry.Handler(s.tel)
	mux.Handle("/statsz", th)
	mux.Handle("/metrics", th)
	mux.Handle("/debug/pprof/", th)
	mux.Handle("GET /debug/requests", s.flight)
	return mux
}

// Start listens on addr and serves in a background goroutine; use
// Shutdown to stop. It returns the bound address (useful with ":0").
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.httpSrv = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = s.httpSrv.Serve(ln) }()
	return ln.Addr(), nil
}

// Shutdown stops accepting new connections, drains in-flight requests
// (up to ctx's deadline), and stops backend background work (the
// coordinator's membership prober).
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	if s.httpSrv != nil {
		err = s.httpSrv.Shutdown(ctx)
	}
	if c, ok := s.backend.(io.Closer); ok {
		_ = c.Close()
	}
	return err
}

// httpError carries a status code through the request pipeline, plus
// optional fleet failure detail (coordinator 502s: per-replica errors
// and a Retry-After derived from the membership prober's schedule).
type httpError struct {
	status     int
	msg        string
	retryAfter time.Duration // >0: emit a Retry-After header
	fleet      []ReplicaError
}

func (e *httpError) Error() string { return e.msg }

func errf(status int, format string, args ...any) *httpError {
	return &httpError{status: status, msg: fmt.Sprintf(format, args...)}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr answers r with err's status and message, stamping the
// request's trace ID into the body and recording the message for the
// access log / flight recorder.
func writeErr(w http.ResponseWriter, r *http.Request, err error) {
	he := &httpError{status: http.StatusInternalServerError, msg: err.Error()}
	errors.As(err, &he)
	obsFromContext(r.Context()).setErr(he.msg)
	if he.retryAfter > 0 {
		secs := int64((he.retryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, he.status, ErrorResponse{
		Error:   he.msg,
		TraceID: telemetry.SpanFromContext(r.Context()).TraceID(),
		Fleet:   he.fleet,
	})
}

func msSince(t0 time.Time) float64 {
	return float64(time.Since(t0).Nanoseconds()) / 1e6
}

// shedRetryAfter is the backoff hint attached to every 429: the server
// is saturated with searches that take O(100ms..s), so "come back in a
// second" is an honest floor for when a slot may free up.
const shedRetryAfter = "1"

// shed answers a saturated request with 429 plus a Retry-After hint.
func (s *Server) shed(w http.ResponseWriter, r *http.Request) {
	s.tel.Inc(telemetry.ServerRejected)
	w.Header().Set("Retry-After", shedRetryAfter)
	writeErr(w, r, errf(http.StatusTooManyRequests, "server saturated: %d searches in flight", s.adm.capacity))
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	release, err := s.adm.acquire(r.Context(), classInteractive)
	if err != nil {
		// Gave up (or deadlined) while queued for a slot.
		writeErr(w, r, queueErr(err))
		return
	}
	if release == nil {
		if s.cfg.DegradedMode {
			s.serveDegradedSearch(w, r)
			return
		}
		s.shed(w, r)
		return
	}
	defer release()
	s.tel.Inc(telemetry.ServerRequests)
	lt := s.tel.StartTimer(telemetry.ServerLatency)
	defer lt.Stop()
	if s.holdForTest != nil {
		<-s.holdForTest
	}
	sp := telemetry.SpanFromContext(r.Context())
	var req SearchRequest
	if err := s.decodeRequest(w, r, sp, &req); err != nil {
		writeErr(w, r, err)
		return
	}
	resp, err := s.backend.Search(r.Context(), &req)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	resp.TraceID = sp.TraceID()
	writeJSON(w, http.StatusOK, resp)
}

// serveDegradedSearch answers a search when every in-flight slot is
// taken and DegradedMode is on: from the result cache if the exact
// answer is already there, else with a prefilter-only ranking marked
// degraded. Both are cheap enough to run outside the slot semaphore.
func (s *Server) serveDegradedSearch(w http.ResponseWriter, r *http.Request) {
	s.tel.Inc(telemetry.ServerRequests)
	lt := s.tel.StartTimer(telemetry.ServerLatency)
	defer lt.Stop()
	sp := telemetry.SpanFromContext(r.Context())
	var req SearchRequest
	if err := s.decodeRequest(w, r, sp, &req); err != nil {
		writeErr(w, r, err)
		return
	}
	resp, err := s.backend.Degraded(r.Context(), &req)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	resp.TraceID = sp.TraceID()
	writeJSON(w, http.StatusOK, resp)
}

// maxBatch bounds the queries in one batch request.
const maxBatch = 64

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	// One batch holds one in-flight slot: its queries run back to back,
	// and each still fans out across all snapshot shards. Batches queue
	// in the lower-priority class so a standing scan workload cannot
	// starve interactive point queries of freed slots.
	degraded := false
	release, aerr := s.adm.acquire(r.Context(), classBatch)
	if aerr != nil {
		writeErr(w, r, queueErr(aerr))
		return
	}
	if release == nil {
		if !s.cfg.DegradedMode {
			s.shed(w, r)
			return
		}
		degraded = true
	} else {
		defer release()
	}
	s.tel.Inc(telemetry.ServerRequests)
	lt := s.tel.StartTimer(telemetry.ServerLatency)
	defer lt.Stop()
	if !degraded && s.holdForTest != nil {
		<-s.holdForTest
	}
	sp := telemetry.SpanFromContext(r.Context())
	var req BatchRequest
	if err := s.decodeRequest(w, r, sp, &req); err != nil {
		writeErr(w, r, err)
		return
	}
	if len(req.Queries) == 0 {
		writeErr(w, r, errf(http.StatusBadRequest, "batch: no queries"))
		return
	}
	if len(req.Queries) > maxBatch {
		writeErr(w, r, errf(http.StatusBadRequest, "batch: %d queries exceeds the limit of %d", len(req.Queries), maxBatch))
		return
	}
	out := BatchResponse{Results: make([]BatchItem, len(req.Queries)), TraceID: sp.TraceID()}
	for i := range req.Queries {
		// Each batch item gets its own child span so the span tree shows
		// per-query stage timings: query:N -> resolve/cache/prefilter/...
		qsp := sp.Child(fmt.Sprintf("query:%d", i))
		qctx := telemetry.ContextWithSpan(r.Context(), qsp)
		var resp *SearchResponse
		var err error
		if degraded {
			resp, err = s.backend.Degraded(qctx, &req.Queries[i])
		} else {
			resp, err = s.backend.Search(qctx, &req.Queries[i])
		}
		qsp.End()
		if err != nil {
			out.Results[i].Error = err.Error()
			continue
		}
		resp.TraceID = sp.TraceID()
		out.Results[i].Result = resp
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleFunctions(w http.ResponseWriter, r *http.Request) {
	exe := r.URL.Query().Get("exe")
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &limit); err != nil || limit < 0 {
			writeErr(w, r, errf(http.StatusBadRequest, "functions: bad limit %q", v))
			return
		}
	}
	resp, err := s.backend.Functions(r.Context(), exe, limit)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.backend.Health(r.Context()))
}

// handleFleetFunction serves the fleet-internal by-reference query
// lookup: the gob of one indexed function, so a coordinator can resolve
// an exe/name query against whichever shard owns it.
func (s *Server) handleFleetFunction(w http.ResponseWriter, r *http.Request) {
	st := s.snap.Load()
	if st == nil {
		writeErr(w, r, errf(http.StatusServiceUnavailable, "no index loaded"))
		return
	}
	exe := r.URL.Query().Get("exe")
	name := r.URL.Query().Get("name")
	if exe == "" || name == "" {
		writeErr(w, r, errf(http.StatusBadRequest, "fleet function lookup needs exe and name"))
		return
	}
	e := st.snap.Lookup(exe, name)
	if e == nil {
		writeErr(w, r, errf(http.StatusNotFound, "no indexed function %s/%s", exe, name))
		return
	}
	qgob, _, err := encodeQueryGob(e.Function())
	if err != nil {
		writeErr(w, r, errf(http.StatusInternalServerError, "encoding function: %v", err))
		return
	}
	writeJSON(w, http.StatusOK, FleetFunctionResponse{Exe: exe, Name: name, FunctionGob: qgob})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	resp, err := s.backend.Reload(r.Context())
	if err != nil {
		var he *httpError
		if !errors.As(err, &he) {
			err = errf(http.StatusConflict, "reload: %v", err)
		}
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// decodeRequest is decodeBody under a "decode" stage span and the
// request-decode latency histogram.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request, sp *telemetry.Span, v any) error {
	dsp := sp.Child("decode")
	dt := s.tel.StartTimer(telemetry.RequestDecodeLatency)
	err := s.decodeBody(w, r, v)
	dt.Stop()
	dsp.End()
	return err
}

// decodeBody JSON-decodes a size-limited request body.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	if err := s.faults.Fire(r.Context(), FaultDecode); err != nil {
		return errf(http.StatusInternalServerError, "decode: %v", err)
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return errf(http.StatusRequestEntityTooLarge, "body exceeds %d bytes", mbe.Limit)
		}
		return errf(http.StatusBadRequest, "bad request body: %v", err)
	}
	return nil
}

// searchPlan is the validated, resolved prelude shared by the exact and
// degraded search paths.
type searchPlan struct {
	st      *snapState
	query   *prep.Function
	ref     *core.Decomposed
	k       int
	limit   int
	pf      index.PrefilterOptions
	effCand int
}

// planSearch validates req, resolves the query function, and decomposes
// it — everything a search needs before any corpus work happens.
func (s *Server) planSearch(req *SearchRequest) (*searchPlan, error) {
	st := s.snap.Load()
	if st == nil {
		return nil, errf(http.StatusServiceUnavailable, "no index loaded")
	}
	k := req.K
	if k <= 0 {
		k = s.opts.K
	}
	if !st.snap.SupportsK(k) {
		return nil, errf(http.StatusBadRequest, "k=%d not precomputed (supported: %v)", k, st.snap.Ks())
	}
	limit := req.Limit
	switch {
	case limit <= 0:
		limit = 10
	case limit > 1000:
		limit = 1000
	}
	if req.MinScore < 0 || req.MinScore > 1 {
		return nil, errf(http.StatusBadRequest, "min_score %v outside [0,1]", req.MinScore)
	}
	if req.Candidates < 0 {
		return nil, errf(http.StatusBadRequest, "candidates %d must be positive", req.Candidates)
	}
	if req.TimeoutMS < 0 {
		return nil, errf(http.StatusBadRequest, "timeout_ms %d must be positive", req.TimeoutMS)
	}
	mode, ok := index.ParsePrefilterMode(req.PrefilterMode)
	if !ok {
		return nil, errf(http.StatusBadRequest, "prefilter_mode %q unknown (want scan or lsh)", req.PrefilterMode)
	}
	pf := index.PrefilterOptions{Enabled: req.Prefilter, Candidates: req.Candidates, Mode: mode}
	if mode == index.ModeLSH {
		// Asking for lsh candidates is asking for the prefilter.
		pf.Enabled = true
	}
	if pf.Candidates > 1000 {
		pf.Candidates = 1000
	}
	effCand := 0
	if pf.Enabled || pf.Candidates > 0 {
		pf.Enabled = true
		effCand = pf.Candidates
		if effCand <= 0 {
			effCand = index.DefaultPrefilterCandidates
		}
	}
	query, err := s.resolveQuery(st, req)
	if err != nil {
		return nil, err
	}
	return &searchPlan{
		st:      st,
		query:   query,
		ref:     core.DecomposeT(query, k, s.tel),
		k:       k,
		limit:   limit,
		pf:      pf,
		effCand: effCand,
	}, nil
}

// reqCtx derives the search's compute context: the request context
// (already deadline-bounded by the TimeoutHandler) tightened further by
// the request's own timeout_ms when given.
func reqCtx(ctx context.Context, req *SearchRequest) (context.Context, context.CancelFunc) {
	if req.TimeoutMS > 0 {
		return context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
	}
	return ctx, func() {}
}

// ctxHTTPErr maps a context abort to its HTTP status: 504 for an
// expired deadline, 499 (the de-facto "client closed request" code) for
// an explicit cancel. Nil for any other error.
func ctxHTTPErr(err error) *httpError {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return errf(http.StatusGatewayTimeout, "search deadline exceeded")
	case errors.Is(err, context.Canceled):
		return errf(499, "search cancelled by client")
	}
	return nil
}

// queueErr maps a request abandoned while queued for an in-flight slot
// to its HTTP error.
func queueErr(err error) *httpError {
	if he := ctxHTTPErr(err); he != nil {
		return he
	}
	return errf(http.StatusServiceUnavailable, "queued request aborted: %v", err)
}

// runSearch executes one search (shared by the single and batch
// endpoints): resolve the query function, consult the cache, fan out
// over the snapshot under ctx, rank top-K.
func (s *Server) runSearch(ctx context.Context, req *SearchRequest) (*SearchResponse, error) {
	t0 := time.Now()
	sp := telemetry.SpanFromContext(ctx)
	rsp := sp.Child("resolve")
	p, err := s.planSearch(req)
	rsp.End()
	if err != nil {
		return nil, err
	}
	ctx, cancel := reqCtx(ctx, req)
	defer cancel()

	opts := s.opts
	opts.K = p.k
	opts.Tel = s.tel
	key := cacheKey{fp: p.ref.Fingerprint(), gen: p.st.gen, k: p.k, limit: p.limit,
		minScore: req.MinScore, candidates: p.effCand, mode: p.pf.Mode}
	// A cache fault means the cache is unavailable, not that the search
	// fails: degrade to a miss (and skip the store below).
	cacheOK := s.faults.Fire(ctx, FaultCache) == nil
	if cacheOK {
		csp := sp.Child("cache")
		ct := s.tel.StartTimer(telemetry.CacheLookupLatency)
		cached, ok := s.cache.get(key)
		ct.Stop()
		csp.End()
		if ok {
			s.tel.Inc(telemetry.ServerCacheHits)
			sp.Set("cached", 1)
			resp := *cached // shallow copy; shared Hits are read-only
			resp.Cached = true
			resp.TookMS = msSince(t0)
			return &resp, nil
		}
		s.tel.Inc(telemetry.ServerCacheMisses)
	}

	if err := s.faults.Fire(ctx, FaultSearch); err != nil {
		return nil, errf(http.StatusInternalServerError, "search: %v", err)
	}
	// An injected lsh fault models the candidate generator being
	// unavailable (not the search failing): degrade to the scan prefilter
	// and mark the answer, mirroring the organic no-signatures fallback.
	lshFellBack := false
	if p.pf.Mode == index.ModeLSH && s.faults.Fire(ctx, FaultLSH) != nil {
		s.tel.Inc(telemetry.LSHFallbacks)
		p.pf.Mode = index.ModeScan
		lshFellBack = true
	}
	hits, serr := p.st.snap.SearchDecomposedCtx(ctx, p.ref, opts, p.pf)
	if serr != nil {
		if he := ctxHTTPErr(serr); he != nil {
			return nil, he
		}
		return nil, errf(http.StatusBadRequest, "%v", serr)
	}
	top := index.TopK(hits, p.limit, req.MinScore)
	resp := &SearchResponse{
		Query:       p.query.Name,
		QueryBlocks: p.query.NumBlocks(),
		QueryInsts:  p.query.NumInsts(),
		K:           p.k,
		Candidates:  len(hits),
		Prefiltered: p.pf.Enabled,
		Hits:        make([]Hit, len(top)),
	}
	if p.pf.Enabled {
		resp.PrefilterMode = string(p.pf.Mode)
	}
	if lshFellBack {
		s.tel.Inc(telemetry.ServerDegraded)
		sp.Set("degraded", 1)
		resp.Degraded = true
		resp.DegradedReason = "lsh prefilter unavailable: fell back to scan candidates"
	}
	for i, h := range top {
		if h.Result.Truncated {
			sp.Set("truncated", 1)
		}
		resp.Hits[i] = Hit{
			Exe:            h.Entry.Exe,
			Name:           h.Entry.Name,
			Addr:           h.Entry.Addr,
			Score:          h.Result.SimilarityScore,
			IsMatch:        h.Result.IsMatch,
			Matched:        h.Result.Matched(),
			RefTracelets:   h.Result.RefTracelets,
			MatchedRewrite: h.Result.MatchedRewrite,
		}
	}
	resp.TookMS = msSince(t0)
	// A fell-back answer is degraded and must not shadow the real lsh
	// result once the fault clears: never cache it.
	if cacheOK && !lshFellBack {
		s.cache.put(key, resp)
	}
	return resp, nil
}

// runDegraded answers a search without taking an in-flight slot: a
// result-cache hit is served at full quality; otherwise the snapshot's
// prefilter ranks the corpus by shared features and the top entries are
// returned with degraded:true — feature-share ratios in place of
// similarity scores, IsMatch never set. Degraded answers live in their
// own cache keyspace so they can never shadow an exact result.
func (s *Server) runDegraded(ctx context.Context, req *SearchRequest) (*SearchResponse, error) {
	t0 := time.Now()
	sp := telemetry.SpanFromContext(ctx)
	rsp := sp.Child("resolve")
	p, err := s.planSearch(req)
	rsp.End()
	if err != nil {
		return nil, err
	}
	ctx, cancel := reqCtx(ctx, req)
	defer cancel()

	exactKey := cacheKey{fp: p.ref.Fingerprint(), gen: p.st.gen, k: p.k, limit: p.limit,
		minScore: req.MinScore, candidates: p.effCand, mode: p.pf.Mode}
	cacheOK := s.faults.Fire(ctx, FaultCache) == nil
	csp := sp.Child("cache")
	ct := s.tel.StartTimer(telemetry.CacheLookupLatency)
	if cacheOK {
		if cached, ok := s.cache.get(exactKey); ok {
			ct.Stop()
			csp.End()
			s.tel.Inc(telemetry.ServerCacheHits)
			sp.Set("cached", 1)
			resp := *cached
			resp.Cached = true
			resp.TookMS = msSince(t0)
			return &resp, nil
		}
	}

	s.tel.Inc(telemetry.ServerDegraded)
	sp.Set("degraded", 1)
	degKey := cacheKey{fp: p.ref.Fingerprint(), gen: p.st.gen, k: p.k, limit: p.limit, degraded: true}
	if cacheOK {
		cached, ok := s.cache.get(degKey)
		ct.Stop()
		csp.End()
		if ok {
			s.tel.Inc(telemetry.ServerCacheHits)
			sp.Set("cached", 1)
			resp := *cached
			resp.Cached = true
			resp.TookMS = msSince(t0)
			return &resp, nil
		}
		s.tel.Inc(telemetry.ServerCacheMisses)
	} else {
		ct.Stop()
		csp.End()
	}

	if err := s.faults.Fire(ctx, FaultSearch); err != nil {
		return nil, errf(http.StatusInternalServerError, "search: %v", err)
	}
	ranked, rerr := p.st.snap.PrefilterRank(ctx, p.ref, p.limit)
	if rerr != nil {
		if he := ctxHTTPErr(rerr); he != nil {
			return nil, he
		}
		return nil, errf(http.StatusInternalServerError, "%v", rerr)
	}
	qf := len(index.QueryFeatures(p.ref))
	entries := p.st.snap.Entries()
	resp := &SearchResponse{
		Query:          p.query.Name,
		QueryBlocks:    p.query.NumBlocks(),
		QueryInsts:     p.query.NumInsts(),
		K:              p.k,
		Candidates:     len(ranked),
		Degraded:       true,
		DegradedReason: "server saturated: prefilter-only ranking, no exact comparison",
		Hits:           make([]Hit, len(ranked)),
	}
	for i, r := range ranked {
		e := entries[r.ID]
		score := 0.0
		if qf > 0 {
			score = float64(r.Shared) / float64(qf)
			if score > 1 {
				score = 1
			}
		}
		resp.Hits[i] = Hit{Exe: e.Exe, Name: e.Name, Addr: e.Addr, Score: score}
	}
	resp.TookMS = msSince(t0)
	if cacheOK {
		s.cache.put(degKey, resp)
	}
	return resp, nil
}

// resolveQuery produces the query function from any form of
// SearchRequest: an uploaded image, a by-reference (exe, name) lookup
// in the local snapshot, or a fleet-internal pre-resolved QueryGob.
func (s *Server) resolveQuery(st *snapState, req *SearchRequest) (*prep.Function, error) {
	byGob := req.QueryGob != ""
	byImage := req.Image != ""
	byRef := req.Exe != "" || req.Name != ""
	switch {
	case byGob && (byImage || byRef), byImage && byRef:
		return nil, errf(http.StatusBadRequest, "give either image or exe/name, not both")
	case byGob:
		fn, err := decodeQueryGob(req.QueryGob)
		if err != nil {
			return nil, errf(http.StatusBadRequest, "%v", err)
		}
		return fn, nil
	case byRef:
		if req.Exe == "" || req.Name == "" {
			return nil, errf(http.StatusBadRequest, "reference queries need both exe and name")
		}
		e := st.snap.Lookup(req.Exe, req.Name)
		if e == nil {
			return nil, errf(http.StatusNotFound, "no indexed function %s/%s", req.Exe, req.Name)
		}
		return e.Function(), nil
	case byImage:
		return liftQueryImage(req)
	default:
		return nil, errf(http.StatusBadRequest, "empty query: set image or exe/name")
	}
}

// liftQueryImage decodes and lifts an uploaded query image, picking the
// requested function (default: the largest). Shared by the local
// resolver and the coordinator, which lifts images itself so workers
// only ever see pre-resolved functions.
func liftQueryImage(req *SearchRequest) (*prep.Function, error) {
	img, err := req.DecodeImage()
	if err != nil {
		return nil, errf(http.StatusBadRequest, "bad base64 image: %v", err)
	}
	fns, err := prep.LiftImage(img)
	if err != nil {
		return nil, errf(http.StatusBadRequest, "lifting image: %v", err)
	}
	if len(fns) == 0 {
		return nil, errf(http.StatusBadRequest, "image has no functions")
	}
	if req.Function != "" {
		for _, fn := range fns {
			if fn.Name == req.Function {
				return fn, nil
			}
		}
		return nil, errf(http.StatusNotFound, "image has no function %q", req.Function)
	}
	best := fns[0]
	for _, fn := range fns[1:] {
		if fn.NumInsts() > best.NumInsts() {
			best = fn
		}
	}
	return best, nil
}
