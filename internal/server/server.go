// Package server turns the tracelet search engine into a long-running
// HTTP/JSON query service (paper Section 5.2 frames TRACY as a search
// engine over a large code base; this is its serving layer).
//
// The server loads the gob index once and prepares an immutable
// index.Snapshot: entries pre-decomposed per tracelet size and split
// into shards, so one query fans out across shards while any number of
// queries run concurrently with no locks on the read path. A hot reload
// (POST /v1/reload, or SIGHUP via tracy serve) builds a fresh snapshot
// and swaps it in atomically; in-flight queries finish on the old one.
//
// Robustness is part of the design: a bounded in-flight semaphore sheds
// load with 429 instead of queueing unboundedly, every request runs
// under a deadline and a body-size limit, shutdown drains in-flight
// queries, and an LRU cache keyed on (query fingerprint, options,
// snapshot generation) short-circuits repeated searches. Everything
// reports into a telemetry.Collector served at /statsz alongside the
// pprof endpoints.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/prep"
	"repro/internal/telemetry"
)

// Config shapes a Server. The zero value of every field selects a
// sensible production default.
type Config struct {
	// DBPath is the gob index to load and hot-reload. Optional when the
	// server is seeded with NewFromDB (reload then requires a path).
	DBPath string

	// Opts are the default matching options (zero value:
	// core.DefaultOptions). A request's k overrides Opts.K if the
	// snapshot precomputed it.
	Opts core.Options

	// Ks lists the tracelet sizes to pre-decompose (default: [Opts.K]).
	Ks []int

	// Shards is the per-query fan-out width (default GOMAXPROCS).
	Shards int

	// MaxInFlight bounds concurrently processed search requests; excess
	// requests are rejected with 429 (default 4*GOMAXPROCS).
	MaxInFlight int

	// MaxBodyBytes bounds a request body (default 8 MiB).
	MaxBodyBytes int64

	// RequestTimeout is the per-request deadline (default 30s).
	RequestTimeout time.Duration

	// CacheEntries sizes the LRU result cache (default 256; negative
	// disables caching).
	CacheEntries int

	// Tel receives server telemetry and is served at /statsz (default: a
	// fresh collector).
	Tel *telemetry.Collector
}

// snapState is what one atomic snapshot swap publishes.
type snapState struct {
	snap     *index.Snapshot
	gen      uint64
	loadedAt time.Time
}

// Server is the query service. Create with New or NewFromDB.
type Server struct {
	cfg   Config
	opts  core.Options
	ks    []int
	tel   *telemetry.Collector
	snap  atomic.Pointer[snapState]
	gen   atomic.Uint64
	sem   chan struct{}
	cache *resultCache

	httpSrv *http.Server

	// holdForTest, when non-nil, blocks every search request after it
	// acquires its in-flight slot — the hook saturation and drain tests
	// use to hold requests in flight deterministically.
	holdForTest chan struct{}
}

// New builds a server and, when cfg.DBPath is set, loads the index.
func New(cfg Config) (*Server, error) {
	s := newServer(cfg)
	if cfg.DBPath != "" {
		if _, err := s.reload(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// NewFromDB builds a server over an in-memory database (no DBPath
// needed); the snapshot is built immediately.
func NewFromDB(db *index.DB, cfg Config) *Server {
	s := newServer(cfg)
	s.install(db)
	return s
}

func newServer(cfg Config) *Server {
	opts := cfg.Opts
	if opts == (core.Options{}) {
		opts = core.DefaultOptions()
	}
	if opts.K <= 0 {
		opts.K = 3
	}
	ks := cfg.Ks
	if len(ks) == 0 {
		ks = []int{opts.K}
	}
	tel := cfg.Tel
	if tel == nil {
		tel = telemetry.New()
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	cacheN := cfg.CacheEntries
	switch {
	case cacheN == 0:
		cacheN = 256
	case cacheN < 0:
		cacheN = 0 // disabled
	}
	return &Server{
		cfg:   cfg,
		opts:  opts,
		ks:    ks,
		tel:   tel,
		sem:   make(chan struct{}, maxInFlight),
		cache: newResultCache(cacheN),
	}
}

// Tel returns the server's telemetry collector.
func (s *Server) Tel() *telemetry.Collector { return s.tel }

// install builds a snapshot of db and swaps it in.
func (s *Server) install(db *index.DB) *snapState {
	db.Tel = s.tel
	st := &snapState{
		snap:     index.BuildSnapshot(db, s.ks, s.cfg.Shards),
		gen:      s.gen.Add(1),
		loadedAt: time.Now(),
	}
	s.snap.Store(st)
	s.cache.purge()
	return st
}

// Reload re-reads cfg.DBPath and atomically swaps in the new snapshot.
// In-flight queries keep using the old snapshot until they return.
func (s *Server) Reload() (*ReloadResponse, error) {
	st, err := s.reload()
	if err != nil {
		return nil, err
	}
	s.tel.Inc(telemetry.ServerReloads)
	return st, nil
}

func (s *Server) reload() (*ReloadResponse, error) {
	if s.cfg.DBPath == "" {
		return nil, errors.New("server: no index path configured for reload")
	}
	t0 := time.Now()
	f, err := os.Open(s.cfg.DBPath)
	if err != nil {
		return nil, err
	}
	db, err := index.Load(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	st := s.install(db)
	return &ReloadResponse{
		Functions:  st.snap.Len(),
		Generation: st.gen,
		TookMS:     msSince(t0),
	}, nil
}

// Handler returns the service mux: the /v1 API plus /statsz and
// /debug/pprof from the telemetry collector.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	timeoutBody, _ := json.Marshal(ErrorResponse{Error: "request deadline exceeded"})
	api := func(h http.HandlerFunc) http.Handler {
		return http.TimeoutHandler(h, s.cfg.RequestTimeout, string(timeoutBody))
	}
	mux.Handle("POST /v1/search", api(s.handleSearch))
	mux.Handle("POST /v1/search/batch", api(s.handleBatch))
	mux.Handle("GET /v1/functions", api(s.handleFunctions))
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz) // no deadline: must answer under load
	mux.Handle("POST /v1/reload", api(s.handleReload))
	th := telemetry.Handler(s.tel)
	mux.Handle("/statsz", th)
	mux.Handle("/debug/pprof/", th)
	return mux
}

// Start listens on addr and serves in a background goroutine; use
// Shutdown to stop. It returns the bound address (useful with ":0").
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.httpSrv = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = s.httpSrv.Serve(ln) }()
	return ln.Addr(), nil
}

// Shutdown stops accepting new connections and drains in-flight
// requests, waiting up to ctx's deadline.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.httpSrv == nil {
		return nil
	}
	return s.httpSrv.Shutdown(ctx)
}

// httpError carries a status code through the request pipeline.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func errf(status int, format string, args ...any) *httpError {
	return &httpError{status: status, msg: fmt.Sprintf(format, args...)}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	he := &httpError{status: http.StatusInternalServerError, msg: err.Error()}
	errors.As(err, &he)
	writeJSON(w, he.status, ErrorResponse{Error: he.msg})
}

func msSince(t0 time.Time) float64 {
	return float64(time.Since(t0).Nanoseconds()) / 1e6
}

// acquire takes an in-flight slot without blocking; nil means saturated.
func (s *Server) acquire() func() {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }
	default:
		return nil
	}
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	release := s.acquire()
	if release == nil {
		s.tel.Inc(telemetry.ServerRejected)
		writeErr(w, errf(http.StatusTooManyRequests, "server saturated: %d searches in flight", cap(s.sem)))
		return
	}
	defer release()
	s.tel.Inc(telemetry.ServerRequests)
	lt := s.tel.StartTimer(telemetry.ServerLatency)
	defer lt.Stop()
	if s.holdForTest != nil {
		<-s.holdForTest
	}
	var req SearchRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	resp, err := s.runSearch(&req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// maxBatch bounds the queries in one batch request.
const maxBatch = 64

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	// One batch holds one in-flight slot: its queries run back to back,
	// and each still fans out across all snapshot shards.
	release := s.acquire()
	if release == nil {
		s.tel.Inc(telemetry.ServerRejected)
		writeErr(w, errf(http.StatusTooManyRequests, "server saturated: %d searches in flight", cap(s.sem)))
		return
	}
	defer release()
	s.tel.Inc(telemetry.ServerRequests)
	lt := s.tel.StartTimer(telemetry.ServerLatency)
	defer lt.Stop()
	if s.holdForTest != nil {
		<-s.holdForTest
	}
	var req BatchRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if len(req.Queries) == 0 {
		writeErr(w, errf(http.StatusBadRequest, "batch: no queries"))
		return
	}
	if len(req.Queries) > maxBatch {
		writeErr(w, errf(http.StatusBadRequest, "batch: %d queries exceeds the limit of %d", len(req.Queries), maxBatch))
		return
	}
	out := BatchResponse{Results: make([]BatchItem, len(req.Queries))}
	for i := range req.Queries {
		resp, err := s.runSearch(&req.Queries[i])
		if err != nil {
			out.Results[i].Error = err.Error()
			continue
		}
		out.Results[i].Result = resp
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleFunctions(w http.ResponseWriter, r *http.Request) {
	st := s.snap.Load()
	if st == nil {
		writeErr(w, errf(http.StatusServiceUnavailable, "no index loaded"))
		return
	}
	exe := r.URL.Query().Get("exe")
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &limit); err != nil || limit < 0 {
			writeErr(w, errf(http.StatusBadRequest, "functions: bad limit %q", v))
			return
		}
	}
	resp := FunctionsResponse{Total: st.snap.Len()}
	for _, e := range st.snap.Entries() {
		if exe != "" && e.Exe != exe {
			continue
		}
		resp.Functions = append(resp.Functions, FunctionInfo{
			Exe: e.Exe, Name: e.Name, Addr: e.Addr,
			Blocks: e.Func.NumBlocks(), Insts: e.Func.NumInsts(),
		})
		if limit > 0 && len(resp.Functions) == limit {
			break
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.snap.Load()
	if st == nil {
		writeJSON(w, http.StatusOK, HealthResponse{Status: "empty"})
		return
	}
	ks := append([]int(nil), st.snap.Ks()...)
	sort.Ints(ks)
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:     "ok",
		Functions:  st.snap.Len(),
		Ks:         ks,
		Shards:     st.snap.NumShards(),
		Generation: st.gen,
		LoadedAt:   st.loadedAt,
	})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	resp, err := s.Reload()
	if err != nil {
		var he *httpError
		if !errors.As(err, &he) {
			err = errf(http.StatusConflict, "reload: %v", err)
		}
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// decodeBody JSON-decodes a size-limited request body.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return errf(http.StatusRequestEntityTooLarge, "body exceeds %d bytes", mbe.Limit)
		}
		return errf(http.StatusBadRequest, "bad request body: %v", err)
	}
	return nil
}

// runSearch executes one search (shared by the single and batch
// endpoints): resolve the query function, consult the cache, fan out
// over the snapshot, rank top-K.
func (s *Server) runSearch(req *SearchRequest) (*SearchResponse, error) {
	t0 := time.Now()
	st := s.snap.Load()
	if st == nil {
		return nil, errf(http.StatusServiceUnavailable, "no index loaded")
	}
	k := req.K
	if k <= 0 {
		k = s.opts.K
	}
	if !st.snap.SupportsK(k) {
		return nil, errf(http.StatusBadRequest, "k=%d not precomputed (supported: %v)", k, st.snap.Ks())
	}
	limit := req.Limit
	switch {
	case limit <= 0:
		limit = 10
	case limit > 1000:
		limit = 1000
	}
	if req.MinScore < 0 || req.MinScore > 1 {
		return nil, errf(http.StatusBadRequest, "min_score %v outside [0,1]", req.MinScore)
	}
	if req.Candidates < 0 {
		return nil, errf(http.StatusBadRequest, "candidates %d must be positive", req.Candidates)
	}
	pf := index.PrefilterOptions{Enabled: req.Prefilter, Candidates: req.Candidates}
	if pf.Candidates > 1000 {
		pf.Candidates = 1000
	}
	effCand := 0
	if pf.Enabled || pf.Candidates > 0 {
		pf.Enabled = true
		effCand = pf.Candidates
		if effCand <= 0 {
			effCand = index.DefaultPrefilterCandidates
		}
	}

	query, err := s.resolveQuery(st, req)
	if err != nil {
		return nil, err
	}

	opts := s.opts
	opts.K = k
	opts.Tel = s.tel
	ref := core.DecomposeT(query, k, s.tel)
	key := cacheKey{fp: ref.Fingerprint(), gen: st.gen, k: k, limit: limit,
		minScore: req.MinScore, candidates: effCand}
	if cached, ok := s.cache.get(key); ok {
		s.tel.Inc(telemetry.ServerCacheHits)
		resp := *cached // shallow copy; shared Hits are read-only
		resp.Cached = true
		resp.TookMS = msSince(t0)
		return &resp, nil
	}
	s.tel.Inc(telemetry.ServerCacheMisses)

	hits, serr := st.snap.SearchDecomposedWith(ref, opts, pf)
	if serr != nil {
		return nil, errf(http.StatusBadRequest, "%v", serr)
	}
	top := index.TopK(hits, limit, req.MinScore)
	resp := &SearchResponse{
		Query:       query.Name,
		QueryBlocks: query.NumBlocks(),
		QueryInsts:  query.NumInsts(),
		K:           k,
		Candidates:  len(hits),
		Prefiltered: pf.Enabled,
		Hits:        make([]Hit, len(top)),
	}
	for i, h := range top {
		resp.Hits[i] = Hit{
			Exe:            h.Entry.Exe,
			Name:           h.Entry.Name,
			Addr:           h.Entry.Addr,
			Score:          h.Result.SimilarityScore,
			IsMatch:        h.Result.IsMatch,
			Matched:        h.Result.Matched(),
			RefTracelets:   h.Result.RefTracelets,
			MatchedRewrite: h.Result.MatchedRewrite,
		}
	}
	resp.TookMS = msSince(t0)
	s.cache.put(key, resp)
	return resp, nil
}

// resolveQuery produces the query function from either form of
// SearchRequest.
func (s *Server) resolveQuery(st *snapState, req *SearchRequest) (*prep.Function, error) {
	byImage := req.Image != ""
	byRef := req.Exe != "" || req.Name != ""
	switch {
	case byImage && byRef:
		return nil, errf(http.StatusBadRequest, "give either image or exe/name, not both")
	case byRef:
		if req.Exe == "" || req.Name == "" {
			return nil, errf(http.StatusBadRequest, "reference queries need both exe and name")
		}
		e := st.snap.Lookup(req.Exe, req.Name)
		if e == nil {
			return nil, errf(http.StatusNotFound, "no indexed function %s/%s", req.Exe, req.Name)
		}
		return e.Func, nil
	case byImage:
		img, err := req.DecodeImage()
		if err != nil {
			return nil, errf(http.StatusBadRequest, "bad base64 image: %v", err)
		}
		fns, err := prep.LiftImage(img)
		if err != nil {
			return nil, errf(http.StatusBadRequest, "lifting image: %v", err)
		}
		if len(fns) == 0 {
			return nil, errf(http.StatusBadRequest, "image has no functions")
		}
		if req.Function != "" {
			for _, fn := range fns {
				if fn.Name == req.Function {
					return fn, nil
				}
			}
			return nil, errf(http.StatusNotFound, "image has no function %q", req.Function)
		}
		best := fns[0]
		for _, fn := range fns[1:] {
			if fn.NumInsts() > best.NumInsts() {
				best = fn
			}
		}
		return best, nil
	default:
		return nil, errf(http.StatusBadRequest, "empty query: set image or exe/name")
	}
}
