package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/server"
	"repro/internal/tinyc"
)

func TestErrorMapping(t *testing.T) {
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/search":
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"server saturated: 8 searches in flight"}`))
		case "/v1/healthz":
			w.WriteHeader(http.StatusNotFound)
			w.Write([]byte("plain text, not JSON"))
		}
	}))
	defer stub.Close()
	c := New(stub.URL + "/") // trailing slash must not double up

	_, err := c.Search(context.Background(), &server.SearchRequest{Exe: "a", Name: "b"})
	if !errors.Is(err, ErrSaturated) {
		t.Errorf("429 should map to ErrSaturated, got %v", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Errorf("expected APIError with 429, got %v", err)
	}

	_, err = c.Healthz(context.Background())
	if errors.Is(err, ErrSaturated) {
		t.Error("404 must not map to ErrSaturated")
	}
	if !errors.As(err, &apiErr) || apiErr.Msg != "plain text, not JSON" {
		t.Errorf("non-JSON error body not preserved: %v", err)
	}
}

func TestFunctionsQueryEncoding(t *testing.T) {
	var gotURL string
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotURL = r.URL.String()
		w.Write([]byte(`{"total":0,"functions":null}`))
	}))
	defer stub.Close()
	c := New(stub.URL)
	if _, err := c.Functions(context.Background(), "ctx0", 7); err != nil {
		t.Fatal(err)
	}
	if gotURL != "/v1/functions?exe=ctx0&limit=7" {
		t.Errorf("request URL = %q", gotURL)
	}
	if _, err := c.Functions(context.Background(), "", 3); err != nil {
		t.Fatal(err)
	}
	if gotURL != "/v1/functions?limit=3" {
		t.Errorf("request URL = %q", gotURL)
	}
}

func TestContextCancellation(t *testing.T) {
	block := make(chan struct{})
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer stub.Close()
	defer close(block)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := New(stub.URL).Healthz(ctx); err == nil {
		t.Error("cancelled context should surface an error")
	}
}

// corpus for the integration test, built once.
var (
	intOnce sync.Once
	intDB   *index.DB
	intCorp *corpus.Corpus
	intErr  error
)

func intCorpus(t *testing.T) (*index.DB, *corpus.Corpus) {
	t.Helper()
	intOnce.Do(func() {
		intCorp, intErr = corpus.Build(corpus.BuildConfig{
			Seed: 5, ContextCopies: 2, Versions: 2, NoiseExes: 1,
			FuncsPerExe: 3, TargetStmts: 40, FillerStmts: 15, Opt: tinyc.O2,
		})
		if intErr != nil {
			return
		}
		intDB = index.New()
		for _, e := range intCorp.Exes {
			if intErr = intDB.AddImage(e.Name, e.Image, e.Truth); intErr != nil {
				return
			}
		}
	})
	if intErr != nil {
		t.Fatal(intErr)
	}
	return intDB, intCorp
}

// TestClientServerIntegration drives every client method against a real
// server over a real socket: health, listing, image search, reference
// search, batch, and hot reload.
func TestClientServerIntegration(t *testing.T) {
	db, corp := intCorpus(t)
	path := filepath.Join(t.TempDir(), "idx.gob")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	srv, err := server.New(server.Config{DBPath: path})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	ctx := context.Background()
	c := New("http://" + addr.String())

	health, err := c.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Functions != db.Len() {
		t.Fatalf("health: %+v", health)
	}

	fns, err := c.Functions(ctx, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if fns.Total != db.Len() || len(fns.Functions) != db.Len() {
		t.Fatalf("functions: total=%d len=%d, want %d", fns.Total, len(fns.Functions), db.Len())
	}

	// Image upload: the largest function of ctx0 is the planted library
	// function, present in both context executables.
	var img []byte
	for _, e := range corp.Exes {
		if e.Name == "ctx0" {
			img = e.Image
		}
	}
	sr, err := c.SearchImage(ctx, img, "", &server.SearchRequest{Limit: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Hits) == 0 || !sr.Hits[0].IsMatch {
		t.Fatalf("image search found no match: %+v", sr)
	}

	// Reference search for the same function must hit the cacheable path.
	ref := server.SearchRequest{Exe: sr.Hits[0].Exe, Name: sr.Hits[0].Name, Limit: 4}
	first, err := c.Search(ctx, &ref)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Search(ctx, &ref)
	if err != nil {
		t.Fatal(err)
	}
	if second.Cached == false || second.Hits[0] != first.Hits[0] {
		t.Errorf("repeat search not served from cache: %+v", second)
	}

	batch, err := c.SearchBatch(ctx, []server.SearchRequest{ref, {Exe: "nope", Name: "nope"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 2 || batch.Results[0].Result == nil || batch.Results[1].Error == "" {
		t.Fatalf("batch: %+v", batch.Results)
	}

	rl, err := c.Reload(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rl.Functions != db.Len() || rl.Generation != 2 {
		t.Errorf("reload: %+v", rl)
	}
}
