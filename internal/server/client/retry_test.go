package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
)

// fastRetry is a policy tuned for tests: real backoff mechanics, tiny
// delays.
func fastRetry() *RetryPolicy {
	return &RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond}
}

// flakyServer answers 200 after failing the first n requests with
// status code and body from fail().
func flakyServer(n int, fail func(w http.ResponseWriter)) (*httptest.Server, *atomic.Int64) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(n) {
			fail(w)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	return srv, &calls
}

func TestRetryEventuallySucceeds(t *testing.T) {
	srv, calls := flakyServer(2, func(w http.ResponseWriter) {
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte(`{"error":"transient"}`))
	})
	defer srv.Close()
	c := New(srv.URL)
	c.Retry = fastRetry()
	if _, err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("retryable failures should be absorbed: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3 (2 failures + success)", got)
	}
	st := c.Stats()
	if st.Attempts != 3 || st.Retries != 2 {
		t.Errorf("stats = %+v, want 3 attempts / 2 retries", st)
	}
}

func TestRetryOn429AndConnectionError(t *testing.T) {
	srv, _ := flakyServer(1, func(w http.ResponseWriter) {
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"saturated"}`))
	})
	defer srv.Close()
	c := New(srv.URL)
	c.Retry = fastRetry()
	if _, err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("429 then success should be absorbed: %v", err)
	}

	// Connection errors are retryable too — and exhaust into a typed
	// TransportError, not a hang.
	dead := New("http://127.0.0.1:1") // nothing listens on port 1
	dead.Retry = fastRetry()
	_, err := dead.Healthz(context.Background())
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("connection refused should be a TransportError, got %T: %v", err, err)
	}
	if st := dead.Stats(); st.Attempts != 4 {
		t.Errorf("connection-refused attempts = %d, want 4", st.Attempts)
	}
}

func TestNoRetryOn4xx(t *testing.T) {
	srv, calls := flakyServer(99, func(w http.ResponseWriter) {
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"bad k"}`))
	})
	defer srv.Close()
	c := New(srv.URL)
	c.Retry = fastRetry()
	_, err := c.Healthz(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want APIError 400", err)
	}
	if calls.Load() != 1 {
		t.Errorf("client retried a 400: %d calls", calls.Load())
	}
}

func TestAPIErrorExposesRetryAfter(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"saturated"}`))
	}))
	defer srv.Close()
	c := New(srv.URL)
	c.Retry = nil // single attempt: inspect the raw error
	_, err := c.Healthz(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v", err)
	}
	if ae.RetryAfter != 7*time.Second {
		t.Errorf("RetryAfter = %v, want 7s", ae.RetryAfter)
	}
}

func TestNeverRetryAfterContextDone(t *testing.T) {
	srv, calls := flakyServer(99, func(w http.ResponseWriter) {
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte(`{"error":"down"}`))
	})
	defer srv.Close()
	c := New(srv.URL)
	// Long backoff: the context expires during the first sleep.
	c.Retry = &RetryPolicy{MaxAttempts: 10, BaseDelay: time.Hour, MaxDelay: time.Hour}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Healthz(ctx)
	if err == nil {
		t.Fatal("want an error")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retry loop outlived its context: %v", elapsed)
	}
	if calls.Load() != 1 {
		t.Errorf("server saw %d calls after ctx done, want 1", calls.Load())
	}
}

func TestRetryBudget(t *testing.T) {
	srv, calls := flakyServer(99, func(w http.ResponseWriter) {
		w.WriteHeader(http.StatusInternalServerError)
	})
	defer srv.Close()
	c := New(srv.URL)
	c.Retry = &RetryPolicy{MaxAttempts: 100, BaseDelay: 20 * time.Millisecond,
		MaxDelay: 20 * time.Millisecond, Budget: 50 * time.Millisecond}
	start := time.Now()
	_, err := c.Healthz(context.Background())
	if err == nil {
		t.Fatal("want an error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("budget did not bound the retry loop: %v", elapsed)
	}
	if n := calls.Load(); n > 5 {
		t.Errorf("budget allowed %d attempts", n)
	}
}

func TestMalformedAndOversizedErrorBodies(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/healthz":
			w.WriteHeader(http.StatusBadGateway)
			w.Write([]byte("<html>not json at all"))
		case "/v1/functions":
			w.WriteHeader(http.StatusBadRequest)
			w.Write([]byte(strings.Repeat("x", 4<<20))) // 4 MiB error body
		}
	}))
	defer srv.Close()
	c := New(srv.URL)
	c.Retry = nil

	_, err := c.Healthz(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusBadGateway {
		t.Fatalf("malformed body: err = %v, want APIError 502", err)
	}
	if !strings.Contains(ae.Msg, "not json") {
		t.Errorf("malformed body not preserved: %q", ae.Msg)
	}

	_, err = c.Functions(context.Background(), "", 0)
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("oversized body: err = %v, want APIError 400", err)
	}
	if len(ae.Msg) > maxErrBody {
		t.Errorf("oversized error body not truncated: %d bytes", len(ae.Msg))
	}
}

func TestCancellationMidRequestNoGoroutineLeak(t *testing.T) {
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-block:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()
	defer close(block)

	before := runtime.NumGoroutine()
	c := New(srv.URL)
	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		_, err := c.Healthz(ctx)
		cancel()
		if err == nil {
			t.Fatal("cancelled request returned nil error")
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("cancelled request error = %v, want DeadlineExceeded", err)
		}
	}
	// Give the transport a moment to reap connection goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Errorf("goroutines grew %d -> %d after cancelled requests", before, after)
	}
}

func TestCircuitBreakerOpensAndRecovers(t *testing.T) {
	var healthy atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			w.Write([]byte(`{"error":"down"}`))
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer srv.Close()
	c := New(srv.URL)
	c.Retry = nil // isolate breaker behavior from retries
	c.Breaker = &Breaker{Threshold: 3, Cooldown: 30 * time.Millisecond}

	for i := 0; i < 3; i++ {
		if _, err := c.Healthz(context.Background()); err == nil {
			t.Fatal("unhealthy server answered")
		}
	}
	if c.Breaker.State() != "open" {
		t.Fatalf("breaker state = %s after %d failures, want open", c.Breaker.State(), 3)
	}
	_, err := c.Healthz(context.Background())
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open breaker error = %v, want ErrCircuitOpen", err)
	}

	healthy.Store(true)
	time.Sleep(40 * time.Millisecond) // past cooldown: half-open probe allowed
	if _, err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if c.Breaker.State() != "closed" {
		t.Errorf("breaker state = %s after successful probe, want closed", c.Breaker.State())
	}
}

func TestBreakerIgnoresSaturationAndCancellation(t *testing.T) {
	b := &Breaker{Threshold: 2}
	b.Record(&APIError{Status: http.StatusTooManyRequests, Msg: "saturated"})
	b.Record(&APIError{Status: http.StatusTooManyRequests, Msg: "saturated"})
	b.Record(context.Canceled)
	b.Record(context.DeadlineExceeded)
	b.Record(&APIError{Status: http.StatusBadRequest, Msg: "bad request"})
	b.Record(&APIError{Status: http.StatusBadRequest, Msg: "bad request"})
	if b.State() != "closed" {
		t.Error("saturation/cancellation/4xx tripped the breaker")
	}
	b.Record(&TransportError{Err: errors.New("refused")})
	b.Record(&TransportError{Err: errors.New("refused")})
	if b.State() != "open" {
		t.Error("transport failures did not trip the breaker")
	}
}

func TestHedgedBatchRacesSlowPrimary(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// Slow primary: the hedge should win long before this finishes.
			select {
			case <-time.After(10 * time.Second):
			case <-r.Context().Done():
				return
			}
		}
		w.Write([]byte(`{"results":[]}`))
	}))
	defer srv.Close()
	c := New(srv.URL)
	c.Retry = nil
	c.HedgeDelay = 20 * time.Millisecond

	start := time.Now()
	if _, err := c.SearchBatch(context.Background(), []server.SearchRequest{{Exe: "a", Name: "b"}}); err != nil {
		t.Fatalf("hedged batch failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hedge did not rescue the slow primary: %v", elapsed)
	}
	if st := c.Stats(); st.Hedges != 1 {
		t.Errorf("hedges = %d, want 1", st.Hedges)
	}
	if calls.Load() < 2 {
		t.Errorf("server saw %d calls, want 2 (primary + hedge)", calls.Load())
	}
}

func TestHedgeBothFail(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte(`{"error":"down"}`))
	}))
	defer srv.Close()
	c := New(srv.URL)
	c.Retry = nil
	c.HedgeDelay = time.Millisecond
	_, err := c.SearchBatch(context.Background(), []server.SearchRequest{{Exe: "a", Name: "b"}})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusInternalServerError {
		t.Fatalf("err = %v, want APIError 500", err)
	}
}

// TestRetryStormShape documents the worst-case attempt pattern for ops:
// default policy, server always down, per-call ceiling of MaxAttempts.
func TestRetryStormShape(t *testing.T) {
	srv, calls := flakyServer(99, func(w http.ResponseWriter) {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"down"}`))
	})
	defer srv.Close()
	c := New(srv.URL)
	c.Retry = fastRetry()
	for i := 0; i < 3; i++ {
		if _, err := c.Healthz(context.Background()); err == nil {
			t.Fatal("down server answered")
		}
	}
	if got, want := calls.Load(), int64(3*4); got != want {
		t.Errorf("3 calls produced %d attempts, want %d", got, want)
	}
}
