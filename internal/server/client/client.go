// Package client is the Go client of the tracy query service
// (internal/server): typed wrappers over the /v1 HTTP/JSON API with
// context support, structured errors, and built-in resilience —
// exponential-backoff retries with jitter (honoring Retry-After), an
// optional circuit breaker, and opt-in hedging for batch searches. The
// transport and resilience machinery itself lives in
// internal/server/rpc (shared with the coordinator's intra-fleet RPC);
// this package binds it to the wire schema and re-exports its types, so
// existing callers keep working unchanged.
package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
	"repro/internal/server/rpc"
)

// Re-exported transport types: the resilience machinery moved to
// internal/server/rpc so the server's coordinator can reuse it, but its
// public home for API consumers stays here.
type (
	// APIError is a non-2xx reply decoded from the server's error body.
	APIError = rpc.APIError
	// TransportError wraps a failure to reach the server at all.
	TransportError = rpc.TransportError
	// RetryPolicy shapes the client's retry loop.
	RetryPolicy = rpc.RetryPolicy
	// Breaker is a consecutive-failure circuit breaker.
	Breaker = rpc.Breaker
	// AttemptRecord describes one HTTP round trip.
	AttemptRecord = rpc.AttemptRecord
	// Stats is a point-in-time copy of the client's resilience counters.
	Stats = rpc.Stats
)

var (
	// ErrSaturated is wrapped by errors returned when the server sheds
	// load with 429: errors.Is(err, ErrSaturated).
	ErrSaturated = rpc.ErrSaturated
	// ErrCircuitOpen is returned (wrapped) while the breaker is open.
	ErrCircuitOpen = rpc.ErrCircuitOpen
)

// maxErrBody bounds how much of an error response body is read.
const maxErrBody = rpc.MaxErrBody

// DefaultRetryPolicy returns the policy New() arms: 4 attempts, 50ms
// base delay doubling to a 2s cap, half-width jitter, no overall budget
// (the caller's context is the budget).
func DefaultRetryPolicy() *RetryPolicy { return rpc.DefaultRetryPolicy() }

// Client talks to one tracy server. The zero value of every policy
// field is safe: nil Retry means no retries, nil Breaker means no
// circuit breaking, zero HedgeDelay means no hedging. New() enables the
// default retry policy.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8077". It may
	// list several interchangeable coordinators separated by commas
	// ("http://c1:8077,http://c2:8077"): each call starts at the last
	// known-good one and fails over to the next on connection-refused,
	// 5xx, or an open per-target breaker — so the coordinator itself is
	// not a single point of failure. 4xx replies (including 429) are the
	// caller's problem, not the target's, and never fail over.
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client

	// Retry, when non-nil, retries saturated (429), server-failure (5xx),
	// and transport errors with exponential backoff and jitter. A context
	// that ends stops retrying immediately.
	Retry *RetryPolicy

	// Breaker, when non-nil, fails requests fast with ErrCircuitOpen
	// after a run of consecutive failures, probing again after a cooldown.
	Breaker *Breaker

	// HedgeDelay, when positive, arms hedging for SearchBatch: if the
	// first attempt has not answered within this delay, a second identical
	// request races it and the first success wins. Only the batch path
	// hedges — it is the long-running, many-query call where one slow
	// replica hurts most.
	HedgeDelay time.Duration

	stats rpc.Counters

	// preferred is the index (into targets()) of the last coordinator
	// that answered, so a healthy fleet pays zero failover probes.
	preferred atomic.Int32
	// breakers holds one lazily-built Breaker per extra target, cloned
	// from Breaker's thresholds: one dead coordinator must not open the
	// circuit for its siblings.
	breakersMu sync.Mutex
	breakers   map[string]*rpc.Breaker
}

// New returns a client for the server at baseURL with the default
// retry policy armed.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/"), Retry: DefaultRetryPolicy()}
}

// targets splits BaseURL into the coordinator list. Computed per call:
// BaseURL may be reassigned between calls (tests do).
func (c *Client) targets() []string {
	var out []string
	for _, t := range strings.Split(c.BaseURL, ",") {
		if t = strings.TrimRight(strings.TrimSpace(t), "/"); t != "" {
			out = append(out, t)
		}
	}
	if len(out) == 0 {
		out = []string{""}
	}
	return out
}

// breakerFor returns the breaker guarding one target: the client's own
// Breaker when there is a single target (legacy behavior, callers may
// inspect it), else a per-target clone of its thresholds.
func (c *Client) breakerFor(target string, multi bool) *rpc.Breaker {
	if c.Breaker == nil {
		return nil
	}
	if !multi {
		return c.Breaker
	}
	c.breakersMu.Lock()
	defer c.breakersMu.Unlock()
	if c.breakers == nil {
		c.breakers = make(map[string]*rpc.Breaker)
	}
	b, ok := c.breakers[target]
	if !ok {
		b = &rpc.Breaker{Threshold: c.Breaker.Threshold, Cooldown: c.Breaker.Cooldown}
		c.breakers[target] = b
	}
	return b
}

// conn views the client's current policy fields as an rpc.Conn against
// one target. Built per call (fields may be reassigned between calls),
// sharing the persistent stats accumulator.
func (c *Client) conn(target string, multi bool) *rpc.Conn {
	return &rpc.Conn{
		BaseURL:    target,
		HTTPClient: c.HTTPClient,
		Retry:      c.Retry,
		Breaker:    c.breakerFor(target, multi),
		HedgeDelay: c.HedgeDelay,
		Stats:      &c.stats,
	}
}

// failover reports whether err indicts the coordinator rather than the
// request: transport failures, 5xx, and an open breaker move on to the
// next target; 4xx (including 429 saturation, which retries in place
// via the retry policy) do not.
func failover(err error) bool {
	var te *rpc.TransportError
	if errors.As(err, &te) || errors.Is(err, rpc.ErrCircuitOpen) {
		return true
	}
	var ae *rpc.APIError
	return errors.As(err, &ae) && ae.Status >= 500
}

// do runs one API call with coordinator failover: targets are tried in
// order starting from the last known-good one, and the preference
// sticks on success.
func (c *Client) do(ctx context.Context, hedged bool, method, path string, in, out any) error {
	targets := c.targets()
	multi := len(targets) > 1
	start := int(c.preferred.Load())
	if start >= len(targets) {
		start = 0
	}
	var firstErr error
	for i := 0; i < len(targets); i++ {
		ti := (start + i) % len(targets)
		conn := c.conn(targets[ti], multi)
		var err error
		if hedged {
			err = conn.DoHedged(ctx, method, path, in, out)
		} else {
			err = conn.Do(ctx, method, path, in, out)
		}
		if err == nil {
			c.preferred.Store(int32(ti))
			return nil
		}
		if firstErr == nil {
			firstErr = err
		}
		if ctx.Err() != nil || !multi || !failover(err) {
			return err
		}
	}
	return firstErr
}

// Search runs one query.
func (c *Client) Search(ctx context.Context, req *server.SearchRequest) (*server.SearchResponse, error) {
	var resp server.SearchResponse
	if err := c.do(ctx, false, http.MethodPost, "/v1/search", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SearchImage uploads an executable image and searches for its function
// fn (empty: the largest); extra tunes limit/min_score/k when non-nil.
func (c *Client) SearchImage(ctx context.Context, img []byte, fn string, extra *server.SearchRequest) (*server.SearchResponse, error) {
	req := server.SearchRequest{}
	if extra != nil {
		req = *extra
	}
	req.SetImage(img)
	req.Function = fn
	req.Exe, req.Name = "", ""
	return c.Search(ctx, &req)
}

// SearchBatch runs several queries in one round trip. When HedgeDelay
// is set, a slow batch is raced by a duplicate request.
func (c *Client) SearchBatch(ctx context.Context, queries []server.SearchRequest) (*server.BatchResponse, error) {
	var resp server.BatchResponse
	if err := c.do(ctx, true, http.MethodPost, "/v1/search/batch", server.BatchRequest{Queries: queries}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Functions lists the indexed corpus; exe filters by executable and
// limit caps the listing when > 0.
func (c *Client) Functions(ctx context.Context, exe string, limit int) (*server.FunctionsResponse, error) {
	path := "/v1/functions"
	sep := "?"
	if exe != "" {
		path += sep + "exe=" + exe
		sep = "&"
	}
	if limit > 0 {
		path += fmt.Sprintf("%slimit=%d", sep, limit)
	}
	var resp server.FunctionsResponse
	if err := c.do(ctx, false, http.MethodGet, path, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Healthz probes liveness and the loaded snapshot's shape.
func (c *Client) Healthz(ctx context.Context) (*server.HealthResponse, error) {
	var resp server.HealthResponse
	if err := c.do(ctx, false, http.MethodGet, "/v1/healthz", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Reload asks the server to hot-reload its index from disk.
func (c *Client) Reload(ctx context.Context) (*server.ReloadResponse, error) {
	var resp server.ReloadResponse
	if err := c.do(ctx, false, http.MethodPost, "/v1/reload", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats returns the client's cumulative resilience counters and the
// recent attempt records.
func (c *Client) Stats() Stats {
	return c.stats.Snapshot()
}
