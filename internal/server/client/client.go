// Package client is the Go client of the tracy query service
// (internal/server): typed wrappers over the /v1 HTTP/JSON API with
// context support and structured errors.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/server"
)

// ErrSaturated is wrapped by errors returned when the server sheds load
// with 429; callers back off and retry: errors.Is(err, ErrSaturated).
var ErrSaturated = errors.New("server saturated")

// APIError is a non-2xx reply decoded from the server's error body.
type APIError struct {
	Status int    // HTTP status code
	Msg    string // server-provided message
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server: %s (HTTP %d)", e.Msg, e.Status)
}

// Unwrap lets errors.Is(err, ErrSaturated) match 429 replies.
func (e *APIError) Unwrap() error {
	if e.Status == http.StatusTooManyRequests {
		return ErrSaturated
	}
	return nil
}

// Client talks to one tracy server.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8077".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// New returns a client for the server at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

// Search runs one query.
func (c *Client) Search(ctx context.Context, req *server.SearchRequest) (*server.SearchResponse, error) {
	var resp server.SearchResponse
	if err := c.do(ctx, http.MethodPost, "/v1/search", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SearchImage uploads an executable image and searches for its function
// fn (empty: the largest); extra tunes limit/min_score/k when non-nil.
func (c *Client) SearchImage(ctx context.Context, img []byte, fn string, extra *server.SearchRequest) (*server.SearchResponse, error) {
	req := server.SearchRequest{}
	if extra != nil {
		req = *extra
	}
	req.SetImage(img)
	req.Function = fn
	req.Exe, req.Name = "", ""
	return c.Search(ctx, &req)
}

// SearchBatch runs several queries in one round trip.
func (c *Client) SearchBatch(ctx context.Context, queries []server.SearchRequest) (*server.BatchResponse, error) {
	var resp server.BatchResponse
	if err := c.do(ctx, http.MethodPost, "/v1/search/batch", server.BatchRequest{Queries: queries}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Functions lists the indexed corpus; exe filters by executable and
// limit caps the listing when > 0.
func (c *Client) Functions(ctx context.Context, exe string, limit int) (*server.FunctionsResponse, error) {
	path := "/v1/functions"
	sep := "?"
	if exe != "" {
		path += sep + "exe=" + exe
		sep = "&"
	}
	if limit > 0 {
		path += fmt.Sprintf("%slimit=%d", sep, limit)
	}
	var resp server.FunctionsResponse
	if err := c.do(ctx, http.MethodGet, path, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Healthz probes liveness and the loaded snapshot's shape.
func (c *Client) Healthz(ctx context.Context) (*server.HealthResponse, error) {
	var resp server.HealthResponse
	if err := c.do(ctx, http.MethodGet, "/v1/healthz", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Reload asks the server to hot-reload its index from disk.
func (c *Client) Reload(ctx context.Context) (*server.ReloadResponse, error) {
	var resp server.ReloadResponse
	if err := c.do(ctx, http.MethodPost, "/v1/reload", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// do sends one JSON request and decodes the reply into out.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		var apiErr server.ErrorResponse
		msg := strings.TrimSpace(string(data))
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		return &APIError{Status: resp.StatusCode, Msg: msg}
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
