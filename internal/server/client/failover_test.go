package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
)

// healthzStub returns a server answering healthz OK and counting hits.
func healthzStub(t *testing.T, hits *atomic.Int32) *httptest.Server {
	t.Helper()
	s := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		_ = json.NewEncoder(w).Encode(server.HealthResponse{Status: "ok", Generation: 1})
	}))
	t.Cleanup(s.Close)
	return s
}

// TestClientFailoverOn5xx: a coordinator answering 502 is skipped and
// the next coordinator in the list answers.
func TestClientFailoverOn5xx(t *testing.T) {
	var badHits, goodHits atomic.Int32
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		badHits.Add(1)
		http.Error(w, `{"error":"fleet: all shards failed"}`, http.StatusBadGateway)
	}))
	t.Cleanup(bad.Close)
	good := healthzStub(t, &goodHits)

	c := New(bad.URL + "," + good.URL)
	c.Retry = &RetryPolicy{MaxAttempts: 1} // isolate failover from retry
	h, err := c.Healthz(context.Background())
	if err != nil {
		t.Fatalf("healthz through a dead coordinator: %v", err)
	}
	if h.Status != "ok" {
		t.Fatalf("healthz = %+v", h)
	}
	if badHits.Load() == 0 || goodHits.Load() == 0 {
		t.Fatalf("hit counts: bad=%d good=%d, want both tried", badHits.Load(), goodHits.Load())
	}

	// The preference sticks: the next call goes straight to the healthy
	// coordinator.
	badBefore := badHits.Load()
	if _, err := c.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
	if badHits.Load() != badBefore {
		t.Errorf("second call re-tried the failing coordinator (hits %d -> %d)", badBefore, badHits.Load())
	}
}

// TestClientFailoverOnConnectionRefused: a dead address in the list is
// skipped.
func TestClientFailoverOnConnectionRefused(t *testing.T) {
	var goodHits atomic.Int32
	good := healthzStub(t, &goodHits)
	// Grab an address with nothing listening: bind, then close.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	c := New(deadURL + "," + good.URL)
	c.Retry = &RetryPolicy{MaxAttempts: 1}
	if _, err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("healthz with a dead first coordinator: %v", err)
	}
	if goodHits.Load() == 0 {
		t.Fatal("healthy coordinator never tried")
	}
}

// TestClientNoFailoverOn4xx: 4xx replies indict the request, not the
// coordinator — the second target must never be consulted.
func TestClientNoFailoverOn4xx(t *testing.T) {
	first := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"no indexed function a/b"}`, http.StatusNotFound)
	}))
	t.Cleanup(first.Close)
	var secondHits atomic.Int32
	second := healthzStub(t, &secondHits)

	c := New(first.URL + "," + second.URL)
	c.Retry = &RetryPolicy{MaxAttempts: 1}
	_, err := c.Search(context.Background(), &server.SearchRequest{Exe: "a", Name: "b"})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusNotFound {
		t.Fatalf("err = %v, want the 404 relayed", err)
	}
	if secondHits.Load() != 0 {
		t.Fatalf("404 failed over to the second coordinator (%d hits)", secondHits.Load())
	}
}

// TestClientFailoverBreakersAreIndependent: the dead coordinator's
// breaker opening must not lock out its healthy sibling.
func TestClientFailoverBreakersAreIndependent(t *testing.T) {
	var goodHits atomic.Int32
	good := healthzStub(t, &goodHits)
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	c := New(deadURL + "," + good.URL)
	c.Retry = &RetryPolicy{MaxAttempts: 1}
	c.Breaker = &Breaker{Threshold: 1, Cooldown: time.Hour}
	for i := 0; i < 3; i++ {
		if _, err := c.Healthz(context.Background()); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if goodHits.Load() != 3 {
		t.Fatalf("healthy coordinator answered %d calls, want 3", goodHits.Load())
	}
}

// TestClientAllCoordinatorsDown: with every target dead the first
// failure is reported.
func TestClientAllCoordinatorsDown(t *testing.T) {
	a := httptest.NewServer(http.NotFoundHandler())
	aURL := a.URL
	a.Close()
	b := httptest.NewServer(http.NotFoundHandler())
	bURL := b.URL
	b.Close()

	c := New(aURL + "," + bURL)
	c.Retry = &RetryPolicy{MaxAttempts: 1}
	_, err := c.Healthz(context.Background())
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want a transport error", err)
	}
}
