package server_test

// The chaos suite runs the REAL client against a REAL fault-injected
// server over TCP — no httptest shortcuts — and checks the resilience
// story end to end: transient faults are retried away, injected latency
// never outlives a deadline, panics become 500s without killing the
// process, cache faults are invisible, and a saturated server is
// eventually answered once its load clears. CI runs this file under
// -race (the chaos-smoke job).

import (
	"context"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/faultinject"
	"repro/internal/index"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/telemetry"
	"repro/internal/tinyc"
)

var (
	chaosOnce sync.Once
	chaosDBv  *index.DB
	chaosErr  error
)

// chaosDB builds the shared chaos corpus once per test binary.
func chaosDB(t *testing.T) *index.DB {
	t.Helper()
	chaosOnce.Do(func() {
		c, err := corpus.Build(corpus.BuildConfig{
			Seed: 7, ContextCopies: 2, Versions: 2, NoiseExes: 1,
			FuncsPerExe: 2, TargetStmts: 30, FillerStmts: 10, Opt: tinyc.O2,
		})
		if err != nil {
			chaosErr = err
			return
		}
		db := index.New()
		for _, e := range c.Exes {
			if err := db.AddImage(e.Name, e.Image, e.Truth); err != nil {
				chaosErr = err
				return
			}
		}
		chaosDBv = db
	})
	if chaosErr != nil {
		t.Fatal(chaosErr)
	}
	return chaosDBv
}

// startChaos boots a real TCP server around the chaos corpus and
// returns it with its base URL; shutdown is a test cleanup.
func startChaos(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	s := server.NewFromDB(chaosDB(t), cfg)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, "http://" + addr.String()
}

// chaosQuery returns a by-reference SearchRequest the chaos corpus can
// always answer.
func chaosQuery(t *testing.T, db *index.DB) server.SearchRequest {
	t.Helper()
	for _, e := range db.Entries {
		if e.Truth == corpus.LibFuncName {
			return server.SearchRequest{Exe: e.Exe, Name: e.Name, Limit: 5}
		}
	}
	t.Fatalf("chaos corpus has no %s entry", corpus.LibFuncName)
	return server.SearchRequest{}
}

// fastPolicy retries aggressively so chaos tests converge in
// milliseconds instead of the production-shaped seconds.
func fastPolicy() *client.RetryPolicy {
	return &client.RetryPolicy{MaxAttempts: 5, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
}

// TestChaosRetriesClearTransientFaults: a count-limited error fault at
// the search point fails the first attempts; the client's retry loop
// outlives the fault and the call succeeds end to end.
func TestChaosRetriesClearTransientFaults(t *testing.T) {
	faults := faultinject.New()
	faults.Arm(&faultinject.Fault{Point: server.FaultSearch, Mode: faultinject.Error, Count: 2})
	s, url := startChaos(t, server.Config{Faults: faults})
	cl := client.New(url)
	cl.Retry = fastPolicy()

	req := chaosQuery(t, chaosDB(t))
	resp, err := cl.Search(context.Background(), &req)
	if err != nil {
		t.Fatalf("search should survive a transient fault: %v", err)
	}
	if len(resp.Hits) == 0 {
		t.Error("post-fault search returned no hits")
	}
	if got := cl.Stats().Retries; got < 2 {
		t.Errorf("client took %d retries, want >= 2 (fault fires twice)", got)
	}
	if got := faults.Fired(server.FaultSearch); got != 2 {
		t.Errorf("search fault fired %d times, want exactly 2 (count cap)", got)
	}
	if got := s.Tel().Get(telemetry.FaultsInjected); got != 2 {
		t.Errorf("faults_injected = %d, want 2", got)
	}
}

// TestChaosCancelledSearchReturnsPromptly: a 10s latency fault cannot
// hold a caller hostage — the client's context deadline cuts the search
// short well within 2x the deadline, and the server counts the
// cancellation.
func TestChaosCancelledSearchReturnsPromptly(t *testing.T) {
	faults := faultinject.New()
	faults.Arm(&faultinject.Fault{Point: server.FaultSearch, Mode: faultinject.Latency, Latency: 10 * time.Second})
	s, url := startChaos(t, server.Config{Faults: faults})
	cl := client.New(url)
	cl.Retry = nil

	const deadline = 500 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	req := chaosQuery(t, chaosDB(t))
	start := time.Now()
	_, err := cl.Search(ctx, &req)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("search through a 10s latency fault should not succeed in 500ms")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 2*deadline {
		t.Errorf("cancelled search took %v, want <= 2x the %v deadline", elapsed, deadline)
	}
	// The server notices the disconnect asynchronously; give it a moment.
	deadlineAt := time.Now().Add(5 * time.Second)
	for s.Tel().Get(telemetry.SearchesCancelled)+s.Tel().Get(telemetry.SearchesDeadline) == 0 {
		if time.Now().After(deadlineAt) {
			t.Error("server never counted the cancelled search")
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosServerSideDeadline: the request's own timeout_ms budget cuts
// an injected 10s latency short on the server, coming back as a clean
// 504 within 2x the budget.
func TestChaosServerSideDeadline(t *testing.T) {
	faults := faultinject.New()
	faults.Arm(&faultinject.Fault{Point: server.FaultSearch, Mode: faultinject.Latency, Latency: 10 * time.Second})
	_, url := startChaos(t, server.Config{Faults: faults})
	cl := client.New(url)
	cl.Retry = nil

	const budget = 500 * time.Millisecond
	req := chaosQuery(t, chaosDB(t))
	req.TimeoutMS = int(budget.Milliseconds())
	start := time.Now()
	_, err := cl.Search(context.Background(), &req)
	elapsed := time.Since(start)
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusGatewayTimeout {
		t.Fatalf("error = %v, want a 504 APIError", err)
	}
	if elapsed > 2*budget {
		t.Errorf("deadline-bounded search took %v, want <= 2x the %v budget", elapsed, budget)
	}
}

// TestChaosPanicBecomesRetriableError: a one-shot panic fault at decode
// turns into a 500 the retry loop simply retries past; the server keeps
// serving and counts the recovery.
func TestChaosPanicBecomesRetriableError(t *testing.T) {
	faults := faultinject.New()
	faults.Arm(&faultinject.Fault{Point: server.FaultDecode, Mode: faultinject.Panic, Count: 1})
	s, url := startChaos(t, server.Config{Faults: faults})
	cl := client.New(url)
	cl.Retry = fastPolicy()

	req := chaosQuery(t, chaosDB(t))
	if _, err := cl.Search(context.Background(), &req); err != nil {
		t.Fatalf("search should retry past a one-shot panic: %v", err)
	}
	if got := s.Tel().Get(telemetry.ServerPanics); got != 1 {
		t.Errorf("server_panics = %d, want 1", got)
	}
	if got := cl.Stats().Retries; got < 1 {
		t.Errorf("client took %d retries, want >= 1", got)
	}
}

// TestChaosCacheFaultsInvisible: a permanently broken result cache
// degrades to cache misses — answers stay correct and uncached, never
// errors.
func TestChaosCacheFaultsInvisible(t *testing.T) {
	faults := faultinject.New()
	_, url := startChaos(t, server.Config{Faults: faults, CacheEntries: 64})
	cl := client.New(url)
	cl.Retry = nil

	req := chaosQuery(t, chaosDB(t))
	baseline, err := cl.Search(context.Background(), &req)
	if err != nil {
		t.Fatal(err)
	}

	faults.Arm(&faultinject.Fault{Point: server.FaultCache, Mode: faultinject.Error})
	for i := 0; i < 2; i++ {
		resp, err := cl.Search(context.Background(), &req)
		if err != nil {
			t.Fatalf("search %d with broken cache: %v", i, err)
		}
		if resp.Cached {
			t.Errorf("search %d claims a cache hit through a broken cache", i)
		}
		if len(resp.Hits) != len(baseline.Hits) {
			t.Fatalf("search %d returned %d hits, baseline %d", i, len(resp.Hits), len(baseline.Hits))
		}
		for j := range resp.Hits {
			if resp.Hits[j] != baseline.Hits[j] {
				t.Errorf("search %d hit %d drifted: %+v vs %+v", i, j, resp.Hits[j], baseline.Hits[j])
			}
		}
	}
}

// TestChaosSaturationEventuallyAnswered: with one in-flight slot pinned
// by a slow (latency-faulted) search, a second client is shed with 429 +
// Retry-After, keeps backing off, and succeeds once the slot frees.
func TestChaosSaturationEventuallyAnswered(t *testing.T) {
	faults := faultinject.New()
	faults.Arm(&faultinject.Fault{Point: server.FaultSearch, Mode: faultinject.Latency,
		Latency: 1500 * time.Millisecond, Count: 1})
	_, url := startChaos(t, server.Config{Faults: faults, MaxInFlight: 1, CacheEntries: -1})
	req := chaosQuery(t, chaosDB(t))

	// Pin the only slot with a bare client (no retries to muddy the water).
	holder := &client.Client{BaseURL: url}
	holdDone := make(chan error, 1)
	go func() {
		_, err := holder.Search(context.Background(), &req)
		holdDone <- err
	}()
	// The one-shot fault firing means the holder is inside the slot,
	// sleeping; only then is the server provably saturated.
	for deadline := time.Now().Add(5 * time.Second); faults.Fired(server.FaultSearch) == 0; {
		if time.Now().After(deadline) {
			t.Fatal("slot-holding search never reached the latency fault")
		}
		time.Sleep(time.Millisecond)
	}
	probe := &client.Client{BaseURL: url}
	if _, err := probe.Search(context.Background(), &req); !errors.Is(err, client.ErrSaturated) {
		t.Fatalf("probe during the held slot: err = %v, want ErrSaturated", err)
	}

	cl := client.New(url)
	cl.Retry = &client.RetryPolicy{MaxAttempts: 8, BaseDelay: 5 * time.Millisecond, MaxDelay: 100 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	resp, err := cl.Search(ctx, &req)
	if err != nil {
		t.Fatalf("retrying client should outlast saturation: %v", err)
	}
	if len(resp.Hits) == 0 {
		t.Error("post-saturation search returned no hits")
	}
	if got := cl.Stats().Retries; got < 1 {
		t.Errorf("client took %d retries, want >= 1 (it was shed first)", got)
	}
	if err := <-holdDone; err != nil {
		t.Errorf("slot-holding search failed: %v", err)
	}
}

// TestChaosLSHFaultFallsBackToScan: with the lsh lookup path
// fault-armed, an lsh-mode search still answers — served by the scan
// prefilter under the degraded:true contract, counted in
// lsh_fallbacks, and never cached (the real lsh answer must not be
// shadowed once the fault clears). After the fault count is spent, lsh
// serves normally again.
func TestChaosLSHFaultFallsBackToScan(t *testing.T) {
	faults := faultinject.New()
	faults.Arm(&faultinject.Fault{Point: server.FaultLSH, Mode: faultinject.Error, Count: 2})
	s, url := startChaos(t, server.Config{Faults: faults, CacheEntries: 64})
	cl := client.New(url)
	cl.Retry = nil

	req := chaosQuery(t, chaosDB(t))
	req.Candidates = 5

	scanReq := req
	baseline, err := cl.Search(context.Background(), &scanReq)
	if err != nil {
		t.Fatal(err)
	}

	req.PrefilterMode = "lsh"
	for i := 0; i < 2; i++ {
		resp, err := cl.Search(context.Background(), &req)
		if err != nil {
			t.Fatalf("lsh search %d with a faulted lookup path must degrade, not error: %v", i, err)
		}
		if !resp.Degraded || resp.DegradedReason == "" {
			t.Errorf("search %d: degraded = %v (reason %q), want the degraded contract",
				i, resp.Degraded, resp.DegradedReason)
		}
		if resp.PrefilterMode != "scan" {
			t.Errorf("search %d: effective mode %q, want scan", i, resp.PrefilterMode)
		}
		if resp.Cached {
			t.Errorf("search %d: degraded fallback answer was served from (and will poison) the cache", i)
		}
		if len(resp.Hits) != len(baseline.Hits) {
			t.Fatalf("search %d: %d hits, scan baseline %d", i, len(resp.Hits), len(baseline.Hits))
		}
		for j := range resp.Hits {
			if resp.Hits[j] != baseline.Hits[j] {
				t.Errorf("search %d hit %d drifted from the scan baseline: %+v vs %+v",
					i, j, resp.Hits[j], baseline.Hits[j])
			}
		}
	}
	if got := s.Tel().Get(telemetry.LSHFallbacks); got != 2 {
		t.Errorf("lsh_fallbacks = %d, want 2", got)
	}
	if got := faults.Fired(server.FaultLSH); got != 2 {
		t.Errorf("lsh fault fired %d times, want exactly 2", got)
	}

	// Fault spent: the same request now runs the real lsh prefilter.
	resp, err := cl.Search(context.Background(), &req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Degraded {
		t.Error("lsh search after the fault cleared still reports degraded")
	}
	if resp.PrefilterMode != "lsh" {
		t.Errorf("post-fault mode %q, want lsh", resp.PrefilterMode)
	}
	if got := s.Tel().Get(telemetry.LSHQueries); got == 0 {
		t.Error("post-fault search never reached the lsh index (lsh_queries = 0)")
	}
}

// TestChaosReloadFault: an injected reload failure surfaces as a typed
// API error naming the injection, and the next reload (fault spent)
// succeeds.
func TestChaosReloadFault(t *testing.T) {
	db := chaosDB(t)
	path := filepath.Join(t.TempDir(), "chaos.db")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	faults := faultinject.New()
	s, err := server.New(server.Config{DBPath: path, Faults: faults})
	if err != nil {
		t.Fatal(err)
	}
	// Armed only after boot: the server's initial load IS a reload and
	// would otherwise consume the one-shot fault.
	faults.Arm(&faultinject.Fault{Point: server.FaultReload, Mode: faultinject.Error, Count: 1})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	cl := client.New("http://" + addr.String())
	cl.Retry = nil

	_, err = cl.Reload(context.Background())
	var ae *client.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("faulted reload error = %v, want APIError", err)
	}
	if got, err := cl.Reload(context.Background()); err != nil {
		t.Fatalf("reload after the fault cleared: %v", err)
	} else if got.Functions != db.Len() {
		t.Errorf("reload saw %d functions, want %d", got.Functions, db.Len())
	}
}
