package server

import (
	"context"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/telemetry"
)

// waitFor polls cond for up to a second.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestAdmissionLegacyShed: depth 0 reproduces the old semaphore
// exactly — a full server sheds instantly, never queues.
func TestAdmissionLegacyShed(t *testing.T) {
	a := newAdmission(1, 0, telemetry.New())
	rel, err := a.acquire(context.Background(), classInteractive)
	if err != nil || rel == nil {
		t.Fatalf("first acquire err %v (release nil: %v), want a slot", err, rel == nil)
	}
	if rel2, err := a.acquire(context.Background(), classInteractive); err != nil || rel2 != nil {
		t.Fatalf("saturated depth-0 acquire err %v (release nil: %v), want (nil, nil) shed", err, rel2 == nil)
	}
	rel()
	if rel3, err := a.acquire(context.Background(), classInteractive); err != nil || rel3 == nil {
		t.Fatalf("post-release acquire err %v (release nil: %v), want a slot", err, rel3 == nil)
	} else {
		rel3()
	}
}

// TestAdmissionPriorityHandoff: a freed slot goes to the interactive
// waiter even when a batch waiter queued first.
func TestAdmissionPriorityHandoff(t *testing.T) {
	tel := telemetry.New()
	a := newAdmission(1, 4, tel)
	rel, err := a.acquire(context.Background(), classInteractive)
	if err != nil || rel == nil {
		t.Fatal("could not take the only slot")
	}

	granted := make(chan admClass, 2)
	enqueue := func(class admClass) {
		go func() {
			r, err := a.acquire(context.Background(), class)
			if err != nil || r == nil {
				t.Errorf("queued acquire(class %d) err %v (release nil: %v)", class, err, r == nil)
				return
			}
			granted <- class
			r()
		}()
	}
	enqueue(classBatch)
	waitFor(t, "batch waiter to queue", func() bool { return a.queueLen() == 1 })
	enqueue(classInteractive)
	waitFor(t, "interactive waiter to queue", func() bool { return a.queueLen() == 2 })

	rel() // hand the slot over: interactive must win despite queueing second
	if first := <-granted; first != classInteractive {
		t.Errorf("first granted class = %d, want interactive (%d)", first, classInteractive)
	}
	if second := <-granted; second != classBatch {
		t.Errorf("second granted class = %d, want batch (%d)", second, classBatch)
	}
	if got := tel.Get(telemetry.ServerQueued); got != 2 {
		t.Errorf("server_queued = %d, want 2", got)
	}
}

// TestAdmissionQueueBoundsAndCancel: a full queue sheds; a queued
// caller whose context ends gets its context error and frees its place.
func TestAdmissionQueueBoundsAndCancel(t *testing.T) {
	a := newAdmission(1, 1, telemetry.New())
	rel, _ := a.acquire(context.Background(), classInteractive)
	if rel == nil {
		t.Fatal("could not take the only slot")
	}

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := a.acquire(ctx, classInteractive)
		errCh <- err
	}()
	waitFor(t, "waiter to queue", func() bool { return a.queueLen() == 1 })

	if r, err := a.acquire(context.Background(), classBatch); err != nil || r != nil {
		t.Fatalf("acquire with a full queue err %v (release nil: %v), want (nil, nil) shed", err, r == nil)
	}
	cancel()
	if err := <-errCh; err != context.Canceled {
		t.Fatalf("cancelled queued acquire returned %v, want context.Canceled", err)
	}
	waitFor(t, "queue to drain", func() bool { return a.queueLen() == 0 })
	rel()
	waitFor(t, "slot to free", func() bool { return a.inFlight() == 0 })
}

// TestQueueDepthAbsorbsBurst: a single-slot server with a queue absorbs
// a burst that the legacy configuration would shed — every request
// answers 200, nothing is rejected, and the queue wait is counted.
func TestQueueDepthAbsorbsBurst(t *testing.T) {
	db, _ := smallDB(t)
	s := NewFromDB(db, Config{MaxInFlight: 1, QueueDepth: 8, RequestTimeout: time.Minute})
	h := s.Handler()
	e := entryWithTruth(t, db, corpus.LibFuncName)
	req := SearchRequest{Exe: e.Exe, Name: e.Name}

	hold := make(chan struct{})
	s.holdForTest = hold
	const burst = 4
	codes := make(chan int, burst)
	for i := 0; i < burst; i++ {
		go func() {
			rec, _ := postSearch(t, h, req)
			codes <- rec.Code
		}()
	}
	waitFor(t, "burst to queue behind the slot", func() bool {
		return s.adm.inFlight() == 1 && s.adm.queueLen() == burst-1
	})
	close(hold)
	for i := 0; i < burst; i++ {
		if code := <-codes; code != 200 {
			t.Errorf("burst request %d: status %d, want 200", i, code)
		}
	}
	if got := s.Tel().Get(telemetry.ServerRejected); got != 0 {
		t.Errorf("server_rejected = %d, want 0 (the queue should absorb the burst)", got)
	}
	if got := s.Tel().Get(telemetry.ServerQueued); got != burst-1 {
		t.Errorf("server_queued = %d, want %d", got, burst-1)
	}
}
