package server

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/prep"
	"repro/internal/server/rpc"
	"repro/internal/telemetry"
)

// Coordinator mode: the corpus is hash-sharded (index.ShardOf) into N
// disjoint TRACYIDX slices, each served by an ordinary worker server,
// and this process scatter-gathers them. A query is resolved to a
// lifted function exactly once — an uploaded image is lifted here, a
// by-reference query is fetched from the shard that owns it — then
// broadcast to every shard as a QueryGob request with a per-shard
// deadline. Each shard answers its local top-K; because every corpus
// function lives on exactly one shard, re-ranking the concatenated
// partials with the same comparator (index.TopK: score desc, exe asc,
// name asc) reproduces the single-process answer bit for bit. A slow or
// dead shard costs its hits, not the query: the merge of the survivors
// is returned with degraded:true and the failure named, and such
// partial answers are never cached. Intra-fleet RPC rides the same
// retry/breaker transport (internal/server/rpc) the public client uses.

// defaultShardTimeout bounds one shard RPC when Config.ShardTimeout is
// zero: long enough for an exhaustive scan of a fair shard slice, short
// enough that one wedged worker cannot pin a query to the full request
// deadline.
const defaultShardTimeout = 10 * time.Second

// fleetProbeTTL is how long one healthz fan-out's view of the fleet
// (liveness, generations — the fleet cache generation) stays fresh.
const fleetProbeTTL = time.Second

// fleetProbeTimeout bounds a single healthz probe.
const fleetProbeTimeout = 2 * time.Second

// shardConn is one worker in the fleet. Each shard gets its own breaker
// and counters so one flapping worker trips only its own circuit.
type shardConn struct {
	id   int
	addr string
	conn *rpc.Conn
}

// fleetBackend implements SearchBackend by scatter-gather over shards.
type fleetBackend struct {
	s       *Server
	shards  []*shardConn
	timeout time.Duration // per-shard RPC deadline

	mu       sync.Mutex
	probedAt time.Time
	gen      uint64   // combined fleet generation (fnv64 of last-known shard gens)
	lastGen  []uint64 // last known generation per shard (survives a dead probe)
	health   *HealthResponse
}

func newFleetBackend(s *Server) *fleetBackend {
	timeout := s.cfg.ShardTimeout
	if timeout <= 0 {
		timeout = defaultShardTimeout
	}
	f := &fleetBackend{
		s:       s,
		timeout: timeout,
		lastGen: make([]uint64, len(s.cfg.Fleet)),
	}
	for i, addr := range s.cfg.Fleet {
		addr = strings.TrimRight(addr, "/")
		f.shards = append(f.shards, &shardConn{
			id:   i,
			addr: addr,
			conn: &rpc.Conn{
				BaseURL: addr,
				Retry:   rpc.DefaultRetryPolicy(),
				Breaker: &rpc.Breaker{Threshold: 5, Cooldown: time.Second},
				Stats:   &rpc.Counters{},
			},
		})
	}
	return f
}

// probe fans one healthz out to every shard and rebuilds the fleet
// view: the aggregated HealthResponse, the per-shard info gauges, and
// the combined generation that keys the coordinator's result cache.
func (f *fleetBackend) probe(ctx context.Context) (*HealthResponse, uint64) {
	type probeRes struct {
		h   *HealthResponse
		err error
	}
	results := make([]probeRes, len(f.shards))
	var wg sync.WaitGroup
	for i, sc := range f.shards {
		wg.Add(1)
		go func(i int, sc *shardConn) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, fleetProbeTimeout)
			defer cancel()
			var h HealthResponse
			err := sc.conn.Do(pctx, http.MethodGet, "/v1/healthz", nil, &h)
			results[i] = probeRes{h: &h, err: err}
		}(i, sc)
	}
	wg.Wait()

	agg := &HealthResponse{Mode: "coordinator", Shards: len(f.shards)}
	live := 0
	f.mu.Lock()
	for i, sc := range f.shards {
		sh := ShardHealth{Shard: i, Addr: sc.addr}
		if err := results[i].err; err != nil {
			sh.Status = "unreachable"
			sh.Error = err.Error()
		} else {
			h := results[i].h
			sh.Status = h.Status
			sh.Functions = h.Functions
			sh.Generation = h.Generation
			sh.IndexFormat = h.IndexFormat
			sh.IndexMapped = h.IndexMapped
			f.lastGen[i] = h.Generation
			live++
			agg.Functions += sh.Functions
			if len(agg.Ks) == 0 {
				agg.Ks = h.Ks
			}
			if agg.LoadedAt.IsZero() || h.LoadedAt.After(agg.LoadedAt) {
				agg.LoadedAt = h.LoadedAt
			}
			if live == 1 {
				agg.IndexFormat = h.IndexFormat
				agg.IndexMapped = h.IndexMapped
			}
		}
		agg.Fleet = append(agg.Fleet, sh)
		// One info gauge per shard (value constant 1, identity in the
		// labels) keeps /metrics cardinality bounded: the hot fleet
		// counters and histograms stay label-free.
		f.s.tel.SetInfo(fmt.Sprintf("fleet_shard_%d_info", i), map[string]string{
			"shard":      strconv.Itoa(i),
			"addr":       sc.addr,
			"status":     sh.Status,
			"generation": strconv.FormatUint(f.lastGen[i], 10),
			"format":     strconv.Itoa(sh.IndexFormat),
			"mapped":     strconv.FormatBool(sh.IndexMapped),
		})
	}
	// The fleet generation folds every shard's last-known snapshot
	// generation: any worker reload changes it, flushing stale cache
	// entries, while a mere outage does not (cached full-fleet answers
	// are still correct and carry the service through it).
	hash := fnv.New64a()
	var buf [8]byte
	for i, sc := range f.shards {
		_, _ = hash.Write([]byte(sc.addr))
		_, _ = hash.Write([]byte{0})
		binary.LittleEndian.PutUint64(buf[:], f.lastGen[i])
		_, _ = hash.Write(buf[:])
	}
	switch {
	case live == len(f.shards):
		agg.Status = "ok"
	case live > 0:
		agg.Status = "degraded"
	default:
		agg.Status = "down"
	}
	agg.Generation = hash.Sum64()
	f.gen = agg.Generation
	f.health = agg
	f.probedAt = time.Now()
	f.mu.Unlock()
	return agg, agg.Generation
}

// generation returns the fleet cache generation, reprobing when the
// cached fleet view is older than fleetProbeTTL.
func (f *fleetBackend) generation(ctx context.Context) uint64 {
	f.mu.Lock()
	if f.health != nil && time.Since(f.probedAt) < fleetProbeTTL {
		gen := f.gen
		f.mu.Unlock()
		return gen
	}
	f.mu.Unlock()
	_, gen := f.probe(ctx)
	return gen
}

func (f *fleetBackend) Health(ctx context.Context) *HealthResponse {
	h, _ := f.probe(ctx)
	return h
}

// encodeQueryGob turns a resolved query function into the fleet wire
// form (base64 gob).
func encodeQueryGob(fn *prep.Function) (string, []byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(fn); err != nil {
		return "", nil, err
	}
	return base64.StdEncoding.EncodeToString(buf.Bytes()), buf.Bytes(), nil
}

// decodeQueryGob is the worker-side inverse; the decoded function is
// structurally validated before anything runs on it.
func decodeQueryGob(s string) (*prep.Function, error) {
	raw, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("bad base64 query_gob: %v", err)
	}
	var fn prep.Function
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&fn); err != nil {
		return nil, fmt.Errorf("bad query_gob: %v", err)
	}
	if err := index.ValidateFunction(&fn); err != nil {
		return nil, fmt.Errorf("bad query_gob: %v", err)
	}
	return &fn, nil
}

// lookupFunction resolves a by-reference query by broadcasting the
// fleet function lookup; exactly one shard owns the entry and answers
// 200, so the first success wins and cancels the rest.
func (f *fleetBackend) lookupFunction(ctx context.Context, exe, name string) (*prep.Function, error) {
	ctx, cancel := context.WithTimeout(ctx, f.timeout)
	defer cancel()
	path := "/v1/fleet/function?" + url.Values{"exe": {exe}, "name": {name}}.Encode()
	type res struct {
		fn  *prep.Function
		err error
	}
	ch := make(chan res, len(f.shards))
	for _, sc := range f.shards {
		go func(sc *shardConn) {
			var fr FleetFunctionResponse
			if err := sc.conn.Do(ctx, http.MethodGet, path, nil, &fr); err != nil {
				ch <- res{err: err}
				return
			}
			fn, err := decodeQueryGob(fr.FunctionGob)
			if err != nil {
				err = errf(http.StatusBadGateway, "shard %d returned %v", sc.id, err)
			}
			ch <- res{fn: fn, err: err}
		}(sc)
	}
	var firstErr error
	for range f.shards {
		r := <-ch
		if r.err == nil {
			return r.fn, nil
		}
		if firstErr == nil {
			firstErr = r.err
		}
	}
	var apiErr *rpc.APIError
	if errors.As(firstErr, &apiErr) && apiErr.Status == http.StatusNotFound {
		return nil, errf(http.StatusNotFound, "no indexed function %s/%s", exe, name)
	}
	return nil, errf(http.StatusBadGateway, "fleet: resolving %s/%s: %v", exe, name, firstErr)
}

// resolveFleet validates the request and resolves its query to a lifted
// function, returning the function plus the request to scatter (the
// query re-expressed as QueryGob; every tuning knob forwarded, with the
// coordinator's resolved limit so shards return exactly the partial the
// merge needs).
func (f *fleetBackend) resolveFleet(ctx context.Context, req *SearchRequest) (*prep.Function, *SearchRequest, []byte, error) {
	if req.MinScore < 0 || req.MinScore > 1 {
		return nil, nil, nil, errf(http.StatusBadRequest, "min_score %v outside [0,1]", req.MinScore)
	}
	if req.Candidates < 0 {
		return nil, nil, nil, errf(http.StatusBadRequest, "candidates %d must be positive", req.Candidates)
	}
	if req.TimeoutMS < 0 {
		return nil, nil, nil, errf(http.StatusBadRequest, "timeout_ms %d must be positive", req.TimeoutMS)
	}
	if _, ok := index.ParsePrefilterMode(req.PrefilterMode); !ok {
		return nil, nil, nil, errf(http.StatusBadRequest, "prefilter_mode %q unknown (want scan or lsh)", req.PrefilterMode)
	}
	limit := req.Limit
	switch {
	case limit <= 0:
		limit = 10
	case limit > 1000:
		limit = 1000
	}

	byGob := req.QueryGob != ""
	byImage := req.Image != ""
	byRef := req.Exe != "" || req.Name != ""
	var fn *prep.Function
	var err error
	switch {
	case byGob && (byImage || byRef), byImage && byRef:
		return nil, nil, nil, errf(http.StatusBadRequest, "give either image or exe/name, not both")
	case byGob:
		if fn, err = decodeQueryGob(req.QueryGob); err != nil {
			return nil, nil, nil, errf(http.StatusBadRequest, "%v", err)
		}
	case byImage:
		if fn, err = liftQueryImage(req); err != nil {
			return nil, nil, nil, err
		}
	case byRef:
		if req.Exe == "" || req.Name == "" {
			return nil, nil, nil, errf(http.StatusBadRequest, "reference queries need both exe and name")
		}
		if fn, err = f.lookupFunction(ctx, req.Exe, req.Name); err != nil {
			return nil, nil, nil, err
		}
	default:
		return nil, nil, nil, errf(http.StatusBadRequest, "empty query: set image or exe/name")
	}

	qgob, raw, err := encodeQueryGob(fn)
	if err != nil {
		return nil, nil, nil, errf(http.StatusInternalServerError, "encoding query: %v", err)
	}
	shardReq := &SearchRequest{
		QueryGob:      qgob,
		K:             req.K,
		Limit:         limit,
		MinScore:      req.MinScore,
		Prefilter:     req.Prefilter,
		Candidates:    req.Candidates,
		PrefilterMode: req.PrefilterMode,
		TimeoutMS:     req.TimeoutMS,
	}
	return fn, shardReq, raw, nil
}

// shardResult is one gathered partial.
type shardResult struct {
	id   int
	resp *SearchResponse
	err  error
}

// searchShard runs the scatter leg against one shard under its own
// deadline, firing the chaos points FaultShard and "shard<i>" first.
func (f *fleetBackend) searchShard(ctx context.Context, sc *shardConn, req *SearchRequest) shardResult {
	if err := f.s.faults.Fire(ctx, FaultShard); err != nil {
		return shardResult{id: sc.id, err: err}
	}
	if err := f.s.faults.Fire(ctx, fmt.Sprintf("%s%d", FaultShard, sc.id)); err != nil {
		return shardResult{id: sc.id, err: err}
	}
	sctx, cancel := context.WithTimeout(ctx, f.timeout)
	defer cancel()
	st := f.s.tel.StartTimer(telemetry.FleetShardLatency)
	defer st.Stop()
	var resp SearchResponse
	if err := sc.conn.Do(sctx, http.MethodPost, "/v1/search", req, &resp); err != nil {
		return shardResult{id: sc.id, err: err}
	}
	return shardResult{id: sc.id, resp: &resp}
}

func (f *fleetBackend) Search(ctx context.Context, req *SearchRequest) (*SearchResponse, error) {
	t0 := time.Now()
	sp := telemetry.SpanFromContext(ctx)
	f.s.tel.Inc(telemetry.FleetSearches)

	rsp := sp.Child("resolve")
	fn, shardReq, raw, err := f.resolveFleet(ctx, req)
	rsp.End()
	if err != nil {
		return nil, err
	}
	ctx, cancel := reqCtx(ctx, req)
	defer cancel()

	k := req.K
	if k <= 0 {
		k = f.s.opts.K
	}
	mode, _ := index.ParsePrefilterMode(req.PrefilterMode)
	effCand := 0
	if req.Prefilter || req.Candidates > 0 || mode == index.ModeLSH {
		effCand = req.Candidates
		if effCand <= 0 {
			effCand = index.DefaultPrefilterCandidates
		}
		if effCand > 1000 {
			effCand = 1000
		}
	}
	// The cache key fingerprints the gob bytes of the resolved query:
	// same function, same answer. gen is the combined fleet generation,
	// so any worker reload invalidates coordinator-side entries.
	hash := fnv.New64a()
	_, _ = hash.Write(raw)
	key := cacheKey{fp: hash.Sum64(), gen: f.generation(ctx), k: k, limit: shardReq.Limit,
		minScore: req.MinScore, candidates: effCand, mode: mode}
	cacheOK := f.s.faults.Fire(ctx, FaultCache) == nil
	if cacheOK {
		csp := sp.Child("cache")
		ct := f.s.tel.StartTimer(telemetry.CacheLookupLatency)
		cached, ok := f.s.cache.get(key)
		ct.Stop()
		csp.End()
		if ok {
			f.s.tel.Inc(telemetry.ServerCacheHits)
			sp.Set("cached", 1)
			resp := *cached // shallow copy; shared Hits are read-only
			resp.Cached = true
			resp.TookMS = msSince(t0)
			return &resp, nil
		}
		f.s.tel.Inc(telemetry.ServerCacheMisses)
	}

	// Scatter: every shard races under its own deadline.
	ssp := sp.Child("scatter")
	results := make([]shardResult, len(f.shards))
	var wg sync.WaitGroup
	for i, sc := range f.shards {
		wg.Add(1)
		go func(i int, sc *shardConn) {
			defer wg.Done()
			results[i] = f.searchShard(ctx, sc, shardReq)
		}(i, sc)
	}
	wg.Wait()
	ssp.End()

	// Gather: concatenate the partials and re-rank under the canonical
	// comparator. Disjoint shards make this bit-identical to the
	// single-snapshot answer when every shard reports in.
	msp := sp.Child("merge")
	mt := f.s.tel.StartTimer(telemetry.FleetMergeLatency)
	var merged []index.Hit
	var failed []string
	var firstAPIErr *rpc.APIError
	resp := &SearchResponse{
		Query:       fn.Name,
		QueryBlocks: fn.NumBlocks(),
		QueryInsts:  fn.NumInsts(),
		K:           k,
	}
	shardDegraded := false
	for _, r := range results {
		if r.err != nil {
			f.s.tel.Inc(telemetry.FleetShardErrors)
			failed = append(failed, fmt.Sprintf("shard %d: %v", r.id, r.err))
			var apiErr *rpc.APIError
			if errors.As(r.err, &apiErr) && firstAPIErr == nil {
				firstAPIErr = apiErr
			}
			continue
		}
		resp.K = r.resp.K
		resp.Candidates += r.resp.Candidates
		resp.Prefiltered = resp.Prefiltered || r.resp.Prefiltered
		if r.resp.PrefilterMode != "" {
			resp.PrefilterMode = r.resp.PrefilterMode
		}
		shardDegraded = shardDegraded || r.resp.Degraded
		for _, h := range r.resp.Hits {
			merged = append(merged, index.Hit{
				Entry:  &index.Entry{Exe: h.Exe, Name: h.Name, Addr: h.Addr},
				Result: coreResult(h),
			})
		}
	}
	if len(failed) == len(f.shards) {
		mt.Stop()
		msp.End()
		// Nothing answered. When every shard rejected the request itself
		// (a 4xx — bad k, unknown prefilter mode), relay that verdict;
		// otherwise the fleet is the problem.
		if firstAPIErr != nil && firstAPIErr.Status >= 400 && firstAPIErr.Status < 500 &&
			firstAPIErr.Status != http.StatusTooManyRequests {
			return nil, errf(firstAPIErr.Status, "%s", firstAPIErr.Msg)
		}
		return nil, errf(http.StatusBadGateway, "fleet: all %d shards failed: %s",
			len(f.shards), strings.Join(failed, "; "))
	}
	top := index.TopK(merged, shardReq.Limit, req.MinScore)
	resp.Hits = make([]Hit, len(top))
	for i, h := range top {
		resp.Hits[i] = Hit{
			Exe:            h.Entry.Exe,
			Name:           h.Entry.Name,
			Addr:           h.Entry.Addr,
			Score:          h.Result.SimilarityScore,
			IsMatch:        h.Result.IsMatch,
			Matched:        h.Result.Matched(),
			RefTracelets:   h.Result.RefTracelets,
			MatchedRewrite: h.Result.MatchedRewrite,
		}
	}
	mt.Stop()
	msp.End()
	if len(failed) > 0 {
		f.s.tel.Inc(telemetry.FleetPartials)
		sp.Set("degraded", 1)
		resp.Degraded = true
		resp.DegradedReason = fmt.Sprintf("partial fleet answer: %d/%d shards failed (%s)",
			len(failed), len(f.shards), strings.Join(failed, "; "))
	} else if shardDegraded {
		resp.Degraded = true
		resp.DegradedReason = "one or more shards answered degraded"
	}
	resp.TookMS = msSince(t0)
	// Only a full-fleet, full-quality answer is cacheable.
	if cacheOK && !resp.Degraded {
		f.s.cache.put(key, resp)
	}
	return resp, nil
}

func (f *fleetBackend) Degraded(context.Context, *SearchRequest) (*SearchResponse, error) {
	// The coordinator's graceful-degradation story is the partial merge,
	// not prefilter-only ranking (it has no corpus to rank against).
	return nil, errf(http.StatusServiceUnavailable, "coordinator cannot serve degraded answers")
}

func (f *fleetBackend) Functions(ctx context.Context, exe string, limit int) (*FunctionsResponse, error) {
	path := "/v1/functions"
	q := url.Values{}
	if exe != "" {
		q.Set("exe", exe)
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	results := make([]shardResult, len(f.shards))
	resps := make([]*FunctionsResponse, len(f.shards))
	var wg sync.WaitGroup
	for i, sc := range f.shards {
		wg.Add(1)
		go func(i int, sc *shardConn) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, f.timeout)
			defer cancel()
			var fr FunctionsResponse
			results[i] = shardResult{id: sc.id, err: sc.conn.Do(sctx, http.MethodGet, path, nil, &fr)}
			resps[i] = &fr
		}(i, sc)
	}
	wg.Wait()
	// Same degradation contract as search: merge the surviving shards
	// and say so, fail only when nobody answers.
	out := &FunctionsResponse{}
	var firstErr error
	live := 0
	for i, r := range results {
		if r.err != nil {
			f.s.tel.Inc(telemetry.FleetShardErrors)
			if firstErr == nil {
				firstErr = errf(http.StatusBadGateway, "fleet: shard %d: %v", r.id, r.err)
			}
			out.Degraded = true
			continue
		}
		live++
		out.Total += resps[i].Total
		out.Functions = append(out.Functions, resps[i].Functions...)
	}
	if live == 0 {
		return nil, firstErr
	}
	sort.Slice(out.Functions, func(i, j int) bool {
		if out.Functions[i].Exe != out.Functions[j].Exe {
			return out.Functions[i].Exe < out.Functions[j].Exe
		}
		return out.Functions[i].Name < out.Functions[j].Name
	})
	if limit > 0 && len(out.Functions) > limit {
		out.Functions = out.Functions[:limit]
	}
	return out, nil
}

func (f *fleetBackend) Reload(ctx context.Context) (*ReloadResponse, error) {
	t0 := time.Now()
	results := make([]shardResult, len(f.shards))
	resps := make([]*ReloadResponse, len(f.shards))
	var wg sync.WaitGroup
	for i, sc := range f.shards {
		wg.Add(1)
		go func(i int, sc *shardConn) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, f.timeout)
			defer cancel()
			var rr ReloadResponse
			results[i] = shardResult{id: sc.id, err: sc.conn.Do(sctx, http.MethodPost, "/v1/reload", nil, &rr)}
			resps[i] = &rr
		}(i, sc)
	}
	wg.Wait()
	out := &ReloadResponse{}
	for i, r := range results {
		if r.err != nil {
			return nil, errf(http.StatusConflict, "fleet reload: shard %d: %v", r.id, r.err)
		}
		out.Functions += resps[i].Functions
		if i == 0 {
			out.Format = resps[i].Format
			out.Mapped = resps[i].Mapped
		}
	}
	f.s.tel.Inc(telemetry.ServerReloads)
	_, out.Generation = f.probe(ctx) // fresh fleet generation after the swap
	f.s.cache.purge()
	out.TookMS = msSince(t0)
	return out, nil
}

// coreResult reconstructs the wire hit's core.Result for re-ranking.
func coreResult(h Hit) (r core.Result) {
	r.SimilarityScore = h.Score
	r.IsMatch = h.IsMatch
	r.MatchedRewrite = h.MatchedRewrite
	r.MatchedDirect = h.Matched - h.MatchedRewrite
	r.RefTracelets = h.RefTracelets
	return r
}
