package server

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/index"
	"repro/internal/prep"
	"repro/internal/server/rpc"
	"repro/internal/telemetry"
)

// Coordinator mode: the corpus is hash-sharded (index.ShardOf) into N
// disjoint TRACYIDX slices, each served by a REPLICA GROUP of ordinary
// worker servers, and this process scatter-gathers them. A query is
// resolved to a lifted function exactly once — an uploaded image is
// lifted here, a by-reference query is fetched from the group that owns
// it — then broadcast to every shard as a QueryGob request with a
// per-shard deadline. Within a shard the coordinator talks to ONE
// healthy replica, failing over to a sibling on error and optionally
// racing a hedged second leg after Config.ShardHedge, so a dead or slow
// replica costs latency, not coverage: answers only become partial
// (degraded:true) when an entire replica group is down. Each shard
// answers its local top-K; because every corpus function lives on
// exactly one shard and the replicas of a shard serve identical slices,
// re-ranking the concatenated partials with the canonical comparator
// (index.TopK) reproduces the single-process answer bit for bit.
//
// Membership is actively health-gated: a background prober loop marks a
// replica down on its first transport error or a run of consecutive
// failures, re-probes it with exponential backoff, and readmits it only
// after a healthz probe proves it reachable AND serving an index
// (generation > 0). Replicas of one shard are expected to serve the
// same index generation; the group's serving generation is the majority
// among live replicas (ties to the newest), and stragglers are flagged
// skewed in fleet healthz and deprioritized by replica selection.
// Partial answers are never cached. Intra-fleet RPC rides the same
// retry/breaker transport (internal/server/rpc) the public client uses,
// one breaker per replica.

// defaultShardTimeout bounds one shard RPC when Config.ShardTimeout is
// zero: long enough for an exhaustive scan of a fair shard slice, short
// enough that one wedged worker cannot pin a query to the full request
// deadline.
const defaultShardTimeout = 10 * time.Second

// fleetProbeTimeout bounds a single healthz probe.
const fleetProbeTimeout = 2 * time.Second

// defaultProbeInterval is how often the background prober refreshes an
// up replica's health view when Config.ProbeInterval is zero.
const defaultProbeInterval = time.Second

// probeBackoffBase/Max shape the re-probe schedule of a down replica:
// the first probe fires immediately (a transport blip should cost
// milliseconds, not a TTL), then the gap doubles up to the cap.
const (
	probeBackoffBase = 250 * time.Millisecond
	probeBackoffMax  = 10 * time.Second
)

// defaultDownAfter is how many consecutive non-transport failures mark
// a replica down when Config.ReplicaDownAfter is zero. Transport errors
// (connection refused/reset) mark it down on the first: the process is
// gone, and waiting a threshold only burns shard timeouts.
const defaultDownAfter = 3

// replica is one worker process: a member of a shard's replica group,
// with its own connection, breaker, and membership state.
type replica struct {
	shard int    // owning shard group (fleet list order)
	idx   int    // replica index within the group
	addr  string // worker base URL
	conn  *rpc.Conn
	// probeConn is the health-probe path: no retries, no breaker, so a
	// probe measures the worker itself, not the circuit's mood.
	probeConn *rpc.Conn

	mu        sync.Mutex
	up        bool
	fails     int    // consecutive failures (scatter legs + probes)
	lastErr   string // last failure, "" while healthy
	downSince time.Time
	nextProbe time.Time     // earliest next readmission probe (down only)
	backoff   time.Duration // current readmission backoff
	hr        HealthResponse
	probedAt  time.Time // last successful probe (zero: never)
}

// shardGroup is the replica set serving one corpus shard.
type shardGroup struct {
	id       int
	replicas []*replica
	cursor   atomic.Uint64 // round-robin rotation over healthy replicas
}

// fleetBackend implements SearchBackend by scatter-gather over shard
// replica groups.
type fleetBackend struct {
	s          *Server
	groups     []*shardGroup
	all        []*replica // flattened, fleet order
	timeout    time.Duration
	hedge      time.Duration // 0: no hedged scatter legs
	probeEvery time.Duration
	downAfter  int

	primed  atomic.Bool // a full sweep has completed at least once
	sweepMu sync.Mutex  // serializes full sweeps

	stop      chan struct{}
	nudge     chan struct{} // wakes the prober for an immediate pass
	done      chan struct{}
	closeOnce sync.Once
}

// parseFleetGroups splits Config.Fleet entries into replica groups: one
// entry per shard, replicas separated by "|"
// (e.g. "http://a1|http://a2"). Entries without "|" are single-replica
// groups, so PR 9 fleet specs keep working unchanged.
func parseFleetGroups(fleet []string) [][]string {
	var groups [][]string
	for _, entry := range fleet {
		var g []string
		for _, addr := range strings.Split(entry, "|") {
			if addr = strings.TrimRight(strings.TrimSpace(addr), "/"); addr != "" {
				g = append(g, addr)
			}
		}
		if len(g) > 0 {
			groups = append(groups, g)
		}
	}
	return groups
}

func newFleetBackend(s *Server) *fleetBackend {
	timeout := s.cfg.ShardTimeout
	if timeout <= 0 {
		timeout = defaultShardTimeout
	}
	probeEvery := s.cfg.ProbeInterval
	if probeEvery <= 0 {
		probeEvery = defaultProbeInterval
	}
	downAfter := s.cfg.ReplicaDownAfter
	if downAfter <= 0 {
		downAfter = defaultDownAfter
	}
	f := &fleetBackend{
		s:          s,
		timeout:    timeout,
		hedge:      s.cfg.ShardHedge,
		probeEvery: probeEvery,
		downAfter:  downAfter,
		stop:       make(chan struct{}),
		nudge:      make(chan struct{}, 1),
		done:       make(chan struct{}),
	}
	for gi, addrs := range parseFleetGroups(s.cfg.Fleet) {
		g := &shardGroup{id: gi}
		for ri, addr := range addrs {
			r := &replica{
				shard: gi,
				idx:   ri,
				addr:  addr,
				up:    true, // optimistic until the first probe says otherwise
				conn: &rpc.Conn{
					BaseURL: addr,
					Retry:   rpc.DefaultRetryPolicy(),
					Breaker: &rpc.Breaker{Threshold: 5, Cooldown: time.Second},
					Stats:   &rpc.Counters{},
				},
				probeConn: &rpc.Conn{BaseURL: addr},
			}
			g.replicas = append(g.replicas, r)
			f.all = append(f.all, r)
		}
		f.groups = append(f.groups, g)
	}
	go f.proberLoop()
	return f
}

// Close stops the background prober. Idempotent.
func (f *fleetBackend) Close() error {
	f.closeOnce.Do(func() { close(f.stop) })
	<-f.done
	return nil
}

// ---- membership -----------------------------------------------------

// membershipFailure reports whether err is evidence against the
// replica's health. Saturation (429) means alive-and-shedding, 4xx
// means the request was wrong, chaos-injected errors are the
// coordinator's own test harness, and a context end means the caller
// gave up — none of those should move the membership state machine.
func membershipFailure(err error) bool {
	if err == nil || errors.Is(err, rpc.ErrSaturated) ||
		errors.Is(err, faultinject.ErrInjected) ||
		errors.Is(err, context.Canceled) {
		return false
	}
	var ae *rpc.APIError
	if errors.As(err, &ae) && ae.Status < 500 && ae.Status != http.StatusTooManyRequests {
		return false
	}
	return true
}

// noteFailure feeds one failed replica interaction into the membership
// state machine: consecutive failures accumulate, and the replica goes
// down immediately on a transport error (the process is unreachable —
// waiting out a threshold just wastes shard timeouts on every query) or
// after downAfter consecutive failures of any kind. A down-mark
// schedules an immediate readmission probe.
func (f *fleetBackend) noteFailure(r *replica, err error) {
	now := time.Now()
	var te *rpc.TransportError
	transport := errors.As(err, &te)
	r.mu.Lock()
	r.fails++
	r.lastErr = err.Error()
	wentDown := false
	if r.up && (transport || r.fails >= f.downAfter) {
		r.up = false
		r.downSince = now
		r.backoff = probeBackoffBase
		r.nextProbe = now // first readmission probe fires immediately
		wentDown = true
	}
	r.mu.Unlock()
	if wentDown {
		f.s.tel.Inc(telemetry.FleetReplicaDown)
		f.nudgeProber()
	}
}

// noteSuccess records a healthy interaction. A down replica that
// somehow answered a real request is NOT readmitted here — readmission
// is gated on a healthz + generation probe — but its probe is pulled
// forward so the gate opens within milliseconds.
func (f *fleetBackend) noteSuccess(r *replica) {
	r.mu.Lock()
	r.fails = 0
	r.lastErr = ""
	wasDown := !r.up
	if wasDown {
		r.nextProbe = time.Now()
	}
	r.mu.Unlock()
	if wasDown {
		f.nudgeProber()
	}
}

// observe routes one replica interaction's outcome into the membership
// state machine, ignoring outcomes that say nothing about the worker.
func (f *fleetBackend) observe(ctx context.Context, r *replica, err error) {
	if err == nil {
		f.noteSuccess(r)
		return
	}
	if ctx.Err() != nil || !membershipFailure(err) {
		return
	}
	f.noteFailure(r, err)
}

func (f *fleetBackend) nudgeProber() {
	select {
	case f.nudge <- struct{}{}:
	default:
	}
}

// proberLoop is the active membership prober: an initial full sweep
// primes the fleet view, then up replicas are refreshed every
// probeEvery and down replicas are re-probed on their backoff schedule.
// A nudge (scatter failure, recovered replica) triggers an immediate
// pass, so a worker that dies right after a probe is marked down by its
// first failed query, not discovered a TTL later.
func (f *fleetBackend) proberLoop() {
	defer close(f.done)
	f.sweep(context.Background())
	tick := f.probeEvery / 4
	if tick < 25*time.Millisecond {
		tick = 25 * time.Millisecond
	}
	if tick > 500*time.Millisecond {
		tick = 500 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-t.C:
			f.probePass(false)
		case <-f.nudge:
			f.probePass(false)
		}
	}
}

// probePass probes every replica that is due: up replicas older than
// probeEvery, down replicas past their backoff. forced probes everyone.
func (f *fleetBackend) probePass(forced bool) {
	now := time.Now()
	var due []*replica
	for _, r := range f.all {
		r.mu.Lock()
		switch {
		case forced:
			due = append(due, r)
		case r.up && now.Sub(r.probedAt) >= f.probeEvery:
			due = append(due, r)
		case !r.up && !now.Before(r.nextProbe):
			due = append(due, r)
		}
		r.mu.Unlock()
	}
	if len(due) == 0 {
		return
	}
	var wg sync.WaitGroup
	for _, r := range due {
		wg.Add(1)
		go func(r *replica) {
			defer wg.Done()
			f.probeOne(r)
		}(r)
	}
	wg.Wait()
	f.publishInfo()
}

// probeOne runs one healthz probe and applies its verdict: failure
// feeds the down-marking machinery; success refreshes the health view
// and readmits a down replica — but only when the worker is actually
// serving an index (generation > 0), so a half-booted process cannot
// rejoin and answer empty.
func (f *fleetBackend) probeOne(r *replica) {
	pctx, cancel := context.WithTimeout(context.Background(), fleetProbeTimeout)
	defer cancel()
	var h HealthResponse
	err := r.probeConn.Do(pctx, http.MethodGet, "/v1/healthz", nil, &h)
	now := time.Now()
	if err != nil {
		r.mu.Lock()
		wasDown := !r.up
		r.mu.Unlock()
		f.noteFailure(r, err)
		if wasDown {
			r.mu.Lock()
			r.backoff *= 2
			if r.backoff > probeBackoffMax {
				r.backoff = probeBackoffMax
			}
			if r.backoff <= 0 {
				r.backoff = probeBackoffBase
			}
			r.nextProbe = now.Add(r.backoff)
			r.mu.Unlock()
		}
		return
	}
	readmitted := false
	r.mu.Lock()
	r.probedAt = now
	r.hr = h
	if r.up {
		r.fails = 0
		r.lastErr = ""
	} else if h.Generation > 0 {
		r.up = true
		r.fails = 0
		r.lastErr = ""
		r.downSince = time.Time{}
		readmitted = true
	} else {
		// Reachable but serving nothing: stay gated, keep probing.
		r.lastErr = "reachable but no index loaded (generation 0)"
		r.backoff = probeBackoffBase
		r.nextProbe = now.Add(r.backoff)
	}
	r.mu.Unlock()
	if readmitted {
		f.s.tel.Inc(telemetry.FleetReadmits)
		// The probe proved the worker healthy; reset its query breaker
		// so the first real request is not eaten by a stale open circuit.
		r.conn.Breaker.Record(nil)
	}
}

// sweep forces a probe of every replica (healthz fan-out semantics:
// the aggregated health view must reflect the fleet as of now).
func (f *fleetBackend) sweep(ctx context.Context) {
	f.sweepMu.Lock()
	defer f.sweepMu.Unlock()
	f.probePass(true)
	f.primed.Store(true)
}

// ---- fleet view -----------------------------------------------------

// replicaState is a locked snapshot of one replica's membership state.
type replicaState struct {
	up        bool
	lastErr   string
	gen       uint64
	hr        HealthResponse
	nextProbe time.Time
	downSince time.Time
}

func (r *replica) state() replicaState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return replicaState{
		up:        r.up,
		lastErr:   r.lastErr,
		gen:       r.hr.Generation,
		hr:        r.hr,
		nextProbe: r.nextProbe,
		downSince: r.downSince,
	}
}

// servingGen picks the group's serving generation: the majority
// generation among up replicas (ties to the newest — a reload moves
// forward). With no replica up, the last-known generations vote, so an
// outage never shifts the fleet cache generation.
func servingGen(states []replicaState) uint64 {
	votes := map[uint64]int{}
	for _, st := range states {
		if st.up {
			votes[st.gen]++
		}
	}
	if len(votes) == 0 {
		for _, st := range states {
			votes[st.gen]++
		}
	}
	var gen uint64
	best := -1
	for g, n := range votes {
		if n > best || (n == best && g > gen) {
			best, gen = n, g
		}
	}
	return gen
}

// view assembles the aggregated fleet HealthResponse from the current
// membership state: one Fleet entry per replica, per-group serving
// generations, skew flags, and the combined status.
func (f *fleetBackend) view() *HealthResponse {
	agg := &HealthResponse{Mode: "coordinator", Shards: len(f.groups), Replicas: len(f.all)}
	liveReplicas, liveGroups, impaired := 0, 0, false
	hash := fnv.New64a()
	var buf [8]byte
	for _, g := range f.groups {
		states := make([]replicaState, len(g.replicas))
		for i, r := range g.replicas {
			states[i] = r.state()
		}
		gen := servingGen(states)
		groupLive := 0
		var serving *replicaState
		for i := range states {
			st := &states[i]
			r := g.replicas[i]
			sh := ShardHealth{Shard: g.id, Replica: r.idx, Addr: r.addr, Generation: st.gen}
			if st.up {
				groupLive++
				liveReplicas++
				sh.Status = st.hr.Status
				sh.Functions = st.hr.Functions
				sh.IndexFormat = st.hr.IndexFormat
				sh.IndexMapped = st.hr.IndexMapped
				if st.gen != gen {
					sh.Skewed = true
					impaired = true
				} else if serving == nil {
					serving = st
				}
			} else {
				sh.Status = "unreachable"
				sh.Error = st.lastErr
				if d := time.Until(st.nextProbe); d > 0 {
					sh.NextProbeMS = float64(d.Nanoseconds()) / 1e6
				}
				impaired = true
			}
			agg.Fleet = append(agg.Fleet, sh)
		}
		if groupLive > 0 {
			liveGroups++
		}
		if serving != nil {
			agg.Functions += serving.hr.Functions
			if len(agg.Ks) == 0 {
				agg.Ks = serving.hr.Ks
			}
			if agg.LoadedAt.IsZero() || serving.hr.LoadedAt.After(agg.LoadedAt) {
				agg.LoadedAt = serving.hr.LoadedAt
			}
			if liveGroups == 1 {
				agg.IndexFormat = serving.hr.IndexFormat
				agg.IndexMapped = serving.hr.IndexMapped
			}
		}
		// The fleet generation folds every group's serving generation
		// (and membership shape): any worker reload changes it, flushing
		// stale cache entries; a mere outage does not.
		for _, r := range g.replicas {
			_, _ = hash.Write([]byte(r.addr))
			_, _ = hash.Write([]byte{0})
		}
		binary.LittleEndian.PutUint64(buf[:], gen)
		_, _ = hash.Write(buf[:])
	}
	switch {
	case liveReplicas == 0:
		agg.Status = "down"
	case impaired:
		agg.Status = "degraded"
	default:
		agg.Status = "ok"
	}
	agg.Generation = hash.Sum64()
	return agg
}

// publishInfo exports the per-group and per-replica info gauges (value
// constant 1, identity in the labels): /metrics cardinality stays
// bounded by fleet size while the hot fleet counters stay label-free.
func (f *fleetBackend) publishInfo() {
	for _, g := range f.groups {
		states := make([]replicaState, len(g.replicas))
		for i, r := range g.replicas {
			states[i] = r.state()
		}
		gen := servingGen(states)
		live := 0
		for i, st := range states {
			r := g.replicas[i]
			status := "unreachable"
			if st.up {
				live++
				status = st.hr.Status
				if st.gen != gen {
					status = "skewed"
				}
			}
			f.s.tel.SetInfo(fmt.Sprintf("fleet_replica_%d_%d_info", g.id, r.idx), map[string]string{
				"shard":      strconv.Itoa(g.id),
				"replica":    strconv.Itoa(r.idx),
				"addr":       r.addr,
				"status":     status,
				"generation": strconv.FormatUint(st.gen, 10),
				"format":     strconv.Itoa(st.hr.IndexFormat),
				"mapped":     strconv.FormatBool(st.hr.IndexMapped),
			})
		}
		gstatus := "down"
		switch {
		case live == len(g.replicas):
			gstatus = "ok"
		case live > 0:
			gstatus = "degraded"
		}
		f.s.tel.SetInfo(fmt.Sprintf("fleet_shard_%d_info", g.id), map[string]string{
			"shard":      strconv.Itoa(g.id),
			"status":     gstatus,
			"generation": strconv.FormatUint(gen, 10),
			"replicas":   strconv.Itoa(len(g.replicas)),
			"live":       strconv.Itoa(live),
		})
	}
}

// generation returns the fleet cache generation from the membership
// view, forcing one synchronous sweep before the first query so cache
// keys never see the unprimed zero state.
func (f *fleetBackend) generation(ctx context.Context) uint64 {
	if !f.primed.Load() {
		f.sweep(ctx)
	}
	return f.view().Generation
}

func (f *fleetBackend) Health(ctx context.Context) *HealthResponse {
	f.sweep(ctx)
	return f.view()
}

// ---- replica selection and group calls ------------------------------

// groupOrder is the failover order for one scatter leg: up replicas at
// the serving generation first (rotated round-robin so load spreads),
// then up-but-skewed stragglers, and — only when nothing is up — the
// single most-probable down replica as a last-resort best effort
// (its breaker fast-fails if it is truly gone).
func (f *fleetBackend) groupOrder(g *shardGroup) []*replica {
	states := make([]replicaState, len(g.replicas))
	for i, r := range g.replicas {
		states[i] = r.state()
	}
	gen := servingGen(states)
	var primary, skewed []*replica
	var down []*replica
	for i, st := range states {
		switch {
		case st.up && st.gen == gen:
			primary = append(primary, g.replicas[i])
		case st.up:
			skewed = append(skewed, g.replicas[i])
		default:
			down = append(down, g.replicas[i])
		}
	}
	if n := len(primary); n > 1 {
		rot := int((g.cursor.Add(1) - 1) % uint64(n))
		primary = append(primary[rot:], primary[:rot]...)
	}
	order := append(primary, skewed...)
	if len(order) == 0 && len(down) > 0 {
		best := down[0]
		for _, r := range down[1:] {
			if r.state().nextProbe.Before(best.state().nextProbe) {
				best = r
			}
		}
		order = append(order, best)
	}
	return order
}

// groupCall runs call against one shard group under the failover/hedge
// race: the preferred replica first, siblings on failure, an optional
// hedged leg after hedge. Membership feedback is applied to every leg's
// outcome. Returns the winning value, the leg order, and the race
// outcome (per-leg errors for reporting).
func groupCall[T any](f *fleetBackend, ctx context.Context, g *shardGroup, hedge time.Duration,
	call func(context.Context, *replica) (T, error)) (T, []*replica, rpc.RaceOutcome) {
	order := f.groupOrder(g)
	if len(order) == 0 {
		var zero T
		return zero, nil, rpc.RaceOutcome{Winner: -1, Errs: []error{errors.New("no replica configured")}}
	}
	legs := make([]func(context.Context) (T, error), len(order))
	for i, r := range order {
		i, r := i, r
		_ = i
		legs[i] = func(lctx context.Context) (T, error) {
			v, err := call(lctx, r)
			f.observe(lctx, r, err)
			return v, err
		}
	}
	onHedge := func() { f.s.tel.Inc(telemetry.FleetHedges) }
	v, out := rpc.FailoverRace(ctx, hedge, onHedge, legs...)
	if out.Winner >= 0 {
		if out.Failovers > 0 {
			f.s.tel.Inc(telemetry.FleetFailovers)
		}
		if out.HedgeWon {
			f.s.tel.Inc(telemetry.FleetHedgesWon)
		}
	}
	return v, order, out
}

// groupErr renders a failed group's per-replica errors for degraded
// reasons and the structured 502 body.
func groupErr(order []*replica, out rpc.RaceOutcome) string {
	var parts []string
	for i, err := range out.Errs {
		if err == nil {
			continue
		}
		if i < len(order) {
			parts = append(parts, fmt.Sprintf("replica %d (%s): %v", order[i].idx, order[i].addr, err))
		} else {
			parts = append(parts, err.Error())
		}
	}
	if len(parts) == 0 {
		parts = append(parts, "no replica answered")
	}
	return strings.Join(parts, "; ")
}

// ---- wire helpers ---------------------------------------------------

// encodeQueryGob turns a resolved query function into the fleet wire
// form (base64 gob).
func encodeQueryGob(fn *prep.Function) (string, []byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(fn); err != nil {
		return "", nil, err
	}
	return base64.StdEncoding.EncodeToString(buf.Bytes()), buf.Bytes(), nil
}

// decodeQueryGob is the worker-side inverse; the decoded function is
// structurally validated before anything runs on it.
func decodeQueryGob(s string) (*prep.Function, error) {
	raw, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("bad base64 query_gob: %v", err)
	}
	var fn prep.Function
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&fn); err != nil {
		return nil, fmt.Errorf("bad query_gob: %v", err)
	}
	if err := index.ValidateFunction(&fn); err != nil {
		return nil, fmt.Errorf("bad query_gob: %v", err)
	}
	return &fn, nil
}

// lookupFunction resolves a by-reference query by broadcasting the
// fleet function lookup to every replica; exactly one group owns the
// entry, so the first success wins and cancels the rest (replicas of
// the owning group answer identically — redundancy is free coverage
// here, not wasted work).
func (f *fleetBackend) lookupFunction(ctx context.Context, exe, name string) (*prep.Function, error) {
	ctx, cancel := context.WithTimeout(ctx, f.timeout)
	defer cancel()
	path := "/v1/fleet/function?" + url.Values{"exe": {exe}, "name": {name}}.Encode()
	type res struct {
		fn  *prep.Function
		err error
	}
	ch := make(chan res, len(f.all))
	for _, r := range f.all {
		go func(r *replica) {
			var fr FleetFunctionResponse
			err := r.conn.Do(ctx, http.MethodGet, path, nil, &fr)
			f.observe(ctx, r, err)
			if err != nil {
				ch <- res{err: err}
				return
			}
			fn, err := decodeQueryGob(fr.FunctionGob)
			if err != nil {
				err = errf(http.StatusBadGateway, "shard %d replica %d returned %v", r.shard, r.idx, err)
			}
			ch <- res{fn: fn, err: err}
		}(r)
	}
	var firstErr, non404 error
	for range f.all {
		r := <-ch
		if r.err == nil {
			return r.fn, nil
		}
		if firstErr == nil {
			firstErr = r.err
		}
		var apiErr *rpc.APIError
		if !(errors.As(r.err, &apiErr) && apiErr.Status == http.StatusNotFound) && non404 == nil {
			non404 = r.err
		}
	}
	// 404 is only trustworthy when every replica could actually answer:
	// with part of the fleet unreachable the entry may live on a dead
	// worker, and "not indexed" would be a lie.
	if non404 == nil {
		return nil, errf(http.StatusNotFound, "no indexed function %s/%s", exe, name)
	}
	return nil, errf(http.StatusBadGateway, "fleet: resolving %s/%s: %v", exe, name, non404)
}

// resolveFleet validates the request and resolves its query to a lifted
// function, returning the function plus the request to scatter (the
// query re-expressed as QueryGob; every tuning knob forwarded, with the
// coordinator's resolved limit so shards return exactly the partial the
// merge needs).
func (f *fleetBackend) resolveFleet(ctx context.Context, req *SearchRequest) (*prep.Function, *SearchRequest, []byte, error) {
	if req.MinScore < 0 || req.MinScore > 1 {
		return nil, nil, nil, errf(http.StatusBadRequest, "min_score %v outside [0,1]", req.MinScore)
	}
	if req.Candidates < 0 {
		return nil, nil, nil, errf(http.StatusBadRequest, "candidates %d must be positive", req.Candidates)
	}
	if req.TimeoutMS < 0 {
		return nil, nil, nil, errf(http.StatusBadRequest, "timeout_ms %d must be positive", req.TimeoutMS)
	}
	if _, ok := index.ParsePrefilterMode(req.PrefilterMode); !ok {
		return nil, nil, nil, errf(http.StatusBadRequest, "prefilter_mode %q unknown (want scan or lsh)", req.PrefilterMode)
	}
	limit := req.Limit
	switch {
	case limit <= 0:
		limit = 10
	case limit > 1000:
		limit = 1000
	}

	byGob := req.QueryGob != ""
	byImage := req.Image != ""
	byRef := req.Exe != "" || req.Name != ""
	var fn *prep.Function
	var err error
	switch {
	case byGob && (byImage || byRef), byImage && byRef:
		return nil, nil, nil, errf(http.StatusBadRequest, "give either image or exe/name, not both")
	case byGob:
		if fn, err = decodeQueryGob(req.QueryGob); err != nil {
			return nil, nil, nil, errf(http.StatusBadRequest, "%v", err)
		}
	case byImage:
		if fn, err = liftQueryImage(req); err != nil {
			return nil, nil, nil, err
		}
	case byRef:
		if req.Exe == "" || req.Name == "" {
			return nil, nil, nil, errf(http.StatusBadRequest, "reference queries need both exe and name")
		}
		if fn, err = f.lookupFunction(ctx, req.Exe, req.Name); err != nil {
			return nil, nil, nil, err
		}
	default:
		return nil, nil, nil, errf(http.StatusBadRequest, "empty query: set image or exe/name")
	}

	qgob, raw, err := encodeQueryGob(fn)
	if err != nil {
		return nil, nil, nil, errf(http.StatusInternalServerError, "encoding query: %v", err)
	}
	shardReq := &SearchRequest{
		QueryGob:      qgob,
		K:             req.K,
		Limit:         limit,
		MinScore:      req.MinScore,
		Prefilter:     req.Prefilter,
		Candidates:    req.Candidates,
		PrefilterMode: req.PrefilterMode,
		TimeoutMS:     req.TimeoutMS,
	}
	return fn, shardReq, raw, nil
}

// shardResult is one gathered per-group partial.
type shardResult struct {
	id    int
	resp  *SearchResponse
	order []*replica
	out   rpc.RaceOutcome
	err   error
}

// searchReplica runs one scatter leg against one replica under its own
// deadline, firing the chaos points FaultShard, "shard<i>" and
// "shard<i>r<j>" first.
func (f *fleetBackend) searchReplica(ctx context.Context, r *replica, req *SearchRequest) (*SearchResponse, error) {
	if err := f.s.faults.Fire(ctx, FaultShard); err != nil {
		return nil, err
	}
	if err := f.s.faults.Fire(ctx, fmt.Sprintf("%s%d", FaultShard, r.shard)); err != nil {
		return nil, err
	}
	if err := f.s.faults.Fire(ctx, fmt.Sprintf("%s%dr%d", FaultShard, r.shard, r.idx)); err != nil {
		return nil, err
	}
	sctx, cancel := context.WithTimeout(ctx, f.timeout)
	defer cancel()
	st := f.s.tel.StartTimer(telemetry.FleetShardLatency)
	defer st.Stop()
	var resp SearchResponse
	if err := r.conn.Do(sctx, http.MethodPost, "/v1/search", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// searchGroup answers one shard's scatter leg through the replica
// failover/hedge race.
func (f *fleetBackend) searchGroup(ctx context.Context, g *shardGroup, req *SearchRequest) shardResult {
	resp, order, out := groupCall(f, ctx, g, f.hedge, func(lctx context.Context, r *replica) (*SearchResponse, error) {
		return f.searchReplica(lctx, r, req)
	})
	res := shardResult{id: g.id, order: order, out: out}
	if out.Winner < 0 {
		res.err = errors.New(groupErr(order, out))
		return res
	}
	res.resp = resp
	return res
}

// fleetReplicaErrors assembles the structured per-replica error detail
// for the all-shards-failed 502, plus a Retry-After derived from the
// prober's next readmission probe (the earliest moment the fleet's
// answer could change).
func (f *fleetBackend) fleetReplicaErrors(results []shardResult) ([]ReplicaError, time.Duration) {
	now := time.Now()
	var out []ReplicaError
	retryAfter := time.Duration(0)
	haveProbe := false
	for _, res := range results {
		seen := map[*replica]bool{}
		for i, err := range res.out.Errs {
			if err == nil || i >= len(res.order) {
				continue
			}
			r := res.order[i]
			seen[r] = true
			out = append(out, ReplicaError{Shard: r.shard, Replica: r.idx, Addr: r.addr, Error: err.Error()})
		}
		// Replicas the race never reached (down-gated siblings) still
		// explain the failure: report their last known error.
		for _, r := range f.groups[res.id].replicas {
			if seen[r] {
				continue
			}
			st := r.state()
			if st.up && st.lastErr == "" {
				continue
			}
			re := ReplicaError{Shard: r.shard, Replica: r.idx, Addr: r.addr, Error: st.lastErr}
			if !st.up {
				if d := st.nextProbe.Sub(now); d > 0 {
					re.NextProbeMS = float64(d.Nanoseconds()) / 1e6
					if !haveProbe || d < retryAfter {
						retryAfter, haveProbe = d, true
					}
				} else {
					haveProbe = true // probe imminent: retry soon
				}
			}
			out = append(out, re)
		}
	}
	if retryAfter < time.Second {
		retryAfter = time.Second
	}
	return out, retryAfter
}

func (f *fleetBackend) Search(ctx context.Context, req *SearchRequest) (*SearchResponse, error) {
	t0 := time.Now()
	sp := telemetry.SpanFromContext(ctx)
	f.s.tel.Inc(telemetry.FleetSearches)

	rsp := sp.Child("resolve")
	fn, shardReq, raw, err := f.resolveFleet(ctx, req)
	rsp.End()
	if err != nil {
		return nil, err
	}
	ctx, cancel := reqCtx(ctx, req)
	defer cancel()

	k := req.K
	if k <= 0 {
		k = f.s.opts.K
	}
	mode, _ := index.ParsePrefilterMode(req.PrefilterMode)
	effCand := 0
	if req.Prefilter || req.Candidates > 0 || mode == index.ModeLSH {
		effCand = req.Candidates
		if effCand <= 0 {
			effCand = index.DefaultPrefilterCandidates
		}
		if effCand > 1000 {
			effCand = 1000
		}
	}
	// The cache key fingerprints the gob bytes of the resolved query:
	// same function, same answer. gen folds every group's serving
	// generation, so any worker reload invalidates coordinator-side
	// entries while a mere replica outage does not.
	hash := fnv.New64a()
	_, _ = hash.Write(raw)
	key := cacheKey{fp: hash.Sum64(), gen: f.generation(ctx), k: k, limit: shardReq.Limit,
		minScore: req.MinScore, candidates: effCand, mode: mode}
	cacheOK := f.s.faults.Fire(ctx, FaultCache) == nil
	if cacheOK {
		csp := sp.Child("cache")
		ct := f.s.tel.StartTimer(telemetry.CacheLookupLatency)
		cached, ok := f.s.cache.get(key)
		ct.Stop()
		csp.End()
		if ok {
			f.s.tel.Inc(telemetry.ServerCacheHits)
			sp.Set("cached", 1)
			resp := *cached // shallow copy; shared Hits are read-only
			resp.Cached = true
			resp.TookMS = msSince(t0)
			return &resp, nil
		}
		f.s.tel.Inc(telemetry.ServerCacheMisses)
	}

	// Scatter: every shard group races under its own deadline, each leg
	// picking a healthy replica with failover/hedging inside the group.
	ssp := sp.Child("scatter")
	results := make([]shardResult, len(f.groups))
	var wg sync.WaitGroup
	for i, g := range f.groups {
		wg.Add(1)
		go func(i int, g *shardGroup) {
			defer wg.Done()
			results[i] = f.searchGroup(ctx, g, shardReq)
		}(i, g)
	}
	wg.Wait()
	ssp.End()

	// Gather: concatenate the partials and re-rank under the canonical
	// comparator. Disjoint shards make this bit-identical to the
	// single-snapshot answer when every shard group reports in.
	msp := sp.Child("merge")
	mt := f.s.tel.StartTimer(telemetry.FleetMergeLatency)
	var merged []index.Hit
	var failed []string
	var firstAPIErr *rpc.APIError
	resp := &SearchResponse{
		Query:       fn.Name,
		QueryBlocks: fn.NumBlocks(),
		QueryInsts:  fn.NumInsts(),
		K:           k,
	}
	shardDegraded := false
	for _, r := range results {
		if r.err != nil {
			f.s.tel.Inc(telemetry.FleetShardErrors)
			failed = append(failed, fmt.Sprintf("shard %d: %v", r.id, r.err))
			for _, legErr := range r.out.Errs {
				var apiErr *rpc.APIError
				if errors.As(legErr, &apiErr) && firstAPIErr == nil {
					firstAPIErr = apiErr
				}
			}
			continue
		}
		resp.K = r.resp.K
		resp.Candidates += r.resp.Candidates
		resp.Prefiltered = resp.Prefiltered || r.resp.Prefiltered
		if r.resp.PrefilterMode != "" {
			resp.PrefilterMode = r.resp.PrefilterMode
		}
		shardDegraded = shardDegraded || r.resp.Degraded
		for _, h := range r.resp.Hits {
			merged = append(merged, index.Hit{
				Entry:  &index.Entry{Exe: h.Exe, Name: h.Name, Addr: h.Addr},
				Result: coreResult(h),
			})
		}
	}
	if len(failed) == len(f.groups) {
		mt.Stop()
		msp.End()
		// Nothing answered. When every shard rejected the request itself
		// (a 4xx — bad k, unknown prefilter mode), relay that verdict;
		// otherwise the fleet is the problem: answer 502 with the
		// per-replica failure detail and a Retry-After derived from the
		// prober's next readmission probe.
		if firstAPIErr != nil && firstAPIErr.Status >= 400 && firstAPIErr.Status < 500 &&
			firstAPIErr.Status != http.StatusTooManyRequests {
			return nil, errf(firstAPIErr.Status, "%s", firstAPIErr.Msg)
		}
		he := errf(http.StatusBadGateway, "fleet: all %d shards failed: %s",
			len(f.groups), strings.Join(failed, "; "))
		he.fleet, he.retryAfter = f.fleetReplicaErrors(results)
		return nil, he
	}
	top := index.TopK(merged, shardReq.Limit, req.MinScore)
	resp.Hits = make([]Hit, len(top))
	for i, h := range top {
		resp.Hits[i] = Hit{
			Exe:            h.Entry.Exe,
			Name:           h.Entry.Name,
			Addr:           h.Entry.Addr,
			Score:          h.Result.SimilarityScore,
			IsMatch:        h.Result.IsMatch,
			Matched:        h.Result.Matched(),
			RefTracelets:   h.Result.RefTracelets,
			MatchedRewrite: h.Result.MatchedRewrite,
		}
	}
	mt.Stop()
	msp.End()
	if len(failed) > 0 {
		f.s.tel.Inc(telemetry.FleetPartials)
		sp.Set("degraded", 1)
		resp.Degraded = true
		resp.DegradedReason = fmt.Sprintf("partial fleet answer: %d/%d shards failed (%s)",
			len(failed), len(f.groups), strings.Join(failed, "; "))
	} else if shardDegraded {
		resp.Degraded = true
		resp.DegradedReason = "one or more shards answered degraded"
	}
	resp.TookMS = msSince(t0)
	// Only a full-fleet, full-quality answer is cacheable.
	if cacheOK && !resp.Degraded {
		f.s.cache.put(key, resp)
	}
	return resp, nil
}

func (f *fleetBackend) Degraded(context.Context, *SearchRequest) (*SearchResponse, error) {
	// The coordinator's graceful-degradation story is the partial merge,
	// not prefilter-only ranking (it has no corpus to rank against).
	return nil, errf(http.StatusServiceUnavailable, "coordinator cannot serve degraded answers")
}

func (f *fleetBackend) Functions(ctx context.Context, exe string, limit int) (*FunctionsResponse, error) {
	path := "/v1/functions"
	q := url.Values{}
	if exe != "" {
		q.Set("exe", exe)
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	type fnRes struct {
		resp *FunctionsResponse
		err  error
	}
	results := make([]fnRes, len(f.groups))
	var wg sync.WaitGroup
	for i, g := range f.groups {
		wg.Add(1)
		go func(i int, g *shardGroup) {
			defer wg.Done()
			resp, order, out := groupCall(f, ctx, g, 0, func(lctx context.Context, r *replica) (*FunctionsResponse, error) {
				sctx, cancel := context.WithTimeout(lctx, f.timeout)
				defer cancel()
				var fr FunctionsResponse
				if err := r.conn.Do(sctx, http.MethodGet, path, nil, &fr); err != nil {
					return nil, err
				}
				return &fr, nil
			})
			if out.Winner < 0 {
				results[i] = fnRes{err: errors.New(groupErr(order, out))}
				return
			}
			results[i] = fnRes{resp: resp}
		}(i, g)
	}
	wg.Wait()
	// Same degradation contract as search: merge the surviving shard
	// groups and say so, fail only when nobody answers.
	out := &FunctionsResponse{}
	var firstErr error
	live := 0
	for i, r := range results {
		if r.err != nil {
			f.s.tel.Inc(telemetry.FleetShardErrors)
			if firstErr == nil {
				firstErr = errf(http.StatusBadGateway, "fleet: shard %d: %v", i, r.err)
			}
			out.Degraded = true
			continue
		}
		live++
		out.Total += r.resp.Total
		out.Functions = append(out.Functions, r.resp.Functions...)
	}
	if live == 0 {
		return nil, firstErr
	}
	sort.Slice(out.Functions, func(i, j int) bool {
		if out.Functions[i].Exe != out.Functions[j].Exe {
			return out.Functions[i].Exe < out.Functions[j].Exe
		}
		return out.Functions[i].Name < out.Functions[j].Name
	})
	if limit > 0 && len(out.Functions) > limit {
		out.Functions = out.Functions[:limit]
	}
	return out, nil
}

func (f *fleetBackend) Reload(ctx context.Context) (*ReloadResponse, error) {
	t0 := time.Now()
	// Reload stays strict across the whole fleet — every replica of
	// every group must swap, or generations skew by our own hand.
	type relRes struct {
		r    *replica
		resp *ReloadResponse
		err  error
	}
	results := make([]relRes, len(f.all))
	var wg sync.WaitGroup
	for i, r := range f.all {
		wg.Add(1)
		go func(i int, r *replica) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, f.timeout)
			defer cancel()
			var rr ReloadResponse
			err := r.conn.Do(sctx, http.MethodPost, "/v1/reload", nil, &rr)
			f.observe(ctx, r, err)
			results[i] = relRes{r: r, resp: &rr, err: err}
		}(i, r)
	}
	wg.Wait()
	out := &ReloadResponse{}
	seenGroup := map[int]bool{}
	for _, res := range results {
		if res.err != nil {
			return nil, errf(http.StatusConflict, "fleet reload: shard %d replica %d: %v",
				res.r.shard, res.r.idx, res.err)
		}
		if !seenGroup[res.r.shard] {
			seenGroup[res.r.shard] = true
			out.Functions += res.resp.Functions
			if res.r.shard == 0 {
				out.Format = res.resp.Format
				out.Mapped = res.resp.Mapped
			}
		}
	}
	f.s.tel.Inc(telemetry.ServerReloads)
	f.sweep(ctx) // fresh membership + generations after the swap
	out.Generation = f.view().Generation
	f.s.cache.purge()
	out.TookMS = msSince(t0)
	return out, nil
}

// coreResult reconstructs the wire hit's core.Result for re-ranking.
func coreResult(h Hit) (r core.Result) {
	r.SimilarityScore = h.Score
	r.IsMatch = h.IsMatch
	r.MatchedRewrite = h.MatchedRewrite
	r.MatchedDirect = h.Matched - h.MatchedRewrite
	r.RefTracelets = h.RefTracelets
	return r
}
