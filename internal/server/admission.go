package server

import (
	"context"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Admission control: a fixed pool of in-flight slots fronted by a small
// two-class priority queue. With QueueDepth 0 (the default) it behaves
// exactly like the legacy non-blocking semaphore: a request either takes
// a free slot or is shed with 429 immediately. With a positive depth, up
// to that many requests wait in FIFO order instead of bouncing off the
// server — and a released slot is handed directly to the
// highest-priority waiter (interactive queries ahead of batch/scan
// traffic), so one long batch scan cannot starve point queries of the
// next free slot. Under sustained overload the queue fills and requests
// shed again, so the wait — and with it tail latency — stays bounded by
// depth × service time rather than collapsing into retry storms.

// admClass is a request's admission priority.
type admClass int

const (
	classInteractive admClass = iota // single /v1/search queries
	classBatch                       // /v1/search/batch scans
	numClasses
)

// admWaiter is one queued request. ready is closed exactly once, under
// the admission mutex, when a released slot is handed over; granted
// distinguishes "slot transferred" from "gave up while queued" in the
// unavoidable race between the two.
type admWaiter struct {
	ready   chan struct{}
	granted bool
	class   admClass
}

// admission is the server's slot pool + priority queue.
type admission struct {
	tel *telemetry.Collector

	mu       sync.Mutex
	capacity int // total in-flight slots
	inflight int // slots currently held
	depth    int // max queued waiters across both classes; 0 = never queue
	queued   int
	queues   [numClasses][]*admWaiter // FIFO per class, drained in class order
}

func newAdmission(capacity, depth int, tel *telemetry.Collector) *admission {
	return &admission{capacity: capacity, depth: depth, tel: tel}
}

// acquire obtains an in-flight slot: immediately when one is free, after
// a bounded queue wait when QueueDepth allows, or not at all — a nil
// release func with a nil error means the request must be shed (or
// served degraded). A non-nil error is the context's: the caller gave up
// (or timed out) while queued.
func (a *admission) acquire(ctx context.Context, class admClass) (func(), error) {
	a.mu.Lock()
	if a.inflight < a.capacity {
		a.inflight++
		a.mu.Unlock()
		return a.release, nil
	}
	if a.queued >= a.depth {
		a.mu.Unlock()
		return nil, nil
	}
	w := &admWaiter{ready: make(chan struct{}), class: class}
	a.queues[class] = append(a.queues[class], w)
	a.queued++
	a.mu.Unlock()

	t0 := time.Now()
	select {
	case <-w.ready:
		a.tel.Inc(telemetry.ServerQueued)
		a.tel.Observe(telemetry.QueueWaitLatency, time.Since(t0))
		return a.release, nil
	case <-ctx.Done():
		a.mu.Lock()
		if w.granted {
			// A release handed us the slot while we were abandoning: pass it
			// on rather than leaking it.
			a.mu.Unlock()
			a.release()
			return nil, ctx.Err()
		}
		a.remove(w)
		a.mu.Unlock()
		return nil, ctx.Err()
	}
}

// remove drops an abandoned waiter from its queue. Caller holds mu.
func (a *admission) remove(w *admWaiter) {
	q := a.queues[w.class]
	for i, x := range q {
		if x == w {
			a.queues[w.class] = append(q[:i], q[i+1:]...)
			a.queued--
			return
		}
	}
}

// release frees one slot — or rather hands it to the longest-waiting
// highest-class waiter without ever letting it go idle while anyone
// queues (work conservation is what keeps the queue's latency bound
// tight).
func (a *admission) release() {
	a.mu.Lock()
	for class := admClass(0); class < numClasses; class++ {
		if q := a.queues[class]; len(q) > 0 {
			w := q[0]
			a.queues[class] = q[1:]
			a.queued--
			w.granted = true
			close(w.ready)
			a.mu.Unlock()
			return // slot transferred; inflight unchanged
		}
	}
	a.inflight--
	a.mu.Unlock()
}

// inFlight returns the number of held slots (tests poll it).
func (a *admission) inFlight() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight
}

// queueLen returns the number of queued waiters (tests poll it).
func (a *admission) queueLen() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.queued
}
