package server

import (
	"context"
	"sort"
)

// SearchBackend is where answers come from once a request has cleared
// the front door (decode, admission, deadlines — all of that stays in
// the handlers). Two implementations exist: localBackend answers from
// this process's own index snapshot (the classic single-process mode),
// and fleetBackend scatter-gathers a sharded worker fleet (coordinator
// mode, Config.Fleet). The handlers are written against this interface
// only, so the two modes share every byte of HTTP, observability, and
// admission machinery.
type SearchBackend interface {
	// Search answers one exact search.
	Search(ctx context.Context, req *SearchRequest) (*SearchResponse, error)
	// Degraded answers one search in reduced-quality mode (DegradedMode
	// servers under saturation).
	Degraded(ctx context.Context, req *SearchRequest) (*SearchResponse, error)
	// Functions lists the indexed corpus (exe filters, limit > 0 caps).
	Functions(ctx context.Context, exe string, limit int) (*FunctionsResponse, error)
	// Health reports liveness and the served corpus's shape. It never
	// fails: trouble is reported inside the response.
	Health(ctx context.Context) *HealthResponse
	// Reload swaps in a fresh index (local: re-read DBPath; fleet:
	// broadcast to every worker).
	Reload(ctx context.Context) (*ReloadResponse, error)
}

// localBackend serves from the server's own atomic snapshot.
type localBackend struct {
	s *Server
}

func (b localBackend) Search(ctx context.Context, req *SearchRequest) (*SearchResponse, error) {
	return b.s.runSearch(ctx, req)
}

func (b localBackend) Degraded(ctx context.Context, req *SearchRequest) (*SearchResponse, error) {
	return b.s.runDegraded(ctx, req)
}

func (b localBackend) Functions(_ context.Context, exe string, limit int) (*FunctionsResponse, error) {
	st := b.s.snap.Load()
	if st == nil {
		return nil, errf(503, "no index loaded")
	}
	resp := &FunctionsResponse{Total: st.snap.Len()}
	for _, e := range st.snap.Entries() {
		if exe != "" && e.Exe != exe {
			continue
		}
		resp.Functions = append(resp.Functions, FunctionInfo{
			Exe: e.Exe, Name: e.Name, Addr: e.Addr,
			Blocks: e.Function().NumBlocks(), Insts: e.Function().NumInsts(),
		})
		if limit > 0 && len(resp.Functions) == limit {
			break
		}
	}
	return resp, nil
}

func (b localBackend) Health(context.Context) *HealthResponse {
	st := b.s.snap.Load()
	if st == nil {
		return &HealthResponse{Status: "empty"}
	}
	ks := append([]int(nil), st.snap.Ks()...)
	sort.Ints(ks)
	return &HealthResponse{
		Status:      "ok",
		Functions:   st.snap.Len(),
		Ks:          ks,
		Shards:      st.snap.NumShards(),
		Generation:  st.gen,
		LoadedAt:    st.loadedAt,
		IndexFormat: st.info.Version,
		IndexMapped: st.info.Mapped,
		LoadMS:      st.loadMS,
	}
}

func (b localBackend) Reload(context.Context) (*ReloadResponse, error) {
	return b.s.Reload()
}
