package server

import (
	"encoding/base64"
	"time"
)

// The wire schema of the query service. All endpoints speak JSON:
//
//	POST /v1/search        SearchRequest  -> SearchResponse
//	POST /v1/search/batch  BatchRequest   -> BatchResponse
//	GET  /v1/functions     (query params) -> FunctionsResponse
//	GET  /v1/healthz                      -> HealthResponse
//	POST /v1/reload                       -> ReloadResponse
//
// Errors are ErrorResponse bodies with a matching HTTP status.

// SearchRequest asks for the corpus functions most similar to one query
// function. The query is given either by uploading an executable image
// (Image, base64; Function selects a function in it, default the
// largest) or by referencing a function already in the index (Exe +
// Name). Exactly one of the two forms must be used.
type SearchRequest struct {
	Image    string `json:"image,omitempty"`    // base64 ELF image to lift
	Function string `json:"function,omitempty"` // function within Image (default: largest)

	Exe  string `json:"exe,omitempty"`  // indexed executable ...
	Name string `json:"name,omitempty"` // ... and function to query by reference

	K        int     `json:"k,omitempty"`         // tracelet size (default: server's -k)
	Limit    int     `json:"limit,omitempty"`     // max hits returned (default 10, cap 1000)
	MinScore float64 `json:"min_score,omitempty"` // drop hits scoring below this (0..1)

	// Prefilter enables the lossy feature prefilter: only the top
	// Candidates corpus functions by shared features are compared exactly.
	// Candidates > 0 implies Prefilter; Prefilter alone uses the server's
	// default cap.
	Prefilter  bool `json:"prefilter,omitempty"`
	Candidates int  `json:"candidates,omitempty"` // candidate cap (cap 1000)

	// PrefilterMode picks the candidate generator: "scan" (default) ranks
	// by shared features through the inverted index, "lsh" takes MinHash
	// band-bucket collisions ranked by estimated Jaccard. "lsh" implies
	// Prefilter. When the loaded index carries no LSH signatures the
	// server falls back to scan (counted as tracy_lsh_fallbacks).
	PrefilterMode string `json:"prefilter_mode,omitempty"`

	// TimeoutMS bounds this search's compute time in milliseconds. It can
	// only tighten the server's own request budget, never extend it; an
	// exceeded deadline answers 504.
	TimeoutMS int `json:"timeout_ms,omitempty"`

	// QueryGob is the fleet-internal third query form: a base64 gob of
	// the already-resolved, lifted query function. The coordinator
	// resolves a query once (lifting an uploaded image itself, or
	// fetching a by-reference function from the shard that owns it) and
	// scatters it to every shard in this form, so shards never re-lift
	// and never need each other's corpora. Mutually exclusive with Image
	// and Exe/Name; decoded functions are structurally validated before
	// any search runs.
	QueryGob string `json:"query_gob,omitempty"`
}

// SetImage stores img as the request's base64 query image.
func (r *SearchRequest) SetImage(img []byte) {
	r.Image = base64.StdEncoding.EncodeToString(img)
}

// DecodeImage returns the decoded query image.
func (r *SearchRequest) DecodeImage() ([]byte, error) {
	return base64.StdEncoding.DecodeString(r.Image)
}

// Hit is one ranked search result.
type Hit struct {
	Exe            string  `json:"exe"`
	Name           string  `json:"name"`
	Addr           uint32  `json:"addr"`
	Score          float64 `json:"score"`    // similarity (coverage rate, 0..1)
	IsMatch        bool    `json:"is_match"` // score above the α threshold
	Matched        int     `json:"matched"`  // matched reference tracelets
	RefTracelets   int     `json:"ref_tracelets"`
	MatchedRewrite int     `json:"matched_rewrite"` // matched only via the rewrite engine
}

// SearchResponse is the ranked answer to one SearchRequest.
type SearchResponse struct {
	Query       string `json:"query"` // resolved query function name
	QueryBlocks int    `json:"query_blocks"`
	QueryInsts  int    `json:"query_insts"`
	K           int    `json:"k"`
	Candidates  int    `json:"candidates"`            // corpus functions scanned
	Prefiltered bool   `json:"prefiltered,omitempty"` // candidate set was feature-prefiltered

	// PrefilterMode is the candidate generator that actually ran ("scan"
	// or "lsh", empty when the prefilter was off) — on an LSH fallback it
	// reads "scan" even though "lsh" was requested.
	PrefilterMode string  `json:"prefilter_mode,omitempty"`
	Hits          []Hit   `json:"hits"`
	Cached        bool    `json:"cached"` // served from the result cache
	TookMS        float64 `json:"took_ms"`

	// TraceID is the request's trace ID (from the caller's traceparent
	// header, or minted by the server): the join key across the response,
	// the access log, /debug/requests and client-side attempt records.
	TraceID string `json:"trace_id,omitempty"`

	// Degraded marks a reduced-quality answer produced under saturation
	// (prefilter-only ranking, no exact comparison): hit scores are
	// shared-feature ratios, not similarity scores, and IsMatch is never
	// set. Only possible when the server opts into DegradedMode.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
}

// BatchRequest runs several searches in one round trip.
type BatchRequest struct {
	Queries []SearchRequest `json:"queries"`
}

// BatchItem is one per-query outcome: either Result or Error is set.
type BatchItem struct {
	Result *SearchResponse `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// BatchResponse carries one item per request query, in order.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
	TraceID string      `json:"trace_id,omitempty"` // shared by every query in the batch
}

// FunctionInfo describes one indexed function.
type FunctionInfo struct {
	Exe    string `json:"exe"`
	Name   string `json:"name"`
	Addr   uint32 `json:"addr"`
	Blocks int    `json:"blocks"`
	Insts  int    `json:"insts"`
}

// FunctionsResponse lists the indexed corpus. A coordinator merges the
// shards' listings; when some shards are unreachable it serves the
// survivors' union and sets Degraded.
type FunctionsResponse struct {
	Total     int            `json:"total"` // before exe filter and limit
	Functions []FunctionInfo `json:"functions"`
	Degraded  bool           `json:"degraded,omitempty"`
}

// HealthResponse reports liveness and the loaded snapshot's shape. A
// coordinator reports the aggregated fleet: Status degrades to
// "degraded" when some shards are unreachable and "down" when all are,
// Functions sums the live shards, Generation is the combined fleet
// generation, and Fleet carries one entry per shard.
type HealthResponse struct {
	Status      string    `json:"status"` // "ok", "empty", "degraded" or "down"
	Functions   int       `json:"functions"`
	Ks          []int     `json:"ks"` // precomputed tracelet sizes
	Shards      int       `json:"shards"`
	Generation  uint64    `json:"generation"` // bumped on every snapshot swap
	LoadedAt    time.Time `json:"loaded_at"`
	IndexFormat int       `json:"index_format"` // TRACYIDX on-disk version (0-3)
	IndexMapped bool      `json:"index_mapped"` // true when served from mmap
	LoadMS      float64   `json:"load_ms"`      // load + snapshot-build time

	// Mode is "coordinator" when this server scatter-gathers a worker
	// fleet instead of serving a local snapshot (empty otherwise).
	Mode string `json:"mode,omitempty"`
	// Replicas is the total worker count across all replica groups
	// (coordinator mode only; equals Shards for single-replica fleets).
	Replicas int `json:"replicas,omitempty"`
	// Fleet reports per-replica health, coordinator mode only: one entry
	// per worker, grouped by Shard.
	Fleet []ShardHealth `json:"fleet,omitempty"`
}

// ShardHealth is one worker replica's state as seen from the
// coordinator's membership prober.
type ShardHealth struct {
	Shard       int    `json:"shard"`   // 0-based shard number (fleet list order)
	Replica     int    `json:"replica"` // 0-based replica index within the shard's group
	Addr        string `json:"addr"`    // worker base URL
	Status      string `json:"status"`
	Functions   int    `json:"functions"`
	Generation  uint64 `json:"generation"`
	IndexFormat int    `json:"index_format"`
	IndexMapped bool   `json:"index_mapped"`
	Error       string `json:"error,omitempty"` // probe failure, when Status is "unreachable"
	// Skewed marks a live replica serving a different index generation
	// than its group's majority: it is deprioritized for scatter legs
	// until it catches up (reload or readmission probe).
	Skewed bool `json:"skewed,omitempty"`
	// NextProbeMS is how long until the prober re-checks an unreachable
	// replica (readmission backoff), milliseconds.
	NextProbeMS float64 `json:"next_probe_ms,omitempty"`
}

// ReplicaError is one replica's last failure, attached to a
// zero-shards-answered 502 so the caller sees exactly which workers
// failed and why instead of an opaque bad-gateway.
type ReplicaError struct {
	Shard       int     `json:"shard"`
	Replica     int     `json:"replica"`
	Addr        string  `json:"addr"`
	Error       string  `json:"error"`
	NextProbeMS float64 `json:"next_probe_ms,omitempty"` // time until the next readmission probe
}

// FleetFunctionResponse answers the fleet-internal
// GET /v1/fleet/function?exe=&name= lookup: the gob-encoded lifted
// function behind one indexed (exe, name), base64 over the wire. The
// coordinator broadcasts the lookup to resolve a by-reference query —
// only the shard owning the entry answers 200.
type FleetFunctionResponse struct {
	Exe         string `json:"exe"`
	Name        string `json:"name"`
	FunctionGob string `json:"function_gob"`
}

// ReloadResponse reports a completed hot reload.
type ReloadResponse struct {
	Functions  int     `json:"functions"`
	Generation uint64  `json:"generation"`
	TookMS     float64 `json:"took_ms"`
	Format     int     `json:"format"` // TRACYIDX on-disk version
	Mapped     bool    `json:"mapped"` // true when served from mmap
}

// ErrorResponse is the body of every non-2xx reply. TraceID lets a
// caller quote the exact failed request when filing a report — 499/504
// cancellation errors and 500s all carry it.
type ErrorResponse struct {
	Error   string `json:"error"`
	TraceID string `json:"trace_id,omitempty"`
	// Fleet carries per-replica failure detail when a coordinator could
	// not get any shard to answer (502); the response also sets a
	// Retry-After header derived from the prober's next-probe schedule.
	Fleet []ReplicaError `json:"fleet,omitempty"`
}
