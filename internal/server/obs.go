package server

import (
	"context"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/server/rpc"
	"repro/internal/telemetry"
)

// Request observability: the observe middleware is the outermost layer
// of every API route. It adopts (or mints) the request's trace ID from
// the W3C traceparent header, roots a span the whole pipeline hangs
// stage children off via context, echoes the ID in the X-Trace-Id
// response header, and on completion feeds one RequestRecord to the
// flight recorder (/debug/requests) and the sampled access log.

// Trace propagation headers. The client stamps every HTTP attempt with
// traceparent plus its retry/hedge identity; the server echoes the
// trace ID back so even a body-less reply is joinable. The attempt
// headers are defined by the shared transport (internal/server/rpc) and
// re-exported here for API consumers.
const (
	TraceIDHeader = "X-Trace-Id"      // response: the request's trace ID
	AttemptHeader = rpc.AttemptHeader // request: 0-based client retry attempt
	HedgeHeader   = rpc.HedgeHeader   // request: "1" on a hedge duplicate
)

// statusRecorder captures the status code a handler chain writes; a
// handler that never calls WriteHeader implicitly answers 200.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

// obsState carries per-request observations that are strings rather
// than span attributes — today just the error message. It needs a
// mutex because TimeoutHandler keeps the inner handler running in its
// own goroutine after a timeout, so the handler may still be recording
// while the middleware reads the final state.
type obsState struct {
	mu     sync.Mutex
	errMsg string
}

func (o *obsState) setErr(msg string) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.errMsg = msg
	o.mu.Unlock()
}

func (o *obsState) err() string {
	if o == nil {
		return ""
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.errMsg
}

type obsCtxKey struct{}

func obsFromContext(ctx context.Context) *obsState {
	if ctx == nil {
		return nil
	}
	o, _ := ctx.Value(obsCtxKey{}).(*obsState)
	return o
}

// observe wraps h with the tracing middleware. It runs outside the
// panic-recovery and timeout layers so the trace spans the request's
// full wall-clock life and a timeout's 503 is recorded like any other
// outcome.
func (s *Server) observe(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		tid, _, _ := telemetry.ParseTraceparent(r.Header.Get(telemetry.TraceparentHeader))
		sp := telemetry.StartTraceSpan("request", tid) // mints a fresh ID when tid is ""
		attempt, _ := strconv.Atoi(r.Header.Get(AttemptHeader))
		obs := &obsState{}
		ctx := telemetry.ContextWithSpan(r.Context(), sp)
		ctx = context.WithValue(ctx, obsCtxKey{}, obs)
		w.Header().Set(TraceIDHeader, sp.TraceID())
		sr := &statusRecorder{ResponseWriter: w}
		h.ServeHTTP(sr, r.WithContext(ctx))
		sp.End()

		status := sr.status
		if status == 0 {
			status = http.StatusOK
		}
		switch {
		case status >= 500:
			s.tel.Inc(telemetry.ServerStatus5xx)
		case status >= 400:
			s.tel.Inc(telemetry.ServerStatus4xx)
		default:
			s.tel.Inc(telemetry.ServerStatus2xx)
		}
		dur := time.Since(start)
		slow := dur >= s.slowThresh
		if slow {
			s.tel.Inc(telemetry.ServerSlowQueries)
		}
		rec := &telemetry.RequestRecord{
			TraceID:   sp.TraceID(),
			Method:    r.Method,
			Path:      r.URL.Path,
			Start:     start,
			DurMS:     float64(dur.Nanoseconds()) / 1e6,
			Status:    status,
			Error:     obs.err(),
			Attempt:   attempt,
			Hedge:     r.Header.Get(HedgeHeader) == "1",
			Cached:    sp.Attr("cached") != 0,
			Degraded:  sp.Attr("degraded") != 0,
			Truncated: sp.Attr("truncated") != 0,
			Slow:      slow,
			Span:      sp,
		}
		s.flight.Record(rec)
		s.accessLog.Log(rec)
	})
}
