package server_test

// Chaos-suite extension for end-to-end tracing: through a REAL TCP
// server with injected faults, one logical request must keep a single
// trace ID across every retry and hedge attempt, and that ID must join
// the client's attempt records, the server's flight recorder and access
// log, and the response body.

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/telemetry"
)

// syncBuffer is a goroutine-safe bytes.Buffer: the access logger writes
// from server handler goroutines while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestChaosOneTraceAcrossRetries is the acceptance path: a transient
// search fault forces two retries, and afterwards the same trace ID is
// visible in (1) the client's Stats().Recent as three distinct attempts,
// (2) the server's flight recorder — two errored attempts plus the
// winner with its stage spans, (3) the access log, and (4) the response.
func TestChaosOneTraceAcrossRetries(t *testing.T) {
	faults := faultinject.New()
	faults.Arm(&faultinject.Fault{Point: server.FaultSearch, Mode: faultinject.Error, Count: 2})
	var accessLog syncBuffer
	s, url := startChaos(t, server.Config{Faults: faults, AccessLog: &accessLog, AccessLogSample: 1})
	cl := client.New(url)
	cl.Retry = fastPolicy()

	req := chaosQuery(t, chaosDB(t))
	resp, err := cl.Search(context.Background(), &req)
	if err != nil {
		t.Fatalf("search should survive the transient fault: %v", err)
	}
	if !telemetry.IsTraceID(resp.TraceID) {
		t.Fatalf("response trace_id %q invalid", resp.TraceID)
	}
	tid := resp.TraceID

	// Client side: three attempts (0, 1, 2), one trace, no hedges.
	recent := cl.Stats().Recent
	if len(recent) != 3 {
		t.Fatalf("client recorded %d attempts, want 3: %+v", len(recent), recent)
	}
	for i, ar := range recent {
		if ar.TraceID != tid {
			t.Errorf("attempt %d trace %q, want %q", i, ar.TraceID, tid)
		}
		if ar.Attempt != i || ar.Hedge {
			t.Errorf("attempt record %d = %+v, want Attempt=%d Hedge=false", i, ar, i)
		}
	}
	if recent[0].Status != 500 || recent[1].Status != 500 || recent[2].Status != 200 {
		t.Errorf("attempt statuses %d/%d/%d, want 500/500/200",
			recent[0].Status, recent[1].Status, recent[2].Status)
	}

	// Server side: the flight recorder holds all three round trips under
	// the one trace — two in the errored ring, the winner in slowest with
	// a finished span tree.
	flight := s.Flight().Snapshot()
	errored := 0
	for _, fr := range flight.Errored {
		if fr.TraceID == tid {
			errored++
			if fr.Status != 500 || fr.Error == "" {
				t.Errorf("errored record %+v, want status 500 with a message", fr)
			}
		}
	}
	if errored != 2 {
		t.Errorf("errored ring has %d records for %s, want 2", errored, tid)
	}
	var winner *telemetry.RequestRecord
	for _, fr := range flight.Slowest {
		if fr.TraceID == tid && fr.Status == 200 {
			winner = fr
			break
		}
	}
	if winner == nil {
		t.Fatalf("winning attempt for %s not in flight recorder", tid)
	}
	if winner.Attempt != 2 {
		t.Errorf("winner attempt %d, want 2 (server sees the client's attempt header)", winner.Attempt)
	}
	if winner.Span == nil || winner.Span.Duration() <= 0 {
		t.Error("winner lost its span tree")
	}

	// Access log: one line per attempt, all carrying the trace. The log
	// write races the response by a hair, so poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	var lines []string
	for {
		lines = nil
		for _, ln := range strings.Split(strings.TrimSpace(accessLog.String()), "\n") {
			if strings.Contains(ln, tid) {
				lines = append(lines, ln)
			}
		}
		if len(lines) >= 3 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(lines) != 3 {
		t.Fatalf("access log has %d lines for %s, want 3:\n%s", len(lines), tid, accessLog.String())
	}
	var last struct {
		TraceID string             `json:"trace_id"`
		Attempt int                `json:"attempt"`
		Status  int                `json:"status"`
		Stages  map[string]float64 `json:"stages_ms"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatalf("bad access line: %v\n%s", err, lines[len(lines)-1])
	}
	if last.TraceID != tid {
		t.Errorf("access line trace %q, want %q", last.TraceID, tid)
	}
}

// TestChaosHedgeSharesTrace: a one-shot latency fault slows the primary
// batch attempt; the hedge duplicate races past it. Both round trips
// must share one trace ID, and the hedge must be marked as such on both
// sides of the wire.
func TestChaosHedgeSharesTrace(t *testing.T) {
	faults := faultinject.New()
	faults.Arm(&faultinject.Fault{Point: server.FaultSearch, Mode: faultinject.Latency,
		Latency: 3 * time.Second, Count: 1})
	s, url := startChaos(t, server.Config{Faults: faults})
	cl := client.New(url)
	cl.Retry = nil
	cl.HedgeDelay = 30 * time.Millisecond

	req := chaosQuery(t, chaosDB(t))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, err := cl.SearchBatch(ctx, []server.SearchRequest{req})
	if err != nil {
		t.Fatalf("hedged batch should win past the latency fault: %v", err)
	}
	if !telemetry.IsTraceID(resp.TraceID) {
		t.Fatalf("batch trace_id %q invalid", resp.TraceID)
	}
	tid := resp.TraceID
	if got := cl.Stats().Hedges; got < 1 {
		t.Fatalf("client hedged %d times, want >= 1", got)
	}

	// The losing primary is cancelled when the hedge wins and records its
	// attempt asynchronously on the way out — poll for it.
	var recent []client.AttemptRecord
	var sawHedge, sawPrimary bool
	for deadline := time.Now().Add(5 * time.Second); ; {
		recent = cl.Stats().Recent
		sawHedge, sawPrimary = false, false
		for _, ar := range recent {
			if ar.TraceID != tid {
				t.Fatalf("attempt %+v has foreign trace, want %q", ar, tid)
			}
			if ar.Hedge {
				sawHedge = true
			} else {
				sawPrimary = true
			}
		}
		if (sawHedge && sawPrimary) || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(recent) < 2 || !sawHedge || !sawPrimary {
		t.Fatalf("want primary + hedge attempt records under one trace, got %+v", recent)
	}

	// Server side: the winning (hedge) request is recorded with the
	// hedge flag — the server learns it from the request headers.
	var hedged bool
	for _, fr := range s.Flight().Snapshot().Slowest {
		if fr.TraceID == tid && fr.Hedge && fr.Status == 200 {
			hedged = true
		}
	}
	if !hedged {
		t.Errorf("flight recorder has no successful hedge-marked record for %s: %+v",
			tid, s.Flight().Snapshot().Slowest)
	}
}
