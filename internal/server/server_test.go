package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/index"
	"repro/internal/telemetry"
	"repro/internal/tinyc"
)

// The package shares two corpora across tests: a small one for handler
// round-trips and a >= 100-function one for the concurrency suite. Both
// are built once.
var (
	smallOnce sync.Once
	smallDBv  *index.DB
	smallCv   *corpus.Corpus
	smallErr  error

	bigOnce sync.Once
	bigDBv  *index.DB
	bigErr  error
)

func buildDB(cfg corpus.BuildConfig) (*index.DB, *corpus.Corpus, error) {
	c, err := corpus.Build(cfg)
	if err != nil {
		return nil, nil, err
	}
	db := index.New()
	for _, e := range c.Exes {
		if err := db.AddImage(e.Name, e.Image, e.Truth); err != nil {
			return nil, nil, err
		}
	}
	return db, c, nil
}

func smallDB(t testing.TB) (*index.DB, *corpus.Corpus) {
	t.Helper()
	smallOnce.Do(func() {
		smallDBv, smallCv, smallErr = buildDB(corpus.BuildConfig{
			Seed: 3, ContextCopies: 3, Versions: 2, NoiseExes: 2,
			FuncsPerExe: 3, TargetStmts: 40, FillerStmts: 15, Opt: tinyc.O2,
		})
	})
	if smallErr != nil {
		t.Fatal(smallErr)
	}
	return smallDBv, smallCv
}

// bigDB returns a corpus of well over 100 functions (the acceptance
// floor for the concurrency suite).
func bigDB(t testing.TB) *index.DB {
	t.Helper()
	bigOnce.Do(func() {
		bigDBv, _, bigErr = buildDB(corpus.BuildConfig{
			Seed: 11, ContextCopies: 4, Versions: 3, NoiseExes: 6,
			FuncsPerExe: 8, TargetStmts: 40, FillerStmts: 12, Opt: tinyc.O2,
		})
	})
	if bigErr != nil {
		t.Fatal(bigErr)
	}
	if bigDBv.Len() < 100 {
		t.Fatalf("big corpus has %d functions, need >= 100", bigDBv.Len())
	}
	return bigDBv
}

// entryWithTruth finds an indexed entry by ground-truth name.
func entryWithTruth(t testing.TB, db *index.DB, truth string) *index.Entry {
	t.Helper()
	for _, e := range db.Entries {
		if e.Truth == truth {
			return e
		}
	}
	t.Fatalf("no entry with truth %q", truth)
	return nil
}

// exeImage returns the stripped image of one corpus executable.
func exeImage(t testing.TB, c *corpus.Corpus, name string) []byte {
	t.Helper()
	for _, e := range c.Exes {
		if e.Name == name {
			return e.Image
		}
	}
	t.Fatalf("no executable %q", name)
	return nil
}

// postSearch round-trips one SearchRequest through a handler.
func postSearch(t testing.TB, h http.Handler, req SearchRequest) (*httptest.ResponseRecorder, *SearchResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/search", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		return rec, nil
	}
	var resp SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad response body: %v\n%s", err, rec.Body.String())
	}
	return rec, &resp
}

func TestSearchRoundTripByImage(t *testing.T) {
	db, c := smallDB(t)
	s := NewFromDB(db, Config{})
	h := s.Handler()

	req := SearchRequest{Limit: 5}
	req.SetImage(exeImage(t, c, "ctx0"))
	// The largest function of a context executable is the planted library
	// function, so the defaults find it.
	rec, resp := postSearch(t, h, req)
	if resp == nil {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if len(resp.Hits) == 0 || len(resp.Hits) > 5 {
		t.Fatalf("got %d hits, want 1..5", len(resp.Hits))
	}
	if resp.Candidates != db.Len() {
		t.Errorf("candidates = %d, want %d", resp.Candidates, db.Len())
	}
	top := resp.Hits[0]
	if !top.IsMatch || top.Score <= 0.5 {
		t.Errorf("top hit not a confident match: %+v", top)
	}
	want := entryWithTruth(t, db, corpus.LibFuncName)
	if top.Name != want.Name && !strings.HasPrefix(top.Name, "sub_") {
		t.Errorf("unexpected top hit name %q", top.Name)
	}
	if s.Tel().Get(telemetry.ServerRequests) != 1 {
		t.Errorf("server_requests = %d, want 1", s.Tel().Get(telemetry.ServerRequests))
	}
}

func TestSearchByReferenceMatchesOffline(t *testing.T) {
	db, _ := smallDB(t)
	s := NewFromDB(db, Config{})
	e := entryWithTruth(t, db, corpus.LibFuncName)

	_, resp := postSearch(t, s.Handler(), SearchRequest{Exe: e.Exe, Name: e.Name, Limit: 1000})
	if resp == nil {
		t.Fatal("reference search failed")
	}
	offline := index.TopK(db.Search(e.Func, core.DefaultOptions()), 1000, 0)
	if len(resp.Hits) != len(offline) {
		t.Fatalf("server returned %d hits, offline %d", len(resp.Hits), len(offline))
	}
	for i, h := range resp.Hits {
		if h.Exe != offline[i].Entry.Exe || h.Name != offline[i].Entry.Name {
			t.Errorf("hit %d: %s/%s, offline %s/%s", i, h.Exe, h.Name,
				offline[i].Entry.Exe, offline[i].Entry.Name)
		}
		if h.Score != offline[i].Result.SimilarityScore {
			t.Errorf("hit %d: score %v, offline %v", i, h.Score, offline[i].Result.SimilarityScore)
		}
	}
}

func TestSearchPrefiltered(t *testing.T) {
	db, _ := smallDB(t)
	s := NewFromDB(db, Config{})
	h := s.Handler()
	e := entryWithTruth(t, db, corpus.LibFuncName)

	_, resp := postSearch(t, h, SearchRequest{Exe: e.Exe, Name: e.Name, Candidates: 3, Limit: 1000})
	if resp == nil {
		t.Fatal("prefiltered search failed")
	}
	if !resp.Prefiltered {
		t.Error("response not marked prefiltered")
	}
	if resp.Candidates == 0 || resp.Candidates > 3 {
		t.Errorf("candidates = %d, want 1..3", resp.Candidates)
	}
	if len(resp.Hits) == 0 || !resp.Hits[0].IsMatch {
		t.Errorf("prefiltered search lost the planted match: %+v", resp.Hits)
	}
	// Every prefiltered hit must score exactly like the exhaustive scan.
	offline := index.TopK(db.Search(e.Func, core.DefaultOptions()), 1000, 0)
	scores := make(map[string]float64, len(offline))
	for _, oh := range offline {
		scores[oh.Entry.Exe+"/"+oh.Entry.Name] = oh.Result.SimilarityScore
	}
	for _, hh := range resp.Hits {
		if want, ok := scores[hh.Exe+"/"+hh.Name]; !ok || hh.Score != want {
			t.Errorf("hit %s/%s score %v drifted from exhaustive %v", hh.Exe, hh.Name, hh.Score, want)
		}
	}

	// The prefilter shape is part of the cache key: same query without the
	// prefilter must not be served from the prefiltered entry.
	_, full := postSearch(t, h, SearchRequest{Exe: e.Exe, Name: e.Name, Limit: 1000})
	if full == nil || full.Cached {
		t.Fatal("exhaustive search was served from the prefiltered cache entry")
	}
	if full.Candidates != db.Len() {
		t.Errorf("exhaustive candidates = %d, want %d", full.Candidates, db.Len())
	}

	// Negative candidate caps are a client error.
	if rec, _ := postSearch(t, h, SearchRequest{Exe: e.Exe, Name: e.Name, Candidates: -1}); rec.Code != http.StatusBadRequest {
		t.Errorf("candidates=-1 got %d, want 400", rec.Code)
	}
}

func TestSearchRequestValidation(t *testing.T) {
	db, c := smallDB(t)
	s := NewFromDB(db, Config{})
	h := s.Handler()
	img := exeImage(t, c, "ctx0")

	post := func(body string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/search", strings.NewReader(body)))
		return rec
	}
	if rec := post("{not json"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad JSON: status %d, want 400", rec.Code)
	}
	if rec := post("{}"); rec.Code != http.StatusBadRequest {
		t.Errorf("empty query: status %d, want 400", rec.Code)
	}

	both := SearchRequest{Exe: "ctx0", Name: "x"}
	both.SetImage(img)
	if rec, _ := postSearch(t, h, both); rec.Code != http.StatusBadRequest {
		t.Errorf("image+ref: status %d, want 400", rec.Code)
	}
	if rec, _ := postSearch(t, h, SearchRequest{Exe: "ctx0", Name: "no_such_fn"}); rec.Code != http.StatusNotFound {
		t.Errorf("unknown ref: status %d, want 404", rec.Code)
	}
	bad := SearchRequest{K: 7}
	bad.SetImage(img)
	if rec, _ := postSearch(t, h, bad); rec.Code != http.StatusBadRequest {
		t.Errorf("unsupported k: status %d, want 400", rec.Code)
	}
	neg := SearchRequest{MinScore: -0.5}
	neg.SetImage(img)
	if rec, _ := postSearch(t, h, neg); rec.Code != http.StatusBadRequest {
		t.Errorf("bad min_score: status %d, want 400", rec.Code)
	}
}

func TestBodySizeLimit(t *testing.T) {
	db, c := smallDB(t)
	s := NewFromDB(db, Config{MaxBodyBytes: 512})
	req := SearchRequest{}
	req.SetImage(exeImage(t, c, "ctx0")) // far larger than 512 bytes
	rec, _ := postSearch(t, s.Handler(), req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("status %d, want 413", rec.Code)
	}
}

func TestBatch(t *testing.T) {
	db, c := smallDB(t)
	s := NewFromDB(db, Config{})
	e := entryWithTruth(t, db, corpus.AppFuncName)

	good := SearchRequest{Limit: 3}
	good.SetImage(exeImage(t, c, "appv0"))
	batch := BatchRequest{Queries: []SearchRequest{
		good,
		{Exe: e.Exe, Name: e.Name, Limit: 3},
		{Exe: "missing", Name: "missing"},
	}}
	body, _ := json.Marshal(batch)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/search/batch", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("%d results, want 3", len(resp.Results))
	}
	for i := 0; i < 2; i++ {
		if resp.Results[i].Result == nil || len(resp.Results[i].Result.Hits) == 0 {
			t.Errorf("batch item %d: no hits (%+v)", i, resp.Results[i])
		}
	}
	if resp.Results[2].Error == "" || resp.Results[2].Result != nil {
		t.Errorf("batch item 2 should carry an error: %+v", resp.Results[2])
	}
}

func TestFunctionsAndHealthz(t *testing.T) {
	db, _ := smallDB(t)
	s := NewFromDB(db, Config{Ks: []int{2, 3}})
	h := s.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/functions?exe=ctx0&limit=2", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("functions: status %d", rec.Code)
	}
	var fns FunctionsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &fns); err != nil {
		t.Fatal(err)
	}
	if fns.Total != db.Len() || len(fns.Functions) != 2 {
		t.Errorf("functions: total=%d len=%d, want total=%d len=2", fns.Total, len(fns.Functions), db.Len())
	}
	for _, f := range fns.Functions {
		if f.Exe != "ctx0" || f.Insts == 0 {
			t.Errorf("bad function info: %+v", f)
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	var health HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Functions != db.Len() ||
		len(health.Ks) != 2 || health.Generation != 1 || health.Shards < 1 {
		t.Errorf("bad health: %+v", health)
	}

	// /statsz rides on the same mux.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/statsz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "server_requests") {
		t.Errorf("/statsz: status %d body %.80s", rec.Code, rec.Body.String())
	}
}

func TestCacheHitsAndCounters(t *testing.T) {
	db, _ := smallDB(t)
	s := NewFromDB(db, Config{})
	e := entryWithTruth(t, db, corpus.LibFuncName)
	h := s.Handler()

	req := SearchRequest{Exe: e.Exe, Name: e.Name, Limit: 5}
	_, first := postSearch(t, h, req)
	if first == nil || first.Cached {
		t.Fatalf("first response should be an uncached hit list: %+v", first)
	}
	_, second := postSearch(t, h, req)
	if second == nil || !second.Cached {
		t.Fatalf("second identical search should be cached: %+v", second)
	}
	if len(second.Hits) != len(first.Hits) || second.Hits[0] != first.Hits[0] {
		t.Error("cached response diverged from the computed one")
	}
	// Different options must not share a cache slot.
	req.Limit = 3
	_, third := postSearch(t, h, req)
	if third == nil || third.Cached {
		t.Fatalf("changed limit should miss the cache: %+v", third)
	}
	if len(third.Hits) != 3 {
		t.Errorf("limit 3 returned %d hits", len(third.Hits))
	}
	tel := s.Tel()
	if hits, misses := tel.Get(telemetry.ServerCacheHits), tel.Get(telemetry.ServerCacheMisses); hits != 1 || misses != 2 {
		t.Errorf("cache counters: %d hits / %d misses, want 1/2", hits, misses)
	}
	if rate := tel.Snapshot().Derived["server_cache_hit_rate"]; rate < 0.3 || rate > 0.4 {
		t.Errorf("server_cache_hit_rate = %v, want 1/3", rate)
	}
}

func TestSaturationSheds429(t *testing.T) {
	db, _ := smallDB(t)
	s := NewFromDB(db, Config{MaxInFlight: 1, RequestTimeout: time.Minute})
	hold := make(chan struct{})
	s.holdForTest = hold
	h := s.Handler()
	e := entryWithTruth(t, db, corpus.LibFuncName)
	req := SearchRequest{Exe: e.Exe, Name: e.Name}

	firstDone := make(chan int, 1)
	go func() {
		rec, _ := postSearch(t, h, req)
		firstDone <- rec.Code
	}()
	// Wait for the first request to occupy the only slot.
	for i := 0; s.adm.inFlight() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if s.adm.inFlight() != 1 {
		t.Fatal("first request never acquired its in-flight slot")
	}

	rec, _ := postSearch(t, h, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated search: status %d, want 429", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "saturated") {
		t.Errorf("429 body should explain saturation: %s", rec.Body.String())
	}
	close(hold)
	if code := <-firstDone; code != http.StatusOK {
		t.Errorf("held request finished with %d, want 200", code)
	}
	if got := s.Tel().Get(telemetry.ServerRejected); got != 1 {
		t.Errorf("server_rejected = %d, want 1", got)
	}
}

func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	db, _ := smallDB(t)
	s := NewFromDB(db, Config{RequestTimeout: time.Minute})
	hold := make(chan struct{})
	s.holdForTest = hold
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr.String()
	e := entryWithTruth(t, db, corpus.LibFuncName)
	body, _ := json.Marshal(SearchRequest{Exe: e.Exe, Name: e.Name})

	type outcome struct {
		code int
		err  error
	}
	reqDone := make(chan outcome, 1)
	go func() {
		resp, err := http.Post(base+"/v1/search", "application/json", bytes.NewReader(body))
		if err != nil {
			reqDone <- outcome{err: err}
			return
		}
		resp.Body.Close()
		reqDone <- outcome{code: resp.StatusCode}
	}()
	for i := 0; s.adm.inFlight() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if s.adm.inFlight() != 1 {
		t.Fatal("request never became in-flight")
	}

	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutDone <- s.Shutdown(ctx)
	}()
	// Shutdown must wait for the held request, not abort it.
	select {
	case err := <-shutDone:
		t.Fatalf("Shutdown returned (%v) while a request was in flight", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(hold)
	if out := <-reqDone; out.err != nil || out.code != http.StatusOK {
		t.Errorf("drained request: %+v, want 200", out)
	}
	if err := <-shutDone; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
	// The listener is gone: new requests must fail to connect.
	if _, err := http.Get(base + "/v1/healthz"); err == nil {
		t.Error("server still accepting connections after Shutdown")
	}
}

func TestHotReloadSwapsSnapshot(t *testing.T) {
	db, c := smallDB(t)
	path := filepath.Join(t.TempDir(), "idx.gob")
	saveTo := func(d *index.DB) {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Save(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	saveTo(db)
	s, err := New(Config{DBPath: path})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	e := entryWithTruth(t, db, corpus.LibFuncName)
	req := SearchRequest{Exe: e.Exe, Name: e.Name, Limit: 3}
	if _, resp := postSearch(t, h, req); resp == nil || resp.Candidates != db.Len() {
		t.Fatalf("pre-reload search broken: %+v", resp)
	}
	if _, resp := postSearch(t, h, req); resp == nil || !resp.Cached {
		t.Fatal("second search should hit the cache")
	}

	// Grow the index on disk, reload over HTTP, and observe the swap.
	bigger := index.New()
	bigger.Entries = append(bigger.Entries, db.Entries...)
	if err := bigger.AddImage("extra", exeImage(t, c, "ctx0"), nil); err != nil {
		t.Fatal(err)
	}
	saveTo(bigger)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/reload", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("reload: status %d: %s", rec.Code, rec.Body.String())
	}
	var rl ReloadResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &rl); err != nil {
		t.Fatal(err)
	}
	if rl.Functions != bigger.Len() || rl.Generation != 2 {
		t.Errorf("reload response %+v, want %d functions at generation 2", rl, bigger.Len())
	}
	// The cache was keyed on the old generation: same query recomputes
	// against the new corpus.
	_, resp := postSearch(t, h, req)
	if resp == nil || resp.Cached || resp.Candidates != bigger.Len() {
		t.Errorf("post-reload search: %+v, want uncached scan of %d functions", resp, bigger.Len())
	}
	if got := s.Tel().Get(telemetry.ServerReloads); got != 1 {
		t.Errorf("server_reloads = %d, want 1", got)
	}
}

func TestReloadRejectsBadFile(t *testing.T) {
	db, _ := smallDB(t)
	path := filepath.Join(t.TempDir(), "idx.gob")
	f, _ := os.Create(path)
	if err := db.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	s, err := New(Config{DBPath: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("not an index"), 0o644); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/reload", nil))
	if rec.Code == http.StatusOK {
		t.Fatal("reload of a corrupt file should fail")
	}
	// The old snapshot must keep serving.
	e := entryWithTruth(t, db, corpus.LibFuncName)
	if rec, resp := postSearch(t, s.Handler(), SearchRequest{Exe: e.Exe, Name: e.Name}); resp == nil {
		t.Errorf("search after failed reload: status %d", rec.Code)
	}
}

// TestConcurrentSearchCorrectness is the acceptance scenario: >= 8
// concurrent searches against a >= 100-function corpus, each answer
// identical to the offline DB.Search top-K, with the race detector
// covering the whole stack when run under -race.
func TestConcurrentSearchCorrectness(t *testing.T) {
	db := bigDB(t)
	// MaxInFlight must admit the full worker fleet even on one core
	// (the default is 4*GOMAXPROCS), and the per-request deadline must
	// cover 8 uncached scans time-sliced onto that core under -race —
	// the test is about correctness under concurrency, not latency.
	s := NewFromDB(db, Config{MaxInFlight: 16, RequestTimeout: 5 * time.Minute})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()

	// Offline ground truth for the query set.
	queries := []*index.Entry{
		entryWithTruth(t, db, corpus.LibFuncName),
		entryWithTruth(t, db, corpus.AppFuncName),
	}
	type expectation struct {
		entry *index.Entry
		top   []index.Hit
	}
	var expect []expectation
	for _, e := range queries {
		expect = append(expect, expectation{
			entry: e,
			top:   index.TopK(db.Search(e.Func, core.DefaultOptions()), 10, 0),
		})
	}

	const workers = 8
	base := "http://" + addr.String()
	var wg sync.WaitGroup
	errs := make(chan error, workers*2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 2; r++ {
				exp := expect[(w+r)%len(expect)]
				body, _ := json.Marshal(SearchRequest{Exe: exp.entry.Exe, Name: exp.entry.Name, Limit: 10})
				resp, err := http.Post(base+"/v1/search", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var sr SearchResponse
				err = json.NewDecoder(resp.Body).Decode(&sr)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("worker %d: status %d", w, resp.StatusCode)
					return
				}
				if len(sr.Hits) != len(exp.top) {
					errs <- fmt.Errorf("worker %d: %d hits, want %d", w, len(sr.Hits), len(exp.top))
					return
				}
				for i, h := range sr.Hits {
					o := exp.top[i]
					if h.Exe != o.Entry.Exe || h.Name != o.Entry.Name || h.Score != o.Result.SimilarityScore {
						errs <- fmt.Errorf("worker %d hit %d: %s/%s@%v, offline %s/%s@%v",
							w, i, h.Exe, h.Name, h.Score, o.Entry.Exe, o.Entry.Name, o.Result.SimilarityScore)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	tel := s.Tel()
	if got := tel.Get(telemetry.ServerRequests); got != workers*2 {
		t.Errorf("server_requests = %d, want %d", got, workers*2)
	}

	// The concurrent fleet may overlap entirely (every request in flight
	// before the first put lands), so assert the cache deterministically:
	// with the fleet drained, one more identical request must hit.
	body, _ := json.Marshal(SearchRequest{Exe: expect[0].entry.Exe, Name: expect[0].entry.Name, Limit: 10})
	resp, err := http.Post(base+"/v1/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sr SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !sr.Cached {
		t.Error("post-fleet repeat of an identical query was not served from cache")
	}
	if tel.Get(telemetry.ServerCacheHits) == 0 {
		t.Error("repeated identical queries produced no cache hits")
	}
}

func TestServeV3IndexInfo(t *testing.T) {
	db, _ := smallDB(t)
	path := filepath.Join(t.TempDir(), "idx.v3")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SaveV3(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	wantMapped := func() bool {
		d, err := index.OpenFile(path)
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		return d.Info().Mapped
	}()
	s, err := New(Config{DBPath: path})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	var hr HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &hr); err != nil {
		t.Fatal(err)
	}
	if hr.IndexFormat != 3 || hr.IndexMapped != wantMapped || hr.LoadMS < 0 {
		t.Errorf("healthz index info = format %d mapped %v load %.1fms, want format 3 mapped %v",
			hr.IndexFormat, hr.IndexMapped, hr.LoadMS, wantMapped)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	metrics := rec.Body.String()
	if !strings.Contains(metrics, "tracy_index_info{") || !strings.Contains(metrics, `format="3"`) {
		t.Errorf("/metrics lacks tracy_index_info with format label:\n%.600s", metrics)
	}
	if err := telemetry.ValidateExposition(rec.Body.Bytes()); err != nil {
		t.Errorf("/metrics with info gauge invalid: %v", err)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/reload", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("reload over v3: status %d: %s", rec.Code, rec.Body.String())
	}
	var rl ReloadResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &rl); err != nil {
		t.Fatal(err)
	}
	if rl.Format != 3 || rl.Mapped != wantMapped || rl.Generation != 2 {
		t.Errorf("reload response %+v, want format 3 mapped %v generation 2", rl, wantMapped)
	}
	if got := s.Tel().InfoLabels("index_info"); got["generation"] != "2" || got["format"] != "3" {
		t.Errorf("index_info labels after reload = %v", got)
	}

	// Queries still answer from the mmapped snapshot.
	e := entryWithTruth(t, db, corpus.LibFuncName)
	if _, resp := postSearch(t, h, SearchRequest{Exe: e.Exe, Name: e.Name, Limit: 3}); resp == nil {
		t.Fatal("search over served v3 index failed")
	}
}
