package idxfile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/minhash"
	"repro/internal/prep"
)

// Builder accumulates functions into the columnar arrays incrementally,
// so a million-function corpus can be indexed one executable at a time
// with memory bounded by the (compact) columnar size rather than the
// lifted object graph: callers lift an image, Add its functions, and
// drop the lifted form before the next image.
type Builder struct {
	strs    map[string]uint32
	strb    []byte
	stro    []uint32
	funcs   []byte
	blcks   []byte
	insts   []byte
	opnds   []byte
	memts   []byte
	succs   []byte
	feats   []byte
	nblocks int
	ninsts  int
	nops    int
	nmems   int
	nsuccs  int
	nfeats  int
	nfuncs  int
	err     error

	lsh     *minhash.Params // non-nil: emit an LSHB section
	lshSigs []byte          // accumulated signature values, LE u32s
	sigBuf  []uint32        // per-Add scratch
}

// NewBuilder returns an empty builder. String id 0 is reserved for the
// empty string so zero-valued record fields stay self-describing.
func NewBuilder() *Builder {
	b := &Builder{strs: make(map[string]uint32)}
	b.stro = append(b.stro, 0)
	b.intern("") // id 0
	return b
}

// NumFuncs returns the number of functions added so far.
func (b *Builder) NumFuncs() int { return b.nfuncs }

// Bytes returns the current approximate encoded size, the number the
// scale campaign reports as it streams executables through.
func (b *Builder) Bytes() int {
	return len(b.strb) + len(b.stro)*stroRecSize + len(b.funcs) + len(b.blcks) +
		len(b.insts) + len(b.opnds) + len(b.memts) + len(b.succs) + len(b.feats) +
		len(b.lshSigs)
}

// SetLSH arms MinHash signature emission: every subsequent Add hashes
// the function's feature set under p and WriteTo appends an LSHB
// section. It must be called before the first Add (signatures are
// computed as functions stream through, never retroactively); calling
// it late or with invalid parameters is a sticky error.
func (b *Builder) SetLSH(p minhash.Params) {
	if b.err != nil {
		return
	}
	if !p.Valid() {
		b.err = fmt.Errorf("idxfile: invalid LSH parameters (%d bands x %d rows)", p.Bands, p.Rows)
		return
	}
	if b.nfuncs > 0 {
		b.err = fmt.Errorf("idxfile: SetLSH after %d functions were already added", b.nfuncs)
		return
	}
	b.lsh = &p
}

func (b *Builder) intern(s string) uint32 {
	if id, ok := b.strs[s]; ok {
		return id
	}
	id := uint32(len(b.stro) - 1)
	b.strs[s] = id
	b.strb = append(b.strb, s...)
	b.stro = append(b.stro, uint32(len(b.strb)))
	return id
}

func (b *Builder) u32(dst []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(dst, v)
}

// Add appends one lifted function with its index metadata and prefilter
// feature set. Feats may be nil. Errors (a corpus overflowing the u32
// column offsets, a malformed graph) are sticky and reported by WriteTo.
func (b *Builder) Add(exe string, fn *prep.Function, truth string, feats []uint64) {
	if b.err != nil {
		return
	}
	g := fn.Graph
	if g == nil || len(g.Blocks) == 0 || g.Entry < 0 || g.Entry >= len(g.Blocks) {
		b.err = fmt.Errorf("idxfile: function %s: malformed graph", fn.Name)
		return
	}
	if len(b.strb) > math.MaxUint32-1<<20 || b.ninsts > math.MaxUint32-1<<20 {
		b.err = fmt.Errorf("idxfile: corpus overflows u32 column offsets")
		return
	}
	blockOff := b.nblocks
	for _, blk := range g.Blocks {
		instOff := b.ninsts
		for _, in := range blk.Insts {
			opOff := b.nops
			for _, op := range in.Ops {
				var flags byte
				if op.Offset {
					flags |= opndFlagOffset
				}
				memOff, nmem := 0, 0
				if op.IsMem() {
					flags |= opndFlagMem
					memOff = b.nmems
					nmem = len(op.Mem)
					for _, t := range op.Mem {
						b.memts = append(b.memts, byte(t.Op), byte(t.Arg.Kind), byte(t.Arg.Cls), byte(t.Arg.Reg))
						b.memts = b.u32(b.memts, b.intern(t.Arg.Sym))
						b.memts = binary.LittleEndian.AppendUint64(b.memts, uint64(t.Arg.Imm))
					}
					b.nmems += nmem
				}
				a := op.Arg
				b.opnds = append(b.opnds, byte(a.Kind), byte(a.Cls), byte(a.Reg), flags)
				b.opnds = b.u32(b.opnds, b.intern(a.Sym))
				b.opnds = binary.LittleEndian.AppendUint64(b.opnds, uint64(a.Imm))
				b.opnds = b.u32(b.opnds, uint32(memOff))
				b.opnds = b.u32(b.opnds, uint32(nmem))
			}
			b.insts = b.u32(b.insts, b.intern(in.Mnemonic))
			b.insts = b.u32(b.insts, uint32(opOff))
			b.insts = b.u32(b.insts, uint32(len(in.Ops)))
			b.nops += len(in.Ops)
		}
		succOff := b.nsuccs
		for _, s := range blk.Succs {
			if s < 0 || s >= len(g.Blocks) {
				b.err = fmt.Errorf("idxfile: function %s: successor %d out of %d blocks", fn.Name, s, len(g.Blocks))
				return
			}
			b.succs = b.u32(b.succs, uint32(s))
		}
		b.blcks = b.u32(b.blcks, blk.Addr)
		b.blcks = b.u32(b.blcks, uint32(instOff))
		b.blcks = b.u32(b.blcks, uint32(len(blk.Insts)))
		b.blcks = b.u32(b.blcks, uint32(succOff))
		b.blcks = b.u32(b.blcks, uint32(len(blk.Succs)))
		b.ninsts += len(blk.Insts)
		b.nsuccs += len(blk.Succs)
	}
	b.nblocks += len(g.Blocks)

	featOff := b.nfeats
	for _, f := range feats {
		b.feats = binary.LittleEndian.AppendUint64(b.feats, f)
	}
	b.nfeats += len(feats)

	if b.lsh != nil {
		b.sigBuf = minhash.Signature(b.sigBuf, feats, *b.lsh)
		for _, v := range b.sigBuf {
			b.lshSigs = binary.LittleEndian.AppendUint32(b.lshSigs, v)
		}
	}

	b.funcs = b.u32(b.funcs, b.intern(exe))
	b.funcs = b.u32(b.funcs, b.intern(fn.Name))
	b.funcs = b.u32(b.funcs, b.intern(truth))
	b.funcs = b.u32(b.funcs, fn.Addr)
	b.funcs = b.u32(b.funcs, uint32(g.Entry))
	b.funcs = b.u32(b.funcs, uint32(blockOff))
	b.funcs = b.u32(b.funcs, uint32(len(g.Blocks)))
	b.funcs = b.u32(b.funcs, uint32(featOff))
	b.funcs = b.u32(b.funcs, uint32(len(feats)))
	b.funcs = b.u32(b.funcs, 0) // reserved
	b.nfuncs++
}

// section pairs a directory entry with its payload for writing.
type section struct {
	name    string
	payload []byte
}

// WriteTo encodes the accumulated corpus as a complete v3 file.
func (b *Builder) WriteTo(w io.Writer) (int64, error) {
	if b.err != nil {
		return 0, b.err
	}
	stro := make([]byte, 0, len(b.stro)*stroRecSize)
	for _, off := range b.stro {
		stro = binary.LittleEndian.AppendUint32(stro, off)
	}
	secs := []section{
		{SecSTRB, b.strb},
		{SecSTRO, stro},
		{SecFUNC, b.funcs},
		{SecBLCK, b.blcks},
		{SecINST, b.insts},
		{SecOPND, b.opnds},
		{SecMEMT, b.memts},
		{SecSUCC, b.succs},
		{SecFEAT, b.feats},
	}
	if b.lsh != nil {
		lshb := make([]byte, 0, lshHdrSize+len(b.lshSigs))
		lshb = binary.LittleEndian.AppendUint32(lshb, uint32(b.lsh.Bands))
		lshb = binary.LittleEndian.AppendUint32(lshb, uint32(b.lsh.Rows))
		lshb = binary.LittleEndian.AppendUint64(lshb, b.lsh.Seed)
		lshb = append(lshb, b.lshSigs...)
		secs = append(secs, section{SecLSHB, lshb})
	}

	// Lay sections out 8-aligned after the directory.
	dirOff := headerSize
	off := dirOff + len(secs)*dirEntrySize
	off = align8(off)
	var dir []byte
	offsets := make([]int, len(secs))
	for i, s := range secs {
		offsets[i] = off
		dir = binary.LittleEndian.AppendUint32(dir, sectionID(s.name))
		dir = binary.LittleEndian.AppendUint32(dir, 0)
		dir = binary.LittleEndian.AppendUint64(dir, uint64(off))
		dir = binary.LittleEndian.AppendUint64(dir, uint64(len(s.payload)))
		dir = binary.LittleEndian.AppendUint32(dir, crc32.Checksum(s.payload, crcTable))
		dir = binary.LittleEndian.AppendUint32(dir, 0)
		off = align8(off + len(s.payload))
	}
	fileSize := off

	hdr := make([]byte, headerSize)
	copy(hdr, Magic)
	hdr[8] = Version
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(secs)))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(fileSize))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(b.nfuncs))
	binary.LittleEndian.PutUint32(hdr[32:], crc32.Checksum(dir, crcTable))

	bw := bufio.NewWriterSize(w, 1<<20)
	n := int64(0)
	emit := func(p []byte) error {
		m, err := bw.Write(p)
		n += int64(m)
		return err
	}
	if err := emit(hdr); err != nil {
		return n, err
	}
	if err := emit(dir); err != nil {
		return n, err
	}
	pos := dirOff + len(dir)
	var pad [8]byte
	for i, s := range secs {
		if gap := offsets[i] - pos; gap > 0 {
			if err := emit(pad[:gap]); err != nil {
				return n, err
			}
			pos += gap
		}
		if err := emit(s.payload); err != nil {
			return n, err
		}
		pos += len(s.payload)
	}
	if gap := fileSize - pos; gap > 0 {
		if err := emit(pad[:gap]); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Write encodes a whole corpus in one call: metadata-carrying functions
// with optional per-function feature sets (feats may be nil or aligned
// with fns).
func Write(w io.Writer, exes []string, fns []*prep.Function, truths []string, feats [][]uint64) (int64, error) {
	b := NewBuilder()
	for i, fn := range fns {
		var fs []uint64
		if feats != nil {
			fs = feats[i]
		}
		truth := ""
		if truths != nil {
			truth = truths[i]
		}
		b.Add(exes[i], fn, truth, fs)
	}
	return b.WriteTo(w)
}
